//===- bench/cache_smoke.cpp - Solution-cache end-to-end smoke ------------===//
//
// Runs the Table 1 structured sweep TWICE in one process with the
// content-addressed solution cache enabled and checks that the second
// sweep is served from the cache: nonzero ilpsched/cache.hits, every
// cleanly solved loop of the first sweep replayed (cache_hit=true, zero
// solver effort) with bit-identical II and secondary-objective columns,
// and >= 90% of the first sweep's clean solves cache-served. Exits
// nonzero on any violation — this is the CI gate for the cache, not a
// measurement binary.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace modsched;
using namespace modsched::bench;

namespace {

int64_t cacheCounter(const char *Name) {
  telemetry::Counter *C =
      telemetry::findCounter(std::string("ilpsched/cache.") + Name);
  return C ? C->value() : 0;
}

int Failures = 0;

void check(bool Ok, const std::string &What) {
  if (Ok)
    return;
  ++Failures;
  std::fprintf(stderr, "cache_smoke FAIL: %s\n", What.c_str());
}

std::string loopTag(const char *Sweep, size_t Loop) {
  return std::string("[") + Sweep + "] loop " + std::to_string(Loop);
}

} // namespace

int main() {
  BenchConfig Config = BenchConfig::fromEnv();
  // Smoke-sized default; the usual MODSCHED_BENCH_* knobs still win.
  if (!std::getenv("MODSCHED_BENCH_LOOPS"))
    Config.SyntheticLoops = 24;
  Config.Cache = true;

  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = benchSuite(M, Config);
  std::printf("cache smoke: %zu loops, %.1fs/loop, backend=%s, "
              "cache=on\n",
              Suite.size(), Config.TimeLimitSeconds,
              toString(Config.Backend));

  // Both an objective-free and a secondary-objective sweep, so cached
  // replay of the SecondaryObjective column is exercised too.
  const Objective Objs[] = {Objective::None, Objective::MinBuff};
  const char *Names[] = {"NoObj", "MinBuff"};

  BenchJson Json("cache_smoke");
  Json.setConfig(Config);

  int64_t CleanTotal = 0, HitTotal = 0;
  for (int O = 0; O < 2; ++O) {
    const int64_t Hits0 = cacheCounter("hits");
    std::vector<LoopRecord> First =
        runOptimal(M, Suite, Objs[O], DependenceStyle::Structured, Config);
    std::vector<LoopRecord> Second =
        runOptimal(M, Suite, Objs[O], DependenceStyle::Structured, Config);
    const int64_t Hits = cacheCounter("hits") - Hits0;
    check(Hits > 0, std::string("[") + Names[O] +
                        "] second sweep recorded no cache hits");

    for (size_t I = 0; I < Suite.size(); ++I) {
      const LoopRecord &A = First[I];
      const LoopRecord &B = Second[I];
      // Only clean conclusive solves are cacheable; censored or
      // unsolved loops legitimately re-run the solver.
      if (!A.Solved || A.TimedOut || A.NodeLimitHit)
        continue;
      ++CleanTotal;
      if (!B.CacheHit) {
        check(false, loopTag(Names[O], I) +
                         " solved cleanly but re-ran the solver");
        continue;
      }
      ++HitTotal;
      check(B.II == A.II, loopTag(Names[O], I) + " II drifted under " +
                              "replay: " + std::to_string(B.II) + " vs " +
                              std::to_string(A.II));
      check(B.Secondary == A.Secondary,
            loopTag(Names[O], I) + " secondary objective drifted");
      check(B.Nodes == 0 && B.PbConflicts == 0 && B.Attempts.empty(),
            loopTag(Names[O], I) + " cache hit reports solver effort");
    }
    Json.addRecordSet(std::string(Names[O]) + " first", std::move(First));
    Json.addRecordSet(std::string(Names[O]) + " second", std::move(Second));
  }

  check(CleanTotal > 0,
        "no loop solved cleanly — smoke proves nothing; raise the budget");
  // The headline acceptance bar: >= 90% of the clean solves replayed.
  check(HitTotal * 10 >= CleanTotal * 9,
        "only " + std::to_string(HitTotal) + " of " +
            std::to_string(CleanTotal) +
            " clean solves were cache-served (< 90%)");

  Json.addMetric("clean_solves", static_cast<double>(CleanTotal));
  Json.addMetric("cache_served", static_cast<double>(HitTotal));
  Json.write();

  std::printf("cache smoke: %lld/%lld clean solves cache-served, "
              "%lld total hits, %s\n",
              static_cast<long long>(HitTotal),
              static_cast<long long>(CleanTotal),
              static_cast<long long>(cacheCounter("hits")),
              Failures == 0 ? "PASS" : "FAIL");
  return Failures == 0 ? 0 : 1;
}
