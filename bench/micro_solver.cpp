//===- bench/micro_solver.cpp - Solver microbenchmarks + ablations --------===//
//
// google-benchmark timings of the solver stack on representative
// formulations, plus the ablations called out in DESIGN.md:
//  * structured vs traditional vs structured-without-tightening (Ineq. 19)
//  * branch-rule variants
//  * integral-objective bound rounding on/off
//  * ASAP/ALAP stage-bound tightening on/off
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ilp/BranchAndBound.h"
#include "sched/Mii.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <benchmark/benchmark.h>

#include <algorithm>

using namespace modsched;
using namespace modsched::ilp;

namespace {

/// Representative solve outcomes collected as the benchmarks run, then
/// written to bench_results/BENCH_micro_solver.json by main(). Each
/// benchmark records its LAST solve (google-benchmark re-enters the
/// function while calibrating, so records are deduplicated by name).
std::vector<bench::LoopRecord> &solveRecords() {
  static std::vector<bench::LoopRecord> Records;
  return Records;
}

void upsertRecord(bench::LoopRecord Rec) {
  for (bench::LoopRecord &E : solveRecords())
    if (E.Name == Rec.Name) {
      E = std::move(Rec);
      return;
    }
  solveRecords().push_back(std::move(Rec));
}

void recordSolve(std::string Name, const DependenceGraph &G,
                 const MipResult &R) {
  bench::LoopRecord Rec;
  Rec.Name = std::move(Name);
  Rec.NumOps = G.numOperations();
  Rec.Solved = R.HasSolution;
  Rec.TimedOut = R.Status == MipStatus::Limit;
  Rec.Nodes = R.Nodes;
  Rec.SimplexIterations = R.SimplexIterations;
  Rec.WarmLpSolves = R.WarmLpSolves;
  Rec.ColdLpSolves = R.ColdLpSolves;
  Rec.WarmLpIterations = R.WarmLpIterations;
  Rec.LpRefactorizations = R.LpRefactorizations;
  Rec.LpEtaNonzeros = R.LpEtaNonzeros;
  Rec.Seconds = R.Seconds;
  Rec.Secondary = R.Objective;
  upsertRecord(std::move(Rec));
}

/// A medium-size fixed loop for the ablations (deterministic seed).
DependenceGraph benchLoop(const MachineModel &M) {
  Rng R(424242);
  SyntheticOptions Opts;
  Opts.MinOps = 12;
  Opts.MaxOps = 12;
  return generateLoop(M, R, Opts);
}

MipResult solveLoop(const MachineModel &M, const DependenceGraph &G,
                    Objective Obj, DependenceStyle Dep,
                    MipOptions MipOpts = {}, bool Tighten = true) {
  FormulationOptions FOpts;
  FOpts.Obj = Obj;
  FOpts.DepStyle = Dep;
  FOpts.TightenStageBounds = Tighten;
  // The traditional formulation may not prove optimality in reasonable
  // time (that is the paper's point); budget each solve and accept the
  // incumbent, so the benchmark measures time-to-solution under a cap.
  if (MipOpts.TimeLimitSeconds > 1e29)
    MipOpts.TimeLimitSeconds = 20.0;
  int Mii = mii(G, M);
  MipResult Last;
  for (int II = Mii; II <= Mii + 64; ++II) {
    Formulation F(G, M, II, FOpts);
    if (!F.valid())
      continue;
    Last = MipSolver(MipOpts).solve(F.model());
    if (Last.HasSolution)
      return Last;
  }
  return Last;
}

void BM_LpSimplexExample1(benchmark::State &State) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  FormulationOptions Opts;
  Opts.Obj = Objective::MinReg;
  Formulation F(G, M, 2, Opts);
  lp::SimplexSolver Solver;
  lp::LpResult Last;
  for (auto _ : State) {
    Last = Solver.solve(F.model());
    benchmark::DoNotOptimize(Last.Objective);
  }
  bench::LoopRecord Rec;
  Rec.Name = "BM_LpSimplexExample1";
  Rec.NumOps = G.numOperations();
  Rec.Solved = Last.Status == lp::LpStatus::Optimal;
  Rec.SimplexIterations = Last.Iterations;
  Rec.Secondary = Last.Objective;
  upsertRecord(std::move(Rec));
}
BENCHMARK(BM_LpSimplexExample1);

void BM_MipStructured(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipResult Last;
  for (auto _ : State) {
    Last = solveLoop(M, G, Objective::MinReg, DependenceStyle::Structured);
    benchmark::DoNotOptimize(Last.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Last.Nodes);
  recordSolve("BM_MipStructured", G, Last);
}
BENCHMARK(BM_MipStructured)->Unit(benchmark::kMillisecond);

void BM_MipStructuredLoose(benchmark::State &State) {
  // Ablation: Ineq. (19) without the Chaudhuri tightening.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipResult Last;
  for (auto _ : State) {
    Last = solveLoop(M, G, Objective::MinReg,
                     DependenceStyle::StructuredLoose);
    benchmark::DoNotOptimize(Last.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Last.Nodes);
  recordSolve("BM_MipStructuredLoose", G, Last);
}
BENCHMARK(BM_MipStructuredLoose)->Unit(benchmark::kMillisecond);

void BM_MipTraditional(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipResult Last;
  for (auto _ : State) {
    Last = solveLoop(M, G, Objective::MinReg, DependenceStyle::Traditional);
    benchmark::DoNotOptimize(Last.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Last.Nodes);
  recordSolve("BM_MipTraditional", G, Last);
}
BENCHMARK(BM_MipTraditional)->Unit(benchmark::kMillisecond);

void BM_BranchRule(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipOptions Opts;
  Opts.Branching = static_cast<BranchRule>(State.range(0));
  MipResult Last;
  for (auto _ : State) {
    Last = solveLoop(M, G, Objective::MinReg, DependenceStyle::Structured,
                     Opts);
    benchmark::DoNotOptimize(Last.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Last.Nodes);
  recordSolve("BM_BranchRule/" + std::to_string(State.range(0)), G, Last);
}
BENCHMARK(BM_BranchRule)
    ->Arg(0) // MostFractional
    ->Arg(1) // FirstFractional
    ->Arg(2) // LastFractional
    ->Unit(benchmark::kMillisecond);

void BM_IntegralObjectiveRounding(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipOptions Opts;
  Opts.IntegralObjective = State.range(0) != 0;
  MipResult Last;
  for (auto _ : State) {
    Last = solveLoop(M, G, Objective::MinReg, DependenceStyle::Structured,
                     Opts);
    benchmark::DoNotOptimize(Last.Objective);
  }
  recordSolve("BM_IntegralObjectiveRounding/" +
                  std::to_string(State.range(0)),
              G, Last);
}
BENCHMARK(BM_IntegralObjectiveRounding)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_StageBoundTightening(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipResult Last;
  for (auto _ : State) {
    Last = solveLoop(M, G, Objective::MinReg, DependenceStyle::Structured,
                     {}, /*Tighten=*/State.range(0) != 0);
    benchmark::DoNotOptimize(Last.Objective);
  }
  recordSolve("BM_StageBoundTightening/" + std::to_string(State.range(0)),
              G, Last);
}
BENCHMARK(BM_StageBoundTightening)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_MipWarmStart(benchmark::State &State) {
  // A/B ablation of the warm-started dual simplex: identical search with
  // node LPs either warm-started from the parent basis (Arg 1) or solved
  // cold by the two-phase primal (Arg 0). The persistent workspace is
  // active in both arms, so the delta isolates basis reuse. Results land
  // in BENCH_micro_solver.json as BM_MipWarmStart/{0,1} records with the
  // warm_solves / cold_solves / warm_iterations fields.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipOptions Opts;
  Opts.WarmStart = State.range(0) != 0;
  MipResult Last;
  for (auto _ : State) {
    Last = solveLoop(M, G, Objective::MinReg, DependenceStyle::Structured,
                     Opts);
    benchmark::DoNotOptimize(Last.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Last.Nodes);
  State.counters["simplex_iters"] =
      static_cast<double>(Last.SimplexIterations);
  State.counters["warm_lps"] = static_cast<double>(Last.WarmLpSolves);
  recordSolve("BM_MipWarmStart/" + std::to_string(State.range(0)), G, Last);
}
BENCHMARK(BM_MipWarmStart)
    ->Arg(0) // cold two-phase primal at every node
    ->Arg(1) // warm dual simplex from the parent basis
    ->Unit(benchmark::kMillisecond);

void BM_SparseVsDense(benchmark::State &State) {
  // A/B ablation of the LP engine: identical branch-and-bound search
  // with every node LP solved by the dense explicit tableau (Arg 0) or
  // the sparse revised simplex with the LU-factorized basis (Arg 1).
  // Warm starts are on in both arms, so the delta isolates the
  // per-pivot linear algebra. Results land in BENCH_micro_solver.json
  // as BM_SparseVsDense/{0,1} records with the refactorizations /
  // eta_nnz factorization counters (sparse arm only).
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipOptions Opts;
  Opts.Lp.Engine = State.range(0) != 0 ? lp::SimplexEngine::SparseRevised
                                       : lp::SimplexEngine::Dense;
  MipResult Last;
  for (auto _ : State) {
    Last = solveLoop(M, G, Objective::MinReg, DependenceStyle::Structured,
                     Opts);
    benchmark::DoNotOptimize(Last.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Last.Nodes);
  State.counters["simplex_iters"] =
      static_cast<double>(Last.SimplexIterations);
  State.counters["refactorizations"] =
      static_cast<double>(Last.LpRefactorizations);
  State.counters["eta_nnz"] = static_cast<double>(Last.LpEtaNonzeros);
  recordSolve("BM_SparseVsDense/" + std::to_string(State.range(0)), G,
              Last);
}
BENCHMARK(BM_SparseVsDense)
    ->Arg(0) // dense explicit tableau at every node
    ->Arg(1) // sparse revised simplex (LU + eta updates)
    ->Unit(benchmark::kMillisecond);

void BM_PbVsIlp(benchmark::State &State) {
  // A/B smoke of the exact backends: the full II search on the fixed
  // 12-op loop solved by LP-based branch-and-bound (Arg 0) or by the
  // CDCL pseudo-Boolean engine (Arg 1), identical formulation options.
  // Results land in BENCH_micro_solver.json as BM_PbVsIlp/{0,1} records;
  // the PB arm reports pb_conflicts / pb_propagations and zero nodes,
  // the ILP arm the reverse. The arms must agree on II and the MinBuff
  // objective — the cheap always-on companion of tests/PbBackendTest.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Objective::MinBuff;
  Opts.TimeLimitSeconds = 20.0;
  Opts.Backend = State.range(0) != 0 ? SchedulerBackend::Pb
                                     : SchedulerBackend::Ilp;
  OptimalModuloScheduler Scheduler(M, Opts);
  ScheduleResult Last;
  for (auto _ : State) {
    Last = Scheduler.schedule(G);
    benchmark::DoNotOptimize(Last.II);
  }
  State.counters["ii"] = Last.II;
  State.counters["bb_nodes"] = static_cast<double>(Last.Nodes);
  State.counters["pb_conflicts"] = static_cast<double>(Last.PbConflicts);
  bench::LoopRecord Rec = bench::LoopRecord::fromResult(G, Last);
  Rec.Name = "BM_PbVsIlp/" + std::to_string(State.range(0));
  upsertRecord(std::move(Rec));
}
BENCHMARK(BM_PbVsIlp)
    ->Arg(0) // ILP branch-and-bound backend
    ->Arg(1) // CDCL pseudo-Boolean backend
    ->Unit(benchmark::kMillisecond);

void BM_PortfolioVsBest(benchmark::State &State) {
  // Three-way backend race on the fixed 12-op MinBuff loop: the single
  // engines (Arg 0 = ILP, Arg 1 = PB) against the portfolio backend
  // (Arg 2) racing both per II with cross-engine bound sharing and the
  // persistent PB session. All three arms must agree on II and
  // objective; main() derives the portfolio_vs_best_* headline metrics
  // (virtual best = faster single engine) from the three records. On a
  // single-core host the racing arms time-slice, so the portfolio lands
  // between the engines rather than at the virtual best — the records
  // report whatever this machine measures.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Objective::MinBuff;
  Opts.TimeLimitSeconds = 20.0;
  Opts.Backend = State.range(0) == 2   ? SchedulerBackend::Portfolio
                 : State.range(0) == 1 ? SchedulerBackend::Pb
                                       : SchedulerBackend::Ilp;
  OptimalModuloScheduler Scheduler(M, Opts);
  ScheduleResult Last;
  for (auto _ : State) {
    Last = Scheduler.schedule(G);
    benchmark::DoNotOptimize(Last.II);
  }
  State.counters["ii"] = Last.II;
  int64_t Exchanges = 0;
  for (const IiAttempt &A : Last.Attempts)
    Exchanges += A.BoundExchanges;
  State.counters["bound_exchanges"] = static_cast<double>(Exchanges);
  bench::LoopRecord Rec = bench::LoopRecord::fromResult(G, Last);
  Rec.Name = "BM_PortfolioVsBest/" + std::to_string(State.range(0));
  upsertRecord(std::move(Rec));
}
BENCHMARK(BM_PortfolioVsBest)
    ->Arg(0) // ILP alone
    ->Arg(1) // PB alone
    ->Arg(2) // portfolio race with bound sharing
    ->Unit(benchmark::kMillisecond);

void BM_NodePresolve(benchmark::State &State) {
  // Ablation: bound propagation at every branch-and-bound node.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipOptions Opts;
  Opts.NodePresolve = State.range(0) != 0;
  MipResult Last;
  for (auto _ : State) {
    Last = solveLoop(M, G, Objective::MinReg, DependenceStyle::Structured,
                     Opts);
    benchmark::DoNotOptimize(Last.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Last.Nodes);
  recordSolve("BM_NodePresolve/" + std::to_string(State.range(0)), G, Last);
}
BENCHMARK(BM_NodePresolve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_InstanceMapping(benchmark::State &State) {
  // Counting (Ineq. 5) vs instance-mapped ([5]) resource constraints.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  FormulationOptions FOpts;
  FOpts.Obj = Objective::None;
  FOpts.InstanceMapped = State.range(0) != 0;
  int II = mii(G, M);
  MipResult Last;
  int AchievedIi = 0;
  for (auto _ : State) {
    for (int Try = II;; ++Try) {
      Formulation F(G, M, Try, FOpts);
      if (!F.valid())
        continue;
      MipOptions Opts;
      Opts.StopAtFirstSolution = true;
      MipResult R = MipSolver(Opts).solve(F.model());
      if (R.HasSolution) {
        benchmark::DoNotOptimize(R.Objective);
        State.counters["achieved_ii"] = Try;
        Last = std::move(R);
        AchievedIi = Try;
        break;
      }
    }
  }
  bench::LoopRecord Rec;
  Rec.Name = "BM_InstanceMapping/" + std::to_string(State.range(0));
  Rec.NumOps = G.numOperations();
  Rec.Solved = Last.HasSolution;
  Rec.Nodes = Last.Nodes;
  Rec.SimplexIterations = Last.SimplexIterations;
  Rec.Seconds = Last.Seconds;
  Rec.II = AchievedIi;
  Rec.Mii = II;
  upsertRecord(std::move(Rec));
}
BENCHMARK(BM_InstanceMapping)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

// Custom main (instead of BENCHMARK_MAIN) so the collected solve
// records land in bench_results/ like every other experiment binary.
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Microbenchmarks use a fixed 12-op loop and a 20 s solve cap (see
  // solveLoop); record that effective configuration.
  bench::BenchConfig Config;
  Config.SyntheticLoops = 1;
  Config.TimeLimitSeconds = 20.0;
  bench::BenchJson Json("micro_solver");
  Json.setConfig(Config);

  // Headline warm-vs-cold metrics from the BM_MipWarmStart A/B arms.
  const bench::LoopRecord *Cold = nullptr, *Warm = nullptr;
  for (const bench::LoopRecord &R : solveRecords()) {
    if (R.Name == "BM_MipWarmStart/0")
      Cold = &R;
    if (R.Name == "BM_MipWarmStart/1")
      Warm = &R;
  }
  if (Cold && Warm) {
    if (Warm->SimplexIterations > 0)
      Json.addMetric("warm_start_iteration_speedup",
                     static_cast<double>(Cold->SimplexIterations) /
                         static_cast<double>(Warm->SimplexIterations));
    if (Warm->Seconds > 0)
      Json.addMetric("warm_start_time_speedup",
                     Cold->Seconds / Warm->Seconds);
    int64_t WarmLps = Warm->WarmLpSolves + Warm->ColdLpSolves;
    if (WarmLps > 0)
      Json.addMetric("warm_start_lp_fraction",
                     static_cast<double>(Warm->WarmLpSolves) /
                         static_cast<double>(WarmLps));
  }

  // Headline sparse-vs-dense metrics from the BM_SparseVsDense arms.
  const bench::LoopRecord *Dense = nullptr, *Sparse = nullptr;
  for (const bench::LoopRecord &R : solveRecords()) {
    if (R.Name == "BM_SparseVsDense/0")
      Dense = &R;
    if (R.Name == "BM_SparseVsDense/1")
      Sparse = &R;
  }
  if (Dense && Sparse && Sparse->Seconds > 0)
    Json.addMetric("sparse_vs_dense_time_speedup",
                   Dense->Seconds / Sparse->Seconds);

  // Headline PB-vs-ILP metrics from the BM_PbVsIlp A/B arms. The
  // agreement metric is 1.0 iff both backends solved and returned the
  // same II and MinBuff objective (the smoke counterpart of the test
  // suite's differential).
  const bench::LoopRecord *Ilp = nullptr, *Pb = nullptr;
  for (const bench::LoopRecord &R : solveRecords()) {
    if (R.Name == "BM_PbVsIlp/0")
      Ilp = &R;
    if (R.Name == "BM_PbVsIlp/1")
      Pb = &R;
  }
  if (Ilp && Pb) {
    Json.addMetric("pb_vs_ilp_agree",
                   Ilp->Solved && Pb->Solved && Ilp->II == Pb->II &&
                           Ilp->Secondary == Pb->Secondary
                       ? 1.0
                       : 0.0);
    if (Pb->Seconds > 0)
      Json.addMetric("pb_vs_ilp_time_ratio", Ilp->Seconds / Pb->Seconds);
  }

  // Headline portfolio metrics from the BM_PortfolioVsBest arms: the
  // race must reproduce the single-engine verdict, and its wall clock
  // is compared against the faster single engine (the virtual best a
  // perfect portfolio would match on a multi-core host).
  const bench::LoopRecord *PvIlp = nullptr, *PvPb = nullptr,
                          *Pv = nullptr;
  for (const bench::LoopRecord &R : solveRecords()) {
    if (R.Name == "BM_PortfolioVsBest/0")
      PvIlp = &R;
    if (R.Name == "BM_PortfolioVsBest/1")
      PvPb = &R;
    if (R.Name == "BM_PortfolioVsBest/2")
      Pv = &R;
  }
  if (PvIlp && PvPb && Pv) {
    Json.addMetric("portfolio_vs_best_agree",
                   PvIlp->Solved && PvPb->Solved && Pv->Solved &&
                           PvIlp->II == Pv->II && PvPb->II == Pv->II &&
                           PvIlp->Secondary == Pv->Secondary &&
                           PvPb->Secondary == Pv->Secondary
                       ? 1.0
                       : 0.0);
    double VirtualBest = std::min(PvIlp->Seconds, PvPb->Seconds);
    if (Pv->Seconds > 0)
      Json.addMetric("portfolio_vs_best_time_ratio",
                     VirtualBest / Pv->Seconds);
  }

  Json.addRecordSet("last_solves", solveRecords());
  Json.write();
  return 0;
}
