//===- bench/micro_solver.cpp - Solver microbenchmarks + ablations --------===//
//
// google-benchmark timings of the solver stack on representative
// formulations, plus the ablations called out in DESIGN.md:
//  * structured vs traditional vs structured-without-tightening (Ineq. 19)
//  * branch-rule variants
//  * integral-objective bound rounding on/off
//  * ASAP/ALAP stage-bound tightening on/off
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ilp/BranchAndBound.h"
#include "sched/Mii.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <benchmark/benchmark.h>

using namespace modsched;
using namespace modsched::ilp;

namespace {

/// A medium-size fixed loop for the ablations (deterministic seed).
DependenceGraph benchLoop(const MachineModel &M) {
  Rng R(424242);
  SyntheticOptions Opts;
  Opts.MinOps = 12;
  Opts.MaxOps = 12;
  return generateLoop(M, R, Opts);
}

MipResult solveLoop(const MachineModel &M, const DependenceGraph &G,
                    Objective Obj, DependenceStyle Dep,
                    MipOptions MipOpts = {}, bool Tighten = true) {
  FormulationOptions FOpts;
  FOpts.Obj = Obj;
  FOpts.DepStyle = Dep;
  FOpts.TightenStageBounds = Tighten;
  // The traditional formulation may not prove optimality in reasonable
  // time (that is the paper's point); budget each solve and accept the
  // incumbent, so the benchmark measures time-to-solution under a cap.
  if (MipOpts.TimeLimitSeconds > 1e29)
    MipOpts.TimeLimitSeconds = 20.0;
  int Mii = mii(G, M);
  MipResult Last;
  for (int II = Mii; II <= Mii + 64; ++II) {
    Formulation F(G, M, II, FOpts);
    if (!F.valid())
      continue;
    Last = MipSolver(MipOpts).solve(F.model());
    if (Last.HasSolution)
      return Last;
  }
  return Last;
}

void BM_LpSimplexExample1(benchmark::State &State) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  FormulationOptions Opts;
  Opts.Obj = Objective::MinReg;
  Formulation F(G, M, 2, Opts);
  lp::SimplexSolver Solver;
  for (auto _ : State) {
    lp::LpResult R = Solver.solve(F.model());
    benchmark::DoNotOptimize(R.Objective);
  }
}
BENCHMARK(BM_LpSimplexExample1);

void BM_MipStructured(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  int64_t Nodes = 0;
  for (auto _ : State) {
    MipResult R =
        solveLoop(M, G, Objective::MinReg, DependenceStyle::Structured);
    Nodes = R.Nodes;
    benchmark::DoNotOptimize(R.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Nodes);
}
BENCHMARK(BM_MipStructured)->Unit(benchmark::kMillisecond);

void BM_MipStructuredLoose(benchmark::State &State) {
  // Ablation: Ineq. (19) without the Chaudhuri tightening.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  int64_t Nodes = 0;
  for (auto _ : State) {
    MipResult R = solveLoop(M, G, Objective::MinReg,
                            DependenceStyle::StructuredLoose);
    Nodes = R.Nodes;
    benchmark::DoNotOptimize(R.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Nodes);
}
BENCHMARK(BM_MipStructuredLoose)->Unit(benchmark::kMillisecond);

void BM_MipTraditional(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  int64_t Nodes = 0;
  for (auto _ : State) {
    MipResult R =
        solveLoop(M, G, Objective::MinReg, DependenceStyle::Traditional);
    Nodes = R.Nodes;
    benchmark::DoNotOptimize(R.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Nodes);
}
BENCHMARK(BM_MipTraditional)->Unit(benchmark::kMillisecond);

void BM_BranchRule(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipOptions Opts;
  Opts.Branching = static_cast<BranchRule>(State.range(0));
  int64_t Nodes = 0;
  for (auto _ : State) {
    MipResult R = solveLoop(M, G, Objective::MinReg,
                            DependenceStyle::Structured, Opts);
    Nodes = R.Nodes;
    benchmark::DoNotOptimize(R.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Nodes);
}
BENCHMARK(BM_BranchRule)
    ->Arg(0) // MostFractional
    ->Arg(1) // FirstFractional
    ->Arg(2) // LastFractional
    ->Unit(benchmark::kMillisecond);

void BM_IntegralObjectiveRounding(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipOptions Opts;
  Opts.IntegralObjective = State.range(0) != 0;
  for (auto _ : State) {
    MipResult R = solveLoop(M, G, Objective::MinReg,
                            DependenceStyle::Structured, Opts);
    benchmark::DoNotOptimize(R.Objective);
  }
}
BENCHMARK(BM_IntegralObjectiveRounding)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_StageBoundTightening(benchmark::State &State) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  for (auto _ : State) {
    MipResult R = solveLoop(M, G, Objective::MinReg,
                            DependenceStyle::Structured, {},
                            /*Tighten=*/State.range(0) != 0);
    benchmark::DoNotOptimize(R.Objective);
  }
}
BENCHMARK(BM_StageBoundTightening)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_NodePresolve(benchmark::State &State) {
  // Ablation: bound propagation at every branch-and-bound node.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  MipOptions Opts;
  Opts.NodePresolve = State.range(0) != 0;
  int64_t Nodes = 0;
  for (auto _ : State) {
    MipResult R = solveLoop(M, G, Objective::MinReg,
                            DependenceStyle::Structured, Opts);
    Nodes = R.Nodes;
    benchmark::DoNotOptimize(R.Objective);
  }
  State.counters["bb_nodes"] = static_cast<double>(Nodes);
}
BENCHMARK(BM_NodePresolve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_InstanceMapping(benchmark::State &State) {
  // Counting (Ineq. 5) vs instance-mapped ([5]) resource constraints.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = benchLoop(M);
  FormulationOptions FOpts;
  FOpts.Obj = Objective::None;
  FOpts.InstanceMapped = State.range(0) != 0;
  int II = mii(G, M);
  for (auto _ : State) {
    for (int Try = II;; ++Try) {
      Formulation F(G, M, Try, FOpts);
      if (!F.valid())
        continue;
      MipOptions Opts;
      Opts.StopAtFirstSolution = true;
      MipResult R = MipSolver(Opts).solve(F.model());
      if (R.HasSolution) {
        benchmark::DoNotOptimize(R.Objective);
        State.counters["achieved_ii"] = Try;
        break;
      }
    }
  }
}
BENCHMARK(BM_InstanceMapping)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
