//===- bench/exp4_ims_vs_optimal.cpp - IMS optimality (Sec. 5, 3rd exp) ---===//
//
// Paper, third experiment: use the NoObj optimal scheduler to measure how
// often Rau's Iterative Modulo Scheduler achieves an optimal II. In the
// paper IMS achieved MII on 96.0% of loops; the optimal scheduler then
// showed most of the remainder were in fact optimal too (97.7%), found
// schedules 1 cycle better for 6 loops and 2 cycles better for 2 loops.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "heuristic/IterativeModuloScheduler.h"

#include <cstdio>
#include <map>

using namespace modsched;
using namespace modsched::bench;

int main() {
  BenchConfig Config = BenchConfig::fromEnv();
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = benchSuite(M, Config);
  std::printf("Experiment 4: Iterative Modulo Scheduler vs optimal "
              "(suite: %zu loops)\n\n",
              Suite.size());

  BenchJson Json("exp4_ims_vs_optimal");
  Json.setConfig(Config);

  IterativeModuloScheduler Ims(M);
  int ImsAtMii = 0, ImsSolved = 0;
  std::vector<int> ImsII(Suite.size(), -1);
  std::vector<int> MiiOf(Suite.size(), 0);
  std::vector<LoopRecord> ImsRecords;
  for (size_t I = 0; I < Suite.size(); ++I) {
    ImsResult R = Ims.schedule(Suite[I]);
    MiiOf[I] = R.Mii;
    if (R.Found) {
      ++ImsSolved;
      ImsII[I] = R.II;
      if (R.II == R.Mii)
        ++ImsAtMii;
    }
    LoopRecord Rec;
    Rec.Name = Suite[I].name();
    Rec.NumOps = Suite[I].numOperations();
    Rec.Solved = R.Found;
    Rec.II = R.Found ? R.II : 0;
    Rec.Mii = R.Mii;
    ImsRecords.push_back(std::move(Rec));
  }
  Json.addRecordSet("IMS", std::move(ImsRecords));
  std::printf("IMS: solved %d/%zu loops; II == MII on %d (%.1f%%)\n",
              ImsSolved, Suite.size(), ImsAtMii,
              100.0 * ImsAtMii / static_cast<double>(Suite.size()));

  // The "interesting" loops: IMS did not prove optimality (II > MII).
  std::fprintf(stderr, "running NoObj optimal on interesting loops...\n");
  std::map<int, int> GapHistogram; // optimal improvement -> count
  int ShownOptimal = 0, Improved = 0, Unresolved = 0;
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Objective::None;
  Opts.Formulation.DepStyle = DependenceStyle::Structured;
  Opts.TimeLimitSeconds = Config.TimeLimitSeconds;
  OptimalModuloScheduler Optimal(M, Opts);

  std::vector<LoopRecord> OptRecords;
  for (size_t I = 0; I < Suite.size(); ++I) {
    if (ImsII[I] < 0 || ImsII[I] == MiiOf[I])
      continue; // Not interesting: unsolved or already provably optimal.
    ScheduleResult R = Optimal.schedule(Suite[I]);
    OptRecords.push_back(LoopRecord::fromResult(Suite[I], R));
    if (!R.Found) {
      ++Unresolved;
      continue;
    }
    int Gap = ImsII[I] - R.II;
    ++GapHistogram[Gap];
    if (Gap == 0)
      ++ShownOptimal;
    else
      ++Improved;
  }
  Json.addRecordSet("NoObj-on-interesting", std::move(OptRecords));

  int Interesting = 0;
  for (size_t I = 0; I < Suite.size(); ++I)
    Interesting += ImsII[I] >= 0 && ImsII[I] != MiiOf[I];
  std::printf("\ninteresting loops (IMS II > MII): %d\n", Interesting);
  std::printf("  proved IMS optimal anyway (MII not achievable): %d\n",
              ShownOptimal);
  std::printf("  optimal scheduler found a better II: %d\n", Improved);
  for (const auto &[Gap, Count] : GapHistogram)
    if (Gap > 0)
      std::printf("    better by %d cycle(s): %d loops\n", Gap, Count);
  std::printf("  unresolved within budget: %d\n", Unresolved);

  int TotalOptimal = ImsAtMii + ShownOptimal;
  std::printf("\nIMS schedules proved throughput-optimal: %d/%zu (%.1f%%) "
              "(paper: 96.0%% at MII, 97.7%% after optimal analysis)\n",
              TotalOptimal, Suite.size(),
              100.0 * TotalOptimal / static_cast<double>(Suite.size()));
  Json.addMetric("ims_solved", ImsSolved);
  Json.addMetric("ims_at_mii", ImsAtMii);
  Json.addMetric("interesting", Interesting);
  Json.addMetric("shown_optimal", ShownOptimal);
  Json.addMetric("improved", Improved);
  Json.addMetric("unresolved", Unresolved);
  Json.addMetric("total_optimal", TotalOptimal);
  Json.write();
  return 0;
}
