//===- bench/table2_traditional.cpp - Reproduces Table 2 ------------------===//
//
// Paper Table 2: "Measurements with traditional scheduling constraints" —
// the same statistics as Table 1 but with the traditional (Ineq. 4)
// dependence constraints. Expected shape versus Table 1: fewer loops
// solved, far more branch-and-bound nodes, fewer-but-denser constraints.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace modsched;
using namespace modsched::bench;

int main() {
  BenchConfig Config = BenchConfig::fromEnv();
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = benchSuite(M, Config);
  std::printf("Table 2: measurements with TRADITIONAL scheduling "
              "constraints (suite: %zu loops, %.1fs/loop, backend=%s, "
              "engine=%s)\n\n",
              Suite.size(), Config.TimeLimitSeconds,
              toString(Config.Backend), lp::toString(Config.Engine));

  BenchJson Json("table2_traditional");
  Json.setConfig(Config);

  const Objective Objs[] = {Objective::None, Objective::MinBuff,
                            Objective::MinLife, Objective::MinReg};
  const char *Names[] = {"NoObj Modulo-Sched", "MinBuff Modulo-Sched",
                         "MinLife Modulo-Sched", "MinReg Modulo-Sched"};
  for (int O = 0; O < 4; ++O) {
    std::fprintf(stderr, "running %s...\n", Names[O]);
    std::vector<LoopRecord> Records =
        runOptimal(M, Suite, Objs[O], DependenceStyle::Traditional, Config);
    printPaperTableBlock(Names[O], Records);
    printPortfolioSummary(Names[O], Records);
    Json.addMetric(std::string("solved_") + toString(Objs[O]),
                   countSolved(Records));
    Json.addRecordSet(Names[O], std::move(Records));
  }
  Json.write();
  return 0;
}
