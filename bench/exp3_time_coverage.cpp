//===- bench/exp3_time_coverage.cpp - Total time and coverage (Sec. 5) ----===//
//
// Paper Section 5 headline numbers:
//  * total MinReg solve time over the commonly-solved loops drops from
//    870.2 s (traditional) to 101.0 s (structured) — a factor of 8.6;
//  * coverage rises 782 -> 917 loops (MinReg) and 1084 -> 1179 (NoObj);
//  * the largest solvable loop grows (25 -> 41 ops MinReg, 52 -> 80
//    NoObj).
//
// This binary reports the same three comparisons on our suite.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <algorithm>
#include <cstdio>

using namespace modsched;
using namespace modsched::bench;

namespace {

int largestSolved(const std::vector<LoopRecord> &Records) {
  int Largest = 0;
  for (const LoopRecord &R : Records)
    if (R.Solved)
      Largest = std::max(Largest, R.NumOps);
  return Largest;
}

} // namespace

int main() {
  BenchConfig Config = BenchConfig::fromEnv();
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = benchSuite(M, Config);
  std::printf("Experiment 3 (Sec. 5 text): total time, coverage, and "
              "largest loop\n(suite: %zu loops, %.1fs/loop budget)\n\n",
              Suite.size(), Config.TimeLimitSeconds);

  BenchJson Json("exp3_time_coverage");
  Json.setConfig(Config);

  const Objective Objs[] = {Objective::None, Objective::MinReg};
  const char *Names[] = {"NoObj", "MinReg"};

  for (int O = 0; O < 2; ++O) {
    std::fprintf(stderr, "running %s traditional...\n", Names[O]);
    std::vector<LoopRecord> Trad = runOptimal(
        M, Suite, Objs[O], DependenceStyle::Traditional, Config);
    std::fprintf(stderr, "running %s structured...\n", Names[O]);
    std::vector<LoopRecord> Struct = runOptimal(
        M, Suite, Objs[O], DependenceStyle::Structured, Config);

    std::vector<int> Common = commonlySolved({Trad, Struct});
    double TradTime = 0, StructTime = 0;
    long TradNodes = 0, StructNodes = 0;
    for (int Loop : Common) {
      TradTime += Trad[Loop].Seconds;
      StructTime += Struct[Loop].Seconds;
      TradNodes += Trad[Loop].Nodes;
      StructNodes += Struct[Loop].Nodes;
    }
    std::printf("%s scheduler:\n", Names[O]);
    std::printf("  coverage: traditional %d / structured %d of %zu loops\n",
                countSolved(Trad), countSolved(Struct), Suite.size());
    std::printf("  largest loop solved: traditional %d ops / "
                "structured %d ops\n",
                largestSolved(Trad), largestSolved(Struct));
    std::printf("  on the %zu commonly-solved loops:\n", Common.size());
    std::printf("    total time: traditional %.2fs / structured %.2fs "
                "(%.1fx)\n",
                TradTime, StructTime,
                StructTime > 0 ? TradTime / StructTime : 0.0);
    std::printf("    total nodes: traditional %ld / structured %ld\n\n",
                TradNodes, StructNodes);
    Json.addMetric(std::string("coverage_traditional_") + Names[O],
                   countSolved(Trad));
    Json.addMetric(std::string("coverage_structured_") + Names[O],
                   countSolved(Struct));
    Json.addMetric(std::string("common_time_traditional_") + Names[O],
                   TradTime);
    Json.addMetric(std::string("common_time_structured_") + Names[O],
                   StructTime);
    Json.addRecordSet(std::string(Names[O]) + "/traditional",
                      std::move(Trad));
    Json.addRecordSet(std::string(Names[O]) + "/structured",
                      std::move(Struct));
  }
  std::printf("(paper: MinReg total time 870.2s -> 101.0s = 8.6x; "
              "coverage 782 -> 917 (MinReg), 1084 -> 1179 (NoObj))\n");
  Json.write();
  return 0;
}
