//===- bench/exp8_register_budget.cpp - II under register budgets ---------===//
//
// Extension experiment: register-CONSTRAINED scheduling. For each kernel
// and a sweep of register-file sizes K, find the minimum II whose best
// schedule fits K registers (per-row live count <= K). This is the dual
// of exp7 and the question a machine designer asks ("how small can the
// rotating file be before loops slow down?").
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ilpsched/OptimalScheduler.h"
#include "sched/Mii.h"
#include "workloads/KernelLibrary.h"

#include <cstdio>
#include <iterator>
#include <string>

using namespace modsched;
using namespace modsched::bench;

int main() {
  MachineModel M = MachineModel::cydraLike();
  const int Budgets[] = {16, 12, 10, 8, 6, 4};
  // Kernel-only sweep with a fixed per-cell budget; record the effective
  // configuration rather than the env-derived defaults.
  BenchConfig Config;
  Config.SyntheticLoops = 0;
  Config.TimeLimitSeconds = 8.0;
  BenchJson Json("exp8_register_budget");
  Json.setConfig(Config);
  std::vector<std::vector<LoopRecord>> PerBudget(std::size(Budgets));
  std::printf("Experiment 8 (extension): minimum II under register "
              "budgets\n(per kernel: MII, then min II with <= K "
              "registers; '-' = unschedulable, '?' = budget)\n\n");
  std::printf("%-26s %4s |", "kernel", "MII");
  for (int K : Budgets)
    std::printf(" K=%-3d", K);
  std::printf("\n");

  for (const DependenceGraph &G : allKernels(M)) {
    if (G.numOperations() > 14)
      continue; // Keep the sweep quick.
    std::printf("%-26s %4d |", G.name().c_str(), mii(G, M));
    for (size_t B = 0; B < std::size(Budgets); ++B) {
      int K = Budgets[B];
      SchedulerOptions Opts;
      Opts.Formulation.RegisterLimit = K;
      Opts.TimeLimitSeconds = Config.TimeLimitSeconds;
      Opts.MaxIiIncrease = 12;
      OptimalModuloScheduler Sched(M, Opts);
      ScheduleResult R = Sched.schedule(G);
      PerBudget[B].push_back(LoopRecord::fromResult(G, R));
      if (R.Found)
        std::printf(" %4d ", R.II);
      else if (R.TimedOut)
        std::printf("    ? ");
      else
        std::printf("    - ");
    }
    std::printf("\n");
  }
  std::printf("\n(reading a row right to left shows the II cost of "
              "shrinking the rotating register file)\n");
  for (size_t B = 0; B < std::size(Budgets); ++B)
    Json.addRecordSet("K=" + std::to_string(Budgets[B]),
                      std::move(PerBudget[B]));
  Json.write();
  return 0;
}
