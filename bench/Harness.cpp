//===- bench/Harness.cpp - Shared experiment harness ----------------------===//

#include "Harness.h"

#include "ilp/BranchAndBound.h"
#include "sched/RegisterPressure.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Statistics.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "workloads/SyntheticGenerator.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>

using namespace modsched;
using namespace modsched::bench;

namespace {

/// Strict env-integer parsing: the whole string must be a base-10
/// integer within [Min, Max]. Anything else ("ten", "3x", empty,
/// overflow, out of range) warns on stderr and reports failure so the
/// caller keeps its compiled-in default — the atoi-style silent
/// garbage-to-0 mapping is exactly what this replaces.
bool parseEnvInt(const char *Name, const char *Text, long long Min,
                 long long Max, long long &Out) {
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || V < Min || V > Max) {
    std::fprintf(stderr,
                 "warning: ignoring %s='%s' (expected an integer in "
                 "[%lld, %lld]); keeping the default\n",
                 Name, Text, Min, Max);
    return false;
  }
  Out = V;
  return true;
}

/// Strict env-double parsing: the whole string must be a finite number
/// strictly greater than \p Min. Warns and reports failure otherwise.
bool parseEnvSeconds(const char *Name, const char *Text, double Min,
                     double &Out) {
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || errno == ERANGE ||
      !(V > Min) || !(V < 1e30)) {
    std::fprintf(stderr,
                 "warning: ignoring %s='%s' (expected seconds > %g); "
                 "keeping the default\n",
                 Name, Text, Min);
    return false;
  }
  Out = V;
  return true;
}

} // namespace

BenchConfig BenchConfig::fromEnv() {
  BenchConfig Config;
  long long V = 0;
  if (const char *E = std::getenv("MODSCHED_BENCH_LOOPS"))
    if (parseEnvInt("MODSCHED_BENCH_LOOPS", E, 0, 1000000, V))
      Config.SyntheticLoops = static_cast<int>(V);
  if (const char *E = std::getenv("MODSCHED_BENCH_TIMELIMIT"))
    parseEnvSeconds("MODSCHED_BENCH_TIMELIMIT", E, 0.0,
                    Config.TimeLimitSeconds);
  if (const char *E = std::getenv("MODSCHED_BENCH_SEED")) {
    // Seeds use the full uint64 range; parse via the widest unsigned
    // type with the same strictness.
    errno = 0;
    char *End = nullptr;
    unsigned long long S = std::strtoull(E, &End, 10);
    if (End == E || *End != '\0' || errno == ERANGE)
      std::fprintf(stderr,
                   "warning: ignoring MODSCHED_BENCH_SEED='%s' (expected "
                   "an unsigned integer); keeping the default\n",
                   E);
    else
      Config.Seed = S;
  }
  if (const char *E = std::getenv("MODSCHED_BENCH_WARMSTART"))
    if (parseEnvInt("MODSCHED_BENCH_WARMSTART", E, 0, 1, V))
      Config.WarmStart = V != 0;
  if (const char *E = std::getenv("MODSCHED_BENCH_JOBS"))
    if (parseEnvInt("MODSCHED_BENCH_JOBS", E, 1, 256, V))
      Config.Jobs = static_cast<int>(V);
  if (const char *E = std::getenv("MODSCHED_BENCH_EXPLAIN"))
    if (parseEnvInt("MODSCHED_BENCH_EXPLAIN", E, 0, 1, V))
      Config.Explain = V != 0;
  if (const char *E = std::getenv("MODSCHED_BENCH_CACHE"))
    if (parseEnvInt("MODSCHED_BENCH_CACHE", E, 0, 1, V))
      Config.Cache = V != 0;
  if (const char *E = std::getenv("MODSCHED_BENCH_ENGINE")) {
    if (std::strcmp(E, "dense") == 0)
      Config.Engine = lp::SimplexEngine::Dense;
    else if (std::strcmp(E, "sparse") == 0 ||
             std::strcmp(E, "sparse_revised") == 0)
      Config.Engine = lp::SimplexEngine::SparseRevised;
    else
      std::fprintf(stderr,
                   "warning: ignoring MODSCHED_BENCH_ENGINE='%s' "
                   "(expected dense|sparse); keeping %s\n",
                   E, lp::toString(Config.Engine));
  }
  if (const char *E = std::getenv("MODSCHED_BENCH_BACKEND")) {
    if (std::strcmp(E, "ilp") == 0)
      Config.Backend = SchedulerBackend::Ilp;
    else if (std::strcmp(E, "pb") == 0)
      Config.Backend = SchedulerBackend::Pb;
    else if (std::strcmp(E, "portfolio") == 0)
      Config.Backend = SchedulerBackend::Portfolio;
    else
      std::fprintf(stderr,
                   "warning: ignoring MODSCHED_BENCH_BACKEND='%s' "
                   "(expected ilp|pb|portfolio); keeping %s\n",
                   E, toString(Config.Backend));
  }
  return Config;
}

std::vector<DependenceGraph> bench::benchSuite(const MachineModel &M,
                                               const BenchConfig &Config) {
  return generateSuite(M, Config.SyntheticLoops, Config.Seed,
                       /*IncludeKernels=*/true, Config.LargeCap);
}

LoopRecord LoopRecord::fromResult(const DependenceGraph &G,
                                  const ScheduleResult &R,
                                  const MachineModel *M) {
  LoopRecord Rec;
  Rec.Name = G.name();
  Rec.NumOps = G.numOperations();
  Rec.Solved = R.Found;
  Rec.TimedOut = R.TimedOut;
  Rec.NodeLimitHit = R.NodeLimitHit;
  Rec.CacheHit = R.CacheHit;
  Rec.II = R.II;
  Rec.Mii = R.Mii;
  Rec.Nodes = R.Nodes;
  Rec.SimplexIterations = R.SimplexIterations;
  Rec.PbConflicts = R.PbConflicts;
  Rec.PbPropagations = R.PbPropagations;
  Rec.WarmLpSolves = R.WarmLpSolves;
  Rec.ColdLpSolves = R.ColdLpSolves;
  Rec.WarmLpIterations = R.WarmLpIterations;
  Rec.LpRefactorizations = R.LpRefactorizations;
  Rec.LpEtaNonzeros = R.LpEtaNonzeros;
  Rec.Variables = R.Variables;
  Rec.Constraints = R.Constraints;
  Rec.Seconds = R.Seconds;
  Rec.Secondary = R.SecondaryObjective;
  Rec.Attempts = R.Attempts;
  Rec.AttemptDetails.resize(Rec.Attempts.size());
  for (size_t I = 0; I < Rec.Attempts.size(); ++I) {
    const IiAttempt &A = Rec.Attempts[I];
    // An infeasible verdict is any non-cancelled attempt that neither
    // scheduled nor censored — exactly the attempts the forensics layer
    // promises a witness for.
    const bool Infeasible = !A.Scheduled && !A.Cancelled &&
                            A.Status == ilp::MipStatus::Infeasible;
    if (Infeasible) {
      if (A.Explain)
        ++Rec.ExplainedAttempts;
      else
        ++Rec.UnexplainedAttempts;
    }
    if (A.Explain && M)
      Rec.AttemptDetails[I] = describeExplanation(G, *M, A.II, *A.Explain);
  }
  if (R.Found) {
    RegisterPressure P = computeRegisterPressure(G, R.Schedule);
    Rec.MaxLive = P.MaxLive;
    Rec.TotalLifetime = P.TotalLifetime;
    Rec.Buffers = P.Buffers;
  }
  return Rec;
}

std::vector<LoopRecord>
bench::runOptimal(const MachineModel &M,
                  const std::vector<DependenceGraph> &Suite, Objective Obj,
                  DependenceStyle Dep, const BenchConfig &Config) {
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Obj;
  Opts.Formulation.DepStyle = Dep;
  Opts.TimeLimitSeconds = Config.TimeLimitSeconds;
  Opts.NodeLimit = Config.NodeLimit;
  Opts.WarmStart = Config.WarmStart;
  Opts.LpEngine = Config.Engine;
  Opts.Backend = Config.Backend;
  Opts.Explain = Config.Explain;
  Opts.Cache = Config.Cache;
  OptimalModuloScheduler Scheduler(M, Opts);

  // One-line forensics summary after the sweep: how the infeasible II
  // attempts were explained (the acceptance metric is <5% unexplained).
  auto PrintExplainSummary = [&](const std::vector<LoopRecord> &Records) {
    if (!Config.Explain)
      return;
    int64_t Cycle = 0, Resource = 0, Window = 0, Unexplained = 0;
    for (const LoopRecord &R : Records) {
      Unexplained += R.UnexplainedAttempts;
      for (const IiAttempt &A : R.Attempts) {
        if (!A.Explain)
          continue;
        switch (A.Explain->Kind) {
        case WitnessKind::RecurrenceCycle:
          ++Cycle;
          break;
        case WitnessKind::ResourceSaturation:
          ++Resource;
          break;
        case WitnessKind::ScheduleWindow:
          ++Window;
          break;
        case WitnessKind::None:
          break;
        }
      }
    }
    std::printf("explanations [%s/%s]: %lld cycle, %lld resource, "
                "%lld window, %lld unexplained\n",
                toString(Obj), toString(Dep),
                static_cast<long long>(Cycle),
                static_cast<long long>(Resource),
                static_cast<long long>(Window),
                static_cast<long long>(Unexplained));
  };

  std::vector<LoopRecord> Records(Suite.size());
  const int Jobs = std::max(1, Config.Jobs);
  if (Jobs == 1 || Suite.size() <= 1) {
    for (size_t I = 0; I < Suite.size(); ++I)
      Records[I] = LoopRecord::fromResult(Suite[I],
                                          Scheduler.schedule(Suite[I]), &M);
    PrintExplainSummary(Records);
    return Records;
  }

  // Parallel per-loop sweep (MODSCHED_BENCH_JOBS): one task per loop on
  // a fixed pool. The scheduler is reentrant — every attempt solves
  // under its own SolveContext and worker-thread telemetry accumulates
  // in per-thread shards — and each task writes only its own record
  // slot, so the output vector keeps suite order deterministically.
  // Wall-clock censoring is per loop exactly as in the serial sweep,
  // but loops now compete for cores; use the node-limit censor when
  // cross-machine determinism matters.
  ThreadPool Pool(Jobs);
  for (size_t I = 0; I < Suite.size(); ++I)
    Pool.submit([&Records, &Suite, &Scheduler, &M, I]() {
      Records[I] = LoopRecord::fromResult(Suite[I],
                                          Scheduler.schedule(Suite[I]), &M);
    });
  Pool.wait();
  PrintExplainSummary(Records);
  return Records;
}

int bench::countSolved(const std::vector<LoopRecord> &Records) {
  int Count = 0;
  for (const LoopRecord &R : Records)
    Count += R.Solved;
  return Count;
}

void bench::printPortfolioSummary(const std::string &Label,
                                  const std::vector<LoopRecord> &Records) {
  int64_t IlpWins = 0, PbWins = 0, Exchanges = 0, Undecided = 0;
  for (const LoopRecord &R : Records)
    for (const IiAttempt &A : R.Attempts) {
      if (A.Winner == "ilp")
        ++IlpWins;
      else if (A.Winner == "pb")
        ++PbWins;
      else if (A.Winner.empty())
        ++Undecided;
      Exchanges += A.BoundExchanges;
    }
  if (IlpWins + PbWins == 0)
    return; // Single-engine backend (or nothing conclusive): stay quiet.
  std::printf("portfolio winners [%s]: %lld ilp, %lld pb "
              "(%lld undecided attempts, %lld bound exchanges)\n\n",
              Label.c_str(), static_cast<long long>(IlpWins),
              static_cast<long long>(PbWins),
              static_cast<long long>(Undecided),
              static_cast<long long>(Exchanges));
}

std::vector<int> bench::commonlySolved(
    const std::vector<std::vector<LoopRecord>> &RecordSets) {
  std::vector<int> Common;
  if (RecordSets.empty())
    return Common;
  size_t NumLoops = RecordSets.front().size();
  for (size_t Loop = 0; Loop < NumLoops; ++Loop) {
    bool All = true;
    for (const std::vector<LoopRecord> &Set : RecordSets)
      All = All && Set[Loop].Solved;
    if (All)
      Common.push_back(static_cast<int>(Loop));
  }
  return Common;
}

void bench::printPaperTableBlock(const std::string &SchedulerName,
                                 const std::vector<LoopRecord> &Records) {
  SummaryStats Vars, Cons, Nodes, Iters, Ii, N;
  for (const LoopRecord &R : Records) {
    if (!R.Solved)
      continue;
    Vars.add(R.Variables);
    Cons.add(R.Constraints);
    Nodes.add(static_cast<double>(R.Nodes));
    Iters.add(static_cast<double>(R.SimplexIterations));
    Ii.add(R.II);
    N.add(R.NumOps);
  }
  std::printf("%s: (%zu loops)\n", SchedulerName.c_str(),
              static_cast<size_t>(Vars.count()));
  if (Vars.empty()) {
    std::printf("  (no loops solved)\n");
    return;
  }
  TablePrinter T;
  T.setHeader({"Measurements:", "min", "freq", "median", "average", "max"});
  auto Row = [&T](const char *Label, const SummaryStats &S) {
    T.addRow({Label, formatDouble(S.min()), formatPercent(S.freqOfMin()),
              formatDouble(S.median()), formatDouble(S.average()),
              formatDouble(S.max())});
  };
  Row("Variables", Vars);
  Row("Constraints", Cons);
  Row("Branch-and-bound nodes", Nodes);
  Row("Simplex iterations", Iters);
  Row("II", Ii);
  Row("N", N);
  std::printf("%s\n", T.render().c_str());
}

//===----------------------------------------------------------------------===//
// BenchJson
//===----------------------------------------------------------------------===//

BenchJson::BenchJson(std::string Experiment)
    : Experiment(std::move(Experiment)) {}

void BenchJson::setServiceSummary(ServiceSummary Summary) {
  Service = std::move(Summary);
}

void BenchJson::addMetric(std::string Key, double Value) {
  Metrics.emplace_back(std::move(Key), Value);
}

void BenchJson::addRecordSet(std::string Label,
                             std::vector<LoopRecord> Records) {
  Sets.push_back({std::move(Label), std::move(Records)});
}

namespace {

void emitRecord(json::JsonWriter &W, const LoopRecord &R) {
  W.beginObject();
  W.key("name").value(R.Name);
  W.key("n").value(R.NumOps);
  W.key("solved").value(R.Solved);
  W.key("timed_out").value(R.TimedOut);
  W.key("node_limit_hit").value(R.NodeLimitHit);
  W.key("cache_hit").value(R.CacheHit);
  W.key("status").value(R.status());
  W.key("ii").value(R.II);
  W.key("mii").value(R.Mii);
  W.key("nodes").value(R.Nodes);
  W.key("iterations").value(R.SimplexIterations);
  W.key("pb_conflicts").value(R.PbConflicts);
  W.key("pb_propagations").value(R.PbPropagations);
  W.key("warm_solves").value(R.WarmLpSolves);
  W.key("cold_solves").value(R.ColdLpSolves);
  W.key("warm_iterations").value(R.WarmLpIterations);
  W.key("refactorizations").value(R.LpRefactorizations);
  W.key("eta_nnz").value(R.LpEtaNonzeros);
  W.key("variables").value(R.Variables);
  W.key("constraints").value(R.Constraints);
  W.key("seconds").value(R.Seconds);
  W.key("secondary").value(R.Secondary);
  W.key("max_live").value(R.MaxLive);
  W.key("total_lifetime").value(static_cast<int64_t>(R.TotalLifetime));
  W.key("buffers").value(static_cast<int64_t>(R.Buffers));
  W.key("explained_attempts").value(R.ExplainedAttempts);
  W.key("unexplained_attempts").value(R.UnexplainedAttempts);
  W.key("attempts").beginArray();
  for (size_t I = 0; I < R.Attempts.size(); ++I) {
    const IiAttempt &A = R.Attempts[I];
    W.beginObject();
    W.key("ii").value(A.II);
    W.key("status").value(ilp::toString(A.Status));
    W.key("window_infeasible").value(A.WindowInfeasible);
    W.key("scheduled").value(A.Scheduled);
    W.key("cancelled").value(A.Cancelled);
    W.key("nodes").value(A.Nodes);
    W.key("iterations").value(A.SimplexIterations);
    W.key("pb_conflicts").value(A.PbConflicts);
    W.key("variables").value(A.Variables);
    W.key("constraints").value(A.Constraints);
    W.key("seconds").value(A.Seconds);
    // Portfolio race outcome (schema v7): the engine whose verdict was
    // committed ("ilp" / "pb"; empty on non-conclusive attempts and
    // under single-engine backends) and the cross-engine incumbent
    // exchanges the attempt performed.
    W.key("winner").value(A.Winner);
    W.key("bound_exchanges").value(A.BoundExchanges);
    // Forensics (schema v6). Always emitted so consumers need no
    // key-existence branching; defaults mean "no evidence".
    W.key("witness").value(A.Explain ? witnessName(A.Explain->Kind)
                                     : witnessName(WitnessKind::None));
    W.key("witness_source")
        .value(A.Explain ? sourceName(A.Explain->Source)
                         : sourceName(ExplainSource::None));
    W.key("witness_verified")
        .value(A.Explain ? A.Explain->Verified : false);
    W.key("witness_detail")
        .value(I < R.AttemptDetails.size() ? R.AttemptDetails[I]
                                           : std::string());
    W.key("proof").value(A.Audit ? A.Audit->Proof : std::string());
    W.key("gap").value(A.Audit ? A.Audit->Gap : 0.0);
    W.key("root_bound")
        .value(A.Audit && A.Audit->HasRootBound ? A.Audit->RootBound : 0.0);
    W.key("trajectory").beginArray();
    if (A.Audit)
      for (const ilp::BoundSample &B : A.Audit->Trajectory) {
        W.beginObject();
        W.key("seconds").value(B.Seconds);
        W.key("nodes").value(B.Nodes);
        W.key("incumbent").value(B.Incumbent >= 1e300 ? 0.0 : B.Incumbent);
        W.key("has_incumbent").value(B.Incumbent < 1e300);
        W.key("bound").value(B.Bound <= -1e300 ? 0.0 : B.Bound);
        W.endObject();
      }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

} // namespace

std::string BenchJson::write() const {
  namespace fs = std::filesystem;
  const char *DirEnv = std::getenv("MODSCHED_BENCH_RESULTS_DIR");
  fs::path Dir = DirEnv && *DirEnv ? fs::path(DirEnv)
                                   : fs::path("bench_results");
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    std::fprintf(stderr, "warning: cannot create %s: %s\n",
                 Dir.string().c_str(), Ec.message().c_str());
    return std::string();
  }
  fs::path Path = Dir / ("BENCH_" + Experiment + ".json");

  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.key("schema_version").value(9);
  W.key("experiment").value(Experiment);
  W.key("generated_unix")
      .value(static_cast<int64_t>(std::time(nullptr)));
  W.key("config").beginObject();
  W.key("synthetic_loops").value(Cfg.SyntheticLoops);
  W.key("seed").value(static_cast<uint64_t>(Cfg.Seed));
  W.key("time_limit_seconds").value(Cfg.TimeLimitSeconds);
  W.key("node_limit").value(Cfg.NodeLimit);
  W.key("large_cap").value(Cfg.LargeCap);
  W.key("warm_start").value(Cfg.WarmStart);
  W.key("jobs").value(Cfg.Jobs);
  W.key("engine").value(lp::toString(Cfg.Engine));
  W.key("backend").value(toString(Cfg.Backend));
  W.key("explain").value(Cfg.Explain);
  W.key("cache").value(Cfg.Cache);
  W.endObject();
  // Solution-cache counter snapshot (schema v8): process-lifetime
  // ilpsched/cache.* telemetry at write time. All zero in cache-off
  // runs; a second identical sweep in one process shows the hits.
  W.key("cache_counters").beginObject();
  for (const char *Name : {"hits", "misses", "inserts", "evictions"}) {
    telemetry::Counter *C =
        telemetry::findCounter(std::string("ilpsched/cache.") + Name);
    W.key(Name).value(C ? C->value() : int64_t(0));
  }
  W.endObject();
  // Service-bench replay summary (schema v9, optional): present only
  // when the experiment drove the scheduling service (bench/
  // service_bench). Status keys are the protocol's closed status set;
  // the validator rejects anything else.
  if (Service) {
    W.key("service").beginObject();
    W.key("requests").value(Service->Requests);
    W.key("shed").value(Service->Shed);
    W.key("errors").value(Service->Errors);
    W.key("cache_hits").value(Service->CacheHits);
    W.key("qps").value(Service->Qps);
    W.key("p50_ms").value(Service->P50Ms);
    W.key("p95_ms").value(Service->P95Ms);
    W.key("p99_ms").value(Service->P99Ms);
    W.key("cache_hit_rate").value(Service->CacheHitRate);
    W.key("statuses").beginObject();
    for (const auto &[Status, Count] : Service->Statuses)
      W.key(Status).value(Count);
    W.endObject();
    W.endObject();
  }
  W.key("metrics").beginObject();
  for (const auto &[Key, Value] : Metrics)
    W.key(Key).value(Value);
  W.endObject();
  W.key("record_sets").beginArray();
  for (const RecordSet &Set : Sets) {
    W.beginObject();
    W.key("label").value(Set.Label);
    W.key("records").beginArray();
    for (const LoopRecord &R : Set.Records)
      emitRecord(W, R);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  assert(W.done() && "unbalanced JSON emission");
  Out.push_back('\n');

  std::FILE *F = std::fopen(Path.string().c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write %s\n",
                 Path.string().c_str());
    return std::string();
  }
  std::fwrite(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  std::fprintf(stderr, "bench results: %s\n", Path.string().c_str());
  return Path.string();
}
