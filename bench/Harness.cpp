//===- bench/Harness.cpp - Shared experiment harness ----------------------===//

#include "Harness.h"

#include "sched/RegisterPressure.h"
#include "support/Format.h"
#include "support/Statistics.h"
#include "workloads/SyntheticGenerator.h"

#include <cstdio>
#include <cstdlib>

using namespace modsched;
using namespace modsched::bench;

BenchConfig BenchConfig::fromEnv() {
  BenchConfig Config;
  if (const char *E = std::getenv("MODSCHED_BENCH_LOOPS"))
    Config.SyntheticLoops = std::atoi(E);
  if (const char *E = std::getenv("MODSCHED_BENCH_TIMELIMIT"))
    Config.TimeLimitSeconds = std::atof(E);
  if (const char *E = std::getenv("MODSCHED_BENCH_SEED"))
    Config.Seed = std::strtoull(E, nullptr, 10);
  return Config;
}

std::vector<DependenceGraph> bench::benchSuite(const MachineModel &M,
                                               const BenchConfig &Config) {
  return generateSuite(M, Config.SyntheticLoops, Config.Seed,
                       /*IncludeKernels=*/true, Config.LargeCap);
}

std::vector<LoopRecord>
bench::runOptimal(const MachineModel &M,
                  const std::vector<DependenceGraph> &Suite, Objective Obj,
                  DependenceStyle Dep, const BenchConfig &Config) {
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Obj;
  Opts.Formulation.DepStyle = Dep;
  Opts.TimeLimitSeconds = Config.TimeLimitSeconds;
  Opts.NodeLimit = Config.NodeLimit;
  OptimalModuloScheduler Scheduler(M, Opts);

  std::vector<LoopRecord> Records;
  Records.reserve(Suite.size());
  for (const DependenceGraph &G : Suite) {
    ScheduleResult R = Scheduler.schedule(G);
    LoopRecord Rec;
    Rec.Name = G.name();
    Rec.NumOps = G.numOperations();
    Rec.Solved = R.Found;
    Rec.TimedOut = R.TimedOut;
    Rec.II = R.II;
    Rec.Mii = R.Mii;
    Rec.Nodes = R.Nodes;
    Rec.SimplexIterations = R.SimplexIterations;
    Rec.Variables = R.Variables;
    Rec.Constraints = R.Constraints;
    Rec.Seconds = R.Seconds;
    Rec.Secondary = R.SecondaryObjective;
    if (R.Found) {
      RegisterPressure P = computeRegisterPressure(G, R.Schedule);
      Rec.MaxLive = P.MaxLive;
      Rec.TotalLifetime = P.TotalLifetime;
      Rec.Buffers = P.Buffers;
    }
    Records.push_back(std::move(Rec));
  }
  return Records;
}

int bench::countSolved(const std::vector<LoopRecord> &Records) {
  int Count = 0;
  for (const LoopRecord &R : Records)
    Count += R.Solved;
  return Count;
}

std::vector<int> bench::commonlySolved(
    const std::vector<std::vector<LoopRecord>> &RecordSets) {
  std::vector<int> Common;
  if (RecordSets.empty())
    return Common;
  size_t NumLoops = RecordSets.front().size();
  for (size_t Loop = 0; Loop < NumLoops; ++Loop) {
    bool All = true;
    for (const std::vector<LoopRecord> &Set : RecordSets)
      All = All && Set[Loop].Solved;
    if (All)
      Common.push_back(static_cast<int>(Loop));
  }
  return Common;
}

void bench::printPaperTableBlock(const std::string &SchedulerName,
                                 const std::vector<LoopRecord> &Records) {
  SummaryStats Vars, Cons, Nodes, Iters, Ii, N;
  for (const LoopRecord &R : Records) {
    if (!R.Solved)
      continue;
    Vars.add(R.Variables);
    Cons.add(R.Constraints);
    Nodes.add(static_cast<double>(R.Nodes));
    Iters.add(static_cast<double>(R.SimplexIterations));
    Ii.add(R.II);
    N.add(R.NumOps);
  }
  std::printf("%s: (%zu loops)\n", SchedulerName.c_str(),
              static_cast<size_t>(Vars.count()));
  if (Vars.empty()) {
    std::printf("  (no loops solved)\n");
    return;
  }
  TablePrinter T;
  T.setHeader({"Measurements:", "min", "freq", "median", "average", "max"});
  auto Row = [&T](const char *Label, const SummaryStats &S) {
    T.addRow({Label, formatDouble(S.min()), formatPercent(S.freqOfMin()),
              formatDouble(S.median()), formatDouble(S.average()),
              formatDouble(S.max())});
  };
  Row("Variables", Vars);
  Row("Constraints", Cons);
  Row("Branch-and-bound nodes", Nodes);
  Row("Simplex iterations", Iters);
  Row("II", Ii);
  Row("N", N);
  std::printf("%s\n", T.render().c_str());
}
