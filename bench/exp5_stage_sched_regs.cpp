//===- bench/exp5_stage_sched_regs.cpp - Register quality (Sec. 6) --------===//
//
// Paper Section 6: register requirements of the stage-scheduling
// heuristic (run on Iterative Modulo Scheduler output) versus the optimal
// MinReg / MinLife / MinBuff schedulers. In the paper, MinReg beats the
// heuristic on 23.6% of loops, MinLife on 18.5%, MinBuff on 4.5%; the
// heuristic beats MinLife on 3.2% and MinBuff on 12.3% (possible because
// those objectives only approximate MaxLive).
//
// Comparisons use the ACTUAL register requirement (MaxLive computed on
// the concrete schedule), exactly as the paper reports.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "heuristic/IterativeModuloScheduler.h"
#include "heuristic/StageScheduler.h"
#include "sched/RegisterPressure.h"

#include <cstdio>

using namespace modsched;
using namespace modsched::bench;

int main() {
  BenchConfig Config = BenchConfig::fromEnv();
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = benchSuite(M, Config);
  std::printf("Experiment 5: stage-scheduling heuristic vs optimal "
              "register schedulers (suite: %zu loops)\n\n",
              Suite.size());

  // Heuristic: IMS + stage scheduling (MaxLive-guided).
  IterativeModuloScheduler Ims(M);
  std::vector<int> HeurII(Suite.size(), -1), HeurMaxLive(Suite.size(), 0);
  for (size_t I = 0; I < Suite.size(); ++I) {
    ImsResult R = Ims.schedule(Suite[I]);
    if (!R.Found)
      continue;
    StageSchedulerOptions StageOpts;
    StageOpts.Metric = StageMetric::MaxLive;
    ModuloSchedule S = stageSchedule(Suite[I], R.Schedule, StageOpts);
    HeurII[I] = R.II;
    HeurMaxLive[I] = computeRegisterPressure(Suite[I], S).MaxLive;
  }

  BenchJson Json("exp5_stage_sched_regs");
  Json.setConfig(Config);

  const Objective Objs[] = {Objective::MinReg, Objective::MinLife,
                            Objective::MinBuff};
  const char *Names[] = {"MinReg", "MinLife", "MinBuff"};
  std::printf("%-8s %10s %12s %12s %8s\n", "optimal", "compared",
              "opt better", "heur better", "equal");
  for (int O = 0; O < 3; ++O) {
    std::fprintf(stderr, "running %s...\n", Names[O]);
    std::vector<LoopRecord> Records = runOptimal(
        M, Suite, Objs[O], DependenceStyle::Structured, Config);
    int Compared = 0, OptBetter = 0, HeurBetter = 0, Equal = 0;
    for (size_t I = 0; I < Suite.size(); ++I) {
      // Register comparison is only meaningful at the same II.
      if (!Records[I].Solved || HeurII[I] != Records[I].II)
        continue;
      ++Compared;
      if (Records[I].MaxLive < HeurMaxLive[I])
        ++OptBetter;
      else if (Records[I].MaxLive > HeurMaxLive[I])
        ++HeurBetter;
      else
        ++Equal;
    }
    std::printf("%-8s %10d %11.1f%% %11.1f%% %7.1f%%\n", Names[O], Compared,
                100.0 * OptBetter / std::max(1, Compared),
                100.0 * HeurBetter / std::max(1, Compared),
                100.0 * Equal / std::max(1, Compared));
    Json.addMetric(std::string("compared_") + Names[O], Compared);
    Json.addMetric(std::string("opt_better_") + Names[O], OptBetter);
    Json.addMetric(std::string("heur_better_") + Names[O], HeurBetter);
    Json.addMetric(std::string("equal_") + Names[O], Equal);
    Json.addRecordSet(Names[O], std::move(Records));
  }
  std::printf("\n(paper: optimal better for 23.6%% / 18.5%% / 4.5%% of "
              "loops; heuristic better for 0%% / 3.2%% / 12.3%%)\n");
  Json.write();
  return 0;
}
