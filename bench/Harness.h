//===- bench/Harness.h - Shared experiment harness --------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common infrastructure for the experiment binaries: the benchmark suite
/// (hand kernels + calibrated synthetic loops standing in for the paper's
/// 1327 Fortran loops), per-loop result records, and printers for the
/// paper's table layout (min / freq-of-min / median / average / max).
///
/// Budgets are configurable through the environment so the default run
/// finishes in minutes while a patient user can approach the paper's
/// 15-minute-per-loop setting:
///   MODSCHED_BENCH_LOOPS      number of synthetic loops (default 110)
///   MODSCHED_BENCH_TIMELIMIT  per-loop seconds (default 2.0)
///   MODSCHED_BENCH_SEED       suite seed (default 20260705)
///   MODSCHED_BENCH_WARMSTART  0 disables warm-started node LPs (default 1;
///                             the knob behind warm-vs-cold A/B runs)
///   MODSCHED_BENCH_ENGINE     LP engine for every node LP: "sparse" (the
///                             default, also "sparse_revised") or "dense"
///                             — the knob behind sparse-vs-dense A/B runs
///   MODSCHED_BENCH_BACKEND    exact engine behind every attempt: "ilp"
///                             (LP-based branch-and-bound), "pb" (CDCL
///                             pseudo-Boolean), or "portfolio" (both
///                             raced per II with cross-engine bound
///                             sharing) — the knob behind backend A/B
///                             runs; the compiled-in default follows
///                             MODSCHED_BACKEND
///   MODSCHED_BENCH_JOBS       worker threads for the per-loop sweep
///                             (default 1 = serial; loops are scheduled
///                             concurrently, records stay in suite order)
///   MODSCHED_BENCH_EXPLAIN    0 disables solve forensics (default 1:
///                             every infeasible II attempt carries a
///                             re-verified witness and every solved one
///                             an optimality audit; see
///                             docs/OBSERVABILITY.md)
///   MODSCHED_BENCH_CACHE      1 enables the content-addressed solution
///                             cache (default 0 so effort columns
///                             measure the solver; the compiled-in
///                             default follows MODSCHED_CACHE)
///
/// Malformed or out-of-range values are rejected with a warning on
/// stderr and the compiled-in default is kept — "MODSCHED_BENCH_LOOPS=
/// ten" or a negative time limit never silently becomes 0.
///
/// Every experiment binary also writes its per-loop records and resolved
/// configuration to bench_results/BENCH_<experiment>.json (see BenchJson
/// below); the directory is overridden with
///   MODSCHED_BENCH_RESULTS_DIR  output directory (default bench_results)
/// and the solver-level observability switches (docs/OBSERVABILITY.md)
/// compose freely with any bench run (MODSCHED_BENCH_JOBS included —
/// worker-thread telemetry merges through the thread shards):
///   MODSCHED_TRACE=<file>     Chrome trace_event (.json) / JSONL trace
///   MODSCHED_STATS=1          counter/timer report on stderr at exit
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_BENCH_HARNESS_H
#define MODSCHED_BENCH_HARNESS_H

#include "graph/DependenceGraph.h"
#include "ilpsched/OptimalScheduler.h"
#include "machine/MachineModel.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace modsched {
namespace bench {

/// Budgets and suite shape for one experiment run.
struct BenchConfig {
  int SyntheticLoops = 110;
  uint64_t Seed = 20260705;
  double TimeLimitSeconds = 2.0;
  int64_t NodeLimit = 200000;
  /// Largest synthetic loop body.
  int LargeCap = 32;
  /// Warm-start node LPs from the parent basis (SchedulerOptions::
  /// WarmStart); MODSCHED_BENCH_WARMSTART=0 turns it off for A/B runs.
  bool WarmStart = true;
  /// LP engine for every node LP (SchedulerOptions::LpEngine);
  /// MODSCHED_BENCH_ENGINE=dense|sparse overrides for A/B runs. The
  /// compiled-in default follows MODSCHED_LP_ENGINE (lp/Simplex.h).
  lp::SimplexEngine Engine = lp::defaultSimplexEngine();
  /// Exact engine behind every attempt (SchedulerOptions::Backend):
  /// ILP branch-and-bound, the CDCL pseudo-Boolean solver, or the
  /// portfolio racing both with cross-engine bound sharing.
  /// MODSCHED_BENCH_BACKEND=ilp|pb|portfolio overrides for A/B runs;
  /// the compiled-in default follows MODSCHED_BACKEND (ilpsched/
  /// OptimalScheduler.h). Formulations the PB backend cannot encode
  /// fall back to ILP per attempt with a one-time warning.
  SchedulerBackend Backend = defaultSchedulerBackend();
  /// Worker threads for the per-loop sweep (MODSCHED_BENCH_JOBS). One
  /// loop is one task; with >1 the sweep runs on a ThreadPool, each
  /// attempt under its own SolveContext, and the record vector keeps
  /// suite order regardless of completion order.
  int Jobs = 1;
  /// Solve forensics (SchedulerOptions::Explain): infeasibility
  /// witnesses and optimality audits on every attempt record.
  /// MODSCHED_BENCH_EXPLAIN=0 turns it off for overhead A/B runs.
  bool Explain = true;
  /// Content-addressed solution cache (SchedulerOptions::Cache). Off by
  /// default so effort columns (nodes, iterations, conflicts) measure
  /// the solver, not cache replay; MODSCHED_BENCH_CACHE=1 turns it on
  /// (the compiled-in default follows MODSCHED_CACHE). Cache-served
  /// records report cache_hit=true with zero solver effort and are
  /// excluded from solver-time comparisons by scripts/bench_compare.py.
  bool Cache = defaultCacheEnabled();

  /// Reads the MODSCHED_BENCH_* environment overrides. Invalid values
  /// warn on stderr and keep the defaults above.
  static BenchConfig fromEnv();
};

/// Per-loop outcome of one scheduler configuration.
struct LoopRecord {
  std::string Name;
  int NumOps = 0;
  bool Solved = false;
  bool TimedOut = false;
  /// Node budget exhausted (deterministic censoring, distinct from the
  /// machine-dependent wall-clock timeout; both can be set).
  bool NodeLimitHit = false;
  /// Served from the solution cache: the schedule was replayed from a
  /// previous verified solve of a canonically identical problem; every
  /// solver-effort field below is 0 and Attempts is empty.
  bool CacheHit = false;
  int II = 0;
  int Mii = 0;
  int64_t Nodes = 0;
  int64_t SimplexIterations = 0;
  /// CDCL conflicts / unit propagations summed over all PB solves (see
  /// ScheduleResult; zeros for ILP-backend records).
  int64_t PbConflicts = 0;
  int64_t PbPropagations = 0;
  /// Warm-started / cold node LP solves and the iterations spent inside
  /// warm solves (see MipResult; zeros for pre-warm-start records).
  int64_t WarmLpSolves = 0;
  int64_t ColdLpSolves = 0;
  int64_t WarmLpIterations = 0;
  /// Basis refactorizations / eta nonzeros summed over all node LPs
  /// (see MipResult; zeros for dense-engine and pre-sparse records).
  int64_t LpRefactorizations = 0;
  int64_t LpEtaNonzeros = 0;
  int Variables = 0;
  int Constraints = 0;
  double Seconds = 0.0;
  double Secondary = 0.0;
  int MaxLive = 0;
  long TotalLifetime = 0;
  long Buffers = 0;
  /// Per-tentative-II telemetry copied from ScheduleResult.
  std::vector<IiAttempt> Attempts;
  /// Human-readable witness per attempt (parallel to Attempts; empty
  /// when the attempt carries no witness or fromResult had no machine
  /// model to render against).
  std::vector<std::string> AttemptDetails;
  /// Infeasible attempts that carry / lack a graph-level witness (the
  /// <5%-unexplained acceptance metric; both 0 when forensics are off).
  int ExplainedAttempts = 0;
  int UnexplainedAttempts = 0;

  /// Builds the record from one scheduling run — the single place where
  /// ScheduleResult fields are copied into the bench layer, so adding a
  /// field cannot silently drift between experiment binaries. Computes
  /// the concrete register pressure when a schedule was found. \p M,
  /// when non-null, lets witnesses be rendered into AttemptDetails.
  static LoopRecord fromResult(const DependenceGraph &G,
                               const ScheduleResult &R,
                               const MachineModel *M = nullptr);

  /// "solved", "timeout", "node_limit", or "unsolved" (proved
  /// infeasible / gave up). A run censored by both budgets reports
  /// "timeout" (the wall clock is what the paper's tables censor on);
  /// the node_limit_hit field still records the node budget.
  const char *status() const {
    if (Solved)
      return "solved";
    if (TimedOut)
      return "timeout";
    if (NodeLimitHit)
      return "node_limit";
    return "unsolved";
  }
};

/// The benchmark suite: hand kernels followed by synthetic loops.
std::vector<DependenceGraph> benchSuite(const MachineModel &M,
                                        const BenchConfig &Config);

/// Runs one optimal-scheduler configuration over the whole suite.
std::vector<LoopRecord> runOptimal(const MachineModel &M,
                                   const std::vector<DependenceGraph> &Suite,
                                   Objective Obj, DependenceStyle Dep,
                                   const BenchConfig &Config);

/// Prints one scheduler's statistics block in the layout of the paper's
/// Tables 1/2 (variables, constraints, nodes, iterations, II, N), over
/// the solved loops in \p Records.
void printPaperTableBlock(const std::string &SchedulerName,
                          const std::vector<LoopRecord> &Records);

/// Number of solved records.
int countSolved(const std::vector<LoopRecord> &Records);

/// Engine win tally of one record set under the portfolio backend:
/// counts conclusive attempts committed by each engine plus the total
/// cross-engine bound exchanges, and prints one summary line. Silent
/// when no attempt carries a winner (single-engine backends), so the
/// experiment binaries call it unconditionally.
void printPortfolioSummary(const std::string &Label,
                           const std::vector<LoopRecord> &Records);

/// Indices of loops solved in every record set.
std::vector<int>
commonlySolved(const std::vector<std::vector<LoopRecord>> &RecordSets);

/// Closed-loop service benchmark summary (bench/service_bench): QPS,
/// latency percentiles, cache behavior and admission-control outcomes
/// of one request-replay phase, emitted as the optional top-level
/// "service" object of the artifact (schema v9). Status keys must come
/// from the service protocol's closed status set ("ok", "timeout",
/// "node_limit", "unsolved", "cancelled", "error", "retry_after") —
/// scripts/check_bench_json.py rejects unknown strings.
struct ServiceSummary {
  std::int64_t Requests = 0;    ///< Requests submitted (incl. shed).
  std::int64_t Shed = 0;        ///< retry_after replies.
  std::int64_t Errors = 0;      ///< error replies.
  std::int64_t CacheHits = 0;   ///< ok replies served from the cache.
  double Qps = 0.0;             ///< Completed requests per second.
  double P50Ms = 0.0;           ///< Median end-to-end latency.
  double P95Ms = 0.0;
  double P99Ms = 0.0;
  double CacheHitRate = 0.0;    ///< CacheHits / ok replies (0 when none).
  /// Response-status histogram over every reply received.
  std::map<std::string, std::int64_t> Statuses;
};

/// Machine-readable result artifact for one experiment binary.
///
/// Usage: construct with the experiment name, register the resolved
/// BenchConfig, add headline metrics and every record set as they are
/// produced, and call write() before exiting. The artifact is
///   <dir>/BENCH_<experiment>.json
/// with <dir> = $MODSCHED_BENCH_RESULTS_DIR or "bench_results" (created
/// if missing). The schema (schema_version 9: adds the optional
/// top-level "service" object — requests / shed / errors / cache_hits,
/// qps, p50_ms / p95_ms / p99_ms, cache_hit_rate and the statuses
/// histogram of one service-bench replay, with status keys validated
/// against the protocol's closed status set; version 8 added
/// config.cache, the
/// per-record cache_hit flag (true = schedule replayed from the
/// solution cache, zero solver effort, empty attempts), and the
/// top-level cache counter object {hits, misses, inserts, evictions}
/// snapshotted from the ilpsched/cache.* telemetry at write time;
/// version 7 added "portfolio" as a
/// config.backend value and the per-attempt winner ("ilp" / "pb",
/// empty on non-conclusive attempts and under single-engine backends)
/// and bound_exchanges fields; version 6 added config.explain, the
/// per-record explained_attempts / unexplained_attempts counts, and the
/// per-attempt witness / witness_source / witness_verified /
/// witness_detail / proof / gap / root_bound / trajectory forensics
/// fields; version 5 added config.backend and the per-record
/// pb_conflicts / pb_propagations CDCL counters plus the per-attempt
/// pb_conflicts; version 4 added config.engine and the per-record
/// refactorizations / eta_nnz factorization counters; version 3 added
/// config.jobs, the per-record node_limit_hit flag / "node_limit"
/// status, and the per-attempt cancelled flag; version 2 added the
/// warm-start solve counters) is validated by
/// scripts/check_bench_json.py — which still accepts versions 2
/// through 8 — and documented in docs/OBSERVABILITY.md.
class BenchJson {
public:
  explicit BenchJson(std::string Experiment);

  /// Records the resolved configuration (after env overrides).
  void setConfig(const BenchConfig &Config) { Cfg = Config; }

  /// Adds one experiment-specific headline number (coverage, ratios,
  /// ...). Keys should be snake_case.
  void addMetric(std::string Key, double Value);

  /// Registers the service-bench replay summary, emitted as the
  /// top-level "service" object (schema v9; absent when never set).
  void setServiceSummary(ServiceSummary Summary);

  /// Adds one labelled set of per-loop records (one per scheduler
  /// configuration, typically).
  void addRecordSet(std::string Label, std::vector<LoopRecord> Records);

  /// Serializes and writes the artifact. Returns the path written, or
  /// an empty string on I/O failure (a warning is printed to stderr;
  /// experiments report their tables regardless).
  std::string write() const;

private:
  std::string Experiment;
  BenchConfig Cfg;
  std::vector<std::pair<std::string, double>> Metrics;
  /// Set iff setServiceSummary was called (optional block).
  std::optional<ServiceSummary> Service;
  struct RecordSet {
    std::string Label;
    std::vector<LoopRecord> Records;
  };
  std::vector<RecordSet> Sets;
};

} // namespace bench
} // namespace modsched

#endif // MODSCHED_BENCH_HARNESS_H
