//===- bench/Harness.h - Shared experiment harness --------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common infrastructure for the experiment binaries: the benchmark suite
/// (hand kernels + calibrated synthetic loops standing in for the paper's
/// 1327 Fortran loops), per-loop result records, and printers for the
/// paper's table layout (min / freq-of-min / median / average / max).
///
/// Budgets are configurable through the environment so the default run
/// finishes in minutes while a patient user can approach the paper's
/// 15-minute-per-loop setting:
///   MODSCHED_BENCH_LOOPS      number of synthetic loops (default 110)
///   MODSCHED_BENCH_TIMELIMIT  per-loop seconds (default 2.0)
///   MODSCHED_BENCH_SEED       suite seed (default 20260705)
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_BENCH_HARNESS_H
#define MODSCHED_BENCH_HARNESS_H

#include "graph/DependenceGraph.h"
#include "ilpsched/OptimalScheduler.h"
#include "machine/MachineModel.h"

#include <string>
#include <vector>

namespace modsched {
namespace bench {

/// Budgets and suite shape for one experiment run.
struct BenchConfig {
  int SyntheticLoops = 110;
  uint64_t Seed = 20260705;
  double TimeLimitSeconds = 2.0;
  int64_t NodeLimit = 200000;
  /// Largest synthetic loop body.
  int LargeCap = 32;

  /// Reads the MODSCHED_BENCH_* environment overrides.
  static BenchConfig fromEnv();
};

/// Per-loop outcome of one scheduler configuration.
struct LoopRecord {
  std::string Name;
  int NumOps = 0;
  bool Solved = false;
  bool TimedOut = false;
  int II = 0;
  int Mii = 0;
  int64_t Nodes = 0;
  int64_t SimplexIterations = 0;
  int Variables = 0;
  int Constraints = 0;
  double Seconds = 0.0;
  double Secondary = 0.0;
  int MaxLive = 0;
  long TotalLifetime = 0;
  long Buffers = 0;
};

/// The benchmark suite: hand kernels followed by synthetic loops.
std::vector<DependenceGraph> benchSuite(const MachineModel &M,
                                        const BenchConfig &Config);

/// Runs one optimal-scheduler configuration over the whole suite.
std::vector<LoopRecord> runOptimal(const MachineModel &M,
                                   const std::vector<DependenceGraph> &Suite,
                                   Objective Obj, DependenceStyle Dep,
                                   const BenchConfig &Config);

/// Prints one scheduler's statistics block in the layout of the paper's
/// Tables 1/2 (variables, constraints, nodes, iterations, II, N), over
/// the solved loops in \p Records.
void printPaperTableBlock(const std::string &SchedulerName,
                          const std::vector<LoopRecord> &Records);

/// Number of solved records.
int countSolved(const std::vector<LoopRecord> &Records);

/// Indices of loops solved in every record set.
std::vector<int>
commonlySolved(const std::vector<std::vector<LoopRecord>> &RecordSets);

} // namespace bench
} // namespace modsched

#endif // MODSCHED_BENCH_HARNESS_H
