//===- bench/exp6_heuristic_showdown.cpp - Heuristic leaderboard ----------===//
//
// Extension experiment (beyond the paper's tables): grades three
// heuristic pipelines against the optimal schedulers on the same suite —
//   IMS            Rau's Iterative Modulo Scheduler [3][8]
//   IMS+stage      IMS followed by stage scheduling [9][10]
//   Huff           lifetime-sensitive slack scheduling [12]
// reporting (a) fraction of loops scheduled at the optimal II and (b)
// average register overhead versus the MinReg optimum at equal II.
// This is the tuning loop the paper proposes optimal schedulers for.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "heuristic/IterativeModuloScheduler.h"
#include "heuristic/SlackScheduler.h"
#include "heuristic/StageScheduler.h"
#include "sched/RegisterPressure.h"

#include <cstdio>
#include <optional>

using namespace modsched;
using namespace modsched::bench;

namespace {

struct HeuristicOutcome {
  bool Found = false;
  int II = 0;
  int MaxLive = 0;
};

} // namespace

int main() {
  BenchConfig Config = BenchConfig::fromEnv();
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = benchSuite(M, Config);
  std::printf("Experiment 6 (extension): heuristic leaderboard "
              "(suite: %zu loops)\n\n",
              Suite.size());

  BenchJson Json("exp6_heuristic_showdown");
  Json.setConfig(Config);

  // Optimal references.
  std::fprintf(stderr, "running optimal MinReg reference...\n");
  std::vector<LoopRecord> Optimal = runOptimal(
      M, Suite, Objective::MinReg, DependenceStyle::Structured, Config);
  Json.addRecordSet("MinReg-optimal", Optimal);

  IterativeModuloScheduler Ims(M);
  SlackScheduler Slack(M);
  StageSchedulerOptions StageOpts;
  StageOpts.Metric = StageMetric::MaxLive;

  auto RunHeuristic = [&](int Which,
                          const DependenceGraph &G) -> HeuristicOutcome {
    HeuristicOutcome Out;
    if (Which == 2) {
      SlackResult R = Slack.schedule(G);
      if (!R.Found)
        return Out;
      Out = {true, R.II, computeRegisterPressure(G, R.Schedule).MaxLive};
      return Out;
    }
    ImsResult R = Ims.schedule(G);
    if (!R.Found)
      return Out;
    ModuloSchedule S = R.Schedule;
    if (Which == 1)
      S = stageSchedule(G, S, StageOpts);
    Out = {true, R.II, computeRegisterPressure(G, S).MaxLive};
    return Out;
  };

  const char *Names[] = {"IMS", "IMS+stage", "Huff-slack"};
  std::printf("%-10s %9s %12s %14s %14s\n", "heuristic", "solved",
              "opt-II rate", "avg reg ovr", "opt-reg rate");
  for (int Which = 0; Which < 3; ++Which) {
    std::fprintf(stderr, "running %s...\n", Names[Which]);
    int Solved = 0, AtOptII = 0, Comparable = 0, AtOptReg = 0;
    long RegOverhead = 0;
    std::vector<LoopRecord> HeurRecords;
    for (size_t I = 0; I < Suite.size(); ++I) {
      HeuristicOutcome H = RunHeuristic(Which, Suite[I]);
      LoopRecord Rec;
      Rec.Name = Suite[I].name();
      Rec.NumOps = Suite[I].numOperations();
      Rec.Solved = H.Found;
      Rec.II = H.II;
      Rec.MaxLive = H.MaxLive;
      HeurRecords.push_back(std::move(Rec));
      if (!H.Found)
        continue;
      ++Solved;
      if (!Optimal[I].Solved)
        continue;
      if (H.II == Optimal[I].II) {
        ++AtOptII;
        ++Comparable;
        RegOverhead += H.MaxLive - Optimal[I].MaxLive;
        if (H.MaxLive == Optimal[I].MaxLive)
          ++AtOptReg;
      }
    }
    std::printf("%-10s %9d %11.1f%% %14.2f %13.1f%%\n", Names[Which],
                Solved,
                100.0 * AtOptII / std::max(1, countSolved(Optimal)),
                RegOverhead / std::max(1.0, double(Comparable)),
                100.0 * AtOptReg / std::max(1, Comparable));
    Json.addMetric(std::string("solved_") + Names[Which], Solved);
    Json.addMetric(std::string("at_opt_ii_") + Names[Which], AtOptII);
    Json.addMetric(std::string("at_opt_reg_") + Names[Which], AtOptReg);
    Json.addRecordSet(Names[Which], std::move(HeurRecords));
  }
  std::printf("\n(opt-II rate over loops the optimal scheduler solved; "
              "register columns over equal-II loops)\n");
  Json.write();
  return 0;
}
