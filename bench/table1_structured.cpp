//===- bench/table1_structured.cpp - Reproduces Table 1 -------------------===//
//
// Paper Table 1: "Measurements with structured scheduling constraints" —
// min / freq-of-min / median / average / max of variables, constraints,
// branch-and-bound nodes, simplex iterations, II, and N for each of the
// four schedulers over the loops it solved within budget.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace modsched;
using namespace modsched::bench;

int main() {
  BenchConfig Config = BenchConfig::fromEnv();
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = benchSuite(M, Config);
  std::printf("Table 1: measurements with STRUCTURED scheduling "
              "constraints (suite: %zu loops, %.1fs/loop, backend=%s, "
              "engine=%s)\n\n",
              Suite.size(), Config.TimeLimitSeconds,
              toString(Config.Backend), lp::toString(Config.Engine));

  BenchJson Json("table1_structured");
  Json.setConfig(Config);

  const Objective Objs[] = {Objective::None, Objective::MinBuff,
                            Objective::MinLife, Objective::MinReg};
  const char *Names[] = {"NoObj Modulo-Sched", "MinBuff Modulo-Sched",
                         "MinLife Modulo-Sched", "MinReg Modulo-Sched"};
  for (int O = 0; O < 4; ++O) {
    std::fprintf(stderr, "running %s...\n", Names[O]);
    std::vector<LoopRecord> Records =
        runOptimal(M, Suite, Objs[O], DependenceStyle::Structured, Config);
    printPaperTableBlock(Names[O], Records);
    printPortfolioSummary(Names[O], Records);
    Json.addMetric(std::string("solved_") + toString(Objs[O]),
                   countSolved(Records));
    Json.addRecordSet(Names[O], std::move(Records));
  }
  Json.write();
  return 0;
}
