//===- bench/exp7_reg_ii_tradeoff.cpp - Registers vs II (extension) -------===//
//
// Extension experiment: the register-pressure/throughput tradeoff curve
// the MinReg scheduler enables. For each kernel, sweep II upward from
// MII and report the minimum feasible MaxLive at each II — relaxing the
// initiation interval buys register pressure. This is the kind of
// design-space exploration the paper's introduction motivates (optimal
// schedulers as investigation tools), applied per loop.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ilp/BranchAndBound.h"
#include "ilpsched/Formulation.h"
#include "sched/Mii.h"
#include "workloads/KernelLibrary.h"

#include <cstdio>

using namespace modsched;
using namespace modsched::bench;
using namespace modsched::ilp;

int main() {
  MachineModel M = MachineModel::cydraLike();
  const int Sweep = 5;
  // Kernel-only sweep with a fixed per-cell solve budget; record the
  // effective configuration rather than the env-derived defaults.
  BenchConfig Config;
  Config.SyntheticLoops = 0;
  Config.TimeLimitSeconds = 10.0;
  BenchJson Json("exp7_reg_ii_tradeoff");
  Json.setConfig(Config);
  std::vector<LoopRecord> Cells;
  std::printf("Experiment 7 (extension): minimum MaxLive as II relaxes\n"
              "(per kernel: MII, then optimal registers at MII+0..+%d; "
              "'-' = infeasible, '?' = budget)\n\n",
              Sweep - 1);
  std::printf("%-26s %4s |", "kernel", "MII");
  for (int D = 0; D < Sweep; ++D)
    std::printf(" +%d ", D);
  std::printf("\n");

  for (const DependenceGraph &G : allKernels(M)) {
    if (G.numOperations() > 14)
      continue; // Keep the sweep quick.
    int Mii = mii(G, M);
    std::printf("%-26s %4d |", G.name().c_str(), Mii);
    for (int D = 0; D < Sweep; ++D) {
      LoopRecord Cell;
      Cell.Name = G.name() + "+" + std::to_string(D);
      Cell.NumOps = G.numOperations();
      Cell.Mii = Mii;
      Cell.II = Mii + D;
      FormulationOptions FOpts;
      FOpts.Obj = Objective::MinReg;
      Formulation F(G, M, Mii + D, FOpts);
      if (!F.valid()) {
        std::printf("  - ");
        Cells.push_back(std::move(Cell));
        continue;
      }
      MipOptions MOpts;
      MOpts.TimeLimitSeconds = Config.TimeLimitSeconds;
      MipResult R = MipSolver(MOpts).solve(F.model());
      Cell.Nodes = R.Nodes;
      Cell.SimplexIterations = R.SimplexIterations;
      Cell.Variables = F.model().numVariables();
      Cell.Constraints = F.model().numConstraints();
      Cell.Seconds = R.Seconds;
      Cell.Solved = R.Status == MipStatus::Optimal;
      Cell.TimedOut = R.Status == MipStatus::Limit;
      if (R.Status == MipStatus::Optimal) {
        Cell.Secondary = R.Objective;
        Cell.MaxLive = static_cast<int>(R.Objective + 0.5);
        std::printf("%3d ", Cell.MaxLive);
      } else if (R.Status == MipStatus::Infeasible)
        std::printf("  - ");
      else
        std::printf("  ? ");
      Cells.push_back(std::move(Cell));
    }
    std::printf("\n");
  }
  std::printf("\n(reading a row left to right shows how many registers a "
              "cycle of II buys back)\n");
  Json.addRecordSet("minreg_ii_sweep", std::move(Cells));
  Json.write();
  return 0;
}
