//===- bench/fig2_bb_nodes.cpp - Reproduces Figure 2 ----------------------===//
//
// Paper Figure 2: average number of branch-and-bound nodes visited by the
// solver for the four schedulers (NoObj, MinBuff, MinLife, MinReg), with
// the traditional and the structured formulation of the dependence
// constraints, over the loops solved by every configuration.
//
// Expected shape: the structured formulation reduces the average node
// count by one to two orders of magnitude for every scheduler.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Statistics.h"

#include <cstdio>

using namespace modsched;
using namespace modsched::bench;

int main() {
  BenchConfig Config = BenchConfig::fromEnv();
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = benchSuite(M, Config);
  std::printf("Figure 2: average branch-and-bound nodes "
              "(suite: %zu loops, %.1fs/loop budget, backend=%s, "
              "engine=%s)\n\n",
              Suite.size(), Config.TimeLimitSeconds,
              toString(Config.Backend), lp::toString(Config.Engine));

  const Objective Objs[] = {Objective::None, Objective::MinBuff,
                            Objective::MinLife, Objective::MinReg};
  const DependenceStyle Styles[] = {DependenceStyle::Traditional,
                                    DependenceStyle::Structured};

  BenchJson Json("fig2_bb_nodes");
  Json.setConfig(Config);

  // Run all eight configurations.
  std::vector<std::vector<LoopRecord>> All;
  for (Objective Obj : Objs)
    for (DependenceStyle Dep : Styles) {
      std::fprintf(stderr, "running %s/%s...\n", toString(Obj),
                   toString(Dep));
      All.push_back(runOptimal(M, Suite, Obj, Dep, Config));
      printPortfolioSummary(std::string(toString(Obj)) + "/" +
                                toString(Dep),
                            All.back());
      Json.addRecordSet(std::string(toString(Obj)) + "/" + toString(Dep),
                        All.back());
    }

  // Figure 2 averages over the loops solved by EVERY configuration
  // (the paper's 653-loop common subset).
  std::vector<int> Common = commonlySolved(All);
  std::printf("loops solved by all 8 configurations: %zu\n\n",
              Common.size());
  Json.addMetric("commonly_solved", Common.size());

  std::printf("%-10s %22s %22s %8s\n", "scheduler", "traditional nodes",
              "structured nodes", "ratio");
  for (size_t O = 0; O < 4; ++O) {
    SummaryStats Trad, Struct;
    for (int Loop : Common) {
      Trad.add(static_cast<double>(All[O * 2 + 0][Loop].Nodes));
      Struct.add(static_cast<double>(All[O * 2 + 1][Loop].Nodes));
    }
    double Ratio = Struct.average() > 0
                       ? Trad.average() / Struct.average()
                       : (Trad.average() > 0 ? 1e9 : 1.0);
    std::printf("%-10s %22.2f %22.2f %7.1fx\n", toString(Objs[O]),
                Trad.average(), Struct.average(), Ratio);
    Json.addMetric(std::string("node_ratio_") + toString(Objs[O]), Ratio);
  }
  std::printf("\n(paper: MinReg 124.5x, MinLife 167.4x node reduction; "
              "absolute values differ with the solver/suite)\n");
  Json.write();
  return 0;
}
