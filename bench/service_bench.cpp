//===- bench/service_bench.cpp - Service QPS/latency benchmark ------------===//
//
// Closed-loop benchmark of the scheduling service (src/service,
// docs/SERVICE.md), replaying a zipf-skewed corpus of kernel-library
// loops end-to-end through the wire protocol — frame text in, JSON
// response out — against an in-process Server:
//
//   phase 1 (warm):     every distinct corpus loop once; fresh solves
//                       populate the cache and record the reference
//                       II / secondary objective per loop.
//   phase 2 (steady):   >= 1000 zipf-sampled requests, one closed loop;
//                       measures per-request latency (p50/p95/p99), QPS
//                       and the cache-served rate, and checks every
//                       cached reply matches the fresh-solve reference.
//                       Loops the warm pass censored (budget timeouts
//                       never enter the cache) are excluded from the
//                       sampling pool — each re-sample would re-burn a
//                       full budget measuring the censor, not replay —
//                       and the exclusion is printed, never silent.
//   phase 3 (overload): the whole corpus blasted down one stream into a
//                       tiny admission queue — exercises load shedding.
//   phase 4 (abuse):    the malformed-request corpus; the daemon must
//                       reply with structured errors and never abort.
//
// Emits BENCH_service.json (schema v9 "service" object: qps, latency
// percentiles, cache hit rate, shed count, status histogram) through
// bench/Harness, and exits nonzero when the steady-state cache rate
// falls below 90% or any cached verdict drifts from the fresh solve —
// this doubles as the CI gate for the service.
//
// Env: MODSCHED_SERVICE_BENCH_REQUESTS (default 1000, min 1),
//      MODSCHED_SERVICE_BENCH_SKEW (zipf exponent, default 1.1),
// plus the usual MODSCHED_BENCH_* budget knobs.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "service/Server.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "textio/DdgFormat.h"
#include "textio/MachineFormat.h"
#include "workloads/KernelLibrary.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace modsched;
using namespace modsched::bench;

namespace {

int Failures = 0;

void check(bool Ok, const std::string &What) {
  if (Ok)
    return;
  ++Failures;
  std::fprintf(stderr, "service_bench FAIL: %s\n", What.c_str());
}

/// Extracts a "key":<value> field from a one-line machine-written JSON
/// response (no whitespace, no nesting ambiguity for the keys used
/// here). Returns the raw value text up to the next ',' / '}'.
std::string field(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":";
  std::size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return "";
  At += Needle.size();
  std::size_t End = At;
  if (End < Line.size() && Line[End] == '"') {
    ++End;
    while (End < Line.size() && Line[End] != '"')
      ++End;
    return Line.substr(At + 1, End - At - 1);
  }
  while (End < Line.size() && Line[End] != ',' && Line[End] != '}')
    ++End;
  return Line.substr(At, End - At);
}

/// One SCHED frame for corpus entry \p Id with inline machine payload.
std::string makeFrame(const std::string &Id, const std::string &MachineText,
                      int MachineLines, const std::string &DdgText,
                      int DdgLines) {
  std::string F = "SCHED id=" + Id + " objective=minreg\n";
  F += "MACHINE " + std::to_string(MachineLines) + "\n" + MachineText;
  F += "DDG " + std::to_string(DdgLines) + "\n" + DdgText;
  F += "END\n";
  return F;
}

int countLines(const std::string &Text) {
  int N = 0;
  for (char C : Text)
    if (C == '\n')
      ++N;
  return N;
}

/// Zipf sampler over \p N ranks with exponent \p S: precomputed CDF,
/// one uniform draw per sample (xoshiro supplies the uniforms; no
/// std::random anywhere, matching the suite generator's determinism).
class ZipfSampler {
public:
  ZipfSampler(int N, double S) : Cdf(static_cast<std::size_t>(N)) {
    double Sum = 0;
    for (int I = 0; I < N; ++I)
      Sum += 1.0 / std::pow(double(I + 1), S);
    double Acc = 0;
    for (int I = 0; I < N; ++I) {
      Acc += 1.0 / std::pow(double(I + 1), S) / Sum;
      Cdf[static_cast<std::size_t>(I)] = Acc;
    }
    Cdf.back() = 1.0;
  }
  int sample(Rng &R) const {
    double U = R.nextDouble();
    for (std::size_t I = 0; I < Cdf.size(); ++I)
      if (U <= Cdf[I])
        return static_cast<int>(I);
    return static_cast<int>(Cdf.size()) - 1;
  }

private:
  std::vector<double> Cdf;
};

int64_t envRequests() {
  const char *Env = std::getenv("MODSCHED_SERVICE_BENCH_REQUESTS");
  if (!Env || !*Env)
    return 1000;
  long long V = std::atoll(Env);
  return V >= 1 ? V : 1000;
}

double envSkew() {
  const char *Env = std::getenv("MODSCHED_SERVICE_BENCH_SKEW");
  if (!Env || !*Env)
    return 1.1;
  double V = std::atof(Env);
  return V > 0 ? V : 1.1;
}

/// The malformed-request corpus of docs/SERVICE.md: every frame must
/// come back as a structured error (or be survivably ignored), never
/// an abort. Mirrors tests/ServiceTest.cpp so the bench exercises the
/// same surface under the benchmark's budgets.
const char *MalformedCorpus[] = {
    "FROB x\n",
    "SCHED\nEND\n",
    "SCHED id=dup id=dup2\nEND\n",
    "SCHED id=a objective=fastest\nEND\n",
    "SCHED id=b dep=quantum\nEND\n",
    "SCHED id=c time=-5\nEND\n",
    "SCHED id=d nodes=zero\nEND\n",
    "SCHED id=e machine=pdp11\nEND\n",
    "SCHED id=f machine=example3\nDDG nope\nEND\n",
    "SCHED id=g machine=example3\nDDG 3\nloop l\nEND\n",
    "SCHED id=h machine=example3\nMACHINE 1\nmachine m\nDDG 0\nEND\n",
    "SCHED id=i machine=example3\nDDG 1\nthis is not a ddg\nEND\n",
    "SCHED id=j\nEND\n",
    "SCHED id=k machine=example3\nDDG 2\nloop l\nop a add\nEN",
};

} // namespace

int main() {
  BenchConfig Config = BenchConfig::fromEnv();
  Config.Cache = true;

  service::ServerOptions SOpts;
  SOpts.Workers = std::max(1, Config.Jobs);
  SOpts.QueueLimit = 4; // Tiny on purpose: phase 3 must shed.
  SOpts.ClientInFlightLimit = 4;
  SOpts.DefaultTimeLimitSeconds = Config.TimeLimitSeconds;
  SOpts.MaxTimeLimitSeconds = Config.TimeLimitSeconds * 4;
  SOpts.Cache = true;
  SOpts.Backend = Config.Backend;
  SOpts.EmitSchedules = false; // Latency of verdicts, not echo bytes.
  service::Server Server(SOpts);

  // Corpus: the whole kernel library against the Cydra-like machine,
  // framed once; zipf rank == library order.
  MachineModel M = MachineModel::cydraLike();
  std::string MachineText = printMachine(M);
  int MachineLines = countLines(MachineText);
  std::vector<DependenceGraph> Corpus = allKernels(M);
  std::vector<std::string> Frames;
  for (std::size_t I = 0; I < Corpus.size(); ++I) {
    std::string Ddg = printDdg(Corpus[I], M);
    Frames.push_back(makeFrame("k" + std::to_string(I), MachineText,
                               MachineLines, Ddg, countLines(Ddg)));
  }

  const int64_t Requests = envRequests();
  const double Skew = envSkew();
  std::printf("service bench: %zu corpus loops, %lld steady-state "
              "requests, zipf %.2f, %d workers, backend=%s\n",
              Corpus.size(), static_cast<long long>(Requests), Skew,
              SOpts.Workers, toString(SOpts.Backend));

  ServiceSummary Summary;
  auto Reply = [&](const std::string &Frame) {
    std::istringstream In(Frame);
    std::ostringstream Out;
    Server.serveStream(In, Out, "bench");
    std::string Line = Out.str();
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    return Line;
  };
  auto Count = [&](const std::string &Line) {
    std::string Status = field(Line, "status");
    if (Status.empty())
      Status = "error";
    ++Summary.Statuses[Status];
    if (Status == "retry_after")
      ++Summary.Shed;
    if (Status == "error")
      ++Summary.Errors;
  };

  // --- Phase 1: warm the cache, record the fresh-solve reference.
  struct Reference {
    std::string Ii, Secondary;
    bool Solved = false;
  };
  std::vector<Reference> Ref(Frames.size());
  for (std::size_t I = 0; I < Frames.size(); ++I) {
    std::string Line = Reply(Frames[I]);
    ++Summary.Requests;
    Count(Line);
    Ref[I].Solved = field(Line, "status") == "ok";
    Ref[I].Ii = field(Line, "ii");
    Ref[I].Secondary = field(Line, "secondary");
    check(field(Line, "cache_hit") != "true",
          "warm pass served from cache: " + Line);
  }

  // --- Phase 2: steady-state zipf replay, closed loop. Only loops the
  // warm pass actually solved are in the pool: a censored loop is not
  // cached, so every re-sample would repeat the full budget timeout and
  // the phase would measure the censor instead of the replay.
  std::vector<int> Pool;
  for (std::size_t I = 0; I < Frames.size(); ++I)
    if (Ref[I].Solved)
      Pool.push_back(static_cast<int>(I));
  check(!Pool.empty(), "warm pass solved no corpus loop at all");
  if (Pool.size() < Frames.size())
    std::printf("steady pool: %zu/%zu loops (%zu censored in the warm "
                "pass excluded)\n",
                Pool.size(), Frames.size(), Frames.size() - Pool.size());
  if (Pool.empty())
    return 1;
  Rng R(Config.Seed);
  ZipfSampler Zipf(static_cast<int>(Pool.size()), Skew);
  SummaryStats LatencyMs;
  int64_t SteadyOk = 0, SteadyHits = 0, Mismatches = 0;
  Stopwatch Steady;
  for (int64_t N = 0; N < Requests; ++N) {
    int I = Pool[static_cast<std::size_t>(Zipf.sample(R))];
    Stopwatch One;
    std::string Line = Reply(Frames[static_cast<std::size_t>(I)]);
    LatencyMs.add(One.seconds() * 1e3);
    ++Summary.Requests;
    Count(Line);
    if (field(Line, "status") != "ok")
      continue;
    ++SteadyOk;
    if (field(Line, "cache_hit") == "true")
      ++SteadyHits;
    if (Ref[static_cast<std::size_t>(I)].Solved &&
        (field(Line, "ii") != Ref[static_cast<std::size_t>(I)].Ii ||
         field(Line, "secondary") !=
             Ref[static_cast<std::size_t>(I)].Secondary))
      ++Mismatches;
  }
  const double SteadySeconds = Steady.seconds();

  // --- Phase 3: overload one stream; the bounded queue must shed.
  {
    std::string Blast;
    for (int Round = 0; Round < 4; ++Round)
      for (std::size_t I = 0; I < Frames.size(); ++I)
        Blast += Frames[I];
    std::istringstream In(Blast);
    std::ostringstream Out;
    Server.serveStream(In, Out, "blast");
    std::istringstream Lines(Out.str());
    std::string Line;
    while (std::getline(Lines, Line))
      if (!Line.empty()) {
        ++Summary.Requests;
        Count(Line);
      }
  }

  // --- Phase 4: the malformed corpus; structured errors, no aborts.
  for (const char *Bad : MalformedCorpus) {
    std::string Line = Reply(Bad);
    ++Summary.Requests;
    if (!Line.empty())
      Count(Line);
  }

  // --- Summary, gates, artifact.
  Summary.CacheHits = SteadyHits;
  Summary.Qps = SteadySeconds > 0 ? double(Requests) / SteadySeconds : 0;
  Summary.P50Ms = LatencyMs.percentile(50);
  Summary.P95Ms = LatencyMs.percentile(95);
  Summary.P99Ms = LatencyMs.percentile(99);
  Summary.CacheHitRate = SteadyOk > 0 ? double(SteadyHits) / double(SteadyOk)
                                      : 0.0;

  std::printf("steady state: %lld requests in %.2fs (%.0f QPS), "
              "p50=%.3fms p95=%.3fms p99=%.3fms\n",
              static_cast<long long>(Requests), SteadySeconds, Summary.Qps,
              Summary.P50Ms, Summary.P95Ms, Summary.P99Ms);
  std::printf("cache: %lld/%lld ok replies served from cache (%.1f%%), "
              "%lld verdict mismatches; shed=%lld errors=%lld\n",
              static_cast<long long>(SteadyHits),
              static_cast<long long>(SteadyOk),
              100.0 * Summary.CacheHitRate,
              static_cast<long long>(Mismatches),
              static_cast<long long>(Summary.Shed),
              static_cast<long long>(Summary.Errors));

  check(Summary.CacheHitRate >= 0.9,
        "steady-state cache-served rate below 90%");
  check(Mismatches == 0, "cached II/objective drifted from fresh solves");
  check(Summary.Shed > 0, "overload phase shed nothing (admission "
                          "control not exercised)");
  check(Summary.Errors >= 10, "malformed corpus produced too few "
                              "structured errors");

  BenchJson Json("service");
  Json.setConfig(Config);
  Json.setServiceSummary(Summary);
  Json.addMetric("steady_cache_hit_rate", Summary.CacheHitRate);
  Json.addMetric("steady_qps", Summary.Qps);
  Json.addMetric("verdict_mismatches", double(Mismatches));
  Json.write();

  // Graceful drain: ~Server stops admission and waits for in-flight
  // solves; reaching the return statement without an assert IS the
  // drain test (assertions stay on in every build type).
  if (Failures == 0)
    std::printf("service bench: all gates passed\n");
  return Failures == 0 ? 0 : 1;
}
