//===- ilp/Presolve.cpp - Bound propagation for MIP nodes ------------------===//

#include "ilp/Presolve.h"

#include "support/Telemetry.h"

#include <cassert>
#include <cmath>

using namespace modsched;
using namespace modsched::ilp;
using namespace modsched::lp;

namespace {

/// Minimum activity contribution of term (coeff, var) under the bounds.
double minContribution(double Coeff, double Lo, double Up) {
  return Coeff >= 0 ? Coeff * Lo : Coeff * Up;
}

/// Maximum activity contribution.
double maxContribution(double Coeff, double Lo, double Up) {
  return Coeff >= 0 ? Coeff * Up : Coeff * Lo;
}

telemetry::Counter StatCalls("ilp", "presolve.calls",
                             "bound-propagation passes");
telemetry::Counter StatRounds("ilp", "presolve.rounds",
                              "fixpoint rounds executed");
telemetry::Counter StatTightened("ilp", "presolve.tightened_bounds",
                                 "variable bounds tightened");
telemetry::Counter StatFixed("ilp", "presolve.fixed_variables",
                             "variables fixed by propagation");
telemetry::Counter StatInfeasible("ilp", "presolve.infeasible",
                                  "nodes proved infeasible without an LP");

/// Publishes per-call tallies into the optional out-param and the global
/// counters on every exit path.
struct StatsPublisher {
  PropagationStats Local;
  PropagationStats *Out;
  bool Infeasible = false;

  explicit StatsPublisher(PropagationStats *Out) : Out(Out) {}
  ~StatsPublisher() {
    if (Out)
      *Out = Local;
    ++StatCalls;
    StatRounds += Local.Rounds;
    StatTightened += Local.TightenedBounds;
    StatFixed += Local.FixedVariables;
    if (Infeasible)
      ++StatInfeasible;
  }
};

} // namespace

PropagationResult ilp::propagateBounds(const Model &M,
                                       std::vector<double> &Lower,
                                       std::vector<double> &Upper,
                                       int MaxRounds,
                                       PropagationStats *Stats,
                                       std::vector<BoundChange> *Journal) {
  assert(Lower.size() == static_cast<size_t>(M.numVariables()) &&
         Upper.size() == Lower.size() && "bound vectors sized to model");
  const double Tol = 1e-9;
  StatsPublisher Publish(Stats);

  // Notes one bound tightening of \p Var whose interval was
  // [\p OldLo, \p OldUp] before the update.
  auto NoteTightened = [&](int Var, double OldLo, double OldUp) {
    ++Publish.Local.TightenedBounds;
    if (Upper[Var] - Lower[Var] <= Tol && OldUp - OldLo > Tol)
      ++Publish.Local.FixedVariables;
  };
  // Records the pre-write value of a bound onto the caller's trail.
  auto JournalUpper = [&](int Var) {
    if (Journal)
      Journal->push_back({Var, /*IsUpper=*/true, Upper[Var]});
  };
  auto JournalLower = [&](int Var) {
    if (Journal)
      Journal->push_back({Var, /*IsUpper=*/false, Lower[Var]});
  };

  for (int Round = 0; Round < MaxRounds; ++Round) {
    ++Publish.Local.Rounds;
    bool Changed = false;
    for (const Constraint &C : M.constraints()) {
      // A constraint `expr <= b` bounds each variable from the side of
      // its coefficient; `expr >= b` from the other; `=` from both.
      bool UseUpperSide = C.Sense != ConstraintSense::GE; // expr <= Rhs
      bool UseLowerSide = C.Sense != ConstraintSense::LE; // expr >= Rhs

      // Precompute total min/max activity; per-variable residuals are
      // obtained by subtracting the variable's own contribution.
      double MinAct = 0.0, MaxAct = 0.0;
      for (const Term &T : C.Terms) {
        MinAct += minContribution(T.second, Lower[T.first], Upper[T.first]);
        MaxAct += maxContribution(T.second, Lower[T.first], Upper[T.first]);
      }
      if (UseUpperSide && MinAct > C.Rhs + 1e-7) {
        Publish.Infeasible = true;
        return PropagationResult::Infeasible;
      }
      if (UseLowerSide && MaxAct < C.Rhs - 1e-7) {
        Publish.Infeasible = true;
        return PropagationResult::Infeasible;
      }

      for (const Term &T : C.Terms) {
        int Var = T.first;
        double A = T.second;
        bool IsInt = M.variable(Var).Kind == VarKind::Integer;
        double Lo = Lower[Var], Up = Upper[Var];

        if (UseUpperSide && std::isfinite(MinAct)) {
          // sum <= Rhs: residual = MinAct - minContribution(this term).
          double Residual = MinAct - minContribution(A, Lo, Up);
          double Budget = C.Rhs - Residual;
          if (A > 0) {
            double NewUp = Budget / A;
            if (IsInt)
              NewUp = std::floor(NewUp + Tol);
            if (NewUp < Upper[Var] - Tol) {
              JournalUpper(Var);
              Upper[Var] = NewUp;
              Changed = true;
              NoteTightened(Var, Lo, Up);
            }
          } else if (A < 0) {
            double NewLo = Budget / A;
            if (IsInt)
              NewLo = std::ceil(NewLo - Tol);
            if (NewLo > Lower[Var] + Tol) {
              JournalLower(Var);
              Lower[Var] = NewLo;
              Changed = true;
              NoteTightened(Var, Lo, Up);
            }
          }
        }
        if (UseLowerSide && std::isfinite(MaxAct)) {
          // sum >= Rhs: residual = MaxAct - maxContribution(this term).
          double Residual = MaxAct - maxContribution(A, Lo, Up);
          double Budget = C.Rhs - Residual;
          if (A > 0) {
            double NewLo = Budget / A;
            if (IsInt)
              NewLo = std::ceil(NewLo - Tol);
            if (NewLo > Lower[Var] + Tol) {
              JournalLower(Var);
              Lower[Var] = NewLo;
              Changed = true;
              NoteTightened(Var, Lo, Up);
            }
          } else if (A < 0) {
            double NewUp = Budget / A;
            if (IsInt)
              NewUp = std::floor(NewUp + Tol);
            if (NewUp < Upper[Var] - Tol) {
              JournalUpper(Var);
              Upper[Var] = NewUp;
              Changed = true;
              NoteTightened(Var, Lo, Up);
            }
          }
        }
        if (Lower[Var] > Upper[Var] + 1e-7) {
          Publish.Infeasible = true;
          return PropagationResult::Infeasible;
        }
      }
    }
    if (!Changed)
      break;
  }
  return PropagationResult::Feasible;
}
