//===- ilp/BranchAndBound.h - MIP solver over the simplex -------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A branch-and-bound mixed-integer programming solver built on the dense
/// simplex in src/lp. It substitutes for the commercial CPLEX solver used
/// in the paper and exposes the two statistics the paper's evaluation
/// revolves around: the number of branch-and-bound nodes visited and the
/// number of simplex iterations performed.
///
/// Node accounting follows CPLEX's convention as read off the paper's
/// tables: a problem whose root LP relaxation is already integral reports
/// 0 nodes; only subproblems created by branching are counted.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILP_BRANCHANDBOUND_H
#define MODSCHED_ILP_BRANCHANDBOUND_H

#include "lp/Model.h"
#include "lp/Simplex.h"

#include <cstdint>
#include <vector>

namespace modsched {
namespace ilp {

/// Outcome of a MIP solve.
enum class MipStatus {
  Optimal,    ///< Proved optimal (or first solution, when so configured).
  Infeasible, ///< Proved that no integral solution exists.
  Limit,      ///< Stopped on a time/node/iteration budget.
};

/// Returns a printable name for \p Status.
const char *toString(MipStatus Status);

/// How the branching variable is selected (ablation knob; the default is
/// what the benchmarks use).
enum class BranchRule {
  MostFractional,  ///< Fractional part closest to 1/2.
  FirstFractional, ///< Smallest variable index.
  LastFractional,  ///< Largest variable index.
};

/// Budgets and tolerances for the branch-and-bound search.
struct MipOptions {
  /// Wall-clock budget in seconds (the paper used 15 minutes per loop).
  double TimeLimitSeconds = 1e30;
  /// Maximum number of branch-and-bound nodes.
  int64_t NodeLimit = INT64_MAX;
  /// Integrality tolerance.
  double IntTol = 1e-6;
  /// When true (all scheduling objectives are integral), LP bounds are
  /// rounded up, which tightens pruning. Ablation knob.
  bool IntegralObjective = true;
  /// Stop at the first integral solution (the paper's NoObj scheduler
  /// "simply returns the first schedule that it finds").
  bool StopAtFirstSolution = false;
  /// Run bound propagation at every node before the LP (ablation knob).
  bool NodePresolve = true;
  BranchRule Branching = BranchRule::MostFractional;
  lp::SimplexOptions Lp;
};

/// Result of a MIP solve, including the search statistics reported in the
/// paper's Tables 1 and 2.
struct MipResult {
  MipStatus Status = MipStatus::Infeasible;
  /// True when an integral solution was found (even if Status == Limit).
  bool HasSolution = false;
  double Objective = 0.0;
  std::vector<double> Values;
  /// Branch-and-bound nodes visited (root excluded).
  int64_t Nodes = 0;
  /// Total simplex iterations across all LP solves.
  int64_t SimplexIterations = 0;
  /// Wall-clock seconds spent in solve().
  double Seconds = 0.0;
};

/// Depth-first branch-and-bound with best-bound pruning.
class MipSolver {
public:
  explicit MipSolver(MipOptions Options = {}) : Opts(Options) {}

  /// Solves the minimization MIP \p M.
  MipResult solve(const lp::Model &M) const;

private:
  MipOptions Opts;
};

/// Rounds every nearly-integral entry of \p X to the nearest integer
/// (within \p Tol); used to clean LP output before decoding schedules.
void roundIntegralValues(std::vector<double> &X, double Tol = 1e-6);

} // namespace ilp
} // namespace modsched

#endif // MODSCHED_ILP_BRANCHANDBOUND_H
