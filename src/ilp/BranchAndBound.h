//===- ilp/BranchAndBound.h - MIP solver over the simplex -------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A branch-and-bound mixed-integer programming solver built on the dense
/// simplex in src/lp. It substitutes for the commercial CPLEX solver used
/// in the paper and exposes the two statistics the paper's evaluation
/// revolves around: the number of branch-and-bound nodes visited and the
/// number of simplex iterations performed.
///
/// Node accounting follows CPLEX's convention as read off the paper's
/// tables: a problem whose root LP relaxation is already integral reports
/// 0 nodes; only subproblems created by branching are counted.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILP_BRANCHANDBOUND_H
#define MODSCHED_ILP_BRANCHANDBOUND_H

#include "lp/Model.h"
#include "lp/Simplex.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace modsched {
namespace ilp {

/// Outcome of a MIP solve.
enum class MipStatus {
  Optimal,    ///< Proved optimal (or first solution, when so configured).
  Infeasible, ///< Proved that no integral solution exists.
  Limit,      ///< Stopped on a time/node/iteration budget.
  Cancelled,  ///< Stopped because the SolveContext's token was cancelled.
};

/// Returns a printable name for \p Status.
const char *toString(MipStatus Status);

/// How the branching variable is selected (ablation knob; the default is
/// what the benchmarks use).
enum class BranchRule {
  MostFractional,  ///< Fractional part closest to 1/2.
  FirstFractional, ///< Smallest variable index.
  LastFractional,  ///< Largest variable index.
};

/// Kinds of search events reported to a BbObserver (and, when tracing
/// is enabled, to the telemetry sink; see docs/OBSERVABILITY.md).
enum class BbEvent {
  RootLpSolved,   ///< Root relaxation solved (bound in LpObjective).
  NodeVisited,    ///< A branched subproblem was popped from the open list.
  NodeInfeasible, ///< The node's LP (or presolve) proved it infeasible.
  BoundPruned,    ///< Node discarded: LP bound cannot beat the incumbent.
  IncumbentFound, ///< A new best integral solution was accepted.
  Branched,       ///< Two children were pushed (variable in BranchVariable).
  PresolveFixed,  ///< Node presolve fixed >= 1 variable before the LP.
};

/// Returns a printable name for \p Event.
const char *toString(BbEvent Event);

/// Payload of one search event. Fields not meaningful for a given kind
/// hold their listed defaults.
struct BbEventInfo {
  BbEvent Kind = BbEvent::NodeVisited;
  /// Nodes visited so far (CPLEX convention: root excluded, so this is 0
  /// for all root events).
  int64_t Node = 0;
  /// Branching depth of the current node (root = 0).
  int Depth = 0;
  /// Open-list size gauge (subproblems stacked, excluding the current).
  size_t OpenNodes = 0;
  /// LP relaxation objective (RootLpSolved/NodeVisited/BoundPruned/
  /// IncumbentFound); 0 otherwise.
  double LpObjective = 0.0;
  /// Current incumbent objective, or +1e300 before the first solution.
  double Incumbent = 1e300;
  /// Branch variable index (Branched), else -1.
  int BranchVariable = -1;
  /// Variables fixed by node presolve (PresolveFixed), else 0.
  int64_t FixedVariables = 0;
  /// True when the event's node LP was solved by a warm-started dual
  /// simplex from the parent's basis (false before the LP runs, for cold
  /// solves, and for warm attempts that fell back to the cold primal).
  bool Warm = false;
  /// IncumbentFound only: the accepted integral solution's variable
  /// values, valid for the duration of the callback (null otherwise).
  /// Lets an observer decode and republish incumbents (portfolio
  /// cross-engine bound exchange) without waiting for the solve to end.
  const std::vector<double> *Values = nullptr;
};

/// Observer callback fired synchronously from MipSolver::solve().
/// Observers must not mutate the solver; they exist for tests, tracing,
/// and search visualization.
using BbObserver = std::function<void(const BbEventInfo &)>;

/// Budgets and tolerances for the branch-and-bound search.
struct MipOptions {
  /// Wall-clock budget in seconds (the paper used 15 minutes per loop).
  double TimeLimitSeconds = 1e30;
  /// Maximum number of branch-and-bound nodes.
  int64_t NodeLimit = INT64_MAX;
  /// Integrality tolerance.
  double IntTol = 1e-6;
  /// When true (all scheduling objectives are integral), LP bounds are
  /// rounded up, which tightens pruning. Ablation knob.
  bool IntegralObjective = true;
  /// Stop at the first integral solution (the paper's NoObj scheduler
  /// "simply returns the first schedule that it finds").
  bool StopAtFirstSolution = false;
  /// Run bound propagation at every node before the LP (ablation knob).
  bool NodePresolve = true;
  /// Warm-start each node's LP with the dual simplex from its parent's
  /// optimal basis (ablation knob; the CPLEX behavior the paper relies
  /// on). When false every node LP is a cold two-phase primal solve; the
  /// persistent workspace is used either way, so this isolates the
  /// basis-reuse effect from the allocation hoisting.
  bool WarmStart = true;
  BranchRule Branching = BranchRule::MostFractional;
  /// Collect Farkas support rows from infeasible node LPs (forces
  /// SimplexOptions::CollectFarkas on the node LPs) so an Infeasible
  /// verdict comes with MipResult::FarkasRows. Forensics knob, off by
  /// default.
  bool CollectFarkas = false;
  /// Record the incumbent/bound trajectory (MipResult::Trajectory) and
  /// the root relaxation bound. Forensics knob, off by default.
  bool CollectTrajectory = false;
  lp::SimplexOptions Lp;
  /// Optional search observer (tests / tracing / visualization). Null by
  /// default; the per-node cost when unset is a single bool test.
  BbObserver Observer;
  /// Optional externally shared objective cutoff (portfolio races).
  /// When set, the cell is polled at every node; any node whose rounded
  /// LP bound reaches the cell's value is pruned even before this solve
  /// holds an incumbent of its own. The cell must only tighten
  /// (monotonically decrease) and must be a valid upper bound: some
  /// solution with objective <= value exists elsewhere. Requires
  /// IntegralObjective semantics: the cutoff k prunes Bound >= k,
  /// keeping every strictly better solution reachable. INT64_MAX means
  /// "no bound yet".
  const std::atomic<int64_t> *ExternalBound = nullptr;
};

/// One point of a solve's incumbent/bound trajectory (recorded under
/// MipOptions::CollectTrajectory at the root solve and at every
/// incumbent improvement).
struct BoundSample {
  /// Wall-clock seconds into the solve.
  double Seconds = 0.0;
  /// Nodes visited when the sample was taken.
  int64_t Nodes = 0;
  /// Incumbent objective, or +1e300 before the first solution.
  double Incumbent = 1e300;
  /// Best proved lower bound at the sample (the rounded root relaxation
  /// bound; depth-first search does not tighten it mid-solve).
  double Bound = -1e300;
};

/// Result of a MIP solve, including the search statistics reported in the
/// paper's Tables 1 and 2.
struct MipResult {
  MipStatus Status = MipStatus::Infeasible;
  /// True when an integral solution was found (even if Status == Limit).
  bool HasSolution = false;
  double Objective = 0.0;
  std::vector<double> Values;
  /// Branch-and-bound nodes visited (root excluded).
  int64_t Nodes = 0;
  /// Total simplex iterations across all LP solves.
  int64_t SimplexIterations = 0;
  /// Wall-clock seconds spent in solve().
  double Seconds = 0.0;
  /// Why Status == Limit: the node budget was exhausted (distinct from
  /// wall-clock expiry so censoring is attributed correctly; both can
  /// be true when the checks trip in the same pass).
  bool HitNodeLimit = false;
  /// Why Status == Limit: the wall-clock budget / context deadline
  /// expired (also set when a node LP gave up on its pivot budget).
  bool HitTimeLimit = false;
  /// True when the SolveContext's cancellation token stopped the search
  /// (Status == Cancelled).
  bool Cancelled = false;
  /// True when at least one node was pruned against
  /// MipOptions::ExternalBound. An Infeasible status with this flag set
  /// means "no solution strictly better than ExternalBound", NOT that
  /// the model itself is infeasible — the portfolio coordinator combines
  /// it with the shared incumbent into an optimality verdict.
  bool UsedExternalBound = false;
  /// The tightest external cutoff observed while pruning (valid when
  /// UsedExternalBound).
  int64_t ExternalBound = 0;

  // --- Search telemetry (see docs/OBSERVABILITY.md) ---
  /// Deepest branching depth reached (root = 0).
  int MaxDepth = 0;
  /// Nodes discarded because their LP bound could not beat the incumbent.
  int64_t PrunedNodes = 0;
  /// Nodes proved infeasible (by presolve or by the LP).
  int64_t InfeasibleNodes = 0;
  /// Incumbent improvements (integral solutions accepted).
  int64_t Incumbents = 0;
  /// Variables fixed by node presolve, summed over all nodes.
  int64_t PresolveFixedVariables = 0;
  /// Node LPs solved by the warm-started dual simplex.
  int64_t WarmLpSolves = 0;
  /// Node LPs solved cold by the two-phase primal (root LP, warm-start
  /// fallbacks, and every LP when MipOptions::WarmStart is off).
  int64_t ColdLpSolves = 0;
  /// Simplex iterations spent inside warm-started solves (subset of
  /// SimplexIterations).
  int64_t WarmLpIterations = 0;
  /// Basis refactorizations summed over all node LPs (sparse engine: LU
  /// factorizations; dense engine: periodic basic-value refreshes).
  int64_t LpRefactorizations = 0;
  /// Product-form eta nonzeros appended across all node LPs (sparse
  /// engine only; 0 under the dense engine).
  int64_t LpEtaNonzeros = 0;

  // --- Forensics (see docs/OBSERVABILITY.md) ---
  /// With MipOptions::CollectFarkas and Status == Infeasible: model rows
  /// supporting infeasibility certificates of the node LPs, most
  /// frequently implicated first. Empty when infeasibility was proved
  /// without any LP (root presolve) — the caller falls back to graph
  /// analysis.
  std::vector<int> FarkasRows;
  /// With MipOptions::CollectTrajectory: true once the root relaxation
  /// solved, making RootBound a valid lower bound on any solution.
  bool HasRootBound = false;
  /// Rounded root relaxation objective (valid when HasRootBound).
  double RootBound = 0.0;
  /// Incumbent/bound trajectory (root solve + incumbent improvements),
  /// in time order. Empty unless MipOptions::CollectTrajectory.
  std::vector<BoundSample> Trajectory;
};

/// Depth-first branch-and-bound with best-bound pruning. Stateless
/// between solves (all mutable solve state lives on the stack or in the
/// caller's SolveContext), so one solver — or many — can run any number
/// of concurrent solves, each under its own context.
class MipSolver {
public:
  explicit MipSolver(MipOptions Options = {}) : Opts(Options) {}

  /// Solves the minimization MIP \p M under \p Ctx: node LPs share the
  /// context's workspace (warm starts), the context deadline is
  /// tightened by MipOptions::TimeLimitSeconds for the duration of this
  /// call, and the cancellation token is polled between nodes (and
  /// inside node LPs), reporting MipStatus::Cancelled when it fires.
  MipResult solve(const lp::Model &M, lp::SolveContext &Ctx) const;

  /// Convenience overload: solves under a fresh local context (fresh
  /// workspace, no outer deadline, never cancelled).
  MipResult solve(const lp::Model &M) const;

private:
  MipOptions Opts;
};

/// Rounds every nearly-integral entry of \p X to the nearest integer
/// (within \p Tol); used to clean LP output before decoding schedules.
void roundIntegralValues(std::vector<double> &X, double Tol = 1e-6);

} // namespace ilp
} // namespace modsched

#endif // MODSCHED_ILP_BRANCHANDBOUND_H
