//===- ilp/BranchAndBound.cpp - MIP solver over the simplex ---------------===//

#include "ilp/BranchAndBound.h"

#include "ilp/Presolve.h"
#include "lp/SolveContext.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <memory>
#include <utility>

using namespace modsched;
using namespace modsched::ilp;
using namespace modsched::lp;

const char *ilp::toString(MipStatus Status) {
  switch (Status) {
  case MipStatus::Optimal:
    return "optimal";
  case MipStatus::Infeasible:
    return "infeasible";
  case MipStatus::Limit:
    return "limit";
  case MipStatus::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

const char *ilp::toString(BbEvent Event) {
  switch (Event) {
  case BbEvent::RootLpSolved:
    return "root-lp-solved";
  case BbEvent::NodeVisited:
    return "node-visited";
  case BbEvent::NodeInfeasible:
    return "node-infeasible";
  case BbEvent::BoundPruned:
    return "bound-pruned";
  case BbEvent::IncumbentFound:
    return "incumbent-found";
  case BbEvent::Branched:
    return "branched";
  case BbEvent::PresolveFixed:
    return "presolve-fixed";
  }
  return "unknown";
}

void ilp::roundIntegralValues(std::vector<double> &X, double Tol) {
  for (double &V : X) {
    double R = std::round(V);
    if (std::abs(V - R) <= Tol)
      V = R;
  }
}

namespace {

telemetry::Counter StatSolves("ilp", "bb.solves", "MIP solves performed");
telemetry::Counter StatNodes("ilp", "bb.nodes",
                             "branch-and-bound nodes visited");
telemetry::Counter StatIncumbents("ilp", "bb.incumbents",
                                  "incumbent improvements");
telemetry::Counter StatPruned("ilp", "bb.bound_pruned",
                              "nodes pruned by the incumbent bound");
telemetry::Counter StatInfeasibleNodes("ilp", "bb.infeasible_nodes",
                                       "nodes proved infeasible");
telemetry::PhaseTimer TimeSolve("ilp", "bb.solve",
                                "wall time in MIP solves");

telemetry::Counter StatWarmNodeLps("ilp", "bb.warm_node_lps",
                                   "node LPs solved by warm-started dual "
                                   "simplex");

/// One open subproblem, stored as a delta against the depth-first bound
/// trail instead of full Lower/Upper vector copies: the trail mark at
/// which the parent's bound state ends, plus the single branching bound
/// this child tightens. Popping a node rewinds the shared CurLower /
/// CurUpper vectors to TrailMark and applies the delta — O(changes)
/// instead of O(variables) time and memory per node.
struct Node {
  /// Trail length at creation; the bound state of the parent (after its
  /// presolve) is exactly the first TrailMark trail entries.
  size_t TrailMark = 0;
  /// Variable tightened by this branch, or -1 for the root.
  int BranchVar = -1;
  /// New bound value for BranchVar (floor or floor+1 of the parent's LP
  /// value).
  double BranchBound = 0.0;
  /// True: BranchBound is a new upper bound (x <= floor child); false:
  /// a new lower bound (x >= floor+1 child).
  bool BranchIsUpper = false;
  /// Branching depth (root = 0).
  int Depth = 0;
  /// Optimal basis of the parent's LP relaxation, shared by both
  /// children; warm-starts this node's LP via the dual simplex. Null at
  /// the root or when the parent's basis was not exportable.
  std::shared_ptr<const lp::Basis> StartBasis;
};

/// Fans search events out to the user observer and, when tracing is on,
/// to the telemetry sink (instants for events, counter tracks for the
/// depth / open-list gauges). All calls are no-ops when neither consumer
/// is active — `if (Monitor.active())` guards every emission site.
class SearchMonitor {
public:
  explicit SearchMonitor(const BbObserver &Observer)
      : Observer(Observer),
        Active(static_cast<bool>(Observer) || telemetry::tracingEnabled()) {
  }

  bool active() const { return Active; }

  void notify(const BbEventInfo &Info) const {
    if (Observer)
      Observer(Info);
    if (!telemetry::tracingEnabled())
      return;
    telemetry::instant(
        "ilp", toString(Info.Kind),
        {{"node", Info.Node},
         {"depth", Info.Depth},
         {"open", static_cast<int64_t>(Info.OpenNodes)},
         {"lp_objective", Info.LpObjective},
         {"incumbent", Info.Incumbent >= 1e300 ? 0.0 : Info.Incumbent},
         {"branch_var", Info.BranchVariable},
         {"fixed", Info.FixedVariables},
         {"warm", int64_t(Info.Warm ? 1 : 0)}});
    telemetry::gauge("ilp", "bb.depth", Info.Depth);
    telemetry::gauge("ilp", "bb.open_nodes",
                     static_cast<double>(Info.OpenNodes));
  }

private:
  const BbObserver &Observer;
  bool Active;
};

/// Returns the index of the integer variable to branch on, or -1 if \p X
/// is integral on all integer variables. Only variables of the highest
/// priority class with a fractional member are considered.
int pickBranchVariable(const Model &M, const std::vector<double> &X,
                       double IntTol, BranchRule Rule) {
  int Best = -1;
  double BestScore = -1.0;
  int BestPriority = INT_MIN;
  for (int Var = 0; Var < M.numVariables(); ++Var) {
    const Variable &V = M.variable(Var);
    if (V.Kind != VarKind::Integer)
      continue;
    double Frac = X[Var] - std::floor(X[Var]);
    double Dist = std::min(Frac, 1.0 - Frac);
    if (Dist <= IntTol)
      continue;
    if (V.BranchPriority < BestPriority)
      continue;
    bool HigherClass = V.BranchPriority > BestPriority;
    if (HigherClass) {
      BestPriority = V.BranchPriority;
      BestScore = -1.0;
      Best = Var; // Any fractional var of the new class beats the old.
    }
    switch (Rule) {
    case BranchRule::FirstFractional:
      if (HigherClass)
        break; // Keep the first (smallest-index) one of this class.
      break;
    case BranchRule::LastFractional:
      Best = Var;
      break;
    case BranchRule::MostFractional:
      if (Dist > BestScore) {
        BestScore = Dist;
        Best = Var;
      }
      break;
    }
  }
  return Best;
}

} // namespace

MipResult MipSolver::solve(const Model &M) const {
  lp::SolveContext Ctx;
  return solve(M, Ctx);
}

MipResult MipSolver::solve(const Model &M, lp::SolveContext &Ctx) const {
  telemetry::TimerScope Time(
      TimeSolve, {{"variables", int64_t(M.numVariables())},
                  {"constraints", int64_t(M.numConstraints())}});
  ++StatSolves;
  Stopwatch Watch;
  MipResult Result;
  SearchMonitor Monitor(Opts.Observer);

  double Incumbent = 1e300;
  bool Aborted = false;

  // Lower bound on the objective value implied by an LP bound, after
  // integral-objective rounding.
  auto TightenBound = [this](double LpBound) {
    if (!Opts.IntegralObjective)
      return LpBound;
    return std::ceil(LpBound - 1e-6);
  };

  // Depth-first bound state: one pair of effective-bound vectors shared
  // by every node, plus the trail of individual bound writes (branch
  // deltas and presolve tightenings) along the current root-to-node
  // path. Popping a node rewinds the trail to the node's mark — marks
  // are monotone along the stack, so a rewind never undoes state a
  // still-open node depends on.
  std::vector<double> CurLower, CurUpper;
  M.getBounds(CurLower, CurUpper);
  std::vector<BoundChange> Trail;
  auto RewindTo = [&](size_t Mark) {
    while (Trail.size() > Mark) {
      const BoundChange &B = Trail.back();
      if (B.IsUpper)
        CurUpper[B.Var] = B.OldValue;
      else
        CurLower[B.Var] = B.OldValue;
      Trail.pop_back();
    }
  };

  // LP solver state hoisted out of the node loop: the solver's own
  // wall-clock budget is folded into the context deadline once (an
  // absolute deadline on the shared clock, restored on exit by the
  // scope — no per-node remaining-time arithmetic), and every node LP
  // reuses the context's persistent workspace. With depth-first search
  // the preferred child is solved immediately after its parent, so the
  // workspace tableau usually still realizes the parent basis and the
  // warm start skips refactorization entirely.
  lp::DeadlineScope Deadline(Ctx, Opts.TimeLimitSeconds);
  lp::SimplexOptions LpOpts = Opts.Lp;
  if (Opts.CollectFarkas)
    LpOpts.CollectFarkas = true;
  SimplexSolver Lp(LpOpts);

  // Farkas support rows of every infeasible node LP (histogrammed into
  // MipResult::FarkasRows on an Infeasible verdict).
  std::vector<int> FarkasTally;

  std::vector<Node> Stack;
  Stack.emplace_back(); // Root: trail mark 0, no branch delta, no basis.
  bool IsRoot = true;

  while (!Stack.empty()) {
    if (Ctx.cancelled()) {
      Result.Cancelled = true;
      Aborted = true;
      break;
    }
    if (Watch.seconds() > Opts.TimeLimitSeconds || Ctx.deadlineExpired())
      Result.HitTimeLimit = true;
    if (Result.Nodes >= Opts.NodeLimit)
      Result.HitNodeLimit = true;
    if (Result.HitTimeLimit || Result.HitNodeLimit) {
      Aborted = true;
      break;
    }

    Node N = std::move(Stack.back());
    Stack.pop_back();
    if (!IsRoot)
      ++Result.Nodes;
    Result.MaxDepth = std::max(Result.MaxDepth, N.Depth);

    RewindTo(N.TrailMark);

    // Whether this node's LP was warm-started (set once it has run).
    bool NodeWarm = false;

    // Builds the common part of a search-event payload for this node.
    auto MakeInfo = [&](BbEvent Kind) {
      BbEventInfo Info;
      Info.Kind = Kind;
      Info.Node = Result.Nodes;
      Info.Depth = N.Depth;
      Info.OpenNodes = Stack.size();
      Info.Incumbent = Incumbent;
      Info.Warm = NodeWarm;
      return Info;
    };

    if (!IsRoot && Monitor.active())
      Monitor.notify(MakeInfo(BbEvent::NodeVisited));

    // Apply this node's branching delta to the shared bound state.
    if (N.BranchVar >= 0) {
      if (N.BranchIsUpper) {
        if (N.BranchBound < CurUpper[N.BranchVar]) {
          Trail.push_back({N.BranchVar, /*IsUpper=*/true,
                           CurUpper[N.BranchVar]});
          CurUpper[N.BranchVar] = N.BranchBound;
        }
      } else {
        if (N.BranchBound > CurLower[N.BranchVar]) {
          Trail.push_back({N.BranchVar, /*IsUpper=*/false,
                           CurLower[N.BranchVar]});
          CurLower[N.BranchVar] = N.BranchBound;
        }
      }
      if (CurLower[N.BranchVar] > CurUpper[N.BranchVar] + 1e-9) {
        // The branch emptied the variable's box (e.g. floor of the LP
        // value fell below an un-rounded fractional lower bound).
        ++Result.InfeasibleNodes;
        ++StatInfeasibleNodes;
        if (Monitor.active())
          Monitor.notify(MakeInfo(BbEvent::NodeInfeasible));
        continue;
      }
    }

    if (Opts.NodePresolve) {
      PropagationStats PStats;
      PropagationResult PR = propagateBounds(M, CurLower, CurUpper,
                                             /*MaxRounds=*/8, &PStats, &Trail);
      Result.PresolveFixedVariables += PStats.FixedVariables;
      if (Monitor.active() && PStats.FixedVariables > 0) {
        BbEventInfo Info = MakeInfo(BbEvent::PresolveFixed);
        Info.FixedVariables = PStats.FixedVariables;
        Monitor.notify(Info);
      }
      if (PR == PropagationResult::Infeasible) {
        ++Result.InfeasibleNodes;
        ++StatInfeasibleNodes;
        if (Monitor.active())
          Monitor.notify(MakeInfo(BbEvent::NodeInfeasible));
        if (IsRoot)
          break; // Root proved infeasible without an LP.
        continue;
      }
    }

    const lp::Basis *Start =
        (Opts.WarmStart && N.StartBasis && !N.StartBasis->empty())
            ? N.StartBasis.get()
            : nullptr;
    LpResult Relax = Lp.solve(M, CurLower, CurUpper, &Ctx, Start);
    Result.SimplexIterations += Relax.Iterations;
    Result.LpRefactorizations += Relax.Refactorizations;
    Result.LpEtaNonzeros += Relax.EtaNonzeros;
    NodeWarm = Relax.WarmStarted;
    if (Relax.WarmStarted) {
      ++Result.WarmLpSolves;
      Result.WarmLpIterations += Relax.Iterations;
      ++StatWarmNodeLps;
    } else {
      ++Result.ColdLpSolves;
    }

    if (Relax.Status == LpStatus::IterationLimit) {
      // Cannot bound this subtree; give up on exactness. The LP reports
      // the same status for a cancelled context, a deadline expiry, and
      // a genuine pivot-budget exhaustion — the context disambiguates.
      if (Ctx.cancelled())
        Result.Cancelled = true;
      else
        Result.HitTimeLimit = true;
      Aborted = true;
      IsRoot = false;
      break;
    }
    if (Relax.Status == LpStatus::Infeasible) {
      ++Result.InfeasibleNodes;
      ++StatInfeasibleNodes;
      if (Opts.CollectFarkas)
        FarkasTally.insert(FarkasTally.end(), Relax.FarkasRows.begin(),
                           Relax.FarkasRows.end());
      if (Monitor.active())
        Monitor.notify(MakeInfo(BbEvent::NodeInfeasible));
      if (IsRoot) {
        IsRoot = false;
        // Infeasible root proves MIP infeasibility immediately.
        break;
      }
      continue;
    }
    assert(Relax.Status != LpStatus::Unbounded &&
           "scheduling MIPs are bounded; model is missing variable bounds");
    if (IsRoot) {
      if (Opts.CollectTrajectory) {
        Result.HasRootBound = true;
        // + 0.0 normalizes the -0 that rounding a tiny negative LP
        // objective produces.
        Result.RootBound = TightenBound(Relax.Objective) + 0.0;
        Result.Trajectory.push_back(
            {Watch.seconds(), Result.Nodes, Incumbent, Result.RootBound});
      }
      if (Monitor.active()) {
        BbEventInfo Info = MakeInfo(BbEvent::RootLpSolved);
        Info.LpObjective = Relax.Objective;
        Monitor.notify(Info);
      }
    }
    IsRoot = false;

    double Bound = TightenBound(Relax.Objective);
    if (Result.HasSolution && Bound >= Incumbent - 1e-9) {
      ++Result.PrunedNodes;
      ++StatPruned;
      if (Monitor.active()) {
        BbEventInfo Info = MakeInfo(BbEvent::BoundPruned);
        Info.LpObjective = Relax.Objective;
        Monitor.notify(Info);
      }
      continue; // Cannot improve on the incumbent.
    }
    if (Opts.ExternalBound) {
      // Portfolio cutoff: another engine holds a solution with
      // objective <= ExtK, so only strictly better subtrees matter —
      // prune on it even before this solve has an incumbent of its own.
      // The cell only tightens, so the last value used is the tightest.
      int64_t ExtK = Opts.ExternalBound->load(std::memory_order_acquire);
      if (ExtK != INT64_MAX && Bound >= double(ExtK) - 1e-9) {
        Result.UsedExternalBound = true;
        Result.ExternalBound = ExtK;
        ++Result.PrunedNodes;
        ++StatPruned;
        if (Monitor.active()) {
          BbEventInfo Info = MakeInfo(BbEvent::BoundPruned);
          Info.LpObjective = Relax.Objective;
          Monitor.notify(Info);
        }
        continue;
      }
    }

    int BranchVar =
        pickBranchVariable(M, Relax.Values, Opts.IntTol, Opts.Branching);
    if (BranchVar < 0) {
      // Integral: new incumbent.
      double Obj = Relax.Objective;
      if (!Result.HasSolution || Obj < Incumbent - 1e-9) {
        Incumbent = Obj;
        Result.HasSolution = true;
        Result.Objective = Obj;
        Result.Values = Relax.Values;
        roundIntegralValues(Result.Values, Opts.IntTol);
        ++Result.Incumbents;
        ++StatIncumbents;
        if (Opts.CollectTrajectory)
          Result.Trajectory.push_back(
              {Watch.seconds(), Result.Nodes, Incumbent,
               Result.HasRootBound ? Result.RootBound : -1e300});
        if (Monitor.active()) {
          BbEventInfo Info = MakeInfo(BbEvent::IncumbentFound);
          Info.LpObjective = Obj;
          Info.Incumbent = Incumbent;
          Info.Values = &Result.Values;
          Monitor.notify(Info);
        }
      }
      if (Opts.StopAtFirstSolution)
        break;
      continue;
    }

    // Branch: floor child and ceil child. Depth-first; explore the child
    // containing the LP value's rounding first (pushed last).
    double X = Relax.Values[BranchVar];
    double Floor = std::floor(X);

    if (Monitor.active()) {
      BbEventInfo Info = MakeInfo(BbEvent::Branched);
      Info.LpObjective = Relax.Objective;
      Info.BranchVariable = BranchVar;
      Monitor.notify(Info);
    }

    // Both children share this node's bound state (trail prefix) and,
    // when warm starts are on, its optimal basis — which stays dual-
    // feasible under the one-bound tightening each child applies.
    std::shared_ptr<const lp::Basis> ChildBasis;
    if (Opts.WarmStart && !Relax.FinalBasis.empty())
      ChildBasis =
          std::make_shared<const lp::Basis>(std::move(Relax.FinalBasis));

    Node Down; // x <= floor
    Down.TrailMark = Trail.size();
    Down.BranchVar = BranchVar;
    Down.BranchBound = Floor;
    Down.BranchIsUpper = true;
    Down.Depth = N.Depth + 1;
    Down.StartBasis = ChildBasis;
    Node Up = Down; // x >= floor + 1
    Up.BranchBound = Floor + 1.0;
    Up.BranchIsUpper = false;

    bool PreferDown = (X - Floor) < 0.5;
    if (PreferDown) {
      Stack.push_back(std::move(Up));
      Stack.push_back(std::move(Down));
    } else {
      Stack.push_back(std::move(Down));
      Stack.push_back(std::move(Up));
    }
  }

  Result.Seconds = Watch.seconds();
  StatNodes += Result.Nodes;
  if (Result.HasSolution)
    Result.Status = Aborted || !Stack.empty() ? MipStatus::Limit
                                              : MipStatus::Optimal;
  else
    Result.Status = Aborted || !Stack.empty() ? MipStatus::Limit
                                              : MipStatus::Infeasible;
  // StopAtFirstSolution intentionally reports Optimal even though open
  // nodes remain: with a zero objective every feasible point is optimal.
  if (Result.HasSolution && Opts.StopAtFirstSolution && !Aborted)
    Result.Status = MipStatus::Optimal;
  // Cancellation trumps the Limit classification: the caller asked the
  // search to stop, so neither bound statistic nor solution state is a
  // verdict about the problem.
  if (Result.Cancelled)
    Result.Status = MipStatus::Cancelled;
  if (Opts.CollectFarkas && Result.Status == MipStatus::Infeasible &&
      !FarkasTally.empty()) {
    // Histogram the tally: rows implicated by the most node LPs first.
    std::sort(FarkasTally.begin(), FarkasTally.end());
    std::vector<std::pair<int64_t, int>> Freq; // (-count, row)
    for (size_t I = 0; I < FarkasTally.size();) {
      size_t J = I;
      while (J < FarkasTally.size() && FarkasTally[J] == FarkasTally[I])
        ++J;
      Freq.push_back({-int64_t(J - I), FarkasTally[I]});
      I = J;
    }
    std::sort(Freq.begin(), Freq.end());
    Result.FarkasRows.reserve(Freq.size());
    for (const std::pair<int64_t, int> &F : Freq)
      Result.FarkasRows.push_back(F.second);
  }
  return Result;
}
