//===- ilp/Presolve.h - Bound propagation for MIP nodes ---------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint-based bound propagation ("node presolve"): given the
/// current variable bounds of a branch-and-bound node, repeatedly
/// tightens each variable's bounds using the activity bounds of every
/// constraint, rounding integer variables' bounds inward. Detects some
/// infeasible nodes without an LP solve and shrinks others' feasible
/// boxes, which is particularly effective after branching fixes a row-
/// assignment variable of the scheduling formulations.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILP_PRESOLVE_H
#define MODSCHED_ILP_PRESOLVE_H

#include "lp/Model.h"

#include <vector>

namespace modsched {
namespace ilp {

/// Result of a propagation pass.
enum class PropagationResult {
  Feasible,   ///< Bounds are consistent (possibly tightened).
  Infeasible, ///< Some variable's bounds crossed: the node is dead.
};

/// Telemetry detail of one propagateBounds() call (all zero when the
/// pass changed nothing). See docs/OBSERVABILITY.md.
struct PropagationStats {
  /// Fixpoint rounds executed (bounded by MaxRounds).
  int Rounds = 0;
  /// Individual bound tightenings applied.
  int64_t TightenedBounds = 0;
  /// Variables whose interval collapsed to a point (fixed) this call.
  int64_t FixedVariables = 0;
};

/// Propagates \p M's constraints over the bounds [\p Lower, \p Upper]
/// in place. \p MaxRounds caps the fixpoint iteration. When \p Stats is
/// non-null it receives the per-call propagation telemetry.
PropagationResult propagateBounds(const lp::Model &M,
                                  std::vector<double> &Lower,
                                  std::vector<double> &Upper,
                                  int MaxRounds = 8,
                                  PropagationStats *Stats = nullptr);

} // namespace ilp
} // namespace modsched

#endif // MODSCHED_ILP_PRESOLVE_H
