//===- ilp/Presolve.h - Bound propagation for MIP nodes ---------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint-based bound propagation ("node presolve"): given the
/// current variable bounds of a branch-and-bound node, repeatedly
/// tightens each variable's bounds using the activity bounds of every
/// constraint, rounding integer variables' bounds inward. Detects some
/// infeasible nodes without an LP solve and shrinks others' feasible
/// boxes, which is particularly effective after branching fixes a row-
/// assignment variable of the scheduling formulations.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILP_PRESOLVE_H
#define MODSCHED_ILP_PRESOLVE_H

#include "lp/Model.h"

#include <vector>

namespace modsched {
namespace ilp {

/// Result of a propagation pass.
enum class PropagationResult {
  Feasible,   ///< Bounds are consistent (possibly tightened).
  Infeasible, ///< Some variable's bounds crossed: the node is dead.
};

/// One recorded bound write: enough information to undo it. The branch-
/// and-bound solver keeps a trail of these along its depth-first path
/// (one entry per tightening, whether from branching or from node
/// presolve) and rewinds the trail on backtrack instead of copying full
/// Lower/Upper vectors into every open node.
struct BoundChange {
  /// Variable whose bound was written.
  int Var = -1;
  /// True when the upper bound was written, false for the lower bound.
  bool IsUpper = false;
  /// The bound's value before the write.
  double OldValue = 0.0;
};

/// Telemetry detail of one propagateBounds() call (all zero when the
/// pass changed nothing). See docs/OBSERVABILITY.md.
struct PropagationStats {
  /// Fixpoint rounds executed (bounded by MaxRounds).
  int Rounds = 0;
  /// Individual bound tightenings applied.
  int64_t TightenedBounds = 0;
  /// Variables whose interval collapsed to a point (fixed) this call.
  int64_t FixedVariables = 0;
};

/// Propagates \p M's constraints over the bounds [\p Lower, \p Upper]
/// in place. \p MaxRounds caps the fixpoint iteration. When \p Stats is
/// non-null it receives the per-call propagation telemetry. When
/// \p Journal is non-null, every individual bound write is appended to it
/// (including writes made before an Infeasible conclusion), so a caller
/// maintaining a backtracking trail can undo the pass exactly.
PropagationResult propagateBounds(const lp::Model &M,
                                  std::vector<double> &Lower,
                                  std::vector<double> &Upper,
                                  int MaxRounds = 8,
                                  PropagationStats *Stats = nullptr,
                                  std::vector<BoundChange> *Journal = nullptr);

} // namespace ilp
} // namespace modsched

#endif // MODSCHED_ILP_PRESOLVE_H
