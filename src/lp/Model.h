//===- lp/Model.h - Linear/integer program model -----------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory representation of a (mixed-integer) linear program:
/// minimize c'x subject to linear constraints and variable bounds.
/// This is the interface between the scheduling formulations
/// (src/ilpsched) and the solver stack (src/lp simplex, src/ilp
/// branch-and-bound), playing the role CPLEX's model API plays in the
/// paper.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_LP_MODEL_H
#define MODSCHED_LP_MODEL_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace modsched {
namespace lp {

/// Positive infinity used for unbounded variable bounds.
inline double infinity() { return std::numeric_limits<double>::infinity(); }

/// Whether a variable must take an integral value in a MIP solve.
enum class VarKind { Continuous, Integer };

/// Constraint comparison sense.
enum class ConstraintSense { LE, GE, EQ };

/// One decision variable.
struct Variable {
  std::string Name;
  double Lower = 0.0;
  double Upper = infinity();
  double Objective = 0.0;
  VarKind Kind = VarKind::Continuous;
  /// Branching priority for MIP search: the branch-and-bound solver only
  /// branches on a lower-priority variable when all higher-priority
  /// integer variables are integral. Scheduling formulations use this to
  /// branch on row-assignment variables before stage and bookkeeping
  /// variables.
  int BranchPriority = 0;
};

/// A sparse linear term: (variable index, coefficient).
using Term = std::pair<int, double>;

/// One linear constraint: sum of Terms `Sense` Rhs.
struct Constraint {
  std::vector<Term> Terms;
  ConstraintSense Sense = ConstraintSense::LE;
  double Rhs = 0.0;
  std::string Name;
};

/// A minimization LP/MIP model.
///
/// The objective is always minimized; callers maximizing a quantity should
/// negate its coefficients. Variables and constraints are identified by
/// dense indices in creation order.
class Model {
public:
  /// Adds a variable and returns its index.
  int addVariable(std::string Name, double Lower, double Upper,
                  double Objective = 0.0,
                  VarKind Kind = VarKind::Continuous);

  /// Convenience: adds a binary {0,1} integer variable.
  int addBinaryVariable(std::string Name, double Objective = 0.0) {
    return addVariable(std::move(Name), 0.0, 1.0, Objective,
                       VarKind::Integer);
  }

  /// Adds a constraint and returns its index. Terms with the same variable
  /// index are merged; zero coefficients are dropped.
  int addConstraint(std::vector<Term> Terms, ConstraintSense Sense,
                    double Rhs, std::string Name = "");

  /// Overwrites the objective coefficient of variable \p Var.
  void setObjective(int Var, double Coefficient);

  /// Tightens (replaces) the bounds of variable \p Var.
  void setBounds(int Var, double Lower, double Upper);

  /// Sets the MIP branching priority of variable \p Var.
  void setBranchPriority(int Var, int Priority);

  int numVariables() const { return static_cast<int>(Vars.size()); }
  int numConstraints() const { return static_cast<int>(Cons.size()); }

  /// Number of variables flagged integer.
  int numIntegerVariables() const;

  const Variable &variable(int Var) const { return Vars[Var]; }
  const Constraint &constraint(int C) const { return Cons[C]; }
  const std::vector<Variable> &variables() const { return Vars; }
  const std::vector<Constraint> &constraints() const { return Cons; }

  /// Evaluates the objective at \p X.
  double evaluateObjective(const std::vector<double> &X) const;

  /// Copies every variable's bounds into \p Lower / \p Upper (resized to
  /// numVariables()). This is the canonical way to seed the effective-
  /// bound workspace that branch-and-bound mutates along its search path.
  void getBounds(std::vector<double> &Lower, std::vector<double> &Upper) const;

  /// Returns true iff \p X satisfies every constraint and bound within
  /// \p Tolerance, writing a description of the first violation into
  /// \p WhyNot if provided. Integrality is NOT checked here.
  bool isFeasible(const std::vector<double> &X, double Tolerance = 1e-6,
                  std::string *WhyNot = nullptr) const;

  /// True if every constraint of the model is 0-1-structured in the
  /// paper's Definition 1: each variable appears at most once, with
  /// coefficient -1, 0, or +1. (Objective and bounds are exempt, matching
  /// the paper's usage.)
  bool isZeroOneStructured() const;

  /// Renders the model in an LP-like text format, for debugging and for
  /// golden tests of the formulations.
  std::string toString() const;

  /// Process-unique mutation stamp: every mutating call (addVariable,
  /// addConstraint, setObjective, setBounds, setBranchPriority) assigns
  /// a fresh value drawn from a process-wide counter. Two observations
  /// of the same revision therefore guarantee the model content has not
  /// changed in between — even across Model objects reusing the same
  /// address — which is what lets the sparse simplex engine cache its
  /// compiled constraint matrix across a branch-and-bound solve
  /// sequence (bound changes arrive out-of-band and do not touch the
  /// model, so the revision stays put for the whole search).
  uint64_t revision() const { return Revision; }

private:
  /// Draws a fresh process-unique revision value.
  void bumpRevision();

  std::vector<Variable> Vars;
  std::vector<Constraint> Cons;
  uint64_t Revision = 0;
};

} // namespace lp
} // namespace modsched

#endif // MODSCHED_LP_MODEL_H
