//===- lp/SparseMatrix.cpp - Compiled sparse constraint matrix ------------===//

#include "lp/SparseMatrix.h"

#include "lp/Model.h"

#include <cassert>

using namespace modsched;
using namespace modsched::lp;

bool SparseMatrix::matches(const Model &M) const {
  return ModelRevision != 0 && ModelRevision == M.revision() &&
         NumRows == M.numConstraints() && NumCols == M.numVariables();
}

void SparseMatrix::compile(const Model &M) {
  NumRows = M.numConstraints();
  NumCols = M.numVariables();
  ModelRevision = M.revision();

  // Count entries per column and per row in one sweep.
  ColStart.assign(NumCols + 1, 0);
  RowStart.assign(NumRows + 1, 0);
  int Nnz = 0;
  for (int I = 0; I < NumRows; ++I) {
    const Constraint &C = M.constraint(I);
    RowStart[I + 1] = static_cast<int>(C.Terms.size());
    for (const Term &T : C.Terms) {
      assert(T.first >= 0 && T.first < NumCols &&
             "constraint references unknown variable");
      assert(T.second != 0.0 && "model must canonicalize zero coefficients");
      ++ColStart[T.first + 1];
      ++Nnz;
    }
  }
  for (int J = 0; J < NumCols; ++J)
    ColStart[J + 1] += ColStart[J];
  for (int I = 0; I < NumRows; ++I)
    RowStart[I + 1] += RowStart[I];

  RowIndex.resize(Nnz);
  Value.resize(Nnz);
  ColIndex.resize(Nnz);
  RValue.resize(Nnz);

  // Fill CSR directly (constraints are already row-ordered) and scatter
  // into CSC using a moving write cursor per column. Walking rows in
  // order keeps each CSC column's row indices sorted ascending, which
  // the LU factorization relies on.
  std::vector<int> ColCursor(ColStart.begin(), ColStart.end() - 1);
  for (int I = 0; I < NumRows; ++I) {
    const Constraint &C = M.constraint(I);
    int RPos = RowStart[I];
    for (const Term &T : C.Terms) {
      ColIndex[RPos] = T.first;
      RValue[RPos] = T.second;
      ++RPos;
      int CPos = ColCursor[T.first]++;
      RowIndex[CPos] = I;
      Value[CPos] = T.second;
    }
    assert(RPos == RowStart[I + 1] && "row fill cursor mismatch");
  }
#ifndef NDEBUG
  for (int J = 0; J < NumCols; ++J)
    assert(ColCursor[J] == ColStart[J + 1] && "column fill cursor mismatch");
#endif
}
