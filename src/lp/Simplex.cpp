//===- lp/Simplex.cpp - Bounded-variable primal/dual simplex --------------===//
//
// Dense bounded-variable simplex with two entry points: a two-phase
// primal for cold solves and a warm-startable dual simplex for re-solves
// from an exported basis after bound tightenings (the branch-and-bound
// pattern). See Simplex.h for an overview, Chvatal, "Linear
// Programming", ch. 8 for bounded-variable primal simplex, and
// Koberstein's "The dual simplex method" for the dual ratio test with
// boxed variables.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include "lp/SolveContext.h"
#include "lp/SparseRevisedSimplex.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace {

// Telemetry: aggregate solver-stack counters (MODSCHED_STATS=1) and the
// simplex phase timer (clock only read when telemetry is enabled).
modsched::telemetry::Counter StatSolves("lp", "simplex.solves",
                                        "LP solves performed");
modsched::telemetry::Counter StatIterations("lp", "simplex.iterations",
                                            "total simplex pivots");
modsched::telemetry::Counter
    StatDegenerate("lp", "simplex.degenerate_pivots",
                   "pivots with ~zero step length");
modsched::telemetry::Counter StatFlips("lp", "simplex.bound_flips",
                                       "entering-variable bound flips");
modsched::telemetry::Counter
    StatRefactor("lp", "simplex.refactorizations",
                 "periodic basic-value refreshes");
modsched::telemetry::Counter StatInfeasible("lp", "simplex.infeasible",
                                            "LP solves proved infeasible");
modsched::telemetry::Counter
    StatWarmSolves("lp", "warm_solves",
                   "LP solves warm-started from a basis (dual simplex)");
modsched::telemetry::Counter
    StatWarmIterations("lp", "warm_iterations",
                       "simplex pivots inside warm-started solves");
modsched::telemetry::Counter
    StatColdSolves("lp", "cold_solves",
                   "LP solves from scratch (two-phase primal)");
modsched::telemetry::Counter
    StatWarmFallbacks("lp", "warm_fallbacks",
                      "warm-start attempts that fell back to a cold solve");
modsched::telemetry::Counter
    StatBasisRebuilds("lp", "basis_rebuilds",
                      "warm starts that refactorized the requested basis");
modsched::telemetry::PhaseTimer TimeSolve("lp", "simplex.solve",
                                          "wall time in LP solves");

/// Process-unique stamp source for exported bases. Atomic: concurrent
/// solve attempts (each under its own SolveContext) stamp bases from
/// their own threads.
std::atomic<uint64_t> NextBasisId{0};

} // namespace

using namespace modsched;
using namespace modsched::lp;

const char *lp::toString(LpStatus Status) {
  switch (Status) {
  case LpStatus::Optimal:
    return "optimal";
  case LpStatus::Infeasible:
    return "infeasible";
  case LpStatus::Unbounded:
    return "unbounded";
  case LpStatus::IterationLimit:
    return "iteration-limit";
  }
  return "unknown";
}

const char *lp::toString(SimplexEngine Engine) {
  switch (Engine) {
  case SimplexEngine::Dense:
    return "dense";
  case SimplexEngine::SparseRevised:
    return "sparse_revised";
  }
  return "unknown";
}

SimplexEngine lp::defaultSimplexEngine() {
  static const SimplexEngine Cached = [] {
    const char *Env = std::getenv("MODSCHED_LP_ENGINE");
    if (!Env || !*Env)
      return SimplexEngine::SparseRevised;
    if (std::strcmp(Env, "dense") == 0)
      return SimplexEngine::Dense;
    if (std::strcmp(Env, "sparse") == 0 ||
        std::strcmp(Env, "sparse_revised") == 0)
      return SimplexEngine::SparseRevised;
    std::fprintf(stderr,
                 "modsched: unrecognized MODSCHED_LP_ENGINE='%s' "
                 "(want dense|sparse); keeping sparse_revised\n",
                 Env);
    return SimplexEngine::SparseRevised;
  }();
  return Cached;
}

uint64_t lp::detail::takeBasisStamp() {
  return NextBasisId.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace {

/// Where a column currently rests (shared with the sparse engine so
/// exported bases are interchangeable; see lp::ColState).
using ColStatus = lp::ColState;

/// Reduced-cost sign tolerance for accepting a starting basis as
/// dual-feasible (slightly looser than OptTol to absorb drift
/// accumulated across chained warm solves).
constexpr double DualFeasTol = 1e-6;

/// The working tableau for one or more solves. Columns are laid out as
/// [structural | slack | artificial]. The object is reusable: initCold /
/// tryInitWarm re-seed it for the next solve while recycling every
/// buffer, which is what SimplexWorkspace persists across the
/// branch-and-bound node loop.
class Tableau {
public:
  /// Seeds a cold solve: slack/artificial starting basis for phase 1.
  void initCold(const Model &M, const std::vector<double> &Lower,
                const std::vector<double> &Upper, const SimplexOptions &Opts);

  /// Seeds a warm solve from \p B. Returns false (leaving the object in
  /// need of initCold) when the basis cannot be realized: shape
  /// mismatch, singular refactorization, or dual infeasibility beyond
  /// tolerance. On success the tableau realizes \p B with the new
  /// bounds, either in place (when the workspace still held it) or via
  /// refactorization from the original constraint matrix.
  bool tryInitWarm(const Model &M, const std::vector<double> &Lower,
                   const std::vector<double> &Upper, const Basis &B,
                   const SimplexOptions &Opts);

  /// Runs phase 1 (if needed) and phase 2. Returns the final status.
  LpStatus run();

  /// Runs the dual simplex until primal feasibility, then a primal
  /// clean-up pass. Requires tryInitWarm to have succeeded.
  LpStatus runWarm();

  /// Exports the current (optimal) basis. Returns false when a
  /// degenerate artificial column is basic and cannot be pivoted out.
  bool extractBasis(Basis &Out);

  /// Stamps \p B (and the tableau) with a fresh identity after a
  /// successful extractBasis, enabling O(1) reuse detection.
  void stamp(Basis &B) {
    B.Id = lp::detail::takeBasisStamp();
    CurrentStamp = B.Id;
  }

  /// Installs the per-attempt solve environment observed by
  /// budgetExceeded() (deadline + cancellation); null detaches.
  void setContext(const SolveContext *Ctx) { CtxP = Ctx; }

  /// Marks the tableau as not realizing any exported basis (after a
  /// non-optimal end state or a failed extraction).
  void invalidateStamp() { CurrentStamp = 0; }

  /// Extracts the values of the structural variables.
  std::vector<double> structuralValues() const;

  int64_t iterations() const { return Iters; }
  int64_t degeneratePivots() const { return Degenerate; }
  int64_t boundFlips() const { return Flips; }
  int64_t refactorizations() const { return Refactors; }
  int64_t phase1Iterations() const { return Phase1Iters; }
  int64_t dualIterations() const { return DualIters; }
  /// Product-form eta nonzeros: the dense tableau has no eta file.
  int64_t etaNonzeros() const { return 0; }
  /// True when the last tryInitWarm took the rebuild-from-matrix path
  /// (counted as a basis rebuild by the caller's telemetry).
  bool didRebuildBasis() const { return DidRebuild; }
  /// Rows supporting the infeasibility certificate of the last solve
  /// (with SimplexOptions::CollectFarkas; may contain duplicates).
  const std::vector<int> &farkasRows() const { return FarkasSupport; }

private:
  /// Runs the primal simplex loop with the current cost row until
  /// optimality, unboundedness, or the iteration limit.
  LpStatus iterate(bool PhaseOne);

  /// Runs the dual simplex loop until primal feasibility, infeasibility,
  /// or the iteration limit. Requires a dual-feasible basis.
  LpStatus dualIterate();

  /// Records the model rows appearing in tableau row \p Row's slack
  /// columns — the support of the Farkas certificate \p Row encodes.
  /// No-op unless SimplexOptions::CollectFarkas is set.
  void recordFarkasRow(int Row) {
    if (!OptsP->CollectFarkas)
      return;
    for (int Col = NumStruct; Col < FirstArtificial; ++Col)
      if (std::abs(tab(Row, Col)) > 1e-9)
        FarkasSupport.push_back(Col - NumStruct);
  }

  /// Shared per-solve bookkeeping for initCold / tryInitWarm.
  void beginSolve(const Model &M, const SimplexOptions &Opts);

  /// Lays out bounds/objective/statuses and the raw (unreduced) tableau
  /// for \p M with no artificial columns; basis assignment left to the
  /// caller.
  void buildRaw(const Model &M, const std::vector<double> &Lower,
                const std::vector<double> &Upper);

  /// Rebuilds CostRow[j] = Cost[j] - sum_i Cost[Basis[i]] * Tab(i, j).
  void rebuildCostRow();

  /// Rebuilds the basic-variable values from Rhs and the nonbasic resting
  /// values; flushes accumulated floating-point drift.
  void refreshBasicValues();

  /// Row-reduces the tableau so column \p Enter becomes the identity
  /// column of \p LeaveRow, updating Rhs and CostRow. Does not touch
  /// Status / Basis / BasicValue (callers differ there).
  void applyPivot(int LeaveRow, int Enter);

  /// Re-rests any nonbasic column whose resting bound is no longer
  /// finite (or that was free and now has finite bounds) on a bound
  /// compatible with its reduced-cost sign.
  void snapNonbasicToBounds();

  /// True when every nonbasic column's reduced cost has the sign its
  /// status requires (within DualFeasTol).
  bool dualFeasible() const;

  /// Chooses the entering column, or -1 at optimality.
  int chooseEntering(bool Bland) const;

  /// Checks the per-solve pivot/wall-clock budgets and the context's
  /// cancellation token / deadline (every 64 pivots).
  bool budgetExceeded() const {
    if (Iters >= OptsP->MaxIterations)
      return true;
    if ((Iters & 63) != 0)
      return false;
    if (CtxP && (CtxP->cancelled() || CtxP->deadlineExpired()))
      return true;
    return Clock.seconds() > OptsP->TimeLimitSeconds;
  }

  double &tab(int Row, int Col) { return Tab[size_t(Row) * NumCols + Col]; }
  double tab(int Row, int Col) const {
    return Tab[size_t(Row) * NumCols + Col];
  }

  /// Resting value of nonbasic column \p Col.
  double restingValue(int Col) const {
    switch (Status[Col]) {
    case ColStatus::AtLower:
      return Lo[Col];
    case ColStatus::AtUpper:
      return Up[Col];
    case ColStatus::Free:
      return 0.0;
    case ColStatus::Basic:
      break;
    }
    assert(false && "restingValue of basic column");
    return 0.0;
  }

  const SimplexOptions *OptsP = nullptr;
  const Model *ModelP = nullptr; ///< Model of the current tableau state.
  int NumRows = 0;
  int NumStruct = 0;
  int NumCols = 0; ///< structural + slack + artificial.
  int FirstArtificial = 0;

  std::vector<double> Tab;        ///< B^-1 * A, dense, row-major.
  std::vector<double> Rhs;        ///< B^-1 * b.
  std::vector<double> Lo, Up;     ///< Column bounds.
  std::vector<double> Obj;        ///< Model objective (structural columns).
  std::vector<double> Cost;       ///< Current-phase costs, all columns.
  std::vector<double> CostRow;    ///< Reduced costs.
  std::vector<ColStatus> Status;  ///< Per-column status.
  std::vector<int> Basis;         ///< Basis[row] = column index.
  std::vector<double> BasicValue; ///< Current value of Basis[row].
  std::vector<int> Scratch;      ///< Refactorization work list.
  std::vector<int> FarkasSupport; ///< Certificate rows (CollectFarkas).
  int64_t Iters = 0;
  int64_t Degenerate = 0;  ///< Pivots with ~zero step length.
  int64_t Flips = 0;       ///< Pure bound-flip pivots.
  int64_t Refactors = 0;   ///< refreshBasicValues() calls.
  int64_t Phase1Iters = 0; ///< Pivots spent in phase 1.
  int64_t DualIters = 0;   ///< Pivots spent in the dual simplex.
  /// Pivots accumulated in Tab since the last build from the original
  /// constraint matrix; bounds tableau drift across chained warm solves.
  int64_t PivotsSinceFactor = 0;
  /// Whether the last tryInitWarm rebuilt the tableau from the matrix.
  bool DidRebuild = false;
  /// Id of the exported basis this tableau currently realizes (0 =
  /// none). See Basis::Id.
  uint64_t CurrentStamp = 0;
  /// Per-attempt solve environment (deadline + cancellation), or null.
  /// Borrowed from the caller of SimplexSolver::solve for its duration.
  const SolveContext *CtxP = nullptr;
  Stopwatch Clock;
};

void Tableau::beginSolve(const Model &M, const SimplexOptions &Opts) {
  OptsP = &Opts;
  Iters = Degenerate = Flips = Refactors = Phase1Iters = DualIters = 0;
  FarkasSupport.clear();
  Clock.reset();
  NumRows = M.numConstraints();
  NumStruct = M.numVariables();
  FirstArtificial = NumStruct + NumRows;
}

void Tableau::buildRaw(const Model &M, const std::vector<double> &Lower,
                       const std::vector<double> &Upper) {
  Obj.assign(Lower.size(), 0.0);
  for (int Col = 0; Col < NumStruct; ++Col)
    Obj[Col] = M.variable(Col).Objective;

  // Column bounds: structural variables first, then one slack per row.
  Lo.assign(Lower.begin(), Lower.end());
  Up.assign(Upper.begin(), Upper.end());
  Lo.resize(FirstArtificial);
  Up.resize(FirstArtificial);
  for (int Row = 0; Row < NumRows; ++Row) {
    int SlackCol = NumStruct + Row;
    switch (M.constraint(Row).Sense) {
    case ConstraintSense::LE:
      Lo[SlackCol] = 0.0;
      Up[SlackCol] = infinity();
      break;
    case ConstraintSense::GE:
      Lo[SlackCol] = -infinity();
      Up[SlackCol] = 0.0;
      break;
    case ConstraintSense::EQ:
      Lo[SlackCol] = 0.0;
      Up[SlackCol] = 0.0;
      break;
    }
  }
  NumCols = FirstArtificial;

  Tab.assign(size_t(NumRows) * NumCols, 0.0);
  Rhs.assign(NumRows, 0.0);
  for (int Row = 0; Row < NumRows; ++Row) {
    const Constraint &C = M.constraint(Row);
    for (const Term &T : C.Terms)
      tab(Row, T.first) += T.second;
    tab(Row, NumStruct + Row) = 1.0; // Slack.
    Rhs[Row] = C.Rhs;
  }
  PivotsSinceFactor = 0;
}

void Tableau::initCold(const Model &M, const std::vector<double> &Lower,
                       const std::vector<double> &Upper,
                       const SimplexOptions &Opts) {
  beginSolve(M, Opts);
  ModelP = &M;
  CurrentStamp = 0;

  Obj.assign(size_t(NumStruct), 0.0);
  for (int Col = 0; Col < NumStruct; ++Col)
    Obj[Col] = M.variable(Col).Objective;

  // Column bounds: structural variables first, then one slack per row.
  Lo.assign(Lower.begin(), Lower.end());
  Up.assign(Upper.begin(), Upper.end());
  Lo.resize(FirstArtificial);
  Up.resize(FirstArtificial);
  for (int Row = 0; Row < NumRows; ++Row) {
    int SlackCol = NumStruct + Row;
    switch (M.constraint(Row).Sense) {
    case ConstraintSense::LE:
      Lo[SlackCol] = 0.0;
      Up[SlackCol] = infinity();
      break;
    case ConstraintSense::GE:
      Lo[SlackCol] = -infinity();
      Up[SlackCol] = 0.0;
      break;
    case ConstraintSense::EQ:
      Lo[SlackCol] = 0.0;
      Up[SlackCol] = 0.0;
      break;
    }
  }

  // Rest every structural variable at a finite bound (or 0 when free) and
  // compute the residual each row's slack must absorb.
  Status.assign(FirstArtificial, ColStatus::AtLower);
  for (int Col = 0; Col < NumStruct; ++Col) {
    if (std::isfinite(Lo[Col]))
      Status[Col] = ColStatus::AtLower;
    else if (std::isfinite(Up[Col]))
      Status[Col] = ColStatus::AtUpper;
    else
      Status[Col] = ColStatus::Free;
  }

  std::vector<double> Residual(NumRows, 0.0);
  for (int Row = 0; Row < NumRows; ++Row) {
    const Constraint &C = M.constraint(Row);
    double Lhs = 0.0;
    for (const Term &T : C.Terms)
      Lhs += T.second * restingValue(T.first);
    Residual[Row] = C.Rhs - Lhs;
  }

  // Decide, per row, whether the slack can hold the residual; otherwise
  // the row gets an artificial column and the slack rests at the violated
  // (necessarily finite) bound.
  Basis.assign(NumRows, -1);
  BasicValue.assign(NumRows, 0.0);
  std::vector<int> ArtificialSign(NumRows, 0);
  int NumArtificials = 0;
  for (int Row = 0; Row < NumRows; ++Row) {
    int SlackCol = NumStruct + Row;
    double R = Residual[Row];
    if (R >= Lo[SlackCol] - Opts.FeasTol &&
        R <= Up[SlackCol] + Opts.FeasTol) {
      Status[SlackCol] = ColStatus::Basic;
      Basis[Row] = SlackCol;
      BasicValue[Row] = std::clamp(R, Lo[SlackCol], Up[SlackCol]);
      continue;
    }
    double Clamped = std::clamp(R, Lo[SlackCol], Up[SlackCol]);
    Status[SlackCol] =
        (Clamped == Lo[SlackCol]) ? ColStatus::AtLower : ColStatus::AtUpper;
    double Excess = R - Clamped;
    ArtificialSign[Row] = Excess > 0 ? 1 : -1;
    int ArtCol = FirstArtificial + NumArtificials++;
    Basis[Row] = ArtCol;
    BasicValue[Row] = std::abs(Excess);
  }

  NumCols = FirstArtificial + NumArtificials;
  Lo.resize(NumCols, 0.0);
  Up.resize(NumCols, infinity());
  std::fill(Lo.begin() + FirstArtificial, Lo.end(), 0.0);
  std::fill(Up.begin() + FirstArtificial, Up.end(), infinity());
  Status.resize(NumCols, ColStatus::Basic);
  std::fill(Status.begin() + FirstArtificial, Status.end(),
            ColStatus::Basic);

  // Fill the tableau. A row whose basis column is an artificial with sign
  // -1 is negated so the initial basis matrix is the identity.
  Tab.assign(size_t(NumRows) * NumCols, 0.0);
  Rhs.assign(NumRows, 0.0);
  for (int Row = 0; Row < NumRows; ++Row) {
    const Constraint &C = M.constraint(Row);
    double Scale = ArtificialSign[Row] < 0 ? -1.0 : 1.0;
    for (const Term &T : C.Terms)
      tab(Row, T.first) += Scale * T.second;
    tab(Row, NumStruct + Row) = Scale; // Slack.
    if (ArtificialSign[Row] != 0)
      tab(Row, Basis[Row]) = 1.0; // Artificial column, already scaled.
    Rhs[Row] = Scale * C.Rhs;
  }
  PivotsSinceFactor = 0;

  Cost.assign(NumCols, 0.0);
  CostRow.assign(NumCols, 0.0);
}

bool Tableau::tryInitWarm(const Model &M, const std::vector<double> &Lower,
                          const std::vector<double> &Upper,
                          const lp::Basis &B, const SimplexOptions &Opts) {
  // Shape check: the basis must describe this model's column layout.
  int Rows = M.numConstraints();
  int Struct = M.numVariables();
  if (static_cast<int>(B.BasicCols.size()) != Rows ||
      static_cast<int>(B.ColStatus.size()) != Struct + Rows)
    return false;

  // Fast path: the workspace tableau still realizes exactly this basis
  // (the child-after-parent pattern of depth-first branch-and-bound).
  // Only the bounds changed, and the tableau (B^-1 A) does not depend on
  // bounds — rebind them and go. Guarded by a drift budget: after enough
  // chained pivots, refactorize from the original matrix instead.
  bool Reused = false;
  DidRebuild = false;
  if (B.Id != 0 && B.Id == CurrentStamp && ModelP == &M &&
      NumRows == Rows && NumStruct == Struct &&
      PivotsSinceFactor < Opts.WarmRebuildPivots) {
    beginSolve(M, Opts);
    CurrentStamp = 0; // Tableau is about to diverge from any export.
    std::copy(Lower.begin(), Lower.end(), Lo.begin());
    std::copy(Upper.begin(), Upper.end(), Up.begin());
    Reused = true;
  } else {
    // Refactorization path: rebuild the raw tableau (no artificials) and
    // row-reduce the requested basic columns to the identity, choosing
    // pivot rows greedily by magnitude for stability.
    DidRebuild = true;
    beginSolve(M, Opts);
    ModelP = &M;
    CurrentStamp = 0;
    buildRaw(M, Lower, Upper);

    Status.assign(NumCols, ColStatus::AtLower);
    for (int Col = 0; Col < NumCols; ++Col)
      Status[Col] = static_cast<ColStatus>(B.ColStatus[Col]);

    Cost.assign(NumCols, 0.0);
    CostRow.assign(NumCols, 0.0); // Zero during elimination pivots.

    Basis.assign(NumRows, -1);
    BasicValue.assign(NumRows, 0.0);
    Scratch.clear();
    for (int Col : B.BasicCols) {
      if (Col < 0 || Col >= NumCols ||
          Status[Col] != ColStatus::Basic)
        return false; // Corrupt basis.
      Scratch.push_back(Col);
    }
    for (int Col : Scratch) {
      int BestRow = -1;
      double BestMag = OptsP->PivotTol;
      for (int Row = 0; Row < NumRows; ++Row) {
        if (Basis[Row] >= 0)
          continue;
        double Mag = std::abs(tab(Row, Col));
        if (Mag > BestMag) {
          BestMag = Mag;
          BestRow = Row;
        }
      }
      if (BestRow < 0)
        return false; // Numerically singular under the new row order.
      Basis[BestRow] = Col;
      applyPivot(BestRow, Col);
      ++Refactors;
    }
  }

  // Phase-2 costs and reduced costs. On the reused path Cost/CostRow are
  // already current (the previous solve ended in phase 2); rebuild on the
  // refactorized path.
  if (!Reused) {
    std::copy(Obj.begin(), Obj.begin() + NumStruct, Cost.begin());
    rebuildCostRow();
  }

  snapNonbasicToBounds();
  refreshBasicValues();
  return dualFeasible();
}

void Tableau::rebuildCostRow() {
  CostRow = Cost;
  for (int Row = 0; Row < NumRows; ++Row) {
    double CB = Cost[Basis[Row]];
    if (CB == 0.0)
      continue;
    const double *RowPtr = &Tab[size_t(Row) * NumCols];
    for (int Col = 0; Col < NumCols; ++Col)
      CostRow[Col] -= CB * RowPtr[Col];
  }
  // Basic columns have zero reduced cost by construction; enforce exactly.
  for (int Row = 0; Row < NumRows; ++Row)
    CostRow[Basis[Row]] = 0.0;
}

void Tableau::refreshBasicValues() {
  ++Refactors;
  for (int Row = 0; Row < NumRows; ++Row) {
    double V = Rhs[Row];
    const double *RowPtr = &Tab[size_t(Row) * NumCols];
    for (int Col = 0; Col < NumCols; ++Col) {
      if (Status[Col] == ColStatus::Basic)
        continue;
      double X = restingValue(Col);
      if (X != 0.0)
        V -= RowPtr[Col] * X;
    }
    BasicValue[Row] = V;
  }
}

void Tableau::applyPivot(int LeaveRow, int Enter) {
  double Pivot = tab(LeaveRow, Enter);
  assert(std::abs(Pivot) > OptsP->PivotTol && "pivot too small");
  double *PivRow = &Tab[size_t(LeaveRow) * NumCols];
  double InvPivot = 1.0 / Pivot;
  for (int Col = 0; Col < NumCols; ++Col)
    PivRow[Col] *= InvPivot;
  Rhs[LeaveRow] *= InvPivot;
  PivRow[Enter] = 1.0;
  for (int Row = 0; Row < NumRows; ++Row) {
    if (Row == LeaveRow)
      continue;
    double Factor = tab(Row, Enter);
    if (Factor == 0.0)
      continue;
    double *RowPtr = &Tab[size_t(Row) * NumCols];
    for (int Col = 0; Col < NumCols; ++Col)
      RowPtr[Col] -= Factor * PivRow[Col];
    RowPtr[Enter] = 0.0; // Exactly zero, despite roundoff.
    Rhs[Row] -= Factor * Rhs[LeaveRow];
  }
  double CostFactor = CostRow[Enter];
  if (CostFactor != 0.0) {
    for (int Col = 0; Col < NumCols; ++Col)
      CostRow[Col] -= CostFactor * PivRow[Col];
    CostRow[Enter] = 0.0;
  }
  ++PivotsSinceFactor;
}

void Tableau::snapNonbasicToBounds() {
  for (int Col = 0; Col < NumCols; ++Col) {
    switch (Status[Col]) {
    case ColStatus::Basic:
      continue;
    case ColStatus::AtLower:
      if (std::isfinite(Lo[Col]))
        continue;
      break;
    case ColStatus::AtUpper:
      if (std::isfinite(Up[Col]))
        continue;
      break;
    case ColStatus::Free:
      if (!std::isfinite(Lo[Col]) && !std::isfinite(Up[Col]))
        continue;
      break;
    }
    // Re-rest on a finite bound compatible with the reduced-cost sign
    // (cr >= 0 prefers the lower bound, cr <= 0 the upper); the
    // dual-feasibility check after snapping rejects incompatible cases.
    bool LoOk = std::isfinite(Lo[Col]), UpOk = std::isfinite(Up[Col]);
    if (LoOk && (CostRow[Col] >= 0.0 || !UpOk))
      Status[Col] = ColStatus::AtLower;
    else if (UpOk)
      Status[Col] = ColStatus::AtUpper;
    else
      Status[Col] = ColStatus::Free;
  }
}

bool Tableau::dualFeasible() const {
  for (int Col = 0; Col < NumCols; ++Col) {
    if (Status[Col] == ColStatus::Basic || Lo[Col] == Up[Col])
      continue;
    double Cr = CostRow[Col];
    switch (Status[Col]) {
    case ColStatus::AtLower:
      if (Cr < -DualFeasTol)
        return false;
      break;
    case ColStatus::AtUpper:
      if (Cr > DualFeasTol)
        return false;
      break;
    case ColStatus::Free:
      if (std::abs(Cr) > DualFeasTol)
        return false;
      break;
    case ColStatus::Basic:
      break;
    }
  }
  return true;
}

int Tableau::chooseEntering(bool Bland) const {
  int Best = -1;
  double BestScore = OptsP->OptTol;
  for (int Col = 0; Col < NumCols; ++Col) {
    if (Status[Col] == ColStatus::Basic)
      continue;
    if (Lo[Col] == Up[Col])
      continue; // Fixed column can never improve.
    double Score = 0.0;
    switch (Status[Col]) {
    case ColStatus::AtLower:
      Score = -CostRow[Col]; // Improves by increasing.
      break;
    case ColStatus::AtUpper:
      Score = CostRow[Col]; // Improves by decreasing.
      break;
    case ColStatus::Free:
      Score = std::abs(CostRow[Col]);
      break;
    case ColStatus::Basic:
      break;
    }
    if (Score <= OptsP->OptTol)
      continue;
    if (Bland)
      return Col; // Smallest eligible index.
    if (Score > BestScore) {
      BestScore = Score;
      Best = Col;
    }
  }
  return Best;
}

LpStatus Tableau::iterate(bool PhaseOne) {
  rebuildCostRow();
  int DegenerateRun = 0;
  bool Bland = false;
  for (;;) {
    if (budgetExceeded())
      return LpStatus::IterationLimit;

    int Enter = chooseEntering(Bland);
    if (Enter < 0)
      return LpStatus::Optimal;

    // Direction the entering variable moves.
    double Dir = 1.0;
    if (Status[Enter] == ColStatus::AtUpper)
      Dir = -1.0;
    else if (Status[Enter] == ColStatus::Free)
      Dir = CostRow[Enter] < 0 ? 1.0 : -1.0;

    // Ratio test: the step is limited by the entering column's own span
    // (a bound flip) and by each basic variable hitting one of its
    // bounds. Ties between rows prefer the larger |pivot| (stability), or
    // the smallest basis index under Bland's rule.
    double BestT = Up[Enter] - Lo[Enter]; // May be +inf (free/one-sided).
    int LeaveRow = -1;
    double LeavePivot = 0.0;
    bool LeaveAtUpper = false;
    for (int Row = 0; Row < NumRows; ++Row) {
      double Alpha = tab(Row, Enter);
      if (std::abs(Alpha) <= OptsP->PivotTol)
        continue;
      double Rate = -Dir * Alpha; // d(BasicValue[Row]) / dStep.
      int BV = Basis[Row];
      double T;
      bool HitsUpper;
      if (Rate < 0) {
        if (!std::isfinite(Lo[BV]))
          continue;
        T = (BasicValue[Row] - Lo[BV]) / -Rate;
        HitsUpper = false;
      } else {
        if (!std::isfinite(Up[BV]))
          continue;
        T = (Up[BV] - BasicValue[Row]) / Rate;
        HitsUpper = true;
      }
      if (T < 0)
        T = 0; // Roundoff pushed a basic value slightly out of bounds.
      bool Take = false;
      if (T < BestT - 1e-12) {
        Take = true;
      } else if (LeaveRow >= 0 && T <= BestT + 1e-12) {
        Take = Bland ? BV < Basis[LeaveRow]
                     : std::abs(Alpha) > std::abs(LeavePivot);
      }
      if (Take) {
        BestT = std::min(BestT, T);
        LeaveRow = Row;
        LeavePivot = Alpha;
        LeaveAtUpper = HitsUpper;
      }
    }

    if (LeaveRow < 0 && !std::isfinite(BestT)) {
      assert(!PhaseOne && "phase-1 objective is bounded below by zero");
      return LpStatus::Unbounded;
    }

    ++Iters;
    if (BestT <= OptsP->FeasTol) {
      ++Degenerate;
      if (++DegenerateRun > OptsP->DegenerateLimit)
        Bland = true;
    } else {
      DegenerateRun = 0;
      Bland = false;
    }

    // Apply the step to all basic values.
    if (BestT > 0) {
      for (int Row = 0; Row < NumRows; ++Row) {
        double Alpha = tab(Row, Enter);
        if (Alpha != 0.0)
          BasicValue[Row] -= Dir * BestT * Alpha;
      }
    }

    if (LeaveRow < 0) {
      // Pure bound flip: the entering variable moves to its other bound.
      ++Flips;
      assert(std::isfinite(BestT) && "flip distance must be finite");
      Status[Enter] = Status[Enter] == ColStatus::AtLower
                          ? ColStatus::AtUpper
                          : ColStatus::AtLower;
      continue;
    }

    // Pivot: Enter becomes basic in LeaveRow; the old basic variable
    // leaves at the bound it hit.
    int Leave = Basis[LeaveRow];
    double EnterValue = restingValue(Enter) + Dir * BestT;
    Status[Leave] = LeaveAtUpper ? ColStatus::AtUpper : ColStatus::AtLower;
    Status[Enter] = ColStatus::Basic;
    Basis[LeaveRow] = Enter;
    BasicValue[LeaveRow] = EnterValue;

    applyPivot(LeaveRow, Enter);

    // Periodically flush floating-point drift in the basic values.
    if (Iters % 256 == 0)
      refreshBasicValues();
  }
}

LpStatus Tableau::dualIterate() {
  int DegenerateRun = 0;
  bool Bland = false;
  for (;;) {
    if (budgetExceeded())
      return LpStatus::IterationLimit;

    // Leaving row: the most-violated basic variable (its bound violation
    // is the dual pricing score).
    int LeaveRow = -1;
    double BestViol = OptsP->FeasTol;
    bool ViolUpper = false;
    for (int Row = 0; Row < NumRows; ++Row) {
      int BV = Basis[Row];
      double V = BasicValue[Row];
      double Below = Lo[BV] - V;
      double Above = V - Up[BV];
      if (Below > BestViol) {
        BestViol = Below;
        LeaveRow = Row;
        ViolUpper = false;
      }
      if (Above > BestViol) {
        BestViol = Above;
        LeaveRow = Row;
        ViolUpper = true;
      }
    }
    if (LeaveRow < 0)
      return LpStatus::Optimal; // Primal feasible again.

    // Entering column: must be able to move (in its allowed direction)
    // so the violated basic value heads back toward its bound; among
    // candidates, the smallest dual ratio |reduced cost| / |alpha| keeps
    // every other reduced cost's sign after the pivot. Ties prefer the
    // larger |alpha| (stability), or the smallest index under the
    // Bland-style anti-cycling fallback.
    int Enter = -1;
    double BestRatio = infinity();
    double BestAlpha = 0.0;
    double EnterDir = 0.0;
    const double *LeavePtr = &Tab[size_t(LeaveRow) * NumCols];
    for (int Col = 0; Col < NumCols; ++Col) {
      if (Status[Col] == ColStatus::Basic || Lo[Col] == Up[Col])
        continue;
      double Alpha = LeavePtr[Col];
      if (std::abs(Alpha) <= OptsP->PivotTol)
        continue;
      // Moving Col by t*D changes BasicValue[LeaveRow] by -t*D*Alpha;
      // a violated upper bound needs a decrease, a lower an increase.
      double D;
      if (Status[Col] == ColStatus::Free) {
        D = ViolUpper ? (Alpha > 0 ? 1.0 : -1.0)
                      : (Alpha > 0 ? -1.0 : 1.0);
      } else {
        D = Status[Col] == ColStatus::AtLower ? 1.0 : -1.0;
        bool Helps = ViolUpper ? D * Alpha > 0 : D * Alpha < 0;
        if (!Helps)
          continue;
      }
      double Cr = CostRow[Col];
      double AbsCr = Status[Col] == ColStatus::AtLower
                         ? std::max(0.0, Cr)
                         : Status[Col] == ColStatus::AtUpper
                               ? std::max(0.0, -Cr)
                               : std::abs(Cr);
      double Ratio = AbsCr / std::abs(Alpha);
      bool Take = false;
      if (Enter < 0 || Ratio < BestRatio - 1e-12)
        Take = true;
      else if (Ratio <= BestRatio + 1e-12)
        Take = Bland ? Col < Enter
                     : std::abs(Alpha) > std::abs(BestAlpha);
      if (Take) {
        Enter = Col;
        BestRatio = std::min(Ratio, BestRatio);
        BestAlpha = Alpha;
        EnterDir = D;
      }
    }
    if (Enter < 0) {
      // No movement of any nonbasic column can repair the violated row:
      // the row itself certifies emptiness of the bound box (a Farkas
      // certificate independent of the reduced costs).
      recordFarkasRow(LeaveRow);
      return LpStatus::Infeasible;
    }

    ++Iters;
    ++DualIters;
    if (BestRatio <= OptsP->OptTol) {
      ++Degenerate;
      if (++DegenerateRun > OptsP->DegenerateLimit)
        Bland = true;
    } else {
      DegenerateRun = 0;
      Bland = false;
    }

    // Step length: drive the leaving variable exactly onto its violated
    // bound. The entering variable may overshoot its own far bound — it
    // then becomes the (smaller) primal infeasibility of a later dual
    // pivot, which is standard for the bounded-variable dual simplex.
    double T = BestViol / std::abs(tab(LeaveRow, Enter));
    for (int Row = 0; Row < NumRows; ++Row) {
      double Alpha = tab(Row, Enter);
      if (Alpha != 0.0)
        BasicValue[Row] -= EnterDir * T * Alpha;
    }

    int Leave = Basis[LeaveRow];
    double EnterValue = restingValue(Enter) + EnterDir * T;
    Status[Leave] = ViolUpper ? ColStatus::AtUpper : ColStatus::AtLower;
    Status[Enter] = ColStatus::Basic;
    Basis[LeaveRow] = Enter;
    BasicValue[LeaveRow] = EnterValue;

    applyPivot(LeaveRow, Enter);

    if (Iters % 256 == 0)
      refreshBasicValues();
  }
}

LpStatus Tableau::run() {
  if (NumCols > FirstArtificial) {
    // Phase 1: minimize the sum of the artificial columns.
    std::fill(Cost.begin(), Cost.end(), 0.0);
    for (int Col = FirstArtificial; Col < NumCols; ++Col)
      Cost[Col] = 1.0;
    LpStatus S = iterate(/*PhaseOne=*/true);
    Phase1Iters = Iters;
    if (S == LpStatus::IterationLimit)
      return S;
    assert(S == LpStatus::Optimal && "phase 1 cannot be unbounded");
    refreshBasicValues();
    double Infeasibility = 0.0;
    for (int Row = 0; Row < NumRows; ++Row)
      if (Basis[Row] >= FirstArtificial)
        Infeasibility += std::max(0.0, BasicValue[Row]);
    for (int Col = FirstArtificial; Col < NumCols; ++Col)
      if (Status[Col] == ColStatus::AtUpper) // Unbounded above: impossible.
        assert(false && "artificial nonbasic at infinite bound");
    if (Infeasibility > 1e-6) {
      // Each residual artificial's tableau row certifies infeasibility;
      // their slack supports localize it to model rows.
      for (int Row = 0; Row < NumRows; ++Row)
        if (Basis[Row] >= FirstArtificial && BasicValue[Row] > 1e-6)
          recordFarkasRow(Row);
      return LpStatus::Infeasible;
    }
    // Pin the artificials at zero for phase 2. Basic artificials at value
    // ~zero are harmless: their [0,0] bounds block any move away from 0.
    for (int Col = FirstArtificial; Col < NumCols; ++Col) {
      Lo[Col] = 0.0;
      Up[Col] = 0.0;
    }
  }

  // Phase 2: the real objective on the structural columns.
  std::fill(Cost.begin(), Cost.end(), 0.0);
  std::copy(Obj.begin(), Obj.end(), Cost.begin());
  LpStatus S = iterate(/*PhaseOne=*/false);
  if (S == LpStatus::Optimal)
    refreshBasicValues();
  return S;
}

LpStatus Tableau::runWarm() {
  LpStatus S = dualIterate();
  if (S != LpStatus::Optimal)
    return S;
  // Primal clean-up: the dual loop restored primal feasibility; a primal
  // pass from the (rebuilt) reduced costs polishes any drifted
  // optimality violations — usually zero pivots.
  S = iterate(/*PhaseOne=*/false);
  if (S == LpStatus::Optimal)
    refreshBasicValues();
  return S;
}

bool Tableau::extractBasis(lp::Basis &Out) {
  // Drive any residual degenerate artificial out of the basis with a
  // zero-step pivot so the exported basis only references structural and
  // slack columns (which a re-solve can rebuild from the model).
  for (int Row = 0; Row < NumRows; ++Row) {
    if (Basis[Row] < FirstArtificial)
      continue;
    int Best = -1;
    double BestMag = OptsP->PivotTol;
    for (int Col = 0; Col < FirstArtificial; ++Col) {
      if (Status[Col] == ColStatus::Basic)
        continue;
      double Mag = std::abs(tab(Row, Col));
      if (Mag > BestMag) {
        BestMag = Mag;
        Best = Col;
      }
    }
    if (Best < 0)
      return false; // Structurally redundant row; basis not exportable.
    double EnterValue = restingValue(Best);
    Status[Basis[Row]] = ColStatus::AtLower; // Artificial rests at [0,0].
    Status[Best] = ColStatus::Basic;
    Basis[Row] = Best;
    BasicValue[Row] = EnterValue;
    applyPivot(Row, Best);
  }

  Out.ColStatus.resize(FirstArtificial);
  for (int Col = 0; Col < FirstArtificial; ++Col)
    Out.ColStatus[Col] = static_cast<uint8_t>(Status[Col]);
  Out.BasicCols.assign(Basis.begin(), Basis.end());
  Out.Id = 0; // Caller stamps.
  return true;
}

std::vector<double> Tableau::structuralValues() const {
  std::vector<double> X(NumStruct, 0.0);
  for (int Col = 0; Col < NumStruct; ++Col)
    if (Status[Col] != ColStatus::Basic)
      X[Col] = restingValue(Col);
  for (int Row = 0; Row < NumRows; ++Row)
    if (Basis[Row] < NumStruct)
      X[Basis[Row]] = BasicValue[Row];
  return X;
}

} // namespace

//===----------------------------------------------------------------------===//
// SimplexWorkspace
//===----------------------------------------------------------------------===//

struct SimplexWorkspace::State {
  /// Dense engine state: the explicit tableau.
  Tableau T;
  /// Sparse engine state: compiled matrix + LU factorization + scratch.
  /// Both live side by side so a solve sequence may switch engines (a
  /// basis stamped by one engine simply takes the other's rebuild path).
  SparseRevisedSimplex Sparse;
};

SimplexWorkspace::SimplexWorkspace() : S(std::make_unique<State>()) {}
SimplexWorkspace::~SimplexWorkspace() = default;
SimplexWorkspace::SimplexWorkspace(SimplexWorkspace &&) noexcept = default;
SimplexWorkspace &
SimplexWorkspace::operator=(SimplexWorkspace &&) noexcept = default;

//===----------------------------------------------------------------------===//
// SimplexSolver
//===----------------------------------------------------------------------===//

LpResult SimplexSolver::solve(const Model &M) {
  std::vector<double> Lower, Upper;
  M.getBounds(Lower, Upper);
  return solve(M, Lower, Upper);
}

namespace {

/// Engine-generic solve flow: warm attempt (with cold fallback), the
/// appropriate run loop, telemetry, and basis export. \p EngineT is
/// Tableau or SparseRevisedSimplex — both expose the same lifecycle
/// (setContext / initCold / tryInitWarm / run / runWarm / extractBasis /
/// stamp / invalidateStamp / structuralValues and the stat accessors).
template <typename EngineT>
LpResult solveWithEngine(EngineT &E, const Model &M,
                         const std::vector<double> &Lower,
                         const std::vector<double> &Upper,
                         const SimplexOptions &Opts, SolveContext *Ctx,
                         const Basis *Start, bool Persistent) {
  LpResult Result;
  E.setContext(Ctx);

  bool Warm = false;
  if (Persistent && Start && !Start->empty()) {
    Warm = E.tryInitWarm(M, Lower, Upper, *Start, Opts);
    if (!Warm)
      ++StatWarmFallbacks;
  }

  LpStatus S;
  if (Warm) {
    if (E.didRebuildBasis())
      ++StatBasisRebuilds;
    S = E.runWarm();
    ++StatWarmSolves;
  } else {
    E.initCold(M, Lower, Upper, Opts);
    S = E.run();
    ++StatColdSolves;
  }

  Result.Iterations = E.iterations();
  Result.DegeneratePivots = E.degeneratePivots();
  Result.BoundFlips = E.boundFlips();
  Result.Refactorizations = E.refactorizations();
  Result.Phase1Iterations = E.phase1Iterations();
  Result.DualIterations = E.dualIterations();
  Result.EtaNonzeros = E.etaNonzeros();
  Result.WarmStarted = Warm;
  Result.Status = S;

  StatIterations += Result.Iterations;
  StatDegenerate += Result.DegeneratePivots;
  StatFlips += Result.BoundFlips;
  StatRefactor += Result.Refactorizations;
  if (Warm)
    StatWarmIterations += Result.Iterations;
  if (S == LpStatus::Infeasible) {
    ++StatInfeasible;
    if (Opts.CollectFarkas) {
      Result.FarkasRows = E.farkasRows();
      std::sort(Result.FarkasRows.begin(), Result.FarkasRows.end());
      Result.FarkasRows.erase(
          std::unique(Result.FarkasRows.begin(), Result.FarkasRows.end()),
          Result.FarkasRows.end());
    }
  }

  if (S != LpStatus::Optimal) {
    if (Persistent)
      E.invalidateStamp();
    return Result;
  }
  Result.Values = E.structuralValues();
  Result.Objective = M.evaluateObjective(Result.Values);

  // Export the optimal basis for future warm starts (workspace callers
  // only: the stamp ties it to the persisted engine state).
  if (Persistent) {
    if (E.extractBasis(Result.FinalBasis))
      E.stamp(Result.FinalBasis);
    else
      E.invalidateStamp();
  }
  return Result;
}

} // namespace

LpResult SimplexSolver::solve(const Model &M,
                              const std::vector<double> &Lower,
                              const std::vector<double> &Upper,
                              SolveContext *Ctx, const Basis *Start) {
  assert(static_cast<int>(Lower.size()) == M.numVariables() &&
         static_cast<int>(Upper.size()) == M.numVariables() &&
         "bounds arrays must cover every variable");
  telemetry::TimerScope Time(TimeSolve);
  ++StatSolves;

  // An empty bound interval anywhere makes the node trivially infeasible.
  for (int Col = 0; Col < M.numVariables(); ++Col)
    if (Lower[Col] > Upper[Col]) {
      ++StatInfeasible;
      return LpResult(); // Status defaults to Infeasible.
    }

  // Context-less calls get a one-shot local engine (and no deadline or
  // cancellation to observe).
  SimplexWorkspace *Workspace = Ctx ? &Ctx->Workspace : nullptr;
  if (Opts.Engine == SimplexEngine::SparseRevised) {
    SparseRevisedSimplex Local;
    SparseRevisedSimplex &E = Workspace ? Workspace->S->Sparse : Local;
    return solveWithEngine(E, M, Lower, Upper, Opts, Ctx, Start,
                           Workspace != nullptr);
  }
  Tableau Local;
  Tableau &E = Workspace ? Workspace->S->T : Local;
  return solveWithEngine(E, M, Lower, Upper, Opts, Ctx, Start,
                         Workspace != nullptr);
}
