//===- lp/Simplex.cpp - Bounded-variable primal simplex -------------------===//
//
// Dense two-phase primal simplex with general bounds. See Simplex.h for an
// overview of the algorithm and Chvatal, "Linear Programming", ch. 8 for
// the textbook treatment of bounded variables.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace {

// Telemetry: aggregate solver-stack counters (MODSCHED_STATS=1) and the
// simplex phase timer (clock only read when telemetry is enabled).
modsched::telemetry::Counter StatSolves("lp", "simplex.solves",
                                        "LP solves performed");
modsched::telemetry::Counter StatIterations("lp", "simplex.iterations",
                                            "total simplex pivots");
modsched::telemetry::Counter
    StatDegenerate("lp", "simplex.degenerate_pivots",
                   "pivots with ~zero step length");
modsched::telemetry::Counter StatFlips("lp", "simplex.bound_flips",
                                       "entering-variable bound flips");
modsched::telemetry::Counter
    StatRefactor("lp", "simplex.refactorizations",
                 "periodic basic-value refreshes");
modsched::telemetry::Counter StatInfeasible("lp", "simplex.infeasible",
                                            "LP solves proved infeasible");
modsched::telemetry::PhaseTimer TimeSolve("lp", "simplex.solve",
                                          "wall time in LP solves");

} // namespace

using namespace modsched;
using namespace modsched::lp;

const char *lp::toString(LpStatus Status) {
  switch (Status) {
  case LpStatus::Optimal:
    return "optimal";
  case LpStatus::Infeasible:
    return "infeasible";
  case LpStatus::Unbounded:
    return "unbounded";
  case LpStatus::IterationLimit:
    return "iteration-limit";
  }
  return "unknown";
}

namespace {

/// Where a column currently rests.
enum class ColStatus : uint8_t { Basic, AtLower, AtUpper, Free };

/// The working tableau for one solve. Columns are laid out as
/// [structural | slack | artificial].
class Tableau {
public:
  Tableau(const Model &M, const std::vector<double> &Lower,
          const std::vector<double> &Upper, const SimplexOptions &Opts);

  /// Runs phase 1 (if needed) and phase 2. Returns the final status.
  LpStatus run();

  /// Extracts the values of the structural variables.
  std::vector<double> structuralValues() const;

  int64_t iterations() const { return Iters; }
  int64_t degeneratePivots() const { return Degenerate; }
  int64_t boundFlips() const { return Flips; }
  int64_t refactorizations() const { return Refactors; }
  int64_t phase1Iterations() const { return Phase1Iters; }

private:
  /// Runs the simplex loop with the current cost row until optimality,
  /// unboundedness, or the iteration limit.
  LpStatus iterate(bool PhaseOne);

  /// Rebuilds CostRow[j] = Cost[j] - sum_i Cost[Basis[i]] * Tab(i, j).
  void rebuildCostRow();

  /// Rebuilds the basic-variable values from Rhs and the nonbasic resting
  /// values; flushes accumulated floating-point drift.
  void refreshBasicValues();

  /// Chooses the entering column, or -1 at optimality.
  int chooseEntering(bool Bland) const;

  double &tab(int Row, int Col) { return Tab[size_t(Row) * NumCols + Col]; }
  double tab(int Row, int Col) const {
    return Tab[size_t(Row) * NumCols + Col];
  }

  /// Resting value of nonbasic column \p Col.
  double restingValue(int Col) const {
    switch (Status[Col]) {
    case ColStatus::AtLower:
      return Lo[Col];
    case ColStatus::AtUpper:
      return Up[Col];
    case ColStatus::Free:
      return 0.0;
    case ColStatus::Basic:
      break;
    }
    assert(false && "restingValue of basic column");
    return 0.0;
  }

  const SimplexOptions &Opts;
  int NumRows = 0;
  int NumStruct = 0;
  int NumCols = 0; ///< structural + slack + artificial.
  int FirstArtificial = 0;

  std::vector<double> Tab;        ///< B^-1 * A, dense, row-major.
  std::vector<double> Rhs;        ///< B^-1 * b.
  std::vector<double> Lo, Up;     ///< Column bounds.
  std::vector<double> Obj;        ///< Model objective (structural columns).
  std::vector<double> Cost;       ///< Current-phase costs, all columns.
  std::vector<double> CostRow;    ///< Reduced costs.
  std::vector<ColStatus> Status;  ///< Per-column status.
  std::vector<int> Basis;         ///< Basis[row] = column index.
  std::vector<double> BasicValue; ///< Current value of Basis[row].
  int64_t Iters = 0;
  int64_t Degenerate = 0;  ///< Pivots with ~zero step length.
  int64_t Flips = 0;       ///< Pure bound-flip pivots.
  int64_t Refactors = 0;   ///< refreshBasicValues() calls.
  int64_t Phase1Iters = 0; ///< Pivots spent in phase 1.
  Stopwatch Clock;
};

Tableau::Tableau(const Model &M, const std::vector<double> &Lower,
                 const std::vector<double> &Upper, const SimplexOptions &Opts)
    : Opts(Opts) {
  NumRows = M.numConstraints();
  NumStruct = M.numVariables();

  Obj.reserve(NumStruct);
  for (const Variable &V : M.variables())
    Obj.push_back(V.Objective);

  // Column bounds: structural variables first, then one slack per row.
  Lo.assign(Lower.begin(), Lower.end());
  Up.assign(Upper.begin(), Upper.end());
  for (int Row = 0; Row < NumRows; ++Row) {
    switch (M.constraint(Row).Sense) {
    case ConstraintSense::LE:
      Lo.push_back(0.0);
      Up.push_back(infinity());
      break;
    case ConstraintSense::GE:
      Lo.push_back(-infinity());
      Up.push_back(0.0);
      break;
    case ConstraintSense::EQ:
      Lo.push_back(0.0);
      Up.push_back(0.0);
      break;
    }
  }
  FirstArtificial = NumStruct + NumRows;

  // Rest every structural variable at a finite bound (or 0 when free) and
  // compute the residual each row's slack must absorb.
  Status.assign(FirstArtificial, ColStatus::AtLower);
  for (int Col = 0; Col < NumStruct; ++Col) {
    if (std::isfinite(Lo[Col]))
      Status[Col] = ColStatus::AtLower;
    else if (std::isfinite(Up[Col]))
      Status[Col] = ColStatus::AtUpper;
    else
      Status[Col] = ColStatus::Free;
  }

  std::vector<double> Residual(NumRows, 0.0);
  for (int Row = 0; Row < NumRows; ++Row) {
    const Constraint &C = M.constraint(Row);
    double Lhs = 0.0;
    for (const Term &T : C.Terms)
      Lhs += T.second * restingValue(T.first);
    Residual[Row] = C.Rhs - Lhs;
  }

  // Decide, per row, whether the slack can hold the residual; otherwise
  // the row gets an artificial column and the slack rests at the violated
  // (necessarily finite) bound.
  Basis.assign(NumRows, -1);
  BasicValue.assign(NumRows, 0.0);
  std::vector<int> ArtificialSign(NumRows, 0);
  int NumArtificials = 0;
  for (int Row = 0; Row < NumRows; ++Row) {
    int SlackCol = NumStruct + Row;
    double R = Residual[Row];
    if (R >= Lo[SlackCol] - Opts.FeasTol &&
        R <= Up[SlackCol] + Opts.FeasTol) {
      Status[SlackCol] = ColStatus::Basic;
      Basis[Row] = SlackCol;
      BasicValue[Row] = std::clamp(R, Lo[SlackCol], Up[SlackCol]);
      continue;
    }
    double Clamped = std::clamp(R, Lo[SlackCol], Up[SlackCol]);
    Status[SlackCol] =
        (Clamped == Lo[SlackCol]) ? ColStatus::AtLower : ColStatus::AtUpper;
    double Excess = R - Clamped;
    ArtificialSign[Row] = Excess > 0 ? 1 : -1;
    int ArtCol = FirstArtificial + NumArtificials++;
    Basis[Row] = ArtCol;
    BasicValue[Row] = std::abs(Excess);
  }

  NumCols = FirstArtificial + NumArtificials;
  Lo.resize(NumCols, 0.0);
  Up.resize(NumCols, infinity());
  Status.resize(NumCols, ColStatus::Basic);

  // Fill the tableau. A row whose basis column is an artificial with sign
  // -1 is negated so the initial basis matrix is the identity.
  Tab.assign(size_t(NumRows) * NumCols, 0.0);
  Rhs.assign(NumRows, 0.0);
  for (int Row = 0; Row < NumRows; ++Row) {
    const Constraint &C = M.constraint(Row);
    double Scale = ArtificialSign[Row] < 0 ? -1.0 : 1.0;
    for (const Term &T : C.Terms)
      tab(Row, T.first) += Scale * T.second;
    tab(Row, NumStruct + Row) = Scale; // Slack.
    if (ArtificialSign[Row] != 0)
      tab(Row, Basis[Row]) = 1.0; // Artificial column, already scaled.
    Rhs[Row] = Scale * C.Rhs;
  }

  Cost.assign(NumCols, 0.0);
  CostRow.assign(NumCols, 0.0);
}

void Tableau::rebuildCostRow() {
  CostRow = Cost;
  for (int Row = 0; Row < NumRows; ++Row) {
    double CB = Cost[Basis[Row]];
    if (CB == 0.0)
      continue;
    const double *RowPtr = &Tab[size_t(Row) * NumCols];
    for (int Col = 0; Col < NumCols; ++Col)
      CostRow[Col] -= CB * RowPtr[Col];
  }
  // Basic columns have zero reduced cost by construction; enforce exactly.
  for (int Row = 0; Row < NumRows; ++Row)
    CostRow[Basis[Row]] = 0.0;
}

void Tableau::refreshBasicValues() {
  ++Refactors;
  for (int Row = 0; Row < NumRows; ++Row) {
    double V = Rhs[Row];
    const double *RowPtr = &Tab[size_t(Row) * NumCols];
    for (int Col = 0; Col < NumCols; ++Col) {
      if (Status[Col] == ColStatus::Basic)
        continue;
      double X = restingValue(Col);
      if (X != 0.0)
        V -= RowPtr[Col] * X;
    }
    BasicValue[Row] = V;
  }
}

int Tableau::chooseEntering(bool Bland) const {
  int Best = -1;
  double BestScore = Opts.OptTol;
  for (int Col = 0; Col < NumCols; ++Col) {
    if (Status[Col] == ColStatus::Basic)
      continue;
    if (Lo[Col] == Up[Col])
      continue; // Fixed column can never improve.
    double Score = 0.0;
    switch (Status[Col]) {
    case ColStatus::AtLower:
      Score = -CostRow[Col]; // Improves by increasing.
      break;
    case ColStatus::AtUpper:
      Score = CostRow[Col]; // Improves by decreasing.
      break;
    case ColStatus::Free:
      Score = std::abs(CostRow[Col]);
      break;
    case ColStatus::Basic:
      break;
    }
    if (Score <= Opts.OptTol)
      continue;
    if (Bland)
      return Col; // Smallest eligible index.
    if (Score > BestScore) {
      BestScore = Score;
      Best = Col;
    }
  }
  return Best;
}

LpStatus Tableau::iterate(bool PhaseOne) {
  rebuildCostRow();
  int DegenerateRun = 0;
  bool Bland = false;
  for (;;) {
    if (Iters >= Opts.MaxIterations)
      return LpStatus::IterationLimit;
    if ((Iters & 63) == 0 && Clock.seconds() > Opts.TimeLimitSeconds)
      return LpStatus::IterationLimit;

    int Enter = chooseEntering(Bland);
    if (Enter < 0)
      return LpStatus::Optimal;

    // Direction the entering variable moves.
    double Dir = 1.0;
    if (Status[Enter] == ColStatus::AtUpper)
      Dir = -1.0;
    else if (Status[Enter] == ColStatus::Free)
      Dir = CostRow[Enter] < 0 ? 1.0 : -1.0;

    // Ratio test: the step is limited by the entering column's own span
    // (a bound flip) and by each basic variable hitting one of its
    // bounds. Ties between rows prefer the larger |pivot| (stability), or
    // the smallest basis index under Bland's rule.
    double BestT = Up[Enter] - Lo[Enter]; // May be +inf (free/one-sided).
    int LeaveRow = -1;
    double LeavePivot = 0.0;
    bool LeaveAtUpper = false;
    for (int Row = 0; Row < NumRows; ++Row) {
      double Alpha = tab(Row, Enter);
      if (std::abs(Alpha) <= Opts.PivotTol)
        continue;
      double Rate = -Dir * Alpha; // d(BasicValue[Row]) / dStep.
      int BV = Basis[Row];
      double T;
      bool HitsUpper;
      if (Rate < 0) {
        if (!std::isfinite(Lo[BV]))
          continue;
        T = (BasicValue[Row] - Lo[BV]) / -Rate;
        HitsUpper = false;
      } else {
        if (!std::isfinite(Up[BV]))
          continue;
        T = (Up[BV] - BasicValue[Row]) / Rate;
        HitsUpper = true;
      }
      if (T < 0)
        T = 0; // Roundoff pushed a basic value slightly out of bounds.
      bool Take = false;
      if (T < BestT - 1e-12) {
        Take = true;
      } else if (LeaveRow >= 0 && T <= BestT + 1e-12) {
        Take = Bland ? BV < Basis[LeaveRow]
                     : std::abs(Alpha) > std::abs(LeavePivot);
      }
      if (Take) {
        BestT = std::min(BestT, T);
        LeaveRow = Row;
        LeavePivot = Alpha;
        LeaveAtUpper = HitsUpper;
      }
    }

    if (LeaveRow < 0 && !std::isfinite(BestT)) {
      assert(!PhaseOne && "phase-1 objective is bounded below by zero");
      return LpStatus::Unbounded;
    }

    ++Iters;
    if (BestT <= Opts.FeasTol) {
      ++Degenerate;
      if (++DegenerateRun > Opts.DegenerateLimit)
        Bland = true;
    } else {
      DegenerateRun = 0;
      Bland = false;
    }

    // Apply the step to all basic values.
    if (BestT > 0) {
      for (int Row = 0; Row < NumRows; ++Row) {
        double Alpha = tab(Row, Enter);
        if (Alpha != 0.0)
          BasicValue[Row] -= Dir * BestT * Alpha;
      }
    }

    if (LeaveRow < 0) {
      // Pure bound flip: the entering variable moves to its other bound.
      ++Flips;
      assert(std::isfinite(BestT) && "flip distance must be finite");
      Status[Enter] = Status[Enter] == ColStatus::AtLower
                          ? ColStatus::AtUpper
                          : ColStatus::AtLower;
      continue;
    }

    // Pivot: Enter becomes basic in LeaveRow; the old basic variable
    // leaves at the bound it hit.
    int Leave = Basis[LeaveRow];
    double EnterValue = restingValue(Enter) + Dir * BestT;
    Status[Leave] = LeaveAtUpper ? ColStatus::AtUpper : ColStatus::AtLower;
    Status[Enter] = ColStatus::Basic;
    Basis[LeaveRow] = Enter;
    BasicValue[LeaveRow] = EnterValue;

    // Row reduction: normalize the pivot row, eliminate elsewhere.
    double Pivot = tab(LeaveRow, Enter);
    assert(std::abs(Pivot) > Opts.PivotTol && "pivot too small");
    double *PivRow = &Tab[size_t(LeaveRow) * NumCols];
    double InvPivot = 1.0 / Pivot;
    for (int Col = 0; Col < NumCols; ++Col)
      PivRow[Col] *= InvPivot;
    Rhs[LeaveRow] *= InvPivot;
    PivRow[Enter] = 1.0;
    for (int Row = 0; Row < NumRows; ++Row) {
      if (Row == LeaveRow)
        continue;
      double Factor = tab(Row, Enter);
      if (Factor == 0.0)
        continue;
      double *RowPtr = &Tab[size_t(Row) * NumCols];
      for (int Col = 0; Col < NumCols; ++Col)
        RowPtr[Col] -= Factor * PivRow[Col];
      RowPtr[Enter] = 0.0; // Exactly zero, despite roundoff.
      Rhs[Row] -= Factor * Rhs[LeaveRow];
    }
    double CostFactor = CostRow[Enter];
    if (CostFactor != 0.0) {
      for (int Col = 0; Col < NumCols; ++Col)
        CostRow[Col] -= CostFactor * PivRow[Col];
      CostRow[Enter] = 0.0;
    }

    // Periodically flush floating-point drift in the basic values.
    if (Iters % 256 == 0)
      refreshBasicValues();
  }
}

LpStatus Tableau::run() {
  if (NumCols > FirstArtificial) {
    // Phase 1: minimize the sum of the artificial columns.
    std::fill(Cost.begin(), Cost.end(), 0.0);
    for (int Col = FirstArtificial; Col < NumCols; ++Col)
      Cost[Col] = 1.0;
    LpStatus S = iterate(/*PhaseOne=*/true);
    Phase1Iters = Iters;
    if (S == LpStatus::IterationLimit)
      return S;
    assert(S == LpStatus::Optimal && "phase 1 cannot be unbounded");
    refreshBasicValues();
    double Infeasibility = 0.0;
    for (int Row = 0; Row < NumRows; ++Row)
      if (Basis[Row] >= FirstArtificial)
        Infeasibility += std::max(0.0, BasicValue[Row]);
    for (int Col = FirstArtificial; Col < NumCols; ++Col)
      if (Status[Col] == ColStatus::AtUpper) // Unbounded above: impossible.
        assert(false && "artificial nonbasic at infinite bound");
    if (Infeasibility > 1e-6)
      return LpStatus::Infeasible;
    // Pin the artificials at zero for phase 2. Basic artificials at value
    // ~zero are harmless: their [0,0] bounds block any move away from 0.
    for (int Col = FirstArtificial; Col < NumCols; ++Col) {
      Lo[Col] = 0.0;
      Up[Col] = 0.0;
    }
  }

  // Phase 2: the real objective on the structural columns.
  std::fill(Cost.begin(), Cost.end(), 0.0);
  std::copy(Obj.begin(), Obj.end(), Cost.begin());
  LpStatus S = iterate(/*PhaseOne=*/false);
  if (S == LpStatus::Optimal)
    refreshBasicValues();
  return S;
}

std::vector<double> Tableau::structuralValues() const {
  std::vector<double> X(NumStruct, 0.0);
  for (int Col = 0; Col < NumStruct; ++Col)
    if (Status[Col] != ColStatus::Basic)
      X[Col] = restingValue(Col);
  for (int Row = 0; Row < NumRows; ++Row)
    if (Basis[Row] < NumStruct)
      X[Basis[Row]] = BasicValue[Row];
  return X;
}

} // namespace

LpResult SimplexSolver::solve(const Model &M) {
  std::vector<double> Lower, Upper;
  Lower.reserve(M.numVariables());
  Upper.reserve(M.numVariables());
  for (const Variable &V : M.variables()) {
    Lower.push_back(V.Lower);
    Upper.push_back(V.Upper);
  }
  return solve(M, Lower, Upper);
}

LpResult SimplexSolver::solve(const Model &M,
                              const std::vector<double> &Lower,
                              const std::vector<double> &Upper) {
  assert(static_cast<int>(Lower.size()) == M.numVariables() &&
         static_cast<int>(Upper.size()) == M.numVariables() &&
         "bounds arrays must cover every variable");
  telemetry::TimerScope Time(TimeSolve);
  ++StatSolves;
  LpResult Result;

  // An empty bound interval anywhere makes the node trivially infeasible.
  for (int Col = 0; Col < M.numVariables(); ++Col)
    if (Lower[Col] > Upper[Col]) {
      ++StatInfeasible;
      return Result; // Status defaults to Infeasible.
    }

  Tableau T(M, Lower, Upper, Opts);
  LpStatus S = T.run();
  Result.Iterations = T.iterations();
  Result.DegeneratePivots = T.degeneratePivots();
  Result.BoundFlips = T.boundFlips();
  Result.Refactorizations = T.refactorizations();
  Result.Phase1Iterations = T.phase1Iterations();
  Result.Status = S;

  StatIterations += Result.Iterations;
  StatDegenerate += Result.DegeneratePivots;
  StatFlips += Result.BoundFlips;
  StatRefactor += Result.Refactorizations;
  if (S == LpStatus::Infeasible)
    ++StatInfeasible;

  if (S != LpStatus::Optimal)
    return Result;
  Result.Values = T.structuralValues();
  Result.Objective = M.evaluateObjective(Result.Values);
  return Result;
}
