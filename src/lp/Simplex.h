//===- lp/Simplex.h - Bounded-variable primal simplex ------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense two-phase primal simplex solver with general variable bounds.
/// It is the LP engine underneath the branch-and-bound MIP solver
/// (src/ilp) that substitutes for the CPLEX solver used in the paper.
///
/// Implementation notes:
///  * Every constraint row gets a slack variable with bounds encoding the
///    sense (LE: [0, inf), GE: (-inf, 0], EQ: [0, 0]); the system becomes
///    Ax + Is = b.
///  * Nonbasic variables rest at one of their finite bounds (or 0 when
///    free); phase 1 introduces artificial columns only for rows whose
///    slack cannot absorb the initial residual, and minimizes the sum of
///    artificials.
///  * Pricing is Dantzig (most negative reduced cost) with an automatic
///    switch to Bland's rule after a run of degenerate pivots, which
///    guarantees termination.
///  * The ratio test handles bound flips of the entering variable.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_LP_SIMPLEX_H
#define MODSCHED_LP_SIMPLEX_H

#include "lp/Model.h"

#include <cstdint>
#include <vector>

namespace modsched {
namespace lp {

/// Outcome of an LP solve.
enum class LpStatus {
  Optimal,       ///< Optimal basic solution found.
  Infeasible,    ///< Constraints admit no solution.
  Unbounded,     ///< Objective can decrease without limit.
  IterationLimit ///< Gave up after SimplexOptions::MaxIterations pivots.
};

/// Returns a printable name for \p Status.
const char *toString(LpStatus Status);

/// Tuning knobs for the simplex solver.
struct SimplexOptions {
  /// Hard cap on total pivots (both phases).
  int64_t MaxIterations = 200000;
  /// Wall-clock budget for one solve(), in seconds (checked every few
  /// pivots). Exceeding it reports LpStatus::IterationLimit. The MIP
  /// solver forwards its remaining per-loop budget here so one huge LP
  /// relaxation cannot blow through the outer time limit.
  double TimeLimitSeconds = 1e30;
  /// Primal feasibility tolerance.
  double FeasTol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double OptTol = 1e-7;
  /// Smallest acceptable pivot magnitude.
  double PivotTol = 1e-8;
  /// Number of consecutive degenerate pivots before switching to Bland's
  /// rule.
  int DegenerateLimit = 512;
};

/// Result of an LP solve.
struct LpResult {
  LpStatus Status = LpStatus::Infeasible;
  /// Objective value (valid when Status == Optimal).
  double Objective = 0.0;
  /// Value of each structural (model) variable.
  std::vector<double> Values;
  /// Number of simplex pivots performed (the paper's "simplex
  /// iterations" metric).
  int64_t Iterations = 0;

  // --- Telemetry detail (see docs/OBSERVABILITY.md) ---
  /// Pivots whose step length was ~0 (degeneracy; a long run of these
  /// triggers the switch to Bland's rule).
  int64_t DegeneratePivots = 0;
  /// Entering-variable bound flips (pivots that changed no basis entry).
  int64_t BoundFlips = 0;
  /// Periodic refreshes of the basic values from the tableau (the dense
  /// analogue of a basis refactorization).
  int64_t Refactorizations = 0;
  /// Pivots spent in phase 1 (driving artificials out of the basis).
  int64_t Phase1Iterations = 0;
};

/// Dense two-phase bounded-variable primal simplex.
class SimplexSolver {
public:
  explicit SimplexSolver(SimplexOptions Options = {}) : Opts(Options) {}

  /// Solves \p M (a minimization LP; integrality flags are ignored).
  LpResult solve(const Model &M);

  /// Solves \p M with the variable bounds replaced by \p Lower / \p Upper
  /// (used by branch-and-bound nodes to tighten integer bounds without
  /// copying the whole model).
  LpResult solve(const Model &M, const std::vector<double> &Lower,
                 const std::vector<double> &Upper);

private:
  SimplexOptions Opts;
};

} // namespace lp
} // namespace modsched

#endif // MODSCHED_LP_SIMPLEX_H
