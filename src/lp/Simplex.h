//===- lp/Simplex.h - Bounded-variable primal simplex ------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bounded-variable simplex solver with two entry points: a
/// two-phase primal simplex for cold solves and a warm-startable dual
/// simplex for re-solves from a known basis after bound changes. It is
/// the LP engine underneath the branch-and-bound MIP solver (src/ilp)
/// that substitutes for the CPLEX solver used in the paper — including
/// CPLEX's defining trick of never cold-starting an LP inside the
/// branch-and-bound tree.
///
/// Implementation notes:
///  * Every constraint row gets a slack variable with bounds encoding the
///    sense (LE: [0, inf), GE: (-inf, 0], EQ: [0, 0]); the system becomes
///    Ax + Is = b.
///  * Nonbasic variables rest at one of their finite bounds (or 0 when
///    free); phase 1 introduces artificial columns only for rows whose
///    slack cannot absorb the initial residual, and minimizes the sum of
///    artificials.
///  * Pricing is Dantzig (most negative reduced cost) with an automatic
///    switch to Bland's rule after a run of degenerate pivots, which
///    guarantees termination.
///  * The ratio test handles bound flips of the entering variable.
///  * Warm starts: an optimal solve can export its Basis; a later solve
///    of the same model with tightened bounds (exactly the state after a
///    branch-and-bound bound change) restarts from that basis — which is
///    still dual-feasible — and runs the dual simplex until primal
///    feasibility is restored, typically in a handful of pivots. When the
///    caller also passes a persistent SimplexWorkspace the tableau is
///    reused in place (no refactorization at all) whenever the workspace
///    still holds the requested basis.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_LP_SIMPLEX_H
#define MODSCHED_LP_SIMPLEX_H

#include "lp/Model.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace modsched {
namespace lp {

struct SolveContext; // lp/SolveContext.h

/// Outcome of an LP solve.
enum class LpStatus {
  Optimal,       ///< Optimal basic solution found.
  Infeasible,    ///< Constraints admit no solution.
  Unbounded,     ///< Objective can decrease without limit.
  IterationLimit ///< Gave up after SimplexOptions::MaxIterations pivots.
};

/// Returns a printable name for \p Status.
const char *toString(LpStatus Status);

/// Which LP engine executes a solve. Dense is the original explicit
/// m x n tableau (O(m*n) per pivot); SparseRevised is the revised
/// simplex over a compiled sparse matrix with an LU-factorized basis,
/// eta updates, and hyper-sparse FTRAN/BTRAN (lp/SparseRevisedSimplex.h)
/// — the fast path for the paper's 0-1-structured models.
enum class SimplexEngine : uint8_t { Dense, SparseRevised };

/// Returns a printable name for \p Engine ("dense" / "sparse_revised").
const char *toString(SimplexEngine Engine);

/// The process-default engine: SparseRevised, overridable once at
/// startup with MODSCHED_LP_ENGINE=dense|sparse (unrecognized values
/// warn to stderr and keep the default). Read lazily and cached.
SimplexEngine defaultSimplexEngine();

/// Where a column rests in an exported simplex basis. Shared by both
/// engines (Basis::ColStatus stores these raw values), which is what
/// makes bases interchangeable across the engine seam.
enum class ColState : uint8_t { Basic, AtLower, AtUpper, Free };

/// Tuning knobs for the simplex solver.
struct SimplexOptions {
  /// Hard cap on total pivots (both phases).
  int64_t MaxIterations = 200000;
  /// Wall-clock budget for one solve(), in seconds (checked every few
  /// pivots). Exceeding it reports LpStatus::IterationLimit. Outer time
  /// limits shared across many solves are expressed as the absolute
  /// deadline of the SolveContext instead (the MIP solver tightens its
  /// context's deadline once and every node LP observes it).
  double TimeLimitSeconds = 1e30;
  /// Primal feasibility tolerance.
  double FeasTol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double OptTol = 1e-7;
  /// Smallest acceptable pivot magnitude.
  double PivotTol = 1e-8;
  /// Number of consecutive degenerate pivots before switching to Bland's
  /// rule.
  int DegenerateLimit = 512;
  /// Dense-tableau drift guard for warm starts: after this many pivots
  /// have accumulated in a workspace tableau since its last fresh
  /// factorization, the next warm solve refactorizes from the original
  /// constraint matrix instead of reusing the tableau in place.
  int64_t WarmRebuildPivots = 4096;
  /// Engine executing the solve (see SimplexEngine).
  SimplexEngine Engine = defaultSimplexEngine();
  /// Sparse engine: refactorize the basis after this many product-form
  /// eta updates.
  int RefactorEtaLimit = 64;
  /// Sparse engine: refactorize early when the eta file's nonzeros
  /// exceed this multiple of (rows + LU nonzeros) — the fill guard.
  double RefactorFillFactor = 4.0;
  /// On an Infeasible exit, record the constraint rows supporting the
  /// infeasibility certificate (the Farkas ray's slack support) in
  /// LpResult::FarkasRows. Off by default: the scan is cheap but not
  /// free, and only forensics consumers want it.
  bool CollectFarkas = false;
};

/// An exported simplex basis: the resting status of every [structural |
/// slack] column plus the basic column of each row. Treat as opaque —
/// the fields are only meaningful to SimplexSolver::solve, and only for
/// re-solves of the same model (same constraints; bounds may differ).
/// Produced by an optimal solve that was given a SimplexWorkspace.
struct Basis {
  /// Per-column resting status (internal encoding), structural columns
  /// first, then one slack per row.
  std::vector<uint8_t> ColStatus;
  /// BasicCols[row] = column index basic in that row.
  std::vector<int> BasicCols;
  /// Workspace stamp identifying the tableau state this basis was
  /// extracted from (0 = none); lets a warm solve detect in O(1) that
  /// the workspace tableau already realizes this basis.
  uint64_t Id = 0;

  bool empty() const { return BasicCols.empty(); }
};

/// Persistent scratch state for a sequence of solves: the dense tableau,
/// pricing and ratio-test buffers, and the identity of the basis the
/// tableau currently realizes. Hoisting one workspace out of the
/// branch-and-bound node loop eliminates the per-node tableau
/// reallocation and enables zero-refactorization warm starts whenever
/// consecutive solves walk parent -> child in the search tree.
class SimplexWorkspace {
public:
  SimplexWorkspace();
  ~SimplexWorkspace();
  SimplexWorkspace(SimplexWorkspace &&) noexcept;
  SimplexWorkspace &operator=(SimplexWorkspace &&) noexcept;
  SimplexWorkspace(const SimplexWorkspace &) = delete;
  SimplexWorkspace &operator=(const SimplexWorkspace &) = delete;

private:
  friend class SimplexSolver;
  struct State;
  std::unique_ptr<State> S;
};

/// Result of an LP solve.
struct LpResult {
  LpStatus Status = LpStatus::Infeasible;
  /// Objective value (valid when Status == Optimal).
  double Objective = 0.0;
  /// Value of each structural (model) variable.
  std::vector<double> Values;
  /// Number of simplex pivots performed (the paper's "simplex
  /// iterations" metric).
  int64_t Iterations = 0;

  // --- Telemetry detail (see docs/OBSERVABILITY.md) ---
  /// Pivots whose step length was ~0 (degeneracy; a long run of these
  /// triggers the switch to Bland's rule).
  int64_t DegeneratePivots = 0;
  /// Entering-variable bound flips (pivots that changed no basis entry).
  int64_t BoundFlips = 0;
  /// Periodic refreshes of the basic values from the tableau (the dense
  /// analogue of a basis refactorization).
  int64_t Refactorizations = 0;
  /// Pivots spent in phase 1 (driving artificials out of the basis).
  int64_t Phase1Iterations = 0;
  /// Pivots spent in the warm-start dual simplex (subset of Iterations).
  int64_t DualIterations = 0;
  /// Product-form eta nonzeros appended to the basis factorization
  /// (sparse engine only; 0 for dense solves).
  int64_t EtaNonzeros = 0;
  /// True when this solve restarted from a caller-provided basis and ran
  /// the dual simplex (false for cold two-phase primal solves, including
  /// warm attempts that had to fall back).
  bool WarmStarted = false;
  /// With SimplexOptions::CollectFarkas, on Status == Infeasible: the
  /// model rows supporting the infeasibility certificate — the nonzero
  /// slack columns of the dual simplex's terminal ray, or the residual
  /// artificial rows' slack supports after phase 1. A subset of rows
  /// that is itself infeasible under the solved bounds.
  std::vector<int> FarkasRows;
  /// The optimal basis of this solve, exportable to warm-start a later
  /// solve of the same model with tightened bounds. Only populated when
  /// Status == Optimal and the solve was given a SimplexWorkspace; empty
  /// when the final basis is not reusable (e.g. a residual degenerate
  /// artificial could not be pivoted out).
  Basis FinalBasis;
};

/// Dense bounded-variable simplex: two-phase primal for cold solves,
/// dual simplex for warm re-solves from an exported basis.
class SimplexSolver {
public:
  explicit SimplexSolver(SimplexOptions Options = {}) : Opts(Options) {}

  /// Solves \p M (a minimization LP; integrality flags are ignored).
  LpResult solve(const Model &M);

  /// Solves \p M with the variable bounds replaced by \p Lower / \p Upper
  /// (used by branch-and-bound nodes to tighten integer bounds without
  /// copying the whole model).
  ///
  /// \p Ctx, when non-null, supplies the per-attempt solve environment
  /// (lp/SolveContext.h): its workspace persists the tableau and scratch
  /// buffers across calls (and enables FinalBasis export), its deadline
  /// bounds this solve's wall-clock, and its cancellation token is
  /// polled every 64 pivots (both report LpStatus::IterationLimit; the
  /// caller disambiguates by asking the context). \p Start, when
  /// non-null and non-empty, requests a warm start from that basis: the
  /// solver reuses the workspace tableau in place when it still
  /// realizes the basis (otherwise refactorizes from the constraint
  /// matrix) and runs the dual simplex, which is exact for the
  /// branch-and-bound pattern of a dual-feasible but primal-infeasible
  /// basis after a bound tightening. Falls back to the cold two-phase
  /// primal whenever the basis is unusable (stale shape, singular
  /// refactorization, or dual infeasibility beyond tolerance).
  LpResult solve(const Model &M, const std::vector<double> &Lower,
                 const std::vector<double> &Upper,
                 SolveContext *Ctx = nullptr,
                 const Basis *Start = nullptr);

private:
  SimplexOptions Opts;
};

namespace detail {
/// Draws a fresh process-unique basis stamp. Both engines stamp
/// exported bases from this shared atomic source, so a stamp uniquely
/// identifies one engine state across the whole process.
uint64_t takeBasisStamp();
} // namespace detail

} // namespace lp
} // namespace modsched

#endif // MODSCHED_LP_SIMPLEX_H
