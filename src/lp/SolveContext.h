//===- lp/SolveContext.h - Per-attempt solve environment --------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit environment of one scheduling/solve attempt: the
/// persistent simplex workspace, the absolute wall-clock deadline, and
/// the cooperative cancellation token. Threading one SolveContext
/// through SimplexSolver and MipSolver (instead of hiding deadline and
/// workspace state in options structs and solver members) is what makes
/// the solve pipeline reentrant: any number of contexts — and therefore
/// any number of concurrent attempts — can coexist in one process, each
/// confined to the thread driving it.
///
/// Ownership rules (see DESIGN.md "Concurrency model"):
///  * One SolveContext per concurrent attempt. A context must only be
///    used by one thread at a time — its workspace and deadline are
///    plain (unsynchronized) state.
///  * The CancellationToken is the only cross-thread member: any thread
///    may cancel the source it observes while the owning thread solves.
///  * Telemetry rides thread-locally, not in the context: worker
///    threads record into the shard installed by their
///    telemetry::ThreadShardScope (automatic inside support/ThreadPool).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_LP_SOLVECONTEXT_H
#define MODSCHED_LP_SOLVECONTEXT_H

#include "lp/Simplex.h"
#include "support/Cancellation.h"
#include "support/Timer.h"

#include <algorithm>

namespace modsched {
namespace lp {

/// Sentinel for "no deadline" (same convention the solvers use for
/// their own 1e30 "unlimited" budgets).
inline constexpr double NoDeadline = 1e30;

/// Explicit per-attempt solve environment. Default-constructed contexts
/// have a fresh workspace, no deadline, and a detached (never-cancelled)
/// token, so wrapping a single-threaded call site in a local context is
/// behavior-preserving.
struct SolveContext {
  /// Persistent tableau / scratch buffers, reused by every LP solved
  /// under this context (the warm-start path of the B&B node loop).
  SimplexWorkspace Workspace;

  /// Absolute wall-clock deadline on the modsched::monotonicSeconds()
  /// clock; NoDeadline when unlimited. Computed once by whoever owns
  /// the budget and shared by every nested solve — no per-node
  /// remaining-time arithmetic anywhere below.
  double DeadlineSeconds = NoDeadline;

  /// Cooperative cancellation: the solvers poll this at their budget
  /// checkpoints (between B&B nodes, every 64 simplex pivots).
  CancellationToken Cancel;

  /// True once cancellation was requested.
  bool cancelled() const { return Cancel.cancelled(); }

  /// True once the deadline has passed.
  bool deadlineExpired() const {
    return DeadlineSeconds < 1e29 && monotonicSeconds() > DeadlineSeconds;
  }

  /// Tightens the deadline to at most \p Budget seconds from now.
  /// Budgets >= 1e29 mean "unlimited" and leave the deadline unchanged.
  void tightenDeadline(double BudgetSeconds) {
    if (BudgetSeconds < 1e29)
      DeadlineSeconds =
          std::min(DeadlineSeconds, monotonicSeconds() + BudgetSeconds);
  }
};

/// RAII deadline tightening: narrows a context's deadline for the
/// duration of a nested solve (e.g. MipSolver imposing its per-solve
/// TimeLimitSeconds) and restores the outer deadline on exit.
class DeadlineScope {
public:
  DeadlineScope(SolveContext &Ctx, double BudgetSeconds)
      : Ctx(Ctx), Saved(Ctx.DeadlineSeconds) {
    Ctx.tightenDeadline(BudgetSeconds);
  }
  ~DeadlineScope() { Ctx.DeadlineSeconds = Saved; }
  DeadlineScope(const DeadlineScope &) = delete;
  DeadlineScope &operator=(const DeadlineScope &) = delete;

private:
  SolveContext &Ctx;
  double Saved;
};

} // namespace lp
} // namespace modsched

#endif // MODSCHED_LP_SOLVECONTEXT_H
