//===- lp/Model.cpp - Linear/integer program model ------------------------===//

#include "lp/Model.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <map>

using namespace modsched;
using namespace modsched::lp;

namespace {

/// Process-wide revision source. Relaxed: revisions only need to be
/// unique, never ordered across threads.
std::atomic<uint64_t> NextRevision{0};

} // namespace

void Model::bumpRevision() {
  Revision = NextRevision.fetch_add(1, std::memory_order_relaxed) + 1;
}

int Model::addVariable(std::string Name, double Lower, double Upper,
                       double Objective, VarKind Kind) {
  assert(Lower <= Upper && "inverted variable bounds");
  Vars.push_back({std::move(Name), Lower, Upper, Objective, Kind});
  bumpRevision();
  return static_cast<int>(Vars.size()) - 1;
}

int Model::addConstraint(std::vector<Term> Terms, ConstraintSense Sense,
                         double Rhs, std::string Name) {
  // Merge duplicate variables and drop zero coefficients so downstream
  // consumers (simplex, structure checks) see a canonical form.
  std::map<int, double> Merged;
  for (const Term &T : Terms) {
    assert(T.first >= 0 && T.first < numVariables() &&
           "constraint references unknown variable");
    Merged[T.first] += T.second;
  }
  std::vector<Term> Canonical;
  Canonical.reserve(Merged.size());
  for (const auto &[Var, Coeff] : Merged)
    if (Coeff != 0.0)
      Canonical.push_back({Var, Coeff});
  Cons.push_back({std::move(Canonical), Sense, Rhs, std::move(Name)});
  bumpRevision();
  return static_cast<int>(Cons.size()) - 1;
}

void Model::setObjective(int Var, double Coefficient) {
  assert(Var >= 0 && Var < numVariables() && "unknown variable");
  Vars[Var].Objective = Coefficient;
  bumpRevision();
}

void Model::setBounds(int Var, double Lower, double Upper) {
  assert(Var >= 0 && Var < numVariables() && "unknown variable");
  assert(Lower <= Upper && "inverted variable bounds");
  Vars[Var].Lower = Lower;
  Vars[Var].Upper = Upper;
  bumpRevision();
}

void Model::setBranchPriority(int Var, int Priority) {
  assert(Var >= 0 && Var < numVariables() && "unknown variable");
  Vars[Var].BranchPriority = Priority;
  bumpRevision();
}

int Model::numIntegerVariables() const {
  int Count = 0;
  for (const Variable &V : Vars)
    if (V.Kind == VarKind::Integer)
      ++Count;
  return Count;
}

double Model::evaluateObjective(const std::vector<double> &X) const {
  assert(X.size() == Vars.size() && "solution size mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < Vars.size(); ++I)
    Sum += Vars[I].Objective * X[I];
  return Sum;
}

void Model::getBounds(std::vector<double> &Lower,
                      std::vector<double> &Upper) const {
  Lower.resize(Vars.size());
  Upper.resize(Vars.size());
  for (size_t I = 0; I < Vars.size(); ++I) {
    Lower[I] = Vars[I].Lower;
    Upper[I] = Vars[I].Upper;
  }
}

bool Model::isFeasible(const std::vector<double> &X, double Tolerance,
                       std::string *WhyNot) const {
  assert(X.size() == Vars.size() && "solution size mismatch");
  char Buf[256];
  for (size_t I = 0; I < Vars.size(); ++I) {
    if (X[I] < Vars[I].Lower - Tolerance || X[I] > Vars[I].Upper + Tolerance) {
      if (WhyNot) {
        std::snprintf(Buf, sizeof(Buf), "variable %s=%g outside [%g, %g]",
                      Vars[I].Name.c_str(), X[I], Vars[I].Lower,
                      Vars[I].Upper);
        *WhyNot = Buf;
      }
      return false;
    }
  }
  for (const Constraint &C : Cons) {
    double Lhs = 0.0;
    for (const Term &T : C.Terms)
      Lhs += T.second * X[T.first];
    bool Ok = true;
    switch (C.Sense) {
    case ConstraintSense::LE:
      Ok = Lhs <= C.Rhs + Tolerance;
      break;
    case ConstraintSense::GE:
      Ok = Lhs >= C.Rhs - Tolerance;
      break;
    case ConstraintSense::EQ:
      Ok = std::abs(Lhs - C.Rhs) <= Tolerance;
      break;
    }
    if (!Ok) {
      if (WhyNot) {
        std::snprintf(Buf, sizeof(Buf), "constraint %s violated: lhs=%g rhs=%g",
                      C.Name.c_str(), Lhs, C.Rhs);
        *WhyNot = Buf;
      }
      return false;
    }
  }
  return true;
}

bool Model::isZeroOneStructured() const {
  for (const Constraint &C : Cons)
    for (const Term &T : C.Terms)
      if (T.second != 1.0 && T.second != -1.0)
        return false; // Zero coefficients were canonicalized away.
  return true;
}

std::string Model::toString() const {
  std::string Out = "minimize\n ";
  bool First = true;
  for (size_t I = 0; I < Vars.size(); ++I) {
    if (Vars[I].Objective == 0.0)
      continue;
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), " %+g %s", Vars[I].Objective,
                  Vars[I].Name.c_str());
    Out += Buf;
    First = false;
  }
  if (First)
    Out += " 0";
  Out += "\nsubject to\n";
  for (const Constraint &C : Cons) {
    Out += "  ";
    if (!C.Name.empty()) {
      Out += C.Name;
      Out += ": ";
    }
    for (const Term &T : C.Terms) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "%+g %s ", T.second,
                    Vars[T.first].Name.c_str());
      Out += Buf;
    }
    const char *SenseStr = C.Sense == ConstraintSense::LE   ? "<="
                           : C.Sense == ConstraintSense::GE ? ">="
                                                            : "=";
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%s %g\n", SenseStr, C.Rhs);
    Out += Buf;
  }
  Out += "bounds\n";
  for (const Variable &V : Vars) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf), "  %g <= %s <= %g%s\n", V.Lower,
                  V.Name.c_str(), V.Upper,
                  V.Kind == VarKind::Integer ? " integer" : "");
    Out += Buf;
  }
  return Out;
}
