//===- lp/SparseMatrix.h - Compiled sparse constraint matrix -----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable compressed-sparse representation of an `lp::Model`'s
/// constraint matrix, in both column-major (CSC) and row-major (CSR)
/// form. The sparse revised simplex engine compiles a model once per
/// solve sequence and then works exclusively off this structure:
/// FTRAN pulls whole columns (CSC), the pivot-row computation sweeps
/// rows against BTRAN output (CSR).
///
/// Only the structural variables are stored. Slack columns are the
/// implicit identity (+e_i per row) and artificial columns are
/// engine-private, so neither pays storage or indirection here.
///
/// Instances are keyed on `Model::revision()`: the revision is a
/// process-unique mutation stamp, so matching (revision, rows, cols)
/// proves the compiled matrix still describes the model even across
/// Model objects that reuse the same address.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_LP_SPARSEMATRIX_H
#define MODSCHED_LP_SPARSEMATRIX_H

#include <cstdint>
#include <vector>

namespace modsched {
namespace lp {

class Model;

/// CSC + CSR view of a model's constraint matrix (structural columns
/// only). All index vectors are dense-int; the matrix is immutable
/// after `compile`.
struct SparseMatrix {
  int NumRows = 0;
  int NumCols = 0;
  /// `Model::revision()` at compile time; 0 means "never compiled".
  uint64_t ModelRevision = 0;

  /// Column-major: column j's entries are positions
  /// [ColStart[j], ColStart[j+1]) of RowIndex/Value.
  std::vector<int> ColStart;
  std::vector<int> RowIndex;
  std::vector<double> Value;

  /// Row-major mirror: row i's entries are positions
  /// [RowStart[i], RowStart[i+1]) of ColIndex/RValue.
  std::vector<int> RowStart;
  std::vector<int> ColIndex;
  std::vector<double> RValue;

  /// Total stored nonzeros.
  int numNonzeros() const { return static_cast<int>(RowIndex.size()); }

  /// True iff this compiled matrix is still a faithful image of \p M.
  bool matches(const Model &M) const;

  /// Rebuilds both forms from \p M's canonical constraints. The model's
  /// `addConstraint` already merged duplicate terms and dropped zero
  /// coefficients, so every (row, col) pair appears at most once.
  void compile(const Model &M);
};

} // namespace lp
} // namespace modsched

#endif // MODSCHED_LP_SPARSEMATRIX_H
