//===- lp/LuFactor.cpp - LU-factorized basis with eta updates -------------===//

#include "lp/LuFactor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace modsched;
using namespace modsched::lp;

namespace {

/// Entries smaller than this are not worth storing: they are far below
/// the engine's pivot and feasibility tolerances.
constexpr double DropTol = 1e-12;

/// Threshold partial pivoting slack: a row is numerically eligible when
/// its magnitude is within this factor of the column maximum.
constexpr double PivotRelThreshold = 0.1;

} // namespace

bool LuFactor::factor(int Dim_, const std::vector<int> &ColStart,
                      const std::vector<int> &Rows,
                      const std::vector<double> &Vals, double PivotTol) {
  Dim = Dim_;
  Valid = false;
  assert(static_cast<int>(ColStart.size()) == Dim + 1 &&
         "basis CSC must have Dim+1 column starts");

  RowOf.assign(Dim, -1);
  Pinv.assign(Dim, -1);
  ColOf.assign(Dim, -1);
  StepOfPos.assign(Dim, -1);
  LStart.assign(1, 0);
  LRow.clear();
  LVal.clear();
  UStart.assign(1, 0);
  URow.clear();
  UVal.clear();
  UDiag.assign(Dim, 0.0);
  EtaStart.assign(1, 0);
  EtaIdx.clear();
  EtaVal.clear();
  EtaPos.clear();
  EtaPivot.clear();
  Mark.assign(Dim, 0);
  CurMark = 0;
  Work.resize(Dim);

  const int BaseNnz = Dim == 0 ? 0 : ColStart[Dim];

  // Static row counts drive the Markowitz tie-break.
  RowCount.assign(Dim, 0);
  for (int P = 0; P < BaseNnz; ++P)
    ++RowCount[Rows[P]];

  // Column preorder: ascending nonzero count (approximate Markowitz
  // column ordering). Counting sort keeps this O(nnz).
  std::vector<int> Order(Dim);
  {
    std::vector<int> Bucket(Dim + 2, 0);
    for (int C = 0; C < Dim; ++C) {
      int Nnz = std::min(ColStart[C + 1] - ColStart[C], Dim + 1);
      ++Bucket[Nnz + 1];
    }
    for (size_t I = 1; I < Bucket.size(); ++I)
      Bucket[I] += Bucket[I - 1];
    for (int C = 0; C < Dim; ++C) {
      int Nnz = std::min(ColStart[C + 1] - ColStart[C], Dim + 1);
      Order[Bucket[Nnz]++] = C;
    }
  }

  for (int K = 0; K < Dim; ++K) {
    const int C = Order[K];
    // Scatter column C of the basis.
    Work.clear();
    for (int P = ColStart[C]; P < ColStart[C + 1]; ++P)
      Work.set(Rows[P], Vals[P]);

    // Left-looking elimination. Step order is a valid topological
    // order: L column j only stores rows unpivoted at step j, so the
    // value at RowOf[j] is final once steps < j have been applied.
    for (int J = 0; J < K; ++J) {
      const double Pv = Work.Val[RowOf[J]];
      if (std::abs(Pv) <= DropTol)
        continue;
      URow.push_back(J);
      UVal.push_back(Pv);
      for (int P = LStart[J]; P < LStart[J + 1]; ++P)
        Work.add(LRow[P], -LVal[P] * Pv);
    }

    // Threshold-Markowitz pivot: numerically eligible rows compete on
    // fewest static nonzeros, ties broken toward larger magnitude.
    double MaxAbs = 0.0;
    for (int I : Work.Idx)
      if (Pinv[I] < 0)
        MaxAbs = std::max(MaxAbs, std::abs(Work.Val[I]));
    if (MaxAbs <= PivotTol)
      return false; // Structurally or numerically singular.
    const double Thresh = std::max(PivotRelThreshold * MaxAbs, PivotTol);
    int Prow = -1;
    int BestCount = Dim + 1;
    double BestAbs = 0.0;
    for (int I : Work.Idx) {
      if (Pinv[I] >= 0)
        continue;
      const double A = std::abs(Work.Val[I]);
      if (A < Thresh)
        continue;
      if (RowCount[I] < BestCount ||
          (RowCount[I] == BestCount && A > BestAbs)) {
        BestCount = RowCount[I];
        BestAbs = A;
        Prow = I;
      }
    }
    assert(Prow >= 0 && "eligible pivot must exist when MaxAbs > tol");

    const double Piv = Work.Val[Prow];
    RowOf[K] = Prow;
    Pinv[Prow] = K;
    ColOf[K] = C;
    StepOfPos[C] = K;
    UDiag[K] = Piv;
    for (int I : Work.Idx) {
      if (Pinv[I] >= 0)
        continue; // Already-pivoted rows (and Prow itself) went to U.
      const double V = Work.Val[I];
      if (std::abs(V) <= DropTol)
        continue;
      LRow.push_back(I);
      LVal.push_back(V / Piv);
    }
    LStart.push_back(static_cast<int>(LRow.size()));
    UStart.push_back(static_cast<int>(URow.size()));
  }

  Fill = factorNonzeros() - BaseNnz;

  // Build the row (transposed) forms for saxpy-style BTRAN. Both
  // counting sorts preserve ascending inner order.
  LtStart.assign(Dim + 1, 0);
  for (int R : LRow)
    ++LtStart[Pinv[R] + 1];
  for (int K = 0; K < Dim; ++K)
    LtStart[K + 1] += LtStart[K];
  LtCol.resize(LRow.size());
  LtVal.resize(LRow.size());
  {
    std::vector<int> Cursor(LtStart.begin(), LtStart.end() - 1);
    for (int J = 0; J < Dim; ++J)
      for (int P = LStart[J]; P < LStart[J + 1]; ++P) {
        const int K = Pinv[LRow[P]];
        const int Q = Cursor[K]++;
        LtCol[Q] = J;
        LtVal[Q] = LVal[P];
      }
  }
  UtStart.assign(Dim + 1, 0);
  for (int R : URow)
    ++UtStart[R + 1];
  for (int K = 0; K < Dim; ++K)
    UtStart[K + 1] += UtStart[K];
  UtCol.resize(URow.size());
  UtVal.resize(URow.size());
  {
    std::vector<int> Cursor(UtStart.begin(), UtStart.end() - 1);
    for (int J = 0; J < Dim; ++J)
      for (int P = UStart[J]; P < UStart[J + 1]; ++P) {
        const int K = URow[P]; // Step k < j holding U[k, j].
        const int Q = Cursor[K]++;
        UtCol[Q] = J;
        UtVal[Q] = UVal[P];
      }
  }

  Valid = true;
  return true;
}

void LuFactor::collectReach(const std::vector<int> &Start,
                            const std::vector<int> &Adj,
                            const std::vector<int> *ToStep) {
  // Seeds are already marked and on the stack; DFS the static pattern.
  while (!Stack.empty()) {
    const int K = Stack.back();
    Stack.pop_back();
    Reach.push_back(K);
    for (int P = Start[K]; P < Start[K + 1]; ++P) {
      const int Next = ToStep ? (*ToStep)[Adj[P]] : Adj[P];
      if (Mark[Next] != CurMark) {
        Mark[Next] = CurMark;
        Stack.push_back(Next);
      }
    }
  }
}

void LuFactor::ftran(ScatteredVector &X) {
  assert(Valid && "ftran on an invalid factorization");
  assert(X.size() == Dim && "ftran vector dimension mismatch");
  ++Ftrans;
  const bool Sparse = useSparseSolve(X.nonzeros());
  if (Sparse)
    ++SparseFtrans;

  // --- Lower solve, in constraint-row index space.
  if (Sparse) {
    ++CurMark;
    Reach.clear();
    Stack.clear();
    for (int R : X.Idx) {
      const int K = Pinv[R];
      if (Mark[K] != CurMark) {
        Mark[K] = CurMark;
        Stack.push_back(K);
      }
    }
    collectReach(LStart, LRow, &Pinv);
    std::sort(Reach.begin(), Reach.end());
    for (int K : Reach) {
      const double Pv = X.Val[RowOf[K]];
      if (Pv == 0.0)
        continue;
      for (int P = LStart[K]; P < LStart[K + 1]; ++P)
        X.add(LRow[P], -LVal[P] * Pv);
    }
  } else {
    for (int K = 0; K < Dim; ++K) {
      const double Pv = X.Val[RowOf[K]];
      if (Pv == 0.0)
        continue;
      for (int P = LStart[K]; P < LStart[K + 1]; ++P)
        X.add(LRow[P], -LVal[P] * Pv);
    }
  }

  // --- Upper solve. Dependencies flow from step k to steps j < k via
  // U column k, so process reachable steps in descending order.
  if (useSparseSolve(X.nonzeros())) {
    ++CurMark;
    Reach.clear();
    Stack.clear();
    for (int R : X.Idx) {
      const int K = Pinv[R];
      if (Mark[K] != CurMark) {
        Mark[K] = CurMark;
        Stack.push_back(K);
      }
    }
    collectReach(UStart, URow, nullptr);
    std::sort(Reach.begin(), Reach.end(), std::greater<int>());
    for (int K : Reach) {
      const double T = X.Val[RowOf[K]] / UDiag[K];
      if (T == 0.0)
        continue;
      X.set(RowOf[K], T);
      for (int P = UStart[K]; P < UStart[K + 1]; ++P)
        X.add(RowOf[URow[P]], -UVal[P] * T);
    }
  } else {
    for (int K = Dim - 1; K >= 0; --K) {
      const double T = X.Val[RowOf[K]] / UDiag[K];
      if (T == 0.0)
        continue;
      X.set(RowOf[K], T);
      for (int P = UStart[K]; P < UStart[K + 1]; ++P)
        X.add(RowOf[URow[P]], -UVal[P] * T);
    }
  }

  // --- Permute into basis-position space: out[ColOf[k]] = x[RowOf[k]],
  // dropping numerical dust so downstream sparsity stays honest.
  PermBuf.clear();
  for (int R : X.Idx) {
    const double V = X.Val[R];
    if (std::abs(V) > DropTol)
      PermBuf.push_back({ColOf[Pinv[R]], V});
  }
  X.clear();
  for (const auto &[Pos, V] : PermBuf)
    X.set(Pos, V);

  // --- Product-form etas, in application order.
  const int NumEtas = etaCount();
  for (int E = 0; E < NumEtas; ++E) {
    const int P = EtaPos[E];
    double Xp = X.Val[P];
    if (Xp == 0.0)
      continue;
    Xp /= EtaPivot[E];
    X.set(P, Xp);
    for (int Q = EtaStart[E]; Q < EtaStart[E + 1]; ++Q)
      X.add(EtaIdx[Q], -EtaVal[Q] * Xp);
  }
}

void LuFactor::btran(ScatteredVector &X) {
  assert(Valid && "btran on an invalid factorization");
  assert(X.size() == Dim && "btran vector dimension mismatch");
  ++Btrans;
  const bool Sparse = useSparseSolve(X.nonzeros());
  if (Sparse)
    ++SparseBtrans;

  // --- Eta transpose-inverses, reverse order (dot-product form; each
  // eta is sparse and the file is bounded by the refactor limit).
  for (int E = etaCount() - 1; E >= 0; --E) {
    const int P = EtaPos[E];
    double S = X.Val[P];
    for (int Q = EtaStart[E]; Q < EtaStart[E + 1]; ++Q)
      S -= EtaVal[Q] * X.Val[EtaIdx[Q]];
    if (S == 0.0 && !X.In[P])
      continue;
    X.set(P, S / EtaPivot[E]);
  }

  // --- Permute basis positions to steps: z[k] = c[ColOf[k]].
  PermBuf.clear();
  for (int Pos : X.Idx) {
    const double V = X.Val[Pos];
    if (std::abs(V) > DropTol)
      PermBuf.push_back({StepOfPos[Pos], V});
  }
  X.clear();
  for (const auto &[K, V] : PermBuf)
    X.set(K, V);

  // --- U^T forward solve: step k feeds steps j > k through Ut row k.
  if (useSparseSolve(X.nonzeros())) {
    ++CurMark;
    Reach.clear();
    Stack.clear();
    for (int K : X.Idx) {
      if (Mark[K] != CurMark) {
        Mark[K] = CurMark;
        Stack.push_back(K);
      }
    }
    collectReach(UtStart, UtCol, nullptr);
    std::sort(Reach.begin(), Reach.end());
    for (int K : Reach) {
      const double T = X.Val[K] / UDiag[K];
      if (T == 0.0)
        continue;
      X.set(K, T);
      for (int P = UtStart[K]; P < UtStart[K + 1]; ++P)
        X.add(UtCol[P], -UtVal[P] * T);
    }
  } else {
    for (int K = 0; K < Dim; ++K) {
      const double T = X.Val[K] / UDiag[K];
      if (T == 0.0)
        continue;
      X.set(K, T);
      for (int P = UtStart[K]; P < UtStart[K + 1]; ++P)
        X.add(UtCol[P], -UtVal[P] * T);
    }
  }

  // --- L^T backward solve: step k feeds steps j < k through Lt row k.
  if (useSparseSolve(X.nonzeros())) {
    ++CurMark;
    Reach.clear();
    Stack.clear();
    for (int K : X.Idx) {
      if (Mark[K] != CurMark) {
        Mark[K] = CurMark;
        Stack.push_back(K);
      }
    }
    collectReach(LtStart, LtCol, nullptr);
    std::sort(Reach.begin(), Reach.end(), std::greater<int>());
    for (int K : Reach) {
      const double Pv = X.Val[K];
      if (Pv == 0.0)
        continue;
      for (int P = LtStart[K]; P < LtStart[K + 1]; ++P)
        X.add(LtCol[P], -LtVal[P] * Pv);
    }
  } else {
    for (int K = Dim - 1; K >= 0; --K) {
      const double Pv = X.Val[K];
      if (Pv == 0.0)
        continue;
      for (int P = LtStart[K]; P < LtStart[K + 1]; ++P)
        X.add(LtCol[P], -LtVal[P] * Pv);
    }
  }

  // --- Permute steps back to constraint rows: out[RowOf[k]] = z[k].
  PermBuf.clear();
  for (int K : X.Idx) {
    const double V = X.Val[K];
    if (std::abs(V) > DropTol)
      PermBuf.push_back({RowOf[K], V});
  }
  X.clear();
  for (const auto &[R, V] : PermBuf)
    X.set(R, V);
}

bool LuFactor::update(int Pos, const ScatteredVector &W, double PivotTol) {
  assert(Valid && "eta update on an invalid factorization");
  assert(Pos >= 0 && Pos < Dim && "eta pivot position out of range");
  const double Wp = W.Val[Pos];
  if (std::abs(Wp) <= PivotTol)
    return false;
  EtaPos.push_back(Pos);
  EtaPivot.push_back(Wp);
  for (int I : W.Idx) {
    if (I == Pos)
      continue;
    const double V = W.Val[I];
    if (std::abs(V) <= DropTol)
      continue;
    EtaIdx.push_back(I);
    EtaVal.push_back(V);
  }
  EtaStart.push_back(static_cast<int>(EtaIdx.size()));
  return true;
}
