//===- lp/SparseRevisedSimplex.cpp - Sparse revised simplex ---------------===//
//
// Revised simplex over a compiled sparse matrix: LU-factorized basis
// with product-form eta updates (lp/LuFactor), hyper-sparse
// FTRAN/BTRAN, incremental reduced costs, and candidate-list partial
// pricing. The pivot rules deliberately mirror lp/Simplex.cpp's dense
// Tableau (same tolerances, same tie-breaks, same Bland anti-cycling
// fallback, same two-phase / dual-simplex structure) so the engines are
// interchangeable and differential-testable; only the linear algebra
// underneath differs.
//
//===----------------------------------------------------------------------===//

#include "lp/SparseRevisedSimplex.h"

#include "lp/SolveContext.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace {

// Telemetry: sparse-engine factorization counters (MODSCHED_STATS=1).
modsched::telemetry::Counter
    StatFactorizations("lp", "factor.refactorizations",
                       "sparse-engine LU basis (re)factorizations");
modsched::telemetry::Counter
    StatFillNnz("lp", "factor.fill_nnz",
                "LU fill-in nonzeros beyond the basis pattern");
modsched::telemetry::Counter
    StatEtaNnz("lp", "factor.eta_nnz",
               "product-form eta nonzeros appended to the basis");
modsched::telemetry::Counter StatFtran("lp", "factor.ftran_solves",
                                       "FTRAN solves");
modsched::telemetry::Counter
    StatFtranSparse("lp", "factor.ftran_sparse",
                    "FTRAN solves taking the hyper-sparse path");
modsched::telemetry::Counter StatBtran("lp", "factor.btran_solves",
                                       "BTRAN solves");
modsched::telemetry::Counter
    StatBtranSparse("lp", "factor.btran_sparse",
                    "BTRAN solves taking the hyper-sparse path");

/// Reduced-cost sign tolerance for accepting a starting basis as
/// dual-feasible (matches the dense engine).
constexpr double DualFeasTol = 1e-6;

/// Partial pricing: size of the candidate list refilled from the
/// rotating column scan.
constexpr int CandListMax = 32;

/// Consecutive degenerate pivots tolerated under partial pricing
/// before escalating to a full Dantzig scan (Pricing::Dantzig). Kept
/// well below SimplexOptions::DegenerateLimit so the pricing ladder is
/// partial -> Dantzig -> Bland.
constexpr int DegeneratePricingLimit = 32;

} // namespace

using namespace modsched;
using namespace modsched::lp;

double SparseRevisedSimplex::restingValue(int Col) const {
  switch (Status[Col]) {
  case ColState::AtLower:
    return Lo[Col];
  case ColState::AtUpper:
    return Up[Col];
  case ColState::Free:
    return 0.0;
  case ColState::Basic:
    break;
  }
  assert(false && "restingValue of basic column");
  return 0.0;
}

bool SparseRevisedSimplex::budgetExceeded() const {
  if (Iters >= OptsP->MaxIterations)
    return true;
  if ((Iters & 63) != 0)
    return false;
  if (CtxP && (CtxP->cancelled() || CtxP->deadlineExpired()))
    return true;
  return Clock.seconds() > OptsP->TimeLimitSeconds;
}

void SparseRevisedSimplex::beginSolve(const Model &M,
                                      const SimplexOptions &Opts) {
  OptsP = &Opts;
  Iters = Degenerate = Flips = Refactors = Phase1Iters = DualIters = 0;
  EtaNnzTotal = 0;
  FarkasSupport.clear();
  Clock.reset();
  NumRows = M.numConstraints();
  NumStruct = M.numVariables();
  FirstArtificial = NumStruct + NumRows;
}

void SparseRevisedSimplex::layoutColumns(const Model &M,
                                         const std::vector<double> &Lower,
                                         const std::vector<double> &Upper) {
  if (!A.matches(M))
    A.compile(M);

  Obj.assign(NumStruct, 0.0);
  for (int Col = 0; Col < NumStruct; ++Col)
    Obj[Col] = M.variable(Col).Objective;

  // Column bounds: structural variables first, then one slack per row
  // whose bounds encode the constraint sense (same layout as the dense
  // engine, which is what keeps Basis interchangeable).
  Lo.assign(Lower.begin(), Lower.end());
  Up.assign(Upper.begin(), Upper.end());
  Lo.resize(FirstArtificial);
  Up.resize(FirstArtificial);
  RowRhs.resize(NumRows);
  for (int Row = 0; Row < NumRows; ++Row) {
    const Constraint &C = M.constraint(Row);
    const int SlackCol = NumStruct + Row;
    switch (C.Sense) {
    case ConstraintSense::LE:
      Lo[SlackCol] = 0.0;
      Up[SlackCol] = infinity();
      break;
    case ConstraintSense::GE:
      Lo[SlackCol] = -infinity();
      Up[SlackCol] = 0.0;
      break;
    case ConstraintSense::EQ:
      Lo[SlackCol] = 0.0;
      Up[SlackCol] = 0.0;
      break;
    }
    RowRhs[Row] = C.Rhs;
  }
  NumCols = FirstArtificial;
  ArtRow.clear();
  ArtSign.clear();

  WCol.resize(NumRows);
  Rho.resize(NumRows);
  RhsWork.resize(NumRows);
  if (ScanCursor >= NumCols)
    ScanCursor = 0;
}

void SparseRevisedSimplex::initCold(const Model &M,
                                    const std::vector<double> &Lower,
                                    const std::vector<double> &Upper,
                                    const SimplexOptions &Opts) {
  beginSolve(M, Opts);
  ModelP = &M;
  CurrentStamp = 0;
  DidRebuild = false;
  layoutColumns(M, Lower, Upper);

  // Rest every structural variable at a finite bound (or 0 when free).
  Status.assign(FirstArtificial, ColState::AtLower);
  for (int Col = 0; Col < NumStruct; ++Col) {
    if (std::isfinite(Lo[Col]))
      Status[Col] = ColState::AtLower;
    else if (std::isfinite(Up[Col]))
      Status[Col] = ColState::AtUpper;
    else
      Status[Col] = ColState::Free;
  }

  // Residual each row's slack must absorb, via the CSR form.
  BasisCol.assign(NumRows, -1);
  XB.assign(NumRows, 0.0);
  for (int Row = 0; Row < NumRows; ++Row) {
    double Lhs = 0.0;
    for (int P = A.RowStart[Row]; P < A.RowStart[Row + 1]; ++P)
      Lhs += A.RValue[P] * restingValue(A.ColIndex[P]);
    const double R = RowRhs[Row] - Lhs;
    const int SlackCol = NumStruct + Row;
    if (R >= Lo[SlackCol] - Opts.FeasTol && R <= Up[SlackCol] + Opts.FeasTol) {
      Status[SlackCol] = ColState::Basic;
      BasisCol[Row] = SlackCol;
      XB[Row] = std::clamp(R, Lo[SlackCol], Up[SlackCol]);
      continue;
    }
    // Slack cannot hold the residual: rest it at the violated bound and
    // give the row an artificial column +-e_row carrying |excess|.
    const double Clamped = std::clamp(R, Lo[SlackCol], Up[SlackCol]);
    Status[SlackCol] =
        (Clamped == Lo[SlackCol]) ? ColState::AtLower : ColState::AtUpper;
    const double Excess = R - Clamped;
    const int ArtCol = FirstArtificial + static_cast<int>(ArtRow.size());
    ArtRow.push_back(Row);
    ArtSign.push_back(Excess > 0 ? 1.0 : -1.0);
    BasisCol[Row] = ArtCol;
    XB[Row] = std::abs(Excess);
  }
  NumCols = FirstArtificial + static_cast<int>(ArtRow.size());
  Lo.resize(NumCols);
  Up.resize(NumCols);
  Status.resize(NumCols);
  std::fill(Lo.begin() + FirstArtificial, Lo.end(), 0.0);
  std::fill(Up.begin() + FirstArtificial, Up.end(), infinity());
  std::fill(Status.begin() + FirstArtificial, Status.end(), ColState::Basic);

  Cost.assign(NumCols, 0.0);
  Dj.assign(NumCols, 0.0);
  AlphaRow.resize(NumCols);
  CandList.clear();

  // The starting basis is diagonal (+-1 per row): trivially factorable.
  bool Ok = factorizeBasis();
  assert(Ok && "slack/artificial starting basis cannot be singular");
  (void)Ok;
}

bool SparseRevisedSimplex::tryInitWarm(const Model &M,
                                       const std::vector<double> &Lower,
                                       const std::vector<double> &Upper,
                                       const Basis &B,
                                       const SimplexOptions &Opts) {
  DidRebuild = false;
  const int Rows = M.numConstraints();
  const int Struct = M.numVariables();
  if (static_cast<int>(B.BasicCols.size()) != Rows ||
      static_cast<int>(B.ColStatus.size()) != Struct + Rows)
    return false;

  if (B.Id != 0 && B.Id == CurrentStamp && ModelP == &M && NumRows == Rows &&
      NumStruct == Struct && Lu.valid() &&
      PivotsSinceFactor < Opts.WarmRebuildPivots) {
    // Fast path: this engine still realizes exactly this basis (the
    // depth-first child-after-parent pattern). The factorization, the
    // statuses, and the reduced costs all survive a pure bound change —
    // rebind the bounds and go.
    beginSolve(M, Opts);
    CurrentStamp = 0; // State is about to diverge from any export.
    std::copy(Lower.begin(), Lower.end(), Lo.begin());
    std::copy(Upper.begin(), Upper.end(), Up.begin());
  } else {
    // Refactorization path: rebuild the layout (no artificials),
    // install the requested statuses/basis, and LU-factor it.
    DidRebuild = true;
    beginSolve(M, Opts);
    ModelP = &M;
    CurrentStamp = 0;
    layoutColumns(M, Lower, Upper);
    Status.assign(NumCols, ColState::AtLower);
    for (int Col = 0; Col < NumCols; ++Col)
      Status[Col] = static_cast<ColState>(B.ColStatus[Col]);
    BasisCol.assign(B.BasicCols.begin(), B.BasicCols.end());
    for (int Col : BasisCol)
      if (Col < 0 || Col >= NumCols || Status[Col] != ColState::Basic)
        return false; // Corrupt basis.
    XB.assign(NumRows, 0.0);
    if (!factorizeBasis())
      return false; // Numerically singular under the new pivot order.
    Cost.assign(NumCols, 0.0);
    std::copy(Obj.begin(), Obj.end(), Cost.begin());
    Dj.assign(NumCols, 0.0);
    AlphaRow.resize(NumCols);
    CandList.clear();
    rebuildDj();
  }

  snapNonbasicToBounds();
  refreshBasicValues();
  return dualFeasible();
}

bool SparseRevisedSimplex::factorizeBasis() {
  BStart.assign(NumRows + 1, 0);
  BRows.clear();
  BVals.clear();
  for (int Pos = 0; Pos < NumRows; ++Pos) {
    forEachColEntry(BasisCol[Pos], [&](int Row, double V) {
      BRows.push_back(Row);
      BVals.push_back(V);
    });
    BStart[Pos + 1] = static_cast<int>(BRows.size());
  }
  if (!Lu.factor(NumRows, BStart, BRows, BVals, OptsP->PivotTol))
    return false;
  ++Refactors;
  ++StatFactorizations;
  StatFillNnz += Lu.fillNonzeros();
  PivotsSinceFactor = 0;
  return true;
}

void SparseRevisedSimplex::refreshBasicValues() {
  // XB = B^-1 (b - N x_N).
  RhsWork.clear();
  for (int Row = 0; Row < NumRows; ++Row)
    if (RowRhs[Row] != 0.0)
      RhsWork.set(Row, RowRhs[Row]);
  for (int Col = 0; Col < NumCols; ++Col) {
    if (Status[Col] == ColState::Basic)
      continue;
    const double X = restingValue(Col);
    if (X == 0.0)
      continue;
    forEachColEntry(Col, [&](int Row, double V) { RhsWork.add(Row, -V * X); });
  }
  Lu.ftran(RhsWork); // Now indexed by basis position == row.
  std::fill(XB.begin(), XB.end(), 0.0);
  for (int Pos : RhsWork.Idx)
    XB[Pos] = RhsWork.Val[Pos];
}

void SparseRevisedSimplex::rebuildDj() {
  // y = B^-T c_B, then Dj = Cost - y' A over all column families.
  Rho.clear();
  for (int Pos = 0; Pos < NumRows; ++Pos) {
    const double CB = Cost[BasisCol[Pos]];
    if (CB != 0.0)
      Rho.set(Pos, CB);
  }
  Lu.btran(Rho); // Now indexed by constraint row.
  Dj = Cost;
  for (int R : Rho.Idx) {
    const double Y = Rho.Val[R];
    if (Y == 0.0)
      continue;
    for (int P = A.RowStart[R]; P < A.RowStart[R + 1]; ++P)
      Dj[A.ColIndex[P]] -= Y * A.RValue[P];
    Dj[NumStruct + R] -= Y; // Slack column e_R.
  }
  for (size_t K = 0; K < ArtRow.size(); ++K)
    Dj[FirstArtificial + static_cast<int>(K)] -=
        Rho.Val[ArtRow[K]] * ArtSign[K];
  // Basic columns have zero reduced cost by construction; enforce.
  for (int Pos = 0; Pos < NumRows; ++Pos)
    Dj[BasisCol[Pos]] = 0.0;
}

void SparseRevisedSimplex::computeAlphaRow(int LeaveRow) {
  // rho = B^-T e_r (hyper-sparse: the seed is a singleton)...
  Rho.clear();
  Rho.set(LeaveRow, 1.0);
  Lu.btran(Rho);
  // ...then alpha_rj = rho' a_j, swept row-wise over rho's nonzeros.
  AlphaRow.clear();
  for (int R : Rho.Idx) {
    const double Y = Rho.Val[R];
    if (Y == 0.0)
      continue;
    for (int P = A.RowStart[R]; P < A.RowStart[R + 1]; ++P)
      AlphaRow.add(A.ColIndex[P], Y * A.RValue[P]);
    AlphaRow.add(NumStruct + R, Y); // Slack column e_R.
  }
  for (size_t K = 0; K < ArtRow.size(); ++K) {
    const double Y = Rho.Val[ArtRow[K]];
    if (Y != 0.0)
      AlphaRow.add(FirstArtificial + static_cast<int>(K), Y * ArtSign[K]);
  }
}

void SparseRevisedSimplex::recordFarkasRow(int Row) {
  if (!OptsP->CollectFarkas)
    return;
  computeAlphaRow(Row);
  for (int Col : AlphaRow.Idx)
    if (Col >= NumStruct && Col < FirstArtificial &&
        std::abs(AlphaRow.Val[Col]) > 1e-9)
      FarkasSupport.push_back(Col - NumStruct);
}

bool SparseRevisedSimplex::commitPivot(int LeaveRow, int Enter) {
  // Incremental reduced costs: d_j -= (d_e / alpha_re) * alpha_rj.
  // The sweep covers every column with a nonzero pivot-row entry —
  // including the leaving column, whose alpha_rLeave == 1 yields
  // exactly d_leave = -d_e / alpha_re.
  const double AlphaE = AlphaRow.Val[Enter];
  assert(AlphaE != 0.0 && "pivot element vanished from the alpha row");
  const double Mult = Dj[Enter] / AlphaE;
  if (Mult != 0.0) {
    for (int J : AlphaRow.Idx) {
      if (J == Enter)
        continue;
      const double Al = AlphaRow.Val[J];
      if (Al != 0.0)
        Dj[J] -= Mult * Al;
    }
  }
  Dj[Enter] = 0.0;
  ++PivotsSinceFactor;

  // Append the product-form eta; refactorize when the eta file passes
  // its count/fill thresholds or the eta pivot is unacceptable.
  const int64_t EtaBefore = Lu.etaNonzeros();
  if (Lu.update(LeaveRow, WCol, OptsP->PivotTol)) {
    const int64_t Added = Lu.etaNonzeros() - EtaBefore;
    EtaNnzTotal += Added;
    StatEtaNnz += Added;
    if (Lu.etaCount() < OptsP->RefactorEtaLimit &&
        Lu.etaNonzeros() <= OptsP->RefactorFillFactor *
                                double(NumRows + Lu.factorNonzeros()))
      return true;
  }
  if (!factorizeBasis())
    return false; // Numerical catastrophe; caller gives up.
  refreshBasicValues();
  rebuildDj();
  return true;
}

double SparseRevisedSimplex::score(int Col) const {
  if (Status[Col] == ColState::Basic || Lo[Col] == Up[Col])
    return 0.0;
  switch (Status[Col]) {
  case ColState::AtLower:
    return -Dj[Col]; // Improves by increasing.
  case ColState::AtUpper:
    return Dj[Col]; // Improves by decreasing.
  case ColState::Free:
    return std::abs(Dj[Col]);
  case ColState::Basic:
    break;
  }
  return 0.0;
}

int SparseRevisedSimplex::chooseEntering(Pricing Mode) {
  if (Mode == Pricing::Bland) {
    // Anti-cycling mode: smallest eligible index, full scan.
    for (int Col = 0; Col < NumCols; ++Col)
      if (score(Col) > OptsP->OptTol)
        return Col;
    return -1;
  }

  if (Mode == Pricing::Dantzig) {
    // Degenerate-streak escalation: a full most-negative scan, exactly
    // the dense engine's pricing. The candidate window's locally-best
    // choice can stall indefinitely on a massively degenerate vertex
    // (phase-1 bases of the paper's structured models) where the
    // global best walks off the plateau; the stale window is dropped
    // so partial pricing restarts fresh once the streak breaks.
    CandList.clear();
    double BestScore = OptsP->OptTol;
    int Best = -1;
    for (int Col = 0; Col < NumCols; ++Col) {
      const double S = score(Col);
      if (S > BestScore) {
        BestScore = S;
        Best = Col;
      }
    }
    return Best;
  }

  // Candidate-list partial pricing: re-price the surviving candidates
  // first; only when none is still attractive, refill the list from a
  // rotating scan over all columns (a full wrap without finding any
  // eligible column proves optimality).
  double BestScore = OptsP->OptTol;
  int Best = -1;
  size_t Keep = 0;
  for (int J : CandList) {
    const double S = score(J);
    if (S > OptsP->OptTol) {
      CandList[Keep++] = J;
      if (S > BestScore) {
        BestScore = S;
        Best = J;
      }
    }
  }
  CandList.resize(Keep);
  if (Best >= 0)
    return Best;

  CandList.clear();
  for (int Scanned = 0; Scanned < NumCols; ++Scanned) {
    const int Col = ScanCursor;
    if (++ScanCursor >= NumCols)
      ScanCursor = 0;
    const double S = score(Col);
    if (S <= OptsP->OptTol)
      continue;
    CandList.push_back(Col);
    if (S > BestScore) {
      BestScore = S;
      Best = Col;
    }
    if (static_cast<int>(CandList.size()) >= CandListMax)
      break;
  }
  return Best;
}

LpStatus SparseRevisedSimplex::primalIterate(bool PhaseOne) {
  rebuildDj();
  CandList.clear();
  int DegenerateRun = 0;
  bool Bland = false;
  for (;;) {
    if (budgetExceeded())
      return LpStatus::IterationLimit;

    const int Enter = chooseEntering(
        Bland ? Pricing::Bland
        : DegenerateRun > DegeneratePricingLimit ? Pricing::Dantzig
                                                 : Pricing::Partial);
    if (Enter < 0)
      return LpStatus::Optimal;

    // Direction the entering variable moves.
    double Dir = 1.0;
    if (Status[Enter] == ColState::AtUpper)
      Dir = -1.0;
    else if (Status[Enter] == ColState::Free)
      Dir = Dj[Enter] < 0 ? 1.0 : -1.0;

    // w = B^-1 a_e: the pivot column in the current basis.
    WCol.clear();
    forEachColEntry(Enter, [&](int R, double V) { WCol.add(R, V); });
    Lu.ftran(WCol);

    // Ratio test over the pivot column's nonzeros only; same step
    // bound, tie-breaks, and bound-flip handling as the dense engine.
    double BestT = Up[Enter] - Lo[Enter]; // May be +inf.
    int LeaveRow = -1;
    double LeavePivot = 0.0;
    bool LeaveAtUpper = false;
    for (int Pos : WCol.Idx) {
      const double Alpha = WCol.Val[Pos];
      if (std::abs(Alpha) <= OptsP->PivotTol)
        continue;
      const double Rate = -Dir * Alpha; // d(XB[Pos]) / dStep.
      const int BV = BasisCol[Pos];
      double T;
      bool HitsUpper;
      if (Rate < 0) {
        if (!std::isfinite(Lo[BV]))
          continue;
        T = (XB[Pos] - Lo[BV]) / -Rate;
        HitsUpper = false;
      } else {
        if (!std::isfinite(Up[BV]))
          continue;
        T = (Up[BV] - XB[Pos]) / Rate;
        HitsUpper = true;
      }
      if (T < 0)
        T = 0; // Roundoff pushed a basic value slightly out of bounds.
      bool Take = false;
      if (T < BestT - 1e-12) {
        Take = true;
      } else if (LeaveRow >= 0 && T <= BestT + 1e-12) {
        // Order-independent tie-break: WCol.Idx lists the pivot
        // column's nonzeros in scatter order, so "first seen wins"
        // would pick an arbitrary row where the dense engine's
        // ascending scan picks the lowest. Maximize (|alpha|, -row)
        // lexicographically instead, which reproduces the dense
        // choice and keeps the B&B dives of the two engines on the
        // same degenerate vertices.
        Take = Bland ? BV < BasisCol[LeaveRow]
                     : (std::abs(Alpha) > std::abs(LeavePivot) ||
                        (std::abs(Alpha) == std::abs(LeavePivot) &&
                         Pos < LeaveRow));
      }
      if (Take) {
        BestT = std::min(BestT, T);
        LeaveRow = Pos;
        LeavePivot = Alpha;
        LeaveAtUpper = HitsUpper;
      }
    }

    if (LeaveRow < 0 && !std::isfinite(BestT)) {
      assert(!PhaseOne && "phase-1 objective is bounded below by zero");
      return LpStatus::Unbounded;
    }

    ++Iters;
    if (BestT <= OptsP->FeasTol) {
      ++Degenerate;
      if (++DegenerateRun > OptsP->DegenerateLimit)
        Bland = true;
    } else {
      DegenerateRun = 0;
      Bland = false;
    }

    // Apply the step to the basic values (pivot-column nonzeros only).
    if (BestT > 0)
      for (int Pos : WCol.Idx) {
        const double Alpha = WCol.Val[Pos];
        if (Alpha != 0.0)
          XB[Pos] -= Dir * BestT * Alpha;
      }

    if (LeaveRow < 0) {
      // Pure bound flip: the entering variable moves to its other bound.
      ++Flips;
      assert(std::isfinite(BestT) && "flip distance must be finite");
      Status[Enter] = Status[Enter] == ColState::AtLower
                          ? ColState::AtUpper
                          : ColState::AtLower;
      continue;
    }

    // Pivot: Enter becomes basic in LeaveRow. The alpha row (for the
    // reduced-cost update) must come from the pre-pivot basis.
    computeAlphaRow(LeaveRow);
    const int Leave = BasisCol[LeaveRow];
    const double EnterValue = restingValue(Enter) + Dir * BestT;
    Status[Leave] = LeaveAtUpper ? ColState::AtUpper : ColState::AtLower;
    Status[Enter] = ColState::Basic;
    BasisCol[LeaveRow] = Enter;
    XB[LeaveRow] = EnterValue;
    if (!commitPivot(LeaveRow, Enter))
      return LpStatus::IterationLimit;

    // Periodically flush floating-point drift in the basic values.
    if (Iters % 256 == 0)
      refreshBasicValues();
  }
}

LpStatus SparseRevisedSimplex::dualIterate() {
  int DegenerateRun = 0;
  bool Bland = false;
  for (;;) {
    if (budgetExceeded())
      return LpStatus::IterationLimit;

    // Leaving row: the most-violated basic variable.
    int LeaveRow = -1;
    double BestViol = OptsP->FeasTol;
    bool ViolUpper = false;
    for (int Row = 0; Row < NumRows; ++Row) {
      const int BV = BasisCol[Row];
      const double V = XB[Row];
      const double Below = Lo[BV] - V;
      const double Above = V - Up[BV];
      if (Below > BestViol) {
        BestViol = Below;
        LeaveRow = Row;
        ViolUpper = false;
      }
      if (Above > BestViol) {
        BestViol = Above;
        LeaveRow = Row;
        ViolUpper = true;
      }
    }
    if (LeaveRow < 0)
      return LpStatus::Optimal; // Primal feasible again.

    // Dual ratio test over the (hyper-sparse) pivot row; mirrors the
    // dense engine's candidate filter, ratio, and tie-breaks.
    computeAlphaRow(LeaveRow);
    int Enter = -1;
    double BestRatio = infinity();
    double BestAlpha = 0.0;
    double EnterDir = 0.0;
    for (int Col : AlphaRow.Idx) {
      if (Status[Col] == ColState::Basic || Lo[Col] == Up[Col])
        continue;
      const double Alpha = AlphaRow.Val[Col];
      if (std::abs(Alpha) <= OptsP->PivotTol)
        continue;
      // Moving Col by t*D changes XB[LeaveRow] by -t*D*Alpha; a violated
      // upper bound needs a decrease, a lower an increase.
      double D;
      if (Status[Col] == ColState::Free) {
        D = ViolUpper ? (Alpha > 0 ? 1.0 : -1.0) : (Alpha > 0 ? -1.0 : 1.0);
      } else {
        D = Status[Col] == ColState::AtLower ? 1.0 : -1.0;
        const bool Helps = ViolUpper ? D * Alpha > 0 : D * Alpha < 0;
        if (!Helps)
          continue;
      }
      const double Cr = Dj[Col];
      const double AbsCr = Status[Col] == ColState::AtLower
                               ? std::max(0.0, Cr)
                               : Status[Col] == ColState::AtUpper
                                     ? std::max(0.0, -Cr)
                                     : std::abs(Cr);
      const double Ratio = AbsCr / std::abs(Alpha);
      bool Take = false;
      if (Enter < 0 || Ratio < BestRatio - 1e-12)
        Take = true;
      else if (Ratio <= BestRatio + 1e-12)
        // Order-independent tie-break (AlphaRow.Idx is in scatter
        // order): maximize (|alpha|, -column) lexicographically, the
        // choice the dense engine's ascending column scan makes. On
        // the zero-objective LPs of feasibility-only scheduling MIPs
        // every ratio ties at 0 and the pivot row is all +-1, so this
        // is what keeps both engines diving through the same vertices.
        Take = Bland ? Col < Enter
                     : (std::abs(Alpha) > std::abs(BestAlpha) ||
                        (std::abs(Alpha) == std::abs(BestAlpha) &&
                         Col < Enter));
      if (Take) {
        Enter = Col;
        BestRatio = std::min(Ratio, BestRatio);
        BestAlpha = Alpha;
        EnterDir = D;
      }
    }
    if (Enter < 0) {
      // No nonbasic movement can repair the violated row: the row is a
      // Farkas certificate of an empty bound box.
      recordFarkasRow(LeaveRow);
      return LpStatus::Infeasible;
    }

    ++Iters;
    ++DualIters;
    if (BestRatio <= OptsP->OptTol) {
      ++Degenerate;
      if (++DegenerateRun > OptsP->DegenerateLimit)
        Bland = true;
    } else {
      DegenerateRun = 0;
      Bland = false;
    }

    // Step length drives the leaving variable exactly onto its violated
    // bound; apply it along w = B^-1 a_e.
    WCol.clear();
    forEachColEntry(Enter, [&](int R, double V) { WCol.add(R, V); });
    Lu.ftran(WCol);
    const double T = BestViol / std::abs(AlphaRow.Val[Enter]);
    for (int Pos : WCol.Idx) {
      const double Alpha = WCol.Val[Pos];
      if (Alpha != 0.0)
        XB[Pos] -= EnterDir * T * Alpha;
    }

    const int Leave = BasisCol[LeaveRow];
    const double EnterValue = restingValue(Enter) + EnterDir * T;
    Status[Leave] = ViolUpper ? ColState::AtUpper : ColState::AtLower;
    Status[Enter] = ColState::Basic;
    BasisCol[LeaveRow] = Enter;
    XB[LeaveRow] = EnterValue;
    if (!commitPivot(LeaveRow, Enter))
      return LpStatus::IterationLimit;

    if (Iters % 256 == 0)
      refreshBasicValues();
  }
}

LpStatus SparseRevisedSimplex::run() {
  struct Flusher {
    SparseRevisedSimplex *S;
    ~Flusher() { S->flushFactorStats(); }
  } F{this};

  if (NumCols > FirstArtificial) {
    // Phase 1: minimize the sum of the artificial columns.
    std::fill(Cost.begin(), Cost.end(), 0.0);
    for (int Col = FirstArtificial; Col < NumCols; ++Col)
      Cost[Col] = 1.0;
    LpStatus S = primalIterate(/*PhaseOne=*/true);
    Phase1Iters = Iters;
    if (S == LpStatus::IterationLimit)
      return S;
    assert(S == LpStatus::Optimal && "phase 1 cannot be unbounded");
    refreshBasicValues();
    double Infeasibility = 0.0;
    for (int Row = 0; Row < NumRows; ++Row)
      if (BasisCol[Row] >= FirstArtificial)
        Infeasibility += std::max(0.0, XB[Row]);
    if (Infeasibility > 1e-6) {
      // Each stuck artificial pins a row the bounds cannot satisfy; the
      // union of their tableau rows' slack supports is the certificate.
      for (int Row = 0; Row < NumRows; ++Row)
        if (BasisCol[Row] >= FirstArtificial && XB[Row] > 1e-6)
          recordFarkasRow(Row);
      return LpStatus::Infeasible;
    }
    // Pin the artificials at zero for phase 2; basic artificials at
    // value ~zero are harmless behind their [0,0] bounds.
    for (int Col = FirstArtificial; Col < NumCols; ++Col) {
      Lo[Col] = 0.0;
      Up[Col] = 0.0;
    }
  }

  // Phase 2: the real objective on the structural columns.
  std::fill(Cost.begin(), Cost.end(), 0.0);
  std::copy(Obj.begin(), Obj.end(), Cost.begin());
  LpStatus S = primalIterate(/*PhaseOne=*/false);
  if (S == LpStatus::Optimal)
    refreshBasicValues();
  return S;
}

LpStatus SparseRevisedSimplex::runWarm() {
  struct Flusher {
    SparseRevisedSimplex *S;
    ~Flusher() { S->flushFactorStats(); }
  } F{this};

  LpStatus S = dualIterate();
  if (S != LpStatus::Optimal)
    return S;
  // Primal clean-up from freshly rebuilt reduced costs — usually zero
  // pivots; certifies optimality against drift-free Dj.
  S = primalIterate(/*PhaseOne=*/false);
  if (S == LpStatus::Optimal)
    refreshBasicValues();
  return S;
}

bool SparseRevisedSimplex::extractBasis(Basis &Out) {
  // Drive any residual degenerate artificial out of the basis with a
  // zero-step pivot, as the dense engine does, so the exported basis
  // only references structural and slack columns.
  for (int Row = 0; Row < NumRows; ++Row) {
    if (BasisCol[Row] < FirstArtificial)
      continue;
    computeAlphaRow(Row);
    int Best = -1;
    double BestMag = OptsP->PivotTol;
    for (int J : AlphaRow.Idx) {
      if (J >= FirstArtificial || Status[J] == ColState::Basic)
        continue;
      const double Mag = std::abs(AlphaRow.Val[J]);
      if (Mag > BestMag) {
        BestMag = Mag;
        Best = J;
      }
    }
    if (Best < 0) {
      flushFactorStats();
      return false; // Structurally redundant row; not exportable.
    }
    WCol.clear();
    forEachColEntry(Best, [&](int R, double V) { WCol.add(R, V); });
    Lu.ftran(WCol);
    const double EnterValue = restingValue(Best);
    Status[BasisCol[Row]] = ColState::AtLower; // Artificial rests at [0,0].
    Status[Best] = ColState::Basic;
    BasisCol[Row] = Best;
    XB[Row] = EnterValue;
    if (!commitPivot(Row, Best)) {
      flushFactorStats();
      return false;
    }
  }
  flushFactorStats();

  Out.ColStatus.resize(FirstArtificial);
  for (int Col = 0; Col < FirstArtificial; ++Col)
    Out.ColStatus[Col] = static_cast<uint8_t>(Status[Col]);
  Out.BasicCols.assign(BasisCol.begin(), BasisCol.end());
  Out.Id = 0; // Caller stamps.
  return true;
}

void SparseRevisedSimplex::stamp(Basis &B) {
  B.Id = detail::takeBasisStamp();
  CurrentStamp = B.Id;
}

std::vector<double> SparseRevisedSimplex::structuralValues() const {
  std::vector<double> X(NumStruct, 0.0);
  for (int Col = 0; Col < NumStruct; ++Col)
    if (Status[Col] != ColState::Basic)
      X[Col] = restingValue(Col);
  for (int Row = 0; Row < NumRows; ++Row)
    if (BasisCol[Row] < NumStruct)
      X[BasisCol[Row]] = XB[Row];
  return X;
}

void SparseRevisedSimplex::snapNonbasicToBounds() {
  for (int Col = 0; Col < NumCols; ++Col) {
    switch (Status[Col]) {
    case ColState::Basic:
      continue;
    case ColState::AtLower:
      if (std::isfinite(Lo[Col]))
        continue;
      break;
    case ColState::AtUpper:
      if (std::isfinite(Up[Col]))
        continue;
      break;
    case ColState::Free:
      if (!std::isfinite(Lo[Col]) && !std::isfinite(Up[Col]))
        continue;
      break;
    }
    const bool LoOk = std::isfinite(Lo[Col]), UpOk = std::isfinite(Up[Col]);
    if (LoOk && (Dj[Col] >= 0.0 || !UpOk))
      Status[Col] = ColState::AtLower;
    else if (UpOk)
      Status[Col] = ColState::AtUpper;
    else
      Status[Col] = ColState::Free;
  }
}

bool SparseRevisedSimplex::dualFeasible() const {
  for (int Col = 0; Col < NumCols; ++Col) {
    if (Status[Col] == ColState::Basic || Lo[Col] == Up[Col])
      continue;
    const double Cr = Dj[Col];
    switch (Status[Col]) {
    case ColState::AtLower:
      if (Cr < -DualFeasTol)
        return false;
      break;
    case ColState::AtUpper:
      if (Cr > DualFeasTol)
        return false;
      break;
    case ColState::Free:
      if (std::abs(Cr) > DualFeasTol)
        return false;
      break;
    case ColState::Basic:
      break;
    }
  }
  return true;
}

void SparseRevisedSimplex::flushFactorStats() {
  StatFtran += static_cast<int64_t>(Lu.Ftrans - FtranMark);
  StatFtranSparse += static_cast<int64_t>(Lu.SparseFtrans - SparseFtranMark);
  StatBtran += static_cast<int64_t>(Lu.Btrans - BtranMark);
  StatBtranSparse += static_cast<int64_t>(Lu.SparseBtrans - SparseBtranMark);
  FtranMark = Lu.Ftrans;
  SparseFtranMark = Lu.SparseFtrans;
  BtranMark = Lu.Btrans;
  SparseBtranMark = Lu.SparseBtrans;
}
