//===- lp/SparseRevisedSimplex.h - Sparse revised simplex --------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse revised simplex engine for the bounded-variable LPs of the
/// scheduling formulations. Where the dense engine (lp/Simplex.cpp)
/// carries an explicit m x n tableau and pays O(m*n) per pivot, this
/// engine keeps only:
///
///  * the model's constraint matrix, compiled once per solve sequence
///    into an immutable CSC+CSR SparseMatrix (keyed on the model's
///    mutation revision, so branch-and-bound's out-of-band bound
///    changes never force a recompile);
///  * the basis as an LU factorization with product-form eta updates
///    (lp/LuFactor.h), refactorized when the eta file passes its
///    count/fill thresholds or a pivot is numerically unacceptable;
///  * the reduced-cost vector, maintained incrementally from the
///    BTRAN'd pivot row, with candidate-list partial pricing in place
///    of the full Dantzig scan (and a full-scan Bland mode after a run
///    of degenerate pivots, for termination).
///
/// Per-pivot work is then proportional to the nonzeros actually touched
/// — on the paper's 0-1-structured models, a small constant times the
/// pivot column/row length.
///
/// The class mirrors the dense Tableau's lifecycle (initCold /
/// tryInitWarm / run / runWarm / extractBasis) so SimplexSolver can
/// drive either engine through one code path; bases are interchangeable
/// between engines (same ColState encoding), so a warm start can cross
/// the engine seam via the refactorization path.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_LP_SPARSEREVISEDSIMPLEX_H
#define MODSCHED_LP_SPARSEREVISEDSIMPLEX_H

#include "lp/LuFactor.h"
#include "lp/Simplex.h"
#include "lp/SparseMatrix.h"
#include "support/Timer.h"

#include <cstdint>
#include <vector>

namespace modsched {
namespace lp {

struct SolveContext; // lp/SolveContext.h

/// Sparse revised simplex engine (see file comment). One instance lives
/// inside each SimplexWorkspace, persisting the compiled matrix, the
/// factorization, and every scratch buffer across a solve sequence;
/// context-less solves use a throwaway local instance.
class SparseRevisedSimplex {
public:
  /// Installs the per-attempt solve environment (deadline +
  /// cancellation), polled every 64 pivots; null detaches.
  void setContext(const SolveContext *Ctx) { CtxP = Ctx; }

  /// Seeds a cold solve: slack/artificial starting basis for phase 1.
  void initCold(const Model &M, const std::vector<double> &Lower,
                const std::vector<double> &Upper, const SimplexOptions &Opts);

  /// Seeds a warm solve from \p B; false means the caller must fall
  /// back to initCold + run. Mirrors the dense engine: an O(1) reuse
  /// path when this engine still realizes the stamped basis (only the
  /// bounds are rebound; the factorization and reduced costs survive),
  /// otherwise a refactorization of the requested basis from the
  /// compiled matrix. Fails on shape mismatch, a singular basis, or
  /// dual infeasibility beyond tolerance.
  bool tryInitWarm(const Model &M, const std::vector<double> &Lower,
                   const std::vector<double> &Upper, const Basis &B,
                   const SimplexOptions &Opts);

  /// Runs phase 1 (if artificials exist) and phase 2.
  LpStatus run();

  /// Dual simplex until primal feasibility, then a primal clean-up
  /// pass. Requires tryInitWarm to have succeeded.
  LpStatus runWarm();

  /// Exports the current (optimal) basis; false when a degenerate
  /// basic artificial cannot be pivoted out.
  bool extractBasis(Basis &Out);

  /// Stamps \p B and this engine's state with a fresh shared identity
  /// (same stamp space as the dense engine).
  void stamp(Basis &B);

  /// Marks the engine state as not realizing any exported basis.
  void invalidateStamp() { CurrentStamp = 0; }

  /// Extracts the values of the structural variables.
  std::vector<double> structuralValues() const;

  int64_t iterations() const { return Iters; }
  int64_t degeneratePivots() const { return Degenerate; }
  int64_t boundFlips() const { return Flips; }
  /// LU refactorizations (the sparse meaning of
  /// LpResult::Refactorizations).
  int64_t refactorizations() const { return Refactors; }
  int64_t phase1Iterations() const { return Phase1Iters; }
  int64_t dualIterations() const { return DualIters; }
  /// Product-form eta nonzeros appended during this solve.
  int64_t etaNonzeros() const { return EtaNnzTotal; }
  /// True when the last tryInitWarm took the refactorization path
  /// (counted as a basis rebuild by the caller's telemetry).
  bool didRebuildBasis() const { return DidRebuild; }
  /// Constraint rows supporting an Infeasible exit (see
  /// LpResult::FarkasRows); populated only under
  /// SimplexOptions::CollectFarkas.
  const std::vector<int> &farkasRows() const { return FarkasSupport; }

private:
  /// Per-solve bookkeeping shared by initCold / tryInitWarm.
  void beginSolve(const Model &M, const SimplexOptions &Opts);

  /// Compiles the constraint matrix if stale and lays out bounds,
  /// objective, slack senses, and row RHS for \p M (no artificials).
  void layoutColumns(const Model &M, const std::vector<double> &Lower,
                     const std::vector<double> &Upper);

  /// Applies \p F(row, value) to every entry of column \p Col
  /// ([structural | slack | artificial] layout).
  template <typename FnT> void forEachColEntry(int Col, FnT &&F) const {
    if (Col < NumStruct) {
      for (int P = A.ColStart[Col]; P < A.ColStart[Col + 1]; ++P)
        F(A.RowIndex[P], A.Value[P]);
    } else if (Col < FirstArtificial) {
      F(Col - NumStruct, 1.0);
    } else {
      const int K = Col - FirstArtificial;
      F(ArtRow[K], ArtSign[K]);
    }
  }

  /// Gathers the basis columns and (re)factorizes; false on a singular
  /// basis. Resets the eta file and the pivots-since-factor clock.
  bool factorizeBasis();

  /// Recomputes every basic value XB = B^-1 (b - N x_N), flushing the
  /// drift accumulated by incremental pivot updates.
  void refreshBasicValues();

  /// Rebuilds the full reduced-cost vector Dj from the current Cost
  /// row via one BTRAN of the basic costs.
  void rebuildDj();

  /// Computes AlphaRow = row \p LeaveRow of B^-1 A (all columns) from
  /// one hyper-sparse BTRAN of the unit vector; Rho keeps the BTRAN
  /// image for reuse.
  void computeAlphaRow(int LeaveRow);

  /// Shared pivot commitment: incremental Dj update from AlphaRow, the
  /// LU eta update from WCol, and the refactorization policy. Requires
  /// AlphaRow/WCol for the pre-pivot basis and BasisCol/Status/XB to
  /// already reflect the exchange. False on an unrecoverable numerical
  /// failure.
  bool commitPivot(int LeaveRow, int Enter);

  /// Primal pricing score of \p Col (0 when ineligible).
  double score(int Col) const;

  /// How the primal loop prices entering columns. Escalates on
  /// degenerate streaks: candidate-list partial pricing by default, a
  /// full Dantzig scan (the dense engine's rule) once a streak shows
  /// the candidate window is stalling, and Bland's smallest-index
  /// anti-cycling rule past SimplexOptions::DegenerateLimit.
  enum class Pricing { Partial, Dantzig, Bland };

  /// Entering column for the primal loop under \p Mode. -1 at
  /// optimality.
  int chooseEntering(Pricing Mode);

  /// Primal simplex loop with the current cost row.
  LpStatus primalIterate(bool PhaseOne);

  /// Dual simplex loop until primal feasibility.
  LpStatus dualIterate();

  /// Re-rests nonbasic columns whose resting bound is no longer finite
  /// (or free columns that gained finite bounds).
  void snapNonbasicToBounds();

  /// True when every nonbasic reduced cost has the required sign.
  bool dualFeasible() const;

  /// Resting value of nonbasic column \p Col.
  double restingValue(int Col) const;

  /// Pivot/deadline/cancellation budget, polled every 64 pivots.
  bool budgetExceeded() const;

  /// Under SimplexOptions::CollectFarkas, appends the slack support of
  /// tableau row \p Row (one BTRAN via computeAlphaRow) to
  /// FarkasSupport. Clobbers AlphaRow/Rho — only call at an Infeasible
  /// exit.
  void recordFarkasRow(int Row);

  /// Publishes the LuFactor solve tallies accumulated since the last
  /// flush to the lp/factor.* telemetry counters.
  void flushFactorStats();

  const SimplexOptions *OptsP = nullptr;
  const Model *ModelP = nullptr;
  const SolveContext *CtxP = nullptr;

  SparseMatrix A; ///< Compiled constraint matrix (persists solves).
  LuFactor Lu;    ///< Factorized basis + eta file.

  int NumRows = 0;
  int NumStruct = 0;
  int FirstArtificial = 0; ///< == NumStruct + NumRows.
  int NumCols = 0;         ///< structural + slack + artificial.

  std::vector<double> Lo, Up;    ///< Column bounds.
  std::vector<double> Obj;       ///< Model objective (structural).
  std::vector<double> Cost;      ///< Current-phase costs, all columns.
  std::vector<double> Dj;        ///< Reduced costs, all columns.
  std::vector<ColState> Status;  ///< Per-column status.
  std::vector<int> BasisCol;     ///< BasisCol[row] = basic column.
  std::vector<double> XB;        ///< Value of BasisCol[row].
  std::vector<double> RowRhs;    ///< Constraint right-hand sides.
  std::vector<int> ArtRow;       ///< Constraint row per artificial.
  std::vector<double> ArtSign;   ///< +-1 column sign per artificial.

  /// Scratch (persist across pivots; cleared, never reallocated).
  ScatteredVector WCol;     ///< FTRAN of the entering column.
  ScatteredVector Rho;      ///< BTRAN of the leaving unit vector.
  ScatteredVector AlphaRow; ///< Pivot row over all columns.
  ScatteredVector RhsWork;  ///< refreshBasicValues right-hand side.
  std::vector<int> BStart, BRows; ///< Basis gather buffers.
  std::vector<double> BVals;
  std::vector<int> CandList; ///< Partial-pricing candidate list.
  int ScanCursor = 0;        ///< Rotating pricing-scan position.
  /// Farkas certificate row support (see farkasRows()).
  std::vector<int> FarkasSupport;

  int64_t Iters = 0;
  int64_t Degenerate = 0;
  int64_t Flips = 0;
  int64_t Refactors = 0;
  int64_t Phase1Iters = 0;
  int64_t DualIters = 0;
  int64_t EtaNnzTotal = 0;
  int64_t PivotsSinceFactor = 0;
  bool DidRebuild = false;
  /// Id of the exported basis this engine state realizes (0 = none).
  uint64_t CurrentStamp = 0;
  /// LuFactor tally marks for flushFactorStats deltas.
  uint64_t FtranMark = 0, SparseFtranMark = 0;
  uint64_t BtranMark = 0, SparseBtranMark = 0;
  Stopwatch Clock;
};

} // namespace lp
} // namespace modsched

#endif // MODSCHED_LP_SPARSEREVISEDSIMPLEX_H
