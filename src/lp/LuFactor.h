//===- lp/LuFactor.h - LU-factorized basis with eta updates ------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse LU factorization of a simplex basis, with product-form eta
/// updates between refactorizations and hyper-sparse FTRAN/BTRAN.
///
/// The factorization is P·B·Q = L·U computed by left-looking
/// Gilbert-Peierls elimination with threshold-Markowitz pivoting:
/// columns are preordered by ascending nonzero count, and each step
/// picks — among numerically eligible rows (|x| within a factor 10 of
/// the column max) — the row with the fewest static nonzeros, which
/// keeps fill-in near zero on the paper's {-1, 0, +1} matrices.
///
/// Basis exchanges append product-form eta vectors (`update`): with
/// B_t = B_{t-1}·E_t, FTRAN applies the LU solve then the eta inverses
/// in order, BTRAN applies the eta transpose-inverses in reverse order
/// then the LU transpose solve. The owner refactorizes when the eta
/// file grows past its thresholds (see SparseRevisedSimplex).
///
/// Index spaces: FTRAN maps a vector indexed by *constraint row* (a
/// column of A) to one indexed by *basis position*; BTRAN maps basis
/// position to constraint row. Both solves walk only nonzero positions
/// when the right-hand side is sparse (reachability over the L/U
/// dependency graphs), falling back to a full permuted scan otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_LP_LUFACTOR_H
#define MODSCHED_LP_LUFACTOR_H

#include <cstdint>
#include <utility>
#include <vector>

namespace modsched {
namespace lp {

/// Sparse vector with dense random access, an explicit (unordered)
/// nonzero index list, and O(nnz) clearing. The dense array is all
/// zeros outside the index list, so reads never need the membership
/// flag; writes go through add/set to keep the list consistent.
struct ScatteredVector {
  std::vector<double> Val;
  std::vector<char> In;
  std::vector<int> Idx;

  /// Clears and resizes to dimension \p N.
  void resize(int N) {
    clear();
    Val.assign(N, 0.0);
    In.assign(N, 0);
  }

  /// Removes every nonzero in O(nnz).
  void clear() {
    for (int I : Idx) {
      Val[I] = 0.0;
      In[I] = 0;
    }
    Idx.clear();
  }

  /// Accumulates \p V into position \p I.
  void add(int I, double V) {
    if (!In[I]) {
      In[I] = 1;
      Idx.push_back(I);
      Val[I] = V;
    } else {
      Val[I] += V;
    }
  }

  /// Overwrites position \p I with \p V.
  void set(int I, double V) {
    if (!In[I]) {
      In[I] = 1;
      Idx.push_back(I);
    }
    Val[I] = V;
  }

  int size() const { return static_cast<int>(Val.size()); }
  int nonzeros() const { return static_cast<int>(Idx.size()); }
};

/// LU-factorized basis representation (see file comment).
class LuFactor {
public:
  /// Factors the Dim x Dim basis given in CSC form: column \p C of the
  /// basis occupies positions [ColStart[C], ColStart[C+1]) of
  /// \p Rows / \p Vals, where row indices are constraint rows and the
  /// column order is basis-position order. Returns false (and leaves
  /// the factorization invalid) if the matrix is numerically singular
  /// at \p PivotTol. Resets the eta file and the solve tallies'
  /// high-water bookkeeping is left to the caller.
  bool factor(int Dim, const std::vector<int> &ColStart,
              const std::vector<int> &Rows, const std::vector<double> &Vals,
              double PivotTol);

  /// Solves B·x = b in place: \p X enters indexed by constraint row
  /// and leaves indexed by basis position.
  void ftran(ScatteredVector &X);

  /// Solves B^T·y = c in place: \p X enters indexed by basis position
  /// and leaves indexed by constraint row.
  void btran(ScatteredVector &X);

  /// Records the basis exchange "position \p Pos leaves, a column with
  /// FTRAN image \p W enters" as a product-form eta. Returns false —
  /// leaving the factorization unchanged — when |W[Pos]| <= PivotTol,
  /// in which case the caller must refactorize.
  bool update(int Pos, const ScatteredVector &W, double PivotTol);

  /// Marks the factorization stale (e.g. after the basis changed
  /// without a successful update).
  void invalidate() { Valid = false; }

  bool valid() const { return Valid; }
  int dim() const { return Dim; }

  /// Number of eta vectors appended since the last factor().
  int etaCount() const { return static_cast<int>(EtaPos.size()); }
  /// Total stored eta entries (pivots included).
  int etaNonzeros() const {
    return static_cast<int>(EtaIdx.size() + EtaPos.size());
  }
  /// Stored L+U entries, diagonal included.
  int factorNonzeros() const {
    return static_cast<int>(LRow.size() + URow.size()) + Dim;
  }
  /// factorNonzeros() minus the basis' own nonzero count.
  int fillNonzeros() const { return Fill; }

  /// Solve tallies for telemetry; owned by the caller (read deltas or
  /// zero between solves), never reset by this class' methods except
  /// that they keep counting across factor() calls.
  uint64_t Ftrans = 0;
  uint64_t SparseFtrans = 0;
  uint64_t Btrans = 0;
  uint64_t SparseBtrans = 0;

private:
  /// True when nnz-many seeds are few enough to justify reachability.
  bool useSparseSolve(int Nnz) const { return Nnz * 8 < Dim; }

  /// Collects into Reach every step reachable from the marked seeds
  /// through the CSC-ish graph (Start, Adj) where Adj maps a step's
  /// entries to successor steps via \p ToStep (nullptr = identity).
  void collectReach(const std::vector<int> &Start, const std::vector<int> &Adj,
                    const std::vector<int> *ToStep);

  int Dim = 0;
  bool Valid = false;
  int Fill = 0;

  /// RowOf[k] = constraint row pivoted at step k; Pinv its inverse.
  std::vector<int> RowOf, Pinv;
  /// ColOf[k] = basis position eliminated at step k; StepOfPos inverse.
  std::vector<int> ColOf, StepOfPos;

  /// L columns (unit diagonal implicit), row indices in constraint-row
  /// space; column k holds the multipliers of elimination step k.
  std::vector<int> LStart, LRow;
  std::vector<double> LVal;
  /// U columns; URow holds *step* indices j < k, diagonal separate.
  std::vector<int> UStart, URow;
  std::vector<double> UVal;
  std::vector<double> UDiag;

  /// Row (transposed) forms, built once after factorization so BTRAN
  /// can run saxpy-style: Lt row k lists (step j < k, multiplier) for
  /// constraint row RowOf[k]; Ut row k lists (step j > k, value).
  std::vector<int> LtStart, LtCol;
  std::vector<double> LtVal;
  std::vector<int> UtStart, UtCol;
  std::vector<double> UtVal;

  /// Product-form eta file, in application order. Eta e replaces basis
  /// position EtaPos[e]; EtaPivot[e] is the pivot element, off-pivot
  /// entries live in [EtaStart[e], EtaStart[e+1]).
  std::vector<int> EtaStart, EtaIdx, EtaPos;
  std::vector<double> EtaVal, EtaPivot;

  /// Scratch: DFS stack / reachable steps / visit stamps / permute
  /// buffer, reused across solves to stay allocation-free.
  std::vector<int> Stack, Reach;
  std::vector<int> Mark;
  int CurMark = 0;
  std::vector<std::pair<int, double>> PermBuf;
  ScatteredVector Work;
  std::vector<int> RowCount;
};

} // namespace lp
} // namespace modsched

#endif // MODSCHED_LP_LUFACTOR_H
