//===- graph/DependenceGraph.cpp - Loop dependence graphs -----------------===//

#include "graph/DependenceGraph.h"

#include <cassert>
#include <cstdio>

using namespace modsched;

int DependenceGraph::addOperation(std::string Name, int OpClass) {
  Ops.push_back({std::move(Name), OpClass});
  RegisterOf.push_back(-1);
  return static_cast<int>(Ops.size()) - 1;
}

void DependenceGraph::addSchedEdge(int Src, int Dst, int Latency,
                                   int Distance) {
  assert(Src >= 0 && Src < numOperations() && "bad edge source");
  assert(Dst >= 0 && Dst < numOperations() && "bad edge destination");
  assert(Distance >= 0 && "dependence distance must be non-negative");
  SchedEdges.push_back({Src, Dst, Latency, Distance});
}

int DependenceGraph::ensureRegister(int Def) {
  assert(Def >= 0 && Def < numOperations() && "bad register definer");
  if (RegisterOf[Def] >= 0)
    return RegisterOf[Def];
  Registers.push_back({Def, {}});
  RegisterOf[Def] = static_cast<int>(Registers.size()) - 1;
  return RegisterOf[Def];
}

void DependenceGraph::addFlowDependence(int Def, int Use, int Latency,
                                        int Distance) {
  addSchedEdge(Def, Use, Latency, Distance);
  int Reg = ensureRegister(Def);
  Registers[Reg].Uses.push_back({Use, Distance});
}

std::optional<std::string> DependenceGraph::validate() const {
  char Buf[256];
  for (const SchedEdge &E : SchedEdges) {
    if (E.Src < 0 || E.Src >= numOperations() || E.Dst < 0 ||
        E.Dst >= numOperations()) {
      std::snprintf(Buf, sizeof(Buf), "edge (%d -> %d) out of range", E.Src,
                    E.Dst);
      return std::string(Buf);
    }
    if (E.Distance < 0) {
      std::snprintf(Buf, sizeof(Buf),
                    "edge (%s -> %s) has negative distance %d",
                    Ops[E.Src].Name.c_str(), Ops[E.Dst].Name.c_str(),
                    E.Distance);
      return std::string(Buf);
    }
  }
  std::vector<bool> SeenDef(Ops.size(), false);
  for (const VirtualRegister &R : Registers) {
    if (R.Def < 0 || R.Def >= numOperations())
      return std::string("register with out-of-range definer");
    if (SeenDef[R.Def]) {
      std::snprintf(Buf, sizeof(Buf), "operation %s defines two registers",
                    Ops[R.Def].Name.c_str());
      return std::string(Buf);
    }
    SeenDef[R.Def] = true;
    for (const RegisterUse &U : R.Uses) {
      if (U.Consumer < 0 || U.Consumer >= numOperations())
        return std::string("register use with out-of-range consumer");
      if (U.Distance < 0)
        return std::string("register use with negative distance");
    }
  }
  return std::nullopt;
}

std::string DependenceGraph::toString() const {
  std::string Out = "loop " + LoopName + "\n";
  char Buf[256];
  for (size_t I = 0; I < Ops.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "  op %zu %s class=%d\n", I,
                  Ops[I].Name.c_str(), Ops[I].OpClass);
    Out += Buf;
  }
  for (const SchedEdge &E : SchedEdges) {
    std::snprintf(Buf, sizeof(Buf), "  edge %s -> %s latency=%d omega=%d\n",
                  Ops[E.Src].Name.c_str(), Ops[E.Dst].Name.c_str(), E.Latency,
                  E.Distance);
    Out += Buf;
  }
  for (const VirtualRegister &R : Registers) {
    std::snprintf(Buf, sizeof(Buf), "  vreg def=%s uses=",
                  Ops[R.Def].Name.c_str());
    Out += Buf;
    for (size_t U = 0; U < R.Uses.size(); ++U) {
      std::snprintf(Buf, sizeof(Buf), "%s%s@%d", U ? "," : "",
                    Ops[R.Uses[U].Consumer].Name.c_str(), R.Uses[U].Distance);
      Out += Buf;
    }
    Out += "\n";
  }
  return Out;
}
