//===- graph/DependenceGraph.h - Loop dependence graphs ---------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop representation of the paper's Section 3: a dependence graph
/// G = {V, Esched, Ereg}. Vertices are operations; scheduling edges carry
/// a latency and an iteration distance (omega); register edges describe
/// data flow carried in virtual registers (one virtual register per
/// value-producing operation, used by any number of consumers, possibly
/// in later iterations).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_GRAPH_DEPENDENCEGRAPH_H
#define MODSCHED_GRAPH_DEPENDENCEGRAPH_H

#include <optional>
#include <string>
#include <vector>

namespace modsched {

/// One operation (a vertex of the dependence graph).
struct Operation {
  std::string Name;
  /// Index into the machine model's operation-class table; decides
  /// resource usage and default latency.
  int OpClass = 0;
};

/// A scheduling edge (i -> j): operation j, Distance iterations later,
/// must start at least Latency cycles after operation i:
///   time_j + Distance * II - time_i >= Latency.
struct SchedEdge {
  int Src = 0;
  int Dst = 0;
  int Latency = 0;
  /// Dependence distance in iterations (omega); >= 0, and every
  /// dependence cycle must have a positive total distance.
  int Distance = 0;
};

/// One use of a virtual register: consumer operation and the iteration
/// distance between definition and use.
struct RegisterUse {
  int Consumer = 0;
  int Distance = 0;
};

/// A virtual register: defined by a unique operation, consumed by Uses.
/// Its lifetime spans from the cycle its definition issues until the
/// cycle of its last use (inclusive), per the paper's Section 2.
struct VirtualRegister {
  int Def = 0;
  std::vector<RegisterUse> Uses;
};

/// A loop body as a dependence graph G = {V, Esched, Ereg}.
class DependenceGraph {
public:
  /// Creates an operation and returns its index.
  int addOperation(std::string Name, int OpClass);

  /// Adds a pure scheduling edge (memory ordering, control, anti/output
  /// dependence...).
  void addSchedEdge(int Src, int Dst, int Latency, int Distance);

  /// Adds a data-flow dependence carried in a register: creates (or
  /// reuses) the virtual register defined by \p Def, records the use, and
  /// adds the matching scheduling edge.
  void addFlowDependence(int Def, int Use, int Latency, int Distance);

  /// Ensures \p Def owns a virtual register (for values that are defined
  /// and stored but never consumed in the loop; they are still live for
  /// one cycle). Returns the register index.
  int ensureRegister(int Def);

  int numOperations() const { return static_cast<int>(Ops.size()); }
  int numSchedEdges() const { return static_cast<int>(SchedEdges.size()); }
  int numRegisters() const { return static_cast<int>(Registers.size()); }

  const Operation &operation(int Op) const { return Ops[Op]; }
  Operation &operation(int Op) { return Ops[Op]; }
  const std::vector<Operation> &operations() const { return Ops; }
  const std::vector<SchedEdge> &schedEdges() const { return SchedEdges; }
  const std::vector<VirtualRegister> &registers() const { return Registers; }

  /// Human-readable loop name (used in reports).
  const std::string &name() const { return LoopName; }
  void setName(std::string Name) { LoopName = std::move(Name); }

  /// Checks structural invariants: indices in range, distances >= 0,
  /// register defs unique, every register use backed by an operation.
  /// Returns a description of the first problem, or nullopt when valid.
  std::optional<std::string> validate() const;

  /// Renders the graph (for debugging and .ddg round-trip tests).
  std::string toString() const;

private:
  std::string LoopName = "loop";
  std::vector<Operation> Ops;
  std::vector<SchedEdge> SchedEdges;
  std::vector<VirtualRegister> Registers;
  /// RegisterOf[op] = register index defined by op, or -1.
  std::vector<int> RegisterOf;
};

} // namespace modsched

#endif // MODSCHED_GRAPH_DEPENDENCEGRAPH_H
