//===- graph/Unroll.cpp - Loop unrolling for fractional II ----------------===//

#include "graph/Unroll.h"

#include <cassert>
#include <vector>

using namespace modsched;

DependenceGraph modsched::unrollLoop(const DependenceGraph &G, int Factor) {
  assert(Factor >= 1 && "unroll factor must be positive");
  int N = G.numOperations();

  // Classify each scheduling edge as register flow or pure ordering, by
  // matching (def, use, distance) records exactly once (the same scheme
  // printDdg uses).
  std::vector<std::vector<std::pair<int, int>>> PendingUses(N);
  for (const VirtualRegister &R : G.registers())
    for (const RegisterUse &U : R.Uses)
      PendingUses[R.Def].push_back({U.Consumer, U.Distance});
  std::vector<bool> IsFlow(G.numSchedEdges(), false);
  for (int E = 0; E < G.numSchedEdges(); ++E) {
    const SchedEdge &Edge = G.schedEdges()[E];
    auto &Uses = PendingUses[Edge.Src];
    for (size_t I = 0; I < Uses.size(); ++I) {
      if (Uses[I].first == Edge.Dst && Uses[I].second == Edge.Distance) {
        Uses.erase(Uses.begin() + I);
        IsFlow[E] = true;
        break;
      }
    }
  }

  DependenceGraph Out;
  Out.setName(G.name() + "-x" + std::to_string(Factor));

  // Copy-major layout: copy u of op i has index u*N + i.
  for (int Copy = 0; Copy < Factor; ++Copy)
    for (int Op = 0; Op < N; ++Op)
      Out.addOperation(G.operation(Op).Name + "#" + std::to_string(Copy),
                       G.operation(Op).OpClass);

  for (int E = 0; E < G.numSchedEdges(); ++E) {
    const SchedEdge &Edge = G.schedEdges()[E];
    for (int Copy = 0; Copy < Factor; ++Copy) {
      int TargetAbs = Copy + Edge.Distance;
      int TargetCopy = TargetAbs % Factor;
      int NewDistance = TargetAbs / Factor;
      int Src = Copy * N + Edge.Src;
      int Dst = TargetCopy * N + Edge.Dst;
      if (IsFlow[E])
        Out.addFlowDependence(Src, Dst, Edge.Latency, NewDistance);
      else
        Out.addSchedEdge(Src, Dst, Edge.Latency, NewDistance);
    }
  }

  // Dead registers (defined, never consumed) must stay registers in each
  // copy so register metrics remain comparable.
  for (const VirtualRegister &R : G.registers())
    if (R.Uses.empty())
      for (int Copy = 0; Copy < Factor; ++Copy)
        Out.ensureRegister(Copy * N + R.Def);

  assert(!Out.validate() && "unrolling produced an invalid graph");
  return Out;
}
