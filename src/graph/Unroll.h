//===- graph/Unroll.h - Loop unrolling for fractional II --------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unrolls a loop body U times before scheduling. Modulo scheduling
/// quantizes the initiation interval to integers, so a recurrence with
/// latency 3 and distance 2 (true rate 1.5 cycles/iteration) is stuck at
/// II=2; after unrolling by 2 the kernel schedules at II=3 — back to 1.5
/// cycles per original iteration. This is one of the loop transformations
/// the paper's introduction mentions as future integration work for
/// optimal modulo schedulers; here it is provided as a preprocessing
/// pass.
///
/// Copy u of operation i represents original iteration U*n + u of the
/// new iteration n. An edge (i -> j, latency l, distance w) becomes, for
/// each source copy u, an edge to copy (u + w) mod U with new distance
/// (u + w) / U. Register def/use structure is preserved per copy.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_GRAPH_UNROLL_H
#define MODSCHED_GRAPH_UNROLL_H

#include "graph/DependenceGraph.h"

namespace modsched {

/// Returns \p G unrolled \p Factor times (Factor >= 1). Operation copy
/// u of original op named "x" is named "x#u". unrollLoop(G, 1) is a
/// structural copy of G.
DependenceGraph unrollLoop(const DependenceGraph &G, int Factor);

} // namespace modsched

#endif // MODSCHED_GRAPH_UNROLL_H
