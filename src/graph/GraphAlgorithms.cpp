//===- graph/GraphAlgorithms.cpp - SCC, cycles, time windows --------------===//

#include "graph/GraphAlgorithms.h"

#include "support/Hash.h"

#include <algorithm>
#include <array>
#include <cassert>

using namespace modsched;

namespace {

/// Iterative Tarjan SCC (explicit stack to survive deep graphs).
class TarjanScc {
public:
  TarjanScc(int NumNodes, const std::vector<std::vector<int>> &Succ)
      : Succ(Succ), Index(NumNodes, -1), LowLink(NumNodes, 0),
        OnStack(NumNodes, false) {
    for (int Node = 0; Node < NumNodes; ++Node)
      if (Index[Node] < 0)
        visit(Node);
  }

  std::vector<std::vector<int>> take() { return std::move(Components); }

private:
  void visit(int Root) {
    struct Frame {
      int Node;
      size_t NextSucc;
    };
    std::vector<Frame> CallStack{{Root, 0}};
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      int Node = F.Node;
      if (F.NextSucc == 0) {
        Index[Node] = LowLink[Node] = NextIndex++;
        Stack.push_back(Node);
        OnStack[Node] = true;
      }
      bool Descended = false;
      while (F.NextSucc < Succ[Node].size()) {
        int Next = Succ[Node][F.NextSucc++];
        if (Index[Next] < 0) {
          CallStack.push_back({Next, 0});
          Descended = true;
          break;
        }
        if (OnStack[Next])
          LowLink[Node] = std::min(LowLink[Node], Index[Next]);
      }
      if (Descended)
        continue;
      if (LowLink[Node] == Index[Node]) {
        std::vector<int> Component;
        for (;;) {
          int Popped = Stack.back();
          Stack.pop_back();
          OnStack[Popped] = false;
          Component.push_back(Popped);
          if (Popped == Node)
            break;
        }
        Components.push_back(std::move(Component));
      }
      CallStack.pop_back();
      if (!CallStack.empty()) {
        Frame &Parent = CallStack.back();
        LowLink[Parent.Node] = std::min(LowLink[Parent.Node], LowLink[Node]);
      }
    }
  }

  const std::vector<std::vector<int>> &Succ;
  std::vector<int> Index, LowLink;
  std::vector<bool> OnStack;
  std::vector<int> Stack;
  std::vector<std::vector<int>> Components;
  int NextIndex = 0;
};

std::vector<std::vector<int>> successorLists(const DependenceGraph &G) {
  std::vector<std::vector<int>> Succ(G.numOperations());
  for (const SchedEdge &E : G.schedEdges())
    Succ[E.Src].push_back(E.Dst);
  return Succ;
}

/// Longest-path relaxation with weights latency - II * distance (set
/// II < 0 with ZeroDistanceOnly to restrict to distance-0 edges). Returns
/// false when a positive cycle prevents convergence.
bool relaxLongestPaths(const DependenceGraph &G, int II,
                       std::vector<int> &Time) {
  int N = G.numOperations();
  // N rounds suffice for convergence; one extra round detects cycles.
  for (int Round = 0; Round <= N; ++Round) {
    bool Changed = false;
    for (const SchedEdge &E : G.schedEdges()) {
      // time_dst >= time_src + latency - II * distance.
      long Needed =
          long(Time[E.Src]) + E.Latency - long(II) * E.Distance;
      if (Needed > Time[E.Dst]) {
        Time[E.Dst] = static_cast<int>(Needed);
        Changed = true;
      }
    }
    if (!Changed)
      return true;
  }
  return false;
}

} // namespace

std::vector<std::vector<int>>
modsched::stronglyConnectedComponents(const DependenceGraph &G) {
  std::vector<std::vector<int>> Succ = successorLists(G);
  TarjanScc Scc(G.numOperations(), Succ);
  return Scc.take();
}

bool modsched::hasZeroDistanceCycle(const DependenceGraph &G) {
  // Restrict to distance-0 edges; any SCC of size > 1 (or a self-loop) is
  // a zero-distance cycle.
  std::vector<std::vector<int>> Succ(G.numOperations());
  for (const SchedEdge &E : G.schedEdges()) {
    if (E.Distance != 0)
      continue;
    if (E.Src == E.Dst)
      return true;
    Succ[E.Src].push_back(E.Dst);
  }
  TarjanScc Scc(G.numOperations(), Succ);
  for (const std::vector<int> &Component : Scc.take())
    if (Component.size() > 1)
      return true;
  return false;
}

bool modsched::hasPositiveCycle(const DependenceGraph &G, int II) {
  std::vector<int> Time(G.numOperations(), 0);
  return !relaxLongestPaths(G, II, Time);
}

std::optional<std::vector<int>> modsched::asapTimes(const DependenceGraph &G,
                                                    int II) {
  std::vector<int> Time(G.numOperations(), 0);
  if (!relaxLongestPaths(G, II, Time))
    return std::nullopt;
  return Time;
}

std::optional<std::vector<int>> modsched::alapTimes(const DependenceGraph &G,
                                                    int II, int MaxTime) {
  // Latest times: late_src <= late_dst - latency + II * distance. Relax
  // downward from MaxTime; a positive cycle would diverge, but the caller
  // is expected to have verified II >= RecMII first. We still bail out.
  int N = G.numOperations();
  std::vector<int> Late(N, MaxTime);
  for (int Round = 0; Round <= N; ++Round) {
    bool Changed = false;
    for (const SchedEdge &E : G.schedEdges()) {
      long Limit = long(Late[E.Dst]) - E.Latency + long(II) * E.Distance;
      if (Limit < Late[E.Src]) {
        Late[E.Src] = static_cast<int>(Limit);
        Changed = true;
      }
    }
    if (!Changed)
      return Late;
  }
  return std::nullopt;
}

std::optional<int> modsched::minScheduleLength(const DependenceGraph &G,
                                               int II) {
  std::optional<std::vector<int>> Asap = asapTimes(G, II);
  if (!Asap)
    return std::nullopt;
  int Max = 0;
  for (int T : *Asap)
    Max = std::max(Max, T);
  return Max + 1;
}

//===----------------------------------------------------------------------===//
// Canonical labeling
//===----------------------------------------------------------------------===//

namespace {

/// Shared refinement state: adjacency in CSR-ish form plus the WL loop.
class CanonicalSearch {
public:
  CanonicalSearch(int NumNodes, const std::vector<uint64_t> &NodeColors,
                  const std::vector<CanonicalEdge> &Edges,
                  int64_t StepBudget)
      : N(NumNodes), NodeColors(NodeColors), Edges(Edges),
        Budget(StepBudget) {
    Out.resize(N);
    In.resize(N);
    for (int E = 0; E < static_cast<int>(Edges.size()); ++E) {
      Out[Edges[E].Src].push_back(E);
      In[Edges[E].Dst].push_back(E);
    }
  }

  CanonicalLabeling run() {
    CanonicalLabeling Result;
    Result.CanonicalIndex.assign(N, 0);
    if (N == 0) {
      Result.InvariantHash = hashMix(0x63616e6fu); // "cano"
      return Result;
    }

    // Initial partition from the caller's node colors, then refine.
    std::vector<uint64_t> Sig(NodeColors);
    std::vector<int> Ids = denseIds(Sig);
    refine(Ids);

    // The invariant hash depends only on the stable color multiset plus
    // the (edge color, endpoint color) multiset — never on the tie-break
    // search below, so it stays relabeling-invariant even when the
    // budget trips.
    uint64_t NodeAcc = 0;
    for (int V = 0; V < N; ++V)
      NodeAcc = hashUnordered(NodeAcc, hashMix(Ids[V] + 1));
    uint64_t EdgeAcc = 0;
    for (const CanonicalEdge &E : Edges) {
      uint64_t H = hashMix(0x65646765u); // "edge"
      H = hashCombine(H, E.Color);
      H = hashCombine(H, Ids[E.Src] + 1);
      H = hashCombine(H, Ids[E.Dst] + 1);
      EdgeAcc = hashUnordered(EdgeAcc, H);
    }
    uint64_t Inv = hashMix(0x63616e6fu); // "cano"
    Inv = hashCombine(Inv, static_cast<uint64_t>(N));
    Inv = hashCombine(Inv, NodeAcc);
    Inv = hashCombine(Inv, EdgeAcc);
    Result.InvariantHash = Inv;

    // Individualization-refinement: explore every way of splitting the
    // first non-singleton class and keep the lexicographically smallest
    // complete form. Correct without automorphism pruning (min over all
    // leaves); the step budget bounds the worst case.
    dfs(Ids);

    if (!BestOrder.empty()) {
      for (int Pos = 0; Pos < N; ++Pos)
        Result.CanonicalIndex[BestOrder[Pos]] = Pos;
      Result.Exact = !Exhausted;
    } else {
      // Budget died before any leaf: deterministic fallback order (by
      // refined color, then original index). Never relabeling-invariant.
      std::vector<int> Order(N);
      for (int V = 0; V < N; ++V)
        Order[V] = V;
      std::sort(Order.begin(), Order.end(), [&](int A, int B) {
        return std::make_pair(Ids[A], A) < std::make_pair(Ids[B], B);
      });
      for (int Pos = 0; Pos < N; ++Pos)
        Result.CanonicalIndex[Order[Pos]] = Pos;
      Result.Exact = false;
    }
    return Result;
  }

private:
  /// Renumbers arbitrary 64-bit signatures to dense ids by sorted hash
  /// value — rank by value, not first occurrence, so the numbering is
  /// relabeling-invariant.
  std::vector<int> denseIds(const std::vector<uint64_t> &Sig) {
    std::vector<uint64_t> Sorted(Sig);
    std::sort(Sorted.begin(), Sorted.end());
    Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
    std::vector<int> Ids(N);
    for (int V = 0; V < N; ++V)
      Ids[V] = static_cast<int>(
          std::lower_bound(Sorted.begin(), Sorted.end(), Sig[V]) -
          Sorted.begin());
    return Ids;
  }

  static int numClasses(const std::vector<int> &Ids) {
    return Ids.empty() ? 0 : *std::max_element(Ids.begin(), Ids.end()) + 1;
  }

  /// One WL refinement to fixpoint over \p Ids. Densifies first: dfs()
  /// individualizes by mapping class c to 2c+1 (2c for the singled-out
  /// node), so incoming ids may be sparse, and everything downstream —
  /// numClasses, the per-class counts, and the discrete-leaf
  /// Order[Ids[V]] write — indexes by id value. Value-ranking keeps the
  /// densification relabeling-invariant.
  void refine(std::vector<int> &Ids) {
    {
      std::vector<uint64_t> AsSig(Ids.begin(), Ids.end());
      Ids = denseIds(AsSig);
    }
    int Classes = numClasses(Ids);
    std::vector<uint64_t> Sig(N);
    for (int Round = 0; Round < N && Classes < N; ++Round) {
      Budget -= N + static_cast<int64_t>(Edges.size());
      if (Budget < 0) {
        Exhausted = true;
        return;
      }
      for (int V = 0; V < N; ++V) {
        uint64_t OutAcc = 0, InAcc = 0;
        for (int E : Out[V])
          OutAcc = hashUnordered(
              OutAcc, hashCombine(Edges[E].Color, Ids[Edges[E].Dst] + 1));
        for (int E : In[V])
          InAcc = hashUnordered(
              InAcc, hashCombine(Edges[E].Color, Ids[Edges[E].Src] + 1));
        uint64_t H = hashMix(Ids[V] + 1);
        H = hashCombine(H, OutAcc);
        H = hashCombine(H, InAcc);
        Sig[V] = H;
      }
      std::vector<int> Next = denseIds(Sig);
      int NextClasses = numClasses(Next);
      Ids = std::move(Next);
      if (NextClasses == Classes)
        return; // Stable partition.
      Classes = NextClasses;
    }
  }

  /// Complete form of a discrete (all-singleton) coloring: node colors in
  /// canonical order, then sorted edge tuples in canonical index space.
  std::vector<uint64_t> leafForm(const std::vector<int> &Order) const {
    std::vector<int> Pos(N);
    for (int P = 0; P < N; ++P)
      Pos[Order[P]] = P;
    std::vector<uint64_t> Form;
    Form.reserve(N + 3 * Edges.size() + 1);
    Form.push_back(static_cast<uint64_t>(N));
    for (int P = 0; P < N; ++P)
      Form.push_back(NodeColors[Order[P]]);
    std::vector<std::array<uint64_t, 3>> Tuples;
    Tuples.reserve(Edges.size());
    for (const CanonicalEdge &E : Edges)
      Tuples.push_back({static_cast<uint64_t>(Pos[E.Src]),
                        static_cast<uint64_t>(Pos[E.Dst]), E.Color});
    std::sort(Tuples.begin(), Tuples.end());
    for (const auto &T : Tuples) {
      Form.push_back(T[0]);
      Form.push_back(T[1]);
      Form.push_back(T[2]);
    }
    return Form;
  }

  void dfs(std::vector<int> Ids) {
    refine(Ids);
    if (Exhausted && !BestOrder.empty())
      return; // Keep the first complete leaf found before exhaustion.

    // Find the smallest non-singleton color class.
    int Classes = numClasses(Ids);
    std::vector<int> Count(Classes, 0);
    for (int V = 0; V < N; ++V)
      ++Count[Ids[V]];
    int Target = -1;
    for (int C = 0; C < Classes; ++C)
      if (Count[C] > 1) {
        Target = C;
        break;
      }

    if (Target < 0) {
      // Discrete: a complete candidate labeling.
      std::vector<int> Order(N);
      for (int V = 0; V < N; ++V)
        Order[Ids[V]] = V;
      std::vector<uint64_t> Form = leafForm(Order);
      if (BestOrder.empty() || Form < BestForm) {
        BestForm = std::move(Form);
        BestOrder = std::move(Order);
      }
      return;
    }
    if (Exhausted)
      return;

    // Individualize each member of the target class in turn: move it to
    // a fresh class just below its old class (Ids doubled, member odd).
    for (int V = 0; V < N && !Exhausted; ++V) {
      if (Ids[V] != Target)
        continue;
      std::vector<int> Child(N);
      for (int W = 0; W < N; ++W)
        Child[W] = 2 * Ids[W] + 1;
      Child[V] = 2 * Target;
      dfs(std::move(Child));
    }
  }

  const int N;
  const std::vector<uint64_t> &NodeColors;
  const std::vector<CanonicalEdge> &Edges;
  std::vector<std::vector<int>> Out, In;
  int64_t Budget;
  bool Exhausted = false;
  std::vector<uint64_t> BestForm;
  std::vector<int> BestOrder;
};

} // namespace

CanonicalLabeling modsched::canonicalLabeling(
    int NumNodes, const std::vector<uint64_t> &NodeColors,
    const std::vector<CanonicalEdge> &Edges, int64_t StepBudget) {
  assert(static_cast<int>(NodeColors.size()) == NumNodes &&
         "one color per node required");
  for (const CanonicalEdge &E : Edges) {
    assert(E.Src >= 0 && E.Src < NumNodes && E.Dst >= 0 &&
           E.Dst < NumNodes && "canonical edge endpoint out of range");
    (void)E;
  }
  return CanonicalSearch(NumNodes, NodeColors, Edges, StepBudget).run();
}
