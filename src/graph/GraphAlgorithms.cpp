//===- graph/GraphAlgorithms.cpp - SCC, cycles, time windows --------------===//

#include "graph/GraphAlgorithms.h"

#include <algorithm>
#include <cassert>

using namespace modsched;

namespace {

/// Iterative Tarjan SCC (explicit stack to survive deep graphs).
class TarjanScc {
public:
  TarjanScc(int NumNodes, const std::vector<std::vector<int>> &Succ)
      : Succ(Succ), Index(NumNodes, -1), LowLink(NumNodes, 0),
        OnStack(NumNodes, false) {
    for (int Node = 0; Node < NumNodes; ++Node)
      if (Index[Node] < 0)
        visit(Node);
  }

  std::vector<std::vector<int>> take() { return std::move(Components); }

private:
  void visit(int Root) {
    struct Frame {
      int Node;
      size_t NextSucc;
    };
    std::vector<Frame> CallStack{{Root, 0}};
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      int Node = F.Node;
      if (F.NextSucc == 0) {
        Index[Node] = LowLink[Node] = NextIndex++;
        Stack.push_back(Node);
        OnStack[Node] = true;
      }
      bool Descended = false;
      while (F.NextSucc < Succ[Node].size()) {
        int Next = Succ[Node][F.NextSucc++];
        if (Index[Next] < 0) {
          CallStack.push_back({Next, 0});
          Descended = true;
          break;
        }
        if (OnStack[Next])
          LowLink[Node] = std::min(LowLink[Node], Index[Next]);
      }
      if (Descended)
        continue;
      if (LowLink[Node] == Index[Node]) {
        std::vector<int> Component;
        for (;;) {
          int Popped = Stack.back();
          Stack.pop_back();
          OnStack[Popped] = false;
          Component.push_back(Popped);
          if (Popped == Node)
            break;
        }
        Components.push_back(std::move(Component));
      }
      CallStack.pop_back();
      if (!CallStack.empty()) {
        Frame &Parent = CallStack.back();
        LowLink[Parent.Node] = std::min(LowLink[Parent.Node], LowLink[Node]);
      }
    }
  }

  const std::vector<std::vector<int>> &Succ;
  std::vector<int> Index, LowLink;
  std::vector<bool> OnStack;
  std::vector<int> Stack;
  std::vector<std::vector<int>> Components;
  int NextIndex = 0;
};

std::vector<std::vector<int>> successorLists(const DependenceGraph &G) {
  std::vector<std::vector<int>> Succ(G.numOperations());
  for (const SchedEdge &E : G.schedEdges())
    Succ[E.Src].push_back(E.Dst);
  return Succ;
}

/// Longest-path relaxation with weights latency - II * distance (set
/// II < 0 with ZeroDistanceOnly to restrict to distance-0 edges). Returns
/// false when a positive cycle prevents convergence.
bool relaxLongestPaths(const DependenceGraph &G, int II,
                       std::vector<int> &Time) {
  int N = G.numOperations();
  // N rounds suffice for convergence; one extra round detects cycles.
  for (int Round = 0; Round <= N; ++Round) {
    bool Changed = false;
    for (const SchedEdge &E : G.schedEdges()) {
      // time_dst >= time_src + latency - II * distance.
      long Needed =
          long(Time[E.Src]) + E.Latency - long(II) * E.Distance;
      if (Needed > Time[E.Dst]) {
        Time[E.Dst] = static_cast<int>(Needed);
        Changed = true;
      }
    }
    if (!Changed)
      return true;
  }
  return false;
}

} // namespace

std::vector<std::vector<int>>
modsched::stronglyConnectedComponents(const DependenceGraph &G) {
  std::vector<std::vector<int>> Succ = successorLists(G);
  TarjanScc Scc(G.numOperations(), Succ);
  return Scc.take();
}

bool modsched::hasZeroDistanceCycle(const DependenceGraph &G) {
  // Restrict to distance-0 edges; any SCC of size > 1 (or a self-loop) is
  // a zero-distance cycle.
  std::vector<std::vector<int>> Succ(G.numOperations());
  for (const SchedEdge &E : G.schedEdges()) {
    if (E.Distance != 0)
      continue;
    if (E.Src == E.Dst)
      return true;
    Succ[E.Src].push_back(E.Dst);
  }
  TarjanScc Scc(G.numOperations(), Succ);
  for (const std::vector<int> &Component : Scc.take())
    if (Component.size() > 1)
      return true;
  return false;
}

bool modsched::hasPositiveCycle(const DependenceGraph &G, int II) {
  std::vector<int> Time(G.numOperations(), 0);
  return !relaxLongestPaths(G, II, Time);
}

std::optional<std::vector<int>> modsched::asapTimes(const DependenceGraph &G,
                                                    int II) {
  std::vector<int> Time(G.numOperations(), 0);
  if (!relaxLongestPaths(G, II, Time))
    return std::nullopt;
  return Time;
}

std::optional<std::vector<int>> modsched::alapTimes(const DependenceGraph &G,
                                                    int II, int MaxTime) {
  // Latest times: late_src <= late_dst - latency + II * distance. Relax
  // downward from MaxTime; a positive cycle would diverge, but the caller
  // is expected to have verified II >= RecMII first. We still bail out.
  int N = G.numOperations();
  std::vector<int> Late(N, MaxTime);
  for (int Round = 0; Round <= N; ++Round) {
    bool Changed = false;
    for (const SchedEdge &E : G.schedEdges()) {
      long Limit = long(Late[E.Dst]) - E.Latency + long(II) * E.Distance;
      if (Limit < Late[E.Src]) {
        Late[E.Src] = static_cast<int>(Limit);
        Changed = true;
      }
    }
    if (!Changed)
      return Late;
  }
  return std::nullopt;
}

std::optional<int> modsched::minScheduleLength(const DependenceGraph &G,
                                               int II) {
  std::optional<std::vector<int>> Asap = asapTimes(G, II);
  if (!Asap)
    return std::nullopt;
  int Max = 0;
  for (int T : *Asap)
    Max = std::max(Max, T);
  return Max + 1;
}
