//===- graph/GraphAlgorithms.h - SCC, cycles, time windows ------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph analyses over dependence graphs:
///  * Tarjan strongly-connected components (recurrence detection),
///  * positive-cycle detection for a candidate II (edge weight
///    latency - II * distance),
///  * ASAP / ALAP start-time windows for a candidate II, used both by the
///    heuristic scheduler's priorities and to tighten the ILP stage
///    bounds.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_GRAPH_GRAPHALGORITHMS_H
#define MODSCHED_GRAPH_GRAPHALGORITHMS_H

#include "graph/DependenceGraph.h"

#include <optional>
#include <vector>

namespace modsched {

/// Computes strongly connected components with Tarjan's algorithm over
/// the scheduling edges. Returns one vector of operation indices per SCC,
/// in reverse topological order of the condensation.
std::vector<std::vector<int>> stronglyConnectedComponents(
    const DependenceGraph &G);

/// True iff the graph contains a dependence cycle whose total distance is
/// zero — such a loop is unschedulable at any II.
bool hasZeroDistanceCycle(const DependenceGraph &G);

/// True iff, at initiation interval \p II, some dependence cycle has
/// positive weight sum(latency) - II * sum(distance) > 0, i.e. the
/// recurrence cannot be honored at this II.
bool hasPositiveCycle(const DependenceGraph &G, int II);

/// Earliest start time of every operation at initiation interval \p II
/// (longest path from time 0 under the scheduling edges), or nullopt when
/// \p II is below the recurrence-constrained minimum.
std::optional<std::vector<int>> asapTimes(const DependenceGraph &G, int II);

/// Latest start times such that every operation can still finish a
/// schedule in which all start times are <= \p MaxTime; nullopt when
/// infeasible. All returned times are >= the matching ASAP time iff the
/// window is non-empty for every operation (checked by the caller).
std::optional<std::vector<int>> alapTimes(const DependenceGraph &G, int II,
                                          int MaxTime);

/// Minimum schedule length (1 + latest ASAP start) at \p II, or nullopt
/// when II is recurrence-infeasible.
std::optional<int> minScheduleLength(const DependenceGraph &G, int II);

} // namespace modsched

#endif // MODSCHED_GRAPH_GRAPHALGORITHMS_H
