//===- graph/GraphAlgorithms.h - SCC, cycles, time windows ------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph analyses over dependence graphs:
///  * Tarjan strongly-connected components (recurrence detection),
///  * positive-cycle detection for a candidate II (edge weight
///    latency - II * distance),
///  * ASAP / ALAP start-time windows for a candidate II, used both by the
///    heuristic scheduler's priorities and to tighten the ILP stage
///    bounds.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_GRAPH_GRAPHALGORITHMS_H
#define MODSCHED_GRAPH_GRAPHALGORITHMS_H

#include "graph/DependenceGraph.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace modsched {

/// Computes strongly connected components with Tarjan's algorithm over
/// the scheduling edges. Returns one vector of operation indices per SCC,
/// in reverse topological order of the condensation.
std::vector<std::vector<int>> stronglyConnectedComponents(
    const DependenceGraph &G);

/// True iff the graph contains a dependence cycle whose total distance is
/// zero — such a loop is unschedulable at any II.
bool hasZeroDistanceCycle(const DependenceGraph &G);

/// True iff, at initiation interval \p II, some dependence cycle has
/// positive weight sum(latency) - II * sum(distance) > 0, i.e. the
/// recurrence cannot be honored at this II.
bool hasPositiveCycle(const DependenceGraph &G, int II);

/// Earliest start time of every operation at initiation interval \p II
/// (longest path from time 0 under the scheduling edges), or nullopt when
/// \p II is below the recurrence-constrained minimum.
std::optional<std::vector<int>> asapTimes(const DependenceGraph &G, int II);

/// Latest start times such that every operation can still finish a
/// schedule in which all start times are <= \p MaxTime; nullopt when
/// infeasible. All returned times are >= the matching ASAP time iff the
/// window is non-empty for every operation (checked by the caller).
std::optional<std::vector<int>> alapTimes(const DependenceGraph &G, int II,
                                          int MaxTime);

/// Minimum schedule length (1 + latest ASAP start) at \p II, or nullopt
/// when II is recurrence-infeasible.
std::optional<int> minScheduleLength(const DependenceGraph &G, int II);

//===----------------------------------------------------------------------===//
// Canonical labeling (for content-addressed problem hashing)
//===----------------------------------------------------------------------===//

/// A directed, colored edge fed to canonicalLabeling(). The color encodes
/// every scheduling-relevant edge attribute (e.g. a hash of latency and
/// distance, or of a register-use distance) so that two edges are
/// interchangeable iff their colors match.
struct CanonicalEdge {
  int Src = 0;
  int Dst = 0;
  uint64_t Color = 0;
};

/// Result of canonicalLabeling().
struct CanonicalLabeling {
  /// CanonicalIndex[node] = the node's position in the canonical order; a
  /// permutation of [0, N). When Exact, isomorphic relabelings of the
  /// same colored graph map to the same canonical form (node colors +
  /// edge tuples rewritten through CanonicalIndex compare equal).
  std::vector<int> CanonicalIndex;
  /// Relabeling-invariant hash of the stable WL color multiset. Invariant
  /// even when Exact is false (it never depends on the tie-break search).
  uint64_t InvariantHash = 0;
  /// False when the individualization-refinement search exhausted its
  /// step budget: CanonicalIndex is still a deterministic permutation,
  /// but is NOT guaranteed relabeling-invariant and must not be used for
  /// content-addressed caching.
  bool Exact = true;
};

/// Computes a canonical node order for a colored directed multigraph:
/// iterative Weisfeiler-Leman color refinement over (node color, in/out
/// edge-color x neighbor-color multisets), then individualization-
/// refinement over the remaining symmetric orbits, keeping the
/// lexicographically smallest complete form. \p StepBudget bounds the
/// total refinement work (roughly node-visits); graphs whose symmetry
/// exhausts it come back with Exact == false. Deterministic for a fixed
/// input; invariant under node relabeling when Exact.
CanonicalLabeling canonicalLabeling(int NumNodes,
                                    const std::vector<uint64_t> &NodeColors,
                                    const std::vector<CanonicalEdge> &Edges,
                                    int64_t StepBudget = 1 << 20);

} // namespace modsched

#endif // MODSCHED_GRAPH_GRAPHALGORITHMS_H
