//===- heuristic/StageScheduler.h - Stage scheduling post-pass --*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage scheduling [9][10]: given a modulo schedule, keep every
/// operation's MRT row fixed (so the resource allocation is untouched)
/// and move operations between stages — i.e. adjust each k_i by whole
/// multiples of II within its dependence slack — to reduce the register
/// requirements. This reproduces the heuristic the paper's Section 6
/// evaluates against the MinReg/MinLife/MinBuff optimal schedulers.
///
/// The implementation is a greedy coordinate-descent: repeatedly sweep
/// the operations, and for each one pick the stage (within the feasible
/// stage window implied by the other operations) that minimizes the
/// chosen register metric, until a fixpoint or the sweep limit.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_HEURISTIC_STAGESCHEDULER_H
#define MODSCHED_HEURISTIC_STAGESCHEDULER_H

#include "graph/DependenceGraph.h"
#include "sched/ModuloSchedule.h"

namespace modsched {

/// Which register metric the stage scheduler greedily reduces.
enum class StageMetric {
  TotalLifetime, ///< Cumulative lifetime (cheap, good proxy).
  MaxLive,       ///< The exact register requirement.
};

/// Options for the stage scheduler.
struct StageSchedulerOptions {
  StageMetric Metric = StageMetric::TotalLifetime;
  /// Maximum number of full sweeps over the operations.
  int MaxSweeps = 8;
  /// Largest stage index allowed (bounds the search; stages beyond the
  /// original schedule's span + this slack are not considered).
  int ExtraStages = 2;
};

/// Runs stage scheduling on \p S and returns the improved schedule (rows
/// are provably identical; only stages change). The result never has a
/// worse metric than the input.
ModuloSchedule stageSchedule(const DependenceGraph &G,
                             const ModuloSchedule &S,
                             StageSchedulerOptions Opts = {});

} // namespace modsched

#endif // MODSCHED_HEURISTIC_STAGESCHEDULER_H
