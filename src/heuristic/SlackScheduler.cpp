//===- heuristic/SlackScheduler.cpp - Huff's slack scheduling -------------===//

#include "heuristic/SlackScheduler.h"

#include "graph/GraphAlgorithms.h"
#include "sched/Mii.h"
#include "sched/Verifier.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <vector>

using namespace modsched;

namespace {

/// Mutable MRT mirroring the one in the iterative scheduler.
class MrtState {
public:
  MrtState(const MachineModel &M, int II)
      : M(M), II(II), Counts(size_t(II) * M.numResources(), 0) {}

  bool conflictFree(const OpClass &Class, int Time) const {
    for (const ResourceUsage &U : Class.Usages) {
      int Row = slotRow(Time + U.Cycle);
      if (Counts[size_t(Row) * M.numResources() + U.Resource] >=
          M.resource(U.Resource).Count)
        return false;
    }
    return true;
  }

  void place(const OpClass &Class, int Time) {
    for (const ResourceUsage &U : Class.Usages)
      ++Counts[size_t(slotRow(Time + U.Cycle)) * M.numResources() +
               U.Resource];
  }

  void remove(const OpClass &Class, int Time) {
    for (const ResourceUsage &U : Class.Usages) {
      int &C = Counts[size_t(slotRow(Time + U.Cycle)) * M.numResources() +
                      U.Resource];
      assert(C > 0 && "removing an operation that was not placed");
      --C;
    }
  }

  bool collides(const OpClass &Class, int Time, const OpClass &Other,
                int OtherTime) const {
    for (const ResourceUsage &U : Class.Usages)
      for (const ResourceUsage &V : Other.Usages)
        if (U.Resource == V.Resource &&
            slotRow(Time + U.Cycle) == slotRow(OtherTime + V.Cycle))
          return true;
    return false;
  }

private:
  int slotRow(int Time) const {
    int R = Time % II;
    return R < 0 ? R + II : R;
  }

  const MachineModel &M;
  int II;
  std::vector<int> Counts;
};

} // namespace

std::optional<ModuloSchedule>
SlackScheduler::scheduleAtIi(const DependenceGraph &G, int II) const {
  int N = G.numOperations();

  std::optional<int> MinLenOpt = minScheduleLength(G, II);
  if (!MinLenOpt)
    return std::nullopt; // Below the recurrence bound.
  int MaxTime = *MinLenOpt - 1 + Opts.ScheduleLengthSlack;

  std::optional<std::vector<int>> AsapOpt = asapTimes(G, II);
  std::optional<std::vector<int>> AlapOpt = alapTimes(G, II, MaxTime);
  if (!AsapOpt || !AlapOpt)
    return std::nullopt;
  const std::vector<int> &StaticAsap = *AsapOpt;
  const std::vector<int> &StaticAlap = *AlapOpt;

  std::vector<std::vector<int>> OutEdges(N), InEdges(N);
  for (int E = 0; E < G.numSchedEdges(); ++E) {
    OutEdges[G.schedEdges()[E].Src].push_back(E);
    InEdges[G.schedEdges()[E].Dst].push_back(E);
  }

  std::vector<int> Time(N, -1);
  std::vector<int> LastTime(N, -1);
  MrtState Mrt(M, II);
  long Budget = long(Opts.BudgetRatio) * N + N;
  int NumScheduled = 0;

  auto Unschedule = [&](int Op) {
    Mrt.remove(M.opClass(G.operation(Op).OpClass), Time[Op]);
    Time[Op] = -1;
    --NumScheduled;
  };

  // Dynamic window of an unscheduled op given the scheduled neighbors.
  auto WindowOf = [&](int Op) {
    int E = StaticAsap[Op], L = StaticAlap[Op];
    for (int EI : InEdges[Op]) {
      const SchedEdge &Edge = G.schedEdges()[EI];
      if (Edge.Src != Op && Time[Edge.Src] >= 0)
        E = std::max(E, Time[Edge.Src] + Edge.Latency - II * Edge.Distance);
    }
    for (int EI : OutEdges[Op]) {
      const SchedEdge &Edge = G.schedEdges()[EI];
      if (Edge.Dst != Op && Time[Edge.Dst] >= 0)
        L = std::min(L, Time[Edge.Dst] + II * Edge.Distance - Edge.Latency);
    }
    return std::pair<int, int>{E, L};
  };

  while (NumScheduled < N) {
    if (Budget-- <= 0)
      return std::nullopt;

    // Minimum-slack unscheduled operation (Huff's priority).
    int Op = -1, OpE = 0, OpL = 0;
    int BestSlack = INT_MAX;
    for (int I = 0; I < N; ++I) {
      if (Time[I] >= 0)
        continue;
      auto [E, L] = WindowOf(I);
      int Slack = L - E;
      if (Slack < BestSlack) {
        BestSlack = Slack;
        Op = I;
        OpE = E;
        OpL = L;
      }
    }
    assert(Op >= 0 && "no unscheduled operation left");

    const OpClass &Class = M.opClass(G.operation(Op).OpClass);

    // Bidirectional placement: an operation that consumes more live
    // values than its own result has uses is placed as EARLY as possible
    // (shortening its inputs' lifetimes); otherwise as LATE as possible
    // (shortening its output's lifetime).
    int NumInputs = static_cast<int>(InEdges[Op].size());
    int NumOutputs = static_cast<int>(OutEdges[Op].size());
    bool ScanEarly = NumInputs >= NumOutputs;

    int Slot = -1;
    int WindowLo = OpE;
    int WindowHi = std::min(OpL, OpE + II - 1); // At most II candidates.
    if (WindowLo <= WindowHi) {
      if (ScanEarly) {
        for (int T = WindowLo; T <= WindowHi; ++T)
          if (Mrt.conflictFree(Class, T)) {
            Slot = T;
            break;
          }
      } else {
        for (int T = WindowHi; T >= WindowLo; --T)
          if (Mrt.conflictFree(Class, T)) {
            Slot = T;
            break;
          }
      }
    }
    bool Forced = Slot < 0;
    if (Forced) {
      // Eject and force, with the IMS forward-progress rule.
      Slot = std::max(OpE, LastTime[Op] + 1);
      if (Slot > MaxTime)
        return std::nullopt; // Window budget exhausted at this II.
    }
    LastTime[Op] = Slot;

    if (Forced) {
      for (int Other = 0; Other < N; ++Other) {
        if (Other == Op || Time[Other] < 0)
          continue;
        const OpClass &OtherClass = M.opClass(G.operation(Other).OpClass);
        if (Mrt.collides(Class, Slot, OtherClass, Time[Other]))
          Unschedule(Other);
      }
    }

    Mrt.place(Class, Slot);
    Time[Op] = Slot;
    ++NumScheduled;

    // Eject dependence-violated neighbors (forced placements may break
    // successors; the window construction protects scheduled ones
    // otherwise).
    for (int EI : OutEdges[Op]) {
      const SchedEdge &E = G.schedEdges()[EI];
      if (E.Dst == Op || Time[E.Dst] < 0)
        continue;
      if (Time[E.Dst] + II * E.Distance - Slot < E.Latency)
        Unschedule(E.Dst);
    }
    for (int EI : InEdges[Op]) {
      const SchedEdge &E = G.schedEdges()[EI];
      if (E.Src == Op) {
        if (II * E.Distance < E.Latency)
          return std::nullopt; // Self-recurrence cannot fit this II.
        continue;
      }
      if (Time[E.Src] >= 0 &&
          Slot + II * E.Distance - Time[E.Src] < E.Latency)
        Unschedule(E.Src);
    }
  }

  ModuloSchedule S(II, std::move(Time));
  if (verifySchedule(G, M, S))
    return std::nullopt; // Defensive: never return an invalid schedule.
  return S;
}

SlackResult SlackScheduler::schedule(const DependenceGraph &G) const {
  SlackResult Result;
  Result.Mii = mii(G, M);
  for (int II = Result.Mii; II <= Result.Mii + Opts.MaxIiIncrease; ++II) {
    std::optional<ModuloSchedule> S = scheduleAtIi(G, II);
    if (S) {
      Result.Found = true;
      Result.II = II;
      Result.Schedule = std::move(*S);
      return Result;
    }
  }
  return Result;
}
