//===- heuristic/IterativeModuloScheduler.cpp - Rau's IMS ------------------===//

#include "heuristic/IterativeModuloScheduler.h"

#include "sched/Mii.h"
#include "sched/Verifier.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace modsched;

namespace {

/// Height-based priority: longest path (with weights latency - II *
/// distance) from each operation to any operation, computed by backward
/// relaxation. Higher means more urgent.
std::vector<int> heightPriorities(const DependenceGraph &G, int II) {
  int N = G.numOperations();
  std::vector<int> Height(N, 0);
  for (int Round = 0; Round <= N; ++Round) {
    bool Changed = false;
    for (const SchedEdge &E : G.schedEdges()) {
      int Needed = Height[E.Dst] + E.Latency - II * E.Distance;
      if (Needed > Height[E.Src]) {
        Height[E.Src] = Needed;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return Height;
}

/// Mutable modulo reservation table used while scheduling.
class MrtState {
public:
  MrtState(const MachineModel &M, int II)
      : M(M), II(II), Counts(size_t(II) * M.numResources(), 0) {}

  bool conflictFree(const OpClass &Class, int Time) const {
    for (const ResourceUsage &U : Class.Usages) {
      int Row = slotRow(Time + U.Cycle);
      if (Counts[size_t(Row) * M.numResources() + U.Resource] >=
          M.resource(U.Resource).Count)
        return false;
    }
    return true;
  }

  void place(const OpClass &Class, int Time) {
    for (const ResourceUsage &U : Class.Usages)
      ++Counts[size_t(slotRow(Time + U.Cycle)) * M.numResources() +
               U.Resource];
  }

  void remove(const OpClass &Class, int Time) {
    for (const ResourceUsage &U : Class.Usages) {
      int &C = Counts[size_t(slotRow(Time + U.Cycle)) * M.numResources() +
                      U.Resource];
      assert(C > 0 && "removing an operation that was not placed");
      --C;
    }
  }

  /// True when placing \p Class at \p Time would collide with the
  /// reservations of \p Other placed at \p OtherTime.
  bool collides(const OpClass &Class, int Time, const OpClass &Other,
                int OtherTime) const {
    for (const ResourceUsage &U : Class.Usages)
      for (const ResourceUsage &V : Other.Usages)
        if (U.Resource == V.Resource &&
            slotRow(Time + U.Cycle) == slotRow(OtherTime + V.Cycle))
          return true;
    return false;
  }

private:
  int slotRow(int Time) const {
    int R = Time % II;
    return R < 0 ? R + II : R;
  }

  const MachineModel &M;
  int II;
  std::vector<int> Counts;
};

} // namespace

std::optional<ModuloSchedule>
IterativeModuloScheduler::scheduleAtIi(const DependenceGraph &G,
                                       int II) const {
  int N = G.numOperations();
  std::vector<int> Height = heightPriorities(G, II);

  // Precompute adjacency for eviction checks.
  std::vector<std::vector<int>> OutEdges(N), InEdges(N);
  for (int E = 0; E < G.numSchedEdges(); ++E) {
    OutEdges[G.schedEdges()[E].Src].push_back(E);
    InEdges[G.schedEdges()[E].Dst].push_back(E);
  }

  std::vector<int> Time(N, -1);     // -1 = unscheduled.
  std::vector<int> LastTime(N, -1); // Last slot tried (forced placement).
  MrtState Mrt(M, II);

  long Budget = long(Opts.BudgetRatio) * N + N;
  int NumScheduled = 0;

  auto Unschedule = [&](int Op) {
    assert(Time[Op] >= 0 && "unscheduling an unscheduled op");
    Mrt.remove(M.opClass(G.operation(Op).OpClass), Time[Op]);
    Time[Op] = -1;
    --NumScheduled;
  };

  while (NumScheduled < N) {
    if (Budget-- <= 0)
      return std::nullopt;

    // Highest-priority unscheduled operation (ties by index).
    int Op = -1;
    for (int I = 0; I < N; ++I)
      if (Time[I] < 0 && (Op < 0 || Height[I] > Height[Op]))
        Op = I;
    assert(Op >= 0 && "no unscheduled operation left");

    // Earliest start from scheduled predecessors.
    int Estart = 0;
    for (int EI : InEdges[Op]) {
      const SchedEdge &E = G.schedEdges()[EI];
      if (Time[E.Src] < 0)
        continue;
      Estart = std::max(Estart, Time[E.Src] + E.Latency - II * E.Distance);
    }

    const OpClass &Class = M.opClass(G.operation(Op).OpClass);
    int Slot = -1;
    for (int T = Estart; T < Estart + II; ++T) {
      if (Mrt.conflictFree(Class, T)) {
        Slot = T;
        break;
      }
    }
    bool Forced = Slot < 0;
    if (Forced) {
      // Rau's forced placement: min(Estart, 1 + last attempt), which
      // guarantees forward progress across evictions.
      Slot = std::max(Estart, LastTime[Op] + 1);
    }
    LastTime[Op] = Slot;

    if (Forced) {
      // Evict every scheduled operation whose reservations collide.
      for (int Other = 0; Other < N; ++Other) {
        if (Other == Op || Time[Other] < 0)
          continue;
        const OpClass &OtherClass = M.opClass(G.operation(Other).OpClass);
        if (Mrt.collides(Class, Slot, OtherClass, Time[Other]))
          Unschedule(Other);
      }
    }

    Mrt.place(Class, Slot);
    Time[Op] = Slot;
    ++NumScheduled;

    // Evict successors whose dependence constraints the placement broke.
    for (int EI : OutEdges[Op]) {
      const SchedEdge &E = G.schedEdges()[EI];
      if (E.Dst == Op || Time[E.Dst] < 0)
        continue;
      if (Time[E.Dst] + II * E.Distance - Slot < E.Latency)
        Unschedule(E.Dst);
    }
    // A forced slot below a scheduled predecessor's requirement cannot
    // happen (Slot >= Estart covers scheduled predecessors), but a
    // self-loop edge can be violated if the slot is simply illegal.
    for (int EI : InEdges[Op]) {
      const SchedEdge &E = G.schedEdges()[EI];
      if (E.Src == Op && Slot + II * E.Distance - Slot < E.Latency)
        return std::nullopt; // Self-recurrence cannot fit this II.
      if (E.Src != Op && Time[E.Src] >= 0 &&
          Slot + II * E.Distance - Time[E.Src] < E.Latency)
        Unschedule(E.Src);
    }
  }

  // Normalize: shift so the earliest start time is >= 0 (forced
  // placements keep times >= 0 already, but stay defensive).
  int MinTime = *std::min_element(Time.begin(), Time.end());
  if (MinTime < 0) {
    // Shift by whole stages to keep rows stable.
    int Shift = ((-MinTime + II - 1) / II) * II;
    for (int &T : Time)
      T += Shift;
  }

  ModuloSchedule S(II, std::move(Time));
  if (verifySchedule(G, M, S))
    return std::nullopt; // Defensive: never return an invalid schedule.
  return S;
}

ImsResult IterativeModuloScheduler::schedule(const DependenceGraph &G) const {
  ImsResult Result;
  Result.Mii = mii(G, M);
  for (int II = Result.Mii; II <= Result.Mii + Opts.MaxIiIncrease; ++II) {
    std::optional<ModuloSchedule> S = scheduleAtIi(G, II);
    if (S) {
      Result.Found = true;
      Result.II = II;
      Result.Schedule = std::move(*S);
      return Result;
    }
  }
  return Result;
}
