//===- heuristic/SlackScheduler.h - Huff's slack scheduling -----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifetime-sensitive modulo scheduling in the style of Huff [12]
/// ("Lifetime-sensitive modulo scheduling", PLDI 1993), the algorithm
/// that introduced the MaxLive measure the paper's MinReg scheduler
/// minimizes exactly. Operations are scheduled in order of increasing
/// slack (latest start minus earliest start, recomputed as placements
/// accumulate); each operation is placed bidirectionally — near its
/// producers when it consumes more values than its result feeds, near
/// its consumers otherwise — to keep lifetimes short. When no
/// conflict-free slot exists in the window, conflicting operations are
/// ejected and rescheduled, with a budget bounding the total effort.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_HEURISTIC_SLACKSCHEDULER_H
#define MODSCHED_HEURISTIC_SLACKSCHEDULER_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"
#include "sched/ModuloSchedule.h"

#include <optional>

namespace modsched {

/// Slack scheduler knobs.
struct SlackSchedulerOptions {
  /// Scheduling-step budget per candidate II, as a multiple of N.
  int BudgetRatio = 5;
  /// Give up after MII + MaxIiIncrease.
  int MaxIiIncrease = 32;
  /// Extra schedule length beyond the minimum allowed for placements.
  int ScheduleLengthSlack = 20;
};

/// Result of a slack-scheduler run.
struct SlackResult {
  bool Found = false;
  ModuloSchedule Schedule;
  int II = 0;
  int Mii = 0;
};

/// Huff-style lifetime-sensitive modulo scheduler.
class SlackScheduler {
public:
  SlackScheduler(const MachineModel &M, SlackSchedulerOptions Options = {})
      : M(M), Opts(Options) {}

  /// Schedules \p G at the smallest II the heuristic achieves.
  SlackResult schedule(const DependenceGraph &G) const;

  /// One candidate II; nullopt when the budget is exhausted.
  std::optional<ModuloSchedule> scheduleAtIi(const DependenceGraph &G,
                                             int II) const;

private:
  const MachineModel &M;
  SlackSchedulerOptions Opts;
};

} // namespace modsched

#endif // MODSCHED_HEURISTIC_SLACKSCHEDULER_H
