//===- heuristic/StageScheduler.cpp - Stage scheduling post-pass ----------===//

#include "heuristic/StageScheduler.h"

#include "sched/RegisterPressure.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace modsched;

namespace {

/// Metric value of a schedule under \p Metric. Lexicographic tie-break on
/// the other metric so sweeps converge deterministically.
std::pair<long, long> metricOf(const DependenceGraph &G,
                               const ModuloSchedule &S, StageMetric Metric) {
  RegisterPressure P = computeRegisterPressure(G, S);
  if (Metric == StageMetric::MaxLive)
    return {P.MaxLive, P.TotalLifetime};
  return {P.TotalLifetime, P.MaxLive};
}

} // namespace

ModuloSchedule modsched::stageSchedule(const DependenceGraph &G,
                                       const ModuloSchedule &S,
                                       StageSchedulerOptions Opts) {
  int II = S.ii();
  int N = G.numOperations();
  ModuloSchedule Best = S;

  // Feasible time window of one operation given all the others, moving by
  // whole stages only (the row stays fixed, so resources are untouched).
  int MaxStage = S.numStages() - 1 + Opts.ExtraStages;
  int MaxTime = (MaxStage + 1) * II - 1;

  std::vector<std::vector<int>> OutEdges(N), InEdges(N);
  for (int E = 0; E < G.numSchedEdges(); ++E) {
    OutEdges[G.schedEdges()[E].Src].push_back(E);
    InEdges[G.schedEdges()[E].Dst].push_back(E);
  }

  std::pair<long, long> BestMetric = metricOf(G, Best, Opts.Metric);
  for (int Sweep = 0; Sweep < Opts.MaxSweeps; ++Sweep) {
    bool Improved = false;
    for (int Op = 0; Op < N; ++Op) {
      // Dependence window for Op with all other times fixed.
      int Lo = 0, Hi = MaxTime;
      for (int EI : InEdges[Op]) {
        const SchedEdge &E = G.schedEdges()[EI];
        if (E.Src == Op)
          continue; // Self-loops constrain II, not the placement.
        Lo = std::max(Lo, Best.time(E.Src) + E.Latency - II * E.Distance);
      }
      for (int EI : OutEdges[Op]) {
        const SchedEdge &E = G.schedEdges()[EI];
        if (E.Dst == Op)
          continue;
        Hi = std::min(Hi, Best.time(E.Dst) + II * E.Distance - E.Latency);
      }
      if (Lo > Hi)
        continue; // No slack (should not happen on a valid schedule).

      int Row = Best.row(Op);
      int Original = Best.time(Op);
      // Candidate stages: every k >= 0 with k*II + Row in [Lo, Hi].
      auto FloorDiv = [](int A, int B) {
        int Q = A / B;
        if (A % B != 0 && A < 0)
          --Q;
        return Q;
      };
      int KLo = std::max(0, FloorDiv(Lo - Row + II - 1, II));
      int KHi = std::min(MaxStage, FloorDiv(Hi - Row, II));
      for (int K = KLo; K <= KHi; ++K) {
        int Candidate = K * II + Row;
        if (Candidate < Lo || Candidate > Hi || Candidate == Original)
          continue;
        Best.times()[Op] = Candidate;
        std::pair<long, long> Metric = metricOf(G, Best, Opts.Metric);
        if (Metric < BestMetric) {
          BestMetric = Metric;
          Improved = true;
        } else {
          Best.times()[Op] = Original;
        }
        Original = Best.times()[Op];
      }
    }
    if (!Improved)
      break;
  }

  // Rows must be unchanged: stage scheduling never touches the MRT.
  for (int Op = 0; Op < N; ++Op)
    assert(Best.row(Op) == S.row(Op) && "stage scheduler changed a row");
  return Best;
}
