//===- heuristic/IterativeModuloScheduler.h - Rau's IMS ---------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rau's Iterative Modulo Scheduler [3][8]: the production heuristic the
/// paper evaluates against its optimal schedulers. Operations are
/// scheduled in height-based priority order; each operation searches the
/// II consecutive slots from its earliest start for a resource-conflict-
/// free slot, and may forcibly displace previously scheduled operations
/// (whose rescheduling consumes a budget). When the budget is exhausted
/// the candidate II is abandoned and II+1 is tried.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_HEURISTIC_ITERATIVEMODULOSCHEDULER_H
#define MODSCHED_HEURISTIC_ITERATIVEMODULOSCHEDULER_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"
#include "sched/ModuloSchedule.h"

#include <optional>

namespace modsched {

/// IMS tuning knobs.
struct ImsOptions {
  /// Budget = BudgetRatio * number of operations scheduling steps per
  /// candidate II (Rau's recommended default is small, e.g. 3).
  int BudgetRatio = 3;
  /// Give up after MII + MaxIiIncrease.
  int MaxIiIncrease = 32;
};

/// Result of an IMS run.
struct ImsResult {
  bool Found = false;
  ModuloSchedule Schedule;
  int II = 0;
  int Mii = 0;
};

/// The Iterative Modulo Scheduler.
class IterativeModuloScheduler {
public:
  IterativeModuloScheduler(const MachineModel &M, ImsOptions Options = {})
      : M(M), Opts(Options) {}

  /// Schedules \p G at the smallest II the heuristic can achieve.
  ImsResult schedule(const DependenceGraph &G) const;

  /// Attempts one candidate \p II; nullopt when the budget is exhausted.
  std::optional<ModuloSchedule> scheduleAtIi(const DependenceGraph &G,
                                             int II) const;

private:
  const MachineModel &M;
  ImsOptions Opts;
};

} // namespace modsched

#endif // MODSCHED_HEURISTIC_ITERATIVEMODULOSCHEDULER_H
