//===- textio/OpbFormat.h - OPB pseudo-Boolean text I/O ---------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads and writes the OPB text format of the pseudo-Boolean solver
/// competitions, the PB analogue of textio/LpWriter: the scheduling
/// models built by ilpsched/PbFormulation can be handed to an external
/// PB solver (Sat4j, RoundingSat, MiniSat+) for cross-validation.
///
/// Only the linear variable form is emitted — a negated-literal term
/// c * ~x is rewritten as the variable term -c * x with the degree
/// lowered by c, so any OPB consumer parses our output. The parser
/// re-normalizes rows to the "positive coefficients over literals,
/// >= degree" form pb::Solver::exportRows uses, making write -> parse
/// an exact structural round trip.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_TEXTIO_OPBFORMAT_H
#define MODSCHED_TEXTIO_OPBFORMAT_H

#include "pb/PbSolver.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace modsched {

/// One parsed OPB constraint, normalized to sum of positive-coefficient
/// literal terms >= Degree (the form pb::Solver exports).
struct OpbRow {
  std::vector<std::pair<pb::Lit, int64_t>> Terms;
  int64_t Degree = 0;
};

/// A parsed OPB problem.
struct OpbProblem {
  /// Number of variables (from the header comment, or the largest index
  /// seen, whichever is bigger).
  int NumVars = 0;
  /// True when a "min:" objective line is present.
  bool HasObjective = false;
  /// Minimized objective: signed coefficients over positive literals
  /// (OPB objectives carry no constant; see ObjectiveConstant).
  std::vector<std::pair<pb::Lit, int64_t>> Objective;
  /// Constant recovered from the "* objective constant" comment our
  /// writer emits (0 otherwise); model objective = constant + terms.
  int64_t ObjectiveConstant = 0;
  std::vector<OpbRow> Rows;
};

/// Renders \p P in OPB format ("* #variable= ..." header, optional
/// "min:" line, one ">= d ;" row per constraint).
std::string writeOpbFormat(const OpbProblem &P);

/// Renders the solver's original constraint rows plus the optional
/// objective (e.g. PbFormulation::objectiveTerms) in OPB format.
std::string writeOpbFormat(const pb::Solver &S,
                           const std::vector<std::pair<pb::Lit, int64_t>>
                               &Objective = {},
                           int64_t ObjectiveConstant = 0);

/// Parses OPB text. Accepts ">=" and "=" relations ("=" becomes the two
/// inequalities). Returns nullopt and fills \p Error on malformed input.
std::optional<OpbProblem> parseOpbFormat(const std::string &Text,
                                         std::string *Error = nullptr);

} // namespace modsched

#endif // MODSCHED_TEXTIO_OPBFORMAT_H
