//===- textio/MachineFormat.h - Machine description text format -*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line-oriented text format for machine models, the mirror image of
/// MachineModel::toString():
///
///   machine <name>
///   resource <name> x<count>
///   class <name> latency=<l> uses=<res>@<cycle>,<res>@<cycle>,...
///   # comments and blank lines ignored
///
/// This is the reduced-machine-description style of [22]: resource types
/// with multiplicities and per-class reservation offsets.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_TEXTIO_MACHINEFORMAT_H
#define MODSCHED_TEXTIO_MACHINEFORMAT_H

#include "machine/MachineModel.h"

#include <optional>
#include <string>

namespace modsched {

/// Parses \p Text into a machine model. On failure returns nullopt and,
/// when provided, fills \p Error with a line-numbered message.
std::optional<MachineModel> parseMachine(const std::string &Text,
                                         std::string *Error = nullptr);

/// Renders \p M in the machine text format; round-trips through
/// parseMachine.
std::string printMachine(const MachineModel &M);

} // namespace modsched

#endif // MODSCHED_TEXTIO_MACHINEFORMAT_H
