//===- textio/MachineFormat.cpp - Machine description text format ---------===//

#include "textio/MachineFormat.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

using namespace modsched;

namespace {

std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::istringstream In(Line);
  std::string Tok;
  while (In >> Tok) {
    if (Tok[0] == '#')
      break;
    Tokens.push_back(Tok);
  }
  return Tokens;
}

std::optional<MachineModel> fail(std::string *Error, int LineNo,
                                 const std::string &Message) {
  if (Error) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf), "line %d: %s", LineNo, Message.c_str());
    *Error = Buf;
  }
  return std::nullopt;
}

/// Parses a non-negative integer; returns -1 on failure.
int parseInt(const std::string &S) {
  if (S.empty())
    return -1;
  int Value = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return -1;
    Value = Value * 10 + (C - '0');
    if (Value > 1000000)
      return -1;
  }
  return Value;
}

} // namespace

std::optional<MachineModel> modsched::parseMachine(const std::string &Text,
                                                   std::string *Error) {
  MachineModel M;
  std::map<std::string, int> ResourceByName;
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;

  while (std::getline(In, Line)) {
    ++LineNo;
    std::vector<std::string> Tok = tokenize(Line);
    if (Tok.empty())
      continue;

    if (Tok[0] == "machine") {
      if (Tok.size() != 2)
        return fail(Error, LineNo, "expected: machine <name>");
      M.setName(Tok[1]);
      continue;
    }
    if (Tok[0] == "resource") {
      if (Tok.size() != 3 || Tok[2].empty() || Tok[2][0] != 'x')
        return fail(Error, LineNo, "expected: resource <name> x<count>");
      int Count = parseInt(Tok[2].substr(1));
      if (Count <= 0)
        return fail(Error, LineNo, "resource count must be positive");
      if (ResourceByName.count(Tok[1]))
        return fail(Error, LineNo, "duplicate resource " + Tok[1]);
      ResourceByName[Tok[1]] = M.addResource(Tok[1], Count);
      continue;
    }
    if (Tok[0] == "class") {
      if (Tok.size() != 4 || Tok[2].rfind("latency=", 0) != 0 ||
          Tok[3].rfind("uses=", 0) != 0)
        return fail(Error, LineNo,
                    "expected: class <name> latency=<l> uses=<r>@<c>,...");
      int Latency = parseInt(Tok[2].substr(8));
      if (Latency < 0)
        return fail(Error, LineNo, "malformed latency");
      if (M.findOpClass(Tok[1]))
        return fail(Error, LineNo, "duplicate class " + Tok[1]);

      std::vector<ResourceUsage> Usages;
      std::string UsesSpec = Tok[3].substr(5);
      std::istringstream UseIn(UsesSpec);
      std::string Item;
      while (std::getline(UseIn, Item, ',')) {
        if (Item.empty())
          continue;
        size_t At = Item.find('@');
        if (At == std::string::npos)
          return fail(Error, LineNo, "usage must be <resource>@<cycle>");
        std::string ResName = Item.substr(0, At);
        int Cycle = parseInt(Item.substr(At + 1));
        auto It = ResourceByName.find(ResName);
        if (It == ResourceByName.end())
          return fail(Error, LineNo, "unknown resource " + ResName);
        if (Cycle < 0)
          return fail(Error, LineNo, "malformed usage cycle");
        Usages.push_back({It->second, Cycle});
      }
      M.addOpClass(Tok[1], Latency, std::move(Usages));
      continue;
    }
    return fail(Error, LineNo, "unknown directive " + Tok[0]);
  }

  if (M.numOpClasses() == 0)
    return fail(Error, LineNo, "machine defines no operation classes");
  return M;
}

std::string modsched::printMachine(const MachineModel &M) {
  // MachineModel::toString already emits the parseable format; keep a
  // dedicated entry point so callers do not depend on that coincidence.
  return M.toString();
}
