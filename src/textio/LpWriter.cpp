//===- textio/LpWriter.cpp - CPLEX LP-format model export ------------------===//

#include "textio/LpWriter.h"

#include <cctype>
#include <cmath>
#include <cstdio>

using namespace modsched;
using namespace modsched::lp;

namespace {

/// LP-format-safe variable name: prefixed with the index, punctuation
/// replaced by underscores.
std::string lpName(int Index, const Variable &V) {
  std::string Name = "v" + std::to_string(Index) + "_";
  for (char C : V.Name)
    Name += (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
                ? C
                : '_';
  return Name;
}

void appendCoeff(std::string &Out, double Coeff, const std::string &Name,
                 bool First) {
  char Buf[128];
  if (First)
    std::snprintf(Buf, sizeof(Buf), "%g %s", Coeff, Name.c_str());
  else if (Coeff < 0)
    std::snprintf(Buf, sizeof(Buf), " - %g %s", -Coeff, Name.c_str());
  else
    std::snprintf(Buf, sizeof(Buf), " + %g %s", Coeff, Name.c_str());
  Out += Buf;
}

} // namespace

std::string modsched::writeLpFormat(const Model &M) {
  std::vector<std::string> Names;
  Names.reserve(M.numVariables());
  for (int V = 0; V < M.numVariables(); ++V)
    Names.push_back(lpName(V, M.variable(V)));

  std::string Out = "\\ exported by modsched (PLDI'97 repro)\nMinimize\n obj:";
  bool First = true;
  for (int V = 0; V < M.numVariables(); ++V) {
    double C = M.variable(V).Objective;
    if (C == 0.0)
      continue;
    Out += ' ';
    appendCoeff(Out, C, Names[V], First);
    First = false;
  }
  if (First)
    Out += " 0 " + (M.numVariables() ? Names[0] : std::string("x"));
  Out += "\nSubject To\n";

  char Buf[128];
  for (int C = 0; C < M.numConstraints(); ++C) {
    const Constraint &Con = M.constraint(C);
    std::snprintf(Buf, sizeof(Buf), " c%d: ", C);
    Out += Buf;
    bool FirstTerm = true;
    for (const Term &T : Con.Terms) {
      appendCoeff(Out, T.second, Names[T.first], FirstTerm);
      FirstTerm = false;
    }
    if (FirstTerm)
      Out += "0 " + Names[0];
    const char *Sense = Con.Sense == ConstraintSense::LE   ? "<="
                        : Con.Sense == ConstraintSense::GE ? ">="
                                                           : "=";
    std::snprintf(Buf, sizeof(Buf), " %s %g\n", Sense, Con.Rhs);
    Out += Buf;
  }

  Out += "Bounds\n";
  for (int V = 0; V < M.numVariables(); ++V) {
    const Variable &Var = M.variable(V);
    bool LoInf = std::isinf(Var.Lower);
    bool UpInf = std::isinf(Var.Upper);
    if (LoInf && UpInf) {
      Out += " " + Names[V] + " free\n";
      continue;
    }
    if (LoInf)
      std::snprintf(Buf, sizeof(Buf), " -inf <= %s <= %g\n",
                    Names[V].c_str(), Var.Upper);
    else if (UpInf)
      std::snprintf(Buf, sizeof(Buf), " %g <= %s\n", Var.Lower,
                    Names[V].c_str());
    else
      std::snprintf(Buf, sizeof(Buf), " %g <= %s <= %g\n", Var.Lower,
                    Names[V].c_str(), Var.Upper);
    Out += Buf;
  }

  bool AnyInteger = false;
  for (int V = 0; V < M.numVariables(); ++V) {
    if (M.variable(V).Kind != VarKind::Integer)
      continue;
    if (!AnyInteger)
      Out += "Generals\n";
    AnyInteger = true;
    Out += " " + Names[V] + "\n";
  }
  Out += "End\n";
  return Out;
}
