//===- textio/DdgFormat.cpp - Loop text format -----------------------------===//

#include "textio/DdgFormat.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

using namespace modsched;

namespace {

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::istringstream In(Line);
  std::string Tok;
  while (In >> Tok) {
    if (Tok[0] == '#')
      break;
    Tokens.push_back(Tok);
  }
  return Tokens;
}

/// Parses "key=value" with an integer value; returns false on mismatch.
bool parseKeyInt(const std::string &Tok, const char *Key, int &Out) {
  std::string Prefix = std::string(Key) + "=";
  if (Tok.rfind(Prefix, 0) != 0)
    return false;
  try {
    size_t Used = 0;
    Out = std::stoi(Tok.substr(Prefix.size()), &Used);
    return Used == Tok.size() - Prefix.size();
  } catch (...) {
    return false;
  }
}

std::optional<DependenceGraph> fail(std::string *Error, int LineNo,
                                    const std::string &Message) {
  if (Error) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf), "line %d: %s", LineNo, Message.c_str());
    *Error = Buf;
  }
  return std::nullopt;
}

} // namespace

std::optional<DependenceGraph> modsched::parseDdg(const std::string &Text,
                                                  const MachineModel &M,
                                                  std::string *Error) {
  DependenceGraph G;
  std::map<std::string, int> OpByName;
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;

  auto LookupOp = [&](const std::string &Name) {
    auto It = OpByName.find(Name);
    return It == OpByName.end() ? -1 : It->second;
  };

  while (std::getline(In, Line)) {
    ++LineNo;
    std::vector<std::string> Tok = tokenize(Line);
    if (Tok.empty())
      continue;

    if (Tok[0] == "loop") {
      if (Tok.size() != 2)
        return fail(Error, LineNo, "expected: loop <name>");
      G.setName(Tok[1]);
      continue;
    }
    if (Tok[0] == "op") {
      if (Tok.size() != 3)
        return fail(Error, LineNo, "expected: op <name> <class>");
      if (OpByName.count(Tok[1]))
        return fail(Error, LineNo, "duplicate operation name " + Tok[1]);
      std::optional<int> Class = M.findOpClass(Tok[2]);
      if (!Class)
        return fail(Error, LineNo, "unknown operation class " + Tok[2]);
      OpByName[Tok[1]] = G.addOperation(Tok[1], *Class);
      continue;
    }
    if (Tok[0] == "flow" || Tok[0] == "edge") {
      if (Tok.size() != 5)
        return fail(Error, LineNo,
                    "expected: " + Tok[0] +
                        " <src> <dst> latency=<l> omega=<w>");
      int Src = LookupOp(Tok[1]);
      int Dst = LookupOp(Tok[2]);
      if (Src < 0 || Dst < 0)
        return fail(Error, LineNo, "unknown operation in edge");
      int Latency = 0, Omega = 0;
      if (!parseKeyInt(Tok[3], "latency", Latency) ||
          !parseKeyInt(Tok[4], "omega", Omega))
        return fail(Error, LineNo, "malformed latency/omega");
      if (Omega < 0)
        return fail(Error, LineNo, "omega must be non-negative");
      if (Tok[0] == "flow")
        G.addFlowDependence(Src, Dst, Latency, Omega);
      else
        G.addSchedEdge(Src, Dst, Latency, Omega);
      continue;
    }
    return fail(Error, LineNo, "unknown directive " + Tok[0]);
  }

  if (std::optional<std::string> Problem = G.validate())
    return fail(Error, LineNo, *Problem);
  return G;
}

std::optional<DependenceGraph>
modsched::loadDdgFile(const std::string &Path, const MachineModel &M,
                      std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open " + Path;
    return std::nullopt;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return parseDdg(Buffer.str(), M, Error);
}

std::string modsched::printDdg(const DependenceGraph &G,
                               const MachineModel &M) {
  std::string Out = "loop " + G.name() + "\n";
  char Buf[256];
  for (const Operation &Op : G.operations()) {
    std::snprintf(Buf, sizeof(Buf), "op %s %s\n", Op.Name.c_str(),
                  M.opClass(Op.OpClass).Name.c_str());
    Out += Buf;
  }
  // Flow edges are those matching a (def, use, distance) register record;
  // emit them as "flow" and everything else as "edge". Each register use
  // consumes one matching sched edge.
  std::vector<std::vector<std::pair<int, int>>> PendingUses(
      G.numOperations()); // def -> list of (use, distance) not yet matched
  for (const VirtualRegister &R : G.registers())
    for (const RegisterUse &U : R.Uses)
      PendingUses[R.Def].push_back({U.Consumer, U.Distance});

  for (const SchedEdge &E : G.schedEdges()) {
    bool IsFlow = false;
    auto &Uses = PendingUses[E.Src];
    for (size_t I = 0; I < Uses.size(); ++I) {
      if (Uses[I].first == E.Dst && Uses[I].second == E.Distance) {
        Uses.erase(Uses.begin() + I);
        IsFlow = true;
        break;
      }
    }
    std::snprintf(Buf, sizeof(Buf), "%s %s %s latency=%d omega=%d\n",
                  IsFlow ? "flow" : "edge",
                  G.operation(E.Src).Name.c_str(),
                  G.operation(E.Dst).Name.c_str(), E.Latency, E.Distance);
    Out += Buf;
  }
  return Out;
}
