//===- textio/DdgFormat.h - Loop text format --------------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small line-oriented text format for dependence graphs, so loops can
/// be written by hand, dumped, and round-tripped in tests and examples:
///
///   loop <name>
///   op <opname> <class>
///   flow <def> <use> latency=<l> omega=<w>   # register + sched edge
///   edge <src> <dst> latency=<l> omega=<w>   # sched edge only
///   # comments and blank lines are ignored
///
/// Operation classes are resolved against a machine model at parse time.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_TEXTIO_DDGFORMAT_H
#define MODSCHED_TEXTIO_DDGFORMAT_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"

#include <optional>
#include <string>

namespace modsched {

/// Parses \p Text into a dependence graph against machine \p M. On
/// failure returns nullopt and, when provided, fills \p Error with a
/// line-numbered message.
std::optional<DependenceGraph> parseDdg(const std::string &Text,
                                        const MachineModel &M,
                                        std::string *Error = nullptr);

/// Renders \p G in the .ddg format (round-trips through parseDdg when
/// the machine resolves the same class names).
std::string printDdg(const DependenceGraph &G, const MachineModel &M);

/// Convenience: reads and parses a .ddg file. On failure returns nullopt
/// and fills \p Error (including I/O failures).
std::optional<DependenceGraph> loadDdgFile(const std::string &Path,
                                           const MachineModel &M,
                                           std::string *Error = nullptr);

} // namespace modsched

#endif // MODSCHED_TEXTIO_DDGFORMAT_H
