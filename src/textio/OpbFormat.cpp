//===- textio/OpbFormat.cpp - OPB pseudo-Boolean text I/O -----------------===//

#include "textio/OpbFormat.h"

#include <algorithm>
#include <sstream>

using namespace modsched;

namespace {

/// Appends "+c xN" / "-c xN" for one normalized literal term, folding a
/// negated literal into variable form: c * ~x == c - c * x, so the
/// degree drops by c.
void emitTerm(std::ostringstream &Out, pb::Lit L, int64_t Coeff,
              int64_t &Degree) {
  int64_t VarCoeff = Coeff;
  if (L.negated()) {
    VarCoeff = -Coeff;
    Degree -= Coeff;
  }
  Out << (VarCoeff >= 0 ? "+" : "") << VarCoeff << " x" << (L.var() + 1)
      << " ";
}

/// One statement's left-hand side in signed variable form: the sum of
/// Coeff * x terms plus a folded constant (from ~x literals).
struct SignedLhs {
  std::vector<std::pair<pb::Var, int64_t>> Terms;
  int64_t Constant = 0;
};

bool parseInt(const std::string &Tok, int64_t &Out) {
  if (Tok.empty())
    return false;
  size_t I = 0;
  bool Neg = false;
  if (Tok[I] == '+' || Tok[I] == '-') {
    Neg = Tok[I] == '-';
    ++I;
  }
  if (I == Tok.size())
    return false;
  int64_t Val = 0;
  for (; I < Tok.size(); ++I) {
    if (Tok[I] < '0' || Tok[I] > '9')
      return false;
    Val = Val * 10 + (Tok[I] - '0');
  }
  Out = Neg ? -Val : Val;
  return true;
}

} // namespace

std::string modsched::writeOpbFormat(const OpbProblem &P) {
  std::ostringstream Out;
  Out << "* #variable= " << P.NumVars << " #constraint= " << P.Rows.size()
      << "\n";
  if (P.HasObjective) {
    if (P.ObjectiveConstant != 0)
      Out << "* objective constant " << P.ObjectiveConstant << "\n";
    Out << "min: ";
    int64_t Ignored = 0;
    for (const std::pair<pb::Lit, int64_t> &T : P.Objective)
      emitTerm(Out, T.first, T.second, Ignored);
    Out << ";\n";
  }
  for (const OpbRow &Row : P.Rows) {
    std::ostringstream Line;
    int64_t Degree = Row.Degree;
    for (const std::pair<pb::Lit, int64_t> &T : Row.Terms)
      emitTerm(Line, T.first, T.second, Degree);
    Out << Line.str() << ">= " << Degree << " ;\n";
  }
  return Out.str();
}

std::string modsched::writeOpbFormat(
    const pb::Solver &S,
    const std::vector<std::pair<pb::Lit, int64_t>> &Objective,
    int64_t ObjectiveConstant) {
  OpbProblem P;
  P.NumVars = S.numVars();
  P.HasObjective = !Objective.empty() || ObjectiveConstant != 0;
  P.Objective = Objective;
  P.ObjectiveConstant = ObjectiveConstant;
  P.Rows.reserve(S.exportRows().size());
  for (const pb::ExportRow &R : S.exportRows())
    P.Rows.push_back({R.Terms, R.Degree});
  return writeOpbFormat(P);
}

std::optional<OpbProblem> modsched::parseOpbFormat(const std::string &Text,
                                                   std::string *Error) {
  auto Fail = [Error](const std::string &Msg) -> std::optional<OpbProblem> {
    if (Error)
      *Error = Msg;
    return std::nullopt;
  };

  OpbProblem P;
  int MaxVar = 0;

  // First pass over lines: recover the writer's objective-constant
  // comment, drop every other comment, and join the remaining text so
  // statements can span lines until their ';'.
  std::ostringstream Joined;
  {
    std::istringstream Lines(Text);
    std::string Line;
    while (std::getline(Lines, Line)) {
      size_t First = Line.find_first_not_of(" \t\r");
      if (First == std::string::npos)
        continue;
      if (Line[First] == '*') {
        std::istringstream Comment(Line.substr(First + 1));
        std::string A, B;
        int64_t C = 0;
        std::string CTok;
        if (Comment >> A >> B >> CTok && A == "objective" &&
            B == "constant" && parseInt(CTok, C))
          P.ObjectiveConstant = C;
        continue;
      }
      Joined << Line << "\n";
    }
  }

  // Statement scan: "min:" objective or "<terms> REL <rhs> ;" rows.
  std::istringstream In(Joined.str());
  std::string Tok;
  while (In >> Tok) {
    bool IsObjective = Tok == "min:";
    if (IsObjective) {
      if (P.HasObjective)
        return Fail("duplicate objective line");
      P.HasObjective = true;
      if (!(In >> Tok))
        return Fail("unterminated objective");
    }

    // Accumulate the statement's terms in signed variable form (a
    // negated literal c * ~x folds into -c * x plus the constant c).
    SignedLhs Lhs;
    std::string Rel;
    for (;;) {
      if (Tok == ";" || Tok == ">=" || Tok == "=" || Tok == "<=") {
        Rel = Tok;
        break;
      }
      int64_t Coeff = 0;
      if (!parseInt(Tok, Coeff))
        return Fail("malformed coefficient '" + Tok + "'");
      if (!(In >> Tok))
        return Fail("dangling coefficient at end of input");
      bool Negated = !Tok.empty() && Tok[0] == '~';
      std::string Name = Negated ? Tok.substr(1) : Tok;
      int64_t VarNum = 0;
      if (Name.size() < 2 || Name[0] != 'x' ||
          !parseInt(Name.substr(1), VarNum) || VarNum <= 0)
        return Fail("malformed literal '" + Tok + "'");
      MaxVar = std::max(MaxVar, int(VarNum));
      if (Negated) {
        Lhs.Terms.push_back({pb::Var(VarNum - 1), -Coeff});
        Lhs.Constant += Coeff;
      } else {
        Lhs.Terms.push_back({pb::Var(VarNum - 1), Coeff});
      }
      if (!(In >> Tok))
        return Fail("unterminated statement");
    }

    if (IsObjective) {
      if (Rel != ";")
        return Fail("objective must end with ';'");
      for (const std::pair<pb::Var, int64_t> &T : Lhs.Terms)
        P.Objective.push_back({pb::posLit(T.first), T.second});
      P.ObjectiveConstant += Lhs.Constant;
      continue;
    }
    if (Rel == ";")
      return Fail("constraint without relation");

    std::string RhsTok;
    int64_t Rhs = 0;
    if (!(In >> RhsTok) || !parseInt(RhsTok, Rhs))
      return Fail("malformed right-hand side");
    if (!(In >> RhsTok) || RhsTok != ";")
      return Fail("constraint not terminated by ';'");

    // Normalize into >=-rows over positive-coefficient literals:
    // sum(c * x) >= d with c < 0 becomes |c| * ~x with d raised by |c|.
    auto PushGe = [&](int64_t Sign) {
      OpbRow Row;
      Row.Degree = Sign * (Rhs - Lhs.Constant);
      for (const std::pair<pb::Var, int64_t> &T : Lhs.Terms) {
        int64_t C = Sign * T.second;
        if (C >= 0) {
          Row.Terms.push_back({pb::posLit(T.first), C});
        } else {
          Row.Terms.push_back({pb::negLit(T.first), -C});
          Row.Degree += -C;
        }
      }
      P.Rows.push_back(std::move(Row));
    };
    if (Rel == ">=" || Rel == "=")
      PushGe(+1);
    if (Rel == "<=" || Rel == "=")
      PushGe(-1);
  }

  P.NumVars = std::max(P.NumVars, MaxVar);
  return P;
}
