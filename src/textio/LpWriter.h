//===- textio/LpWriter.h - CPLEX LP-format model export ---------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports an lp::Model in the CPLEX LP text format, so the scheduling
/// ILPs built by this library can be handed to an external solver
/// (CPLEX, Gurobi, CBC, HiGHS, glpsol --lp) for cross-validation — the
/// paper's original experiments used CPLEX.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_TEXTIO_LPWRITER_H
#define MODSCHED_TEXTIO_LPWRITER_H

#include "lp/Model.h"

#include <string>

namespace modsched {

/// Renders \p M in CPLEX LP format (Minimize / Subject To / Bounds /
/// Generals / End). Variable names are sanitized: LP format forbids
/// names starting with a digit or 'e'/'E' followed by digits, so every
/// name is prefixed with "v<idx>_".
std::string writeLpFormat(const lp::Model &M);

} // namespace modsched

#endif // MODSCHED_TEXTIO_LPWRITER_H
