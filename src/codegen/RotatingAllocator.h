//===- codegen/RotatingAllocator.h - Rotating register allocation -*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register allocation for a modulo schedule on a machine with a rotating
/// register file (the Cydra 5 model): each virtual register v receives a
/// base offset b(v); the instance of v produced by iteration i lives in
/// physical register (b(v) + i) mod R, where R is the file size. Two
/// instances (v, i) and (w, j) collide iff b(v) + i == b(w) + j (mod R)
/// while their lifetimes overlap.
///
/// MaxLive is a lower bound on R; a first-fit allocator typically needs
/// at most MaxLive + 1 registers (Rau et al., "Register allocation for
/// software pipelined loops", PLDI 1992 report best-fit within
/// MaxLive + 1 on virtually all loops). This allocator searches upward
/// from MaxLive and reports the achieved R, which the tests compare to
/// MaxLive — tying the paper's MinReg objective to the physical resource
/// it models.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_CODEGEN_ROTATINGALLOCATOR_H
#define MODSCHED_CODEGEN_ROTATINGALLOCATOR_H

#include "graph/DependenceGraph.h"
#include "sched/ModuloSchedule.h"

#include <optional>
#include <vector>

namespace modsched {

/// A successful rotating allocation.
struct RotatingAllocation {
  /// Size of the rotating file used.
  int FileSize = 0;
  /// Base offset per virtual register.
  std::vector<int> BaseOffset;
  /// MaxLive of the schedule (lower bound on FileSize).
  int MaxLive = 0;
};

/// First-fit rotating allocation for \p S, trying file sizes from
/// MaxLive up to MaxLive + numRegisters. Returns nullopt only if every
/// size in that range fails (not expected in practice).
std::optional<RotatingAllocation>
allocateRotating(const DependenceGraph &G, const ModuloSchedule &S);

/// True iff \p Allocation is collision-free for \p S: no two live
/// register instances map to the same physical register. Checked
/// directly from the collision condition over all relevant iteration
/// distances (used by the tests as an independent validator).
bool verifyRotatingAllocation(const DependenceGraph &G,
                              const ModuloSchedule &S,
                              const RotatingAllocation &Allocation);

} // namespace modsched

#endif // MODSCHED_CODEGEN_ROTATINGALLOCATOR_H
