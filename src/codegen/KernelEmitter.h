//===- codegen/KernelEmitter.h - Pipelined code emission --------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a modulo schedule into software-pipelined pseudo-assembly:
/// prologue (filling the pipeline), kernel (the steady state), and
/// epilogue (draining it). Machines without rotating register files need
/// *modulo variable expansion* (Lam): the kernel is unrolled by
///   U = max over virtual registers of ceil(lifetime / II)
/// copies so that no value is overwritten before its last use; register
/// names rotate across the copies. (On a rotating-register machine such
/// as the Cydra 5, U is 1 and MaxLive rotating registers suffice — which
/// is exactly the quantity the MinReg scheduler minimizes.)
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_CODEGEN_KERNELEMITTER_H
#define MODSCHED_CODEGEN_KERNELEMITTER_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"
#include "sched/ModuloSchedule.h"

#include <string>
#include <vector>

namespace modsched {

/// One emitted instruction slot.
struct EmittedOp {
  long Cycle;        ///< Cycle within its section.
  int Op;            ///< Operation index in the graph.
  int IterationBack; ///< 0 = current iteration, 1 = previous, ...
  std::string Text;  ///< Rendered "op dst = srcs" line.
};

/// A software-pipelined loop in three sections.
struct PipelinedLoop {
  int II = 1;
  int NumStages = 1;
  /// Modulo-variable-expansion unroll degree of the kernel.
  int UnrollFactor = 1;
  /// Registers needed with MVE (names used across all sections).
  int NumRegisterNames = 0;
  std::vector<EmittedOp> Prologue;
  std::vector<EmittedOp> Kernel; ///< UnrollFactor * II cycles, cyclic.
  std::vector<EmittedOp> Epilogue;

  /// Renders the three sections as readable pseudo-assembly.
  std::string text(const DependenceGraph &G) const;
};

/// Emits the pipelined form of \p S. The schedule must be valid
/// (asserted via the static verifier in debug builds).
PipelinedLoop emitPipelinedLoop(const DependenceGraph &G,
                                const MachineModel &M,
                                const ModuloSchedule &S);

/// The modulo-variable-expansion unroll factor of \p S:
/// max over registers of ceil(lifetime / II), at least 1.
int mveUnrollFactor(const DependenceGraph &G, const ModuloSchedule &S);

} // namespace modsched

#endif // MODSCHED_CODEGEN_KERNELEMITTER_H
