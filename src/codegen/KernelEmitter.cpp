//===- codegen/KernelEmitter.cpp - Pipelined code emission ----------------===//

#include "codegen/KernelEmitter.h"

#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace modsched;

int modsched::mveUnrollFactor(const DependenceGraph &G,
                              const ModuloSchedule &S) {
  int U = 1;
  for (int Reg = 0; Reg < G.numRegisters(); ++Reg) {
    int Def = S.time(G.registers()[Reg].Def);
    int Kill = registerKillTime(G, S, Reg);
    int Length = Kill - Def + 1;
    U = std::max(U, (Length + S.ii() - 1) / S.ii());
  }
  return U;
}

namespace {

/// Renders one operation instance. \p CopyOf maps an operation to the
/// unroll copy whose registers it reads/writes; register names rotate
/// modulo the unroll factor.
std::string renderOp(const DependenceGraph &G, int Op, int Copy, int Unroll,
                     const std::vector<int> &RegOfDef) {
  std::string Text = G.operation(Op).Name;
  // Destination register, if the op defines one.
  if (RegOfDef[Op] >= 0) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), " -> v%d.%d", RegOfDef[Op],
                  ((Copy % Unroll) + Unroll) % Unroll);
    Text += Buf;
  }
  // Source registers: every register that lists this op as a consumer.
  bool FirstSrc = true;
  for (int Reg = 0; Reg < G.numRegisters(); ++Reg) {
    for (const RegisterUse &U : G.registers()[Reg].Uses) {
      if (U.Consumer != Op)
        continue;
      int ProducerCopy = (((Copy - U.Distance) % Unroll) + Unroll) % Unroll;
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%s v%d.%d",
                    FirstSrc ? "  reads" : ",", Reg, ProducerCopy);
      Text += Buf;
      FirstSrc = false;
    }
  }
  return Text;
}

} // namespace

PipelinedLoop modsched::emitPipelinedLoop(const DependenceGraph &G,
                                          const MachineModel &M,
                                          const ModuloSchedule &S) {
  assert(!verifySchedule(G, M, S) && "emitting an invalid schedule");
  PipelinedLoop Out;
  int II = S.ii();
  Out.II = II;
  Out.NumStages = S.numStages();
  Out.UnrollFactor = mveUnrollFactor(G, S);

  std::vector<int> RegOfDef(G.numOperations(), -1);
  for (int Reg = 0; Reg < G.numRegisters(); ++Reg)
    RegOfDef[G.registers()[Reg].Def] = Reg;
  Out.NumRegisterNames = G.numRegisters() * Out.UnrollFactor;

  int SC = Out.NumStages;
  int U = Out.UnrollFactor;

  // Prologue: iterations 0 .. SC-2, truncated at cycle (SC-1)*II.
  // Iteration i issues op o at cycle time(o) + i*II; copy = i mod U.
  for (int Iter = 0; Iter + 1 < SC; ++Iter) {
    for (int Op = 0; Op < G.numOperations(); ++Op) {
      long Cycle = S.time(Op) + long(Iter) * II;
      if (Cycle >= long(SC - 1) * II)
        continue; // Issued by the kernel instead.
      Out.Prologue.push_back({Cycle, Op, SC - 2 - Iter,
                              renderOp(G, Op, Iter, U, RegOfDef)});
    }
  }

  // Kernel: U*II cycles; op o of copy u issues at (time(o) + u*II)
  // modulo U*II. One kernel pass completes U iterations in steady state.
  long KernelLen = long(U) * II;
  for (int Copy = 0; Copy < U; ++Copy) {
    for (int Op = 0; Op < G.numOperations(); ++Op) {
      long Cycle = (S.time(Op) + long(Copy) * II) % KernelLen;
      Out.Kernel.push_back({Cycle, Op, S.stage(Op),
                            renderOp(G, Op, Copy, U, RegOfDef)});
    }
  }

  // Epilogue: drain iterations n-SC+1 .. n-1. Counting b = 0 for the
  // last iteration (initiated at the kernel's final pass), its op o
  // still pending if time(o) >= (b+1)*II; it issues at epilogue cycle
  // time(o) - (b+1)*II.
  for (int Back = 0; Back + 1 < SC; ++Back) {
    for (int Op = 0; Op < G.numOperations(); ++Op) {
      long Cycle = S.time(Op) - long(Back + 1) * II;
      if (Cycle < 0)
        continue; // Already issued in the kernel.
      // The last full kernel pass ran copies 0..U-1; the iteration "b
      // back from the end" used copy (U-1-b) mod U.
      int Copy = ((U - 1 - Back) % U + U) % U;
      Out.Epilogue.push_back({Cycle, Op, Back,
                              renderOp(G, Op, Copy, U, RegOfDef)});
    }
  }

  auto ByCycle = [](const EmittedOp &A, const EmittedOp &B) {
    return A.Cycle != B.Cycle ? A.Cycle < B.Cycle : A.Op < B.Op;
  };
  std::sort(Out.Prologue.begin(), Out.Prologue.end(), ByCycle);
  std::sort(Out.Kernel.begin(), Out.Kernel.end(), ByCycle);
  std::sort(Out.Epilogue.begin(), Out.Epilogue.end(), ByCycle);
  return Out;
}

std::string PipelinedLoop::text(const DependenceGraph &G) const {
  (void)G;
  std::string Out;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "; II=%d stages=%d unroll=%d register-names=%d\n", II,
                NumStages, UnrollFactor, NumRegisterNames);
  Out += Buf;
  auto Section = [&Out](const char *Name,
                        const std::vector<EmittedOp> &Ops) {
    Out += Name;
    Out += ":\n";
    long LastCycle = -1;
    for (const EmittedOp &E : Ops) {
      char Line[192];
      if (E.Cycle != LastCycle) {
        std::snprintf(Line, sizeof(Line), "  cycle %3ld:\n", E.Cycle);
        Out += Line;
        LastCycle = E.Cycle;
      }
      std::snprintf(Line, sizeof(Line), "    %s\n", E.Text.c_str());
      Out += Line;
    }
  };
  Section("prologue", Prologue);
  Section("kernel (repeat)", Kernel);
  Section("epilogue", Epilogue);
  return Out;
}
