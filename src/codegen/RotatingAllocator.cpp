//===- codegen/RotatingAllocator.cpp - Rotating register allocation -------===//

#include "codegen/RotatingAllocator.h"

#include "sched/RegisterPressure.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace modsched;

namespace {

/// Floored division for window bounds.
long floorDiv(long A, long B) {
  long Q = A / B;
  if (A % B != 0 && A < 0)
    --Q;
  return Q;
}

long ceilDiv(long A, long B) { return floorDiv(A + B - 1, B); }

/// True iff registers with lifetimes [Dv,Kv] and [Dw,Kw] (iteration-0
/// instances) collide in a file of size \p R when their base offsets
/// differ by \p BaseDiff = b(v) - b(w): some iteration distance
/// Delta = j - i with Delta == BaseDiff (mod R) makes instance (w, j)
/// overlap instance (v, i) in time. \p SameRegister excludes Delta == 0.
bool collide(long Dv, long Kv, long Dw, long Kw, int II, int R,
             long BaseDiff, bool SameRegister) {
  long Lo = ceilDiv(Dv - Kw, II);
  long Hi = floorDiv(Kv - Dw, II);
  for (long Delta = Lo; Delta <= Hi; ++Delta) {
    if (SameRegister && Delta == 0)
      continue;
    long Residue = (Delta - BaseDiff) % R;
    if (Residue < 0)
      Residue += R;
    if (Residue == 0)
      return true;
  }
  return false;
}

} // namespace

std::optional<RotatingAllocation>
modsched::allocateRotating(const DependenceGraph &G,
                           const ModuloSchedule &S) {
  int NumRegs = G.numRegisters();
  RegisterPressure P = computeRegisterPressure(G, S);

  RotatingAllocation Out;
  Out.MaxLive = P.MaxLive;
  if (NumRegs == 0) {
    Out.FileSize = 0;
    return Out;
  }

  std::vector<long> Def(NumRegs), Kill(NumRegs);
  for (int Reg = 0; Reg < NumRegs; ++Reg) {
    Def[Reg] = S.time(G.registers()[Reg].Def);
    Kill[Reg] = registerKillTime(G, S, Reg);
  }

  // First-fit in increasing def-time order, growing the file on failure.
  std::vector<int> Order(NumRegs);
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(),
            [&Def](int A, int B) { return Def[A] < Def[B]; });

  int II = S.ii();
  for (int R = std::max(1, P.MaxLive); R <= P.MaxLive + NumRegs + 1; ++R) {
    std::vector<int> Base(NumRegs, -1);
    bool Ok = true;
    for (int V : Order) {
      int Chosen = -1;
      for (int B = 0; B < R && Chosen < 0; ++B) {
        bool Clash =
            collide(Def[V], Kill[V], Def[V], Kill[V], II, R, 0,
                    /*SameRegister=*/true);
        for (int W : Order) {
          if (Clash || W == V)
            break;
          if (Base[W] < 0)
            continue;
          Clash = collide(Def[V], Kill[V], Def[W], Kill[W], II, R,
                          B - Base[W], /*SameRegister=*/false);
        }
        if (!Clash)
          Chosen = B;
      }
      if (Chosen < 0) {
        Ok = false;
        break;
      }
      Base[V] = Chosen;
    }
    if (Ok) {
      Out.FileSize = R;
      Out.BaseOffset = std::move(Base);
      return Out;
    }
  }
  return std::nullopt;
}

bool modsched::verifyRotatingAllocation(const DependenceGraph &G,
                                        const ModuloSchedule &S,
                                        const RotatingAllocation &A) {
  int NumRegs = G.numRegisters();
  if (static_cast<int>(A.BaseOffset.size()) != NumRegs)
    return NumRegs == 0;
  int II = S.ii();
  for (int V = 0; V < NumRegs; ++V) {
    long Dv = S.time(G.registers()[V].Def);
    long Kv = registerKillTime(G, S, V);
    if (collide(Dv, Kv, Dv, Kv, II, A.FileSize, 0, /*SameRegister=*/true))
      return false;
    for (int W = V + 1; W < NumRegs; ++W) {
      long Dw = S.time(G.registers()[W].Def);
      long Kw = registerKillTime(G, S, W);
      if (collide(Dv, Kv, Dw, Kw, II, A.FileSize,
                  A.BaseOffset[V] - A.BaseOffset[W],
                  /*SameRegister=*/false))
        return false;
    }
  }
  return true;
}
