//===- pb/PbSolver.cpp - Conflict-driven pseudo-Boolean solver ------------===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//

#include "pb/PbSolver.h"

#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>

namespace modsched {
namespace pb {

namespace {

telemetry::Counter StatConflicts("pb", "conflicts",
                                 "CDCL conflicts analyzed by the PB solver");
telemetry::Counter StatPropagations("pb", "propagations",
                                    "literals propagated by the PB solver");
telemetry::Counter StatRestarts("pb", "restarts",
                                "Luby restarts taken by the PB solver");
telemetry::Counter StatLearned("pb", "learned",
                               "clauses learned by the PB solver");

/// The undefined-literal sentinel used by conflict analysis.
const Lit UndefLit = Lit();

/// Finite Luby subsequence value: luby(I) for the 1-based restart index,
/// over the sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
int64_t luby(int64_t I) {
  // Find the subsequence (of length 2^K - 1) containing index I.
  int64_t K = 1, Size = 1;
  while (Size < I + 1) {
    ++K;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != I) {
    Size = (Size - 1) / 2;
    --K;
    I = I % Size;
  }
  return int64_t(1) << (K - 1);
}

} // namespace

const char *toString(SolveStatus S) {
  switch (S) {
  case SolveStatus::Sat:
    return "sat";
  case SolveStatus::Unsat:
    return "unsat";
  case SolveStatus::Limit:
    return "limit";
  case SolveStatus::Cancelled:
    return "cancelled";
  }
  return "?";
}

Solver::Solver() = default;
Solver::~Solver() = default;

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

Var Solver::newVar() {
  Var V = Var(VarCount++);
  ensureVarCapacity();
  heapInsert(V);
  return V;
}

void Solver::ensureVarCapacity() {
  Value.resize(VarCount, 0);
  Level.resize(VarCount, 0);
  Reason.resize(VarCount, NoCref);
  TrailPos.resize(VarCount, -1);
  Activity.resize(VarCount, 0.0);
  SavedPhase.resize(VarCount, 0); // Default polarity: false.
  HeapPos.resize(VarCount, -1);
  Seen.resize(VarCount, 0);
  Watches.resize(2 * VarCount);
  LinOcc.resize(2 * VarCount);
}

//===----------------------------------------------------------------------===//
// Branching heap (binary max-heap on Activity)
//===----------------------------------------------------------------------===//

void Solver::heapInsert(Var V) {
  if (HeapPos[V] >= 0)
    return;
  HeapPos[V] = int(Heap.size());
  Heap.push_back(V);
  heapSiftUp(Heap.size() - 1);
}

void Solver::heapSiftUp(size_t I) {
  Var V = Heap[I];
  while (I > 0) {
    size_t Parent = (I - 1) / 2;
    if (!heapLess(Heap[Parent], V))
      break;
    Heap[I] = Heap[Parent];
    HeapPos[Heap[I]] = int(I);
    I = Parent;
  }
  Heap[I] = V;
  HeapPos[V] = int(I);
}

void Solver::heapSiftDown(size_t I) {
  Var V = Heap[I];
  for (;;) {
    size_t Child = 2 * I + 1;
    if (Child >= Heap.size())
      break;
    if (Child + 1 < Heap.size() && heapLess(Heap[Child], Heap[Child + 1]))
      ++Child;
    if (!heapLess(V, Heap[Child]))
      break;
    Heap[I] = Heap[Child];
    HeapPos[Heap[I]] = int(I);
    I = Child;
  }
  Heap[I] = V;
  HeapPos[V] = int(I);
}

Var Solver::heapPop() {
  assert(!Heap.empty() && "pop from empty branching heap");
  Var Top = Heap[0];
  HeapPos[Top] = -1;
  Var Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    HeapPos[Last] = 0;
    heapSiftDown(0);
  }
  return Top;
}

void Solver::bumpVar(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100)
    rescaleActivities();
  if (HeapPos[V] >= 0)
    heapSiftUp(size_t(HeapPos[V]));
}

void Solver::rescaleActivities() {
  for (double &A : Activity)
    A *= 1e-100;
  VarInc *= 1e-100;
}

//===----------------------------------------------------------------------===//
// Constraint construction
//===----------------------------------------------------------------------===//

bool Solver::addClause(std::vector<Lit> Lits) {
  std::vector<std::pair<Lit, int64_t>> Terms;
  Terms.reserve(Lits.size());
  for (Lit L : Lits)
    Terms.push_back({L, 1});
  return addLinear(std::move(Terms), 1);
}

bool Solver::addAtLeast(std::vector<Lit> Lits, int64_t Degree) {
  std::vector<std::pair<Lit, int64_t>> Terms;
  Terms.reserve(Lits.size());
  for (Lit L : Lits)
    Terms.push_back({L, 1});
  return addLinear(std::move(Terms), Degree);
}

bool Solver::addLinear(std::vector<std::pair<Lit, int64_t>> Terms,
                       int64_t Degree) {
  assert(decisionLevel() == 0 &&
         "constraints may only be added at the root level");
  if (!Ok)
    return false;

  // Normalize to positive coefficients: c * l with c < 0 becomes
  // |c| * ~l - |c|, i.e. flip the literal and raise the degree.
  for (auto &T : Terms) {
    assert(T.first.var() >= 0 && T.first.var() < int(VarCount) &&
           "literal over unknown variable");
    if (T.second < 0) {
      T.first = ~T.first;
      Degree += -T.second;
      T.second = -T.second;
    }
  }

  // Merge duplicate and opposite literals: sort by variable, then fold.
  std::sort(Terms.begin(), Terms.end(),
            [](const std::pair<Lit, int64_t> &A,
               const std::pair<Lit, int64_t> &B) {
              return A.first.index() < B.first.index();
            });
  std::vector<std::pair<Lit, int64_t>> Merged;
  Merged.reserve(Terms.size());
  for (size_t I = 0; I < Terms.size();) {
    Lit L = Terms[I].first;
    int64_t Pos = 0, Neg = 0;
    for (; I < Terms.size() && Terms[I].first.var() == L.var(); ++I) {
      if (Terms[I].first == L)
        Pos += Terms[I].second;
      else
        Neg += Terms[I].second;
    }
    // a*l + b*~l = min(a,b) + (a-min)*l + (b-min)*~l.
    int64_t Common = std::min(Pos, Neg);
    Degree -= Common;
    Pos -= Common;
    Neg -= Common;
    if (Pos > 0)
      Merged.push_back({L, Pos});
    if (Neg > 0)
      Merged.push_back({~L, Neg});
  }

  // Record the normalized row for OPB export before any further
  // simplification against the current root assignment.
  Export.push_back({Merged, Degree});

  Cref Out = NoCref;
  if (!addNormalized(std::move(Merged), Degree, /*Learned=*/false, &Out))
    Ok = false;
  if (Ok && QHead < Trail.size() && propagate() != NoCref)
    Ok = false;
  return Ok;
}

bool Solver::addNormalized(std::vector<std::pair<Lit, int64_t>> Terms,
                           int64_t Degree, bool Learned, Cref *Out) {
  // Simplify against the root-level assignment.
  size_t W = 0;
  for (size_t I = 0; I < Terms.size(); ++I) {
    int8_t V = litValue(Terms[I].first);
    if (V > 0)
      Degree -= Terms[I].second; // Satisfied term.
    else if (V == 0)
      Terms[W++] = Terms[I];
    // False terms contribute nothing and are dropped.
  }
  Terms.resize(W);

  if (Degree <= 0)
    return true; // Tautology.

  // Saturate coefficients at the degree and compute the max sum.
  int64_t MaxSum = 0;
  for (auto &T : Terms) {
    T.second = std::min(T.second, Degree);
    MaxSum += T.second;
  }
  if (MaxSum < Degree)
    return false; // Root-level unsatisfiable.

  if (MaxSum == Degree) {
    // Every literal is forced true at the root.
    for (auto &T : Terms)
      if (litValue(T.first) == 0)
        uncheckedEnqueue(T.first, NoCref);
    return true;
  }

  // Classify: all-unit coefficients -> cardinality (clause when degree
  // is 1, which coefficient saturation guarantees for degree-1 rows).
  bool AllUnit = true;
  for (const auto &T : Terms)
    if (T.second != 1) {
      AllUnit = false;
      break;
    }

  Constraint C;
  C.Learned = Learned;
  C.Degree = Degree;
  C.Lits.reserve(Terms.size());
  if (AllUnit) {
    C.K = Kind::Card;
    for (const auto &T : Terms)
      C.Lits.push_back(T.first);
  } else {
    C.K = Kind::Linear;
    // Sort by decreasing coefficient so propagation and reason
    // extraction scan the heaviest terms first.
    std::sort(Terms.begin(), Terms.end(),
              [](const std::pair<Lit, int64_t> &A,
                 const std::pair<Lit, int64_t> &B) {
                return A.second > B.second;
              });
    C.Coeffs.reserve(Terms.size());
    for (const auto &T : Terms) {
      C.Lits.push_back(T.first);
      C.Coeffs.push_back(T.second);
    }
    C.MaxSum = MaxSum;
    C.FalseSum = 0;
  }

  Cref Ref = allocConstraint(std::move(C));
  attachConstraint(Ref);
  if (Out)
    *Out = Ref;

  // A fresh linear row may propagate immediately (slack smaller than
  // some coefficient even with nothing false yet).
  Constraint &CC = Arena[size_t(Ref)];
  if (CC.K == Kind::Linear) {
    int64_t Slack = CC.MaxSum - CC.Degree;
    for (size_t I = 0; I < CC.Lits.size() && CC.Coeffs[I] > Slack; ++I)
      if (litValue(CC.Lits[I]) == 0)
        uncheckedEnqueue(CC.Lits[I], Ref);
  }
  return true;
}

Solver::Cref Solver::allocConstraint(Constraint C) {
  Arena.push_back(std::move(C));
  return Cref(Arena.size() - 1);
}

void Solver::attachConstraint(Cref Ref) {
  Constraint &C = Arena[size_t(Ref)];
  if (C.K == Kind::Card) {
    assert(int64_t(C.Lits.size()) > C.Degree &&
           "cardinality constraint must have slack to be watchable");
    // Watch the first Degree+1 literals.
    for (int64_t I = 0; I <= C.Degree; ++I)
      Watches[size_t(C.Lits[size_t(I)].index())].push_back(Ref);
  } else {
    for (size_t I = 0; I < C.Lits.size(); ++I)
      LinOcc[size_t(C.Lits[I].index())].push_back({Ref, C.Coeffs[I]});
  }
}

//===----------------------------------------------------------------------===//
// Assignment and propagation
//===----------------------------------------------------------------------===//

void Solver::uncheckedEnqueue(Lit P, Cref From) {
  Var V = P.var();
  assert(Value[size_t(V)] == 0 && "enqueue of an assigned variable");
  Value[size_t(V)] = P.negated() ? int8_t(-1) : int8_t(1);
  Level[size_t(V)] = decisionLevel();
  Reason[size_t(V)] = From;
  TrailPos[size_t(V)] = int(Trail.size());
  Trail.push_back(P);
  // Keep every linear row's false-sum in lock-step with the trail (not
  // the propagation queue) so a conflict cannot leave sums and trail
  // out of sync across a backtrack.
  Lit NotP = ~P;
  for (const auto &Occ : LinOcc[size_t(NotP.index())])
    Arena[size_t(Occ.first)].FalseSum += Occ.second;
}

Solver::Cref Solver::propagate() {
  Cref Conflict = NoCref;
  while (QHead < Trail.size() && Conflict == NoCref) {
    Lit P = Trail[QHead++];
    ++Stats.Propagations;
    Lit False = ~P; // Literal that just became false.
    Conflict = propagateCard(False, Watches[size_t(False.index())]);
    if (Conflict == NoCref)
      Conflict = propagateLinearAssign(P);
  }
  if (Conflict != NoCref)
    QHead = Trail.size();
  return Conflict;
}

Solver::Cref Solver::propagateCard(Lit False, std::vector<Cref> &Watch) {
  // Visit every cardinality/clause constraint watching the literal that
  // just became false; try to move the watch, else propagate/conflict.
  size_t Keep = 0;
  Cref Conflict = NoCref;
  for (size_t I = 0; I < Watch.size(); ++I) {
    Cref Ref = Watch[I];
    Constraint &C = Arena[size_t(Ref)];
    if (C.Deleted)
      continue; // Lazy watch cleanup for reduced learned clauses.
    if (Conflict != NoCref) {
      Watch[Keep++] = Ref;
      continue;
    }
    size_t WatchCount = size_t(C.Degree) + 1;
    // Locate the false watched literal.
    size_t Pos = WatchCount;
    for (size_t J = 0; J < WatchCount; ++J)
      if (C.Lits[J] == False) {
        Pos = J;
        break;
      }
    assert(Pos < WatchCount && "watched literal not in the watch set");
    // Try to find a non-false replacement outside the watch set.
    size_t Repl = 0;
    for (size_t J = WatchCount; J < C.Lits.size(); ++J)
      if (litValue(C.Lits[J]) >= 0) {
        Repl = J;
        break;
      }
    if (Repl != 0) {
      std::swap(C.Lits[Pos], C.Lits[Repl]);
      Watches[size_t(C.Lits[Pos].index())].push_back(Ref);
      continue; // Dropped from this watch list.
    }
    // No replacement: every unwatched literal is false, so all other
    // watched literals must be true.
    Watch[Keep++] = Ref; // Keep watching.
    for (size_t J = 0; J < WatchCount && Conflict == NoCref; ++J) {
      if (J == Pos)
        continue;
      int8_t V = litValue(C.Lits[J]);
      if (V < 0)
        Conflict = Ref;
      else if (V == 0)
        uncheckedEnqueue(C.Lits[J], Ref);
    }
  }
  Watch.resize(Keep);
  return Conflict;
}

Solver::Cref Solver::propagateLinearAssign(Lit P) {
  // FalseSum was already updated at enqueue time; here we only detect
  // conflicts and implied literals in rows where ~P occurs.
  Cref Conflict = NoCref;
  Lit NotP = ~P;
  for (const auto &Occ : LinOcc[size_t(NotP.index())]) {
    Constraint &C = Arena[size_t(Occ.first)];
    int64_t Slack = C.MaxSum - C.FalseSum - C.Degree;
    if (Slack < 0) {
      Conflict = Occ.first;
      break;
    }
    for (size_t I = 0; I < C.Lits.size() && C.Coeffs[I] > Slack; ++I)
      if (litValue(C.Lits[I]) == 0)
        uncheckedEnqueue(C.Lits[I], Occ.first);
  }
  return Conflict;
}

void Solver::cancelUntil(int TargetLevel) {
  if (decisionLevel() <= TargetLevel)
    return;
  size_t Bound = size_t(TrailLim[size_t(TargetLevel)]);
  for (size_t I = Trail.size(); I > Bound; --I) {
    Lit P = Trail[I - 1];
    Var V = P.var();
    Lit NotP = ~P;
    for (const auto &Occ : LinOcc[size_t(NotP.index())])
      Arena[size_t(Occ.first)].FalseSum -= Occ.second;
    SavedPhase[size_t(V)] = uint8_t(!P.negated());
    Value[size_t(V)] = 0;
    Reason[size_t(V)] = NoCref;
    heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLim.resize(size_t(TargetLevel));
  QHead = Trail.size();
}

//===----------------------------------------------------------------------===//
// Conflict analysis
//===----------------------------------------------------------------------===//

void Solver::reasonClause(Cref Ref, Lit P, std::vector<Lit> &Out) {
  // Produce a clause-form antecedent: a set of currently-false literals
  // of the constraint whose falsity (a) refutes the constraint when P is
  // undefined (conflict clause), or (b) forces P true (reason for a
  // propagation). For propagation reasons only assignments that precede
  // P on the trail may participate, keeping the implication graph
  // acyclic.
  Out.clear();
  const Constraint &C = Arena[size_t(Ref)];
  int Before = P == UndefLit ? int(Trail.size()) : TrailPos[size_t(P.var())];
  if (C.K == Kind::Card) {
    // At least Degree of the literals must be true, so listing the
    // false ones (>= n-Degree of them for a reason, more for a
    // conflict) yields an implied clause.
    for (Lit L : C.Lits)
      if (litValue(L) < 0 && TrailPos[size_t(L.var())] < Before)
        Out.push_back(L);
  } else {
    // Greedy PB reason: false literals, largest coefficients first,
    // until the remaining terms cannot reach the degree (minus P's own
    // coefficient when explaining a propagation).
    int64_t Need = C.MaxSum - C.Degree;
    if (P != UndefLit)
      for (size_t I = 0; I < C.Lits.size(); ++I)
        if (C.Lits[I] == P) {
          Need -= C.Coeffs[I];
          break;
        }
    int64_t Got = 0;
    for (size_t I = 0; I < C.Lits.size() && Got <= Need; ++I) {
      Lit L = C.Lits[I];
      if (L != P && litValue(L) < 0 && TrailPos[size_t(L.var())] < Before) {
        Out.push_back(L);
        Got += C.Coeffs[I];
      }
    }
    assert(Got > Need && "PB reason extraction fell short of the slack");
  }
}

int Solver::analyze(Cref Conflict, std::vector<Lit> &Learnt) {
  assert(decisionLevel() > 0 && "analysis requires a decision to undo");
  Learnt.clear();
  Learnt.push_back(UndefLit); // Slot for the asserting literal.
  std::vector<Var> ToClear;

  int PathCount = 0;
  Lit P = UndefLit;
  int Index = int(Trail.size());
  Cref Confl = Conflict;
  do {
    assert(Confl != NoCref && "resolved literal lacks a reason");
    bumpConstraint(Confl);
    reasonClause(Confl, P, ReasonScratch);
    for (Lit Q : ReasonScratch) {
      Var V = Q.var();
      if (Seen[size_t(V)] || Level[size_t(V)] == 0)
        continue;
      Seen[size_t(V)] = 1;
      ToClear.push_back(V);
      bumpVar(V);
      if (Level[size_t(V)] >= decisionLevel())
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    // Walk back to the next marked literal on the trail.
    while (!Seen[size_t(Trail[size_t(Index - 1)].var())])
      --Index;
    --Index;
    P = Trail[size_t(Index)];
    Confl = Reason[size_t(P.var())];
    Seen[size_t(P.var())] = 0;
    --PathCount;
  } while (PathCount > 0);
  Learnt[0] = ~P;

  minimizeLearnt(Learnt);

  // Find the backtrack level: highest level among the tail literals.
  int BtLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxI = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Level[size_t(Learnt[I].var())] > Level[size_t(Learnt[MaxI].var())])
        MaxI = I;
    std::swap(Learnt[1], Learnt[MaxI]);
    BtLevel = Level[size_t(Learnt[1].var())];
  }

  for (Var V : ToClear)
    Seen[size_t(V)] = 0;
  return BtLevel;
}

void Solver::minimizeLearnt(std::vector<Lit> &Learnt) {
  // Cheap self-subsumption: a tail literal is redundant when every
  // literal of its (PB-aware) reason is already in the learned clause
  // or assigned at the root.
  for (size_t I = 0; I < Learnt.size(); ++I)
    Seen[size_t(Learnt[I].var())] = 1;
  size_t W = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    Var V = Learnt[I].var();
    Cref R = Reason[size_t(V)];
    bool Redundant = false;
    if (R != NoCref) {
      reasonClause(R, ~Learnt[I], ReasonScratch);
      Redundant = true;
      for (Lit Q : ReasonScratch)
        if (!Seen[size_t(Q.var())] && Level[size_t(Q.var())] > 0) {
          Redundant = false;
          break;
        }
    }
    if (!Redundant)
      Learnt[W++] = Learnt[I];
    else
      Seen[size_t(V)] = 0;
  }
  Learnt.resize(W);
  for (size_t I = 0; I < Learnt.size(); ++I)
    Seen[size_t(Learnt[I].var())] = 0;
}

void Solver::analyzeFinal(Lit FailedAssumption, std::vector<Lit> &OutCore) {
  // The failed assumption is false; trace the assignment of its
  // negation back to the assumptions that forced it.
  OutCore.clear();
  OutCore.push_back(FailedAssumption);
  if (decisionLevel() == 0)
    return;
  Seen[size_t(FailedAssumption.var())] = 1;
  for (int I = int(Trail.size()); I > TrailLim[0]; --I) {
    Lit T = Trail[size_t(I - 1)];
    Var V = T.var();
    if (!Seen[size_t(V)])
      continue;
    Seen[size_t(V)] = 0;
    if (Reason[size_t(V)] == NoCref) {
      // A decision inside the assumption prefix is an assumption.
      assert(Level[size_t(V)] > 0 && "root literal cannot be a decision");
      OutCore.push_back(T);
    } else {
      reasonClause(Reason[size_t(V)], T, ReasonScratch);
      for (Lit Q : ReasonScratch)
        if (Level[size_t(Q.var())] > 0)
          Seen[size_t(Q.var())] = 1;
    }
  }
  Seen[size_t(FailedAssumption.var())] = 0;
  // The failed assumption itself may have been re-added by the walk.
  std::sort(OutCore.begin(), OutCore.end());
  OutCore.erase(std::unique(OutCore.begin(), OutCore.end()), OutCore.end());
}

void Solver::recordLearnt(const std::vector<Lit> &Learnt) {
  ++Stats.Learned;
  if (Learnt.size() == 1) {
    assert(decisionLevel() == 0 && "unit learned above the root");
    uncheckedEnqueue(Learnt[0], NoCref);
    return;
  }
  Constraint C;
  C.K = Kind::Card;
  C.Learned = true;
  C.Degree = 1;
  C.Activity = ConstraintInc;
  C.Lits = Learnt;
  Cref Ref = allocConstraint(std::move(C));
  attachConstraint(Ref);
  Learnts.push_back(Ref);
  uncheckedEnqueue(Learnt[0], Ref);
}

bool Solver::locked(Cref Ref) const {
  const Constraint &C = Arena[size_t(Ref)];
  for (Lit L : C.Lits) {
    Var V = L.var();
    if (Value[size_t(V)] != 0 && Reason[size_t(V)] == Ref)
      return true;
  }
  return false;
}

void Solver::bumpConstraint(Cref Ref) {
  Constraint &C = Arena[size_t(Ref)];
  if (!C.Learned)
    return;
  C.Activity += ConstraintInc;
  if (C.Activity > 1e20) {
    for (Cref L : Learnts)
      Arena[size_t(L)].Activity *= 1e-20;
    ConstraintInc *= 1e-20;
  }
}

void Solver::reduceLearnts() {
  // Drop the lower-activity half of the learned database, keeping
  // binary and locked (currently-propagating) clauses.
  std::sort(Learnts.begin(), Learnts.end(), [this](Cref A, Cref B) {
    return Arena[size_t(A)].Activity < Arena[size_t(B)].Activity;
  });
  size_t Target = Learnts.size() / 2;
  size_t Removed = 0, W = 0;
  for (size_t I = 0; I < Learnts.size(); ++I) {
    Cref Ref = Learnts[I];
    Constraint &C = Arena[size_t(Ref)];
    if (Removed < Target && C.Lits.size() > 2 && !locked(Ref)) {
      C.Deleted = true; // Watches are cleaned lazily.
      C.Lits.clear();
      C.Lits.shrink_to_fit();
      ++Removed;
    } else {
      Learnts[W++] = Ref;
    }
  }
  Learnts.resize(W);
  // Let the database grow a little between reductions.
  LearntAdjust += LearntAdjust / 10;
}

//===----------------------------------------------------------------------===//
// Search
//===----------------------------------------------------------------------===//

Lit Solver::pickBranchLit() {
  while (!Heap.empty()) {
    Var V = heapPop();
    if (Value[size_t(V)] == 0)
      return Lit(V, !SavedPhase[size_t(V)]);
  }
  return UndefLit;
}

bool Solver::budgetExpired(int64_t ConflictsLeft) const {
  if (ConflictLimit >= 0 && ConflictsLeft <= 0)
    return true;
  return DeadlineSeconds < 1e29 && monotonicSeconds() > DeadlineSeconds;
}

SolveStatus Solver::search(int64_t ConflictBudget,
                           const std::vector<Lit> &Assumptions,
                           int64_t &ConflictsLeft) {
  std::vector<Lit> Learnt;
  for (;;) {
    Cref Conflict = propagate();
    if (Conflict != NoCref) {
      ++Stats.Conflicts;
      --ConflictsLeft;
      --ConflictBudget;
      if (decisionLevel() == 0) {
        Core.clear(); // Unsatisfiable regardless of assumptions.
        Ok = false;
        return SolveStatus::Unsat;
      }
      int BtLevel = analyze(Conflict, Learnt);
      cancelUntil(BtLevel);
      recordLearnt(Learnt);
      decayActivities();
      ConstraintInc /= 0.999;
      continue;
    }

    // Budget checkpoints at the decision boundary.
    if (Cancel.cancelled()) {
      cancelUntil(0);
      return SolveStatus::Cancelled;
    }
    if (budgetExpired(ConflictsLeft)) {
      cancelUntil(0);
      return SolveStatus::Limit;
    }
    if (ConflictBudget <= 0) {
      // Luby restart: surface as Limit; solve() restarts the search.
      cancelUntil(0);
      ++Stats.Restarts;
      return SolveStatus::Limit;
    }
    if (int64_t(Learnts.size()) >= LearntAdjust)
      reduceLearnts();

    // Extend the assumption prefix before free decisions.
    Lit Next = UndefLit;
    while (decisionLevel() < int(Assumptions.size())) {
      Lit A = Assumptions[size_t(decisionLevel())];
      int8_t V = litValue(A);
      if (V > 0) {
        TrailLim.push_back(int(Trail.size())); // Dummy level.
      } else if (V < 0) {
        analyzeFinal(A, Core);
        return SolveStatus::Unsat;
      } else {
        Next = A;
        break;
      }
    }
    if (Next == UndefLit) {
      Next = pickBranchLit();
      if (Next == UndefLit) {
        // All variables assigned: a model.
        Model.assign(VarCount, 0);
        for (size_t V = 0; V < VarCount; ++V)
          Model[V] = uint8_t(Value[V] > 0);
        return SolveStatus::Sat;
      }
      ++Stats.Decisions;
    }
    TrailLim.push_back(int(Trail.size()));
    uncheckedEnqueue(Next, NoCref);
  }
}

SolveStatus Solver::solve(const std::vector<Lit> &Assumptions) {
  SolverStats Before = Stats;
  SolveStatus Result;
  if (!Ok) {
    Core.clear();
    Result = SolveStatus::Unsat;
  } else {
    cancelUntil(0);
    if (LearntAdjust == 0)
      LearntAdjust = std::max<int64_t>(2000, int64_t(Arena.size()));
    int64_t ConflictsLeft =
        ConflictLimit >= 0 ? ConflictLimit : int64_t(1) << 62;
    int64_t RestartIndex = 0;
    for (;;) {
      int64_t Budget = luby(RestartIndex++) * 100;
      Result = search(Budget, Assumptions, ConflictsLeft);
      if (Result != SolveStatus::Limit)
        break;
      if (Cancel.cancelled()) {
        Result = SolveStatus::Cancelled;
        break;
      }
      if (budgetExpired(ConflictsLeft))
        break; // A genuine Limit, not a restart.
      if (OnRestart) {
        // Luby restart boundary: decision level zero, no pending
        // conflict. The hook may inject constraints learned elsewhere
        // (e.g. a raced engine's incumbent bound).
        OnRestart();
        if (!Ok) {
          Core.clear();
          Result = SolveStatus::Unsat;
          break;
        }
      }
    }
    cancelUntil(0);
  }

  StatConflicts += Stats.Conflicts - Before.Conflicts;
  StatPropagations += Stats.Propagations - Before.Propagations;
  StatRestarts += Stats.Restarts - Before.Restarts;
  StatLearned += Stats.Learned - Before.Learned;
  return Result;
}

} // namespace pb
} // namespace modsched
