//===- pb/PbSolver.h - Conflict-driven pseudo-Boolean solver ----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained conflict-driven (CDCL) pseudo-Boolean satisfiability
/// solver: the second exact engine behind the modulo scheduler. The
/// paper's structured formulation (Ineq. 20) makes every dependence and
/// resource row a 0-1 cardinality-like constraint, which is exactly the
/// class conflict-driven PB/SAT solvers decide natively — follow-on work
/// (SAT-MapIt, Roorda's SMT pipeliner) beats ILP on the same problem
/// with this machinery.
///
/// Engine inventory:
///  * Constraints: clauses, cardinality (sum of literals >= d) and
///    general linear pseudo-Boolean rows (sum of c_i * l_i >= d with
///    positive saturated coefficients after normalization).
///  * Propagation: clauses and cardinality rows use watched literals
///    (a clause is the degree-1 case of the (d+1)-watch cardinality
///    scheme); general PB rows use counter-based propagation with a
///    false-sum maintained through occurrence lists and unwound in
///    lock-step with the trail.
///  * Learning: 1UIP conflict analysis over clause-form reasons that
///    are extracted lazily and PB-aware — for a cardinality/PB row the
///    reason of a propagated literal is a greedily chosen subset of its
///    false literals, largest coefficients first, restricted to
///    assignments that precede the propagation. Learned clauses are
///    minimized against their own reasons and scored for deletion.
///  * Search: VSIDS-style activity branching over a binary heap with
///    phase saving, Luby-sequence restarts, and activity-based learned
///    database reduction.
///  * Incrementality: assumption literals in the MiniSat style. After
///    an UNSAT answer under assumptions the solver exposes the subset
///    of assumptions in the final conflict (the UNSAT core), which is
///    what makes solution-improving objective descent cheap: bound
///    constraints are added once, gated by fresh selector literals, and
///    activated per solve by assuming the selector's negation.
///
/// Layering: pb sits next to lp/graph/machine — it depends only on
/// support (telemetry, cancellation, timers). The scheduler-facing
/// encoding lives in ilpsched/PbFormulation; OPB text I/O in textio.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_PB_PBSOLVER_H
#define MODSCHED_PB_PBSOLVER_H

#include "support/Cancellation.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace modsched {
namespace pb {

/// A propositional variable index, 0-based.
using Var = int;

/// A literal: variable plus sign, encoded as 2*V + Negated so literals
/// index watch lists directly.
class Lit {
public:
  Lit() = default;
  Lit(Var V, bool Negated) : Code(2 * V + int(Negated)) {
    assert(V >= 0 && "literal over negative variable");
  }

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  /// The raw code, usable as a dense array index.
  int index() const { return Code; }

  Lit operator~() const { return fromIndex(Code ^ 1); }
  bool operator==(Lit O) const { return Code == O.Code; }
  bool operator!=(Lit O) const { return Code != O.Code; }
  bool operator<(Lit O) const { return Code < O.Code; }

  static Lit fromIndex(int Index) {
    Lit L;
    L.Code = Index;
    return L;
  }

private:
  int Code = -2;
};

/// Positive literal over \p V.
inline Lit posLit(Var V) { return Lit(V, false); }
/// Negated literal over \p V.
inline Lit negLit(Var V) { return Lit(V, true); }

/// Verdict of one solve() call.
enum class SolveStatus {
  Sat,       ///< A model was found; read it via modelValue().
  Unsat,     ///< No model under the given assumptions (unsatCore()).
  Limit,     ///< Conflict budget or deadline exhausted.
  Cancelled, ///< The cancellation token fired.
};

/// Printable name of \p S.
const char *toString(SolveStatus S);

/// Per-solver effort counters, cumulative across solve() calls.
struct SolverStats {
  int64_t Conflicts = 0;    ///< Conflicts analyzed.
  int64_t Propagations = 0; ///< Literals propagated.
  int64_t Decisions = 0;    ///< Branching decisions.
  int64_t Restarts = 0;     ///< Luby restarts taken.
  int64_t Learned = 0;      ///< Learned clauses retained (pre-reduction).
};

/// One original (non-learned) constraint in normalized "sum of
/// positive-coefficient literal terms >= Degree" form, recorded exactly
/// as accepted (before root-level simplification) for text export and
/// cross-checking against external PB solvers.
struct ExportRow {
  std::vector<std::pair<Lit, int64_t>> Terms;
  int64_t Degree = 0;
};

/// Conflict-driven pseudo-Boolean solver. Single-threaded; cancellation
/// is the only member another thread may touch (through the token's
/// source). Constraints may be added between solve() calls (monotone
/// incremental strengthening); removing constraints is not supported —
/// gate soft constraints behind selector literals instead.
class Solver {
public:
  Solver();
  ~Solver();
  Solver(const Solver &) = delete;
  Solver &operator=(const Solver &) = delete;

  //===--------------------------------------------------------------------===//
  // Problem construction
  //===--------------------------------------------------------------------===//

  /// Creates a fresh variable and returns its index.
  Var newVar();

  /// Number of variables created so far.
  int numVars() const { return int(VarCount); }

  /// Adds the clause (at-least-one over \p Lits). Returns false when the
  /// solver became root-level unsatisfiable.
  bool addClause(std::vector<Lit> Lits);

  /// Adds the cardinality constraint sum(Lits) >= \p Degree.
  bool addAtLeast(std::vector<Lit> Lits, int64_t Degree);

  /// Adds the general linear constraint sum(Coeff * Lit) >= \p Degree.
  /// Coefficients may be negative or duplicated; the row is normalized
  /// (negative coefficients flip the literal, duplicate and opposite
  /// literals merge, coefficients saturate at the degree) and classified
  /// as clause / cardinality / general PB.
  bool addLinear(std::vector<std::pair<Lit, int64_t>> Terms, int64_t Degree);

  /// False once the constraint database is unsatisfiable at the root
  /// level; further solve() calls return Unsat immediately.
  bool okay() const { return Ok; }

  //===--------------------------------------------------------------------===//
  // Solving
  //===--------------------------------------------------------------------===//

  /// Decides the constraint database under \p Assumptions.
  SolveStatus solve(const std::vector<Lit> &Assumptions = {});

  /// Model value of \p V after a Sat answer.
  bool modelValue(Var V) const {
    assert(V >= 0 && size_t(V) < Model.size() && "model read out of range");
    return Model[size_t(V)] != 0;
  }

  /// After an Unsat answer under assumptions: the subset of assumption
  /// literals whose conjunction is already contradictory (the core).
  /// Empty when the database is unsatisfiable independent of the
  /// assumptions.
  const std::vector<Lit> &unsatCore() const { return Core; }

  /// Cumulative effort counters.
  const SolverStats &stats() const { return Stats; }

  /// Number of live learned clauses currently retained in the database
  /// (post-reduction). Lets a portfolio coordinator report how much
  /// learned state a persistent solver carries between attempts.
  int numLearnts() const { return int(Learnts.size()); }

  /// Seeds the phase-saving table: the next branch on \p V tries
  /// \p Phase first. Used to carry polarity hints across attempts of a
  /// persistent solver whose new variables have no saved phase yet.
  void setPhase(Var V, bool Phase) {
    assert(V >= 0 && size_t(V) < VarCount && "phase seed out of range");
    SavedPhase[size_t(V)] = uint8_t(Phase);
  }

  //===--------------------------------------------------------------------===//
  // Budgets (checked once per conflict/decision)
  //===--------------------------------------------------------------------===//

  /// Maximum conflicts per solve() call; negative means unlimited.
  int64_t ConflictLimit = -1;

  /// Absolute deadline on the modsched::monotonicSeconds() clock;
  /// >= 1e29 means unlimited (mirrors lp::SolveContext::DeadlineSeconds).
  double DeadlineSeconds = 1e30;

  /// Cooperative cancellation, polled between decisions.
  CancellationToken Cancel;

  /// Invoked at every Luby restart boundary, with the solver at decision
  /// level zero and no conflict pending. The hook may add constraints
  /// (addClause/addLinear) — this is the safe injection point for
  /// externally discovered bounds in a portfolio race. Must not call
  /// solve() reentrantly.
  std::function<void()> OnRestart;

  //===--------------------------------------------------------------------===//
  // Export (original constraints, for OPB text I/O)
  //===--------------------------------------------------------------------===//

  /// Original constraints in normalized literal form, in insertion
  /// order, including rows that were simplified away internally.
  const std::vector<ExportRow> &exportRows() const { return Export; }

private:
  //===--------------------------------------------------------------------===//
  // Constraint store
  //===--------------------------------------------------------------------===//

  enum class Kind : uint8_t {
    Card,   ///< All coefficients 1; degree 1 is a plain clause.
    Linear, ///< General saturated-coefficient PB row.
  };

  struct Constraint {
    Kind K = Kind::Card;
    bool Learned = false;
    bool Deleted = false;
    double Activity = 0.0;
    int64_t Degree = 0;
    /// For Card, the first Degree+1 positions are the watched set.
    std::vector<Lit> Lits;
    /// Linear only; aligned with Lits, sorted by decreasing coefficient.
    std::vector<int64_t> Coeffs;
    /// Linear only: sum of all coefficients (cached).
    int64_t MaxSum = 0;
    /// Linear only: sum of coefficients of currently-false literals,
    /// maintained by propagation and unwound on backtrack.
    int64_t FalseSum = 0;
  };

  /// Constraint reference: index into the arena. -1 = no constraint.
  using Cref = int;
  static constexpr Cref NoCref = -1;

  std::vector<Constraint> Arena;
  std::vector<Cref> Learnts; ///< Learned (clause) constraints, live subset.
  std::vector<ExportRow> Export;

  //===--------------------------------------------------------------------===//
  // Assignment state
  //===--------------------------------------------------------------------===//

  size_t VarCount = 0;
  /// Per-variable value: 0 = unassigned, 1 = true, -1 = false.
  std::vector<int8_t> Value;
  std::vector<int> Level;        ///< Decision level of assignment.
  std::vector<Cref> Reason;      ///< Propagating constraint, NoCref = decision.
  std::vector<int> TrailPos;     ///< Position on the trail.
  std::vector<Lit> Trail;        ///< Assignment stack.
  std::vector<int> TrailLim;     ///< Trail size at each decision level.
  size_t QHead = 0;              ///< Propagation queue head.
  std::vector<uint8_t> Model;    ///< Last satisfying assignment.
  std::vector<Lit> Core;         ///< Last assumption UNSAT core.
  SolverStats Stats;             ///< Cumulative effort counters.
  bool Ok = true;

  /// Value of literal \p L: 0 unassigned, 1 true, -1 false.
  int8_t litValue(Lit L) const {
    int8_t V = Value[size_t(L.var())];
    return L.negated() ? int8_t(-V) : V;
  }

  int decisionLevel() const { return int(TrailLim.size()); }

  //===--------------------------------------------------------------------===//
  // Watches and occurrence lists
  //===--------------------------------------------------------------------===//

  /// Watches[L.index()]: cardinality/clause constraints currently
  /// watching literal L (visited when L becomes false).
  std::vector<std::vector<Cref>> Watches;
  /// LinOcc[L.index()]: (constraint, coefficient) pairs for every
  /// linear row containing L (visited when L changes truth value).
  std::vector<std::vector<std::pair<Cref, int64_t>>> LinOcc;

  //===--------------------------------------------------------------------===//
  // Branching heuristic
  //===--------------------------------------------------------------------===//

  std::vector<double> Activity; ///< Per-variable VSIDS activity.
  double VarInc = 1.0;
  std::vector<uint8_t> SavedPhase;
  /// Binary max-heap of unassigned candidate variables.
  std::vector<Var> Heap;
  std::vector<int> HeapPos; ///< Var -> heap index, -1 when absent.

  void heapInsert(Var V);
  void heapSiftUp(size_t I);
  void heapSiftDown(size_t I);
  Var heapPop();
  bool heapLess(Var A, Var B) const { return Activity[A] < Activity[B]; }
  void bumpVar(Var V);
  void decayActivities() { VarInc /= ActivityDecay; }
  void rescaleActivities();

  static constexpr double ActivityDecay = 0.95;

  //===--------------------------------------------------------------------===//
  // Core engine
  //===--------------------------------------------------------------------===//

  void ensureVarCapacity();
  bool addNormalized(std::vector<std::pair<Lit, int64_t>> Terms,
                     int64_t Degree, bool Learned, Cref *Out);
  Cref allocConstraint(Constraint C);
  void attachConstraint(Cref C);
  void uncheckedEnqueue(Lit P, Cref From);
  /// Runs unit propagation; returns the conflicting constraint or NoCref.
  Cref propagate();
  Cref propagateCard(Lit False, std::vector<Cref> &Watch);
  Cref propagateLinearAssign(Lit P);
  void undoLinearAssign(Lit P);
  void cancelUntil(int TargetLevel);
  /// 1UIP analysis of \p Conflict; fills \p Learnt (asserting literal
  /// first) and returns the backtrack level.
  int analyze(Cref Conflict, std::vector<Lit> &Learnt);
  void minimizeLearnt(std::vector<Lit> &Learnt);
  void analyzeFinal(Lit P, std::vector<Lit> &OutCore);
  /// Clause-form reason for \p P propagated by \p C (or the conflict
  /// clause when P is undefined): false literals only, PB-aware.
  void reasonClause(Cref C, Lit P, std::vector<Lit> &Out);
  void recordLearnt(const std::vector<Lit> &Learnt);
  void reduceLearnts();
  bool locked(Cref C) const;
  void bumpConstraint(Cref C);
  Lit pickBranchLit();
  /// CDCL search loop until a verdict or restart budget \p ConflictBudget.
  SolveStatus search(int64_t ConflictBudget,
                     const std::vector<Lit> &Assumptions,
                     int64_t &ConflictsLeft);
  bool budgetExpired(int64_t ConflictsLeft) const;

  std::vector<uint8_t> Seen; ///< Per-variable analysis scratch.
  std::vector<Lit> ReasonScratch;
  double ConstraintInc = 1.0;
  int64_t LearntAdjust = 0; ///< Reduce learned DB when Learnts exceeds this.
};

} // namespace pb
} // namespace modsched

#endif // MODSCHED_PB_PBSOLVER_H
