//===- pb/Incremental.h - Persistent multi-attempt PB sessions --*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent pseudo-Boolean solving session that survives a sequence
/// of related solve attempts — the modulo scheduler's II ladder, where
/// each candidate II re-encodes the same loop with a different modulus.
/// The underlying pb::Solver never supports constraint deletion, so
/// attempt-scoped rows are *gated*: every structural constraint of an
/// attempt carries the attempt's gate variable g such that the row is
/// exact under the assumption !g and trivially satisfied once g is
/// forced true. Retiring an attempt is a single unit clause (g), which
/// keeps the database satisfiable forever and funnels every UNSAT
/// verdict through the assumption-core path — learned clauses, VSIDS
/// activity, and saved phases all carry over to the next attempt
/// (SAT-MapIt's incremental trick, transplanted to PB).
///
/// Gating is propagation-aware: clauses get the gate literal appended
/// (still a clause), cardinality rows get unit *copies* of the gate from
/// a shared per-attempt pool so they stay in the watched-literal Card
/// class, and only genuinely weighted rows pay the counter-propagated
/// Linear gate term.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_PB_INCREMENTAL_H
#define MODSCHED_PB_INCREMENTAL_H

#include "pb/PbSolver.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace modsched {
namespace pb {

/// Cumulative bookkeeping for one AttemptSession.
struct SessionStats {
  int64_t Attempts = 0;    ///< beginAttempt() calls.
  int64_t ClausesKept = 0; ///< Learned clauses alive at attempt retirement.
  int64_t GateCopies = 0;  ///< Unary gate copies allocated for Card rows.
};

/// A pb::Solver wrapped in attempt lifecycle management. One session per
/// loop; one attempt per (II, encoding) pair. All constraint
/// construction between beginAttempt() and endAttempt() must go through
/// the gated add methods below; solve with attemptAssumption() in the
/// assumption set.
class AttemptSession {
public:
  AttemptSession() = default;
  AttemptSession(const AttemptSession &) = delete;
  AttemptSession &operator=(const AttemptSession &) = delete;

  /// The shared solver. Callers may create variables and tune budgets /
  /// cancellation / OnRestart directly; attempt-scoped *constraints*
  /// must use the gated adds.
  Solver &solver() { return S; }
  const Solver &solver() const { return S; }

  /// True while an attempt is open (between begin and end).
  bool attemptOpen() const { return Gate >= 0; }

  /// Opens a new attempt: allocates a fresh gate variable. Requires the
  /// previous attempt to have been retired.
  void beginAttempt();

  /// Retires the open attempt by hardening its gate to true — every
  /// gated row becomes permanently satisfied, so the database stays
  /// consistent for the next attempt.
  void endAttempt();

  /// The assumption literal (!g) that activates the open attempt's rows.
  Lit attemptAssumption() const {
    assert(Gate >= 0 && "no open attempt");
    return negLit(Gate);
  }

  /// Gated clause: exact under !g, satisfied once g is hardened.
  bool addClause(std::vector<Lit> Lits);

  /// Gated cardinality row sum(Lits) >= Degree. Stays in the Card
  /// propagation class via unit gate copies.
  bool addAtLeast(std::vector<Lit> Lits, int64_t Degree);

  /// Gated general linear row sum(Coeff * Lit) >= Degree; the gate term
  /// weight covers the degree even against negative coefficients.
  bool addLinear(std::vector<std::pair<Lit, int64_t>> Terms, int64_t Degree);

  /// Seeds the branching polarity of \p V (phase-hint transfer from a
  /// previous attempt's model onto this attempt's fresh variables).
  void seedPhase(Var V, bool Phase) { S.setPhase(V, Phase); }

  const SessionStats &stats() const { return Stat; }

private:
  /// Lazily extends the per-attempt pool of unit gate copies c_i with
  /// c_i == g enforced by two binary clauses, and returns copy \p I.
  Var gateCopy(size_t I);

  Solver S;
  Var Gate = -1;          ///< Open attempt's gate, -1 between attempts.
  std::vector<Var> Copies; ///< Unit copies of Gate, shared across rows.
  SessionStats Stat;
};

} // namespace pb
} // namespace modsched

#endif // MODSCHED_PB_INCREMENTAL_H
