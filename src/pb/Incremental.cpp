//===- pb/Incremental.cpp - Persistent multi-attempt PB sessions ----------===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//

#include "pb/Incremental.h"

#include <algorithm>

namespace modsched {
namespace pb {

void AttemptSession::beginAttempt() {
  assert(Gate < 0 && "previous attempt not retired");
  Gate = S.newVar();
  Copies.clear();
  ++Stat.Attempts;
}

void AttemptSession::endAttempt() {
  assert(Gate >= 0 && "no open attempt");
  Stat.ClausesKept += S.numLearnts();
  S.addClause({posLit(Gate)});
  Gate = -1;
  Copies.clear();
}

Var AttemptSession::gateCopy(size_t I) {
  while (Copies.size() <= I) {
    Var C = S.newVar();
    // c == g, clause form: g -> c and c -> g.
    S.addClause({negLit(Gate), posLit(C)});
    S.addClause({negLit(C), posLit(Gate)});
    Copies.push_back(C);
    ++Stat.GateCopies;
  }
  return Copies[I];
}

bool AttemptSession::addClause(std::vector<Lit> Lits) {
  assert(Gate >= 0 && "gated add outside an attempt");
  Lits.push_back(posLit(Gate));
  return S.addClause(std::move(Lits));
}

bool AttemptSession::addAtLeast(std::vector<Lit> Lits, int64_t Degree) {
  assert(Gate >= 0 && "gated add outside an attempt");
  if (Degree <= 1) {
    // Degree <= 0 is a tautology the solver discards; degree 1 is a
    // plain clause — one gate literal suffices either way.
    Lits.push_back(posLit(Gate));
    return S.addAtLeast(std::move(Lits), Degree);
  }
  // Unit gate copies keep the row in the watched-literal Card class:
  // with g true all copies are true and the row is satisfied; under !g
  // all copies are false and the row is exactly the original. Degree
  // copies are conservative against duplicate-literal merging during
  // normalization (extra copies only over-satisfy the retired row).
  for (int64_t I = 0; I < Degree; ++I)
    Lits.push_back(posLit(gateCopy(size_t(I))));
  return S.addAtLeast(std::move(Lits), Degree);
}

bool AttemptSession::addLinear(std::vector<std::pair<Lit, int64_t>> Terms,
                               int64_t Degree) {
  assert(Gate >= 0 && "gated add outside an attempt");
  // The gate weight must cover the degree even when every negative-
  // coefficient term fires: with g true the row needs at most
  // Degree - NegSum from the gate (same scheme as the explanation-group
  // selectors in ilpsched/PbFormulation).
  int64_t NegSum = 0;
  for (const std::pair<Lit, int64_t> &T : Terms)
    NegSum += std::min<int64_t>(T.second, 0);
  int64_t Weight = std::max<int64_t>(Degree - NegSum, 1);
  Terms.push_back({posLit(Gate), Weight});
  return S.addLinear(std::move(Terms), Degree);
}

} // namespace pb
} // namespace modsched
