//===- service/Server.h - Persistent scheduling daemon ----------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling-as-a-service: a long-lived Server accepting streams of
/// protocol frames (service/Protocol.h) over stdin/stdout batch mode or
/// a Unix-domain socket, and dispatching solves onto a ThreadPool whose
/// workers keep persistent engine state (ilpsched/WorkerState.h) —
/// warm simplex workspaces and gated PB sessions survive across
/// requests, and the process-wide SolutionCache (on by default here)
/// turns repeated submissions of canonically equal loops into verified
/// replays.
///
/// Admission control (docs/SERVICE.md): the queue of queued-plus-running
/// requests is bounded; a full queue or a client exceeding its in-flight
/// cap gets an immediate "retry_after" reply instead of unbounded
/// buffering. Responses are one JSON line each, tagged with the request
/// id; completion order is not arrival order (clients match on id).
///
/// Shutdown is a graceful drain: stop admitting, let in-flight solves
/// finish (their responses are still written), then join the workers.
/// A client vanishing mid-stream cancels its outstanding solves through
/// their per-request cancellation tokens.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SERVICE_SERVER_H
#define MODSCHED_SERVICE_SERVER_H

#include "ilpsched/OptimalScheduler.h"
#include "service/Protocol.h"
#include "support/Cancellation.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace modsched {

class ThreadPool;            // support/ThreadPool.h
struct SchedulerWorkerState; // ilpsched/WorkerState.h

namespace service {

/// Server configuration; every knob has a MODSCHED_SERVICE_* override
/// (see fromEnv and docs/SERVICE.md).
struct ServerOptions {
  /// Solver worker threads (one persistent SchedulerWorkerState each).
  int Workers = 4;
  /// Queued-plus-running request bound; admission beyond it sheds.
  int QueueLimit = 64;
  /// Per-client in-flight cap (client = one stream / connection id).
  int ClientInFlightLimit = 16;
  /// Wall-clock budget for requests that do not ask for one.
  double DefaultTimeLimitSeconds = 10.0;
  /// Hard ceiling a request's time=<sec> is clamped to.
  double MaxTimeLimitSeconds = 60.0;
  /// Node budget for requests that do not ask for one (INT64_MAX = off).
  std::int64_t DefaultNodeLimit = INT64_MAX;
  /// Consult/populate the process-wide SolutionCache. ON by default in
  /// the server — replay is the daemon's whole point.
  bool Cache = true;
  /// Exact engine behind every attempt.
  SchedulerBackend Backend = defaultSchedulerBackend();
  /// Milliseconds suggested to shed clients ("retry_after_ms").
  int RetryAfterMs = 100;
  /// Include the schedule times vector in ok responses.
  bool EmitSchedules = true;
  /// Frame-reader hard limits.
  ProtocolLimits Limits;

  /// Reads the MODSCHED_SERVICE_* environment overrides (WORKERS,
  /// QUEUE, CLIENT_INFLIGHT, TIME_LIMIT, MAX_TIME_LIMIT, NODE_LIMIT,
  /// CACHE, RETRY_AFTER_MS, MAX_LINE, MAX_PAYLOAD_LINES). Invalid
  /// values warn on stderr and keep the defaults above.
  static ServerOptions fromEnv();
};

/// Monotonic counters mirrored by the service/* telemetry.
struct ServerStats {
  std::int64_t Connections = 0; ///< Streams served (stdio or socket).
  std::int64_t Requests = 0;    ///< SCHED frames received (incl. bad).
  std::int64_t Accepted = 0;    ///< Requests admitted to the queue.
  std::int64_t Shed = 0;        ///< Requests load-shed (retry_after).
  std::int64_t Errors = 0;      ///< Error replies (parse or payload).
  std::int64_t Completed = 0;   ///< Solve tasks finished (any status).
  std::int64_t CacheHits = 0;   ///< Completed requests served from cache.
  std::int64_t Cancelled = 0;   ///< Requests cancelled by disconnect.
};

/// The daemon. One instance per process; destruction drains.
class Server {
public:
  explicit Server(ServerOptions Options = ServerOptions::fromEnv());
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Serves one stream of frames: reads requests from \p In, writes
  /// one-line JSON responses to \p Out (interleaved across requests,
  /// serialized per line), returns after QUIT or EOF once every
  /// admitted request of this stream has completed. \p ClientId names
  /// the stream for the per-client in-flight cap. EOF with solves still
  /// in flight cancels them (mid-request disconnect).
  void serveStream(std::istream &In, std::ostream &Out,
                   const std::string &ClientId);

  /// Binds and listens on Unix-domain socket \p Path (an existing
  /// socket file is replaced). False + \p Error on failure.
  bool listenUnix(const std::string &Path, std::string *Error);

  /// Accepts and serves socket connections (one handler thread each)
  /// until requestShutdown(); then drains and joins the handlers.
  /// Requires a successful listenUnix first.
  void acceptLoop();

  /// Flags shutdown: acceptLoop stops admitting new connections and
  /// returns after the graceful drain. Safe from any thread (and from
  /// signal handlers: one relaxed atomic store).
  void requestShutdown() { Stopping.store(true, std::memory_order_relaxed); }

  /// True once requestShutdown was called.
  bool stopping() const { return Stopping.load(std::memory_order_relaxed); }

  /// Blocks until no request is queued or running.
  void drain();

  /// Snapshot of the monotonic counters.
  ServerStats stats() const;

  /// One-line JSON rendering of stats() (the STATS reply).
  std::string statsResponse() const;

  const ServerOptions &options() const { return Opts; }

private:
  struct Connection; // Per-stream response mutex + in-flight tracking.

  /// Admission verdict for one parsed request on \p Conn; either
  /// submits the solve task or writes the shed/error reply inline.
  void admit(Request Req, const std::shared_ptr<Connection> &Conn);

  /// Runs one admitted request on a pool worker.
  void runRequest(const Request &Req, SchedulerWorkerState &Worker,
                  const std::shared_ptr<Connection> &Conn,
                  const CancellationToken &Cancel);

  /// Borrows / returns one persistent worker state. At most
  /// Opts.Workers borrows are outstanding (tasks only run on workers).
  std::unique_ptr<SchedulerWorkerState> borrowWorkerState();
  void returnWorkerState(std::unique_ptr<SchedulerWorkerState> State);

  ServerOptions Opts;
  std::unique_ptr<ThreadPool> Pool;
  std::atomic<bool> Stopping{false};

  mutable std::mutex Mu; ///< Guards everything below.
  std::condition_variable Idle;
  std::vector<std::unique_ptr<SchedulerWorkerState>> FreeStates;
  int InFlight = 0; ///< Queued + running solve tasks.
  std::map<std::string, int> ClientInFlight;
  ServerStats Stat;

  int ListenFd = -1;
};

} // namespace service
} // namespace modsched

#endif // MODSCHED_SERVICE_SERVER_H
