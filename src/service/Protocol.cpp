//===- service/Protocol.cpp - Scheduling request wire protocol ------------===//

#include "service/Protocol.h"

#include "support/Json.h"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <sstream>
#include <vector>

using namespace modsched;
using namespace modsched::service;

namespace {

/// Reads one line with a hard byte cap. Returns false at EOF. A line
/// longer than \p MaxBytes sets \p Overflow and consumes through the
/// next newline so the stream position stays line-aligned.
bool getLineCapped(std::istream &In, std::string &Line, std::size_t MaxBytes,
                   bool &Overflow) {
  Line.clear();
  Overflow = false;
  int C;
  while ((C = In.get()) != EOF) {
    if (C == '\n')
      return true;
    if (C == '\r')
      continue;
    if (Line.size() >= MaxBytes) {
      Overflow = true;
      while ((C = In.get()) != EOF && C != '\n')
        ;
      return true;
    }
    Line.push_back(static_cast<char>(C));
  }
  return !Line.empty();
}

/// Splits \p Line on runs of spaces/tabs.
std::vector<std::string> splitTokens(const std::string &Line) {
  std::vector<std::string> Toks;
  std::string Cur;
  for (char C : Line) {
    if (C == ' ' || C == '\t') {
      if (!Cur.empty())
        Toks.push_back(std::move(Cur));
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Toks.push_back(std::move(Cur));
  return Toks;
}

bool parsePositiveDouble(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size() || !(V > 0) || V > 1e9)
    return false;
  Out = V;
  return true;
}

bool parsePositiveInt64(const std::string &S, std::int64_t &Out) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size() || V <= 0)
    return false;
  Out = V;
  return true;
}

bool validIdToken(const std::string &S) {
  if (S.empty() || S.size() > 128)
    return false;
  for (char C : S)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '-' &&
        C != '_' && C != '.' && C != ':')
      return false;
  return true;
}

bool validBuiltinMachine(const std::string &S) {
  return S == "example3" || S == "cydra" || S == "vliw2";
}

Frame makeError(std::string Id, std::string Message, bool Fatal = false) {
  Frame F;
  F.Kind = FrameKind::Error;
  F.Id = std::move(Id);
  F.Error = std::move(Message);
  F.Fatal = Fatal;
  return F;
}

/// Consumes lines until END or EOF so a non-fatal header error leaves
/// the stream frame-aligned. Bounded: gives up (fatally) after the
/// payload-line budget, since a frame this malformed may never END.
void skipToEnd(std::istream &In, const ProtocolLimits &Limits, Frame &F) {
  std::string Line;
  bool Overflow = false;
  for (int N = 0; N <= 2 * Limits.MaxPayloadLines; ++N) {
    if (!getLineCapped(In, Line, Limits.MaxLineBytes, Overflow))
      return;
    if (Overflow) {
      F.Fatal = true;
      return;
    }
    if (Line == "END")
      return;
  }
  F.Fatal = true;
}

/// Parses the SCHED header tokens into \p Req. Returns empty string on
/// success, the error message otherwise.
std::string parseSchedHeader(const std::vector<std::string> &Toks,
                             Request &Req) {
  for (std::size_t I = 1; I < Toks.size(); ++I) {
    const std::string &Tok = Toks[I];
    std::size_t Eq = Tok.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 >= Tok.size())
      return "malformed header token '" + Tok + "' (want key=value)";
    std::string Key = Tok.substr(0, Eq);
    std::string Val = Tok.substr(Eq + 1);
    if (Key == "id") {
      if (!validIdToken(Val))
        return "invalid request id";
      Req.Id = Val;
    } else if (Key == "objective") {
      if (!parseObjectiveName(Val, Req.Obj))
        return "unknown objective '" + Val +
               "' (want noobj|minreg|minbuff|minlife|minsl)";
    } else if (Key == "dep") {
      if (!parseDepStyleName(Val, Req.DepStyle))
        return "unknown dependence style '" + Val +
               "' (want structured|structured_loose|traditional)";
    } else if (Key == "time") {
      if (!parsePositiveDouble(Val, Req.TimeLimitSeconds))
        return "invalid time budget '" + Val + "'";
    } else if (Key == "nodes") {
      if (!parsePositiveInt64(Val, Req.NodeLimit))
        return "invalid node budget '" + Val + "'";
    } else if (Key == "maxii") {
      std::int64_t V = 0;
      if (!parsePositiveInt64(Val, V) || V > 4096)
        return "invalid maxii '" + Val + "'";
      Req.MaxIiIncrease = static_cast<int>(V);
    } else if (Key == "machine") {
      if (!validBuiltinMachine(Val))
        return "unknown builtin machine '" + Val +
               "' (want example3|cydra|vliw2)";
      Req.BuiltinMachine = Val;
    } else {
      return "unknown header key '" + Key + "'";
    }
  }
  if (Req.Id.empty())
    return "missing id=<token>";
  return "";
}

/// Reads a counted payload section ("MACHINE <n>" / "DDG <n>" already
/// consumed; \p Count validated by the caller). Returns empty string on
/// success. Truncation (EOF mid-payload) and oversize are fatal.
std::string readPayload(std::istream &In, const ProtocolLimits &Limits,
                        int Count, std::size_t &BudgetBytes,
                        std::string &Out, bool &Fatal) {
  std::string Line;
  bool Overflow = false;
  for (int I = 0; I < Count; ++I) {
    if (!getLineCapped(In, Line, Limits.MaxLineBytes, Overflow)) {
      Fatal = true;
      return "truncated payload (EOF before all lines arrived)";
    }
    if (Overflow) {
      Fatal = true;
      return "payload line exceeds the line-size limit";
    }
    if (Line.size() + 1 > BudgetBytes) {
      Fatal = true;
      return "payload exceeds the per-frame byte limit";
    }
    BudgetBytes -= Line.size() + 1;
    Out += Line;
    Out += '\n';
  }
  return "";
}

} // namespace

bool modsched::service::parseObjectiveName(const std::string &Name,
                                           Objective &Obj) {
  if (Name == "noobj")
    Obj = Objective::None;
  else if (Name == "minreg")
    Obj = Objective::MinReg;
  else if (Name == "minbuff")
    Obj = Objective::MinBuff;
  else if (Name == "minlife")
    Obj = Objective::MinLife;
  else if (Name == "minsl")
    Obj = Objective::MinSL;
  else
    return false;
  return true;
}

bool modsched::service::parseDepStyleName(const std::string &Name,
                                          DependenceStyle &Style) {
  if (Name == "structured")
    Style = DependenceStyle::Structured;
  else if (Name == "structured_loose")
    Style = DependenceStyle::StructuredLoose;
  else if (Name == "traditional")
    Style = DependenceStyle::Traditional;
  else
    return false;
  return true;
}

Frame modsched::service::readFrame(std::istream &In,
                                   const ProtocolLimits &Limits) {
  std::string Line;
  bool Overflow = false;
  // Skip blank lines between frames.
  do {
    if (!getLineCapped(In, Line, Limits.MaxLineBytes, Overflow)) {
      Frame F;
      F.Kind = FrameKind::Eof;
      return F;
    }
    if (Overflow)
      return makeError("", "request line exceeds the line-size limit",
                       /*Fatal=*/true);
  } while (Line.empty());

  std::vector<std::string> Toks = splitTokens(Line);
  if (Toks.empty())
    return makeError("", "empty request line");
  const std::string &Verb = Toks[0];

  if (Verb == "PING") {
    Frame F;
    F.Kind = FrameKind::Ping;
    return F;
  }
  if (Verb == "STATS") {
    Frame F;
    F.Kind = FrameKind::Stats;
    return F;
  }
  if (Verb == "QUIT") {
    Frame F;
    F.Kind = FrameKind::Quit;
    return F;
  }
  if (Verb != "SCHED") {
    return makeError("", "unknown verb '" + Verb +
                             "' (want SCHED|PING|STATS|QUIT)");
  }

  Frame F;
  F.Kind = FrameKind::Sched;
  if (std::string Err = parseSchedHeader(Toks, F.Req); !Err.empty()) {
    Frame E = makeError(F.Req.Id, Err);
    skipToEnd(In, Limits, E);
    return E;
  }
  F.Id = F.Req.Id;

  // Payload sections in order: optional MACHINE, required DDG, END.
  std::size_t BudgetBytes = Limits.MaxPayloadBytes;
  bool SawDdg = false;
  for (;;) {
    if (!getLineCapped(In, Line, Limits.MaxLineBytes, Overflow))
      return makeError(F.Id, "truncated frame (EOF before END)",
                       /*Fatal=*/true);
    if (Overflow)
      return makeError(F.Id, "request line exceeds the line-size limit",
                       /*Fatal=*/true);
    if (Line == "END")
      break;
    std::vector<std::string> Sec = splitTokens(Line);
    if (Sec.size() != 2 || (Sec[0] != "MACHINE" && Sec[0] != "DDG")) {
      Frame E = makeError(F.Id, "expected 'MACHINE <n>', 'DDG <n>' or "
                                "'END', got '" +
                                    Line + "'");
      skipToEnd(In, Limits, E);
      return E;
    }
    std::int64_t Count = 0;
    if ((!parsePositiveInt64(Sec[1], Count) && Sec[1] != "0") ||
        Count > Limits.MaxPayloadLines) {
      Frame E = makeError(F.Id, "invalid " + Sec[0] + " line count '" +
                                    Sec[1] + "'");
      skipToEnd(In, Limits, E);
      return E;
    }
    std::string *Dest = nullptr;
    if (Sec[0] == "MACHINE") {
      if (!F.Req.MachineText.empty() || !F.Req.BuiltinMachine.empty()) {
        Frame E = makeError(F.Id, !F.Req.MachineText.empty()
                                      ? "duplicate MACHINE section"
                                      : "MACHINE section conflicts with "
                                        "machine=<builtin>");
        skipToEnd(In, Limits, E);
        return E;
      }
      Dest = &F.Req.MachineText;
    } else {
      if (SawDdg) {
        Frame E = makeError(F.Id, "duplicate DDG section");
        skipToEnd(In, Limits, E);
        return E;
      }
      SawDdg = true;
      Dest = &F.Req.DdgText;
    }
    bool Fatal = false;
    if (std::string Err = readPayload(In, Limits, static_cast<int>(Count),
                                      BudgetBytes, *Dest, Fatal);
        !Err.empty()) {
      Frame E = makeError(F.Id, Err, Fatal);
      if (!Fatal)
        skipToEnd(In, Limits, E);
      return E;
    }
  }

  if (!SawDdg)
    return makeError(F.Id, "missing DDG section");
  if (F.Req.MachineText.empty() && F.Req.BuiltinMachine.empty())
    return makeError(F.Id,
                     "missing machine (MACHINE section or machine=<builtin>)");
  return F;
}

std::string modsched::service::errorResponse(const std::string &Id,
                                             const std::string &Message) {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.key("proto").value(ProtocolVersion);
  if (!Id.empty())
    W.key("id").value(Id);
  W.key("status").value("error");
  W.key("error").value(Message);
  W.endObject();
  return Out;
}

std::string modsched::service::retryAfterResponse(const std::string &Id,
                                                  int RetryAfterMs) {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.key("proto").value(ProtocolVersion);
  if (!Id.empty())
    W.key("id").value(Id);
  W.key("status").value("retry_after");
  W.key("retry_after_ms").value(RetryAfterMs);
  W.endObject();
  return Out;
}

std::string modsched::service::pingResponse() {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.key("proto").value(ProtocolVersion);
  W.key("status").value("ok");
  W.key("pong").value(true);
  W.endObject();
  return Out;
}
