//===- service/Server.cpp - Persistent scheduling daemon ------------------===//

#include "service/Server.h"

#include "graph/DependenceGraph.h"
#include "ilpsched/SolutionCache.h"
#include "ilpsched/WorkerState.h"
#include "machine/MachineModel.h"
#include "support/Json.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "textio/DdgFormat.h"
#include "textio/MachineFormat.h"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace modsched;
using namespace modsched::service;

namespace {

telemetry::Counter StatConnections("service", "connections",
                                   "Streams served (stdio or socket)");
telemetry::Counter StatRequests("service", "requests",
                                "SCHED frames received (incl. malformed)");
telemetry::Counter StatAccepted("service", "accepted",
                                "Requests admitted to the solve queue");
telemetry::Counter StatShed("service", "shed",
                            "Requests load-shed with retry_after");
telemetry::Counter StatErrors("service", "errors",
                              "Error replies (framing or payload)");
telemetry::Counter StatCompleted("service", "completed",
                                 "Solve tasks finished (any status)");
telemetry::Counter StatCacheHits("service", "cache_hits",
                                 "Completed requests served from the "
                                 "solution cache");
telemetry::Counter StatCancelled("service", "cancelled",
                                 "Requests cancelled by client disconnect");

/// Strict env parsing in the bench/Harness style: malformed values warn
/// on stderr and keep the compiled-in default.
int64_t parseEnvInt(const char *Name, int64_t Default, int64_t Min,
                    int64_t Max) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return Default;
  char *End = nullptr;
  long long V = std::strtoll(Env, &End, 10);
  if (*End != '\0' || V < Min || V > Max) {
    std::fprintf(stderr,
                 "modsched: invalid %s='%s' (want integer in [%lld, %lld]); "
                 "keeping %lld\n",
                 Name, Env, static_cast<long long>(Min),
                 static_cast<long long>(Max),
                 static_cast<long long>(Default));
    return Default;
  }
  return V;
}

double parseEnvSeconds(const char *Name, double Default) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return Default;
  char *End = nullptr;
  double V = std::strtod(Env, &End);
  if (*End != '\0' || !(V > 0) || V > 1e9) {
    std::fprintf(stderr,
                 "modsched: invalid %s='%s' (want positive seconds); "
                 "keeping %g\n",
                 Name, Env, Default);
    return Default;
  }
  return V;
}

bool parseEnvBool(const char *Name, bool Default) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return Default;
  if (std::strcmp(Env, "1") == 0 || std::strcmp(Env, "on") == 0)
    return true;
  if (std::strcmp(Env, "0") == 0 || std::strcmp(Env, "off") == 0)
    return false;
  std::fprintf(stderr,
               "modsched: invalid %s='%s' (want 0|1|on|off); keeping %s\n",
               Name, Env, Default ? "on" : "off");
  return Default;
}

/// Renders a 64-bit content address the way the forensics docs write
/// them: 16 lowercase hex digits.
std::string hex64(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Blocking streambuf over a POSIX fd; sockets write with MSG_NOSIGNAL
/// so a vanished client surfaces as a write error, never SIGPIPE.
/// Write failures latch: the stream goes bad and later lines are
/// dropped (the client is gone; solves still complete for the cache).
class FdStreamBuf : public std::streambuf {
public:
  FdStreamBuf(int Fd, bool IsSocket) : Fd(Fd), IsSocket(IsSocket) {
    setg(InBuf, InBuf, InBuf);
    setp(OutBuf, OutBuf + sizeof(OutBuf));
  }
  ~FdStreamBuf() override { sync(); }

protected:
  int_type underflow() override {
    if (gptr() < egptr())
      return traits_type::to_int_type(*gptr());
    ssize_t N;
    do
      N = ::read(Fd, InBuf, sizeof(InBuf));
    while (N < 0 && errno == EINTR);
    if (N <= 0)
      return traits_type::eof();
    setg(InBuf, InBuf, InBuf + N);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type C) override {
    if (flushOut() != 0)
      return traits_type::eof();
    if (!traits_type::eq_int_type(C, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(C);
      pbump(1);
    }
    return traits_type::not_eof(C);
  }

  int sync() override { return flushOut(); }

private:
  int flushOut() {
    const char *P = pbase();
    std::size_t Len = static_cast<std::size_t>(pptr() - pbase());
    while (Len > 0) {
      ssize_t N = IsSocket ? ::send(Fd, P, Len, MSG_NOSIGNAL)
                           : ::write(Fd, P, Len);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        setp(OutBuf, OutBuf + sizeof(OutBuf));
        return -1;
      }
      P += N;
      Len -= static_cast<std::size_t>(N);
    }
    setp(OutBuf, OutBuf + sizeof(OutBuf));
    return 0;
  }

  int Fd;
  bool IsSocket;
  char InBuf[8192];
  char OutBuf[8192];
};

} // namespace

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

ServerOptions ServerOptions::fromEnv() {
  ServerOptions O;
  O.Workers = static_cast<int>(
      parseEnvInt("MODSCHED_SERVICE_WORKERS", O.Workers, 1, 256));
  O.QueueLimit = static_cast<int>(
      parseEnvInt("MODSCHED_SERVICE_QUEUE", O.QueueLimit, 1, 1 << 20));
  O.ClientInFlightLimit = static_cast<int>(parseEnvInt(
      "MODSCHED_SERVICE_CLIENT_INFLIGHT", O.ClientInFlightLimit, 1, 1 << 20));
  O.DefaultTimeLimitSeconds = parseEnvSeconds("MODSCHED_SERVICE_TIME_LIMIT",
                                              O.DefaultTimeLimitSeconds);
  O.MaxTimeLimitSeconds = parseEnvSeconds("MODSCHED_SERVICE_MAX_TIME_LIMIT",
                                          O.MaxTimeLimitSeconds);
  O.DefaultNodeLimit = parseEnvInt("MODSCHED_SERVICE_NODE_LIMIT",
                                   O.DefaultNodeLimit, 1, INT64_MAX);
  O.Cache = parseEnvBool("MODSCHED_SERVICE_CACHE", O.Cache);
  O.RetryAfterMs = static_cast<int>(parseEnvInt(
      "MODSCHED_SERVICE_RETRY_AFTER_MS", O.RetryAfterMs, 1, 3600000));
  O.Limits.MaxLineBytes = static_cast<std::size_t>(
      parseEnvInt("MODSCHED_SERVICE_MAX_LINE",
                  static_cast<int64_t>(O.Limits.MaxLineBytes), 256, 1 << 24));
  O.Limits.MaxPayloadLines = static_cast<int>(
      parseEnvInt("MODSCHED_SERVICE_MAX_PAYLOAD_LINES",
                  O.Limits.MaxPayloadLines, 16, 1 << 20));
  return O;
}

//===----------------------------------------------------------------------===//
// Connection bookkeeping
//===----------------------------------------------------------------------===//

/// Per-stream state shared between the reader (serveStream) and the
/// solve tasks it admitted. Held by shared_ptr so a task outliving an
/// aborted reader still finds its bookkeeping alive; the reader never
/// returns before Pending drains, so Out stays valid for every write.
struct Server::Connection {
  std::string ClientId;
  std::ostream *Out = nullptr;
  std::mutex OutMu; ///< One response line at a time.

  std::mutex Mu; ///< Guards Pending / Active.
  std::condition_variable AllDone;
  int Pending = 0;
  /// Cancellation sources of the in-flight requests, for
  /// disconnect-triggered cancellation.
  std::vector<std::shared_ptr<CancellationSource>> Active;

  void writeLine(const std::string &Line) {
    std::lock_guard<std::mutex> Lock(OutMu);
    *Out << Line << '\n';
    Out->flush();
  }
};

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions Options) : Opts(std::move(Options)) {
  Pool = std::make_unique<ThreadPool>(Opts.Workers);
  for (int I = 0; I < Opts.Workers; ++I)
    FreeStates.push_back(std::make_unique<SchedulerWorkerState>());
}

Server::~Server() {
  requestShutdown();
  drain();
  Pool.reset(); // Joins the workers (drain left nothing queued).
  if (ListenFd >= 0)
    ::close(ListenFd);
}

std::unique_ptr<SchedulerWorkerState> Server::borrowWorkerState() {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(!FreeStates.empty() &&
         "more concurrent solve tasks than pool workers");
  std::unique_ptr<SchedulerWorkerState> S = std::move(FreeStates.back());
  FreeStates.pop_back();
  return S;
}

void Server::returnWorkerState(std::unique_ptr<SchedulerWorkerState> State) {
  std::lock_guard<std::mutex> Lock(Mu);
  FreeStates.push_back(std::move(State));
}

void Server::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return InFlight == 0; });
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stat;
}

std::string Server::statsResponse() const {
  ServerStats S = stats();
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.key("proto").value(ProtocolVersion);
  W.key("status").value("ok");
  W.key("stats").beginObject();
  W.key("connections").value(S.Connections);
  W.key("requests").value(S.Requests);
  W.key("accepted").value(S.Accepted);
  W.key("shed").value(S.Shed);
  W.key("errors").value(S.Errors);
  W.key("completed").value(S.Completed);
  W.key("cache_hits").value(S.CacheHits);
  W.key("cancelled").value(S.Cancelled);
  W.key("workers").value(Opts.Workers);
  W.key("queue_limit").value(Opts.QueueLimit);
  W.key("cache_entries")
      .value(static_cast<uint64_t>(SolutionCache::global().size()));
  W.endObject();
  W.endObject();
  return Out;
}

void Server::runRequest(const Request &Req, SchedulerWorkerState &Worker,
                        const std::shared_ptr<Connection> &Conn,
                        const CancellationToken &Cancel) {
  // Payload parsing happens here on the worker, off the reader thread:
  // a hostile payload costs its own budget, not the connection's.
  std::string Error;
  std::optional<MachineModel> M;
  if (!Req.BuiltinMachine.empty()) {
    if (Req.BuiltinMachine == "example3")
      M = MachineModel::example3();
    else if (Req.BuiltinMachine == "cydra")
      M = MachineModel::cydraLike();
    else if (Req.BuiltinMachine == "vliw2")
      M = MachineModel::vliw2();
  } else {
    M = parseMachine(Req.MachineText, &Error);
  }
  if (!M) {
    ++StatErrors;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Stat.Errors;
    }
    Conn->writeLine(errorResponse(Req.Id, "bad machine: " + Error));
    return;
  }

  std::optional<DependenceGraph> G = parseDdg(Req.DdgText, *M, &Error);
  if (!G) {
    ++StatErrors;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Stat.Errors;
    }
    Conn->writeLine(errorResponse(Req.Id, "bad ddg: " + Error));
    return;
  }

  SchedulerOptions SOpts;
  SOpts.Formulation.Obj = Req.Obj;
  SOpts.Formulation.DepStyle = Req.DepStyle;
  SOpts.Backend = Opts.Backend;
  SOpts.TimeLimitSeconds =
      std::min(Req.TimeLimitSeconds > 0 ? Req.TimeLimitSeconds
                                        : Opts.DefaultTimeLimitSeconds,
               Opts.MaxTimeLimitSeconds);
  SOpts.NodeLimit = Req.NodeLimit > 0 ? Req.NodeLimit : Opts.DefaultNodeLimit;
  if (Req.MaxIiIncrease >= 0)
    SOpts.MaxIiIncrease = Req.MaxIiIncrease;
  SOpts.Search = IiSearchKind::Sequential; // Parallelism is across requests.
  SOpts.Explain = false;
  SOpts.Cache = Opts.Cache;

  // Arm the worker's persistent context for this request: absolute
  // deadline plus the connection's cancellation token. Restored below —
  // the workspace (and PB session) are what persist, never budgets.
  Worker.Ctx.DeadlineSeconds =
      monotonicSeconds() + SOpts.TimeLimitSeconds;
  Worker.Ctx.Cancel = Cancel;

  OptimalModuloScheduler Scheduler(*M, SOpts);
  ScheduleResult R = Scheduler.schedule(*G, &Worker);

  Worker.Ctx.DeadlineSeconds = lp::NoDeadline;
  Worker.Ctx.Cancel = CancellationToken();

  const char *Status = "unsolved";
  if (R.Found)
    Status = "ok";
  else if (Cancel.cancelled())
    Status = "cancelled";
  else if (R.TimedOut)
    Status = "timeout";
  else if (R.NodeLimitHit)
    Status = "node_limit";

  ++StatCompleted;
  if (R.CacheHit)
    ++StatCacheHits;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Stat.Completed;
    if (R.CacheHit)
      ++Stat.CacheHits;
  }

  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.key("proto").value(ProtocolVersion);
  W.key("id").value(Req.Id);
  W.key("status").value(Status);
  W.key("loop").value(G->name());
  W.key("ops").value(static_cast<int>(G->numOperations()));
  W.key("objective").value(toString(Req.Obj));
  W.key("mii").value(R.Mii);
  W.key("cache_hit").value(R.CacheHit);
  if (R.CacheCanonicalHash != 0) {
    W.key("canonical_hash").value(hex64(R.CacheCanonicalHash));
    W.key("request_key").value(hex64(R.CacheRequestKey));
  }
  W.key("nodes").value(R.Nodes);
  W.key("pb_conflicts").value(R.PbConflicts);
  W.key("seconds").value(R.Seconds);
  if (R.Found) {
    W.key("ii").value(R.II);
    W.key("secondary").value(R.SecondaryObjective);
    if (Opts.EmitSchedules) {
      W.key("schedule").beginObject();
      W.key("ii").value(R.Schedule.ii());
      W.key("times").beginArray();
      for (int T : R.Schedule.times())
        W.value(T);
      W.endArray();
      W.endObject();
    }
  }
  W.endObject();
  Conn->writeLine(Out);
}

void Server::admit(Request Req, const std::shared_ptr<Connection> &Conn) {
  auto Source = std::make_shared<CancellationSource>();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Stat.Requests;
    ++StatRequests;
    const bool QueueFull = InFlight >= Opts.QueueLimit;
    const bool ClientFull =
        ClientInFlight[Conn->ClientId] >= Opts.ClientInFlightLimit;
    if (stopping() || QueueFull || ClientFull) {
      ++Stat.Shed;
      ++StatShed;
      // Written outside the admission lock? No: the reply is one line
      // on the connection's own mutex; holding Mu here is fine (no
      // lock-order cycle — writeLine never takes Mu).
      Conn->writeLine(retryAfterResponse(Req.Id, Opts.RetryAfterMs));
      return;
    }
    ++Stat.Accepted;
    ++StatAccepted;
    ++InFlight;
    ++ClientInFlight[Conn->ClientId];
  }
  {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    ++Conn->Pending;
    Conn->Active.push_back(Source);
  }

  Pool->submit([this, Req = std::move(Req), Conn, Source]() {
    std::unique_ptr<SchedulerWorkerState> State = borrowWorkerState();
    runRequest(Req, *State, Conn, Source->token());
    returnWorkerState(std::move(State));
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --InFlight;
      --ClientInFlight[Conn->ClientId];
      if (InFlight == 0)
        Idle.notify_all();
    }
    {
      std::lock_guard<std::mutex> Lock(Conn->Mu);
      for (std::size_t I = 0; I < Conn->Active.size(); ++I)
        if (Conn->Active[I] == Source) {
          Conn->Active.erase(Conn->Active.begin() +
                             static_cast<std::ptrdiff_t>(I));
          break;
        }
      if (--Conn->Pending == 0)
        Conn->AllDone.notify_all();
    }
  });
}

void Server::serveStream(std::istream &In, std::ostream &Out,
                         const std::string &ClientId) {
  auto Conn = std::make_shared<Connection>();
  Conn->ClientId = ClientId;
  Conn->Out = &Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Stat.Connections;
    ++StatConnections;
  }

  bool Disconnected = false;
  for (;;) {
    Frame F = readFrame(In, Opts.Limits);
    if (F.Kind == FrameKind::Eof || F.Kind == FrameKind::Quit)
      break;
    if (F.Kind == FrameKind::Ping) {
      Conn->writeLine(pingResponse());
      continue;
    }
    if (F.Kind == FrameKind::Stats) {
      Conn->writeLine(statsResponse());
      continue;
    }
    if (F.Kind == FrameKind::Error) {
      {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Stat.Requests;
        ++Stat.Errors;
        ++StatRequests;
        ++StatErrors;
      }
      Conn->writeLine(errorResponse(F.Id, F.Error));
      if (F.Fatal) {
        // Lost framing (oversized line, truncated frame, payload
        // overflow): the rest of the stream is garbage. A truncated
        // frame is the mid-request disconnect case — cancel whatever
        // this client still has in flight.
        Disconnected = true;
        break;
      }
      continue;
    }
    admit(std::move(F.Req), Conn);
  }

  if (Disconnected) {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    for (const std::shared_ptr<CancellationSource> &S : Conn->Active) {
      S->cancel();
      ++StatCancelled;
    }
    std::lock_guard<std::mutex> StatLock(Mu);
    Stat.Cancelled += static_cast<std::int64_t>(Conn->Active.size());
  }

  // Graceful per-connection drain: every admitted request still gets
  // its response line (cancelled ones report status "cancelled").
  std::unique_lock<std::mutex> Lock(Conn->Mu);
  Conn->AllDone.wait(Lock, [&Conn] { return Conn->Pending == 0; });
}

//===----------------------------------------------------------------------===//
// Unix-domain socket transport
//===----------------------------------------------------------------------===//

bool Server::listenUnix(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + Path;
    return false;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Path.c_str());
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    if (Error)
      *Error = std::string("bind/listen ") + Path + ": " +
               std::strerror(errno);
    ::close(Fd);
    return false;
  }
  ListenFd = Fd;
  return true;
}

void Server::acceptLoop() {
  assert(ListenFd >= 0 && "acceptLoop requires a successful listenUnix");
  std::vector<std::thread> Handlers;
  int64_t NextConn = 0;
  while (!stopping()) {
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, /*timeout_ms=*/200);
    if (N <= 0)
      continue; // Timeout or EINTR: re-check the stop flag.
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::string ClientId = "sock:" + std::to_string(NextConn++);
    Handlers.emplace_back([this, Fd, ClientId]() {
      // Handler threads record service/* counters; every non-main
      // recording thread needs a telemetry shard (support/Telemetry.h
      // thread model).
      telemetry::ThreadShardScope Shard;
      FdStreamBuf InBuf(Fd, /*IsSocket=*/true);
      FdStreamBuf OutBuf(Fd, /*IsSocket=*/true);
      std::istream In(&InBuf);
      std::ostream Out(&OutBuf);
      serveStream(In, Out, ClientId);
      Out.flush();
      ::close(Fd);
    });
  }
  for (std::thread &T : Handlers)
    T.join();
  drain();
}
