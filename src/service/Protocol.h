//===- service/Protocol.h - Scheduling request wire protocol ----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-oriented request protocol of the scheduling service
/// (docs/SERVICE.md has the full grammar). Requests are plain-text
/// frames built from the existing textio payload formats; every
/// response is exactly one JSON line written through support/Json.
///
/// Frame grammar (one request):
///
///   SCHED id=<token> [objective=<name>] [dep=<style>] [time=<sec>]
///         [nodes=<count>] [maxii=<delta>] [machine=<builtin>]
///   MACHINE <nlines>          ; omitted when machine=<builtin> is given
///   <nlines of machine text>  ; textio/MachineFormat.h grammar
///   DDG <nlines>
///   <nlines of ddg text>      ; textio/DdgFormat.h grammar
///   END
///
/// plus the single-line commands PING, STATS and QUIT. Parsing is
/// hardened: oversized lines or payloads, bad counts, unknown keys,
/// truncated frames and invalid enum tokens all come back as Error
/// frames carrying a structured message — the daemon replies and keeps
/// serving (assertions stay ON; malformed input must never reach one).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SERVICE_PROTOCOL_H
#define MODSCHED_SERVICE_PROTOCOL_H

#include "sched/Problem.h"

#include <cstdint>
#include <iosfwd>
#include <string>

namespace modsched {
namespace service {

/// Protocol version stamped into every response ("proto" key).
inline constexpr int ProtocolVersion = 1;

/// Hard limits the frame reader enforces before any payload parsing.
/// Exceeding one is a fatal frame error: the reader cannot resync
/// reliably past unbounded garbage, so the server closes the stream
/// after the error reply.
struct ProtocolLimits {
  /// Longest accepted request line, bytes (newline excluded).
  std::size_t MaxLineBytes = 64 * 1024;
  /// Most payload lines in one MACHINE / DDG section.
  int MaxPayloadLines = 4096;
  /// Total payload bytes in one frame.
  std::size_t MaxPayloadBytes = 1 << 20;
};

/// One parsed SCHED request: validated header knobs plus raw payload
/// text (payloads are parsed against each other later, on the worker).
struct Request {
  std::string Id;
  Objective Obj = Objective::MinReg;
  DependenceStyle DepStyle = DependenceStyle::Structured;
  /// Requested wall-clock budget; <= 0 = server default. The server
  /// clamps to its configured maximum either way.
  double TimeLimitSeconds = 0.0;
  /// Requested node budget; <= 0 = server default.
  std::int64_t NodeLimit = 0;
  /// Requested MaxIiIncrease; < 0 = server default.
  int MaxIiIncrease = -1;
  /// Builtin machine name ("example3" / "cydra" / "vliw2"); empty when
  /// the frame carried a MACHINE section instead.
  std::string BuiltinMachine;
  /// Raw textio machine description (empty with BuiltinMachine).
  std::string MachineText;
  /// Raw textio .ddg loop description.
  std::string DdgText;
};

/// What the framing layer produced.
enum class FrameKind {
  Sched, ///< A complete, header-valid SCHED request.
  Ping,  ///< PING keepalive.
  Stats, ///< STATS snapshot request.
  Quit,  ///< QUIT — client is done with this connection.
  Eof,   ///< Clean end of stream between frames.
  Error, ///< Malformed input; Error holds the message.
};

/// One frame read from the stream.
struct Frame {
  FrameKind Kind = FrameKind::Eof;
  Request Req;       ///< Valid when Kind == Sched.
  std::string Id;    ///< Best-effort request id for error replies.
  std::string Error; ///< Valid when Kind == Error.
  /// Fatal errors (oversized line / payload overflow / truncation) mean
  /// the reader lost framing; the server replies then drops the stream.
  /// Non-fatal errors consumed through END and the stream is reusable.
  bool Fatal = false;
};

/// Reads one frame. Blank lines between frames are skipped. Never
/// throws and never aborts on malformed input.
Frame readFrame(std::istream &In, const ProtocolLimits &Limits);

/// Parses an objective name ("noobj" / "minreg" / "minbuff" /
/// "minlife" / "minsl"); false on unknown tokens.
bool parseObjectiveName(const std::string &Name, Objective &Obj);

/// Parses a dependence-style name ("structured" / "structured_loose" /
/// "traditional"); false on unknown tokens.
bool parseDepStyleName(const std::string &Name, DependenceStyle &Style);

/// One-line JSON error reply for request \p Id (may be empty).
std::string errorResponse(const std::string &Id, const std::string &Message);

/// One-line JSON load-shed reply: come back in \p RetryAfterMs.
std::string retryAfterResponse(const std::string &Id, int RetryAfterMs);

/// One-line JSON PING reply.
std::string pingResponse();

} // namespace service
} // namespace modsched

#endif // MODSCHED_SERVICE_PROTOCOL_H
