//===- ilpsched/Formulation.h - ILP modulo scheduling models ----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the integer linear programs of the paper for one candidate II:
///
///   variables   a[r][i] (binary MRT-row assignment, paper's A matrix)
///               k[i]    (integer stage numbers, paper's k vector)
///   constraints assignment   (Eq. 1)
///               dependence   (Ineq. 4 "traditional" or Ineq. 20
///                             "structured"; Ineq. 19 without the
///                             Chaudhuri tightening as an ablation)
///               resource     (Ineq. 5)
///
/// plus the secondary-objective machinery:
///
///   MinReg  exact MaxLive: per register a "kill" pseudo-operation with
///           its own row-assignment vector and stage, constrained to
///           follow every use; per-row live counts are +/-1 expressions
///           (see below); MaxLive bounds every row's total.
///   MinBuff sum of per-register buffer counts ceil(lifetime/II),
///           following [7] (traditional, coefficient-II constraints) or
///           the 0-1-structured reformulation in the spirit of [15].
///   MinLife cumulative lifetime, following [16] (traditional) or fully
///           structured.
///
/// The structured live-count identity: with count(T, r) = #{t in [0, T] :
/// t mod II == r} and time = stage * II + row, one has
///   count(time, r)     = stage + sum_{z=r}^{II-1} rowvar[z]
///   count(time - 1, r) = stage + sum_{z=r+1}^{II-1} rowvar[z]
/// so the number of times register v (defined at time_d, killed at
/// time_k) is live in row r is
///   live[v][r] = killStage_v - k_def + sum_{z=r}^{II-1} killRow[z][v]
///                - sum_{z=r+1}^{II-1} a[z][def],
/// an expression in which every variable has coefficient +/-1. This is
/// our concrete realization of the 0-1-structured MaxLive objective of
/// [4], which the paper reuses for both formulations of MinReg.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILPSCHED_FORMULATION_H
#define MODSCHED_ILPSCHED_FORMULATION_H

#include "graph/DependenceGraph.h"
#include "lp/Model.h"
#include "machine/MachineModel.h"
#include "sched/Explain.h"
#include "sched/ModuloSchedule.h"
#include "sched/Problem.h"

#include <optional>
#include <string>
#include <vector>

namespace modsched {

// Objective, DependenceStyle, ObjectiveStyle, and FormulationOptions
// live in sched/Problem.h (the sched layer owns the problem statement;
// this layer owns the ILP encodings of it).

/// Build telemetry for one formulation (see docs/OBSERVABILITY.md):
/// wall time and model shape, overall and per constraint family. A
/// family is a constraint-name prefix up to the first '_' ("assign",
/// "dep", "res", "inst", ...), so the paper's structured-vs-traditional
/// density argument can be checked per constraint class.
struct FormulationStats {
  /// Wall-clock seconds spent building the model (always measured; two
  /// clock reads are noise next to model construction).
  double BuildSeconds = 0.0;
  int Columns = 0;
  int IntegerColumns = 0;
  int Rows = 0;
  /// Total structural nonzeros over all constraints.
  int64_t Nonzeros = 0;

  struct Family {
    std::string Name;
    int Rows = 0;
    int64_t Nonzeros = 0;
  };
  /// Per-family row/nonzero counts, sorted by family name.
  std::vector<Family> Families;
};

/// The ILP for one (graph, machine, II) triple, with decoding metadata.
class Formulation {
public:
  /// Builds the model. When the windows prove II infeasible (recurrence
  /// cannot fit the schedule-length budget), valid() is false and the
  /// model is empty.
  Formulation(const DependenceGraph &G, const MachineModel &M, int II,
              const FormulationOptions &Opts);

  /// False when II was proved infeasible during window computation.
  bool valid() const { return Valid; }

  const lp::Model &model() const { return Ilp; }
  int ii() const { return II; }
  /// Latest allowed start time (schedule-length budget).
  int maxTime() const { return MaxTime; }

  /// Build-time telemetry (valid even when valid() is false: an
  /// infeasible-window build reports zero rows/columns).
  const FormulationStats &stats() const { return BuildStats; }

  /// Constraint provenance: Origins[j] is the typed origin of model row
  /// j (same indexing as model().constraints()). Built unconditionally;
  /// the table is plain data and costs a fraction of the row it tags.
  const std::vector<RowOrigin> &rowOrigins() const { return Origins; }

  /// Variable index of a[r][i].
  int aVar(int Row, int Op) const { return ABase + Op * II + Row; }
  /// Variable index of k[i].
  int kVar(int Op) const { return KBase + Op; }

  /// Decodes an integral solver solution into a modulo schedule.
  ModuloSchedule decode(const std::vector<double> &Values) const;

  /// With InstanceMapped set: the resource instance operation \p Op was
  /// mapped to for resource type \p Resource, or -1 when the op does not
  /// use that type (or mapping is disabled / not needed for the type).
  int decodeInstance(const std::vector<double> &Values, int Op,
                     int Resource) const;

private:
  /// Computes BuildStats from the finished model (called on every
  /// constructor exit path) and publishes it to the telemetry layer.
  void finalizeBuildStats(double BuildSeconds);

  void buildAssignment();
  void buildDependence(int EdgeIndex, const SchedEdge &E);
  void buildResource();
  void buildObjective();

  /// Tags every model row emitted since the previous call with \p O
  /// (extends the provenance side table up to the current row count).
  void noteRows(const RowOrigin &O);

  /// Creates the per-register kill pseudo-operations (row vectors,
  /// stages, assignment + kill dependence constraints) once; shared by
  /// MinReg, MinLife, and the RegisterLimit constraint.
  void buildKillOps();

  /// Emits one dependence constraint between two scheduled events given
  /// by their (row-variable base, stage-variable) pairs; shared by real
  /// edges and register-kill edges. Latency may be <= 0 and distance may
  /// be negative (kill edges).
  void emitDependence(int SrcRowBase, int SrcK, int DstRowBase, int DstK,
                      int Latency, int Distance, const std::string &Tag,
                      const RowOrigin &Origin);

  /// Appends sum_{z=Lo}^{Hi} of row variables (base + z) to \p Terms.
  void appendRowRange(std::vector<lp::Term> &Terms, int RowBase, int Lo,
                      int Hi, double Coeff) const;

  /// Appends the structured live-count expression of register \p Reg in
  /// row \p Row (see file comment) to \p Terms.
  void appendLiveCount(std::vector<lp::Term> &Terms, int Reg, int Row) const;

  /// A constant lower bound on register \p Reg's lifetime in cycles,
  /// derived from the flow-edge latencies (lifetime >= latency + 1 for
  /// any used value, >= 1 always). Used to tighten the LP relaxation of
  /// the lifetime objectives.
  int minLifetimeBound(int Reg) const;

  const DependenceGraph &G;
  const MachineModel &M;
  int II;
  FormulationOptions Opts;
  bool Valid = false;
  int MaxTime = 0;
  FormulationStats BuildStats;
  /// Row-id -> origin side table (parallel to Ilp.constraints()).
  std::vector<RowOrigin> Origins;

  lp::Model Ilp;
  int ABase = 0;
  int KBase = 0;
  /// Kill pseudo-op variables (MinReg / MinLife): row base and stage per
  /// register; -1 when unused.
  std::vector<int> KillRowBase;
  std::vector<int> KillStage;
  /// MinBuff: buffer variable per register; MinReg: MaxLive variable.
  std::vector<int> BufferVar;
  int MaxLiveVar = -1;
  /// MinSL: sink pseudo-operation (row base / stage variable).
  int SinkRowBase = -1;
  int SinkStage = -1;
  /// Traditional-style auxiliary lifetime variables (MinLife).
  std::vector<int> LifeVar;
  std::vector<int> Asap, Alap;
  /// InstanceMapped: base of the w[i][q][e] mapping-choice binaries,
  /// indexed by MapVarBase[Op * numResources + Resource] (-1 = the op
  /// does not use the type or the type is not instance-mapped).
  std::vector<int> MapVarBase;
};

} // namespace modsched

#endif // MODSCHED_ILPSCHED_FORMULATION_H
