//===- ilpsched/PbFormulation.cpp - PB modulo scheduling models -----------===//

#include "ilpsched/PbFormulation.h"

#include "graph/GraphAlgorithms.h"

#include <algorithm>
#include <cassert>

using namespace modsched;

namespace {

/// Floored integer division (C++ '/' truncates toward zero).
int floorDiv(int A, int B) {
  assert(B > 0 && "divisor must be positive");
  int Q = A / B;
  if (A % B != 0 && (A < 0))
    --Q;
  return Q;
}

/// Non-negative remainder.
int modPos(int A, int B) {
  int R = A % B;
  return R < 0 ? R + B : R;
}

} // namespace

bool PbFormulation::supports(const FormulationOptions &O) {
  if (O.InstanceMapped)
    return false; // Marginal/conflict rows need the y auxiliaries.
  if (O.Obj == Objective::MinSL)
    return false; // Sink machinery not encoded.
  if (O.Obj != Objective::None && O.ObjStyle == ObjectiveStyle::Traditional)
    return false; // Only the structured objective machinery is encoded.
  return true;
}

PbFormulation::PbFormulation(const DependenceGraph &DG, const MachineModel &MM,
                             int TheII, const FormulationOptions &Options,
                             bool WithExplainGroups,
                             pb::AttemptSession *TheSession)
    : G(DG), M(MM), II(TheII), Opts(Options),
      ExplainGroups(WithExplainGroups), Session(TheSession),
      S(TheSession ? TheSession->solver() : OwnSolver) {
  assert(II >= 1 && "initiation interval must be positive");
  assert(supports(Opts) && "options not supported by the PB backend");
  assert(!(Session && ExplainGroups) &&
         "infeasibility forensics always use a fresh solver");
  if (Session) {
    assert(!Session->attemptOpen() && "previous attempt not retired");
    VarBase = S.numVars();
    ExportBase = S.exportRows().size();
  }

  // Windows and budgets: identical to ilpsched/Formulation so both
  // backends decide the same feasible set per II.
  std::optional<int> MinLen = minScheduleLength(G, II);
  if (!MinLen)
    return; // II below the recurrence bound: infeasible.
  int Budget = *MinLen - 1 + Opts.ScheduleLengthSlack;
  StageCount = Budget / II + 1;
  MaxTime = StageCount * II - 1;

  std::optional<std::vector<int>> AsapOpt = asapTimes(G, II);
  std::optional<std::vector<int>> AlapOpt = alapTimes(G, II, MaxTime);
  if (!AsapOpt || !AlapOpt)
    return;
  Asap = std::move(*AsapOpt);
  Alap = std::move(*AlapOpt);
  for (int Op = 0; Op < G.numOperations(); ++Op)
    if (Asap[Op] > Alap[Op])
      return; // Window empty: II infeasible within the budget.
  Valid = true;

  // Shared mode: open this II's gated attempt. The caller retires it
  // (Session->endAttempt()) once done with this formulation.
  if (Session)
    Session->beginAttempt();

  int N = G.numOperations();

  // A matrix: a[r][i] literals, laid out op-major exactly like the ILP.
  ABase = S.numVars();
  for (int V = 0; V < N * II; ++V)
    S.newVar();

  // k vector: order-encoded stages with window-derived bounds.
  KVars.reserve(size_t(N));
  for (int Op = 0; Op < N; ++Op) {
    int KMin = 0, KMax = StageCount - 1;
    if (Opts.TightenStageBounds) {
      KMin = Asap[Op] / II;
      KMax = Alap[Op] / II;
    }
    KVars.push_back(makeIntVar(KMin, KMax));
    noteRows(RowOrigin::stageWindow(Op));
  }

  for (int Op = 0; Op < N; ++Op) {
    buildAssignment(ABase + Op * II);
    noteRows(RowOrigin::assignment(Op));
  }
  for (int Edge = 0; Edge < G.numSchedEdges(); ++Edge) {
    const SchedEdge &E = G.schedEdges()[Edge];
    RowOrigin O = RowOrigin::depEdge(Edge, E);
    if (ExplainGroups)
      beginGroup(O);
    emitDependence(ABase + E.Src * II, KVars[size_t(E.Src)],
                   ABase + E.Dst * II, KVars[size_t(E.Dst)], E.Latency,
                   E.Distance, O);
    endGroup();
  }
  buildResource();
  buildObjective();
  assert(Origins.size() == S.exportRows().size() - ExportBase &&
         "provenance side table out of sync with emitted rows");

  // Shared mode: the attempt gate must be assumed false for the gated
  // rows to bite.
  if (Session)
    Assumps.assign(1, Session->attemptAssumption());
}

void PbFormulation::noteRows(const RowOrigin &O) {
  Origins.resize(S.exportRows().size() - ExportBase, O);
}

bool PbFormulation::structClause(std::vector<pb::Lit> Lits) {
  return Session ? Session->addClause(std::move(Lits))
                 : S.addClause(std::move(Lits));
}

bool PbFormulation::structAtLeast(std::vector<pb::Lit> Lits, int64_t Degree) {
  return Session ? Session->addAtLeast(std::move(Lits), Degree)
                 : S.addAtLeast(std::move(Lits), Degree);
}

bool PbFormulation::structLinear(std::vector<std::pair<pb::Lit, int64_t>> Terms,
                                 int64_t Degree) {
  return Session ? Session->addLinear(std::move(Terms), Degree)
                 : S.addLinear(std::move(Terms), Degree);
}

void PbFormulation::beginGroup(const RowOrigin &O) {
  GateVar = S.newVar();
  GroupSels.push_back({GateVar, O});
  ExplainAssumps.push_back(pb::negLit(GateVar));
}

std::vector<RowOrigin> PbFormulation::coreOrigins() const {
  std::vector<RowOrigin> Result;
  for (pb::Lit L : S.unsatCore())
    for (const std::pair<pb::Var, RowOrigin> &Sel : GroupSels)
      if (Sel.first == L.var())
        Result.push_back(Sel.second);
  return Result;
}

PbFormulation::IntVar PbFormulation::makeIntVar(int Lo, int Hi) {
  assert(Lo <= Hi && "empty integer domain");
  IntVar V;
  V.Lo = Lo;
  V.Hi = Hi;
  V.BitBase = S.numVars();
  for (int B = 0; B < Hi - Lo; ++B)
    S.newVar();
  // Order encoding: bit s implies bit s-1, so models are exactly the
  // unary encodings of Lo .. Hi.
  for (int B = 1; B < Hi - Lo; ++B)
    structClause(
        {pb::negLit(V.BitBase + B), pb::posLit(V.BitBase + B - 1)});
  return V;
}

int64_t PbFormulation::intValue(const IntVar &V) const {
  int64_t Val = V.Lo;
  for (int B = 0; B < V.numBits(); ++B)
    if (S.modelValue(V.BitBase + B))
      ++Val;
  return Val;
}

void PbFormulation::appendInt(LinExpr &E, const IntVar &V,
                              int64_t Coeff) const {
  if (Coeff == 0)
    return;
  E.Constant += Coeff * V.Lo;
  for (int B = 0; B < V.numBits(); ++B)
    E.Terms.push_back({pb::posLit(V.BitBase + B), Coeff});
}

void PbFormulation::appendRowRange(LinExpr &E, pb::Var RowBase, int Lo, int Hi,
                                   int64_t Coeff) const {
  for (int Row = Lo; Row <= Hi; ++Row)
    E.Terms.push_back({pb::posLit(RowBase + Row), Coeff});
}

void PbFormulation::addGe(LinExpr E, int64_t Rhs) {
  int64_t Degree = Rhs - E.Constant;
  if (GateVar >= 0) {
    // Gate the row behind the active group selector: a true selector
    // contributes enough weight to satisfy the row outright (the same
    // trick pushObjectiveBound uses), so only solves assuming the
    // negated selector enforce it.
    int64_t NegSum = 0;
    for (const std::pair<pb::Lit, int64_t> &T : E.Terms)
      NegSum += std::min<int64_t>(T.second, 0);
    int64_t Weight = std::max<int64_t>(Degree - NegSum, 1);
    E.Terms.push_back({pb::posLit(GateVar), Weight});
  }
  structLinear(std::move(E.Terms), Degree);
}

void PbFormulation::addLe(LinExpr E, int64_t Rhs) {
  for (std::pair<pb::Lit, int64_t> &T : E.Terms)
    T.second = -T.second;
  E.Constant = -E.Constant;
  addGe(std::move(E), -Rhs);
}

void PbFormulation::buildAssignment(pb::Var RowBase) {
  // Eq. (1): exactly one row. At-least-one clause plus an at-most-one
  // cardinality row (sum of negations >= II - 1).
  std::vector<pb::Lit> AtLeast;
  AtLeast.reserve(size_t(II));
  for (int Row = 0; Row < II; ++Row)
    AtLeast.push_back(pb::posLit(RowBase + Row));
  structClause(std::move(AtLeast));
  if (II > 1) {
    std::vector<pb::Lit> AtMost;
    AtMost.reserve(size_t(II));
    for (int Row = 0; Row < II; ++Row)
      AtMost.push_back(pb::negLit(RowBase + Row));
    structAtLeast(std::move(AtMost), II - 1);
  }
}

void PbFormulation::emitDependence(pb::Var SrcRowBase, const IntVar &SrcK,
                                   pb::Var DstRowBase, const IntVar &DstK,
                                   int Latency, int Distance,
                                   const RowOrigin &Origin) {
  if (Opts.DepStyle == DependenceStyle::Traditional) {
    // Ineq. (4): sum_r r*(a_dst - a_src) + (k_dst - k_src)*II
    //            >= latency - distance*II. A general PB row.
    LinExpr E;
    for (int Row = 1; Row < II; ++Row) {
      E.Terms.push_back({pb::posLit(DstRowBase + Row), Row});
      E.Terms.push_back({pb::posLit(SrcRowBase + Row), -Row});
    }
    appendInt(E, DstK, II);
    appendInt(E, SrcK, -II);
    addGe(std::move(E), int64_t(Latency) - int64_t(Distance) * II);
    noteRows(Origin);
    return;
  }

  // Ineq. (19)/(20): one cardinality-like row per MRT row (identical to
  // Formulation::emitDependence; see the comment there).
  bool Tighten = Opts.DepStyle == DependenceStyle::Structured;
  for (int Row = 0; Row < II; ++Row) {
    int F = floorDiv(Row + Latency - 1, II);
    int RowF = modPos(Row + Latency - 1, II);
    LinExpr E;
    if (Tighten)
      appendRowRange(E, SrcRowBase, Row, II - 1, 1);
    else
      E.Terms.push_back({pb::posLit(SrcRowBase + Row), 1});
    appendRowRange(E, DstRowBase, 0, RowF, 1);
    appendInt(E, SrcK, 1);
    appendInt(E, DstK, -1);
    addLe(std::move(E), int64_t(Distance) - F + 1);
  }
  noteRows(Origin);
}

void PbFormulation::buildResource() {
  // Ineq. (5). Resources whose total usage cannot exceed their
  // multiplicity in any row are not modeled (paper convention).
  std::vector<int> TotalUses(size_t(M.numResources()), 0);
  for (const Operation &Op : G.operations())
    for (const ResourceUsage &U : M.opClass(Op.OpClass).Usages)
      ++TotalUses[size_t(U.Resource)];

  for (int R = 0; R < M.numResources(); ++R) {
    if (TotalUses[size_t(R)] <= M.resource(R).Count)
      continue;
    if (ExplainGroups)
      beginGroup(RowOrigin::resource(R, -1));
    for (int Row = 0; Row < II; ++Row) {
      LinExpr E;
      for (int Op = 0; Op < G.numOperations(); ++Op) {
        const OpClass &Class = M.opClass(G.operation(Op).OpClass);
        for (const ResourceUsage &U : Class.Usages) {
          if (U.Resource != R)
            continue;
          int SrcRow = modPos(Row - U.Cycle, II);
          E.Terms.push_back({aLit(SrcRow, Op), 1});
        }
      }
      // Duplicate literals (usage cycles congruent mod II) merge into
      // coefficient-2 terms during normalization, exactly like lp::Model.
      addLe(std::move(E), M.resource(R).Count);
      noteRows(RowOrigin::resource(R, Row));
    }
    endGroup();
  }
}

void PbFormulation::appendLiveCount(LinExpr &E, int Reg, int Row) const {
  const VirtualRegister &R = G.registers()[size_t(Reg)];
  appendInt(E, KillStage[size_t(Reg)], 1);
  appendInt(E, KVars[size_t(R.Def)], -1);
  appendRowRange(E, KillRowBase[size_t(Reg)], Row, II - 1, 1);
  if (Row + 1 <= II - 1)
    appendRowRange(E, ABase + R.Def * II, Row + 1, II - 1, -1);
}

int PbFormulation::minLifetimeBound(int Reg) const {
  const VirtualRegister &R = G.registers()[size_t(Reg)];
  int Bound = 1; // Live at least in the definition cycle.
  for (const RegisterUse &U : R.Uses) {
    for (const SchedEdge &E : G.schedEdges())
      if (E.Src == R.Def && E.Dst == U.Consumer && E.Distance == U.Distance)
        Bound = std::max(Bound, E.Latency + 1);
  }
  return Bound;
}

void PbFormulation::buildKillOps() {
  if (!KillRowBase.empty())
    return; // Already built.
  int NumRegs = G.numRegisters();
  KillRowBase.assign(size_t(NumRegs), -1);
  KillStage.resize(size_t(NumRegs));
  for (int Reg = 0; Reg < NumRegs; ++Reg) {
    const VirtualRegister &R = G.registers()[size_t(Reg)];
    KillRowBase[size_t(Reg)] = S.numVars();
    for (int Row = 0; Row < II; ++Row)
      S.newVar();
    // Stage bounds: identical to Formulation::buildKillOps.
    int KMin = 0, KMax = StageCount - 1;
    if (Opts.TightenStageBounds) {
      KMin = Asap[size_t(R.Def)] / II;
      KMax = Alap[size_t(R.Def)] / II;
      for (const RegisterUse &U : R.Uses)
        KMax = std::max(KMax, Alap[size_t(U.Consumer)] / II + U.Distance);
    } else {
      for (const RegisterUse &U : R.Uses)
        KMax = std::max(KMax, StageCount - 1 + U.Distance);
    }
    KillStage[size_t(Reg)] = makeIntVar(KMin, KMax);

    buildAssignment(KillRowBase[size_t(Reg)]);
    noteRows(RowOrigin::objectiveLink(Reg));

    // The kill follows the definition and every use (latency 0,
    // distance -w for a use at distance w).
    emitDependence(ABase + R.Def * II, KVars[size_t(R.Def)],
                   KillRowBase[size_t(Reg)], KillStage[size_t(Reg)],
                   /*Latency=*/0, /*Distance=*/0,
                   RowOrigin::objectiveLink(Reg));
    for (const RegisterUse &U : R.Uses)
      emitDependence(ABase + U.Consumer * II, KVars[size_t(U.Consumer)],
                     KillRowBase[size_t(Reg)], KillStage[size_t(Reg)],
                     /*Latency=*/0, -U.Distance,
                     RowOrigin::objectiveLink(Reg));
  }
}

void PbFormulation::buildObjective() {
  // Appends Coeff * V to the objective (constant + per-bit terms).
  auto AppendObjInt = [this](const IntVar &V, int64_t Coeff) {
    LinExpr E;
    appendInt(E, V, Coeff);
    ObjConst += E.Constant;
    ObjTerms.insert(ObjTerms.end(), E.Terms.begin(), E.Terms.end());
  };

  // Register-file budget: hard per-row cap on the live count.
  if (Opts.RegisterLimit >= 0 && G.numRegisters() > 0) {
    assert(Opts.Obj != Objective::MinReg &&
           "RegisterLimit with MinReg is redundant; pick one");
    buildKillOps();
    for (int Row = 0; Row < II; ++Row) {
      LinExpr E;
      for (int Reg = 0; Reg < G.numRegisters(); ++Reg)
        appendLiveCount(E, Reg, Row);
      addLe(std::move(E), Opts.RegisterLimit);
    }
    noteRows(RowOrigin::objectiveLink());
  }

  if (Opts.Obj == Objective::None)
    return;
  assert(Opts.Obj != Objective::MinSL && "rejected by supports()");

  if (G.numRegisters() == 0)
    return; // All register objectives are trivially zero.

  int NumRegs = G.numRegisters();
  if (Opts.Obj == Objective::MinReg || Opts.Obj == Objective::MinLife)
    buildKillOps();

  switch (Opts.Obj) {
  case Objective::None:
  case Objective::MinSL:
    break; // Handled above.

  case Objective::MinReg: {
    // MaxLive >= sum of per-register live counts, for every row; the
    // counter is order-encoded between the same bounds the ILP derives
    // (lower: ceil(sum of minimum lifetimes / II); upper: sum of the
    // per-register worst-case stage spans, which no live count exceeds).
    int64_t MinTotalLife = 0;
    for (int Reg = 0; Reg < NumRegs; ++Reg)
      MinTotalLife += minLifetimeBound(Reg);
    int MaxLiveLb = int((MinTotalLife + II - 1) / II);
    int MaxLiveUb = 0;
    for (int Reg = 0; Reg < NumRegs; ++Reg) {
      const VirtualRegister &R = G.registers()[size_t(Reg)];
      MaxLiveUb +=
          KillStage[size_t(Reg)].Hi - KVars[size_t(R.Def)].Lo + 1;
    }
    MaxLiveUb = std::max(MaxLiveUb, MaxLiveLb);
    MaxLiveVar = makeIntVar(MaxLiveLb, MaxLiveUb);
    for (int Row = 0; Row < II; ++Row) {
      LinExpr E;
      for (int Reg = 0; Reg < NumRegs; ++Reg)
        appendLiveCount(E, Reg, Row);
      appendInt(E, MaxLiveVar, -1);
      addLe(std::move(E), 0);
    }
    noteRows(RowOrigin::objectiveLink());
    AppendObjInt(MaxLiveVar, 1);
    break;
  }

  case Objective::MinBuff: {
    // Structured ([15]-style) buffer counting, one +/-1 row per
    // (use, MRT row); the buffer counter's window is the largest stage
    // span any use can force.
    BufferVars.resize(size_t(NumRegs));
    for (int Reg = 0; Reg < NumRegs; ++Reg) {
      const VirtualRegister &R = G.registers()[size_t(Reg)];
      int BufLb = (minLifetimeBound(Reg) + II - 1) / II;
      int BufUb = BufLb;
      for (const RegisterUse &U : R.Uses)
        BufUb = std::max(BufUb, KVars[size_t(U.Consumer)].Hi + U.Distance -
                                    KVars[size_t(R.Def)].Lo + 1);
      BufferVars[size_t(Reg)] = makeIntVar(BufLb, BufUb);
      for (const RegisterUse &U : R.Uses) {
        for (int Row = 0; Row < II; ++Row) {
          LinExpr E;
          appendInt(E, KVars[size_t(U.Consumer)], 1);
          appendInt(E, KVars[size_t(R.Def)], -1);
          appendInt(E, BufferVars[size_t(Reg)], -1);
          appendRowRange(E, ABase + U.Consumer * II, Row, II - 1, 1);
          if (Row + 1 <= II - 1)
            appendRowRange(E, ABase + R.Def * II, Row + 1, II - 1, -1);
          addLe(std::move(E), -int64_t(U.Distance));
        }
      }
      noteRows(RowOrigin::objectiveLink(Reg));
      AppendObjInt(BufferVars[size_t(Reg)], 1);
    }
    break;
  }

  case Objective::MinLife: {
    // Structured: objective-only terms, no auxiliary constraints. Total
    // lifetime of v is II*(killStage - k_def) + sum_z (z+1)*killRow[z]
    // - sum_z z*a[z][def] (see Formulation.h).
    for (int Reg = 0; Reg < NumRegs; ++Reg) {
      const VirtualRegister &R = G.registers()[size_t(Reg)];
      AppendObjInt(KillStage[size_t(Reg)], II);
      AppendObjInt(KVars[size_t(R.Def)], -II);
      for (int Row = 0; Row < II; ++Row) {
        ObjTerms.push_back(
            {pb::posLit(KillRowBase[size_t(Reg)] + Row), Row + 1});
        if (Row > 0)
          ObjTerms.push_back({aLit(Row, R.Def), -Row});
      }
    }
    break;
  }
  }
}

int64_t PbFormulation::evalObjective() const {
  int64_t Val = ObjConst;
  for (const std::pair<pb::Lit, int64_t> &T : ObjTerms)
    if (S.modelValue(T.first.var()) != T.first.negated())
      Val += T.second;
  return Val;
}

bool PbFormulation::pushObjectiveBound(int64_t Bound) {
  // objective <= Bound, i.e. sum(-c_i * l_i) >= ObjConst - Bound, gated
  // by a fresh selector: a true selector contributes enough weight to
  // satisfy the row outright, so only solves assuming ~selector enforce
  // the bound — and learned clauses survive every tightening.
  pb::Var Sel = S.newVar();
  std::vector<std::pair<pb::Lit, int64_t>> Terms;
  Terms.reserve(ObjTerms.size() + 1);
  int64_t PosSum = 0;
  for (const std::pair<pb::Lit, int64_t> &T : ObjTerms) {
    Terms.push_back({T.first, -T.second});
    PosSum += std::max<int64_t>(T.second, 0);
  }
  int64_t Degree = ObjConst - Bound;
  int64_t Weight = std::max<int64_t>(Degree + PosSum, 1);
  Terms.push_back({pb::posLit(Sel), Weight});
  // Shared mode adds the attempt gate on top of the selector, so the
  // row dies with the attempt AND deactivates when the descent moves on.
  bool RowOk = structLinear(std::move(Terms), Degree);
  noteRows(RowOrigin::objectiveLink());
  if (Session)
    Assumps.assign({Session->attemptAssumption(), pb::negLit(Sel)});
  else
    Assumps.assign(1, pb::negLit(Sel));
  return RowOk && S.okay();
}

bool PbFormulation::injectObjectiveBound(int64_t Bound) {
  // "objective <= Bound" with no descent selector: the bound came from a
  // verified incumbent elsewhere (the raced ILP engine), so it holds for
  // the remainder of this attempt. Gated by the attempt gate alone in
  // shared mode — active under the in-flight gate assumption, retired
  // with the attempt — and fully ungated in fresh mode. Root level only.
  assert(Valid && "cannot bound an invalid formulation");
  std::vector<std::pair<pb::Lit, int64_t>> Terms;
  Terms.reserve(ObjTerms.size());
  for (const std::pair<pb::Lit, int64_t> &T : ObjTerms)
    Terms.push_back({T.first, -T.second});
  int64_t Degree = ObjConst - Bound;
  bool RowOk = structLinear(std::move(Terms), Degree);
  noteRows(RowOrigin::objectiveLink());
  return RowOk && S.okay();
}

void PbFormulation::seedPhases(const std::vector<int> &Times) {
  if (!Session || !Valid)
    return;
  assert(int(Times.size()) == G.numOperations() &&
         "phase hint is one start time per operation");
  for (int Op = 0; Op < G.numOperations(); ++Op) {
    int Row = modPos(Times[size_t(Op)], II);
    for (int R = 0; R < II; ++R)
      Session->seedPhase(aVar(R, Op), R == Row);
    const IntVar &K = KVars[size_t(Op)];
    int Stage = std::min(std::max(floorDiv(Times[size_t(Op)], II), K.Lo),
                         K.Hi);
    for (int B = 0; B < K.numBits(); ++B)
      Session->seedPhase(K.BitBase + B, B < Stage - K.Lo);
  }
}

ModuloSchedule PbFormulation::decode() const {
  assert(Valid && "cannot decode from an invalid formulation");
  int N = G.numOperations();
  std::vector<int> Times(size_t(N), 0);
  for (int Op = 0; Op < N; ++Op) {
    int Row = -1;
    for (int R = 0; R < II; ++R) {
      if (S.modelValue(aVar(R, Op))) {
        assert(Row < 0 && "operation assigned to two MRT rows");
        Row = R;
      }
    }
    assert(Row >= 0 && "operation not assigned to any MRT row");
    Times[size_t(Op)] = int(intValue(KVars[size_t(Op)])) * II + Row;
  }
  return ModuloSchedule(II, std::move(Times));
}
