//===- ilpsched/AttemptEngine.cpp - ILP and PB attempt engines ------------===//

#include "ilpsched/AttemptEngine.h"

#include "ilpsched/Formulation.h"
#include "ilpsched/PbFormulation.h"
#include "lp/SolveContext.h"
#include "sched/Verifier.h"
#include "support/Telemetry.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace modsched;
using namespace modsched::ilp;

AttemptEngine::~AttemptEngine() = default;

namespace {

telemetry::Counter StatExplainCycle("ilpsched", "explain.cycle_witnesses",
                                    "Infeasible IIs explained by a "
                                    "recurrence cycle");
telemetry::Counter StatExplainResource("ilpsched",
                                       "explain.resource_witnesses",
                                       "Infeasible IIs explained by a "
                                       "saturated resource");
telemetry::Counter StatExplainWindow("ilpsched", "explain.window_witnesses",
                                     "Infeasible IIs explained by an empty "
                                     "schedule window");
telemetry::Counter StatExplainNone("ilpsched", "explain.unexplained",
                                   "Infeasible IIs with no checkable "
                                   "witness");

/// Verifies \p E against the graph/machine arithmetic, bumps the witness
/// counters, and attaches it to \p Attempt. A nullopt (or a witness of
/// kind None) counts as unexplained and attaches nothing.
void attachExplanation(const DependenceGraph &G, const MachineModel &M,
                       int II, int Slack, IiAttempt &Attempt,
                       std::optional<Explanation> E) {
  if (!E || E->Kind == WitnessKind::None) {
    ++StatExplainNone;
    return;
  }
  E->Verified = checkExplanation(G, M, II, Slack, *E);
  switch (E->Kind) {
  case WitnessKind::RecurrenceCycle:
    ++StatExplainCycle;
    break;
  case WitnessKind::ResourceSaturation:
    ++StatExplainResource;
    break;
  case WitnessKind::ScheduleWindow:
    ++StatExplainWindow;
    break;
  case WitnessKind::None:
    break;
  }
  Attempt.Explain = std::move(*E);
}

/// Builds the audit record for a solved (or censored-with-incumbent) ILP
/// attempt from the MIP result's bound evidence.
OptimalityAudit makeIlpAudit(MipResult &R, const char *Proof) {
  OptimalityAudit A;
  A.HasRootBound = R.HasRootBound;
  A.RootBound = R.RootBound;
  A.FinalObjective = R.Objective;
  A.Gap = R.HasRootBound ? R.Objective - R.RootBound : 0.0;
  if (std::abs(A.Gap) < 1e-6)
    A.Gap = 0.0; // Strip LP round-off from a proved-tight bound.
  A.Proof = Proof;
  A.Trajectory = std::move(R.Trajectory);
  return A;
}

/// PB-backend infeasibility forensics: re-encodes the attempt with every
/// dependence edge and modeled resource gated behind a selector (the
/// objective machinery is dropped — it cannot cause primary
/// infeasibility — but a RegisterLimit constraint is kept), solves under
/// the group assumptions, and maps the unsat core's origins to a
/// witness. Falls back to pure graph analysis whenever the re-solve
/// yields no usable core (deadline expiry, empty core, unmappable
/// evidence).
std::optional<Explanation> explainPbUnsat(const DependenceGraph &G,
                                          const MachineModel &M, int II,
                                          const FormulationOptions &FOpts,
                                          lp::SolveContext &C) {
  FormulationOptions ExOpts = FOpts;
  ExOpts.Obj = Objective::None;
  PbFormulation F(G, M, II, ExOpts, /*ExplainGroups=*/true);
  if (F.valid()) {
    pb::Solver &S = F.solver();
    S.DeadlineSeconds = C.DeadlineSeconds;
    S.Cancel = C.Cancel;
    if (S.solve(F.explainAssumptions()) == pb::SolveStatus::Unsat) {
      std::vector<RowOrigin> Core = F.coreOrigins();
      if (!Core.empty())
        if (std::optional<Explanation> E =
                explainFromOrigins(G, M, II, FOpts.ScheduleLengthSlack, Core,
                                   ExplainSource::UnsatCore))
          return E;
    }
  }
  return explainInfeasibleIi(G, M, II, FOpts.ScheduleLengthSlack);
}

} // namespace

//===----------------------------------------------------------------------===//
// IlpEngine
//===----------------------------------------------------------------------===//

bool IlpEngine::supports(const Problem &, int) const {
  return true; // The ILP formulation encodes every option combination.
}

bool IlpEngine::worthRacing(const Problem &P, int II) const {
  // Tiny feasibility instance: the CDCL engine decides these orders of
  // magnitude faster than a B&B warm-up (EXPERIMENTS.md E11), so the
  // ILP sits out of the race and lets PB run inline. 0 disables.
  if (P.options().Obj == Objective::None && Opts.PortfolioIlpMinPbVars > 0 &&
      P.graph().numOperations() * II <= Opts.PortfolioIlpMinPbVars)
    return false;
  return true;
}

std::optional<ModuloSchedule>
IlpEngine::solveAttempt(AttemptContext &C) const {
  assert(supports(C.P, C.II) && "seam dispatched an unsupported attempt");
  const DependenceGraph &G = C.P.graph();
  const MachineModel &M = C.P.machine();
  const FormulationOptions &FOpts = C.P.options();
  const int II = C.II;
  ScheduleResult &Stats = C.Stats;
  IiAttempt &Attempt = C.Attempt;
  PortfolioEngineHooks *Hooks = C.Hooks;

  Formulation F(G, M, II, FOpts);
  Attempt.Variables = F.model().numVariables();
  Attempt.Constraints = F.model().numConstraints();
  const int Slack = FOpts.ScheduleLengthSlack;
  if (!F.valid()) {
    Attempt.WindowInfeasible = true;
    if (Opts.Explain)
      attachExplanation(G, M, II, Slack, Attempt,
                        explainInfeasibleIi(G, M, II, Slack));
    return std::nullopt; // II infeasible within the window budget.
  }

  MipOptions MipOpts;
  MipOpts.TimeLimitSeconds = C.TimeBudget;
  MipOpts.NodeLimit = Opts.NodeLimit - Stats.budgetNodes();
  MipOpts.Branching = Opts.Branching;
  MipOpts.StopAtFirstSolution = FOpts.Obj == Objective::None;
  MipOpts.WarmStart = Opts.WarmStart;
  MipOpts.Lp.Engine = Opts.LpEngine;
  MipOpts.CollectFarkas = Opts.Explain;
  MipOpts.CollectTrajectory = Opts.Explain;
  if (Hooks) {
    // Portfolio wiring: prune against the cross-engine incumbent cell,
    // and publish every verified incumbent the moment it is accepted so
    // the PB worker can tighten its own search mid-race.
    MipOpts.ExternalBound = Hooks->ExternalBound;
    if (Hooks->OnIncumbent)
      MipOpts.Observer = [&](const BbEventInfo &Info) {
        if (Info.Kind != BbEvent::IncumbentFound || !Info.Values)
          return;
        ModuloSchedule Inc = F.decode(*Info.Values);
        if (std::optional<std::string> Err =
                verifySchedule(G, M, Inc, F.maxTime())) {
          std::fprintf(stderr,
                       "fatal: ILP produced an invalid incumbent: %s\n",
                       Err->c_str());
          std::abort();
        }
        Hooks->OnIncumbent(int64_t(std::llround(Info.Incumbent)),
                           std::move(Inc));
      };
  }
  MipSolver Solver(MipOpts);

  // Solve under the caller's context (parallel race slots bring their
  // own, wired to a cancellation source) or a fresh local one — the
  // latter is exactly the historical sequential behavior.
  lp::SolveContext LocalCtx;
  MipResult R = Solver.solve(F.model(), C.Ctx ? *C.Ctx : LocalCtx);
  Stats.Nodes += R.Nodes;
  Stats.SimplexIterations += R.SimplexIterations;
  Stats.WarmLpSolves += R.WarmLpSolves;
  Stats.ColdLpSolves += R.ColdLpSolves;
  Stats.WarmLpIterations += R.WarmLpIterations;
  Stats.LpRefactorizations += R.LpRefactorizations;
  Stats.LpEtaNonzeros += R.LpEtaNonzeros;
  Attempt.Status = R.Status;
  Attempt.Nodes = R.Nodes;
  Attempt.SimplexIterations = R.SimplexIterations;
  if (Hooks && R.UsedExternalBound)
    ++Hooks->BoundExchanges;

  if (R.Status == MipStatus::Cancelled) {
    // The caller's token stopped the search (e.g. a lower-II sibling in
    // a parallel race won). No verdict about this II; in particular no
    // half-decoded schedule ever escapes a cancelled solve.
    Attempt.Cancelled = true;
    return std::nullopt;
  }
  if (R.Status == MipStatus::Limit) {
    // Budget expired. A feasible-but-unproven incumbent is not reported
    // as an optimal schedule; the caller records which budget censored
    // the attempt (both flags can trip in the same pass).
    if (R.HitNodeLimit)
      Stats.NodeLimitHit = true;
    if (R.HitTimeLimit || !R.HitNodeLimit)
      Stats.TimedOut = true;
    if (Opts.Explain && R.HasSolution)
      Attempt.Audit = makeIlpAudit(R, "censored");
    return std::nullopt;
  }
  if (!R.HasSolution) {
    if (Hooks && R.UsedExternalBound) {
      // Pruning against the shared cell means only "no solution strictly
      // better than the other engine's incumbent" was proved, not model
      // infeasibility — the coordinator commits that incumbent as the
      // optimum. No infeasibility witness applies.
      Hooks->RefutedBelowExternal = true;
      return std::nullopt;
    }
    // Proved infeasible at this II. Map the node LPs' Farkas evidence
    // through the formulation's provenance table into a graph witness;
    // fall back to pure graph analysis when the search never ran an LP
    // (root presolve infeasibility) or the support does not localize.
    if (Opts.Explain) {
      std::vector<RowOrigin> Support;
      const std::vector<RowOrigin> &Origins = F.rowOrigins();
      for (int Row : R.FarkasRows)
        if (Row >= 0 && size_t(Row) < Origins.size())
          Support.push_back(Origins[size_t(Row)]);
      std::optional<Explanation> E;
      if (!Support.empty())
        E = explainFromOrigins(G, M, II, Slack, Support,
                               ExplainSource::FarkasRay);
      if (!E)
        E = explainInfeasibleIi(G, M, II, Slack);
      attachExplanation(G, M, II, Slack, Attempt, std::move(E));
    }
    return std::nullopt;
  }
  if (Hooks && Hooks->ExternalBound && R.UsedExternalBound) {
    // The search pruned subtrees against the other engine's incumbent
    // cell, so exhausting the tree proved "nothing strictly better than
    // min(own incumbent, shared cell)" — NOT that this solve's own
    // incumbent is the optimum. When the cell is strictly better, the
    // shared schedule wins: every prune used a cutoff no smaller than
    // the cell's final value (it only tightens), so no pruned subtree
    // can hide anything below it.
    int64_t K = Hooks->ExternalBound->load(std::memory_order_acquire);
    if (K != INT64_MAX && double(K) < R.Objective - 1e-9) {
      Hooks->RefutedBelowExternal = true;
      return std::nullopt;
    }
  }

  Stats.Variables = F.model().numVariables();
  Stats.Constraints = F.model().numConstraints();
  Stats.SecondaryObjective = R.Objective;
  ModuloSchedule S = F.decode(R.Values);
  // Every ILP schedule is independently re-verified; a failure here means
  // a formulation bug and must never be silently reported as a result.
  if (std::optional<std::string> Err = verifySchedule(G, M, S, F.maxTime())) {
    std::fprintf(stderr, "fatal: ILP produced an invalid schedule: %s\n",
                 Err->c_str());
    std::abort();
  }
  Attempt.Scheduled = true;
  if (Opts.Explain)
    Attempt.Audit = makeIlpAudit(
        R, MipOpts.StopAtFirstSolution ? "first_solution" : "optimal");
  return S;
}

//===----------------------------------------------------------------------===//
// PbEngine
//===----------------------------------------------------------------------===//

bool PbEngine::supports(const Problem &P, int) const {
  return PbFormulation::supports(P.options());
}

bool PbEngine::worthRacing(const Problem &P, int II) const {
  // MinLife rows carry objective/lifetime coefficients that scale with
  // II; past the width threshold the CDCL engine's cardinality
  // reasoning degrades into slow generic PB arithmetic and it never
  // wins the race — don't burn a worker on it.
  if (P.options().Obj == Objective::MinLife &&
      II > Opts.PortfolioPbCoeffLimit)
    return false;
  return true;
}

std::optional<ModuloSchedule>
PbEngine::solveAttempt(AttemptContext &C) const {
  assert(supports(C.P, C.II) &&
         "seam dispatched a PB attempt the encoding cannot express");
  const DependenceGraph &G = C.P.graph();
  const MachineModel &M = C.P.machine();
  const FormulationOptions &FOpts = C.P.options();
  const int II = C.II;
  ScheduleResult &Stats = C.Stats;
  IiAttempt &Attempt = C.Attempt;
  PortfolioEngineHooks *Hooks = C.Hooks;

  pb::AttemptSession *Session = Hooks ? Hooks->Session : nullptr;
  PbFormulation F(G, M, II, FOpts, /*ExplainGroups=*/false, Session);
  Attempt.Variables = F.numVariables();
  Attempt.Constraints = F.numConstraints();
  const int Slack = FOpts.ScheduleLengthSlack;
  if (!F.valid()) {
    Attempt.WindowInfeasible = true;
    if (Opts.Explain)
      attachExplanation(G, M, II, Slack, Attempt,
                        explainInfeasibleIi(G, M, II, Slack));
    return std::nullopt; // II infeasible within the window budget.
  }
  if (Hooks && Hooks->PhaseHint)
    F.seedPhases(*Hooks->PhaseHint);

  lp::SolveContext LocalCtx;
  lp::SolveContext &Ctx = C.Ctx ? *C.Ctx : LocalCtx;
  lp::DeadlineScope Deadline(Ctx, C.TimeBudget);

  pb::Solver &S = F.solver();
  S.DeadlineSeconds = Ctx.DeadlineSeconds;
  S.Cancel = Ctx.Cancel;

  // Retire the session attempt (hardening its gate so learned clauses
  // stay sound for the next II) and unhook the restart callback on
  // every exit path — the persistent solver must never carry another
  // attempt's wiring.
  struct RetireOnExit {
    pb::Solver &S;
    pb::AttemptSession *Session;
    ~RetireOnExit() {
      S.OnRestart = nullptr;
      if (Session && Session->attemptOpen())
        Session->endAttempt();
    }
  } Retire{S, Session};

  // PB effort accounting on every exit path, mirroring PublishOnExit:
  // conflicts are the backend's "nodes" and feed the shared budget.
  struct AccountOnExit {
    pb::Solver &S;
    pb::SolverStats Before;
    ScheduleResult &Stats;
    IiAttempt &Attempt;
    ~AccountOnExit() {
      const pb::SolverStats &After = S.stats();
      Attempt.PbConflicts = After.Conflicts - Before.Conflicts;
      Attempt.PbPropagations = After.Propagations - Before.Propagations;
      Stats.PbConflicts += Attempt.PbConflicts;
      Stats.PbPropagations += Attempt.PbPropagations;
      Stats.PbRestarts += After.Restarts - Before.Restarts;
      Stats.PbLearned += After.Learned - Before.Learned;
    }
  } Account{S, S.stats(), Stats, Attempt};

  const bool BoundedNodes = Opts.NodeLimit != INT64_MAX;
  // Conflicts the shared node budget still allows this attempt; the II
  // search guarantees it is positive on entry.
  auto ConflictsLeft = [&]() {
    int64_t Spent = S.stats().Conflicts - Account.Before.Conflicts;
    return Opts.NodeLimit - Stats.budgetNodes() - Spent;
  };

  // Solution-improving descent: each Sat answer becomes the incumbent
  // and tightens the (selector-gated) objective bound; Unsat with an
  // incumbent proves it optimal. Without an objective the first model
  // wins outright (the NoObj scheduler's StopAtFirstSolution).
  bool HaveIncumbent = false;
  int64_t BestObj = 0;
  ModuloSchedule Best;
  // Cross-engine exchange: at every restart (the solver's root level)
  // poll the shared cell and, when the other engine's incumbent beats
  // everything seen here, inject "objective <= k - 1" so the descent
  // skips straight past it. LastInjected tracks the tightest applied
  // cutoff; an Unsat answer with one pending and no better incumbent of
  // our own refutes "below k", not the model.
  int64_t LastInjected = INT64_MAX;
  if (Hooks && Hooks->ExternalBound && F.hasObjective())
    S.OnRestart = [&] {
      int64_t K = Hooks->ExternalBound->load(std::memory_order_acquire);
      if (K >= LastInjected || (HaveIncumbent && K >= BestObj))
        return;
      LastInjected = K;
      ++Hooks->BoundExchanges;
      F.injectObjectiveBound(K - 1);
    };
  for (;;) {
    if (BoundedNodes) {
      int64_t Left = ConflictsLeft();
      if (Left <= 0) {
        Attempt.Status = MipStatus::Limit;
        Stats.NodeLimitHit = true;
        return std::nullopt;
      }
      S.ConflictLimit = Left;
    }
    pb::SolveStatus R = S.solve(F.assumptions());

    if (R == pb::SolveStatus::Sat) {
      ModuloSchedule Sched = F.decode();
      // Every PB schedule is independently re-verified; a failure here
      // means an encoding bug and must never be reported as a result.
      if (std::optional<std::string> Err =
              verifySchedule(G, M, Sched, F.maxTime())) {
        std::fprintf(stderr,
                     "fatal: PB backend produced an invalid schedule: %s\n",
                     Err->c_str());
        std::abort();
      }
      Best = std::move(Sched);
      BestObj = F.evalObjective();
      HaveIncumbent = true;
      if (Hooks && Hooks->OnIncumbent)
        Hooks->OnIncumbent(BestObj, Best);
      if (!F.hasObjective())
        break; // Feasibility answer: done.
      if (!F.pushObjectiveBound(BestObj - 1))
        break; // Bound is root-level unsat: the incumbent is optimal.
      continue;
    }
    if (R == pb::SolveStatus::Unsat) {
      if (HaveIncumbent && LastInjected >= BestObj)
        break; // No better schedule exists: the incumbent is optimal.
      if (LastInjected != INT64_MAX) {
        // An injected cross-engine cutoff tighter than any incumbent of
        // ours is what was refuted: the shared incumbent is the optimum
        // and the coordinator commits it. Not an infeasible II.
        Hooks->RefutedBelowExternal = true;
        Attempt.Status = MipStatus::Infeasible;
        return std::nullopt;
      }
      Attempt.Status = MipStatus::Infeasible;
      if (Opts.Explain)
        attachExplanation(G, M, II, Slack, Attempt,
                          explainPbUnsat(G, M, II, FOpts, Ctx));
      return std::nullopt; // Proved infeasible at this II.
    }
    if (R == pb::SolveStatus::Cancelled) {
      // Mirrors the ILP path: a cancelled solve yields no verdict, and
      // no possibly-unproven incumbent escapes it.
      Attempt.Status = MipStatus::Cancelled;
      Attempt.Cancelled = true;
      return std::nullopt;
    }
    // Limit: deadline or conflict budget, attributed like the ILP's
    // HitTimeLimit / HitNodeLimit pair.
    Attempt.Status = MipStatus::Limit;
    if (BoundedNodes && ConflictsLeft() <= 0)
      Stats.NodeLimitHit = true;
    else
      Stats.TimedOut = true;
    return std::nullopt;
  }

  Attempt.Status = MipStatus::Optimal;
  Stats.Variables = F.numVariables();
  Stats.Constraints = F.numConstraints();
  Stats.SecondaryObjective = double(BestObj);
  Attempt.Scheduled = true;
  if (Opts.Explain) {
    // The PB backend proves optimality by exhausting the bound descent;
    // there is no numeric relaxation bound to audit against.
    OptimalityAudit A;
    A.FinalObjective = double(BestObj);
    A.Proof = F.hasObjective() ? "optimal" : "first_solution";
    Attempt.Audit = std::move(A);
  }
  return Best;
}
