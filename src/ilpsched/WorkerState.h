//===- ilpsched/WorkerState.h - Persistent per-worker state -----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Long-lived engine state for callers that schedule MANY loops on one
/// thread — the service daemon (src/service) above all, where millions
/// of requests land on a fixed worker fleet and rebuilding solver
/// scratch state per request would throw away exactly the reuse the
/// incremental seams were built for:
///
///  * The lp::SolveContext carries the persistent SimplexWorkspace, so
///    warm simplex bases and factorization scratch survive across
///    requests the same way they survive across B&B nodes (PR 2's
///    warm-start path, promoted to request scope).
///  * Under SchedulerBackend::Portfolio, one PortfolioState — and with
///    it the persistent pb::AttemptSession — survives across loops.
///    Every attempt's rows are gated (pb/Incremental.h), so clauses
///    learned while scheduling one loop remain sound when the next
///    loop's attempt opens a fresh gate; only the phase hint (schedule
///    times, meaningless across loops) must be dropped per loop.
///
/// Ownership rules mirror lp::SolveContext: one SchedulerWorkerState
/// per worker thread, used by one request at a time. The caller owns
/// the deadline and cancellation token of the embedded context (the
/// service arms them per request); beginLoop() never touches them.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILPSCHED_WORKERSTATE_H
#define MODSCHED_ILPSCHED_WORKERSTATE_H

#include "ilpsched/PortfolioAttempt.h"
#include "lp/SolveContext.h"

#include <cstdint>
#include <memory>

namespace modsched {

/// Per-worker engine state surviving across scheduling requests. Passed
/// to OptimalModuloScheduler::schedule; null means "transient state per
/// call", which is the historical behavior.
struct SchedulerWorkerState {
  /// Persistent solve environment: the simplex workspace lives here,
  /// so LP warm starts carry across requests. Deadline and cancellation
  /// are owned by the caller (armed per request, reset afterwards).
  lp::SolveContext Ctx;

  /// Persistent portfolio race state (worker pool + gated PB session).
  /// Created lazily on the first portfolio-backend loop; unused (null)
  /// under the single-engine backends.
  std::unique_ptr<PortfolioState> Portfolio;

  /// Loops scheduled through this state (telemetry / recycle pacing).
  int64_t LoopsServed = 0;

  /// Recycle the PB session once its retained learned-clause count
  /// crosses this bound — the gated database only grows, and a worker
  /// serving an unbounded request stream must not grow with it.
  int64_t PbRecycleClauseLimit = 100000;

  /// Per-loop hygiene, called by schedule() before the II ladder:
  /// drops the phase hint (schedule times of a DIFFERENT loop are not
  /// a usable branching hint and may be mis-sized), and recycles an
  /// oversized PB session. Learned clauses within the limit carry over.
  void beginLoop() {
    ++LoopsServed;
    if (!Portfolio)
      return;
    Portfolio->PhaseHint.clear();
    if (Portfolio->Session.stats().ClausesKept > PbRecycleClauseLimit)
      Portfolio = nullptr; // schedule() re-creates it lazily.
  }
};

} // namespace modsched

#endif // MODSCHED_ILPSCHED_WORKERSTATE_H
