//===- ilpsched/OptimalScheduler.h - Min-II ILP search ----------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimal modulo scheduling framework of the paper's Section 3.4:
/// compute MII, build the ILP for the tentative II, solve it (optionally
/// minimizing a secondary objective), and increment II on infeasibility
/// until a schedule is found or the per-loop budget runs out. The four
/// schedulers evaluated in the paper (NoObj, MinReg, MinBuff, MinLife)
/// are this driver instantiated with different FormulationOptions.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILPSCHED_OPTIMALSCHEDULER_H
#define MODSCHED_ILPSCHED_OPTIMALSCHEDULER_H

#include "ilp/BranchAndBound.h"
#include "ilpsched/Formulation.h"
#include "sched/Explain.h"
#include "sched/ModuloSchedule.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace modsched {

namespace lp {
struct SolveContext; // lp/SolveContext.h
} // namespace lp

namespace pb {
class AttemptSession; // pb/Incremental.h
} // namespace pb

struct PortfolioState;        // ilpsched/PortfolioAttempt.h
struct SchedulerWorkerState;  // ilpsched/WorkerState.h
class AttemptEngine;    // ilpsched/AttemptEngine.h
class IlpEngine;        // ilpsched/AttemptEngine.h
class PbEngine;         // ilpsched/AttemptEngine.h
class PortfolioEngine;  // ilpsched/AttemptEngine.h

/// Which exact engine decides each tentative II.
enum class SchedulerBackend {
  /// LP-relaxation branch-and-bound over lp::Model (the paper's CPLEX
  /// stand-in) — the default.
  Ilp,
  /// Conflict-driven pseudo-Boolean search (pb::Solver) over the same
  /// feasible set, encoded by ilpsched/PbFormulation. Falls back to Ilp
  /// (with a one-time warning) for formulations the encoding does not
  /// support; see PbFormulation::supports.
  Pb,
  /// Race both exact engines per II attempt on a two-worker pool: the
  /// first conclusive verdict wins and cancels the loser, incumbent
  /// objective bounds flow between the engines through a shared atomic
  /// cell, and one persistent pb::AttemptSession carries CDCL state
  /// across the loop's II ladder. Verdicts (II and objective) are
  /// bit-exact vs Ilp regardless of race timing; see
  /// ilpsched/PortfolioAttempt.h.
  Portfolio,
};

/// Printable name of \p Backend ("ilp" / "pb" / "portfolio").
const char *toString(SchedulerBackend Backend);

/// Backend selected by the MODSCHED_BACKEND environment variable
/// ("ilp" | "pb" | "portfolio"; unset or unrecognized values keep Ilp,
/// the latter with a one-time warning). Read once and cached, like
/// lp::defaultSimplexEngine.
SchedulerBackend defaultSchedulerBackend();

/// Default for SchedulerOptions::Explain, from the MODSCHED_EXPLAIN
/// environment variable ("1"/"on" enables, "0"/"off" disables, unset
/// disables; unrecognized values warn once to stderr and disable). Read
/// once and cached.
bool defaultExplainEnabled();

/// Default for SchedulerOptions::Cache, from the MODSCHED_CACHE
/// environment variable ("1"/"on" enables, "0"/"off" disables, unset
/// disables; unrecognized values warn once to stderr and disable). Read
/// once and cached.
bool defaultCacheEnabled();

/// How the min-II search walks the tentative IIs (see
/// ilpsched/IiSearch.h for the strategy implementations).
enum class IiSearchKind {
  /// One II at a time, MII upward — the paper's loop, and the default.
  Sequential,
  /// Race a window of consecutive IIs on a thread pool, commit the
  /// lowest feasible one, cancel the rest. Same II and secondary
  /// objective as Sequential (the winner depends only on II, never on
  /// thread timing); wall-clock censoring differs, node censoring is
  /// per-attempt.
  ParallelRace,
};

/// Budgets and knobs for one scheduling run.
struct SchedulerOptions {
  FormulationOptions Formulation;
  /// Exact engine deciding each tentative II. The PB backend shares the
  /// node budget: one CDCL conflict counts as one branch-and-bound node
  /// (both are the unit of censored search effort; see
  /// ScheduleResult::budgetNodes).
  SchedulerBackend Backend = defaultSchedulerBackend();
  /// Per-loop wall-clock budget, shared across all tentative IIs (the
  /// paper used 15 minutes).
  double TimeLimitSeconds = 60.0;
  /// Per-loop branch-and-bound node budget (censoring alternative that
  /// is deterministic across machines). Sequential search spends it
  /// cumulatively across attempts; ParallelRace grants it to each
  /// racing attempt independently (slots cannot see each other's node
  /// spend without races) and re-checks the merged total between waves.
  int64_t NodeLimit = INT64_MAX;
  /// Stop trying IIs after MII + MaxIiIncrease.
  int MaxIiIncrease = 64;
  /// Branch rule forwarded to the MIP solver.
  ilp::BranchRule Branching = ilp::BranchRule::MostFractional;
  /// Warm-start node LPs from the parent basis (forwarded to
  /// ilp::MipOptions::WarmStart; ablation knob for the warm-vs-cold
  /// benchmark A/B, see bench/micro_solver).
  bool WarmStart = true;
  /// LP engine executing every node LP (forwarded to
  /// ilp::MipOptions::Lp.Engine; ablation knob for the sparse-vs-dense
  /// benchmark A/B, see bench/micro_solver and EXPERIMENTS.md E10).
  lp::SimplexEngine LpEngine = lp::defaultSimplexEngine();
  /// II search strategy.
  IiSearchKind Search = IiSearchKind::Sequential;
  /// Worker threads for IiSearchKind::ParallelRace (also the II window
  /// width of one race wave); ignored by Sequential. Clamped to >= 1.
  int SearchJobs = 1;
  /// Solve forensics (docs/OBSERVABILITY.md "Explanations & audit
  /// records"): attach a re-verified graph-level Explanation to every
  /// infeasible II attempt and an OptimalityAudit to every solved one.
  /// Zero-cost when off — no Farkas scans, no trajectory samples, no
  /// explanation re-solves.
  bool Explain = defaultExplainEnabled();
  /// Consult the process-wide content-addressed SolutionCache
  /// (ilpsched/SolutionCache.h) before running the II ladder, and
  /// insert clean solves afterwards. Hits are keyed on the canonical
  /// Problem hash — loops identical up to node renumbering and
  /// resource renaming share entries — and every hit is re-verified
  /// through sched/Verifier before being reported. Off by default so
  /// benchmark effort numbers mean what they say.
  bool Cache = defaultCacheEnabled();

  // --- Portfolio backend knobs (Backend == SchedulerBackend::Portfolio,
  //     ignored otherwise; see ilpsched/PortfolioAttempt.h) ---
  /// Reuse one persistent pb::AttemptSession across the loop's II
  /// attempts (learned clauses / activity / phases carry over). Off =
  /// a fresh PB solver per attempt; A/B knob for EXPERIMENTS.md E12.
  bool PortfolioPersistentPb = true;
  /// PB sits out MinLife attempts whose maximum objective coefficient
  /// (which scales with II) exceeds this width — E11 measured the CDCL
  /// engine losing badly on wide-coefficient MinLife rows. Counted in
  /// portfolio/pb_ineligible.
  int PortfolioPbCoeffLimit = 24;
  /// ILP sits out NoObj attempts whose PB row-assignment encoding has at
  /// most this many variables (ops * II): E11 measured the CDCL engine
  /// deciding tiny feasibility instances 66x faster, so racing the ILP
  /// only burns a worker. 0 disables the heuristic.
  int PortfolioIlpMinPbVars = 64;
};

/// Optimality evidence for one solved II attempt (attached under
/// SchedulerOptions::Explain; see docs/OBSERVABILITY.md).
struct OptimalityAudit {
  /// True when the root LP relaxation bound is available (ILP backend
  /// with a successful root solve; the PB backend proves optimality by
  /// exhaustion and carries no numeric bound).
  bool HasRootBound = false;
  /// Rounded root relaxation bound on the secondary objective.
  double RootBound = 0.0;
  /// Objective value of the reported schedule.
  double FinalObjective = 0.0;
  /// FinalObjective - RootBound when HasRootBound (0 at proved-tight
  /// roots), else 0.
  double Gap = 0.0;
  /// How optimality was established: "optimal" (bound met / search
  /// exhausted), "first_solution" (Objective::None stops at the first
  /// schedule), or "censored" (budget expired with an unproven
  /// incumbent).
  std::string Proof = "optimal";
  /// Incumbent/bound trajectory in time order (ILP backend only).
  std::vector<ilp::BoundSample> Trajectory;
};

/// Telemetry record of one tentative-II solve attempt (see
/// docs/OBSERVABILITY.md). The attempts vector in ScheduleResult tells
/// the full story of a loop's min-II search: which IIs were tried, what
/// each cost, and why the search stopped.
struct IiAttempt {
  /// The tentative initiation interval.
  int II = 0;
  /// Solver outcome at this II. Window-infeasible attempts (the
  /// formulation proved II impossible without a solve) report
  /// MipStatus::Infeasible with zero nodes and WindowInfeasible set.
  ilp::MipStatus Status = ilp::MipStatus::Infeasible;
  /// True when the scheduling window proved II infeasible before any
  /// model was solved.
  bool WindowInfeasible = false;
  /// True when this attempt produced (and verified) a schedule.
  bool Scheduled = false;
  /// True when the attempt's solve was cancelled (a lower-II sibling in
  /// a parallel race won, or the caller's token fired). A cancelled
  /// attempt is not a verdict about its II.
  bool Cancelled = false;
  int64_t Nodes = 0;
  int64_t SimplexIterations = 0;
  /// PB-backend effort at this II (0 under the ILP backend; the PB
  /// analogue of Nodes / SimplexIterations).
  int64_t PbConflicts = 0;
  int64_t PbPropagations = 0;
  int Variables = 0;
  int Constraints = 0;
  /// Wall-clock seconds spent on this attempt (build + solve).
  double Seconds = 0.0;
  /// With SchedulerOptions::Explain, on an infeasible verdict: the
  /// graph-level witness (checkExplanation-verified when
  /// Explain->Verified). Absent when the attempt was not infeasible,
  /// explanations were off, or no checkable witness was found
  /// ("unexplained").
  std::optional<Explanation> Explain;
  /// With SchedulerOptions::Explain, on a scheduled verdict: the
  /// optimality evidence trail.
  std::optional<OptimalityAudit> Audit;
  /// Portfolio backend only: the engine whose verdict was committed for
  /// this II ("ilp" / "pb"; ILP fallbacks report "ilp"). Empty under the
  /// single-engine backends.
  std::string Winner;
  /// Portfolio backend only: cross-engine incumbent bounds actually
  /// applied during this attempt (PB rows injected at restarts + ILP
  /// prunes against the shared cell).
  int64_t BoundExchanges = 0;
};

/// Cross-engine wiring handed to one portfolio worker (see
/// ilpsched/PortfolioAttempt.h for the coordinator that owns it). The
/// single-engine paths pass null and behave exactly as before.
struct PortfolioEngineHooks {
  /// Shared objective-cutoff cell, polled at B&B nodes (ILP) and CDCL
  /// restart boundaries (PB). INT64_MAX = no incumbent yet; the cell
  /// only tightens.
  const std::atomic<int64_t> *ExternalBound = nullptr;
  /// Invoked with every verified incumbent (objective value, schedule)
  /// the worker finds, so the coordinator can publish it to the other
  /// engine. May be called from the worker's thread; must be
  /// thread-safe. Null = no exchange (feasibility races).
  std::function<void(int64_t, const ModuloSchedule &)> OnIncumbent;
  /// PB worker only: persistent per-loop solver session. Null = fresh
  /// solver per attempt (the A/B baseline).
  pb::AttemptSession *Session = nullptr;
  /// PB worker only: schedule times from an earlier attempt used to
  /// seed branching phases (PbFormulation::seedPhases). Null = no hint.
  const std::vector<int> *PhaseHint = nullptr;
  /// Out: the worker only refuted "objective < ExternalBound", not the
  /// model — the true verdict at this II is the shared incumbent, which
  /// the coordinator commits as optimal.
  bool RefutedBelowExternal = false;
  /// Out: cross-engine bounds this worker actually applied (PB rows
  /// injected at restarts; 1 for an ILP solve that pruned against the
  /// cell).
  int64_t BoundExchanges = 0;
};

/// Result of scheduling one loop.
struct ScheduleResult {
  /// True when a schedule was found and (unless the objective is None
  /// with StopAtFirstSolution semantics) proved optimal.
  bool Found = false;
  /// True when the per-loop wall-clock budget expired before a
  /// conclusion.
  bool TimedOut = false;
  /// True when the per-loop node budget was exhausted before a
  /// conclusion. Distinct from TimedOut so deterministic (node) and
  /// machine-dependent (wall clock) censoring are attributed correctly;
  /// both can be set when the two budgets trip together.
  bool NodeLimitHit = false;
  ModuloSchedule Schedule;
  /// The achieved initiation interval (valid when Found).
  int II = 0;
  /// MII lower bound for the loop.
  int Mii = 0;
  /// Optimal secondary objective value at the achieved II (0 for NoObj).
  double SecondaryObjective = 0.0;

  // --- Statistics in the style of the paper's Tables 1 and 2 ---
  /// Branch-and-bound nodes summed over every tentative II attempted.
  int64_t Nodes = 0;
  /// Simplex iterations summed over every tentative II attempted.
  int64_t SimplexIterations = 0;
  /// Variables / constraints of the model at the final (achieved) II,
  /// prior to solver simplifications.
  int Variables = 0;
  int Constraints = 0;
  /// Node LPs warm-started from the parent basis, summed over attempts.
  int64_t WarmLpSolves = 0;
  /// Node LPs solved cold, summed over attempts.
  int64_t ColdLpSolves = 0;
  /// Simplex iterations inside warm-started LPs (subset of
  /// SimplexIterations), summed over attempts.
  int64_t WarmLpIterations = 0;
  /// Basis refactorizations summed over attempts (sparse engine: LU
  /// factorizations; dense: periodic basic-value refreshes).
  int64_t LpRefactorizations = 0;
  /// Product-form eta nonzeros appended, summed over attempts (sparse
  /// engine only; 0 under the dense engine).
  int64_t LpEtaNonzeros = 0;
  /// PB-backend effort summed over attempts (all 0 under the ILP
  /// backend; see docs/OBSERVABILITY.md "pb" counters).
  int64_t PbConflicts = 0;
  int64_t PbPropagations = 0;
  int64_t PbRestarts = 0;
  int64_t PbLearned = 0;
  /// Censored search effort against SchedulerOptions::NodeLimit: B&B
  /// nodes plus CDCL conflicts, so the deterministic budget means the
  /// same thing whichever backend (or mix, after a fallback) ran.
  int64_t budgetNodes() const { return Nodes + PbConflicts; }
  /// Total wall-clock time.
  double Seconds = 0.0;
  /// True when this result was served from the SolutionCache instead of
  /// a fresh solve: the II and SecondaryObjective are those of the
  /// cached (verifier-re-checked) solve, and every solver-effort field
  /// above is 0 with Attempts empty — cache hits never masquerade as
  /// solver work.
  bool CacheHit = false;
  /// Cache provenance (SchedulerOptions::Cache on, and the Problem's
  /// canonical labeling completed — Problem::hashExact): the content
  /// address this result was looked up / inserted under. 0 when the
  /// cache was off or the hash is inexact. Lets clients and forensics
  /// (`msched --explain`, the service protocol) tie a served-from-cache
  /// reply back to the canonical solve that produced it.
  uint64_t CacheCanonicalHash = 0;
  /// Request-option digest paired with CacheCanonicalHash (budgets and
  /// knobs that change what a "matching" cached solve means).
  uint64_t CacheRequestKey = 0;
  /// One record per tentative II tried, in search order (telemetry; see
  /// docs/OBSERVABILITY.md).
  std::vector<IiAttempt> Attempts;
};

/// The optimal scheduler driver. Owns one instance of each registered
/// AttemptEngine (ilpsched/AttemptEngine.h); scheduleAtIi is pure
/// strategy selection — pick the engine the configured backend names,
/// let supports() veto it, run the attempt, and re-verify the result
/// through sched/Verifier as the uniform gate.
class OptimalModuloScheduler {
public:
  OptimalModuloScheduler(const MachineModel &M, SchedulerOptions Options);
  ~OptimalModuloScheduler();
  OptimalModuloScheduler(const OptimalModuloScheduler &) = delete;
  OptimalModuloScheduler &operator=(const OptimalModuloScheduler &) = delete;

  /// Schedules \p G for minimum II (and minimum secondary objective among
  /// all min-II schedules) using the configured IiSearchKind. With
  /// SchedulerOptions::Cache, consults the SolutionCache first and
  /// inserts clean solves afterwards.
  ///
  /// \p Worker, when non-null, supplies persistent per-worker engine
  /// state (ilpsched/WorkerState.h): the embedded SolveContext's
  /// workspace (warm simplex bases) and, under the portfolio backend,
  /// the gated PB session survive across calls. The caller owns the
  /// context's deadline / cancellation (arm before, reset after); the
  /// sequential II search threads the state through every attempt.
  /// ParallelRaceIiSearch ignores it — racing slots need private
  /// contexts, so cross-request reuse only applies to Sequential.
  ScheduleResult schedule(const DependenceGraph &G,
                          SchedulerWorkerState *Worker = nullptr) const;

  /// Solves a single tentative \p II of \p P. Returns nullopt when the
  /// problem is infeasible at this II (or the attempt was censored /
  /// cancelled); fills \p Stats regardless. \p Ctx, when non-null,
  /// supplies the solve environment — workspace, deadline, cancellation
  /// token — for this attempt (lp/SolveContext.h); a fresh local
  /// context is used otherwise. Reentrant: concurrent calls on one
  /// scheduler are safe as long as each uses its own \p Stats and
  /// \p Ctx. Under SchedulerBackend::Portfolio, \p Portfolio carries
  /// the loop-level race state (persistent PB session, worker pool,
  /// phase hints); a transient state is created when null, sacrificing
  /// only cross-II reuse.
  std::optional<ModuloSchedule> scheduleAtIi(const Problem &P, int II,
                                             ScheduleResult &Stats,
                                             double TimeBudget,
                                             lp::SolveContext *Ctx = nullptr,
                                             PortfolioState *Portfolio =
                                                 nullptr) const;

  /// Convenience overload wrapping \p G (with this scheduler's machine
  /// and formulation options) in a transient Problem. Prefer the
  /// Problem overload when attempting several IIs of one loop — it
  /// shares the canonicalization and the once-per-Problem diagnostics.
  std::optional<ModuloSchedule> scheduleAtIi(const DependenceGraph &G,
                                             int II, ScheduleResult &Stats,
                                             double TimeBudget,
                                             lp::SolveContext *Ctx = nullptr,
                                             PortfolioState *Portfolio =
                                                 nullptr) const;

  const SchedulerOptions &options() const { return Opts; }

private:
  /// Backend dispatch: the engine that must decide (\p P, \p II) under
  /// the configured SchedulerBackend, after supports() vetoes (the PB
  /// backend falls back to the ILP engine, warning once per Problem).
  const AttemptEngine *selectEngine(const Problem &P, int II) const;

  const MachineModel &M;
  SchedulerOptions Opts;
  std::unique_ptr<IlpEngine> IlpE;
  std::unique_ptr<PbEngine> PbE;
  std::unique_ptr<PortfolioEngine> PortfolioE;
};

} // namespace modsched

#endif // MODSCHED_ILPSCHED_OPTIMALSCHEDULER_H
