//===- ilpsched/OptimalScheduler.h - Min-II ILP search ----------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimal modulo scheduling framework of the paper's Section 3.4:
/// compute MII, build the ILP for the tentative II, solve it (optionally
/// minimizing a secondary objective), and increment II on infeasibility
/// until a schedule is found or the per-loop budget runs out. The four
/// schedulers evaluated in the paper (NoObj, MinReg, MinBuff, MinLife)
/// are this driver instantiated with different FormulationOptions.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILPSCHED_OPTIMALSCHEDULER_H
#define MODSCHED_ILPSCHED_OPTIMALSCHEDULER_H

#include "ilp/BranchAndBound.h"
#include "ilpsched/Formulation.h"
#include "sched/ModuloSchedule.h"

#include <optional>
#include <vector>

namespace modsched {

/// Budgets and knobs for one scheduling run.
struct SchedulerOptions {
  FormulationOptions Formulation;
  /// Per-loop wall-clock budget, shared across all tentative IIs (the
  /// paper used 15 minutes).
  double TimeLimitSeconds = 60.0;
  /// Per-loop branch-and-bound node budget (censoring alternative that
  /// is deterministic across machines).
  int64_t NodeLimit = INT64_MAX;
  /// Stop trying IIs after MII + MaxIiIncrease.
  int MaxIiIncrease = 64;
  /// Branch rule forwarded to the MIP solver.
  ilp::BranchRule Branching = ilp::BranchRule::MostFractional;
  /// Warm-start node LPs from the parent basis (forwarded to
  /// ilp::MipOptions::WarmStart; ablation knob for the warm-vs-cold
  /// benchmark A/B, see bench/micro_solver).
  bool WarmStart = true;
};

/// Telemetry record of one tentative-II solve attempt (see
/// docs/OBSERVABILITY.md). The attempts vector in ScheduleResult tells
/// the full story of a loop's min-II search: which IIs were tried, what
/// each cost, and why the search stopped.
struct IiAttempt {
  /// The tentative initiation interval.
  int II = 0;
  /// Solver outcome at this II. Window-infeasible attempts (the
  /// formulation proved II impossible without a solve) report
  /// MipStatus::Infeasible with zero nodes and WindowInfeasible set.
  ilp::MipStatus Status = ilp::MipStatus::Infeasible;
  /// True when the scheduling window proved II infeasible before any
  /// model was solved.
  bool WindowInfeasible = false;
  /// True when this attempt produced (and verified) a schedule.
  bool Scheduled = false;
  int64_t Nodes = 0;
  int64_t SimplexIterations = 0;
  int Variables = 0;
  int Constraints = 0;
  /// Wall-clock seconds spent on this attempt (build + solve).
  double Seconds = 0.0;
};

/// Result of scheduling one loop.
struct ScheduleResult {
  /// True when a schedule was found and (unless the objective is None
  /// with StopAtFirstSolution semantics) proved optimal.
  bool Found = false;
  /// True when the per-loop budget expired before a conclusion.
  bool TimedOut = false;
  ModuloSchedule Schedule;
  /// The achieved initiation interval (valid when Found).
  int II = 0;
  /// MII lower bound for the loop.
  int Mii = 0;
  /// Optimal secondary objective value at the achieved II (0 for NoObj).
  double SecondaryObjective = 0.0;

  // --- Statistics in the style of the paper's Tables 1 and 2 ---
  /// Branch-and-bound nodes summed over every tentative II attempted.
  int64_t Nodes = 0;
  /// Simplex iterations summed over every tentative II attempted.
  int64_t SimplexIterations = 0;
  /// Variables / constraints of the model at the final (achieved) II,
  /// prior to solver simplifications.
  int Variables = 0;
  int Constraints = 0;
  /// Node LPs warm-started from the parent basis, summed over attempts.
  int64_t WarmLpSolves = 0;
  /// Node LPs solved cold, summed over attempts.
  int64_t ColdLpSolves = 0;
  /// Simplex iterations inside warm-started LPs (subset of
  /// SimplexIterations), summed over attempts.
  int64_t WarmLpIterations = 0;
  /// Total wall-clock time.
  double Seconds = 0.0;
  /// One record per tentative II tried, in search order (telemetry; see
  /// docs/OBSERVABILITY.md).
  std::vector<IiAttempt> Attempts;
};

/// The optimal scheduler driver.
class OptimalModuloScheduler {
public:
  OptimalModuloScheduler(const MachineModel &M, SchedulerOptions Options)
      : M(M), Opts(Options) {}

  /// Schedules \p G for minimum II (and minimum secondary objective among
  /// all min-II schedules).
  ScheduleResult schedule(const DependenceGraph &G) const;

  /// Solves a single tentative \p II. Returns nullopt when the ILP is
  /// infeasible at this II; fills \p Stats regardless.
  std::optional<ModuloSchedule> scheduleAtIi(const DependenceGraph &G,
                                             int II, ScheduleResult &Stats,
                                             double TimeBudget) const;

  const SchedulerOptions &options() const { return Opts; }

private:
  const MachineModel &M;
  SchedulerOptions Opts;
};

} // namespace modsched

#endif // MODSCHED_ILPSCHED_OPTIMALSCHEDULER_H
