//===- ilpsched/IiSearch.h - Min-II search strategies -----------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strategies for walking the tentative IIs of the paper's min-II search
/// loop. The classic driver (Section 3.4) tries II = MII, MII+1, ... one
/// at a time; SequentialIiSearch reproduces it bit-exactly (same node
/// counts, same simplex iterations, same schedules as the historical
/// inline loop). ParallelRaceIiSearch exploits that consecutive-II
/// attempts are independent MIPs: it races a window of IIs on a thread
/// pool, commits the lowest feasible one, and cancels the now-irrelevant
/// higher-II solves through their SolveContext tokens. The winner is
/// chosen by a deterministic post-wave scan in II order, never by thread
/// arrival order, so the committed II and secondary objective match
/// Sequential exactly; only wall-clock censoring (inherently machine-
/// dependent) and the per-attempt node budget differ (see
/// SchedulerOptions::NodeLimit).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILPSCHED_IISEARCH_H
#define MODSCHED_ILPSCHED_IISEARCH_H

#include "ilpsched/OptimalScheduler.h"

#include <memory>

namespace modsched {

/// Abstract min-II search: tries tentative IIs from Result.Mii upward
/// (set by the caller) under the scheduler's budgets and fills in the
/// rest of \p Result — verdict flags, schedule, per-attempt telemetry.
class IiSearchStrategy {
public:
  virtual ~IiSearchStrategy();

  /// Printable strategy name ("sequential" / "parallel-race").
  virtual const char *name() const = 0;

  /// Runs the search over Problem \p P. \p Result.Mii must already
  /// hold the MII lower bound; everything else starts
  /// default-initialized. \p Worker, when non-null, supplies persistent
  /// per-worker engine state (ilpsched/WorkerState.h) to thread through
  /// the attempts; strategies that cannot use it safely ignore it.
  virtual void search(const OptimalModuloScheduler &Sched, const Problem &P,
                      ScheduleResult &Result,
                      SchedulerWorkerState *Worker = nullptr) const = 0;
};

/// The paper's loop: one II at a time, stop at the first feasible one.
class SequentialIiSearch : public IiSearchStrategy {
public:
  const char *name() const override { return "sequential"; }
  void search(const OptimalModuloScheduler &Sched, const Problem &P,
              ScheduleResult &Result,
              SchedulerWorkerState *Worker = nullptr) const override;
};

/// Speculative race over a window of consecutive IIs (window width ==
/// worker count). Deterministic by construction: the commit scan walks
/// slots in II order after the wave drains, so the outcome depends only
/// on each II's solve verdict, not on which thread finished first.
class ParallelRaceIiSearch : public IiSearchStrategy {
public:
  /// \p Jobs worker threads / IIs per wave (clamped to >= 1).
  explicit ParallelRaceIiSearch(int Jobs);

  const char *name() const override { return "parallel-race"; }
  /// \p Worker is ignored: each racing slot needs a private
  /// SolveContext (contexts are single-thread state), so persistent
  /// per-worker reuse is a Sequential-only optimization.
  void search(const OptimalModuloScheduler &Sched, const Problem &P,
              ScheduleResult &Result,
              SchedulerWorkerState *Worker = nullptr) const override;

private:
  int Jobs;
};

/// Strategy factory for SchedulerOptions::Search. A ParallelRace with
/// Jobs <= 1 degenerates to Sequential (no pool, no cancellation).
std::unique_ptr<IiSearchStrategy> makeIiSearchStrategy(IiSearchKind Kind,
                                                       int Jobs);

} // namespace modsched

#endif // MODSCHED_ILPSCHED_IISEARCH_H
