//===- ilpsched/AttemptEngine.h - Uniform solve-attempt seam ----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine seam: every exact backend that can decide one tentative II
/// of a Problem implements AttemptEngine, and everything an attempt
/// needs — the problem, the deterministic budget ledger, the deadline /
/// cancellation context, the telemetry scope, and the portfolio wiring
/// (shared-incumbent cell, persistent PB session, phase hints) — rides
/// in one AttemptContext instead of being threaded ad hoc.
///
///   IlpEngine        LP-relaxation branch-and-bound (the default).
///   PbEngine         conflict-driven pseudo-Boolean search.
///   PortfolioEngine  a composition of REGISTERED engines (not a
///                    hard-coded pair): it consults supports() /
///                    worthRacing() per child, runs a lone contestant
///                    inline, and races the rest with cross-engine
///                    incumbent exchange (ilpsched/PortfolioAttempt.h).
///
/// Contract: a conclusive solveAttempt() yields the true optimum (or
/// true infeasibility) at its II — engine choice never changes a
/// verdict, only the effort spent reaching it. Every schedule an engine
/// returns has already passed sched/Verifier (engines abort on a
/// self-check failure); OptimalModuloScheduler::scheduleAtIi re-verifies
/// once more as the uniform gate.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILPSCHED_ATTEMPTENGINE_H
#define MODSCHED_ILPSCHED_ATTEMPTENGINE_H

#include "ilpsched/OptimalScheduler.h"
#include "sched/Problem.h"

#include <optional>
#include <vector>

namespace modsched {

struct PortfolioState; // ilpsched/PortfolioAttempt.h

/// Everything one solve attempt carries through the seam.
struct AttemptContext {
  /// The problem (graph + machine + formulation options).
  const Problem &P;
  /// The tentative initiation interval under trial.
  int II;
  /// Loop-level ledger: deterministic budget spend (budgetNodes()),
  /// work counters, and verdict flags accumulate here.
  ScheduleResult &Stats;
  /// Wall-clock seconds this attempt may spend.
  double TimeBudget;
  /// Deadline / cancellation environment; null = a fresh local context
  /// (the historical sequential behavior).
  lp::SolveContext *Ctx = nullptr;
  /// Telemetry scope: the attempt record this solve must fill
  /// truthfully on every exit path.
  IiAttempt &Attempt;
  /// Portfolio wiring (shared-incumbent cell, incumbent publication,
  /// persistent PB session, phase hints, refutation flags); null
  /// outside a race. Engines ignore the fields they have no use for.
  PortfolioEngineHooks *Hooks = nullptr;
  /// Loop-level portfolio race state; non-null iff the PortfolioEngine
  /// is (transitively) running this attempt.
  PortfolioState *State = nullptr;
};

/// One exact engine capable of deciding "is there a schedule at this II,
/// and what is the optimal secondary objective?".
class AttemptEngine {
public:
  virtual ~AttemptEngine();

  /// Stable printable name ("ilp", "pb", "portfolio"); used for
  /// IiAttempt::Winner, counters, and bench records.
  virtual const char *name() const = 0;

  /// Hard capability: can this engine decide (\p P, \p II) at all?
  /// solveAttempt must never be invoked when this is false — the seam
  /// filters first, and engines assert it.
  virtual bool supports(const Problem &P, int II) const = 0;

  /// Soft preference, consulted ONLY by the PortfolioEngine when
  /// several supporting engines could contest an attempt: false means
  /// "racing me here burns a worker" (e.g. PB on wide-coefficient
  /// MinLife rows, ILP on tiny NoObj instances). Never affects the
  /// single-engine backends — a capability this engine lacks belongs in
  /// supports() instead.
  virtual bool worthRacing(const Problem &P, int II) const { return true; }

  /// Decides one tentative II. Returns the verified optimal schedule,
  /// or nullopt on infeasibility / censoring / cancellation, with
  /// C.Attempt and C.Stats telling the truthful story either way.
  virtual std::optional<ModuloSchedule>
  solveAttempt(AttemptContext &C) const = 0;
};

/// LP-relaxation branch-and-bound over ilpsched/Formulation.
class IlpEngine : public AttemptEngine {
public:
  explicit IlpEngine(const SchedulerOptions &Opts) : Opts(Opts) {}

  const char *name() const override { return "ilp"; }
  bool supports(const Problem &P, int II) const override;
  bool worthRacing(const Problem &P, int II) const override;
  std::optional<ModuloSchedule>
  solveAttempt(AttemptContext &C) const override;

private:
  const SchedulerOptions &Opts;
};

/// Conflict-driven pseudo-Boolean search over ilpsched/PbFormulation.
class PbEngine : public AttemptEngine {
public:
  explicit PbEngine(const SchedulerOptions &Opts) : Opts(Opts) {}

  const char *name() const override { return "pb"; }
  bool supports(const Problem &P, int II) const override;
  bool worthRacing(const Problem &P, int II) const override;
  std::optional<ModuloSchedule>
  solveAttempt(AttemptContext &C) const override;

private:
  const SchedulerOptions &Opts;
};

/// Races the registered child engines per II attempt (see
/// ilpsched/PortfolioAttempt.h for the coordination machinery). Child
/// order is the commit preference: when several verdicts are
/// conclusive, the earliest registered child's is committed, keeping
/// race outcomes deterministic.
class PortfolioEngine : public AttemptEngine {
public:
  PortfolioEngine(const SchedulerOptions &Opts,
                  std::vector<const AttemptEngine *> Children)
      : Opts(Opts), Children(std::move(Children)) {}

  const char *name() const override { return "portfolio"; }
  bool supports(const Problem &P, int II) const override;
  std::optional<ModuloSchedule>
  solveAttempt(AttemptContext &C) const override;

  const std::vector<const AttemptEngine *> &children() const {
    return Children;
  }

private:
  const SchedulerOptions &Opts;
  std::vector<const AttemptEngine *> Children;
};

} // namespace modsched

#endif // MODSCHED_ILPSCHED_ATTEMPTENGINE_H
