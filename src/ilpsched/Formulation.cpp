//===- ilpsched/Formulation.cpp - ILP modulo scheduling models ------------===//

#include "ilpsched/Formulation.h"

#include "graph/GraphAlgorithms.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string_view>

using namespace modsched;
using namespace modsched::lp;

namespace {

/// Floored integer division (C++ '/' truncates toward zero).
int floorDiv(int A, int B) {
  assert(B > 0 && "divisor must be positive");
  int Q = A / B;
  if (A % B != 0 && (A < 0))
    --Q;
  return Q;
}

/// Non-negative remainder.
int modPos(int A, int B) {
  int R = A % B;
  return R < 0 ? R + B : R;
}

telemetry::Counter StatBuilt("ilpsched", "formulation.built",
                             "ILP formulations constructed");
telemetry::Counter StatRows("ilpsched", "formulation.rows",
                            "constraint rows emitted");
telemetry::Counter StatCols("ilpsched", "formulation.cols",
                            "variables emitted");
telemetry::Counter StatNonzeros("ilpsched", "formulation.nonzeros",
                                "constraint-matrix nonzeros emitted");
telemetry::PhaseTimer TimeBuild("ilpsched", "formulation.build",
                                "wall time building formulations");

} // namespace

Formulation::Formulation(const DependenceGraph &DG, const MachineModel &MM,
                         int TheII, const FormulationOptions &Options)
    : G(DG), M(MM), II(TheII), Opts(Options) {
  assert(II >= 1 && "initiation interval must be positive");

  // Build telemetry runs on every exit path, including the early
  // infeasible-window returns.
  struct StatsOnExit {
    Formulation &F;
    Stopwatch Watch;
    ~StatsOnExit() { F.finalizeBuildStats(Watch.seconds()); }
  } FinalizeStats{*this, {}};

  // Schedule-length budget: the paper limits start times to 20 cycles
  // beyond the minimum schedule length. The budget is rounded up to stage
  // granularity so that stage bounds express it exactly.
  std::optional<int> MinLen = minScheduleLength(G, II);
  if (!MinLen)
    return; // II below the recurrence bound: infeasible.
  int Budget = *MinLen - 1 + Opts.ScheduleLengthSlack;
  int StageCount = Budget / II + 1;
  MaxTime = StageCount * II - 1;

  std::optional<std::vector<int>> AsapOpt = asapTimes(G, II);
  std::optional<std::vector<int>> AlapOpt = alapTimes(G, II, MaxTime);
  if (!AsapOpt || !AlapOpt)
    return;
  Asap = std::move(*AsapOpt);
  Alap = std::move(*AlapOpt);
  for (int Op = 0; Op < G.numOperations(); ++Op)
    if (Asap[Op] > Alap[Op])
      return; // Window empty: II infeasible within the budget.
  Valid = true;

  int N = G.numOperations();

  // A matrix: a[r][i] binary, laid out op-major. Branching priority is
  // highest: fixing MRT rows decides the resource packing, after which
  // the rest of the model is usually integral.
  ABase = 0;
  for (int Op = 0; Op < N; ++Op)
    for (int Row = 0; Row < II; ++Row) {
      int Var = Ilp.addBinaryVariable("a_r" + std::to_string(Row) + "_" +
                                      G.operation(Op).Name);
      Ilp.setBranchPriority(Var, 2);
    }

  // k vector: integer stages with window-derived bounds.
  KBase = Ilp.numVariables();
  for (int Op = 0; Op < N; ++Op) {
    int KMin = 0, KMax = StageCount - 1;
    if (Opts.TightenStageBounds) {
      KMin = Asap[Op] / II;
      KMax = Alap[Op] / II;
    }
    int Var = Ilp.addVariable("k_" + G.operation(Op).Name, KMin, KMax, 0.0,
                              VarKind::Integer);
    Ilp.setBranchPriority(Var, 1);
  }

  buildAssignment();
  for (int Edge = 0; Edge < G.numSchedEdges(); ++Edge)
    buildDependence(Edge, G.schedEdges()[Edge]);
  buildResource();
  buildObjective();
  assert(Origins.size() == size_t(Ilp.numConstraints()) &&
         "provenance side table out of sync with emitted rows");
}

void Formulation::noteRows(const RowOrigin &O) {
  Origins.resize(size_t(Ilp.numConstraints()), O);
}

void Formulation::finalizeBuildStats(double BuildSeconds) {
  BuildStats.BuildSeconds = BuildSeconds;
  BuildStats.Columns = Ilp.numVariables();
  BuildStats.IntegerColumns = Ilp.numIntegerVariables();
  BuildStats.Rows = Ilp.numConstraints();
  BuildStats.Nonzeros = 0;
  BuildStats.Families.clear();

  // Classify rows by name prefix up to the first '_'.
  auto FamilyOf = [this](std::string_view Name) -> FormulationStats::Family & {
    std::string_view Prefix = Name.substr(0, Name.find('_'));
    for (FormulationStats::Family &F : BuildStats.Families)
      if (F.Name == Prefix)
        return F;
    BuildStats.Families.push_back({std::string(Prefix), 0, 0});
    return BuildStats.Families.back();
  };
  for (const Constraint &C : Ilp.constraints()) {
    FormulationStats::Family &F = FamilyOf(C.Name);
    ++F.Rows;
    F.Nonzeros += static_cast<int64_t>(C.Terms.size());
    BuildStats.Nonzeros += static_cast<int64_t>(C.Terms.size());
  }
  std::sort(BuildStats.Families.begin(), BuildStats.Families.end(),
            [](const FormulationStats::Family &A,
               const FormulationStats::Family &B) { return A.Name < B.Name; });

  ++StatBuilt;
  StatRows += BuildStats.Rows;
  StatCols += BuildStats.Columns;
  StatNonzeros += BuildStats.Nonzeros;
  TimeBuild.addSample(BuildSeconds);
  if (telemetry::tracingEnabled())
    telemetry::instant("ilpsched", "formulation.build",
                       {{"ii", II},
                        {"valid", Valid ? 1 : 0},
                        {"rows", BuildStats.Rows},
                        {"cols", BuildStats.Columns},
                        {"nonzeros", BuildStats.Nonzeros},
                        {"seconds", BuildSeconds}});
}

void Formulation::buildAssignment() {
  for (int Op = 0; Op < G.numOperations(); ++Op) {
    std::vector<Term> Terms;
    appendRowRange(Terms, ABase + Op * II, 0, II - 1, 1.0);
    Ilp.addConstraint(std::move(Terms), ConstraintSense::EQ, 1.0,
                      "assign_" + G.operation(Op).Name);
    noteRows(RowOrigin::assignment(Op));
  }
}

void Formulation::appendRowRange(std::vector<Term> &Terms, int RowBase,
                                 int Lo, int Hi, double Coeff) const {
  for (int Row = Lo; Row <= Hi; ++Row)
    Terms.push_back({RowBase + Row, Coeff});
}

void Formulation::emitDependence(int SrcRowBase, int SrcK, int DstRowBase,
                                 int DstK, int Latency, int Distance,
                                 const std::string &Tag,
                                 const RowOrigin &Origin) {
  if (Opts.DepStyle == DependenceStyle::Traditional) {
    // Ineq. (4): sum_r r*(a_dst - a_src) + (k_dst - k_src)*II
    //            >= latency - distance*II.
    std::vector<Term> Terms;
    for (int Row = 1; Row < II; ++Row) {
      Terms.push_back({DstRowBase + Row, double(Row)});
      Terms.push_back({SrcRowBase + Row, -double(Row)});
    }
    Terms.push_back({DstK, double(II)});
    Terms.push_back({SrcK, -double(II)});
    Ilp.addConstraint(std::move(Terms), ConstraintSense::GE,
                      Latency - double(Distance) * II, Tag);
    noteRows(Origin);
    return;
  }

  // Ineq. (19)/(20): one 0-1-structured constraint per MRT row r.
  // Precedence "use time > last forbidden time" becomes, with
  //   F    = floor((r + latency - 1) / II)
  //   RowF = (r + latency - 1) mod II:
  //   [src in row >= r] + sum_{z=0}^{RowF} a_dst[z] + k_src - k_dst
  //     <= distance - F + 1
  // where [src in row >= r] is a_src[r] alone for the untightened
  // Ineq. (19) and the full suffix sum for Ineq. (20).
  bool Tighten = Opts.DepStyle == DependenceStyle::Structured;
  for (int Row = 0; Row < II; ++Row) {
    int F = floorDiv(Row + Latency - 1, II);
    int RowF = modPos(Row + Latency - 1, II);
    std::vector<Term> Terms;
    if (Tighten)
      appendRowRange(Terms, SrcRowBase, Row, II - 1, 1.0);
    else
      Terms.push_back({SrcRowBase + Row, 1.0});
    appendRowRange(Terms, DstRowBase, 0, RowF, 1.0);
    Terms.push_back({SrcK, 1.0});
    Terms.push_back({DstK, -1.0});
    Ilp.addConstraint(std::move(Terms), ConstraintSense::LE,
                      double(Distance) - F + 1,
                      Tag + "_r" + std::to_string(Row));
  }
  noteRows(Origin);
}

void Formulation::buildDependence(int EdgeIndex, const SchedEdge &E) {
  emitDependence(ABase + E.Src * II, kVar(E.Src), ABase + E.Dst * II,
                 kVar(E.Dst), E.Latency, E.Distance,
                 "dep_" + G.operation(E.Src).Name + "_" +
                     G.operation(E.Dst).Name,
                 RowOrigin::depEdge(EdgeIndex, E));
}

void Formulation::buildResource() {
  // Ineq. (5). Following the paper, resources whose total usage cannot
  // exceed their multiplicity in any row are not modeled.
  std::vector<int> TotalUses(M.numResources(), 0);
  for (const Operation &Op : G.operations())
    for (const ResourceUsage &U : M.opClass(Op.OpClass).Usages)
      ++TotalUses[U.Resource];

  // Counting constraints (the paper's Ineq. (5)) for resource type R.
  auto EmitCountingRows = [this](int R) {
    for (int Row = 0; Row < II; ++Row) {
      std::vector<Term> Terms;
      for (int Op = 0; Op < G.numOperations(); ++Op) {
        const OpClass &Class = M.opClass(G.operation(Op).OpClass);
        for (const ResourceUsage &U : Class.Usages) {
          if (U.Resource != R)
            continue;
          int SrcRow = modPos(Row - U.Cycle, II);
          Terms.push_back({aVar(SrcRow, Op), 1.0});
        }
      }
      Ilp.addConstraint(std::move(Terms), ConstraintSense::LE,
                        M.resource(R).Count,
                        "res_" + M.resource(R).Name + "_r" +
                            std::to_string(Row));
      noteRows(RowOrigin::resource(R, Row));
    }
  };

  if (Opts.InstanceMapped)
    MapVarBase.assign(size_t(G.numOperations()) * M.numResources(), -1);

  for (int R = 0; R < M.numResources(); ++R) {
    if (TotalUses[R] <= M.resource(R).Count)
      continue; // No row can ever oversubscribe this resource.
    int E = M.resource(R).Count;
    if (!Opts.InstanceMapped || E == 1) {
      // With one instance per type, counting and mapping coincide.
      EmitCountingRows(R);
      continue;
    }

    // Altman et al. [5]: each operation holds ONE instance of R for its
    // entire usage pattern. Per (op, instance) the auxiliary variable
    //   y[i][e][r] = (op i in row r) AND (op i mapped to instance e)
    // is forced by its two marginals (sum over e = a[r][i]; sum over
    // r = w[i][e]); at integral (a, w) the y are integral automatically,
    // so only the w choice binaries branch. All rows are 0-1-structured.
    std::vector<int> OpsUsing;
    std::vector<std::vector<int>> UsageCycles(G.numOperations());
    for (int Op = 0; Op < G.numOperations(); ++Op) {
      const OpClass &Class = M.opClass(G.operation(Op).OpClass);
      for (const ResourceUsage &U : Class.Usages)
        if (U.Resource == R)
          UsageCycles[Op].push_back(U.Cycle);
      if (!UsageCycles[Op].empty())
        OpsUsing.push_back(Op);
    }

    std::vector<int> YBase(G.numOperations(), -1);
    for (int Op : OpsUsing) {
      const std::string OpName = G.operation(Op).Name;
      const std::string ResName = M.resource(R).Name;
      int WBase = Ilp.numVariables();
      MapVarBase[size_t(Op) * M.numResources() + R] = WBase;
      for (int Inst = 0; Inst < E; ++Inst) {
        int Var = Ilp.addBinaryVariable("map_" + OpName + "_" + ResName +
                                        std::to_string(Inst));
        Ilp.setBranchPriority(Var, 1);
      }
      std::vector<Term> Choose;
      for (int Inst = 0; Inst < E; ++Inst)
        Choose.push_back({WBase + Inst, 1.0});
      Ilp.addConstraint(std::move(Choose), ConstraintSense::EQ, 1.0,
                        "choose_" + OpName + "_" + ResName);
      noteRows(RowOrigin::resource(R, -1));

      YBase[Op] = Ilp.numVariables();
      for (int Inst = 0; Inst < E; ++Inst)
        for (int Row = 0; Row < II; ++Row)
          Ilp.addVariable("y_" + OpName + "_" + ResName +
                              std::to_string(Inst) + "_r" +
                              std::to_string(Row),
                          0.0, 1.0);
      // Marginal over instances: recovers the row assignment.
      for (int Row = 0; Row < II; ++Row) {
        std::vector<Term> Terms;
        for (int Inst = 0; Inst < E; ++Inst)
          Terms.push_back({YBase[Op] + Inst * II + Row, 1.0});
        Terms.push_back({aVar(Row, Op), -1.0});
        Ilp.addConstraint(std::move(Terms), ConstraintSense::EQ, 0.0,
                          "ymargrow_" + OpName + "_" + ResName + "_r" +
                              std::to_string(Row));
        noteRows(RowOrigin::resource(R, Row));
      }
      // Marginal over rows: recovers the instance choice.
      for (int Inst = 0; Inst < E; ++Inst) {
        std::vector<Term> Terms;
        for (int Row = 0; Row < II; ++Row)
          Terms.push_back({YBase[Op] + Inst * II + Row, 1.0});
        Terms.push_back({WBase + Inst, -1.0});
        Ilp.addConstraint(std::move(Terms), ConstraintSense::EQ, 0.0,
                          "ymarginst_" + OpName + "_" + ResName +
                              std::to_string(Inst));
        noteRows(RowOrigin::resource(R, -1));
      }
    }

    // Conflict rows: each instance serves at most one reservation per
    // MRT row.
    for (int Inst = 0; Inst < E; ++Inst) {
      for (int Row = 0; Row < II; ++Row) {
        std::vector<Term> Terms;
        for (int Op : OpsUsing)
          for (int Cycle : UsageCycles[Op])
            Terms.push_back(
                {YBase[Op] + Inst * II + modPos(Row - Cycle, II), 1.0});
        Ilp.addConstraint(std::move(Terms), ConstraintSense::LE, 1.0,
                          "inst_" + M.resource(R).Name +
                              std::to_string(Inst) + "_r" +
                              std::to_string(Row));
        noteRows(RowOrigin::resource(R, Row));
      }
    }
  }
}

void Formulation::appendLiveCount(std::vector<Term> &Terms, int Reg,
                                  int Row) const {
  const VirtualRegister &R = G.registers()[Reg];
  Terms.push_back({KillStage[Reg], 1.0});
  Terms.push_back({kVar(R.Def), -1.0});
  appendRowRange(Terms, KillRowBase[Reg], Row, II - 1, 1.0);
  if (Row + 1 <= II - 1)
    appendRowRange(Terms, ABase + R.Def * II, Row + 1, II - 1, -1.0);
}

int Formulation::minLifetimeBound(int Reg) const {
  const VirtualRegister &R = G.registers()[Reg];
  int Bound = 1; // Live at least in the definition cycle.
  for (const RegisterUse &U : R.Uses) {
    // Any scheduling edge def -> consumer at the use's distance forces
    // t_use + w*II >= t_def + latency, hence lifetime >= latency + 1.
    for (const SchedEdge &E : G.schedEdges())
      if (E.Src == R.Def && E.Dst == U.Consumer &&
          E.Distance == U.Distance)
        Bound = std::max(Bound, E.Latency + 1);
  }
  return Bound;
}

void Formulation::buildKillOps() {
  if (!KillRowBase.empty())
    return; // Already built.
  int NumRegs = G.numRegisters();
  int StageCount = MaxTime / II + 1;
  KillRowBase.assign(NumRegs, -1);
  KillStage.assign(NumRegs, -1);
  for (int Reg = 0; Reg < NumRegs; ++Reg) {
    const VirtualRegister &R = G.registers()[Reg];
    KillRowBase[Reg] = Ilp.numVariables();
    for (int Row = 0; Row < II; ++Row)
      Ilp.addBinaryVariable("kill_r" + std::to_string(Row) + "_v" +
                            std::to_string(Reg));
    // Stage bounds: the kill lies between the def's earliest stage and
    // the latest use's latest stage.
    int KMin = 0, KMax = StageCount - 1;
    if (Opts.TightenStageBounds) {
      KMin = Asap[R.Def] / II;
      KMax = Alap[R.Def] / II;
      for (const RegisterUse &U : R.Uses)
        KMax = std::max(KMax, Alap[U.Consumer] / II + U.Distance);
    } else {
      for (const RegisterUse &U : R.Uses)
        KMax = std::max(KMax, StageCount - 1 + U.Distance);
    }
    KillStage[Reg] = Ilp.addVariable("killk_v" + std::to_string(Reg), KMin,
                                     KMax, 0.0, VarKind::Integer);

    // Assignment constraint for the kill row vector.
    std::vector<Term> Terms;
    appendRowRange(Terms, KillRowBase[Reg], 0, II - 1, 1.0);
    Ilp.addConstraint(std::move(Terms), ConstraintSense::EQ, 1.0,
                      "assign_kill_v" + std::to_string(Reg));
    noteRows(RowOrigin::objectiveLink(Reg));

    // The kill follows the definition (covers a dead value's single
    // live cycle) and every use. A use at distance w constrains
    // t_kill >= t_use + w*II, i.e. a dependence with latency 0 and
    // distance -w.
    std::string TagBase = "kill_v" + std::to_string(Reg);
    emitDependence(ABase + R.Def * II, kVar(R.Def), KillRowBase[Reg],
                   KillStage[Reg], /*Latency=*/0, /*Distance=*/0,
                   TagBase + "_def", RowOrigin::objectiveLink(Reg));
    for (size_t UI = 0; UI < R.Uses.size(); ++UI) {
      const RegisterUse &U = R.Uses[UI];
      emitDependence(ABase + U.Consumer * II, kVar(U.Consumer),
                     KillRowBase[Reg], KillStage[Reg], /*Latency=*/0,
                     -U.Distance, TagBase + "_use" + std::to_string(UI),
                     RowOrigin::objectiveLink(Reg));
    }
  }
}

void Formulation::buildObjective() {
  // Register-file budget: a hard per-row cap on the live count,
  // independent of the secondary objective.
  if (Opts.RegisterLimit >= 0 && G.numRegisters() > 0) {
    assert(Opts.Obj != Objective::MinReg &&
           "RegisterLimit with MinReg is redundant; pick one");
    buildKillOps();
    for (int Row = 0; Row < II; ++Row) {
      std::vector<Term> Terms;
      for (int Reg = 0; Reg < G.numRegisters(); ++Reg)
        appendLiveCount(Terms, Reg, Row);
      Ilp.addConstraint(std::move(Terms), ConstraintSense::LE,
                        double(Opts.RegisterLimit),
                        "reglimit_r" + std::to_string(Row));
      noteRows(RowOrigin::objectiveLink());
    }
  }

  if (Opts.Obj == Objective::None)
    return;

  if (Opts.Obj == Objective::MinSL) {
    // Schedule length = start time of a sink pseudo-operation that
    // follows every operation by one cycle (i.e. 1 + the latest start).
    // The sink is modeled exactly like a kill event: a row-assignment
    // vector and a stage, constrained through the same dependence
    // machinery, with the length II*stage + row minimized directly
    // (objective coefficients are exempt from 0-1 structure).
    std::optional<int> MinLen = minScheduleLength(G, II);
    assert(MinLen && "valid() formulations have a schedule-length bound");
    SinkRowBase = Ilp.numVariables();
    for (int Row = 0; Row < II; ++Row)
      Ilp.addBinaryVariable("sink_r" + std::to_string(Row));
    SinkStage = Ilp.addVariable("sink_k", *MinLen / II,
                                (MaxTime + 1) / II, double(II),
                                VarKind::Integer);
    std::vector<Term> Assign;
    appendRowRange(Assign, SinkRowBase, 0, II - 1, 1.0);
    Ilp.addConstraint(std::move(Assign), ConstraintSense::EQ, 1.0,
                      "assign_sink");
    noteRows(RowOrigin::objectiveLink());
    for (int Row = 0; Row < II; ++Row)
      Ilp.setObjective(SinkRowBase + Row, double(Row));
    for (int Op = 0; Op < G.numOperations(); ++Op)
      emitDependence(ABase + Op * II, kVar(Op), SinkRowBase, SinkStage,
                     /*Latency=*/1, /*Distance=*/0,
                     "sink_after_" + G.operation(Op).Name,
                     RowOrigin::objectiveLink());
    return;
  }

  if (G.numRegisters() == 0) {
    if (Opts.Obj == Objective::MinReg) {
      // Degenerate: no registers, MaxLive is trivially zero. Keep a
      // variable so the objective is well defined.
      MaxLiveVar = Ilp.addVariable("maxlive", 0.0, 0.0, 1.0);
    }
    return;
  }

  int NumRegs = G.numRegisters();

  if (Opts.Obj == Objective::MinReg || Opts.Obj == Objective::MinLife)
    buildKillOps();

  switch (Opts.Obj) {
  case Objective::None:
  case Objective::MinSL:
    break; // Handled above.

  case Objective::MinReg: {
    // MaxLive >= sum of per-register live counts, for every row. The
    // live-count expression is 0-1-structured (see header comment); this
    // is the paper's [4] objective, used for both dependence styles.
    // A constant lower bound ceil(sum of minimum lifetimes / II) tightens
    // the root relaxation.
    long MinTotalLife = 0;
    for (int Reg = 0; Reg < NumRegs; ++Reg)
      MinTotalLife += minLifetimeBound(Reg);
    double MaxLiveLb =
        static_cast<double>((MinTotalLife + II - 1) / II);
    MaxLiveVar = Ilp.addVariable("maxlive", MaxLiveLb, infinity(), 1.0);
    for (int Row = 0; Row < II; ++Row) {
      std::vector<Term> Terms;
      for (int Reg = 0; Reg < NumRegs; ++Reg)
        appendLiveCount(Terms, Reg, Row);
      Terms.push_back({MaxLiveVar, -1.0});
      Ilp.addConstraint(std::move(Terms), ConstraintSense::LE, 0.0,
                        "maxlive_r" + std::to_string(Row));
      noteRows(RowOrigin::objectiveLink());
    }
    break;
  }

  case Objective::MinBuff: {
    // Buffer count per register: ceil(longest def-to-use span / II),
    // at least 1. No kill pseudo-op is needed; the max over uses is
    // taken by >=-constraints on the shared buffer variable.
    BufferVar.assign(NumRegs, -1);
    for (int Reg = 0; Reg < NumRegs; ++Reg) {
      const VirtualRegister &R = G.registers()[Reg];
      VarKind Kind = Opts.ObjStyle == ObjectiveStyle::Traditional
                         ? VarKind::Integer
                         : VarKind::Continuous;
      double BufLb = (minLifetimeBound(Reg) + II - 1) / II;
      BufferVar[Reg] = Ilp.addVariable("buf_v" + std::to_string(Reg),
                                       BufLb, infinity(), 1.0, Kind);
      for (size_t UI = 0; UI < R.Uses.size(); ++UI) {
        const RegisterUse &U = R.Uses[UI];
        std::string Tag =
            "buf_v" + std::to_string(Reg) + "_use" + std::to_string(UI);
        if (Opts.ObjStyle == ObjectiveStyle::Traditional) {
          // [7]: II*B >= t_use + w*II - t_def + 1, with B integer.
          std::vector<Term> Terms;
          Terms.push_back({BufferVar[Reg], double(II)});
          Terms.push_back({kVar(U.Consumer), -double(II)});
          Terms.push_back({kVar(R.Def), double(II)});
          for (int Row = 1; Row < II; ++Row) {
            Terms.push_back({aVar(Row, U.Consumer), -double(Row)});
            Terms.push_back({aVar(Row, R.Def), double(Row)});
          }
          Ilp.addConstraint(std::move(Terms), ConstraintSense::GE,
                            double(U.Distance) * II + 1.0, Tag);
          noteRows(RowOrigin::objectiveLink(Reg));
        } else {
          // Structured ([15]-style): the span [t_def, t_use + w*II]
          // covers row r exactly
          //   (k_u + w + [row_u >= r]) - (k_d + [row_d > r])
          // times, and the maximum over rows is ceil(span/II). One +/-1
          // constraint per row.
          for (int Row = 0; Row < II; ++Row) {
            std::vector<Term> Terms;
            Terms.push_back({kVar(U.Consumer), 1.0});
            Terms.push_back({kVar(R.Def), -1.0});
            Terms.push_back({BufferVar[Reg], -1.0});
            appendRowRange(Terms, ABase + U.Consumer * II, Row, II - 1, 1.0);
            if (Row + 1 <= II - 1)
              appendRowRange(Terms, ABase + R.Def * II, Row + 1, II - 1,
                             -1.0);
            Ilp.addConstraint(std::move(Terms), ConstraintSense::LE,
                              -double(U.Distance),
                              Tag + "_r" + std::to_string(Row));
          }
          noteRows(RowOrigin::objectiveLink(Reg));
        }
      }
    }
    break;
  }

  case Objective::MinLife: {
    // Cumulative lifetime: sum over registers of
    //   t_kill - t_def + 1 = II*(killStage - k_def) + rowdiff + 1.
    if (Opts.ObjStyle == ObjectiveStyle::Traditional) {
      // [16]-style: auxiliary lifetime variable per register defined by
      // an equality with coefficient II, minimized directly.
      LifeVar.assign(NumRegs, -1);
      for (int Reg = 0; Reg < NumRegs; ++Reg) {
        const VirtualRegister &R = G.registers()[Reg];
        LifeVar[Reg] = Ilp.addVariable("life_v" + std::to_string(Reg),
                                       minLifetimeBound(Reg), infinity(),
                                       1.0);
        std::vector<Term> Terms;
        Terms.push_back({LifeVar[Reg], 1.0});
        Terms.push_back({KillStage[Reg], -double(II)});
        Terms.push_back({kVar(R.Def), double(II)});
        for (int Row = 1; Row < II; ++Row) {
          Terms.push_back({KillRowBase[Reg] + Row, -double(Row)});
          Terms.push_back({aVar(Row, R.Def), double(Row)});
        }
        Ilp.addConstraint(std::move(Terms), ConstraintSense::EQ, 1.0,
                          "life_v" + std::to_string(Reg));
        noteRows(RowOrigin::objectiveLink(Reg));
      }
    } else {
      // Structured: no auxiliary constraints at all; the total lifetime
      //   sum_r live[v][r] = II*(killStage - k_def)
      //                      + sum_z (z+1)*killRow[z] - sum_z z*a[z][def]
      // is placed directly in the objective (objective coefficients are
      // exempt from the 0-1-structure requirement).
      for (int Reg = 0; Reg < NumRegs; ++Reg) {
        const VirtualRegister &R = G.registers()[Reg];
        Ilp.setObjective(KillStage[Reg], double(II));
        Ilp.setObjective(kVar(R.Def),
                         Ilp.variable(kVar(R.Def)).Objective - II);
        for (int Row = 0; Row < II; ++Row) {
          Ilp.setObjective(KillRowBase[Reg] + Row, double(Row + 1));
          int AV = aVar(Row, R.Def);
          Ilp.setObjective(AV, Ilp.variable(AV).Objective - Row);
        }
      }
    }
    break;
  }
  }
}

int Formulation::decodeInstance(const std::vector<double> &Values, int Op,
                                int Resource) const {
  if (MapVarBase.empty())
    return -1;
  int Base = MapVarBase[size_t(Op) * M.numResources() + Resource];
  if (Base < 0)
    return -1;
  for (int Inst = 0; Inst < M.resource(Resource).Count; ++Inst)
    if (Values[Base + Inst] > 0.5)
      return Inst;
  return -1;
}

ModuloSchedule Formulation::decode(const std::vector<double> &Values) const {
  assert(Valid && "cannot decode from an invalid formulation");
  int N = G.numOperations();
  std::vector<int> Times(N, 0);
  for (int Op = 0; Op < N; ++Op) {
    int Row = -1;
    for (int R = 0; R < II; ++R) {
      if (Values[aVar(R, Op)] > 0.5) {
        assert(Row < 0 && "operation assigned to two MRT rows");
        Row = R;
      }
    }
    assert(Row >= 0 && "operation not assigned to any MRT row");
    int K = static_cast<int>(std::lround(Values[kVar(Op)]));
    Times[Op] = K * II + Row;
  }
  return ModuloSchedule(II, std::move(Times));
}
