//===- ilpsched/PortfolioAttempt.h - ILP/PB race coordination ---*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-level state of the portfolio backend
/// (SchedulerBackend::Portfolio; the PortfolioEngine of
/// ilpsched/AttemptEngine.h): each tentative II dispatches the
/// registered child engines onto a dedicated worker pool, the first
/// conclusive verdict wins and cancels the losers, and two
/// hybridization layers make the race more than the sum of its engines:
///
///   * Cross-engine incumbent exchange — whichever engine verifies a
///     schedule of objective k publishes it to a SharedIncumbent; the
///     ILP prunes nodes against the atomic cell (MipOptions::
///     ExternalBound) and the PB injects "objective <= k-1" rows at its
///     restart boundaries (PbFormulation::injectObjectiveBound). An
///     engine that then refutes "anything below k" has, combined with
///     the shared schedule, proved k optimal.
///
///   * A persistent pb::AttemptSession — one CDCL solver survives the
///     loop's whole II ladder; each attempt is encoded behind a fresh
///     gate (retired when the attempt ends), so learned clauses,
///     activity, and saved phases carry across II attempts and descent
///     steps instead of being rebuilt from scratch.
///
/// Verdict determinism: every conclusive path yields the true optimum
/// (or true infeasibility) at its II, and a fixed ILP-preference
/// tie-break resolves double finishes, so committed II / objective
/// verdicts are bit-exact with the sequential ILP backend regardless of
/// race timing. Only the committed schedule (one of several equally
/// optimal ones) and the censoring wall-clock may differ.
///
/// The II search owns one PortfolioState per loop (Sequential) or per
/// racing slot (ParallelRace, reused across waves — the wave barrier
/// serializes accesses) and threads it through
/// OptimalModuloScheduler::scheduleAtIi.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILPSCHED_PORTFOLIOATTEMPT_H
#define MODSCHED_ILPSCHED_PORTFOLIOATTEMPT_H

#include "pb/Incremental.h"
#include "sched/ModuloSchedule.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace modsched {

/// The cross-engine incumbent of one racing II attempt: a lock-free
/// objective cell (polled at every B&B node and CDCL restart) plus the
/// mutex-guarded schedule that achieved it. Both engines publish every
/// verified incumbent here the moment it is accepted.
struct SharedIncumbent {
  /// Best objective any engine has verified so far; INT64_MAX = none.
  /// Only ever tightens (decreases), which is what makes it a sound
  /// pruning cutoff for both engines.
  std::atomic<int64_t> Bound{INT64_MAX};

  /// Records schedule \p S with verified objective \p K found by engine
  /// \p Src, if it improves on the best recorded one. Thread-safe.
  void publish(int64_t K, const ModuloSchedule &S, const char *Src);

  /// Snapshot of the best recorded schedule and its objective (nullopt
  /// when nothing was published). Thread-safe.
  std::optional<ModuloSchedule> best(int64_t &K) const;

private:
  mutable std::mutex Mu;
  int64_t Obj = INT64_MAX;                ///< Guarded by Mu.
  std::optional<ModuloSchedule> Schedule; ///< Guarded by Mu.
};

/// Per-loop race state of the portfolio backend. Created by the II
/// search before the first attempt and reused across the loop's whole
/// II ladder; accessed by one attempt at a time.
struct PortfolioState {
  /// Dedicated pool the engines race on (one worker per registered
  /// child); created on the first racing attempt (eligibility
  /// short-circuits never pay for threads) and reused afterwards.
  std::unique_ptr<ThreadPool> Pool;

  /// Persistent incremental PB solver carrying learned clauses,
  /// activity, and phases across II attempts. Unused when
  /// SchedulerOptions::PortfolioPersistentPb is off.
  pb::AttemptSession Session;

  /// Schedule times of the last committed schedule, used to seed the
  /// next PB attempt's branching phases (PbFormulation::seedPhases).
  /// Empty = no hint yet.
  std::vector<int> PhaseHint;
};

} // namespace modsched

#endif // MODSCHED_ILPSCHED_PORTFOLIOATTEMPT_H
