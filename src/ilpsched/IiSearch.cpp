//===- ilpsched/IiSearch.cpp - Min-II search strategies -------------------===//

#include "ilpsched/IiSearch.h"

#include "ilpsched/PortfolioAttempt.h"
#include "ilpsched/WorkerState.h"
#include "lp/SolveContext.h"
#include "support/Cancellation.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <optional>

using namespace modsched;

namespace {

telemetry::Counter StatRaceWaves("ilpsched", "race.waves",
                                 "Parallel II-race waves launched");
telemetry::Counter StatRaceAttempts("ilpsched", "race.attempts",
                                    "Attempts launched by the parallel "
                                    "II race");
telemetry::Counter StatRaceCancelled("ilpsched", "race.cancelled",
                                     "Race attempts cancelled by a "
                                     "lower-II winner");

/// Folds one racing slot's private accounting into the loop-level
/// result: work counters and the per-attempt telemetry rows. Verdict
/// flags and the schedule itself are committed separately by the
/// deterministic scan (a slot above the winner may have timed out or
/// even scheduled, and its verdict must not leak into the loop result).
void mergeSlotWork(ScheduleResult &Into, const ScheduleResult &Slot) {
  Into.Nodes += Slot.Nodes;
  Into.SimplexIterations += Slot.SimplexIterations;
  Into.WarmLpSolves += Slot.WarmLpSolves;
  Into.ColdLpSolves += Slot.ColdLpSolves;
  Into.WarmLpIterations += Slot.WarmLpIterations;
  Into.LpRefactorizations += Slot.LpRefactorizations;
  Into.LpEtaNonzeros += Slot.LpEtaNonzeros;
  Into.PbConflicts += Slot.PbConflicts;
  Into.PbPropagations += Slot.PbPropagations;
  Into.PbRestarts += Slot.PbRestarts;
  Into.PbLearned += Slot.PbLearned;
  for (const IiAttempt &A : Slot.Attempts) {
    Into.Attempts.push_back(A);
    if (A.Cancelled)
      ++StatRaceCancelled;
  }
}

} // namespace

IiSearchStrategy::~IiSearchStrategy() = default;

//===----------------------------------------------------------------------===//
// SequentialIiSearch
//===----------------------------------------------------------------------===//

void SequentialIiSearch::search(const OptimalModuloScheduler &Sched,
                                const Problem &P, ScheduleResult &Result,
                                SchedulerWorkerState *Worker) const {
  const SchedulerOptions &Opts = Sched.options();
  Stopwatch Watch;
  // Portfolio backend: one race state for the whole II ladder, so the
  // persistent PB session and phase hints carry across attempts. With a
  // worker state the session outlives this loop entirely — learned
  // clauses from earlier requests stay live behind their retired gates.
  std::unique_ptr<PortfolioState> Local;
  PortfolioState *Portfolio = nullptr;
  if (Opts.Backend == SchedulerBackend::Portfolio) {
    if (Worker) {
      if (!Worker->Portfolio)
        Worker->Portfolio = std::make_unique<PortfolioState>();
      Portfolio = Worker->Portfolio.get();
    } else {
      Local = std::make_unique<PortfolioState>();
      Portfolio = Local.get();
    }
  }
  lp::SolveContext *Ctx = Worker ? &Worker->Ctx : nullptr;
  for (int II = Result.Mii; II <= Result.Mii + Opts.MaxIiIncrease; ++II) {
    double Remaining = Opts.TimeLimitSeconds - Watch.seconds();
    if (Remaining <= 0) {
      Result.TimedOut = true;
      break;
    }
    if (Result.budgetNodes() >= Opts.NodeLimit) {
      Result.NodeLimitHit = true;
      break;
    }
    std::optional<ModuloSchedule> S =
        Sched.scheduleAtIi(P, II, Result, Remaining, Ctx, Portfolio);
    if (Result.TimedOut || Result.NodeLimitHit)
      break;
    if (S) {
      Result.Found = true;
      Result.II = II;
      Result.Schedule = std::move(*S);
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// ParallelRaceIiSearch
//===----------------------------------------------------------------------===//

ParallelRaceIiSearch::ParallelRaceIiSearch(int Jobs)
    : Jobs(std::max(1, Jobs)) {}

namespace {

/// One racing II attempt: a private result (no shared mutable state
/// with its siblings), the produced schedule if any, and the cancel
/// switch a lower-II winner throws to stop it.
struct RaceSlot {
  int II = 0;
  ScheduleResult Stats;
  std::optional<ModuloSchedule> Schedule;
  CancellationSource Cancel;
};

} // namespace

void ParallelRaceIiSearch::search(const OptimalModuloScheduler &Sched,
                                  const Problem &P, ScheduleResult &Result,
                                  SchedulerWorkerState *) const {
  const SchedulerOptions &Opts = Sched.options();
  Stopwatch Watch;
  ThreadPool Pool(Jobs);
  const int MaxII = Result.Mii + Opts.MaxIiIncrease;

  // Portfolio backend: one race state per slot index, reused across
  // waves (the Pool.wait() barrier serializes accesses), so each slot
  // lane keeps a persistent PB session for the IIs it walks.
  std::vector<std::unique_ptr<PortfolioState>> PortfolioStates;
  if (Opts.Backend == SchedulerBackend::Portfolio) {
    PortfolioStates.resize(size_t(Jobs));
    for (std::unique_ptr<PortfolioState> &P : PortfolioStates)
      P = std::make_unique<PortfolioState>();
  }

  for (int Base = Result.Mii; Base <= MaxII;) {
    double Remaining = Opts.TimeLimitSeconds - Watch.seconds();
    if (Remaining <= 0) {
      Result.TimedOut = true;
      break;
    }
    if (Result.budgetNodes() >= Opts.NodeLimit) {
      Result.NodeLimitHit = true;
      break;
    }

    const int WaveEnd = std::min(MaxII, Base + Jobs - 1);
    const int NumSlots = WaveEnd - Base + 1;
    std::vector<RaceSlot> Slots(NumSlots);
    for (int I = 0; I < NumSlots; ++I)
      Slots[I].II = Base + I;
    ++StatRaceWaves;
    StatRaceAttempts += NumSlots;

    // WinnerII tracks the lowest II that has produced a schedule so far
    // in this wave; a new winner cancels every higher slot. Guarded by
    // WinnerMutex — it only gates cancellation (an optimization), never
    // the outcome: the commit scan below re-derives the winner from the
    // drained slots in II order.
    std::mutex WinnerMutex;
    int WinnerII = WaveEnd + 1;

    for (int I = 0; I < NumSlots; ++I) {
      RaceSlot &Slot = Slots[I];
      PortfolioState *Portfolio =
          PortfolioStates.empty() ? nullptr : PortfolioStates[size_t(I)].get();
      Pool.submit([&Sched, &P, &Slots, &Slot, &WinnerMutex, &WinnerII,
                   Remaining, Base, NumSlots, Portfolio]() {
        lp::SolveContext Ctx;
        Ctx.Cancel = Slot.Cancel.token();
        Slot.Schedule = Sched.scheduleAtIi(P, Slot.II, Slot.Stats, Remaining,
                                           &Ctx, Portfolio);
        if (!Slot.Schedule)
          return;
        std::lock_guard<std::mutex> Lock(WinnerMutex);
        if (Slot.II < WinnerII) {
          WinnerII = Slot.II;
          for (int J = Slot.II - Base + 1; J < NumSlots; ++J)
            Slots[J].Cancel.cancel();
        }
      });
    }
    Pool.wait();

    // Deterministic commit: account every slot's work (in II order, so
    // the attempts vector reads like a sequential search trace), then
    // walk the slots in II order for the verdict. A censored slot below
    // the first feasible II blocks the commit — Sequential would have
    // burned its budget there without a verdict, and the race must
    // report the same censoring rather than claim a higher II optimal.
    for (const RaceSlot &Slot : Slots)
      mergeSlotWork(Result, Slot.Stats);

    bool Decided = false;
    for (RaceSlot &Slot : Slots) {
      if (Slot.Schedule) {
        Result.Found = true;
        Result.II = Slot.II;
        Result.Schedule = std::move(*Slot.Schedule);
        Result.SecondaryObjective = Slot.Stats.SecondaryObjective;
        Result.Variables = Slot.Stats.Variables;
        Result.Constraints = Slot.Stats.Constraints;
        Decided = true;
      } else if (Slot.Stats.TimedOut || Slot.Stats.NodeLimitHit) {
        Result.TimedOut = Result.TimedOut || Slot.Stats.TimedOut;
        Result.NodeLimitHit = Result.NodeLimitHit || Slot.Stats.NodeLimitHit;
        Decided = true;
      }
      // Infeasible (window or proved) slots advance the scan; cancelled
      // slots can only sit above a winner and are never reached.
      if (Decided)
        break;
    }
    if (Decided)
      break;
    Base = WaveEnd + 1;
  }
}

//===----------------------------------------------------------------------===//
// Factory
//===----------------------------------------------------------------------===//

std::unique_ptr<IiSearchStrategy> modsched::makeIiSearchStrategy(
    IiSearchKind Kind, int Jobs) {
  switch (Kind) {
  case IiSearchKind::Sequential:
    return std::make_unique<SequentialIiSearch>();
  case IiSearchKind::ParallelRace:
    if (Jobs <= 1)
      return std::make_unique<SequentialIiSearch>();
    return std::make_unique<ParallelRaceIiSearch>(Jobs);
  }
  assert(false && "unknown IiSearchKind");
  return std::make_unique<SequentialIiSearch>();
}
