//===- ilpsched/PortfolioAttempt.cpp - Engine race coordination -----------===//

#include "ilpsched/PortfolioAttempt.h"

#include "ilpsched/AttemptEngine.h"
#include "ilpsched/OptimalScheduler.h"
#include "lp/SolveContext.h"
#include "support/Telemetry.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

using namespace modsched;
using namespace modsched::ilp;

void SharedIncumbent::publish(int64_t K, const ModuloSchedule &S,
                              const char *Src) {
  (void)Src;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (K < Obj) {
      Obj = K;
      Schedule = S;
    }
  }
  // Tighten the lock-free cell monotonically; a stale larger value must
  // never overwrite a tighter one published concurrently.
  int64_t Cur = Bound.load(std::memory_order_acquire);
  while (K < Cur &&
         !Bound.compare_exchange_weak(Cur, K, std::memory_order_acq_rel)) {
  }
}

std::optional<ModuloSchedule> SharedIncumbent::best(int64_t &K) const {
  std::lock_guard<std::mutex> Lock(Mu);
  K = Obj;
  return Schedule;
}

namespace {

telemetry::Counter StatRaces("ilpsched", "portfolio.races",
                             "II attempts raced by several engines");
telemetry::Counter StatWinnerIlp("ilpsched", "portfolio.winner_ilp",
                                 "Attempts committed from the ILP engine");
telemetry::Counter StatWinnerPb("ilpsched", "portfolio.winner_pb",
                                "Attempts committed from the PB engine");
telemetry::Counter StatBoundExchanges("ilpsched",
                                      "portfolio.bound_exchanges",
                                      "Cross-engine incumbent bounds "
                                      "applied (ILP prunes + PB "
                                      "injections)");
telemetry::Counter StatClausesKept("ilpsched", "portfolio.clauses_kept",
                                   "Learned clauses retained in the "
                                   "persistent PB session at attempt "
                                   "retirement");
telemetry::Counter StatPbIneligible("ilpsched", "portfolio.pb_ineligible",
                                    "Attempts where PB sat out "
                                    "(wide-coefficient MinLife or "
                                    "unsupported formulation)");

void bumpWinner(const char *Name) {
  if (std::strcmp(Name, "ilp") == 0)
    ++StatWinnerIlp;
  else if (std::strcmp(Name, "pb") == 0)
    ++StatWinnerPb;
}

/// Everything one racing engine produces: its verdict-bearing attempt
/// record, its scratch statistics (seeded with the loop's budget spend
/// so the shared node budget means the same thing it does
/// sequentially), and its schedule, if any.
struct WorkerResult {
  std::optional<ModuloSchedule> Schedule;
  IiAttempt Attempt;
  ScheduleResult Scratch;
  bool Done = false; ///< Guarded by the coordinator latch mutex.
};

/// A worker's verdict is conclusive when it decides the II: a verified
/// optimal schedule, a genuine infeasibility proof, or a refutation of
/// everything below the shared incumbent (which, combined with that
/// incumbent, proves it optimal). Budget expiry and cancellation decide
/// nothing.
bool conclusive(const WorkerResult &W, const PortfolioEngineHooks &H) {
  if (W.Attempt.Cancelled)
    return false;
  if (W.Attempt.Scheduled || H.RefutedBelowExternal)
    return true;
  return W.Attempt.Status == MipStatus::Infeasible;
}

/// One lane of a portfolio race: the child engine plus all the
/// per-worker state it solves under. Everything lives on the
/// coordinator's frame; the latch guarantees workers terminate before
/// it unwinds.
struct Racer {
  const AttemptEngine *E = nullptr;
  CancellationSource Cancel;
  lp::SolveContext Ctx;
  PortfolioEngineHooks Hooks;
  WorkerResult W;
};

} // namespace

bool PortfolioEngine::supports(const Problem &P, int II) const {
  for (const AttemptEngine *E : Children)
    if (E->supports(P, II))
      return true;
  return false;
}

std::optional<ModuloSchedule>
PortfolioEngine::solveAttempt(AttemptContext &C) const {
  assert(C.State && "portfolio attempts need loop-level race state");
  PortfolioState &State = *C.State;
  const Objective Obj = C.P.options().Obj;
  const int64_t KeptBefore = State.Session.stats().ClausesKept;

  // --- Eligibility: which registered engines contest this attempt.
  // supports() is the hard capability filter; worthRacing() then thins a
  // multi-engine field down to the engines worth a worker (unless that
  // would empty it — somebody has to decide the II). ---
  std::vector<const AttemptEngine *> Contestants;
  for (const AttemptEngine *E : Children)
    if (E->supports(C.P, C.II))
      Contestants.push_back(E);
  assert(!Contestants.empty() &&
         "portfolio dispatched an attempt no registered engine supports");
  if (Contestants.size() > 1) {
    std::vector<const AttemptEngine *> Worth;
    for (const AttemptEngine *E : Contestants)
      if (E->worthRacing(C.P, C.II))
        Worth.push_back(E);
    if (!Worth.empty())
      Contestants = std::move(Worth);
  }
  const auto contesting = [&](const char *Name) {
    for (const AttemptEngine *E : Contestants)
      if (std::strcmp(E->name(), Name) == 0)
        return true;
    return false;
  };
  bool PbRegistered = false;
  for (const AttemptEngine *E : Children)
    PbRegistered |= std::strcmp(E->name(), "pb") == 0;
  if (PbRegistered && !contesting("pb"))
    ++StatPbIneligible;

  if (Contestants.size() == 1) {
    // A lone contestant runs inline on the caller's thread — no pool,
    // no shared incumbent (there is nobody to exchange bounds with),
    // but still the persistent session / phase hints so cross-II reuse
    // survives eligibility short-circuits. Engines ignore hook fields
    // they have no use for, so one wiring serves every child.
    const AttemptEngine *E = Contestants.front();
    PortfolioEngineHooks Hooks;
    if (Opts.PortfolioPersistentPb)
      Hooks.Session = &State.Session;
    if (!State.PhaseHint.empty())
      Hooks.PhaseHint = &State.PhaseHint;
    AttemptContext Solo{C.P,   C.II,      C.Stats, C.TimeBudget,
                        C.Ctx, C.Attempt, &Hooks,  C.State};
    std::optional<ModuloSchedule> S = E->solveAttempt(Solo);
    StatClausesKept += State.Session.stats().ClausesKept - KeptBefore;
    if (S || (!C.Attempt.Cancelled &&
              C.Attempt.Status == MipStatus::Infeasible)) {
      C.Attempt.Winner = E->name();
      bumpWinner(E->name());
    }
    if (S)
      State.PhaseHint = S->times();
    return S;
  }

  // --- Race the contestants. ---
  ++StatRaces;
  if (!State.Pool)
    State.Pool = std::make_unique<ThreadPool>(int(Children.size()));

  lp::SolveContext LocalCtx;
  lp::SolveContext &Parent = C.Ctx ? *C.Ctx : LocalCtx;

  SharedIncumbent Shared;
  const bool Exchange = Obj != Objective::None;

  const int64_t SeedNodes = C.Stats.Nodes;
  const int64_t SeedConflicts = C.Stats.PbConflicts;
  std::vector<Racer> Racers(Contestants.size());
  for (size_t I = 0; I != Racers.size(); ++I) {
    Racer &R = Racers[I];
    R.E = Contestants[I];
    R.Ctx.DeadlineSeconds = Parent.DeadlineSeconds;
    R.Ctx.Cancel = R.Cancel.token();
    if (Exchange) {
      R.Hooks.ExternalBound = &Shared.Bound;
      const char *Src = R.E->name();
      R.Hooks.OnIncumbent = [&Shared, Src](int64_t K,
                                           const ModuloSchedule &S) {
        Shared.publish(K, S, Src);
      };
    }
    // The persistent session is single-owner state: exactly one
    // registered child (the PB engine) consumes it, every other engine
    // ignores the field.
    if (Opts.PortfolioPersistentPb)
      R.Hooks.Session = &State.Session;
    if (!State.PhaseHint.empty())
      R.Hooks.PhaseHint = &State.PhaseHint;
    // Each worker sees the loop's budget spend so far (like
    // ParallelRace slots, the budget is granted to each independently —
    // they cannot see each other's spend without racing on it).
    R.W.Attempt.II = C.II;
    R.W.Scratch.Nodes = SeedNodes;
    R.W.Scratch.PbConflicts = SeedConflicts;
  }

  std::mutex Mu;
  std::condition_variable Cv;
  for (Racer &R : Racers) {
    Racer *RP = &R;
    State.Pool->submit([this, &C, &Mu, &Cv, RP] {
      AttemptContext Lane{C.P,     C.II,          RP->W.Scratch,
                          C.TimeBudget, &RP->Ctx, RP->W.Attempt,
                          &RP->Hooks,   C.State};
      RP->W.Schedule = RP->E->solveAttempt(Lane);
      {
        std::lock_guard<std::mutex> Lock(Mu);
        RP->W.Done = true;
      }
      Cv.notify_all();
    });
  }

  // Latch: wake on worker completion (or every millisecond to poll the
  // parent's token — CancellationToken has no chaining API). The first
  // conclusive verdict cancels the losers; every worker must terminate
  // before the coordinator touches their results, since everything they
  // reference lives on this frame.
  {
    std::unique_lock<std::mutex> Lock(Mu);
    bool FiredCancel = false;
    const auto allDone = [&] {
      for (const Racer &R : Racers)
        if (!R.W.Done)
          return false;
      return true;
    };
    const auto anyConclusive = [&] {
      for (const Racer &R : Racers)
        if (R.W.Done && conclusive(R.W, R.Hooks))
          return true;
      return false;
    };
    while (!allDone()) {
      if (!FiredCancel && (Parent.cancelled() || anyConclusive())) {
        for (Racer &R : Racers)
          R.Cancel.cancel();
        FiredCancel = true;
      }
      Cv.wait_for(Lock, std::chrono::milliseconds(1));
    }
  }

  StatClausesKept += State.Session.stats().ClausesKept - KeptBefore;
  int64_t ExchangesApplied = 0;
  for (const Racer &R : Racers)
    ExchangesApplied += R.Hooks.BoundExchanges;
  StatBoundExchanges += ExchangesApplied;

  // --- Merge every engine's effort into the loop statistics (truthful
  // telemetry: racing costs several engines' work, and budgetNodes()
  // must reflect it). ---
  IiAttempt &Attempt = C.Attempt;
  for (Racer &R : Racers) {
    C.Stats.Nodes += R.W.Scratch.Nodes - SeedNodes;
    C.Stats.PbConflicts += R.W.Scratch.PbConflicts - SeedConflicts;
    C.Stats.SimplexIterations += R.W.Scratch.SimplexIterations;
    C.Stats.WarmLpSolves += R.W.Scratch.WarmLpSolves;
    C.Stats.ColdLpSolves += R.W.Scratch.ColdLpSolves;
    C.Stats.WarmLpIterations += R.W.Scratch.WarmLpIterations;
    C.Stats.LpRefactorizations += R.W.Scratch.LpRefactorizations;
    C.Stats.LpEtaNonzeros += R.W.Scratch.LpEtaNonzeros;
    C.Stats.PbPropagations += R.W.Scratch.PbPropagations;
    C.Stats.PbRestarts += R.W.Scratch.PbRestarts;
    C.Stats.PbLearned += R.W.Scratch.PbLearned;
    Attempt.Nodes += R.W.Attempt.Nodes;
    Attempt.SimplexIterations += R.W.Attempt.SimplexIterations;
    Attempt.PbConflicts += R.W.Attempt.PbConflicts;
    Attempt.PbPropagations += R.W.Attempt.PbPropagations;
  }
  Attempt.BoundExchanges = ExchangesApplied;

  // --- Resolve verdicts. A refutation below the shared cell commits
  // the shared incumbent (another engine's schedule) as optimal. ---
  struct Verdict {
    bool Valid = false;
    bool Infeasible = false;
    std::optional<ModuloSchedule> Schedule;
    int64_t ObjVal = 0;
  };
  auto Resolve = [&](Racer &R) -> Verdict {
    Verdict V;
    if (!conclusive(R.W, R.Hooks))
      return V;
    V.Valid = true;
    if (R.W.Schedule) {
      V.Schedule = std::move(R.W.Schedule);
      V.ObjVal = int64_t(std::llround(R.W.Scratch.SecondaryObjective));
      return V;
    }
    if (R.Hooks.RefutedBelowExternal) {
      int64_t K = INT64_MAX;
      V.Schedule = Shared.best(K);
      V.ObjVal = K;
      if (!V.Schedule) {
        std::fprintf(stderr,
                     "fatal: portfolio refuted below a shared bound "
                     "with no shared incumbent at II=%d\n",
                     C.II);
        std::abort();
      }
      return V;
    }
    V.Infeasible = true;
    return V;
  };
  std::vector<Verdict> Verdicts;
  Verdicts.reserve(Racers.size());
  for (Racer &R : Racers)
    Verdicts.push_back(Resolve(R));

  // Engines that finished before the cancellation landed produced
  // independent exact answers and must agree — a mismatch is an engine
  // bug, never a result.
  Verdict *First = nullptr;
  Racer *FirstR = nullptr;
  for (size_t I = 0; I != Verdicts.size(); ++I) {
    if (!Verdicts[I].Valid)
      continue;
    if (!First) {
      First = &Verdicts[I];
      FirstR = &Racers[I];
      continue;
    }
    const Verdict &V = Verdicts[I];
    const bool Agree = First->Infeasible == V.Infeasible &&
                       (First->Infeasible || First->ObjVal == V.ObjVal);
    if (!Agree) {
      std::fprintf(stderr,
                   "fatal: portfolio engines disagree at II=%d: "
                   "%s={infeasible=%d obj=%lld} "
                   "%s={infeasible=%d obj=%lld}\n",
                   C.II, FirstR->E->name(), First->Infeasible ? 1 : 0,
                   (long long)First->ObjVal, Racers[I].E->name(),
                   V.Infeasible ? 1 : 0, (long long)V.ObjVal);
      std::abort();
    }
  }

  if (!First) {
    // No engine decided the II: the parent cancelled the race, or every
    // engine was censored by its budget.
    if (Parent.cancelled()) {
      Attempt.Status = MipStatus::Cancelled;
      Attempt.Cancelled = true;
      return std::nullopt;
    }
    Attempt.Status = MipStatus::Limit;
    for (const Racer &R : Racers) {
      C.Stats.TimedOut |= R.W.Scratch.TimedOut;
      C.Stats.NodeLimitHit |= R.W.Scratch.NodeLimitHit;
    }
    for (Racer &R : Racers)
      if (R.W.Attempt.Audit) {
        Attempt.Audit = std::move(R.W.Attempt.Audit); // Censored incumbent.
        break;
      }
    return std::nullopt;
  }

  // Fixed engine preference: when several verdicts are conclusive the
  // earliest registered child's is committed, so the attempt record
  // (and any explanation/audit attached to it) is deterministic
  // regardless of race timing.
  Verdict &V = *First;
  Racer &W = *FirstR;

  Attempt.Winner = W.E->name();
  bumpWinner(W.E->name());
  Attempt.Variables = W.W.Attempt.Variables;
  Attempt.Constraints = W.W.Attempt.Constraints;
  Attempt.Explain = std::move(W.W.Attempt.Explain);
  Attempt.Audit = std::move(W.W.Attempt.Audit);

  if (V.Infeasible) {
    Attempt.Status = MipStatus::Infeasible;
    Attempt.WindowInfeasible = W.W.Attempt.WindowInfeasible;
    return std::nullopt;
  }

  Attempt.Status = MipStatus::Optimal;
  Attempt.Scheduled = true;
  if (Opts.Explain && !Attempt.Audit) {
    // Optimality proved by the refutation half of a split verdict (one
    // engine found the schedule, another exhausted everything better);
    // there is no relaxation bound to audit against.
    OptimalityAudit A;
    A.FinalObjective = double(V.ObjVal);
    A.Proof = "optimal";
    Attempt.Audit = std::move(A);
  }
  C.Stats.Variables = W.W.Attempt.Variables;
  C.Stats.Constraints = W.W.Attempt.Constraints;
  C.Stats.SecondaryObjective = double(V.ObjVal);
  State.PhaseHint = V.Schedule->times();
  return std::move(V.Schedule);
}
