//===- ilpsched/PortfolioAttempt.cpp - ILP/PB race coordination -----------===//

#include "ilpsched/PortfolioAttempt.h"

#include "ilpsched/OptimalScheduler.h"
#include "ilpsched/PbFormulation.h"
#include "lp/SolveContext.h"
#include "support/Telemetry.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

using namespace modsched;
using namespace modsched::ilp;

void SharedIncumbent::publish(int64_t K, const ModuloSchedule &S,
                              const char *Src) {
  (void)Src;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (K < Obj) {
      Obj = K;
      Schedule = S;
    }
  }
  // Tighten the lock-free cell monotonically; a stale larger value must
  // never overwrite a tighter one published concurrently.
  int64_t Cur = Bound.load(std::memory_order_acquire);
  while (K < Cur &&
         !Bound.compare_exchange_weak(Cur, K, std::memory_order_acq_rel)) {
  }
}

std::optional<ModuloSchedule> SharedIncumbent::best(int64_t &K) const {
  std::lock_guard<std::mutex> Lock(Mu);
  K = Obj;
  return Schedule;
}

namespace {

telemetry::Counter StatRaces("ilpsched", "portfolio.races",
                             "II attempts raced by both engines");
telemetry::Counter StatWinnerIlp("ilpsched", "portfolio.winner_ilp",
                                 "Attempts committed from the ILP engine");
telemetry::Counter StatWinnerPb("ilpsched", "portfolio.winner_pb",
                                "Attempts committed from the PB engine");
telemetry::Counter StatBoundExchanges("ilpsched",
                                      "portfolio.bound_exchanges",
                                      "Cross-engine incumbent bounds "
                                      "applied (ILP prunes + PB "
                                      "injections)");
telemetry::Counter StatClausesKept("ilpsched", "portfolio.clauses_kept",
                                   "Learned clauses retained in the "
                                   "persistent PB session at attempt "
                                   "retirement");
telemetry::Counter StatPbIneligible("ilpsched", "portfolio.pb_ineligible",
                                    "Attempts where PB sat out "
                                    "(wide-coefficient MinLife or "
                                    "unsupported formulation)");

/// Everything one racing engine produces: its verdict-bearing attempt
/// record, its scratch statistics (seeded with the loop's budget spend
/// so the shared node budget means the same thing it does
/// sequentially), and its schedule, if any.
struct WorkerResult {
  std::optional<ModuloSchedule> Schedule;
  IiAttempt Attempt;
  ScheduleResult Scratch;
  bool Done = false; ///< Guarded by the coordinator latch mutex.
};

/// A worker's verdict is conclusive when it decides the II: a verified
/// optimal schedule, a genuine infeasibility proof, or a refutation of
/// everything below the shared incumbent (which, combined with that
/// incumbent, proves it optimal). Budget expiry and cancellation decide
/// nothing.
bool conclusive(const WorkerResult &W, const PortfolioEngineHooks &H) {
  if (W.Attempt.Cancelled)
    return false;
  if (W.Attempt.Scheduled || H.RefutedBelowExternal)
    return true;
  return W.Attempt.Status == MipStatus::Infeasible;
}

} // namespace

std::optional<ModuloSchedule>
OptimalModuloScheduler::schedulePortfolioAttempt(
    const DependenceGraph &G, int II, ScheduleResult &Stats,
    double TimeBudget, lp::SolveContext *Ctx, IiAttempt &Attempt,
    PortfolioState &State) const {
  const Objective Obj = Opts.Formulation.Obj;
  const int64_t KeptBefore = State.Session.stats().ClausesKept;

  // --- Eligibility: which engines contest this attempt. ---
  bool PbEligible = PbFormulation::supports(Opts.Formulation);
  if (PbEligible && Obj == Objective::MinLife &&
      II > Opts.PortfolioPbCoeffLimit) {
    // MinLife rows carry objective/lifetime coefficients that scale
    // with II; past the width threshold the CDCL engine's cardinality
    // reasoning degrades into slow generic PB arithmetic and it never
    // wins the race — don't burn a worker on it.
    PbEligible = false;
  }
  if (!PbEligible) {
    ++StatPbIneligible;
    std::optional<ModuloSchedule> S =
        scheduleIlpAttempt(G, II, Stats, TimeBudget, Ctx, Attempt);
    if (S || (!Attempt.Cancelled &&
              Attempt.Status == MipStatus::Infeasible)) {
      Attempt.Winner = "ilp";
      ++StatWinnerIlp;
    }
    return S;
  }
  if (Obj == Objective::None && Opts.PortfolioIlpMinPbVars > 0 &&
      G.numOperations() * II <= Opts.PortfolioIlpMinPbVars) {
    // Tiny feasibility instance: the CDCL engine decides these orders
    // of magnitude faster than a B&B warm-up (EXPERIMENTS.md E11), so
    // the ILP sits out and PB runs inline.
    PortfolioEngineHooks Hooks;
    if (Opts.PortfolioPersistentPb)
      Hooks.Session = &State.Session;
    if (!State.PhaseHint.empty())
      Hooks.PhaseHint = &State.PhaseHint;
    std::optional<ModuloSchedule> S =
        schedulePbAttempt(G, II, Stats, TimeBudget, Ctx, Attempt, &Hooks);
    StatClausesKept += State.Session.stats().ClausesKept - KeptBefore;
    if (S || (!Attempt.Cancelled &&
              Attempt.Status == MipStatus::Infeasible)) {
      Attempt.Winner = "pb";
      ++StatWinnerPb;
    }
    if (S)
      State.PhaseHint = S->times();
    return S;
  }

  // --- Race both engines. ---
  ++StatRaces;
  if (!State.Pool)
    State.Pool = std::make_unique<ThreadPool>(2);

  lp::SolveContext LocalCtx;
  lp::SolveContext &Parent = Ctx ? *Ctx : LocalCtx;

  SharedIncumbent Shared;
  const bool Exchange = Obj != Objective::None;

  CancellationSource IlpCancel, PbCancel;
  lp::SolveContext IlpCtx, PbCtx;
  IlpCtx.DeadlineSeconds = Parent.DeadlineSeconds;
  IlpCtx.Cancel = IlpCancel.token();
  PbCtx.DeadlineSeconds = Parent.DeadlineSeconds;
  PbCtx.Cancel = PbCancel.token();

  PortfolioEngineHooks IlpHooks, PbHooks;
  if (Exchange) {
    IlpHooks.ExternalBound = &Shared.Bound;
    IlpHooks.OnIncumbent = [&Shared](int64_t K, const ModuloSchedule &S) {
      Shared.publish(K, S, "ilp");
    };
    PbHooks.ExternalBound = &Shared.Bound;
    PbHooks.OnIncumbent = [&Shared](int64_t K, const ModuloSchedule &S) {
      Shared.publish(K, S, "pb");
    };
  }
  if (Opts.PortfolioPersistentPb)
    PbHooks.Session = &State.Session;
  if (!State.PhaseHint.empty())
    PbHooks.PhaseHint = &State.PhaseHint;

  WorkerResult Ilp, Pb;
  const int64_t SeedNodes = Stats.Nodes;
  const int64_t SeedConflicts = Stats.PbConflicts;
  // Each worker sees the loop's budget spend so far (like ParallelRace
  // slots, the budget is granted to each independently — they cannot
  // see each other's spend without racing on it).
  for (WorkerResult *W : {&Ilp, &Pb}) {
    W->Attempt.II = II;
    W->Scratch.Nodes = SeedNodes;
    W->Scratch.PbConflicts = SeedConflicts;
  }

  std::mutex Mu;
  std::condition_variable Cv;
  State.Pool->submit([&] {
    Ilp.Schedule = scheduleIlpAttempt(G, II, Ilp.Scratch, TimeBudget,
                                      &IlpCtx, Ilp.Attempt, &IlpHooks);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Ilp.Done = true;
    }
    Cv.notify_all();
  });
  State.Pool->submit([&] {
    Pb.Schedule = schedulePbAttempt(G, II, Pb.Scratch, TimeBudget, &PbCtx,
                                    Pb.Attempt, &PbHooks);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Pb.Done = true;
    }
    Cv.notify_all();
  });

  // Latch: wake on worker completion (or every millisecond to poll the
  // parent's token — CancellationToken has no chaining API). The first
  // conclusive verdict cancels the loser; both workers must terminate
  // before the coordinator touches their results, since everything they
  // reference lives on this frame.
  {
    std::unique_lock<std::mutex> Lock(Mu);
    bool FiredCancel = false;
    while (!(Ilp.Done && Pb.Done)) {
      if (!FiredCancel &&
          (Parent.cancelled() ||
           (Ilp.Done && conclusive(Ilp, IlpHooks)) ||
           (Pb.Done && conclusive(Pb, PbHooks)))) {
        IlpCancel.cancel();
        PbCancel.cancel();
        FiredCancel = true;
      }
      Cv.wait_for(Lock, std::chrono::milliseconds(1));
    }
  }

  StatClausesKept += State.Session.stats().ClausesKept - KeptBefore;
  StatBoundExchanges += IlpHooks.BoundExchanges + PbHooks.BoundExchanges;

  // --- Merge both engines' effort into the loop statistics (truthful
  // telemetry: racing costs two engines' work, and budgetNodes() must
  // reflect it). ---
  for (WorkerResult *W : {&Ilp, &Pb}) {
    Stats.Nodes += W->Scratch.Nodes - SeedNodes;
    Stats.PbConflicts += W->Scratch.PbConflicts - SeedConflicts;
    Stats.SimplexIterations += W->Scratch.SimplexIterations;
    Stats.WarmLpSolves += W->Scratch.WarmLpSolves;
    Stats.ColdLpSolves += W->Scratch.ColdLpSolves;
    Stats.WarmLpIterations += W->Scratch.WarmLpIterations;
    Stats.LpRefactorizations += W->Scratch.LpRefactorizations;
    Stats.LpEtaNonzeros += W->Scratch.LpEtaNonzeros;
    Stats.PbPropagations += W->Scratch.PbPropagations;
    Stats.PbRestarts += W->Scratch.PbRestarts;
    Stats.PbLearned += W->Scratch.PbLearned;
  }
  Attempt.Nodes = Ilp.Attempt.Nodes + Pb.Attempt.Nodes;
  Attempt.SimplexIterations =
      Ilp.Attempt.SimplexIterations + Pb.Attempt.SimplexIterations;
  Attempt.PbConflicts = Ilp.Attempt.PbConflicts + Pb.Attempt.PbConflicts;
  Attempt.PbPropagations =
      Ilp.Attempt.PbPropagations + Pb.Attempt.PbPropagations;
  Attempt.BoundExchanges = IlpHooks.BoundExchanges + PbHooks.BoundExchanges;

  // --- Resolve verdicts. A refutation below the shared cell commits
  // the shared incumbent (the other engine's schedule) as optimal. ---
  struct Verdict {
    bool Valid = false;
    bool Infeasible = false;
    std::optional<ModuloSchedule> Schedule;
    int64_t ObjVal = 0;
  };
  auto Resolve = [&](WorkerResult &W,
                     const PortfolioEngineHooks &H) -> Verdict {
    Verdict V;
    if (!conclusive(W, H))
      return V;
    V.Valid = true;
    if (W.Schedule) {
      V.Schedule = std::move(W.Schedule);
      V.ObjVal = int64_t(std::llround(W.Scratch.SecondaryObjective));
      return V;
    }
    if (H.RefutedBelowExternal) {
      int64_t K = INT64_MAX;
      V.Schedule = Shared.best(K);
      V.ObjVal = K;
      if (!V.Schedule) {
        std::fprintf(stderr,
                     "fatal: portfolio refuted below a shared bound "
                     "with no shared incumbent at II=%d\n",
                     II);
        std::abort();
      }
      return V;
    }
    V.Infeasible = true;
    return V;
  };
  Verdict VIlp = Resolve(Ilp, IlpHooks);
  Verdict VPb = Resolve(Pb, PbHooks);

  if (VIlp.Valid && VPb.Valid) {
    // Both finished before the cancellation landed: their verdicts are
    // independent exact answers and must agree — a mismatch is an
    // engine bug, never a result.
    const bool Agree = VIlp.Infeasible == VPb.Infeasible &&
                       (VIlp.Infeasible || VIlp.ObjVal == VPb.ObjVal);
    if (!Agree) {
      std::fprintf(stderr,
                   "fatal: portfolio engines disagree at II=%d: "
                   "ilp={infeasible=%d obj=%lld} "
                   "pb={infeasible=%d obj=%lld}\n",
                   II, VIlp.Infeasible ? 1 : 0,
                   (long long)VIlp.ObjVal, VPb.Infeasible ? 1 : 0,
                   (long long)VPb.ObjVal);
      std::abort();
    }
  }

  // Fixed engine preference: when both are conclusive the ILP verdict
  // is committed, so the attempt record (and any explanation/audit
  // attached to it) is deterministic regardless of race timing.
  const bool UseIlp = VIlp.Valid;
  Verdict &V = UseIlp ? VIlp : VPb;
  WorkerResult &W = UseIlp ? Ilp : Pb;

  if (!V.Valid) {
    // Neither engine decided the II: the parent cancelled the race, or
    // both engines were censored by their budgets.
    if (Parent.cancelled()) {
      Attempt.Status = MipStatus::Cancelled;
      Attempt.Cancelled = true;
      return std::nullopt;
    }
    Attempt.Status = MipStatus::Limit;
    Stats.TimedOut |= Ilp.Scratch.TimedOut || Pb.Scratch.TimedOut;
    Stats.NodeLimitHit |=
        Ilp.Scratch.NodeLimitHit || Pb.Scratch.NodeLimitHit;
    if (Ilp.Attempt.Audit)
      Attempt.Audit = std::move(Ilp.Attempt.Audit); // Censored incumbent.
    return std::nullopt;
  }

  Attempt.Winner = UseIlp ? "ilp" : "pb";
  if (UseIlp)
    ++StatWinnerIlp;
  else
    ++StatWinnerPb;
  Attempt.Variables = W.Attempt.Variables;
  Attempt.Constraints = W.Attempt.Constraints;
  Attempt.Explain = std::move(W.Attempt.Explain);
  Attempt.Audit = std::move(W.Attempt.Audit);

  if (V.Infeasible) {
    Attempt.Status = MipStatus::Infeasible;
    Attempt.WindowInfeasible = W.Attempt.WindowInfeasible;
    return std::nullopt;
  }

  Attempt.Status = MipStatus::Optimal;
  Attempt.Scheduled = true;
  if (Opts.Explain && !Attempt.Audit) {
    // Optimality proved by the refutation half of a split verdict (one
    // engine found the schedule, the other exhausted everything
    // better); there is no relaxation bound to audit against.
    OptimalityAudit A;
    A.FinalObjective = double(V.ObjVal);
    A.Proof = "optimal";
    Attempt.Audit = std::move(A);
  }
  Stats.Variables = W.Attempt.Variables;
  Stats.Constraints = W.Attempt.Constraints;
  Stats.SecondaryObjective = double(V.ObjVal);
  State.PhaseHint = V.Schedule->times();
  return std::move(V.Schedule);
}
