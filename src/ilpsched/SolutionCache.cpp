//===- ilpsched/SolutionCache.cpp - Content-addressed results -------------===//

#include "ilpsched/SolutionCache.h"

#include "sched/Verifier.h"
#include "support/Hash.h"
#include "support/Telemetry.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

using namespace modsched;

namespace {

telemetry::Counter StatHits("ilpsched", "cache.hits",
                            "Solution-cache lookups served (full-form "
                            "match, verifier-re-checked)");
telemetry::Counter StatMisses("ilpsched", "cache.misses",
                              "Solution-cache lookups missed (absent, "
                              "collided, or inexact labeling)");
telemetry::Counter StatInserts("ilpsched", "cache.inserts",
                               "Clean results inserted into the "
                               "solution cache");
telemetry::Counter StatEvictions("ilpsched", "cache.evictions",
                                 "LRU entries evicted at capacity");

} // namespace

SolutionCache &SolutionCache::global() {
  static SolutionCache Cache;
  return Cache;
}

uint64_t SolutionCache::requestKey(const SchedulerOptions &Opts) {
  uint64_t H = hashMix(0x72657175u); // "requ"
  H = hashCombine(H, uint64_t(Opts.MaxIiIncrease));
  H = hashCombine(H, uint64_t(Opts.NodeLimit));
  H = hashCombine(H, uint64_t(Opts.Explain ? 1 : 0));
  return H;
}

std::optional<SolutionCache::Hit>
SolutionCache::lookup(const Problem &P, uint64_t RequestKey) {
  if (!P.hashExact()) {
    // A budget-truncated canonical labeling is only relabeling-
    // INVARIANT, not relabeling-COMPLETE; its form cannot prove two
    // graphs isomorphic, so such Problems sit the cache out entirely.
    ++StatMisses;
    return std::nullopt;
  }
  const uint64_t Key = hashCombine(P.canonicalHash(), RequestKey);

  Hit H;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Key);
    if (It == Map.end()) {
      ++StatMisses;
      return std::nullopt;
    }
    Entry &E = *It->second;
    if (E.RequestKey != RequestKey || E.Form != P.canonicalForm()) {
      // 64-bit collision: same combined key, different problem. Degrade
      // to a miss — correctness never rests on the hash alone.
      ++StatMisses;
      return std::nullopt;
    }
    Lru.splice(Lru.begin(), Lru, It->second);

    // Replay the canonical-order times through this Problem's own
    // canonical index: request node Op sits at canonical position
    // canonicalIndex()[Op], whichever numbering the caller used.
    const std::vector<int> &CanonIndex = P.canonicalIndex();
    assert(E.CanonTimes.size() == CanonIndex.size() &&
           "full-form match with mismatched node count");
    std::vector<int> Times(CanonIndex.size(), 0);
    for (std::size_t Op = 0; Op != CanonIndex.size(); ++Op)
      Times[Op] = E.CanonTimes[std::size_t(CanonIndex[Op])];
    H.II = E.II;
    H.SecondaryObjective = E.SecondaryObjective;
    H.Schedule = ModuloSchedule(E.II, std::move(Times));
  }

  // Mandatory re-verification against the REQUESTING graph and machine
  // (outside the lock — the verifier is pure). Isomorphism guarantees
  // this passes; a failure means the canonical machinery or the cache
  // itself is corrupt, and no schedule may escape that.
  if (std::optional<std::string> Err =
          verifySchedule(P.graph(), P.machine(), H.Schedule)) {
    std::fprintf(stderr,
                 "fatal: solution-cache hit failed re-verification: %s\n",
                 Err->c_str());
    std::abort();
  }
  ++StatHits;
  return H;
}

void SolutionCache::insert(const Problem &P, uint64_t RequestKey,
                           const ScheduleResult &R) {
  // Only clean conclusive solves: a censored result's verdict depends
  // on the budget that censored it, and an infeasible-everywhere loop
  // has no schedule to replay. (Negative results are NOT cached — the
  // II ladder re-proves them, keeping entries self-evidently sound.)
  if (!R.Found || R.TimedOut || R.NodeLimitHit || R.CacheHit)
    return;
  if (!P.hashExact())
    return;

  const std::vector<int> &CanonIndex = P.canonicalIndex();
  assert(R.Schedule.numOperations() == int(CanonIndex.size()) &&
         "schedule/graph node count mismatch at cache insert");

  Entry E;
  E.Key = hashCombine(P.canonicalHash(), RequestKey);
  E.RequestKey = RequestKey;
  E.Form = P.canonicalForm();
  E.CanonTimes.assign(CanonIndex.size(), 0);
  for (std::size_t Op = 0; Op != CanonIndex.size(); ++Op)
    E.CanonTimes[std::size_t(CanonIndex[Op])] = R.Schedule.time(int(Op));
  E.II = R.II;
  E.SecondaryObjective = R.SecondaryObjective;

  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(E.Key);
  if (It != Map.end()) {
    *It->second = std::move(E);
    Lru.splice(Lru.begin(), Lru, It->second);
    ++StatInserts;
    return;
  }
  Lru.push_front(std::move(E));
  Map.emplace(Lru.front().Key, Lru.begin());
  ++StatInserts;
  while (Lru.size() > MaxEntries) {
    Map.erase(Lru.back().Key);
    Lru.pop_back();
    ++StatEvictions;
  }
}

std::size_t SolutionCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Lru.size();
}

void SolutionCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Lru.clear();
  Map.clear();
}
