//===- ilpsched/SolutionCache.h - Content-addressed results -----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, thread-safe, content-addressed cache of verified optimal
/// scheduling results, keyed on the canonical Problem hash
/// (sched/Problem.h) plus a digest of the schedule-relevant scheduler
/// options. Two loops that differ only by node numbering or resource
/// naming share one entry: the cached schedule is stored in canonical
/// node order and replayed through the requesting Problem's canonical
/// index.
///
/// Soundness stance (docs/FORMULATIONS.md "no silent wrong answers"):
///
///   * Only clean conclusive solves are inserted — censored (TimedOut /
///     NodeLimitHit) results and Problems whose canonical labeling ran
///     out of refinement budget (hashExact() == false) never enter.
///   * A lookup matches on the FULL canonical form, not just the hash,
///     so a 64-bit collision degrades to a miss, never a wrong hit.
///   * Every hit is re-verified against the requesting graph/machine
///     through sched/Verifier before it is reported; a verifier
///     rejection is a cache bug and aborts.
///
/// Off by default (SchedulerOptions::Cache / MODSCHED_CACHE) so solver
/// effort numbers in benchmarks mean what they say; cache-served
/// results report CacheHit with zero attempts rather than masquerading
/// as solver work. Counters: ilpsched/cache.{hits,misses,inserts,
/// evictions} (docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILPSCHED_SOLUTIONCACHE_H
#define MODSCHED_ILPSCHED_SOLUTIONCACHE_H

#include "ilpsched/OptimalScheduler.h"
#include "sched/Problem.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace modsched {

/// Process-wide LRU cache mapping (canonical Problem, request key) to a
/// verified optimal ScheduleResult essence.
class SolutionCache {
public:
  /// Default entry bound; at a few hundred bytes per cached loop this
  /// keeps the global cache well under a few MB.
  static constexpr std::size_t DefaultMaxEntries = 1024;

  explicit SolutionCache(std::size_t MaxEntries = DefaultMaxEntries)
      : MaxEntries(MaxEntries ? MaxEntries : 1) {}
  SolutionCache(const SolutionCache &) = delete;
  SolutionCache &operator=(const SolutionCache &) = delete;

  /// The process-wide instance consulted by OptimalModuloScheduler when
  /// SchedulerOptions::Cache is on.
  static SolutionCache &global();

  /// Digest of the schedule-relevant request options NOT already part
  /// of the Problem's canonical form: MaxIiIncrease and NodeLimit bound
  /// which verdicts are reachable, Explain changes what a result
  /// carries. Backend / search strategy / warm-start / branching / LP
  /// engine are excluded by the repo's verdict-invariance contract
  /// (identical II and objective whichever engine decides), and the
  /// wall-clock limit is excluded because clean (uncensored) results
  /// do not depend on it.
  static uint64_t requestKey(const SchedulerOptions &Opts);

  /// What a hit yields: the replayed schedule (already permuted into
  /// the requesting Problem's node ids and verifier-checked) plus the
  /// verdict scalars.
  struct Hit {
    ModuloSchedule Schedule;
    int II = 0;
    double SecondaryObjective = 0.0;
  };

  /// Looks up \p P under \p RequestKey. On a full-form match, replays
  /// the stored canonical schedule through P.canonicalIndex(),
  /// re-verifies it via sched/Verifier (aborting on rejection — a
  /// corrupt cache must never produce a schedule), and returns it.
  std::optional<Hit> lookup(const Problem &P, uint64_t RequestKey);

  /// Inserts \p R for (\p P, \p RequestKey) if it is a clean conclusive
  /// solve (Found, not censored) and P's canonical labeling is exact;
  /// silently refuses otherwise. Replaces an existing entry for the
  /// same key.
  void insert(const Problem &P, uint64_t RequestKey,
              const ScheduleResult &R);

  /// Current number of cached entries.
  std::size_t size() const;

  /// Drops every entry (counters are telemetry and unaffected).
  void clear();

private:
  struct Entry {
    uint64_t Key = 0; ///< hashCombine(canonicalHash, RequestKey).
    uint64_t RequestKey = 0;
    std::vector<uint64_t> Form; ///< Full canonical form (collision check).
    std::vector<int> CanonTimes; ///< Start times in canonical node order.
    int II = 0;
    double SecondaryObjective = 0.0;
  };

  mutable std::mutex Mu;
  std::size_t MaxEntries;
  std::list<Entry> Lru; ///< Front = most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Map;
};

} // namespace modsched

#endif // MODSCHED_ILPSCHED_SOLUTIONCACHE_H
