//===- ilpsched/PbFormulation.h - PB modulo scheduling models ---*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes the paper's modulo-scheduling formulation for the
/// conflict-driven pseudo-Boolean backend (pb::Solver). The structured
/// formulation's whole point — every dependence/resource row is
/// 0-1-structured (Ineq. 20) — makes this encoding direct:
///
///   a[r][i]  row-assignment binaries become literals; Eq. (1) is an
///            at-least-one clause plus an at-most-one cardinality row.
///   k[i]     integer stages become ORDER-ENCODED bit vectors over the
///            ASAP/ALAP stage window [KMin, KMax]: bit s means
///            "k_i >= KMin + s + 1", with monotonicity clauses
///            bit_{s} -> bit_{s-1}, so k_i = KMin + sum of bits and any
///            +/-1 coefficient on k_i turns into +/-1 coefficients on
///            bits — the dependence rows stay cardinality constraints.
///   deps     Ineq. (20)/(19) per MRT row, or the traditional Ineq. (4)
///            as a general PB row (coefficients r and II) — the same
///            slow-by-design ablation the ILP backend offers.
///   res      Ineq. (5) counting rows (at-most-Count cardinalities;
///            duplicate terms merge into coefficient-2 PB rows exactly
///            like lp::Model does).
///
/// Secondary objectives (MinReg / MinBuff / MinLife, structured style)
/// reuse the kill pseudo-op machinery of ilpsched/Formulation with
/// order-encoded kill stages and buffer/MaxLive counters. The objective
/// is NOT part of the PB model: optimization runs as solution-improving
/// descent — each incumbent adds a selector-gated "objective <= best-1"
/// PB row and the next solve assumes the selector's negation, so learned
/// clauses persist across bounds (assumption-based incrementality).
///
/// The stage windows, schedule-length budget, and bounds are computed
/// exactly as in ilpsched/Formulation, so both backends decide the same
/// feasible set per II and agree on optimal objective values — the ILP
/// cross-validation the differential tests enforce.
///
/// Not supported (PbFormulation::supports returns false; the scheduler
/// falls back to ILP with a one-time warning): InstanceMapped resource
/// constraints, Objective::MinSL, and ObjectiveStyle::Traditional.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_ILPSCHED_PBFORMULATION_H
#define MODSCHED_ILPSCHED_PBFORMULATION_H

#include "graph/DependenceGraph.h"
#include "ilpsched/Formulation.h"
#include "machine/MachineModel.h"
#include "pb/Incremental.h"
#include "pb/PbSolver.h"
#include "sched/ModuloSchedule.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace modsched {

/// The pseudo-Boolean model for one (graph, machine, II) triple, with
/// decoding metadata and the incremental objective-descent hooks.
class PbFormulation {
public:
  /// Builds the model. When the windows prove II infeasible, valid() is
  /// false and the solver is left empty. With \p ExplainGroups, every
  /// dependence edge and every modeled resource is gated behind a fresh
  /// selector literal (a true selector satisfies its rows outright);
  /// solving under explainAssumptions() enforces all groups, and an
  /// Unsat answer's core names the groups that conflict — the raw
  /// material for graph-level infeasibility witnesses.
  ///
  /// With \p Session, the model is encoded into the session's persistent
  /// solver as one gated attempt instead of a private solver: every
  /// structural row carries the attempt gate, assumptions() includes the
  /// gate assumption, and the caller retires the attempt (hardening the
  /// gate) when done with this II — learned clauses and branching state
  /// carry over to the next attempt. Mutually exclusive with
  /// ExplainGroups (infeasibility forensics always use a fresh model).
  PbFormulation(const DependenceGraph &G, const MachineModel &M, int II,
                const FormulationOptions &Opts, bool ExplainGroups = false,
                pb::AttemptSession *Session = nullptr);

  /// True when \p Opts describes a formulation this backend can encode.
  static bool supports(const FormulationOptions &Opts);

  /// False when II was proved infeasible during window computation.
  bool valid() const { return Valid; }

  pb::Solver &solver() { return S; }
  int ii() const { return II; }
  /// Latest allowed start time (schedule-length budget).
  int maxTime() const { return MaxTime; }

  /// Solver variables / original constraint rows (model-shape telemetry,
  /// the PB analogue of lp::Model rows/columns). Relative to the
  /// session's pre-existing content in shared mode, so the counts stay
  /// comparable across backends.
  int numVariables() const { return S.numVars() - VarBase; }
  int numConstraints() const {
    return int(S.exportRows().size() - ExportBase);
  }

  /// Constraint provenance: Origins[j] is the typed origin of export
  /// row j (same indexing as solver().exportRows()). Built
  /// unconditionally, like the ILP formulation's table.
  const std::vector<RowOrigin> &rowOrigins() const { return Origins; }

  /// ExplainGroups mode: negated group selectors to assume so every
  /// gated group is enforced. Empty when built without ExplainGroups.
  const std::vector<pb::Lit> &explainAssumptions() const {
    return ExplainAssumps;
  }

  /// ExplainGroups mode, after an Unsat answer under
  /// explainAssumptions(): the origins of the groups named by the
  /// solver's unsat core (empty when the core is empty, i.e. the
  /// ungated structural rows alone are unsatisfiable).
  std::vector<RowOrigin> coreOrigins() const;

  /// True when a secondary objective is being minimized.
  bool hasObjective() const { return !ObjTerms.empty() || ObjConst != 0; }

  /// Objective value of the solver's current model.
  int64_t evalObjective() const;

  /// Adds a selector-gated "objective <= Bound" row and replaces the
  /// descent assumption with the new selector's negation. Returns false
  /// when the solver became root-level unsatisfiable (the previous
  /// incumbent is optimal).
  bool pushObjectiveBound(int64_t Bound);

  /// Adds an unconditional "objective <= Bound" row for this attempt —
  /// no descent selector, gated only by the session's attempt gate (or
  /// fully ungated in fresh mode). For externally discovered incumbents
  /// (portfolio cross-engine exchange); must be called at the solver's
  /// root level, i.e. from the pb::Solver::OnRestart hook or between
  /// solves. Returns false when the solver became root-level
  /// unsatisfiable (nothing beats the external incumbent).
  bool injectObjectiveBound(int64_t Bound);

  /// Seeds branching phases from a previous attempt's schedule times
  /// (any II): each operation's row-assignment literals and stage bits
  /// get the polarity the hint implies. Heuristic only — no effect on
  /// the feasible set. No-op in fresh mode or on an invalid model.
  void seedPhases(const std::vector<int> &Times);

  /// Assumption literals for solve(): the session's attempt gate (shared
  /// mode) plus the current objective-descent selector (after the first
  /// pushObjectiveBound).
  const std::vector<pb::Lit> &assumptions() const { return Assumps; }

  /// Objective terms over literals plus constant (for OPB export).
  const std::vector<std::pair<pb::Lit, int64_t>> &objectiveTerms() const {
    return ObjTerms;
  }
  int64_t objectiveConstant() const { return ObjConst; }

  /// Decodes the solver's current model into a modulo schedule.
  ModuloSchedule decode() const;

private:
  /// An order-encoded bounded integer: value = Lo + number of true bits;
  /// bit s (variable BitBase + s) means "value >= Lo + s + 1".
  struct IntVar {
    int Lo = 0;
    int Hi = 0;
    pb::Var BitBase = -1;
    int numBits() const { return Hi - Lo; }
  };

  /// A linear expression over literals with an integer constant.
  struct LinExpr {
    std::vector<std::pair<pb::Lit, int64_t>> Terms;
    int64_t Constant = 0;
  };

  /// Structural-row adds: gated through the attempt session in shared
  /// mode, straight into the private solver in fresh mode (identical
  /// call sequence to the pre-session code, keeping fresh-mode verdicts
  /// and telemetry bit-exact).
  bool structClause(std::vector<pb::Lit> Lits);
  bool structAtLeast(std::vector<pb::Lit> Lits, int64_t Degree);
  bool structLinear(std::vector<std::pair<pb::Lit, int64_t>> Terms,
                    int64_t Degree);

  IntVar makeIntVar(int Lo, int Hi);
  int64_t intValue(const IntVar &V) const;
  /// Appends Coeff * V to \p E (constant + per-bit terms).
  void appendInt(LinExpr &E, const IntVar &V, int64_t Coeff) const;
  /// Appends Coeff * sum of row literals (Base + Lo .. Base + Hi).
  void appendRowRange(LinExpr &E, pb::Var RowBase, int Lo, int Hi,
                      int64_t Coeff) const;
  void addLe(LinExpr E, int64_t Rhs);
  void addGe(LinExpr E, int64_t Rhs);

  pb::Var aVar(int Row, int Op) const { return ABase + Op * II + Row; }
  pb::Lit aLit(int Row, int Op) const { return pb::posLit(aVar(Row, Op)); }

  void buildAssignment(pb::Var RowBase);
  void emitDependence(pb::Var SrcRowBase, const IntVar &SrcK,
                      pb::Var DstRowBase, const IntVar &DstK, int Latency,
                      int Distance, const RowOrigin &Origin);

  /// Tags every export row emitted since the previous call with \p O.
  void noteRows(const RowOrigin &O);
  /// ExplainGroups: gate subsequent addGe/addLe rows behind a fresh
  /// selector recorded with \p O; endGroup() closes the group.
  void beginGroup(const RowOrigin &O);
  void endGroup() { GateVar = -1; }
  void buildResource();
  void buildObjective();
  void buildKillOps();
  void appendLiveCount(LinExpr &E, int Reg, int Row) const;
  int minLifetimeBound(int Reg) const;

  const DependenceGraph &G;
  const MachineModel &M;
  int II;
  FormulationOptions Opts;
  bool ExplainGroups = false;
  bool Valid = false;
  int MaxTime = 0;
  int StageCount = 0;

  /// Shared-session mode: the persistent session owning the solver, or
  /// null in fresh mode (OwnSolver is used). S aliases whichever solver
  /// this formulation encodes into.
  pb::AttemptSession *Session = nullptr;
  pb::Solver OwnSolver;
  pb::Solver &S;
  /// Session content preceding this formulation (0 in fresh mode).
  int VarBase = 0;
  size_t ExportBase = 0;
  pb::Var ABase = 0;
  std::vector<IntVar> KVars;
  std::vector<int> Asap, Alap;

  /// Kill pseudo-op variables (MinReg / MinLife / RegisterLimit).
  std::vector<pb::Var> KillRowBase;
  std::vector<IntVar> KillStage;
  /// MinBuff buffer counters / MinReg MaxLive counter.
  std::vector<IntVar> BufferVars;
  IntVar MaxLiveVar;

  std::vector<std::pair<pb::Lit, int64_t>> ObjTerms;
  int64_t ObjConst = 0;
  std::vector<pb::Lit> Assumps;

  /// Export-row-id -> origin side table (parallel to S.exportRows()).
  std::vector<RowOrigin> Origins;
  /// ExplainGroups: active gate selector (-1 = none) and the selector ->
  /// origin map plus the ready-to-use negated-selector assumptions.
  pb::Var GateVar = -1;
  std::vector<std::pair<pb::Var, RowOrigin>> GroupSels;
  std::vector<pb::Lit> ExplainAssumps;
};

} // namespace modsched

#endif // MODSCHED_ILPSCHED_PBFORMULATION_H
