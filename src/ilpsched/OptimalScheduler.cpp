//===- ilpsched/OptimalScheduler.cpp - Min-II ILP search ------------------===//

#include "ilpsched/OptimalScheduler.h"

#include "ilpsched/IiSearch.h"
#include "lp/SolveContext.h"
#include "sched/Mii.h"
#include "sched/Verifier.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace modsched;
using namespace modsched::ilp;

namespace {

telemetry::Counter StatLoops("ilpsched", "scheduler.loops",
                             "Loops submitted to the optimal scheduler");
telemetry::Counter StatAttempts("ilpsched", "scheduler.attempts",
                                "Tentative IIs attempted (incl. window-"
                                "infeasible)");
telemetry::Counter StatScheduled("ilpsched", "scheduler.scheduled",
                                 "Loops scheduled successfully");
telemetry::Counter StatTimeouts("ilpsched", "scheduler.timeouts",
                                "Loops abandoned on wall-clock budget "
                                "expiry");
telemetry::Counter StatNodeLimits("ilpsched", "scheduler.node_limits",
                                  "Loops abandoned on node-budget "
                                  "exhaustion");
telemetry::PhaseTimer TimeSchedule("ilpsched", "scheduler.schedule",
                                   "End-to-end min-II search");

} // namespace

std::optional<ModuloSchedule>
OptimalModuloScheduler::scheduleAtIi(const DependenceGraph &G, int II,
                                     ScheduleResult &Stats,
                                     double TimeBudget,
                                     lp::SolveContext *Ctx) const {
  ++StatAttempts;
  Stopwatch AttemptWatch;
  telemetry::SpanScope Span("ilpsched", "scheduler.attempt", {{"ii", II}});

  IiAttempt Attempt;
  Attempt.II = II;
  // Publishes the attempt record on every exit path; scheduleAtIi has
  // four returns and each must leave a truthful telemetry row behind.
  struct PublishOnExit {
    ScheduleResult &Stats;
    IiAttempt &Attempt;
    Stopwatch &Watch;
    ~PublishOnExit() {
      Attempt.Seconds = Watch.seconds();
      Stats.Attempts.push_back(Attempt);
      if (telemetry::tracingEnabled())
        telemetry::instant(
            "ilpsched", "scheduler.attempt_done",
            {{"ii", Attempt.II},
             {"status", ilp::toString(Attempt.Status)},
             {"scheduled", int64_t(Attempt.Scheduled ? 1 : 0)},
             {"window_infeasible",
              int64_t(Attempt.WindowInfeasible ? 1 : 0)},
             {"cancelled", int64_t(Attempt.Cancelled ? 1 : 0)},
             {"nodes", Attempt.Nodes},
             {"seconds", Attempt.Seconds}});
    }
  } Publish{Stats, Attempt, AttemptWatch};

  Formulation F(G, M, II, Opts.Formulation);
  Attempt.Variables = F.model().numVariables();
  Attempt.Constraints = F.model().numConstraints();
  if (!F.valid()) {
    Attempt.WindowInfeasible = true;
    return std::nullopt; // II infeasible within the window budget.
  }

  MipOptions MipOpts;
  MipOpts.TimeLimitSeconds = TimeBudget;
  MipOpts.NodeLimit = Opts.NodeLimit - Stats.Nodes;
  MipOpts.Branching = Opts.Branching;
  MipOpts.StopAtFirstSolution = Opts.Formulation.Obj == Objective::None;
  MipOpts.WarmStart = Opts.WarmStart;
  MipOpts.Lp.Engine = Opts.LpEngine;
  MipSolver Solver(MipOpts);

  // Solve under the caller's context (parallel race slots bring their
  // own, wired to a cancellation source) or a fresh local one — the
  // latter is exactly the historical sequential behavior.
  lp::SolveContext LocalCtx;
  MipResult R = Solver.solve(F.model(), Ctx ? *Ctx : LocalCtx);
  Stats.Nodes += R.Nodes;
  Stats.SimplexIterations += R.SimplexIterations;
  Stats.WarmLpSolves += R.WarmLpSolves;
  Stats.ColdLpSolves += R.ColdLpSolves;
  Stats.WarmLpIterations += R.WarmLpIterations;
  Stats.LpRefactorizations += R.LpRefactorizations;
  Stats.LpEtaNonzeros += R.LpEtaNonzeros;
  Attempt.Status = R.Status;
  Attempt.Nodes = R.Nodes;
  Attempt.SimplexIterations = R.SimplexIterations;

  if (R.Status == MipStatus::Cancelled) {
    // The caller's token stopped the search (e.g. a lower-II sibling in
    // a parallel race won). No verdict about this II; in particular no
    // half-decoded schedule ever escapes a cancelled solve.
    Attempt.Cancelled = true;
    return std::nullopt;
  }
  if (R.Status == MipStatus::Limit) {
    // Budget expired. A feasible-but-unproven incumbent is not reported
    // as an optimal schedule; the caller records which budget censored
    // the attempt (both flags can trip in the same pass).
    if (R.HitNodeLimit)
      Stats.NodeLimitHit = true;
    if (R.HitTimeLimit || !R.HitNodeLimit)
      Stats.TimedOut = true;
    return std::nullopt;
  }
  if (!R.HasSolution)
    return std::nullopt; // Proved infeasible at this II.

  Stats.Variables = F.model().numVariables();
  Stats.Constraints = F.model().numConstraints();
  Stats.SecondaryObjective = R.Objective;
  ModuloSchedule S = F.decode(R.Values);
  // Every ILP schedule is independently re-verified; a failure here means
  // a formulation bug and must never be silently reported as a result.
  if (std::optional<std::string> Err = verifySchedule(G, M, S, F.maxTime())) {
    std::fprintf(stderr, "fatal: ILP produced an invalid schedule: %s\n",
                 Err->c_str());
    std::abort();
  }
  Attempt.Scheduled = true;
  return S;
}

ScheduleResult OptimalModuloScheduler::schedule(const DependenceGraph &G) const {
  ++StatLoops;
  telemetry::TimerScope Time(TimeSchedule,
                             {{"ops", int64_t(G.numOperations())}});
  Stopwatch Watch;
  ScheduleResult Result;
  Result.Mii = mii(G, M);

  std::unique_ptr<IiSearchStrategy> Search =
      makeIiSearchStrategy(Opts.Search, Opts.SearchJobs);
  Search->search(*this, G, Result);

  Result.Seconds = Watch.seconds();
  if (Result.Found)
    ++StatScheduled;
  if (Result.TimedOut)
    ++StatTimeouts;
  if (Result.NodeLimitHit)
    ++StatNodeLimits;
  if (telemetry::tracingEnabled())
    telemetry::instant(
        "ilpsched", "scheduler.done",
        {{"mii", Result.Mii},
         {"ii", Result.II},
         {"found", int64_t(Result.Found ? 1 : 0)},
         {"timed_out", int64_t(Result.TimedOut ? 1 : 0)},
         {"node_limit_hit", int64_t(Result.NodeLimitHit ? 1 : 0)},
         {"nodes", Result.Nodes},
         {"seconds", Result.Seconds}});
  return Result;
}
