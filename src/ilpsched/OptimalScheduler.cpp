//===- ilpsched/OptimalScheduler.cpp - Min-II ILP search ------------------===//

#include "ilpsched/OptimalScheduler.h"

#include "sched/Mii.h"
#include "sched/Verifier.h"
#include "support/Timer.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace modsched;
using namespace modsched::ilp;

std::optional<ModuloSchedule>
OptimalModuloScheduler::scheduleAtIi(const DependenceGraph &G, int II,
                                     ScheduleResult &Stats,
                                     double TimeBudget) const {
  Formulation F(G, M, II, Opts.Formulation);
  if (!F.valid())
    return std::nullopt; // II infeasible within the window budget.

  MipOptions MipOpts;
  MipOpts.TimeLimitSeconds = TimeBudget;
  MipOpts.NodeLimit = Opts.NodeLimit - Stats.Nodes;
  MipOpts.Branching = Opts.Branching;
  MipOpts.StopAtFirstSolution = Opts.Formulation.Obj == Objective::None;
  MipSolver Solver(MipOpts);

  MipResult R = Solver.solve(F.model());
  Stats.Nodes += R.Nodes;
  Stats.SimplexIterations += R.SimplexIterations;

  if (R.Status == MipStatus::Limit) {
    // Budget expired. A feasible-but-unproven incumbent is not reported
    // as an optimal schedule; the caller records a timeout.
    Stats.TimedOut = true;
    return std::nullopt;
  }
  if (!R.HasSolution)
    return std::nullopt; // Proved infeasible at this II.

  Stats.Variables = F.model().numVariables();
  Stats.Constraints = F.model().numConstraints();
  Stats.SecondaryObjective = R.Objective;
  ModuloSchedule S = F.decode(R.Values);
  // Every ILP schedule is independently re-verified; a failure here means
  // a formulation bug and must never be silently reported as a result.
  if (std::optional<std::string> Err = verifySchedule(G, M, S, F.maxTime())) {
    std::fprintf(stderr, "fatal: ILP produced an invalid schedule: %s\n",
                 Err->c_str());
    std::abort();
  }
  return S;
}

ScheduleResult OptimalModuloScheduler::schedule(const DependenceGraph &G) const {
  Stopwatch Watch;
  ScheduleResult Result;
  Result.Mii = mii(G, M);

  for (int II = Result.Mii; II <= Result.Mii + Opts.MaxIiIncrease; ++II) {
    double Remaining = Opts.TimeLimitSeconds - Watch.seconds();
    if (Remaining <= 0 || Result.Nodes >= Opts.NodeLimit) {
      Result.TimedOut = true;
      break;
    }
    std::optional<ModuloSchedule> S =
        scheduleAtIi(G, II, Result, Remaining);
    if (Result.TimedOut)
      break;
    if (S) {
      Result.Found = true;
      Result.II = II;
      Result.Schedule = std::move(*S);
      break;
    }
  }
  Result.Seconds = Watch.seconds();
  return Result;
}
