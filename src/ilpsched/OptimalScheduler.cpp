//===- ilpsched/OptimalScheduler.cpp - Min-II ILP search ------------------===//

#include "ilpsched/OptimalScheduler.h"

#include "ilpsched/AttemptEngine.h"
#include "ilpsched/IiSearch.h"
#include "ilpsched/PbFormulation.h"
#include "ilpsched/PortfolioAttempt.h"
#include "ilpsched/SolutionCache.h"
#include "ilpsched/WorkerState.h"
#include "lp/SolveContext.h"
#include "sched/Mii.h"
#include "sched/Verifier.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

using namespace modsched;
using namespace modsched::ilp;

const char *modsched::toString(SchedulerBackend Backend) {
  switch (Backend) {
  case SchedulerBackend::Ilp:
    return "ilp";
  case SchedulerBackend::Pb:
    return "pb";
  case SchedulerBackend::Portfolio:
    return "portfolio";
  }
  return "unknown";
}

SchedulerBackend modsched::defaultSchedulerBackend() {
  static const SchedulerBackend Cached = [] {
    const char *Env = std::getenv("MODSCHED_BACKEND");
    if (!Env || !*Env)
      return SchedulerBackend::Ilp;
    if (std::strcmp(Env, "ilp") == 0)
      return SchedulerBackend::Ilp;
    if (std::strcmp(Env, "pb") == 0)
      return SchedulerBackend::Pb;
    if (std::strcmp(Env, "portfolio") == 0)
      return SchedulerBackend::Portfolio;
    std::fprintf(stderr,
                 "modsched: unrecognized MODSCHED_BACKEND='%s' "
                 "(want ilp|pb|portfolio); keeping ilp\n",
                 Env);
    return SchedulerBackend::Ilp;
  }();
  return Cached;
}

bool modsched::defaultExplainEnabled() {
  static const bool Cached = [] {
    const char *Env = std::getenv("MODSCHED_EXPLAIN");
    if (!Env || !*Env)
      return false;
    if (std::strcmp(Env, "1") == 0 || std::strcmp(Env, "on") == 0)
      return true;
    if (std::strcmp(Env, "0") == 0 || std::strcmp(Env, "off") == 0)
      return false;
    std::fprintf(stderr,
                 "modsched: unrecognized MODSCHED_EXPLAIN='%s' "
                 "(want 0|1|on|off); keeping off\n",
                 Env);
    return false;
  }();
  return Cached;
}

bool modsched::defaultCacheEnabled() {
  static const bool Cached = [] {
    const char *Env = std::getenv("MODSCHED_CACHE");
    if (!Env || !*Env)
      return false;
    if (std::strcmp(Env, "1") == 0 || std::strcmp(Env, "on") == 0)
      return true;
    if (std::strcmp(Env, "0") == 0 || std::strcmp(Env, "off") == 0)
      return false;
    std::fprintf(stderr,
                 "modsched: unrecognized MODSCHED_CACHE='%s' "
                 "(want 0|1|on|off); keeping off\n",
                 Env);
    return false;
  }();
  return Cached;
}

namespace {

telemetry::Counter StatLoops("ilpsched", "scheduler.loops",
                             "Loops submitted to the optimal scheduler");
telemetry::Counter StatAttempts("ilpsched", "scheduler.attempts",
                                "Tentative IIs attempted (incl. window-"
                                "infeasible)");
telemetry::Counter StatScheduled("ilpsched", "scheduler.scheduled",
                                 "Loops scheduled successfully");
telemetry::Counter StatTimeouts("ilpsched", "scheduler.timeouts",
                                "Loops abandoned on wall-clock budget "
                                "expiry");
telemetry::Counter StatNodeLimits("ilpsched", "scheduler.node_limits",
                                  "Loops abandoned on node-budget "
                                  "exhaustion");
telemetry::PhaseTimer TimeSchedule("ilpsched", "scheduler.schedule",
                                   "End-to-end min-II search");

} // namespace

OptimalModuloScheduler::OptimalModuloScheduler(const MachineModel &M,
                                               SchedulerOptions Options)
    : M(M), Opts(std::move(Options)),
      IlpE(std::make_unique<IlpEngine>(Opts)),
      PbE(std::make_unique<PbEngine>(Opts)),
      // Registration order is the portfolio's commit preference: the ILP
      // verdict wins when both engines conclude in one race (its audit
      // evidence is richer), keeping outcomes deterministic.
      PortfolioE(std::make_unique<PortfolioEngine>(
          Opts, std::vector<const AttemptEngine *>{IlpE.get(), PbE.get()})) {}

OptimalModuloScheduler::~OptimalModuloScheduler() = default;

const AttemptEngine *
OptimalModuloScheduler::selectEngine(const Problem &P, int II) const {
  switch (Opts.Backend) {
  case SchedulerBackend::Ilp:
    break;
  case SchedulerBackend::Pb:
    if (PbE->supports(P, II))
      return PbE.get();
    // Unsupported formulation under the PB backend: decide it with the
    // ILP instead of failing the loop, and say so once per Problem.
    if (P.claimPbFallbackWarning())
      std::fprintf(stderr,
                   "modsched: PB backend does not support this formulation "
                   "(instance mapping, MinSL, or traditional objective "
                   "style); falling back to ILP\n");
    break;
  case SchedulerBackend::Portfolio:
    return PortfolioE.get();
  }
  assert(IlpE->supports(P, II) &&
         "the ILP engine is the total fallback and supports everything");
  return IlpE.get();
}

std::optional<ModuloSchedule>
OptimalModuloScheduler::scheduleAtIi(const Problem &P, int II,
                                     ScheduleResult &Stats, double TimeBudget,
                                     lp::SolveContext *Ctx,
                                     PortfolioState *Portfolio) const {
  ++StatAttempts;
  Stopwatch AttemptWatch;
  telemetry::SpanScope Span("ilpsched", "scheduler.attempt", {{"ii", II}});

  IiAttempt Attempt;
  Attempt.II = II;
  // Publishes the attempt record on every exit path; the engines have
  // several returns each and every one must leave a truthful telemetry
  // row behind.
  struct PublishOnExit {
    ScheduleResult &Stats;
    IiAttempt &Attempt;
    Stopwatch &Watch;
    ~PublishOnExit() {
      Attempt.Seconds = Watch.seconds();
      Stats.Attempts.push_back(Attempt);
      if (telemetry::tracingEnabled())
        telemetry::instant(
            "ilpsched", "scheduler.attempt_done",
            {{"ii", Attempt.II},
             {"status", ilp::toString(Attempt.Status)},
             {"scheduled", int64_t(Attempt.Scheduled ? 1 : 0)},
             {"window_infeasible",
              int64_t(Attempt.WindowInfeasible ? 1 : 0)},
             {"cancelled", int64_t(Attempt.Cancelled ? 1 : 0)},
             {"nodes", Attempt.Nodes},
             {"pb_conflicts", Attempt.PbConflicts},
             {"seconds", Attempt.Seconds},
             {"witness", Attempt.Explain
                             ? witnessName(Attempt.Explain->Kind)
                             : witnessName(WitnessKind::None)},
             {"witness_source", Attempt.Explain
                                    ? sourceName(Attempt.Explain->Source)
                                    : sourceName(ExplainSource::None)},
             {"witness_verified",
              int64_t(Attempt.Explain && Attempt.Explain->Verified ? 1
                                                                   : 0)},
             {"winner",
              Attempt.Winner.empty() ? "-" : Attempt.Winner.c_str()},
             {"bound_exchanges", Attempt.BoundExchanges}});
    }
  } Publish{Stats, Attempt, AttemptWatch};

  const AttemptEngine *Engine = selectEngine(P, II);
  assert(Engine && Engine->supports(P, II) &&
         "selectEngine returned an engine that cannot decide this attempt");

  std::optional<ModuloSchedule> S;
  if (Engine == PortfolioE.get() && !Portfolio) {
    // Direct calls without loop-level race state still race the engines
    // correctly; only cross-II solver reuse and phase hints are lost.
    PortfolioState Transient;
    AttemptContext C{P,   II,      Stats,   TimeBudget,
                     Ctx, Attempt, nullptr, &Transient};
    S = Engine->solveAttempt(C);
  } else {
    AttemptContext C{P,   II,      Stats,   TimeBudget,
                     Ctx, Attempt, nullptr, Portfolio};
    S = Engine->solveAttempt(C);
  }

  // Uniform gate: whatever engine (or race of engines) produced the
  // schedule, it does not leave the seam unverified.
  if (S)
    if (std::optional<std::string> Err =
            verifySchedule(P.graph(), P.machine(), *S)) {
      std::fprintf(stderr,
                   "fatal: engine '%s' emitted a schedule the verifier "
                   "rejects: %s\n",
                   Engine->name(), Err->c_str());
      std::abort();
    }
  return S;
}

std::optional<ModuloSchedule>
OptimalModuloScheduler::scheduleAtIi(const DependenceGraph &G, int II,
                                     ScheduleResult &Stats, double TimeBudget,
                                     lp::SolveContext *Ctx,
                                     PortfolioState *Portfolio) const {
  Problem P(G, M, Opts.Formulation);
  return scheduleAtIi(P, II, Stats, TimeBudget, Ctx, Portfolio);
}

ScheduleResult
OptimalModuloScheduler::schedule(const DependenceGraph &G,
                                 SchedulerWorkerState *Worker) const {
  ++StatLoops;
  telemetry::TimerScope Time(TimeSchedule,
                             {{"ops", int64_t(G.numOperations())}});
  Stopwatch Watch;
  ScheduleResult Result;
  Result.Mii = mii(G, M);
  if (Worker)
    Worker->beginLoop();

  Problem P(G, M, Opts.Formulation);
  const uint64_t RequestKey = SolutionCache::requestKey(Opts);
  if (Opts.Cache && P.hashExact()) {
    Result.CacheCanonicalHash = P.canonicalHash();
    Result.CacheRequestKey = RequestKey;
  }
  if (Opts.Cache)
    if (std::optional<SolutionCache::Hit> Hit =
            SolutionCache::global().lookup(P, RequestKey)) {
      // Served from the cache: the stored canonical solve, re-verified
      // against THIS graph/machine on lookup. No solver effort fields
      // are synthesized — a hit honestly reports zero attempts.
      Result.Found = true;
      Result.CacheHit = true;
      Result.II = Hit->II;
      Result.SecondaryObjective = Hit->SecondaryObjective;
      Result.Schedule = std::move(Hit->Schedule);
      Result.Seconds = Watch.seconds();
      ++StatScheduled;
      if (telemetry::tracingEnabled())
        telemetry::instant("ilpsched", "scheduler.done",
                           {{"mii", Result.Mii},
                            {"ii", Result.II},
                            {"found", int64_t(1)},
                            {"cache_hit", int64_t(1)},
                            {"timed_out", int64_t(0)},
                            {"node_limit_hit", int64_t(0)},
                            {"nodes", int64_t(0)},
                            {"seconds", Result.Seconds}});
      return Result;
    }

  std::unique_ptr<IiSearchStrategy> Search =
      makeIiSearchStrategy(Opts.Search, Opts.SearchJobs);
  Search->search(*this, P, Result, Worker);

  Result.Seconds = Watch.seconds();
  if (Opts.Cache)
    SolutionCache::global().insert(P, RequestKey, Result);
  if (Result.Found)
    ++StatScheduled;
  if (Result.TimedOut)
    ++StatTimeouts;
  if (Result.NodeLimitHit)
    ++StatNodeLimits;
  if (telemetry::tracingEnabled())
    telemetry::instant(
        "ilpsched", "scheduler.done",
        {{"mii", Result.Mii},
         {"ii", Result.II},
         {"found", int64_t(Result.Found ? 1 : 0)},
         {"cache_hit", int64_t(0)},
         {"timed_out", int64_t(Result.TimedOut ? 1 : 0)},
         {"node_limit_hit", int64_t(Result.NodeLimitHit ? 1 : 0)},
         {"nodes", Result.Nodes},
         {"seconds", Result.Seconds}});
  return Result;
}
