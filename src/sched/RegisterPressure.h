//===- sched/RegisterPressure.h - MaxLive / lifetimes -----------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-requirement metrics of a modulo schedule, per the paper's
/// Section 2: a virtual register is reserved from the cycle its defining
/// operation issues until the cycle of its last use (inclusive, across
/// iterations). Collapsing all lifetimes onto the II rows of the steady
/// state with wraparound gives the per-row live counts; their maximum is
/// MaxLive [12], the exact register requirement. We also expose the
/// cumulative lifetime (the MinLife objective of [16]) and the buffer
/// count (lifetimes rounded up to multiples of II, the MinBuff objective
/// of [7]).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SCHED_REGISTERPRESSURE_H
#define MODSCHED_SCHED_REGISTERPRESSURE_H

#include "graph/DependenceGraph.h"
#include "sched/ModuloSchedule.h"

#include <vector>

namespace modsched {

/// Register metrics of one schedule.
struct RegisterPressure {
  /// Maximum number of simultaneously live virtual registers over the II
  /// rows of the steady state (the paper's MaxLive).
  int MaxLive = 0;
  /// Per-row live counts (size II).
  std::vector<int> LivePerRow;
  /// Sum of all lifetime lengths in cycles.
  long TotalLifetime = 0;
  /// Sum over registers of ceil(lifetime / II).
  long Buffers = 0;
  /// Per-register lifetime length in cycles (>= 1; a dead value is live
  /// for its definition cycle only).
  std::vector<int> LifetimeCycles;
};

/// Computes the register metrics of \p S for graph \p G.
RegisterPressure computeRegisterPressure(const DependenceGraph &G,
                                         const ModuloSchedule &S);

/// The kill time of register \p Reg under \p S: the last cycle the value
/// is used (or its definition cycle when it has no uses).
int registerKillTime(const DependenceGraph &G, const ModuloSchedule &S,
                     int Reg);

} // namespace modsched

#endif // MODSCHED_SCHED_REGISTERPRESSURE_H
