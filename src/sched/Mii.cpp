//===- sched/Mii.cpp - Minimum initiation interval -------------------------===//

#include "sched/Mii.h"

#include "graph/GraphAlgorithms.h"

#include <algorithm>
#include <cassert>

using namespace modsched;

int modsched::resMii(const DependenceGraph &G, const MachineModel &M) {
  std::vector<long> Uses(M.numResources(), 0);
  for (const Operation &Op : G.operations())
    for (const ResourceUsage &U : M.opClass(Op.OpClass).Usages)
      ++Uses[U.Resource];
  long Best = 1;
  for (int R = 0; R < M.numResources(); ++R) {
    long Need = (Uses[R] + M.resource(R).Count - 1) / M.resource(R).Count;
    Best = std::max(Best, Need);
  }
  return static_cast<int>(Best);
}

int modsched::recMii(const DependenceGraph &G) {
  assert(!hasZeroDistanceCycle(G) &&
         "zero-distance dependence cycle: loop is unschedulable");
  // Feasibility (no positive cycle) is monotone in II because every cycle
  // has total distance >= 1. Binary search over [1, sum of latencies].
  long LatencySum = 1;
  for (const SchedEdge &E : G.schedEdges())
    LatencySum += std::max(0, E.Latency);
  int Lo = 1, Hi = static_cast<int>(std::min<long>(LatencySum, 1 << 20));
  if (!hasPositiveCycle(G, Lo))
    return 1;
  while (Lo + 1 < Hi) {
    int Mid = Lo + (Hi - Lo) / 2;
    if (hasPositiveCycle(G, Mid))
      Lo = Mid;
    else
      Hi = Mid;
  }
  assert(!hasPositiveCycle(G, Hi) && "latency sum bound must be feasible");
  return Hi;
}

int modsched::mii(const DependenceGraph &G, const MachineModel &M) {
  return std::max(resMii(G, M), recMii(G));
}
