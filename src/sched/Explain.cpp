//===- sched/Explain.cpp - Infeasibility witnesses ------------------------===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//

#include "sched/Explain.h"

#include "graph/GraphAlgorithms.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace modsched {

const char *witnessName(WitnessKind K) {
  switch (K) {
  case WitnessKind::None:
    return "none";
  case WitnessKind::RecurrenceCycle:
    return "cycle";
  case WitnessKind::ResourceSaturation:
    return "resource";
  case WitnessKind::ScheduleWindow:
    return "window";
  }
  return "none";
}

const char *sourceName(ExplainSource S) {
  switch (S) {
  case ExplainSource::None:
    return "none";
  case ExplainSource::GraphAnalysis:
    return "graph";
  case ExplainSource::FarkasRay:
    return "farkas";
  case ExplainSource::UnsatCore:
    return "core";
  }
  return "none";
}

long resourceUses(const DependenceGraph &G, const MachineModel &M,
                  int Resource) {
  long Uses = 0;
  for (const Operation &Op : G.operations())
    for (const ResourceUsage &U : M.opClass(Op.OpClass).Usages)
      if (U.Resource == Resource)
        ++Uses;
  return Uses;
}

/// The formulation's schedule-length budget rule (Formulation.cpp and
/// PbFormulation.cpp use the same arithmetic): nullopt when \p II is
/// recurrence-infeasible, otherwise the latest admissible start time.
static std::optional<int> windowMaxTime(const DependenceGraph &G, int II,
                                        int Slack) {
  std::optional<int> MinLen = minScheduleLength(G, II);
  if (!MinLen)
    return std::nullopt;
  int Budget = *MinLen - 1 + Slack;
  int StageCount = Budget / II + 1;
  return StageCount * II - 1;
}

/// Totals a cycle described by edge indices; returns false when the
/// indices are out of range or do not form one closed cycle.
static bool sumCycle(const DependenceGraph &G, const std::vector<int> &Edges,
                     long &Latency, long &Distance) {
  if (Edges.empty())
    return false;
  Latency = 0;
  Distance = 0;
  for (size_t I = 0; I < Edges.size(); ++I) {
    int Idx = Edges[I];
    if (Idx < 0 || Idx >= G.numSchedEdges())
      return false;
    const SchedEdge &E = G.schedEdges()[Idx];
    int NextIdx = Edges[(I + 1) % Edges.size()];
    if (NextIdx < 0 || NextIdx >= G.numSchedEdges())
      return false;
    if (E.Dst != G.schedEdges()[NextIdx].Src)
      return false;
    Latency += E.Latency;
    Distance += E.Distance;
  }
  return true;
}

/// Bellman-Ford longest-path pass over a subset of edges with weight
/// latency - II * distance; extracts a positive-weight cycle when one
/// exists (the standard predecessor-walk recovery).
static std::optional<RecurrenceCycle>
positiveCycleOnEdges(const DependenceGraph &G, int II,
                     const std::vector<int> &EdgeIdxs) {
  int N = G.numOperations();
  if (N == 0 || EdgeIdxs.empty())
    return std::nullopt;
  std::vector<long> Dist(size_t(N), 0);
  std::vector<int> PredEdge(size_t(N), -1);
  int Touched = -1;
  for (int Pass = 0; Pass <= N; ++Pass) {
    Touched = -1;
    for (int Idx : EdgeIdxs) {
      const SchedEdge &E = G.schedEdges()[Idx];
      long W = long(E.Latency) - long(II) * E.Distance;
      if (Dist[E.Src] + W > Dist[E.Dst]) {
        Dist[E.Dst] = Dist[E.Src] + W;
        PredEdge[E.Dst] = Idx;
        Touched = E.Dst;
      }
    }
    if (Touched < 0)
      return std::nullopt; // Converged: no positive cycle on this subset.
  }
  // Still relaxing after N passes: walk predecessors N steps to land on
  // the cycle, then collect it.
  int X = Touched;
  for (int I = 0; I < N; ++I) {
    assert(PredEdge[X] >= 0 && "relaxed vertex without predecessor");
    X = G.schedEdges()[PredEdge[X]].Src;
  }
  RecurrenceCycle C;
  int Cur = X;
  do {
    int Idx = PredEdge[Cur];
    assert(Idx >= 0 && "cycle vertex without predecessor");
    C.Edges.push_back(Idx);
    Cur = G.schedEdges()[Idx].Src;
  } while (Cur != X);
  std::reverse(C.Edges.begin(), C.Edges.end());
  long Lat = 0, DistSum = 0;
  if (!sumCycle(G, C.Edges, Lat, DistSum) || DistSum <= 0)
    return std::nullopt;
  C.TotalLatency = Lat;
  C.TotalDistance = DistSum;
  if (C.iiBound() <= II)
    return std::nullopt;
  return C;
}

/// Picks the most oversubscribed resource among \p Candidates, or
/// nullopt when none exceeds II * count.
static std::optional<Explanation>
saturatedResource(const DependenceGraph &G, const MachineModel &M, int II,
                  const std::vector<int> &Candidates) {
  std::optional<Explanation> Best;
  double BestRatio = 0.0;
  for (int R : Candidates) {
    if (R < 0 || R >= M.numResources())
      continue;
    long Uses = resourceUses(G, M, R);
    int Count = M.resource(R).Count;
    if (Count <= 0 || Uses <= long(II) * Count)
      continue;
    double Ratio = double(Uses) / Count;
    if (!Best || Ratio > BestRatio) {
      Explanation E;
      E.Kind = WitnessKind::ResourceSaturation;
      E.Resource = R;
      E.ResourceUses = Uses;
      E.ResourceCount = Count;
      Best = E;
      BestRatio = Ratio;
    }
  }
  return Best;
}

std::optional<Explanation> explainInfeasibleIi(const DependenceGraph &G,
                                               const MachineModel &M, int II,
                                               int ScheduleLengthSlack) {
  assert(II >= 1 && "II must be positive");
  if (hasZeroDistanceCycle(G))
    return std::nullopt; // Unschedulable at any II; no finite witness.
  // Binding recurrence first: the paper's flagship diagnostic.
  if (std::optional<RecurrenceCycle> C = findCriticalCycle(G)) {
    if (C->iiBound() > II) {
      Explanation E;
      E.Kind = WitnessKind::RecurrenceCycle;
      E.Source = ExplainSource::GraphAnalysis;
      E.Cycle = std::move(*C);
      return E;
    }
  }
  // Then resource saturation (covers all II < ResMII).
  std::vector<int> All(size_t(M.numResources()));
  for (int R = 0; R < M.numResources(); ++R)
    All[size_t(R)] = R;
  if (std::optional<Explanation> E = saturatedResource(G, M, II, All)) {
    E->Source = ExplainSource::GraphAnalysis;
    return E;
  }
  // Finally an empty start-time window under the stage budget.
  std::optional<int> MaxTime = windowMaxTime(G, II, ScheduleLengthSlack);
  if (!MaxTime)
    return std::nullopt; // Recurrence-infeasible, handled above.
  std::optional<std::vector<int>> Asap = asapTimes(G, II);
  std::optional<std::vector<int>> Alap = alapTimes(G, II, *MaxTime);
  if (!Asap)
    return std::nullopt;
  Explanation E;
  E.Kind = WitnessKind::ScheduleWindow;
  E.Source = ExplainSource::GraphAnalysis;
  E.WindowMaxTime = *MaxTime;
  if (!Alap) {
    E.WindowOp = -1; // No schedule fits the budget at all.
    return E;
  }
  for (int Op = 0; Op < G.numOperations(); ++Op)
    if ((*Asap)[Op] > (*Alap)[Op]) {
      E.WindowOp = Op;
      return E;
    }
  return std::nullopt;
}

std::optional<Explanation>
explainFromOrigins(const DependenceGraph &G, const MachineModel &M, int II,
                   int ScheduleLengthSlack,
                   const std::vector<RowOrigin> &Support,
                   ExplainSource Source) {
  std::vector<int> Edges, Resources, WindowOps;
  for (const RowOrigin &O : Support) {
    switch (O.Kind) {
    case RowOriginKind::DepEdge:
      if (O.EdgeIndex >= 0)
        Edges.push_back(O.EdgeIndex);
      break;
    case RowOriginKind::Resource:
      Resources.push_back(O.Resource);
      break;
    case RowOriginKind::StageWindow:
      WindowOps.push_back(O.Op);
      break;
    default:
      break;
    }
  }
  std::sort(Edges.begin(), Edges.end());
  Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
  std::sort(Resources.begin(), Resources.end());
  Resources.erase(std::unique(Resources.begin(), Resources.end()),
                  Resources.end());
  // A cycle among the implicated edges is the sharpest witness.
  if (std::optional<RecurrenceCycle> C =
          positiveCycleOnEdges(G, II, Edges)) {
    Explanation E;
    E.Kind = WitnessKind::RecurrenceCycle;
    E.Source = Source;
    E.Cycle = std::move(*C);
    return E;
  }
  if (std::optional<Explanation> E =
          saturatedResource(G, M, II, Resources)) {
    E->Source = Source;
    return E;
  }
  std::optional<int> MaxTime = windowMaxTime(G, II, ScheduleLengthSlack);
  if (MaxTime && !WindowOps.empty()) {
    std::optional<std::vector<int>> Asap = asapTimes(G, II);
    std::optional<std::vector<int>> Alap = alapTimes(G, II, *MaxTime);
    if (Asap && Alap)
      for (int Op : WindowOps)
        if (Op >= 0 && Op < G.numOperations() && (*Asap)[Op] > (*Alap)[Op]) {
          Explanation E;
          E.Kind = WitnessKind::ScheduleWindow;
          E.Source = Source;
          E.WindowOp = Op;
          E.WindowMaxTime = *MaxTime;
          return E;
        }
  }
  return std::nullopt;
}

bool checkExplanation(const DependenceGraph &G, const MachineModel &M, int II,
                      int ScheduleLengthSlack, const Explanation &E) {
  switch (E.Kind) {
  case WitnessKind::None:
    return false;
  case WitnessKind::RecurrenceCycle: {
    long Latency = 0, Distance = 0;
    if (!sumCycle(G, E.Cycle.Edges, Latency, Distance))
      return false;
    if (Latency != E.Cycle.TotalLatency || Distance != E.Cycle.TotalDistance)
      return false; // Record disagrees with the graph.
    if (Distance <= 0)
      return false;
    // ceil(latency / distance) > II, in integer arithmetic.
    return Latency > long(II) * Distance;
  }
  case WitnessKind::ResourceSaturation: {
    if (E.Resource < 0 || E.Resource >= M.numResources())
      return false;
    long Uses = resourceUses(G, M, E.Resource);
    int Count = M.resource(E.Resource).Count;
    if (Uses != E.ResourceUses || Count != E.ResourceCount)
      return false;
    return Count > 0 && Uses > long(II) * Count;
  }
  case WitnessKind::ScheduleWindow: {
    std::optional<int> MaxTime = windowMaxTime(G, II, ScheduleLengthSlack);
    if (!MaxTime || *MaxTime != E.WindowMaxTime)
      return false;
    std::optional<std::vector<int>> Asap = asapTimes(G, II);
    if (!Asap)
      return false;
    std::optional<std::vector<int>> Alap = alapTimes(G, II, *MaxTime);
    if (!Alap)
      return E.WindowOp == -1; // Globally infeasible budget.
    return E.WindowOp >= 0 && E.WindowOp < G.numOperations() &&
           (*Asap)[E.WindowOp] > (*Alap)[E.WindowOp];
  }
  }
  return false;
}

std::string describeExplanation(const DependenceGraph &G,
                                const MachineModel &M, int II,
                                const Explanation &E) {
  std::ostringstream OS;
  switch (E.Kind) {
  case WitnessKind::None:
    OS << "unexplained (no graph-level witness)";
    break;
  case WitnessKind::RecurrenceCycle:
    OS << "recurrence cycle needs II >= " << E.Cycle.iiBound()
       << " (latency " << E.Cycle.TotalLatency << " over distance "
       << E.Cycle.TotalDistance << "): " << describeCycle(G, E.Cycle);
    break;
  case WitnessKind::ResourceSaturation:
    OS << "resource '" << M.resource(E.Resource).Name << "' saturated: "
       << E.ResourceUses << " uses/iteration > II(" << II << ") x "
       << E.ResourceCount << " instances";
    break;
  case WitnessKind::ScheduleWindow:
    if (E.WindowOp >= 0)
      OS << "empty start window for '" << G.operation(E.WindowOp).Name
         << "' within schedule length bound " << (E.WindowMaxTime + 1);
    else
      OS << "no schedule fits length bound " << (E.WindowMaxTime + 1);
    break;
  }
  return OS.str();
}

} // namespace modsched
