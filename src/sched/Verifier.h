//===- sched/Verifier.h - Schedule validity checking ------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent validity checker for modulo schedules: dependence
/// constraints (paper Ineq. 3) and modulo resource constraints (paper
/// Ineq. 5). Every schedule produced by any scheduler in this repo —
/// optimal or heuristic — is passed through this verifier in the tests
/// and benchmark harnesses, so formulation bugs cannot silently corrupt
/// the experiments.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SCHED_VERIFIER_H
#define MODSCHED_SCHED_VERIFIER_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"
#include "sched/ModuloSchedule.h"

#include <optional>
#include <string>

namespace modsched {

/// Returns a description of the first violated constraint, or nullopt if
/// \p S is a valid modulo schedule for \p G on \p M. When \p MaxTime is
/// non-negative, also checks that every start time lies in [0, MaxTime].
std::optional<std::string> verifySchedule(const DependenceGraph &G,
                                          const MachineModel &M,
                                          const ModuloSchedule &S,
                                          int MaxTime = -1);

} // namespace modsched

#endif // MODSCHED_SCHED_VERIFIER_H
