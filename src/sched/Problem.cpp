//===- sched/Problem.cpp - Canonical modulo-scheduling problem ------------===//

#include "sched/Problem.h"

#include "graph/GraphAlgorithms.h"
#include "support/Hash.h"

#include <algorithm>
#include <array>
#include <cassert>

using namespace modsched;

const char *modsched::toString(Objective Obj) {
  switch (Obj) {
  case Objective::None:
    return "NoObj";
  case Objective::MinReg:
    return "MinReg";
  case Objective::MinBuff:
    return "MinBuff";
  case Objective::MinLife:
    return "MinLife";
  case Objective::MinSL:
    return "MinSL";
  }
  return "unknown";
}

const char *modsched::toString(DependenceStyle Style) {
  switch (Style) {
  case DependenceStyle::Traditional:
    return "traditional";
  case DependenceStyle::Structured:
    return "structured";
  case DependenceStyle::StructuredLoose:
    return "structured-loose";
  }
  return "unknown";
}

namespace {

uint64_t optionsDigest(const FormulationOptions &Opts) {
  uint64_t H = hashMix(0x6f707473u); // "opts"
  H = hashCombine(H, static_cast<uint64_t>(Opts.Obj));
  H = hashCombine(H, static_cast<uint64_t>(Opts.DepStyle));
  H = hashCombine(H, static_cast<uint64_t>(Opts.ObjStyle));
  H = hashCombine(H, static_cast<uint64_t>(
                         static_cast<int64_t>(Opts.ScheduleLengthSlack)));
  H = hashCombine(H, Opts.TightenStageBounds ? 1 : 0);
  H = hashCombine(H, Opts.InstanceMapped ? 1 : 0);
  H = hashCombine(H, static_cast<uint64_t>(
                         static_cast<int64_t>(Opts.RegisterLimit)));
  return H;
}

uint64_t asWord(int Value) {
  return static_cast<uint64_t>(static_cast<int64_t>(Value));
}

} // namespace

void Problem::computeCanonical() const {
  const int N = G.numOperations();

  // RegisterOf[op] = register defined by op, or -1.
  std::vector<int> RegisterOf(N, -1);
  for (int R = 0; R < G.numRegisters(); ++R)
    RegisterOf[G.registers()[R].Def] = R;

  // Node colors: the opclass signature (latency + canonical resource
  // usages — names excluded) plus the register-def shape of the node.
  // Register USES become colored edges below, so two defs differ here
  // only in whether they own a register and whether it is unconsumed
  // (an unconsumed register is still live for one cycle).
  std::vector<uint64_t> Colors(N);
  for (int Op = 0; Op < N; ++Op) {
    uint64_t H = hashMix(0x6e6f6465u); // "node"
    H = hashCombine(H, M.opClassSignature(G.operation(Op).OpClass));
    int Reg = RegisterOf[Op];
    H = hashCombine(H, Reg < 0 ? 0u : 1u);
    H = hashCombine(H,
                    (Reg >= 0 && G.registers()[Reg].Uses.empty()) ? 1u : 0u);
    Colors[Op] = H;
  }

  // Edge colors: scheduling edges by (latency, distance); register uses
  // by use distance (def -> consumer).
  std::vector<CanonicalEdge> Edges;
  Edges.reserve(G.numSchedEdges());
  for (const SchedEdge &E : G.schedEdges()) {
    uint64_t H = hashMix(0x73656467u); // "sedg"
    H = hashCombine(H, asWord(E.Latency));
    H = hashCombine(H, asWord(E.Distance));
    Edges.push_back({E.Src, E.Dst, H});
  }
  for (const VirtualRegister &R : G.registers())
    for (const RegisterUse &U : R.Uses) {
      uint64_t H = hashMix(0x72656775u); // "regu"
      H = hashCombine(H, asWord(U.Distance));
      Edges.push_back({R.Def, U.Consumer, H});
    }

  CanonicalLabeling Labeling = canonicalLabeling(N, Colors, Edges);
  CanonIndex = std::move(Labeling.CanonicalIndex);
  Exact = Labeling.Exact;

  // Canonical form: every scheduling-relevant fact rewritten into
  // canonical indices. Sorting makes the rendering independent of the
  // original edge/register insertion order.
  Form.clear();
  Form.push_back(asWord(N));
  Form.push_back(asWord(G.numSchedEdges()));
  Form.push_back(asWord(G.numRegisters()));

  std::vector<uint64_t> NodeWords(N);
  for (int Op = 0; Op < N; ++Op)
    NodeWords[CanonIndex[Op]] = Colors[Op];
  Form.insert(Form.end(), NodeWords.begin(), NodeWords.end());

  std::vector<std::array<uint64_t, 4>> EdgeTuples;
  EdgeTuples.reserve(G.numSchedEdges());
  for (const SchedEdge &E : G.schedEdges())
    EdgeTuples.push_back({asWord(CanonIndex[E.Src]), asWord(CanonIndex[E.Dst]),
                          asWord(E.Latency), asWord(E.Distance)});
  std::sort(EdgeTuples.begin(), EdgeTuples.end());
  for (const auto &T : EdgeTuples)
    Form.insert(Form.end(), T.begin(), T.end());

  std::vector<std::vector<uint64_t>> RegTuples;
  RegTuples.reserve(G.numRegisters());
  for (const VirtualRegister &R : G.registers()) {
    std::vector<std::array<uint64_t, 2>> Uses;
    Uses.reserve(R.Uses.size());
    for (const RegisterUse &U : R.Uses)
      Uses.push_back({asWord(CanonIndex[U.Consumer]), asWord(U.Distance)});
    std::sort(Uses.begin(), Uses.end());
    std::vector<uint64_t> Tuple;
    Tuple.reserve(2 + 2 * Uses.size());
    Tuple.push_back(asWord(CanonIndex[R.Def]));
    Tuple.push_back(Uses.size());
    for (const auto &U : Uses)
      Tuple.insert(Tuple.end(), U.begin(), U.end());
    RegTuples.push_back(std::move(Tuple));
  }
  std::sort(RegTuples.begin(), RegTuples.end());
  for (const auto &T : RegTuples)
    Form.insert(Form.end(), T.begin(), T.end());

  Form.push_back(M.digest());
  Form.push_back(optionsDigest(Opts));

  uint64_t H = hashMix(0x70726f62u); // "prob"
  for (uint64_t W : Form)
    H = hashCombine(H, W);
  // Mixing in the search-free invariant hash costs nothing and keeps the
  // address discriminating even if a future form rendering has a bug.
  H = hashCombine(H, Labeling.InvariantHash);
  Hash = H;
}

uint64_t Problem::canonicalHash() const {
  std::call_once(CanonOnce, [this] { computeCanonical(); });
  return Hash;
}

bool Problem::hashExact() const {
  std::call_once(CanonOnce, [this] { computeCanonical(); });
  return Exact;
}

const std::vector<int> &Problem::canonicalIndex() const {
  std::call_once(CanonOnce, [this] { computeCanonical(); });
  return CanonIndex;
}

const std::vector<uint64_t> &Problem::canonicalForm() const {
  std::call_once(CanonOnce, [this] { computeCanonical(); });
  return Form;
}
