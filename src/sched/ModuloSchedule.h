//===- sched/ModuloSchedule.h - Modulo schedule + MRT -----------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A modulo schedule assigns each operation of the loop body a start
/// cycle; iterations initiate every II cycles with the same schedule.
/// row(i) = time(i) mod II and stage(i) = time(i) div II, matching the
/// paper's Section 2. The modulo reservation table (MRT) collapses the
/// schedule to II rows with wraparound.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SCHED_MODULOSCHEDULE_H
#define MODSCHED_SCHED_MODULOSCHEDULE_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"

#include <cassert>
#include <string>
#include <vector>

namespace modsched {

/// A complete modulo schedule for one loop.
class ModuloSchedule {
public:
  ModuloSchedule() = default;
  ModuloSchedule(int II, std::vector<int> Times)
      : Interval(II), StartTime(std::move(Times)) {
    assert(II >= 1 && "initiation interval must be positive");
  }

  int ii() const { return Interval; }
  int numOperations() const { return static_cast<int>(StartTime.size()); }

  /// Start cycle of operation \p Op.
  int time(int Op) const { return StartTime[Op]; }

  /// MRT row of operation \p Op (time mod II, non-negative).
  int row(int Op) const {
    int R = StartTime[Op] % Interval;
    return R < 0 ? R + Interval : R;
  }

  /// Stage of operation \p Op (time div II, floored).
  int stage(int Op) const {
    int T = StartTime[Op];
    int Q = T / Interval;
    if (T % Interval < 0)
      --Q;
    return Q;
  }

  /// Number of cycles from cycle 0 through the last start cycle;
  /// iterations of the schedule span ceil(length / II) stages.
  int scheduleLength() const;

  /// Number of stages spanned (max stage + 1), assuming all times >= 0.
  int numStages() const { return (scheduleLength() + Interval - 1) / Interval; }

  const std::vector<int> &times() const { return StartTime; }
  std::vector<int> &times() { return StartTime; }

private:
  int Interval = 1;
  std::vector<int> StartTime;
};

/// The modulo reservation table: per (row, resource type) usage counts.
class Mrt {
public:
  /// Builds the MRT of \p S for graph \p G on machine \p M.
  Mrt(const DependenceGraph &G, const MachineModel &M,
      const ModuloSchedule &S);

  int ii() const { return Interval; }

  /// Usage count of resource type \p Resource in row \p Row.
  int usage(int Row, int Resource) const {
    return Counts[size_t(Row) * NumResources + Resource];
  }

  /// True iff no (row, resource) usage exceeds the machine's counts.
  bool fitsMachine(const MachineModel &M) const;

  /// Renders the MRT as a small table (rows x resources).
  std::string toString(const MachineModel &M) const;

private:
  int Interval = 1;
  int NumResources = 0;
  std::vector<int> Counts;
};

} // namespace modsched

#endif // MODSCHED_SCHED_MODULOSCHEDULE_H
