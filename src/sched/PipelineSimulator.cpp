//===- sched/PipelineSimulator.cpp - Dynamic schedule execution -----------===//

#include "sched/PipelineSimulator.h"

#include "sched/RegisterPressure.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace modsched;

SimulationReport modsched::simulateSchedule(const DependenceGraph &G,
                                            const MachineModel &M,
                                            const ModuloSchedule &S,
                                            int Iterations) {
  assert(Iterations >= 1 && "need at least one iteration");
  SimulationReport Report;
  Report.Iterations = Iterations;
  int II = S.ii();
  char Buf[256];

  // Horizon: last issue plus the longest reservation-table tail and the
  // longest cross-iteration lifetime.
  int MaxUsageCycle = 0;
  for (const OpClass &C : M.opClasses())
    for (const ResourceUsage &U : C.Usages)
      MaxUsageCycle = std::max(MaxUsageCycle, U.Cycle);
  long LastIssue = long(Iterations - 1) * II + S.scheduleLength() - 1;
  int MaxUseDistance = 0;
  for (const VirtualRegister &R : G.registers())
    for (const RegisterUse &U : R.Uses)
      MaxUseDistance = std::max(MaxUseDistance, U.Distance);
  long Horizon = LastIssue + MaxUsageCycle +
                 long(MaxUseDistance + 1) * II + S.scheduleLength() + 1;

  Report.LastIssueCycle = LastIssue;
  Report.TotalCycles = LastIssue + 1;
  Report.CyclesPerIteration =
      static_cast<double>(Report.TotalCycles) / Iterations;

  // --- Resource usage, cycle by cycle -----------------------------------
  int NumRes = M.numResources();
  std::vector<int> Busy(static_cast<size_t>(Horizon + 1) * NumRes, 0);
  for (int Iter = 0; Iter < Iterations && !Report.Violation; ++Iter) {
    for (int Op = 0; Op < G.numOperations(); ++Op) {
      const OpClass &Class = M.opClass(G.operation(Op).OpClass);
      long Issue = S.time(Op) + long(Iter) * II;
      for (const ResourceUsage &U : Class.Usages) {
        long Cycle = Issue + U.Cycle;
        int &Count = Busy[static_cast<size_t>(Cycle) * NumRes + U.Resource];
        if (++Count > M.resource(U.Resource).Count) {
          std::snprintf(Buf, sizeof(Buf),
                        "cycle %ld: resource %s oversubscribed by %s "
                        "(iteration %d)",
                        Cycle, M.resource(U.Resource).Name.c_str(),
                        G.operation(Op).Name.c_str(), Iter);
          Report.Violation = std::string(Buf);
          break;
        }
      }
      if (Report.Violation)
        break;
    }
  }

  // --- Dynamic dependence check ------------------------------------------
  // The constraint is iteration-invariant, so checking the first
  // iteration pair that exists suffices.
  if (!Report.Violation) {
    for (const SchedEdge &E : G.schedEdges()) {
      if (E.Distance > Iterations - 1)
        continue; // No such producer/consumer pair in this run.
      long Produced = S.time(E.Src); // Iteration 0.
      long Consumed = S.time(E.Dst) + long(E.Distance) * II;
      if (Consumed - Produced < E.Latency) {
        std::snprintf(Buf, sizeof(Buf),
                      "value of %s (iter 0) consumed by %s (iter %d) "
                      "after %ld cycles, latency is %d",
                      G.operation(E.Src).Name.c_str(),
                      G.operation(E.Dst).Name.c_str(), E.Distance,
                      Consumed - Produced, E.Latency);
        Report.Violation = std::string(Buf);
        break;
      }
    }
  }

  // --- Liveness profile ----------------------------------------------------
  // Every (register, iteration) instance is live from its definition
  // through its last use (uses by iterations beyond the run still hold
  // the value, as the epilogue would).
  std::vector<int> LiveDelta(static_cast<size_t>(Horizon + 2), 0);
  for (int Reg = 0; Reg < G.numRegisters(); ++Reg) {
    long KillOffset = registerKillTime(G, S, Reg);
    long DefOffset = S.time(G.registers()[Reg].Def);
    for (int Iter = 0; Iter < Iterations; ++Iter) {
      long Def = DefOffset + long(Iter) * II;
      long Kill = std::min(KillOffset + long(Iter) * II, Horizon);
      ++LiveDelta[static_cast<size_t>(Def)];
      --LiveDelta[static_cast<size_t>(Kill) + 1];
    }
  }
  int Live = 0;
  // Steady-state window: late enough that every older iteration's
  // lifetime (which may extend MaxUseDistance iterations past its last
  // schedule cycle) is represented, early enough that younger iterations
  // still issue.
  long SteadyBegin = S.scheduleLength() + long(MaxUseDistance) * II;
  long SteadyEnd = long(Iterations - 1) * II; // Exclusive.
  for (long Cycle = 0; Cycle <= Horizon; ++Cycle) {
    Live += LiveDelta[static_cast<size_t>(Cycle)];
    Report.PeakLiveValues = std::max(Report.PeakLiveValues, Live);
    if (Cycle >= SteadyBegin && Cycle < SteadyEnd)
      Report.SteadyStateLiveValues =
          std::max(Report.SteadyStateLiveValues, Live);
  }
  if (SteadyEnd <= SteadyBegin) // Run too short for a steady state.
    Report.SteadyStateLiveValues = Report.PeakLiveValues;
  return Report;
}
