//===- sched/Problem.h - Canonical modulo-scheduling problem ----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first-class scheduling problem value: dependence graph + machine
/// model + objective/formulation options, bundled so that engines,
/// caches, and services can treat "one problem, many solver encodings"
/// uniformly. This file also owns the objective and formulation-style
/// enums (moved down from ilpsched so that sched-layer code can name a
/// problem without an upward include).
///
/// Problem::canonicalHash() is a content address: it is computed from a
/// canonical form of the DDG modulo node relabeling (iterative WL-style
/// refinement over (latency, distance, resource-class) node/edge colors
/// with a deterministic individualization tie-break — see
/// graph/GraphAlgorithms.h) combined with a canonical machine digest and
/// an options digest. Renaming operations, virtual-register order,
/// machine units, or opclasses, and permuting node ids, leaves the hash
/// unchanged; changing any latency, distance, resource count, usage
/// cycle, or option changes it. Hash equality is NOT trusted on its own:
/// cache consumers compare canonicalForm() in full to rule out 64-bit
/// collisions.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SCHED_PROBLEM_H
#define MODSCHED_SCHED_PROBLEM_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace modsched {

/// Secondary objective minimized among all schedules at the chosen II.
enum class Objective {
  None,    ///< Feasibility only (the paper's NoObj scheduler).
  MinReg,  ///< Exact MaxLive (register requirement).
  MinBuff, ///< Buffers: sum of ceil(lifetime / II).
  MinLife, ///< Cumulative lifetime in cycles.
  MinSL,   ///< Schedule length of one iteration (transient performance;
           ///< listed among the classic objectives in the paper's Sec. 1).
};

const char *toString(Objective Obj);

/// How the dependence constraints are emitted.
enum class DependenceStyle {
  Traditional,       ///< Paper Ineq. (4): coefficients r and II.
  Structured,        ///< Paper Ineq. (20): 0-1-structured + tightening.
  StructuredLoose,   ///< Paper Ineq. (19): structured, no Chaudhuri
                     ///< tightening (ablation).
};

const char *toString(DependenceStyle Style);

/// How the secondary-objective machinery is emitted.
enum class ObjectiveStyle {
  Traditional, ///< Coefficient-II constraints ([7]/[16] style).
  Structured,  ///< 0-1-structured reformulation.
};

/// Options shared by all formulations.
struct FormulationOptions {
  Objective Obj = Objective::None;
  DependenceStyle DepStyle = DependenceStyle::Structured;
  ObjectiveStyle ObjStyle = ObjectiveStyle::Structured;
  /// Schedule-length budget beyond the minimum (paper: 20 cycles).
  int ScheduleLengthSlack = 20;
  /// Derive per-operation stage bounds from ASAP/ALAP windows. Applied
  /// identically to both formulations.
  bool TightenStageBounds = true;
  /// Map every operation to a specific resource INSTANCE it holds for
  /// its whole usage pattern (Altman et al. [5]), instead of the
  /// counting constraints of Ineq. (5). Strictly stronger on machines
  /// where a multi-cycle pattern must stay on one instance: counting can
  /// accept IIs for which no consistent instance assignment exists.
  bool InstanceMapped = false;
  /// When >= 0: register-CONSTRAINED scheduling — every MRT row's live
  /// count must not exceed this register-file size (a hard constraint
  /// rather than the MinReg objective). Combine with Objective::None to
  /// find the minimum II fitting a given rotating file, the practical
  /// question on a real machine (the Cydra 5 had 64 rotating registers).
  /// Not combinable with Objective::MinReg (asserted).
  int RegisterLimit = -1;
};

/// An immutable modulo-scheduling problem: (graph, machine, options).
///
/// Holds its graph and machine by reference — both must outlive the
/// Problem (they are owned by the caller of OptimalModuloScheduler, which
/// already guarantees this). Canonicalization is computed lazily on first
/// use and is thread-safe; a Problem shared by the parallel II race pays
/// for it at most once.
class Problem {
public:
  Problem(const DependenceGraph &G, const MachineModel &M,
          const FormulationOptions &Opts)
      : G(G), M(M), Opts(Opts) {}

  Problem(const Problem &) = delete;
  Problem &operator=(const Problem &) = delete;

  const DependenceGraph &graph() const { return G; }
  const MachineModel &machine() const { return M; }
  const FormulationOptions &options() const { return Opts; }

  /// Content address: canonical-graph hash x machine digest x options
  /// digest. Node-relabeling and name-renaming invariant iff hashExact().
  uint64_t canonicalHash() const;

  /// True when the canonical labeling completed within its step budget,
  /// i.e. canonicalHash()/canonicalForm() are relabeling-invariant and
  /// safe to use as a content address. Pathologically symmetric graphs
  /// may come back false; caches must skip those problems.
  bool hashExact() const;

  /// CanonicalIndex[op] = position of operation \p op in the canonical
  /// node order (a permutation of [0, numOperations)).
  const std::vector<int> &canonicalIndex() const;

  /// The full canonical form: every scheduling-relevant fact (node
  /// signatures, scheduling edges, register def/use structure, machine
  /// digest, options digest) rewritten into canonical node indices and
  /// flattened to a word sequence. Two Problems with equal forms are
  /// schedule-isomorphic: a schedule for one maps to the other through
  /// canonicalIndex().
  const std::vector<uint64_t> &canonicalForm() const;

  /// Claims the once-per-Problem "PB falling back to ILP" warning slot:
  /// returns true exactly once per Problem. The attempt seam uses this so
  /// the warning fires once per scheduling request, not once per II.
  bool claimPbFallbackWarning() const {
    return !PbFallbackWarned.exchange(true, std::memory_order_relaxed);
  }

private:
  void computeCanonical() const;

  const DependenceGraph &G;
  const MachineModel &M;
  const FormulationOptions Opts;

  mutable std::once_flag CanonOnce;
  mutable uint64_t Hash = 0;
  mutable bool Exact = false;
  mutable std::vector<int> CanonIndex;
  mutable std::vector<uint64_t> Form;
  mutable std::atomic<bool> PbFallbackWarned{false};
};

} // namespace modsched

#endif // MODSCHED_SCHED_PROBLEM_H
