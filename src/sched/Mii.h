//===- sched/Mii.h - Minimum initiation interval ----------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lower bound MII = max(ResMII, RecMII) of Rau & Glaeser [1]:
/// ResMII from critical resources being fully utilized, RecMII from
/// critical loop-carried dependence cycles. MII is not tight (paper
/// Section 2); the ILP schedulers search upward from it.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SCHED_MII_H
#define MODSCHED_SCHED_MII_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"

namespace modsched {

/// Resource-constrained MII: max over resource types q of
/// ceil(total uses of q / count(q)). At least 1.
int resMii(const DependenceGraph &G, const MachineModel &M);

/// Recurrence-constrained MII: smallest II >= 1 such that every
/// dependence cycle C satisfies sum(latency) - II * sum(distance) <= 0.
/// Requires the graph to have no zero-distance cycles (asserts).
int recMii(const DependenceGraph &G);

/// max(resMii, recMii).
int mii(const DependenceGraph &G, const MachineModel &M);

} // namespace modsched

#endif // MODSCHED_SCHED_MII_H
