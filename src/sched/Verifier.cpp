//===- sched/Verifier.cpp - Schedule validity checking ---------------------===//

#include "sched/Verifier.h"

#include <cstdio>

using namespace modsched;

std::optional<std::string> modsched::verifySchedule(const DependenceGraph &G,
                                                    const MachineModel &M,
                                                    const ModuloSchedule &S,
                                                    int MaxTime) {
  char Buf[256];
  if (S.numOperations() != G.numOperations())
    return std::string("schedule has wrong number of operations");
  if (S.ii() < 1)
    return std::string("non-positive initiation interval");

  if (MaxTime >= 0) {
    for (int Op = 0; Op < G.numOperations(); ++Op) {
      if (S.time(Op) < 0 || S.time(Op) > MaxTime) {
        std::snprintf(Buf, sizeof(Buf),
                      "operation %s scheduled at %d outside [0, %d]",
                      G.operation(Op).Name.c_str(), S.time(Op), MaxTime);
        return std::string(Buf);
      }
    }
  }

  // Dependence constraints: time_j + w * II - time_i >= latency.
  for (const SchedEdge &E : G.schedEdges()) {
    long Lhs = long(S.time(E.Dst)) + long(E.Distance) * S.ii() -
               long(S.time(E.Src));
    if (Lhs < E.Latency) {
      std::snprintf(Buf, sizeof(Buf),
                    "dependence %s -> %s (latency %d, omega %d) violated: "
                    "slack %ld",
                    G.operation(E.Src).Name.c_str(),
                    G.operation(E.Dst).Name.c_str(), E.Latency, E.Distance,
                    Lhs - E.Latency);
      return std::string(Buf);
    }
  }

  // Modulo resource constraints via the MRT.
  Mrt Table(G, M, S);
  for (int Row = 0; Row < S.ii(); ++Row) {
    for (int R = 0; R < M.numResources(); ++R) {
      if (Table.usage(Row, R) > M.resource(R).Count) {
        std::snprintf(Buf, sizeof(Buf),
                      "resource %s oversubscribed in MRT row %d: %d > %d",
                      M.resource(R).Name.c_str(), Row, Table.usage(Row, R),
                      M.resource(R).Count);
        return std::string(Buf);
      }
    }
  }
  return std::nullopt;
}
