//===- sched/RegisterPressure.cpp - MaxLive / lifetimes --------------------===//

#include "sched/RegisterPressure.h"

#include <algorithm>
#include <cassert>

using namespace modsched;

int modsched::registerKillTime(const DependenceGraph &G,
                               const ModuloSchedule &S, int Reg) {
  const VirtualRegister &R = G.registers()[Reg];
  int Kill = S.time(R.Def);
  for (const RegisterUse &U : R.Uses) {
    int UseTime = S.time(U.Consumer) + U.Distance * S.ii();
    Kill = std::max(Kill, UseTime);
  }
  return Kill;
}

RegisterPressure
modsched::computeRegisterPressure(const DependenceGraph &G,
                                  const ModuloSchedule &S) {
  int II = S.ii();
  RegisterPressure P;
  P.LivePerRow.assign(II, 0);

  for (int Reg = 0; Reg < G.numRegisters(); ++Reg) {
    const VirtualRegister &R = G.registers()[Reg];
    int Def = S.time(R.Def);
    int Kill = registerKillTime(G, S, Reg);
    assert(Kill >= Def && "use scheduled before definition");
    int Length = Kill - Def + 1;
    P.LifetimeCycles.push_back(Length);
    P.TotalLifetime += Length;
    P.Buffers += (Length + II - 1) / II;

    // The lifetime covers cycles [Def, Kill]; fold onto the II rows.
    int FullTurns = Length / II;
    int Remainder = Length % II;
    for (int Row = 0; Row < II; ++Row)
      P.LivePerRow[Row] += FullTurns;
    int StartRow = ((Def % II) + II) % II;
    for (int Offset = 0; Offset < Remainder; ++Offset)
      ++P.LivePerRow[(StartRow + Offset) % II];
  }

  for (int Live : P.LivePerRow)
    P.MaxLive = std::max(P.MaxLive, Live);
  return P;
}
