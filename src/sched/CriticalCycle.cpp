//===- sched/CriticalCycle.cpp - Critical recurrence analysis -------------===//

#include "sched/CriticalCycle.h"

#include "graph/GraphAlgorithms.h"
#include "sched/Mii.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace modsched;

std::optional<RecurrenceCycle>
modsched::findCriticalCycle(const DependenceGraph &G) {
  assert(!hasZeroDistanceCycle(G) && "zero-distance cycle");
  int N = G.numOperations();
  if (N == 0 || G.numSchedEdges() == 0)
    return std::nullopt;

  int Rec = recMii(G);
  // Any positive cycle at II = RecMII - 1 has ceil(L/d) == RecMII (it is
  // positive there, and no cycle exceeds RecMII by minimality).
  int II = Rec - 1;

  // Bellman-Ford longest path with predecessor-edge tracking.
  std::vector<long> Dist(N, 0);
  std::vector<int> PredEdge(N, -1);
  int LastUpdated = -1;
  for (int Round = 0; Round <= N; ++Round) {
    LastUpdated = -1;
    for (int E = 0; E < G.numSchedEdges(); ++E) {
      const SchedEdge &Edge = G.schedEdges()[E];
      long Weight = Edge.Latency - long(II) * Edge.Distance;
      if (Dist[Edge.Src] + Weight > Dist[Edge.Dst]) {
        Dist[Edge.Dst] = Dist[Edge.Src] + Weight;
        PredEdge[Edge.Dst] = E;
        LastUpdated = Edge.Dst;
      }
    }
    if (LastUpdated < 0)
      return std::nullopt; // Converged: no positive cycle (acyclic or
                           // non-positive cycles only).
  }

  // Walk N predecessor links to guarantee landing on the cycle itself.
  int Node = LastUpdated;
  for (int Step = 0; Step < N; ++Step) {
    assert(PredEdge[Node] >= 0 && "relaxed node must have a predecessor");
    Node = G.schedEdges()[PredEdge[Node]].Src;
  }

  // Extract the cycle by walking predecessors until Node repeats.
  RecurrenceCycle Cycle;
  int Start = Node;
  int Current = Start;
  do {
    int E = PredEdge[Current];
    assert(E >= 0 && "cycle member must have a predecessor");
    Cycle.Edges.push_back(E);
    Cycle.TotalLatency += G.schedEdges()[E].Latency;
    Cycle.TotalDistance += G.schedEdges()[E].Distance;
    Current = G.schedEdges()[E].Src;
  } while (Current != Start);
  std::reverse(Cycle.Edges.begin(), Cycle.Edges.end());

  assert(Cycle.TotalDistance > 0 && "cycle must be loop-carried");
  assert(Cycle.iiBound() == Rec && "extracted cycle must be critical");
  return Cycle;
}

std::string modsched::describeCycle(const DependenceGraph &G,
                                    const RecurrenceCycle &Cycle) {
  std::string Out;
  char Buf[128];
  for (int E : Cycle.Edges) {
    const SchedEdge &Edge = G.schedEdges()[E];
    std::snprintf(Buf, sizeof(Buf), "%s -(%d,%d)-> ",
                  G.operation(Edge.Src).Name.c_str(), Edge.Latency,
                  Edge.Distance);
    Out += Buf;
  }
  if (!Cycle.Edges.empty())
    Out += G.operation(G.schedEdges()[Cycle.Edges.front()].Src).Name;
  std::snprintf(Buf, sizeof(Buf), "  [latency %ld over distance %ld => II >= %d]",
                Cycle.TotalLatency, Cycle.TotalDistance, Cycle.iiBound());
  Out += Buf;
  return Out;
}
