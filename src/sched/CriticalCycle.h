//===- sched/CriticalCycle.h - Critical recurrence analysis -----*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of the binding recurrence: the dependence cycle maximizing
/// latency(C) / distance(C), whose ceiling is RecMII. Besides serving as
/// an independent cross-check of the binary-search RecMII in sched/Mii,
/// the concrete cycle is the actionable diagnostic a compiler engineer
/// wants ("this II is limited by the path add -> mul -> add carried over
/// one iteration").
///
/// Implementation: for a candidate II, edge weight latency - II*distance
/// makes the critical cycle the one with weight sum zero at the critical
/// (rational) ratio. We find RecMII by binary search (as in sched/Mii)
/// and then recover a maximum-weight cycle at that II by walking the
/// predecessor links of a Bellman-Ford longest-path pass.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SCHED_CRITICALCYCLE_H
#define MODSCHED_SCHED_CRITICALCYCLE_H

#include "graph/DependenceGraph.h"

#include <optional>
#include <vector>

namespace modsched {

/// A dependence cycle with its aggregate latency and distance.
struct RecurrenceCycle {
  /// Edge indices (into G.schedEdges()) forming the cycle, in order.
  std::vector<int> Edges;
  long TotalLatency = 0;
  long TotalDistance = 0;

  /// The cycle's II requirement: ceil(latency / distance).
  int iiBound() const {
    return static_cast<int>((TotalLatency + TotalDistance - 1) /
                            TotalDistance);
  }
};

/// Finds a critical recurrence cycle: one whose iiBound() equals
/// RecMII. Returns nullopt for acyclic graphs (RecMII trivially 1).
/// Requires no zero-distance cycles.
std::optional<RecurrenceCycle> findCriticalCycle(const DependenceGraph &G);

/// Renders the cycle as "a -(l,w)-> b -(l,w)-> ... -> a".
std::string describeCycle(const DependenceGraph &G,
                          const RecurrenceCycle &Cycle);

} // namespace modsched

#endif // MODSCHED_SCHED_CRITICALCYCLE_H
