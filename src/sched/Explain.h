//===- sched/Explain.h - Infeasibility witnesses and provenance -*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solve forensics: typed constraint provenance and graph-level
/// infeasibility witnesses.
///
/// The ILP/PB formulations tag every emitted row with a RowOrigin (which
/// dependence edge, resource slot, or objective gadget produced it). When
/// an II attempt comes back infeasible, the solver's evidence — the
/// support of a Farkas ray (LP engine) or an unsat core (PB engine) — is
/// mapped through those origins into a graph-level witness a compiler
/// engineer can act on: a recurrence cycle with ceil(latency/distance)
/// greater than II, a resource with more uses than II * count, or an
/// operation whose ASAP/ALAP window is empty.
///
/// Witnesses are never trusted as produced: checkExplanation() re-derives
/// the infeasibility arithmetically from the dependence graph and machine
/// model alone, matching the repo's rule that schedulers self-verify.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SCHED_EXPLAIN_H
#define MODSCHED_SCHED_EXPLAIN_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"
#include "sched/CriticalCycle.h"

#include <optional>
#include <string>
#include <vector>

namespace modsched {

/// What kind of formulation row an origin describes.
enum class RowOriginKind : unsigned char {
  Unknown,       ///< Not tagged (should not appear after a full build).
  Assignment,    ///< "Op issues exactly once" row (Eq. 1).
  DepEdge,       ///< Dependence row(s) for one scheduling edge (Ineq. 4/19).
  Resource,      ///< Resource counting row for one (resource, MRT slot).
  StageWindow,   ///< Stage-variable window encoding (PB monotonicity rows).
  ObjectiveLink, ///< Objective machinery (kill ops, maxlive, buffers...).
};

/// Typed origin of one formulation row, stored in a side table keyed by
/// row id (constraint index for lp::Model, export-row index for
/// pb::Solver). POD so the tables stay cheap to build unconditionally.
struct RowOrigin {
  RowOriginKind Kind = RowOriginKind::Unknown;
  /// DepEdge: source / destination operations, latency, distance.
  int Src = -1;
  int Dst = -1;
  int Latency = 0;
  int Distance = 0;
  /// DepEdge: index into DependenceGraph::schedEdges(), or -1 for
  /// synthetic edges (kill-op and sink links) that have no graph edge.
  int EdgeIndex = -1;
  /// Resource: resource type index and MRT row slot (-1 when the row is
  /// not slot-specific, e.g. instance-mapping glue).
  int Resource = -1;
  int Slot = -1;
  /// Assignment / StageWindow: the operation. ObjectiveLink: the virtual
  /// register involved, or -1.
  int Op = -1;

  static RowOrigin assignment(int Op) {
    RowOrigin O;
    O.Kind = RowOriginKind::Assignment;
    O.Op = Op;
    return O;
  }
  static RowOrigin depEdge(int EdgeIndex, const SchedEdge &E) {
    RowOrigin O;
    O.Kind = RowOriginKind::DepEdge;
    O.Src = E.Src;
    O.Dst = E.Dst;
    O.Latency = E.Latency;
    O.Distance = E.Distance;
    O.EdgeIndex = EdgeIndex;
    return O;
  }
  static RowOrigin syntheticEdge(int Src, int Dst, int Latency,
                                 int Distance) {
    RowOrigin O;
    O.Kind = RowOriginKind::DepEdge;
    O.Src = Src;
    O.Dst = Dst;
    O.Latency = Latency;
    O.Distance = Distance;
    return O;
  }
  static RowOrigin resource(int Resource, int Slot) {
    RowOrigin O;
    O.Kind = RowOriginKind::Resource;
    O.Resource = Resource;
    O.Slot = Slot;
    return O;
  }
  static RowOrigin stageWindow(int Op) {
    RowOrigin O;
    O.Kind = RowOriginKind::StageWindow;
    O.Op = Op;
    return O;
  }
  static RowOrigin objectiveLink(int Reg = -1) {
    RowOrigin O;
    O.Kind = RowOriginKind::ObjectiveLink;
    O.Op = Reg;
    return O;
  }
};

/// The shape of a graph-level infeasibility witness.
enum class WitnessKind : unsigned char {
  None,               ///< No witness found ("unexplained").
  RecurrenceCycle,    ///< A cycle with ceil(latency/distance) > II.
  ResourceSaturation, ///< A resource with uses > II * count.
  ScheduleWindow,     ///< An operation with an empty ASAP/ALAP window.
};

/// Where the witness evidence came from.
enum class ExplainSource : unsigned char {
  None,          ///< No explanation attempted / available.
  GraphAnalysis, ///< Pure DDG analysis (no solver involved).
  FarkasRay,     ///< LP engine: support rows of a Farkas certificate.
  UnsatCore,     ///< PB engine: assumption core over selector groups.
};

/// A graph-level explanation of one infeasible II attempt. Exactly the
/// fields of the active WitnessKind are meaningful; Verified is set by
/// the caller from checkExplanation() and must never be assumed.
struct Explanation {
  WitnessKind Kind = WitnessKind::None;
  ExplainSource Source = ExplainSource::None;
  /// True once checkExplanation() confirmed the witness arithmetically.
  bool Verified = false;
  /// RecurrenceCycle: the offending cycle (edge indices + totals).
  RecurrenceCycle Cycle;
  /// ResourceSaturation: resource index, total uses, instance count.
  int Resource = -1;
  long ResourceUses = 0;
  int ResourceCount = 0;
  /// ScheduleWindow: the windowless operation (-1 = whole graph) and the
  /// schedule-length bound the window was computed against.
  int WindowOp = -1;
  int WindowMaxTime = -1;
};

/// Short lowercase tag for bench JSON / trace args ("cycle", "resource",
/// "window", "none").
const char *witnessName(WitnessKind K);

/// Short lowercase tag for the evidence source ("graph", "farkas",
/// "core", "none").
const char *sourceName(ExplainSource S);

/// Total cycles of \p Resource demanded per iteration (the numerator of
/// ResMII for that resource).
long resourceUses(const DependenceGraph &G, const MachineModel &M,
                  int Resource);

/// Explains an infeasible II from the graph and machine alone: binding
/// recurrence cycle if RecMII > II, most oversubscribed resource if
/// ResMII > II, else an empty ASAP/ALAP window under the stage budget
/// derived from \p ScheduleLengthSlack (the formulation's window rule).
/// Returns nullopt when none of those conditions hold — i.e. the
/// infeasibility, if real, needs solver evidence to localize.
std::optional<Explanation> explainInfeasibleIi(const DependenceGraph &G,
                                               const MachineModel &M, int II,
                                               int ScheduleLengthSlack);

/// Maps solver evidence (the origins of a Farkas support or unsat core)
/// to a witness: searches for a positive-weight cycle restricted to the
/// implicated dependence edges, then checks implicated resources for
/// saturation and implicated stage windows for emptiness. \p Source
/// labels the resulting explanation. Returns nullopt when the evidence
/// does not yield a checkable witness.
std::optional<Explanation>
explainFromOrigins(const DependenceGraph &G, const MachineModel &M, int II,
                   int ScheduleLengthSlack,
                   const std::vector<RowOrigin> &Support,
                   ExplainSource Source);

/// Independent arithmetic check of a witness against the DDG and machine
/// model only — no solver state. A RecurrenceCycle must be a closed
/// in-range cycle whose recomputed totals match the record and imply
/// ceil(latency/distance) > II; a ResourceSaturation must satisfy the
/// recounted uses > II * count; a ScheduleWindow must have an empty
/// recomputed window. WitnessKind::None never verifies.
bool checkExplanation(const DependenceGraph &G, const MachineModel &M, int II,
                      int ScheduleLengthSlack, const Explanation &E);

/// Renders the witness for humans, e.g.
/// "recurrence cycle needs II >= 4: add -(1,0)-> mul -(3,1)-> add".
std::string describeExplanation(const DependenceGraph &G,
                                const MachineModel &M, int II,
                                const Explanation &E);

} // namespace modsched

#endif // MODSCHED_SCHED_EXPLAIN_H
