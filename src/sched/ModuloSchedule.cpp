//===- sched/ModuloSchedule.cpp - Modulo schedule + MRT --------------------===//

#include "sched/ModuloSchedule.h"

#include <algorithm>
#include <cstdio>

using namespace modsched;

int ModuloSchedule::scheduleLength() const {
  int Max = 0;
  for (int T : StartTime)
    Max = std::max(Max, T);
  return Max + 1;
}

Mrt::Mrt(const DependenceGraph &G, const MachineModel &M,
         const ModuloSchedule &S)
    : Interval(S.ii()), NumResources(M.numResources()) {
  Counts.assign(size_t(Interval) * NumResources, 0);
  for (int Op = 0; Op < G.numOperations(); ++Op) {
    const OpClass &Class = M.opClass(G.operation(Op).OpClass);
    for (const ResourceUsage &U : Class.Usages) {
      int Row = (S.time(Op) + U.Cycle) % Interval;
      if (Row < 0)
        Row += Interval;
      ++Counts[size_t(Row) * NumResources + U.Resource];
    }
  }
}

bool Mrt::fitsMachine(const MachineModel &M) const {
  for (int Row = 0; Row < Interval; ++Row)
    for (int R = 0; R < NumResources; ++R)
      if (usage(Row, R) > M.resource(R).Count)
        return false;
  return true;
}

std::string Mrt::toString(const MachineModel &M) const {
  std::string Out = "row ";
  for (const ResourceType &R : M.resources()) {
    Out += R.Name;
    Out += ' ';
  }
  Out += '\n';
  char Buf[64];
  for (int Row = 0; Row < Interval; ++Row) {
    std::snprintf(Buf, sizeof(Buf), "%3d ", Row);
    Out += Buf;
    for (int R = 0; R < NumResources; ++R) {
      std::snprintf(Buf, sizeof(Buf), "%*d ",
                    static_cast<int>(M.resource(R).Name.size()),
                    usage(Row, R));
      Out += Buf;
    }
    Out += '\n';
  }
  return Out;
}
