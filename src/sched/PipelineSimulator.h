//===- sched/PipelineSimulator.h - Dynamic schedule execution ---*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-accurate simulator of a modulo-scheduled loop: it issues K
/// overlapped iterations (iteration i starts at i * II), tracks every
/// resource reservation and every value's definition and last use, and
/// reports:
///
///  * dynamic constraint violations (a second, execution-based check,
///    independent of the static verifier),
///  * the total cycle count and steady-state throughput,
///  * the peak number of simultaneously live values, which in steady
///    state must equal the static MaxLive of Section 2 (this identity is
///    exercised by the property tests).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SCHED_PIPELINESIMULATOR_H
#define MODSCHED_SCHED_PIPELINESIMULATOR_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"
#include "sched/ModuloSchedule.h"

#include <optional>
#include <string>
#include <vector>

namespace modsched {

/// Outcome of simulating a modulo schedule.
struct SimulationReport {
  /// Description of the first dynamic violation, if any.
  std::optional<std::string> Violation;
  /// Cycle in which the last operation of the last iteration issued.
  long LastIssueCycle = 0;
  /// Total cycles = LastIssueCycle + 1.
  long TotalCycles = 0;
  /// Iterations completed.
  int Iterations = 0;
  /// Average cycles per iteration over the whole run (approaches II as
  /// the iteration count grows).
  double CyclesPerIteration = 0.0;
  /// Peak number of simultaneously live values over the run.
  int PeakLiveValues = 0;
  /// Peak live values restricted to the steady-state region (all stages
  /// overlapping); equals the static MaxLive.
  int SteadyStateLiveValues = 0;
};

/// Simulates \p Iterations overlapped iterations of \p S. The schedule
/// does not have to be valid; violations are reported, not asserted.
SimulationReport simulateSchedule(const DependenceGraph &G,
                                  const MachineModel &M,
                                  const ModuloSchedule &S, int Iterations);

} // namespace modsched

#endif // MODSCHED_SCHED_PIPELINESIMULATOR_H
