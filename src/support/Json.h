//===- support/Json.h - Minimal JSON emission helpers -----------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny streaming JSON writer used by the telemetry trace sinks
/// (Chrome trace_event / JSONL, see support/Telemetry.h) and by the
/// benchmark result emitter (bench/Harness.h). It appends into a caller-
/// owned std::string, tracks nesting in a small state stack, and inserts
/// commas automatically. There is deliberately no parser here: the repo
/// only ever PRODUCES machine-readable artifacts; consumers are external
/// tools (Perfetto, scripts/check_bench_json.py).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SUPPORT_JSON_H
#define MODSCHED_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace modsched {
namespace json {

/// Escapes \p S for inclusion inside a JSON string literal (quotes are
/// NOT added). Handles quotes, backslash, and control characters.
std::string escape(std::string_view S);

/// Streaming JSON writer with automatic comma placement.
///
/// Usage:
/// \code
///   std::string Out;
///   JsonWriter W(Out);
///   W.beginObject();
///   W.key("name").value("table1");
///   W.key("records").beginArray();
///   W.value(1).value(2.5).value(true);
///   W.endArray();
///   W.endObject();
/// \endcode
class JsonWriter {
public:
  explicit JsonWriter(std::string &Out) : Out(Out) {}

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; the next value()/begin*() call is its value.
  JsonWriter &key(std::string_view K);

  JsonWriter &value(std::string_view V);
  JsonWriter &value(const char *V) { return value(std::string_view(V)); }
  JsonWriter &value(bool V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(int64_t V);
  JsonWriter &value(uint64_t V);
  /// Non-finite doubles are emitted as null (JSON has no inf/nan).
  JsonWriter &value(double V);
  JsonWriter &null();

  /// True once every container opened has been closed.
  bool done() const { return Stack.empty() && WroteTopLevel; }

private:
  /// Writes the separating comma (if needed) before a new element.
  void preValue();

  enum class Scope : uint8_t { Object, Array };
  struct Level {
    Scope In;
    bool HasElements = false;
    bool PendingKey = false;
  };

  std::string &Out;
  std::vector<Level> Stack;
  bool WroteTopLevel = false;
};

} // namespace json
} // namespace modsched

#endif // MODSCHED_SUPPORT_JSON_H
