//===- support/Statistics.h - Summary statistics accumulators --*- C++ -*-===//
//
// Part of the modsched project: a reproduction of Eichenberger & Davidson,
// "Efficient Formulation for Optimal Modulo Schedulers", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary-statistics accumulator matching the row format of Tables 1 and 2
/// in the paper: min, frequency of the min value, median, average, and max.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SUPPORT_STATISTICS_H
#define MODSCHED_SUPPORT_STATISTICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace modsched {

/// Accumulates a sample of double-valued measurements and reports the
/// five summary statistics used throughout the paper's evaluation tables.
///
/// The "freq" column in the paper gives the fraction of samples equal to
/// the minimum value (e.g. "0 node in 73.9% of the loops").
class SummaryStats {
public:
  /// Adds one measurement to the sample.
  void add(double Value);

  /// Returns the number of measurements added so far.
  size_t count() const { return Values.size(); }

  bool empty() const { return Values.empty(); }

  /// Smallest measurement. Requires a non-empty sample.
  double min() const;

  /// Largest measurement. Requires a non-empty sample.
  double max() const;

  /// Fraction of measurements equal to the minimum, in [0, 1].
  double freqOfMin() const;

  /// Median (average of the two middle elements for even-sized samples).
  double median() const;

  /// Arithmetic mean.
  double average() const;

  /// Sum of all measurements.
  double sum() const;

  /// Sample standard deviation (N-1 denominator); 0 for samples with
  /// fewer than two elements. Used by the telemetry summaries.
  double stddev() const;

  /// The \p P-th percentile, P in [0, 100], with linear interpolation
  /// between closest ranks (percentile(50) == median()). Requires a
  /// non-empty sample.
  double percentile(double P) const;

  /// Renders "min freq% median average max (n=count)" with fixed
  /// precision, matching the layout of the paper's tables plus the
  /// sample count.
  std::string formatRow() const;

private:
  /// Sorts the sample lazily; const accessors call this first.
  void ensureSorted() const;

  mutable std::vector<double> Values;
  mutable bool Sorted = true;
};

/// Computes the median of an arbitrary vector (copies and sorts it).
double medianOf(std::vector<double> Values);

} // namespace modsched

#endif // MODSCHED_SUPPORT_STATISTICS_H
