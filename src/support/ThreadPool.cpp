//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//

#include "support/ThreadPool.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace modsched;

ThreadPool::ThreadPool(int NumThreads) {
  int N = std::max(1, NumThreads);
  Workers.reserve(static_cast<size_t>(N));
  for (int I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllIdle.wait(Lock, [this] { return Pending == 0; });
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "null task submitted to ThreadPool");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!Stopping && "submit after ThreadPool destruction began");
    Queue.push_back(std::move(Task));
    ++Pending;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Pending == 0; });
}

void ThreadPool::workerMain() {
  // Counters / phase timers recorded by tasks on this thread accumulate
  // into a thread-local shard, merged into the registry when the worker
  // exits (pool destruction).
  telemetry::ThreadShardScope Shard;
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, and no work left.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Pending;
      if (Pending == 0)
        AllIdle.notify_all();
    }
  }
}
