//===- support/Hash.h - Deterministic hash combinators ----------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic 64-bit hashing helpers used by the canonical
/// Problem digest and the content-addressed solution cache. The mixer is
/// splitmix64; the combinator is order-sensitive (hashCombine) with an
/// order-insensitive variant (hashUnordered) for multisets such as the
/// stable-color histogram of the WL refinement. All results are
/// platform-independent: they depend only on the fed values, never on
/// pointers, iteration order of unordered containers, or std::hash.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SUPPORT_HASH_H
#define MODSCHED_SUPPORT_HASH_H

#include <cstdint>
#include <string_view>

namespace modsched {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Order-SENSITIVE combination: feeds \p Value into running hash \p Seed.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return hashMix(Seed ^ (hashMix(Value) + 0x9e3779b97f4a7c15ull +
                         (Seed << 6) + (Seed >> 2)));
}

/// Order-INSENSITIVE combination: commutative and associative, so a
/// multiset of values hashes identically regardless of feed order. Each
/// element is mixed first so the sum does not telescope on small ints.
inline uint64_t hashUnordered(uint64_t Acc, uint64_t Value) {
  return Acc + (hashMix(Value) | 1); // |1 keeps zero elements visible.
}

/// Hashes a byte string (used for machine/opclass names kept out of the
/// canonical digest, and for cache request keys built from enum names).
inline uint64_t hashBytes(std::string_view Bytes, uint64_t Seed = 0) {
  uint64_t H = hashMix(Seed ^ (uint64_t)Bytes.size());
  for (unsigned char C : Bytes)
    H = hashCombine(H, C);
  return H;
}

} // namespace modsched

#endif // MODSCHED_SUPPORT_HASH_H
