//===- support/Telemetry.cpp - Solver telemetry layer ---------------------===//

#include "support/Telemetry.h"

#include "support/Json.h"

#include <cstdlib>
#include <cstring>

using namespace modsched;
using namespace modsched::telemetry;

//===----------------------------------------------------------------------===//
// Global state
//===----------------------------------------------------------------------===//

TraceSink *telemetry::detail::ActiveSink = nullptr;
bool telemetry::detail::StatsActive = false;

namespace {

/// Owns the installed sink (detail::ActiveSink is the borrowed fast-path
/// pointer). File-scope so process exit flushes and closes the file.
std::unique_ptr<TraceSink> OwnedSink;

/// Trace epoch: timestamps are microseconds since this point.
std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return Epoch;
}

/// Registries use function-local statics so counters constructed during
/// static initialization of other translation units register safely.
std::vector<Counter *> &counterRegistry() {
  static std::vector<Counter *> Registry;
  return Registry;
}

std::vector<PhaseTimer *> &timerRegistry() {
  static std::vector<PhaseTimer *> Registry;
  return Registry;
}

} // namespace

double telemetry::detail::nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - traceEpoch())
      .count();
}

void telemetry::installSink(std::unique_ptr<TraceSink> Sink) {
  if (OwnedSink)
    OwnedSink->flush();
  OwnedSink = std::move(Sink);
  detail::ActiveSink = OwnedSink.get();
}

void telemetry::uninstallSink() { installSink(nullptr); }

void telemetry::setStatsEnabled(bool Enabled) {
  detail::StatsActive = Enabled;
}

void telemetry::detail::emitSlow(EventPhase Phase, const char *Cat,
                                 const char *Name, double Value,
                                 const Arg *Args, size_t NumArgs) {
  TraceSink *Sink = ActiveSink;
  if (!Sink)
    return;
  TraceEvent E;
  E.Phase = Phase;
  E.Category = Cat;
  E.Name = Name;
  E.TimestampUs = nowUs();
  E.Value = Value;
  E.Args = Args;
  E.NumArgs = NumArgs;
  Sink->event(E);
}

//===----------------------------------------------------------------------===//
// Counters / timers
//===----------------------------------------------------------------------===//

telemetry::Counter::Counter(const char *Category, const char *Name,
                            const char *Description)
    : Cat(Category), Nm(Name), Desc(Description) {
  counterRegistry().push_back(this);
}

telemetry::PhaseTimer::PhaseTimer(const char *Category, const char *Name,
                                  const char *Description)
    : Cat(Category), Nm(Name), Desc(Description) {
  timerRegistry().push_back(this);
}

const std::vector<Counter *> &telemetry::allCounters() {
  return counterRegistry();
}

const std::vector<PhaseTimer *> &telemetry::allPhaseTimers() {
  return timerRegistry();
}

Counter *telemetry::findCounter(const std::string &CategorySlashName) {
  for (Counter *C : counterRegistry())
    if (CategorySlashName ==
        std::string(C->category()) + "/" + C->name())
      return C;
  return nullptr;
}

PhaseTimer *telemetry::findPhaseTimer(const std::string &CategorySlashName) {
  for (PhaseTimer *T : timerRegistry())
    if (CategorySlashName ==
        std::string(T->category()) + "/" + T->name())
      return T;
  return nullptr;
}

void telemetry::reportStats(std::FILE *Out) {
  std::fprintf(Out, "=== modsched telemetry ===\n");
  for (const Counter *C : counterRegistry()) {
    if (C->value() == 0)
      continue;
    std::fprintf(Out, "%12lld  %s/%-32s %s\n",
                 static_cast<long long>(C->value()), C->category(),
                 C->name(), C->description());
  }
  for (const PhaseTimer *T : timerRegistry()) {
    if (T->invocations() == 0)
      continue;
    std::fprintf(Out, "%11.3fs  %s/%-32s %s (%llu calls)\n", T->seconds(),
                 T->category(), T->name(), T->description(),
                 static_cast<unsigned long long>(T->invocations()));
  }
}

void telemetry::resetAllStats() {
  for (Counter *C : counterRegistry())
    C->reset();
  for (PhaseTimer *T : timerRegistry())
    T->reset();
}

//===----------------------------------------------------------------------===//
// JSON file sink
//===----------------------------------------------------------------------===//

namespace {
constexpr size_t FlushThresholdBytes = 1 << 16;
} // namespace

std::unique_ptr<JsonTraceSink>
JsonTraceSink::open(const std::string &Path, TraceFormat Format) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr,
                 "modsched: warning: cannot open trace file '%s'; "
                 "tracing disabled\n",
                 Path.c_str());
    return nullptr;
  }
  return std::unique_ptr<JsonTraceSink>(new JsonTraceSink(File, Format));
}

JsonTraceSink::JsonTraceSink(std::FILE *File, TraceFormat Format)
    : File(File), Format(Format) {
  Buffer.reserve(FlushThresholdBytes + 1024);
  if (Format == TraceFormat::ChromeJson)
    Buffer += "[\n";
}

JsonTraceSink::~JsonTraceSink() {
  if (Format == TraceFormat::ChromeJson)
    Buffer += "\n]\n";
  flush();
  std::fclose(File);
}

void JsonTraceSink::event(const TraceEvent &E) {
  if (Format == TraceFormat::ChromeJson && WroteAnyEvent)
    Buffer += ",\n";
  WroteAnyEvent = true;

  json::JsonWriter W(Buffer);
  W.beginObject();
  char Phase[2] = {static_cast<char>(E.Phase), '\0'};
  W.key("ph").value(Phase);
  W.key("cat").value(E.Category);
  W.key("name").value(E.Name);
  W.key("ts").value(E.TimestampUs);
  W.key("pid").value(1);
  W.key("tid").value(1);
  if (E.Phase == EventPhase::Instant)
    W.key("s").value("t"); // Instant scope: thread.
  if (E.Phase == EventPhase::Counter) {
    W.key("args").beginObject();
    W.key("value").value(E.Value);
    W.endObject();
  } else if (E.NumArgs > 0) {
    W.key("args").beginObject();
    for (size_t I = 0; I < E.NumArgs; ++I) {
      const Arg &A = E.Args[I];
      W.key(A.Key);
      switch (A.K) {
      case Arg::Kind::Int:
        W.value(A.Int);
        break;
      case Arg::Kind::Float:
        W.value(A.Float);
        break;
      case Arg::Kind::CStr:
        W.value(A.CStr ? A.CStr : "");
        break;
      }
    }
    W.endObject();
  }
  W.endObject();
  if (Format == TraceFormat::Jsonl)
    Buffer += '\n';

  if (Buffer.size() >= FlushThresholdBytes)
    flush();
}

void JsonTraceSink::flush() {
  if (!Buffer.empty()) {
    std::fwrite(Buffer.data(), 1, Buffer.size(), File);
    Buffer.clear();
  }
  std::fflush(File);
}

//===----------------------------------------------------------------------===//
// Environment hook
//===----------------------------------------------------------------------===//

namespace {

void reportStatsAtExit() { reportStats(stderr); }

/// atexit-ordering safety: uninstall the sink before static destructors
/// of OTHER translation units could run (OwnedSink's own destructor also
/// closes the file if the handler never ran, e.g. on std::abort paths
/// where atexit handlers are skipped entirely).
void closeTraceAtExit() { uninstallSink(); }

bool envFlagSet(const char *Name) {
  const char *V = std::getenv(Name);
  return V && V[0] != '\0' && std::strcmp(V, "0") != 0;
}

} // namespace

void telemetry::initFromEnvironment() {
  static bool StatsHookRegistered = false;
  if (envFlagSet("MODSCHED_STATS")) {
    setStatsEnabled(true);
    if (!StatsHookRegistered) {
      std::atexit(reportStatsAtExit);
      StatsHookRegistered = true;
    }
  }

  static bool TraceHookRegistered = false;
  if (const char *Path = std::getenv("MODSCHED_TRACE")) {
    if (Path[0] != '\0' && !tracingEnabled()) {
      std::string P(Path);
      TraceFormat Format = TraceFormat::ChromeJson;
      if (P.size() >= 6 && P.compare(P.size() - 6, 6, ".jsonl") == 0)
        Format = TraceFormat::Jsonl;
      if (auto Sink = JsonTraceSink::open(P, Format)) {
        installSink(std::move(Sink));
        if (!TraceHookRegistered) {
          std::atexit(closeTraceAtExit);
          TraceHookRegistered = true;
        }
      }
    }
  }
}

namespace {

/// Static initializer: every binary linking modsched_support honors
/// MODSCHED_TRACE / MODSCHED_STATS with no code changes.
struct EnvInitializer {
  EnvInitializer() { initFromEnvironment(); }
};
EnvInitializer InitTelemetryFromEnv;

} // namespace
