//===- support/Telemetry.cpp - Solver telemetry layer ---------------------===//

#include "support/Telemetry.h"

#include "support/Json.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace modsched;
using namespace modsched::telemetry;

//===----------------------------------------------------------------------===//
// Global state
//===----------------------------------------------------------------------===//

std::atomic<TraceSink *> telemetry::detail::ActiveSink{nullptr};
std::atomic<bool> telemetry::detail::StatsActive{false};
thread_local bool telemetry::detail::ShardActive = false;

namespace {

/// Serializes sink installation and event emission: TraceSink
/// implementations are single-threaded by contract, so concurrent
/// solves funnel their (already rare — tracing only) events through
/// this lock. Function-local so static-init-order cannot bite counters
/// constructed in other translation units.
std::mutex &sinkMutex() {
  static std::mutex M;
  return M;
}

/// Small sequential id per emitting thread (1 = first emitter).
int currentThreadTid() {
  static std::atomic<int> NextTid{1};
  thread_local int Tid = 0;
  if (Tid == 0)
    Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

/// Owns the installed sink (detail::ActiveSink is the borrowed fast-path
/// pointer). File-scope so process exit flushes and closes the file.
/// Guarded by sinkMutex().
std::unique_ptr<TraceSink> OwnedSink;

/// Trace epoch: timestamps are microseconds since this point.
std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return Epoch;
}

/// Registries use function-local statics so counters constructed during
/// static initialization of other translation units register safely.
std::vector<Counter *> &counterRegistry() {
  static std::vector<Counter *> Registry;
  return Registry;
}

std::vector<PhaseTimer *> &timerRegistry() {
  static std::vector<PhaseTimer *> Registry;
  return Registry;
}

} // namespace

double telemetry::detail::nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - traceEpoch())
      .count();
}

void telemetry::installSink(std::unique_ptr<TraceSink> Sink) {
  std::lock_guard<std::mutex> Lock(sinkMutex());
  if (OwnedSink)
    OwnedSink->flush();
  OwnedSink = std::move(Sink);
  detail::ActiveSink.store(OwnedSink.get(), std::memory_order_release);
}

void telemetry::uninstallSink() { installSink(nullptr); }

void telemetry::setStatsEnabled(bool Enabled) {
  detail::StatsActive.store(Enabled, std::memory_order_relaxed);
}

void telemetry::detail::emitSlow(EventPhase Phase, const char *Cat,
                                 const char *Name, double Value,
                                 const Arg *Args, size_t NumArgs) {
  // Resolve the tid outside the lock (touches only thread-local state).
  int Tid = currentThreadTid();
  std::lock_guard<std::mutex> Lock(sinkMutex());
  TraceSink *Sink = ActiveSink.load(std::memory_order_acquire);
  if (!Sink)
    return; // Uninstalled between the fast-path test and the lock.
  TraceEvent E;
  E.Phase = Phase;
  E.Category = Cat;
  E.Name = Name;
  E.TimestampUs = nowUs();
  E.Value = Value;
  E.Args = Args;
  E.NumArgs = NumArgs;
  E.Tid = Tid;
  Sink->event(E);
}

//===----------------------------------------------------------------------===//
// Counters / timers
//===----------------------------------------------------------------------===//

telemetry::Counter::Counter(const char *Category, const char *Name,
                            const char *Description)
    : Cat(Category), Nm(Name), Desc(Description) {
  Index = static_cast<uint32_t>(counterRegistry().size());
  counterRegistry().push_back(this);
}

telemetry::PhaseTimer::PhaseTimer(const char *Category, const char *Name,
                                  const char *Description)
    : Cat(Category), Nm(Name), Desc(Description) {
  Index = static_cast<uint32_t>(timerRegistry().size());
  timerRegistry().push_back(this);
}

void telemetry::PhaseTimer::mergeShardDelta(double SampleSeconds,
                                            uint64_t NumInvocations) {
  // CAS add: std::atomic<double>::fetch_add is C++20 but spelled as a
  // loop here so every toolchain in CI lowers it identically.
  double Cur = MergedSeconds.load(std::memory_order_relaxed);
  while (!MergedSeconds.compare_exchange_weak(Cur, Cur + SampleSeconds,
                                              std::memory_order_relaxed))
    ;
  MergedInvocations.fetch_add(NumInvocations, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Thread shards
//===----------------------------------------------------------------------===//

namespace {

/// Per-thread stats accumulator: one slot per registered counter/timer,
/// indexed by registration index. Touched only by its owning thread;
/// merged into the registry's atomic cells on scope exit / flush.
struct StatsShard {
  std::vector<int64_t> Counters;
  struct TimerDelta {
    double Seconds = 0.0;
    uint64_t Invocations = 0;
  };
  std::vector<TimerDelta> Timers;

  void mergeAndClear() {
    const std::vector<Counter *> &Cs = allCounters();
    for (size_t I = 0; I < Counters.size(); ++I)
      if (Counters[I] != 0) {
        Cs[I]->mergeShardDelta(Counters[I]);
        Counters[I] = 0;
      }
    const std::vector<PhaseTimer *> &Ts = allPhaseTimers();
    for (size_t I = 0; I < Timers.size(); ++I)
      if (Timers[I].Invocations != 0) {
        Ts[I]->mergeShardDelta(Timers[I].Seconds, Timers[I].Invocations);
        Timers[I] = {};
      }
  }
};

/// The calling thread's shard storage (valid iff detail::ShardActive).
thread_local StatsShard *TlsShard = nullptr;

} // namespace

void telemetry::detail::shardAddCounter(uint32_t Index, int64_t N) {
  StatsShard *S = TlsShard;
  if (S->Counters.size() <= Index)
    S->Counters.resize(Index + 1, 0);
  S->Counters[Index] += N;
}

void telemetry::detail::shardAddTimer(uint32_t Index, double Seconds) {
  StatsShard *S = TlsShard;
  if (S->Timers.size() <= Index)
    S->Timers.resize(Index + 1);
  S->Timers[Index].Seconds += Seconds;
  ++S->Timers[Index].Invocations;
}

telemetry::ThreadShardScope::ThreadShardScope()
    : Installed(!detail::ShardActive) {
  if (Installed) {
    TlsShard = new StatsShard;
    detail::ShardActive = true;
  }
}

telemetry::ThreadShardScope::~ThreadShardScope() {
  if (!Installed)
    return;
  TlsShard->mergeAndClear();
  delete TlsShard;
  TlsShard = nullptr;
  detail::ShardActive = false;
}

void telemetry::flushThreadShard() {
  if (detail::ShardActive)
    TlsShard->mergeAndClear();
}

const std::vector<Counter *> &telemetry::allCounters() {
  return counterRegistry();
}

const std::vector<PhaseTimer *> &telemetry::allPhaseTimers() {
  return timerRegistry();
}

Counter *telemetry::findCounter(const std::string &CategorySlashName) {
  for (Counter *C : counterRegistry())
    if (CategorySlashName ==
        std::string(C->category()) + "/" + C->name())
      return C;
  return nullptr;
}

PhaseTimer *telemetry::findPhaseTimer(const std::string &CategorySlashName) {
  for (PhaseTimer *T : timerRegistry())
    if (CategorySlashName ==
        std::string(T->category()) + "/" + T->name())
      return T;
  return nullptr;
}

void telemetry::reportStats(std::FILE *Out) {
  std::fprintf(Out, "=== modsched telemetry ===\n");
  for (const Counter *C : counterRegistry()) {
    if (C->value() == 0)
      continue;
    std::fprintf(Out, "%12lld  %s/%-32s %s\n",
                 static_cast<long long>(C->value()), C->category(),
                 C->name(), C->description());
  }
  for (const PhaseTimer *T : timerRegistry()) {
    if (T->invocations() == 0)
      continue;
    std::fprintf(Out, "%11.3fs  %s/%-32s %s (%llu calls)\n", T->seconds(),
                 T->category(), T->name(), T->description(),
                 static_cast<unsigned long long>(T->invocations()));
  }
}

void telemetry::resetAllStats() {
  for (Counter *C : counterRegistry())
    C->reset();
  for (PhaseTimer *T : timerRegistry())
    T->reset();
}

//===----------------------------------------------------------------------===//
// JSON file sink
//===----------------------------------------------------------------------===//

namespace {
constexpr size_t FlushThresholdBytes = 1 << 16;
} // namespace

std::unique_ptr<JsonTraceSink>
JsonTraceSink::open(const std::string &Path, TraceFormat Format) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr,
                 "modsched: warning: cannot open trace file '%s'; "
                 "tracing disabled\n",
                 Path.c_str());
    return nullptr;
  }
  return std::unique_ptr<JsonTraceSink>(new JsonTraceSink(File, Format));
}

JsonTraceSink::JsonTraceSink(std::FILE *File, TraceFormat Format)
    : File(File), Format(Format) {
  Buffer.reserve(FlushThresholdBytes + 1024);
  if (Format == TraceFormat::ChromeJson)
    Buffer += "[\n";
}

JsonTraceSink::~JsonTraceSink() {
  if (Format == TraceFormat::ChromeJson)
    Buffer += "\n]\n";
  flush();
  std::fclose(File);
}

void JsonTraceSink::event(const TraceEvent &E) {
  if (Format == TraceFormat::ChromeJson && WroteAnyEvent)
    Buffer += ",\n";
  WroteAnyEvent = true;

  json::JsonWriter W(Buffer);
  W.beginObject();
  char Phase[2] = {static_cast<char>(E.Phase), '\0'};
  W.key("ph").value(Phase);
  W.key("cat").value(E.Category);
  W.key("name").value(E.Name);
  W.key("ts").value(E.TimestampUs);
  W.key("pid").value(1);
  W.key("tid").value(E.Tid);
  if (E.Phase == EventPhase::Instant)
    W.key("s").value("t"); // Instant scope: thread.
  if (E.Phase == EventPhase::Counter) {
    W.key("args").beginObject();
    W.key("value").value(E.Value);
    W.endObject();
  } else if (E.NumArgs > 0) {
    W.key("args").beginObject();
    for (size_t I = 0; I < E.NumArgs; ++I) {
      const Arg &A = E.Args[I];
      W.key(A.Key);
      switch (A.K) {
      case Arg::Kind::Int:
        W.value(A.Int);
        break;
      case Arg::Kind::Float:
        W.value(A.Float);
        break;
      case Arg::Kind::CStr:
        W.value(A.CStr ? A.CStr : "");
        break;
      }
    }
    W.endObject();
  }
  W.endObject();
  if (Format == TraceFormat::Jsonl)
    Buffer += '\n';

  if (Buffer.size() >= FlushThresholdBytes)
    flush();
}

void JsonTraceSink::flush() {
  if (!Buffer.empty()) {
    std::fwrite(Buffer.data(), 1, Buffer.size(), File);
    Buffer.clear();
  }
  std::fflush(File);
}

//===----------------------------------------------------------------------===//
// Environment hook
//===----------------------------------------------------------------------===//

namespace {

void reportStatsAtExit() { reportStats(stderr); }

/// atexit-ordering safety: uninstall the sink before static destructors
/// of OTHER translation units could run (OwnedSink's own destructor also
/// closes the file if the handler never ran, e.g. on std::abort paths
/// where atexit handlers are skipped entirely).
void closeTraceAtExit() { uninstallSink(); }

bool envFlagSet(const char *Name) {
  const char *V = std::getenv(Name);
  return V && V[0] != '\0' && std::strcmp(V, "0") != 0;
}

} // namespace

void telemetry::initFromEnvironment() {
  static bool StatsHookRegistered = false;
  if (envFlagSet("MODSCHED_STATS")) {
    setStatsEnabled(true);
    if (!StatsHookRegistered) {
      std::atexit(reportStatsAtExit);
      StatsHookRegistered = true;
    }
  }

  static bool TraceHookRegistered = false;
  if (const char *Path = std::getenv("MODSCHED_TRACE")) {
    if (Path[0] != '\0' && !tracingEnabled()) {
      std::string P(Path);
      TraceFormat Format = TraceFormat::ChromeJson;
      if (P.size() >= 6 && P.compare(P.size() - 6, 6, ".jsonl") == 0)
        Format = TraceFormat::Jsonl;
      if (auto Sink = JsonTraceSink::open(P, Format)) {
        installSink(std::move(Sink));
        if (!TraceHookRegistered) {
          std::atexit(closeTraceAtExit);
          TraceHookRegistered = true;
        }
      }
    }
  }
}

namespace {

/// Static initializer: every binary linking modsched_support honors
/// MODSCHED_TRACE / MODSCHED_STATS with no code changes.
struct EnvInitializer {
  EnvInitializer() { initFromEnvironment(); }
};
EnvInitializer InitTelemetryFromEnv;

} // namespace
