//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock stopwatch used for the solver time budget (the
/// paper's "never search for more than 15 minutes per loop") and for the
/// total-time experiment (E3).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SUPPORT_TIMER_H
#define MODSCHED_SUPPORT_TIMER_H

#include <chrono>

namespace modsched {

/// Seconds elapsed on the steady clock since a fixed process-wide epoch
/// (the first call). Deadlines expressed against this clock can be
/// computed once and compared cheaply from anywhere — the branch-and-
/// bound solver uses it to hand its LP subsolver an absolute deadline
/// instead of recomputing a remaining-time budget at every node.
inline double monotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - Epoch).count();
}

/// Stopwatch over std::chrono::steady_clock. Starts on construction.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace modsched

#endif // MODSCHED_SUPPORT_TIMER_H
