//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256**) used by the synthetic
/// workload generator and the property tests. We avoid std::mt19937 so that
/// streams are reproducible across standard library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SUPPORT_RNG_H
#define MODSCHED_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace modsched {

/// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // SplitMix64 seeding, recommended by the xoshiro authors.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive. Uses
  /// rejection sampling to avoid modulo bias.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow(0) is meaningless");
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform integer in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability \p P of returning true.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace modsched

#endif // MODSCHED_SUPPORT_RNG_H
