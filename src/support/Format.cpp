//===- support/Format.cpp - Table formatting helpers ---------------------===//

#include "support/Format.h"

#include <algorithm>
#include <cstdio>

using namespace modsched;

void TablePrinter::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back({/*IsSection=*/false, std::move(Cells)});
}

void TablePrinter::addSection(std::string Label) {
  Rows.push_back({/*IsSection=*/true, {std::move(Label)}});
}

std::string TablePrinter::render() const {
  // Compute column widths over the header and all non-section rows.
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Widths.size() < Cells.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const Row &R : Rows)
    if (!R.IsSection)
      Grow(R.Cells);

  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : "";
      if (I == 0) { // Left-align the label column.
        Out += Cell;
        Out.append(Widths[I] - Cell.size() + 2, ' ');
      } else {
        Out.append(Widths[I] - Cell.size(), ' ');
        Out += Cell;
        Out.append(2, ' ');
      }
    }
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  if (!Header.empty()) {
    Emit(Header);
    Out.append(Total, '-');
    Out += '\n';
  }
  for (const Row &R : Rows) {
    if (R.IsSection) {
      Out += R.Cells.front();
      Out += '\n';
      continue;
    }
    Emit(R.Cells);
  }
  return Out;
}

std::string modsched::formatDouble(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string modsched::formatPercent(double Fraction, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Fraction * 100.0);
  return Buf;
}
