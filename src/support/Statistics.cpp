//===- support/Statistics.cpp - Summary statistics accumulators ----------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>

using namespace modsched;

void SummaryStats::add(double Value) {
  Values.push_back(Value);
  Sorted = false;
}

void SummaryStats::ensureSorted() const {
  if (Sorted)
    return;
  std::sort(Values.begin(), Values.end());
  Sorted = true;
}

double SummaryStats::min() const {
  assert(!Values.empty() && "min() of empty sample");
  ensureSorted();
  return Values.front();
}

double SummaryStats::max() const {
  assert(!Values.empty() && "max() of empty sample");
  ensureSorted();
  return Values.back();
}

double SummaryStats::freqOfMin() const {
  assert(!Values.empty() && "freqOfMin() of empty sample");
  ensureSorted();
  double Min = Values.front();
  size_t NumEqual =
      std::upper_bound(Values.begin(), Values.end(), Min) - Values.begin();
  return static_cast<double>(NumEqual) / static_cast<double>(Values.size());
}

double SummaryStats::median() const {
  assert(!Values.empty() && "median() of empty sample");
  ensureSorted();
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return (Values[N / 2 - 1] + Values[N / 2]) / 2.0;
}

double SummaryStats::average() const {
  assert(!Values.empty() && "average() of empty sample");
  return sum() / static_cast<double>(Values.size());
}

double SummaryStats::sum() const {
  return std::accumulate(Values.begin(), Values.end(), 0.0);
}

std::string SummaryStats::formatRow() const {
  if (Values.empty())
    return "(empty)";
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%10.2f %6.1f%% %10.2f %10.2f %10.2f",
                min(), freqOfMin() * 100.0, median(), average(), max());
  return Buf;
}

double modsched::medianOf(std::vector<double> Values) {
  assert(!Values.empty() && "medianOf empty vector");
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return (Values[N / 2 - 1] + Values[N / 2]) / 2.0;
}
