//===- support/Statistics.cpp - Summary statistics accumulators ----------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

using namespace modsched;

void SummaryStats::add(double Value) {
  Values.push_back(Value);
  Sorted = false;
}

void SummaryStats::ensureSorted() const {
  if (Sorted)
    return;
  std::sort(Values.begin(), Values.end());
  Sorted = true;
}

double SummaryStats::min() const {
  assert(!Values.empty() && "min() of empty sample");
  ensureSorted();
  return Values.front();
}

double SummaryStats::max() const {
  assert(!Values.empty() && "max() of empty sample");
  ensureSorted();
  return Values.back();
}

double SummaryStats::freqOfMin() const {
  assert(!Values.empty() && "freqOfMin() of empty sample");
  ensureSorted();
  double Min = Values.front();
  size_t NumEqual =
      std::upper_bound(Values.begin(), Values.end(), Min) - Values.begin();
  return static_cast<double>(NumEqual) / static_cast<double>(Values.size());
}

double SummaryStats::median() const {
  assert(!Values.empty() && "median() of empty sample");
  ensureSorted();
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return (Values[N / 2 - 1] + Values[N / 2]) / 2.0;
}

double SummaryStats::average() const {
  assert(!Values.empty() && "average() of empty sample");
  return sum() / static_cast<double>(Values.size());
}

double SummaryStats::sum() const {
  return std::accumulate(Values.begin(), Values.end(), 0.0);
}

double SummaryStats::stddev() const {
  if (Values.size() < 2)
    return 0.0;
  double Mean = average();
  double SumSq = 0.0;
  for (double V : Values)
    SumSq += (V - Mean) * (V - Mean);
  return std::sqrt(SumSq / static_cast<double>(Values.size() - 1));
}

double SummaryStats::percentile(double P) const {
  assert(!Values.empty() && "percentile() of empty sample");
  assert(P >= 0.0 && P <= 100.0 && "percentile in [0, 100]");
  ensureSorted();
  if (Values.size() == 1)
    return Values.front();
  double Rank = (P / 100.0) * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  if (Lo + 1 >= Values.size())
    return Values.back();
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] + Frac * (Values[Lo + 1] - Values[Lo]);
}

std::string SummaryStats::formatRow() const {
  if (Values.empty())
    return "(empty)";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "%10.2f %6.1f%% %10.2f %10.2f %10.2f (n=%zu)", min(),
                freqOfMin() * 100.0, median(), average(), max(),
                Values.size());
  return Buf;
}

double modsched::medianOf(std::vector<double> Values) {
  assert(!Values.empty() && "medianOf empty vector");
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return (Values[N / 2 - 1] + Values[N / 2]) / 2.0;
}
