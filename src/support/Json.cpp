//===- support/Json.cpp - Minimal JSON emission helpers -------------------===//

#include "support/Json.h"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace modsched;
using namespace modsched::json;

std::string json::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JsonWriter::preValue() {
  if (Stack.empty()) {
    assert(!WroteTopLevel && "only one top-level JSON value per writer");
    WroteTopLevel = true;
    return;
  }
  Level &L = Stack.back();
  if (L.In == Scope::Object) {
    assert(L.PendingKey && "object values require a preceding key()");
    L.PendingKey = false;
    return; // key() already wrote the separator.
  }
  if (L.HasElements)
    Out += ',';
  L.HasElements = true;
}

JsonWriter &JsonWriter::beginObject() {
  preValue();
  Out += '{';
  Stack.push_back({Scope::Object, false, false});
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().In == Scope::Object &&
         "endObject without matching beginObject");
  assert(!Stack.back().PendingKey && "dangling key() before endObject");
  Stack.pop_back();
  Out += '}';
  if (Stack.empty())
    WroteTopLevel = true;
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  preValue();
  Out += '[';
  Stack.push_back({Scope::Array, false, false});
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back().In == Scope::Array &&
         "endArray without matching beginArray");
  Stack.pop_back();
  Out += ']';
  if (Stack.empty())
    WroteTopLevel = true;
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back().In == Scope::Object &&
         "key() outside of an object");
  Level &L = Stack.back();
  assert(!L.PendingKey && "two key() calls in a row");
  if (L.HasElements)
    Out += ',';
  L.HasElements = true;
  L.PendingKey = true;
  Out += '"';
  Out += escape(K);
  Out += "\":";
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view V) {
  preValue();
  Out += '"';
  Out += escape(V);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  preValue();
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  preValue();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  preValue();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  if (!std::isfinite(V))
    return null();
  preValue();
  char Buf[64];
  // %.17g round-trips doubles; trim to something readable but lossless
  // enough for timings/statistics.
  std::snprintf(Buf, sizeof(Buf), "%.12g", V);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::null() {
  preValue();
  Out += "null";
  return *this;
}
