//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size thread pool for the reentrant solve pipeline:
/// the speculative parallel II search races scheduling attempts on it,
/// and the bench harness runs per-loop sweeps across it
/// (MODSCHED_BENCH_JOBS). Each worker installs a telemetry thread shard
/// (support/Telemetry.h) for its lifetime, so counters and phase timers
/// recorded from pool tasks accumulate without atomics on the hot path
/// and merge into the process registry when the pool is destroyed.
///
/// Tasks must not throw (the solver stack reports failure through return
/// values); an escaping exception terminates the process.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SUPPORT_THREADPOOL_H
#define MODSCHED_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace modsched {

/// Fixed-size FIFO thread pool. Construction spawns the workers;
/// destruction waits for every submitted task, merges the workers'
/// telemetry shards, and joins.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers (clamped to >= 1).
  explicit ThreadPool(int NumThreads);

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker. Safe from any
  /// thread, including pool workers (a task may submit follow-up work);
  /// a worker must not block in wait(), though.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far has finished. Call from
  /// outside the pool only.
  void wait();

  /// Number of worker threads.
  int size() const { return static_cast<int>(Workers.size()); }

private:
  void workerMain();

  std::mutex Mutex;
  std::condition_variable WorkAvailable; ///< Signals queued work / stop.
  std::condition_variable AllIdle;       ///< Signals Pending == 0.
  std::deque<std::function<void()>> Queue;
  /// Queued plus currently-running tasks.
  size_t Pending = 0;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

} // namespace modsched

#endif // MODSCHED_SUPPORT_THREADPOOL_H
