//===- support/Telemetry.h - Solver telemetry layer -------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-cutting observability for the solver stack: named counters,
/// phase timers, and a structured trace-event sink. The paper's entire
/// argument is quantitative (branch-and-bound nodes, simplex iterations,
/// wall-clock time); this layer makes those quantities — and many more —
/// visible per instance instead of only as end-of-run aggregates.
///
/// Design constraints (see docs/OBSERVABILITY.md):
///  * Pay-for-use. With no sink installed and stats disabled, every
///    recording call is an inlined pointer/flag test; counters are a
///    thread-local-flag test plus a non-atomic add; timers never read
///    the clock.
///  * No allocation on the disabled path. TraceEvent argument lists are
///    passed as pointers into the caller's stack frame and only
///    serialized when a sink is installed.
///  * Environment-driven. MODSCHED_TRACE=<file> installs a file sink at
///    startup (Chrome trace_event JSON for .json, JSONL otherwise);
///    MODSCHED_STATS=1 prints every registered counter and phase timer
///    to stderr at process exit. No code changes needed in binaries.
///
/// Thread model (the reentrant solve pipeline; see DESIGN.md):
///  * The thread that owns a counter's direct field — by convention the
///    main thread — increments it with a plain add. Every other thread
///    must record under a ThreadShardScope: increments then accumulate
///    into a thread-local shard (still plain adds) that is merged into
///    the counter's atomic merge cell on scope exit or
///    flushThreadShard(). support/ThreadPool.h installs a shard scope in
///    every worker automatically.
///  * Trace emission is serialized behind an internal mutex; the
///    enabled/disabled fast path is a single atomic pointer load.
///    Events carry a small per-thread tid so multi-threaded traces get
///    one track per thread in Perfetto.
///  * reset()/resetAllStats() are not synchronized against concurrent
///    recording — call them only while the solver stack is quiescent.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SUPPORT_TELEMETRY_H
#define MODSCHED_SUPPORT_TELEMETRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace modsched {
namespace telemetry {

//===----------------------------------------------------------------------===//
// Trace events
//===----------------------------------------------------------------------===//

/// Chrome trace_event phase letters (the subset we emit).
enum class EventPhase : char {
  Begin = 'B',   ///< Duration span open (nests on one track).
  End = 'E',     ///< Duration span close.
  Instant = 'i', ///< Point event.
  Counter = 'C', ///< Sampled counter track.
};

/// One key/value argument attached to a trace event. Keys and C-string
/// values must outlive the emit call (use static strings); numeric
/// construction never allocates, so building an argument list on the
/// disabled path is free.
struct Arg {
  enum class Kind : uint8_t { Int, Float, CStr };

  constexpr Arg(const char *Key, int64_t V)
      : Key(Key), K(Kind::Int), Int(V) {}
  constexpr Arg(const char *Key, int V) : Arg(Key, int64_t(V)) {}
  constexpr Arg(const char *Key, double V)
      : Key(Key), K(Kind::Float), Float(V) {}
  constexpr Arg(const char *Key, const char *V)
      : Key(Key), K(Kind::CStr), CStr(V) {}

  const char *Key;
  Kind K;
  int64_t Int = 0;
  double Float = 0.0;
  const char *CStr = nullptr;
};

/// A structured trace event handed to the sink. Name/Category must be
/// string literals (or otherwise outlive the sink call); Args points
/// into the emitting frame and is only valid during TraceSink::event().
struct TraceEvent {
  EventPhase Phase;
  const char *Category;
  const char *Name;
  /// Microseconds since the process trace epoch.
  double TimestampUs;
  /// Value for Counter events.
  double Value = 0.0;
  const Arg *Args = nullptr;
  size_t NumArgs = 0;
  /// Small sequential id of the emitting thread (1 = first thread to
  /// emit); becomes the trace_event "tid" so concurrent solves render
  /// as separate tracks.
  int Tid = 1;
};

/// Consumer of trace events. Implementations must not re-enter the
/// telemetry emit API from event().
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void event(const TraceEvent &E) = 0;
  virtual void flush() {}
};

namespace detail {
/// Installed sink, or nullptr when tracing is off. Read (lock-free) on
/// every emit fast path; written by installSink()/uninstallSink() under
/// the sink mutex.
extern std::atomic<TraceSink *> ActiveSink;
/// True when MODSCHED_STATS (or a test) enabled stats collection.
extern std::atomic<bool> StatsActive;
/// Microseconds since the trace epoch (process start).
double nowUs();
/// True when the calling thread records stats into a thread-local shard
/// (set by ThreadShardScope). Tested on every counter/timer fast path.
extern thread_local bool ShardActive;
/// Accumulate into the calling thread's shard (ShardActive threads
/// only). \p Index is the registration index of the counter/timer.
void shardAddCounter(uint32_t Index, int64_t N);
void shardAddTimer(uint32_t Index, double Seconds);
} // namespace detail

/// True when a trace sink is installed (the single-pointer fast path).
inline bool tracingEnabled() {
  return detail::ActiveSink.load(std::memory_order_acquire) != nullptr;
}

/// True when end-of-run statistics collection is on.
inline bool statsEnabled() {
  return detail::StatsActive.load(std::memory_order_relaxed);
}

/// True when either consumer is active (timers read the clock only then).
inline bool enabled() { return tracingEnabled() || statsEnabled(); }

/// Installs \p Sink as the process-wide trace sink (taking ownership and
/// replacing any previous sink). Passing nullptr uninstalls.
void installSink(std::unique_ptr<TraceSink> Sink);

/// Flushes and destroys the installed sink, disabling tracing.
void uninstallSink();

/// Enables/disables stats collection programmatically (tests; the env
/// hook sets this from MODSCHED_STATS).
void setStatsEnabled(bool Enabled);

//===----------------------------------------------------------------------===//
// Emission helpers (no-ops without a sink)
//===----------------------------------------------------------------------===//

namespace detail {
/// Out-of-line slow paths; called only when a sink is installed.
void emitSlow(EventPhase Phase, const char *Cat, const char *Name,
              double Value, const Arg *Args, size_t NumArgs);
} // namespace detail

/// Emits a point event.
inline void instant(const char *Cat, const char *Name,
                    std::initializer_list<Arg> Args = {}) {
  if (tracingEnabled())
    detail::emitSlow(EventPhase::Instant, Cat, Name, 0.0, Args.begin(),
                     Args.size());
}

/// Emits a sampled counter value (its own track in the trace viewer),
/// e.g. the branch-and-bound open-list size or search depth gauges.
inline void gauge(const char *Cat, const char *Name, double Value) {
  if (tracingEnabled())
    detail::emitSlow(EventPhase::Counter, Cat, Name, Value, nullptr, 0);
}

/// Opens a duration span; prefer SpanScope.
inline void spanBegin(const char *Cat, const char *Name,
                      std::initializer_list<Arg> Args = {}) {
  if (tracingEnabled())
    detail::emitSlow(EventPhase::Begin, Cat, Name, 0.0, Args.begin(),
                     Args.size());
}

/// Closes the innermost open span with this name.
inline void spanEnd(const char *Cat, const char *Name,
                    std::initializer_list<Arg> Args = {}) {
  if (tracingEnabled())
    detail::emitSlow(EventPhase::End, Cat, Name, 0.0, Args.begin(),
                     Args.size());
}

/// RAII duration span. Captures whether tracing was on at construction
/// so an install/uninstall mid-scope cannot unbalance Begin/End.
class SpanScope {
public:
  SpanScope(const char *Cat, const char *Name,
            std::initializer_list<Arg> Args = {})
      : Cat(Cat), Name(Name), Active(tracingEnabled()) {
    if (Active)
      detail::emitSlow(EventPhase::Begin, Cat, Name, 0.0, Args.begin(),
                       Args.size());
  }
  ~SpanScope() {
    if (Active)
      detail::emitSlow(EventPhase::End, Cat, Name, 0.0, nullptr, 0);
  }
  SpanScope(const SpanScope &) = delete;
  SpanScope &operator=(const SpanScope &) = delete;

private:
  const char *Cat;
  const char *Name;
  bool Active;
};

//===----------------------------------------------------------------------===//
// Named counters and phase timers
//===----------------------------------------------------------------------===//

/// A process-lifetime named counter, self-registered at construction.
/// Define at namespace scope next to the code it measures:
/// \code
///   static telemetry::Counter SimplexPivots("lp", "simplex.iterations",
///                                           "total simplex pivots");
///   ...
///   SimplexPivots += Iters;
/// \endcode
/// Incrementing is a plain add on the owning thread and a plain add into
/// a thread-local shard on ThreadShardScope threads (see the thread
/// model in the file header); the registry is only walked by
/// reportStats(). Threads other than the main thread must record under
/// a ThreadShardScope.
class Counter {
public:
  Counter(const char *Category, const char *Name, const char *Description);

  void add(int64_t N) {
    if (detail::ShardActive)
      detail::shardAddCounter(Index, N);
    else
      Val += N;
  }
  Counter &operator+=(int64_t N) {
    add(N);
    return *this;
  }
  Counter &operator++() {
    add(1);
    return *this;
  }
  /// Owner-thread value plus everything merged from thread shards.
  /// Increments still sitting in a live shard are not visible until
  /// that shard merges (thread exit or flushThreadShard()).
  int64_t value() const {
    return Val + Merged.load(std::memory_order_relaxed);
  }
  /// Not synchronized; call while recording threads are quiescent.
  void reset() {
    Val = 0;
    Merged.store(0, std::memory_order_relaxed);
  }

  /// Internal: folds a thread shard's delta into the merge cell. Safe
  /// from any thread, concurrently with owner-thread add().
  void mergeShardDelta(int64_t N) {
    Merged.fetch_add(N, std::memory_order_relaxed);
  }

  /// Registration index (position in allCounters()); shard slot key.
  uint32_t index() const { return Index; }

  const char *category() const { return Cat; }
  const char *name() const { return Nm; }
  const char *description() const { return Desc; }

private:
  const char *Cat;
  const char *Nm;
  const char *Desc;
  uint32_t Index = 0;
  /// Owner-thread (main-thread) accumulator: plain adds, no atomics.
  int64_t Val = 0;
  /// Deltas merged in from thread shards.
  std::atomic<int64_t> Merged{0};
};

/// Accumulated wall-clock time of a named phase, self-registered at
/// construction. Only TimerScope mutates it, and only while enabled().
/// Shares the Counter thread model: plain adds on the owning thread,
/// shard accumulation on ThreadShardScope threads.
class PhaseTimer {
public:
  PhaseTimer(const char *Category, const char *Name,
             const char *Description);

  void addSample(double SampleSeconds) {
    if (detail::ShardActive) {
      detail::shardAddTimer(Index, SampleSeconds);
      return;
    }
    Seconds += SampleSeconds;
    ++Invocations;
  }
  double seconds() const {
    return Seconds + MergedSeconds.load(std::memory_order_relaxed);
  }
  uint64_t invocations() const {
    return Invocations + MergedInvocations.load(std::memory_order_relaxed);
  }
  /// Not synchronized; call while recording threads are quiescent.
  void reset() {
    Seconds = 0;
    Invocations = 0;
    MergedSeconds.store(0.0, std::memory_order_relaxed);
    MergedInvocations.store(0, std::memory_order_relaxed);
  }

  /// Internal: folds a thread shard's delta into the merge cells.
  void mergeShardDelta(double SampleSeconds, uint64_t NumInvocations);

  /// Registration index (position in allPhaseTimers()); shard slot key.
  uint32_t index() const { return Index; }

  const char *category() const { return Cat; }
  const char *name() const { return Nm; }
  const char *description() const { return Desc; }

private:
  const char *Cat;
  const char *Nm;
  const char *Desc;
  uint32_t Index = 0;
  /// Owner-thread (main-thread) accumulators: plain adds, no atomics.
  double Seconds = 0.0;
  uint64_t Invocations = 0;
  /// Deltas merged in from thread shards.
  std::atomic<double> MergedSeconds{0.0};
  std::atomic<uint64_t> MergedInvocations{0};
};

/// RAII phase measurement: accumulates into a PhaseTimer and, when a
/// sink is installed, emits a matching trace span. Reads the clock only
/// when telemetry is active — a disabled TimerScope is two branch tests.
class TimerScope {
public:
  explicit TimerScope(PhaseTimer &Timer,
                      std::initializer_list<Arg> Args = {})
      : Timer(Timer), Armed(enabled()), Tracing(tracingEnabled()) {
    if (Armed)
      Start = std::chrono::steady_clock::now();
    if (Tracing)
      detail::emitSlow(EventPhase::Begin, Timer.category(), Timer.name(),
                       0.0, Args.begin(), Args.size());
  }
  ~TimerScope() {
    if (Tracing)
      detail::emitSlow(EventPhase::End, Timer.category(), Timer.name(), 0.0,
                       nullptr, 0);
    if (Armed)
      Timer.addSample(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - Start)
                          .count());
  }
  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  PhaseTimer &Timer;
  bool Armed;
  bool Tracing;
  std::chrono::steady_clock::time_point Start;
};

//===----------------------------------------------------------------------===//
// Registry / reporting
//===----------------------------------------------------------------------===//

/// All registered counters / timers, in registration order. Stable for
/// the life of the process (registration happens at static-init).
const std::vector<Counter *> &allCounters();
const std::vector<PhaseTimer *> &allPhaseTimers();

/// Finds a registered counter / timer by "category/name", or nullptr.
Counter *findCounter(const std::string &CategorySlashName);
PhaseTimer *findPhaseTimer(const std::string &CategorySlashName);

/// Prints every non-zero counter and every invoked phase timer to \p Out
/// in a stable, grep-friendly layout (what MODSCHED_STATS=1 triggers at
/// exit, to stderr).
void reportStats(std::FILE *Out);

/// Zeroes every registered counter and timer (tests, or per-experiment
/// deltas in the bench harness). Not synchronized; call while recording
/// threads are quiescent (live shards are not cleared).
void resetAllStats();

//===----------------------------------------------------------------------===//
// Thread shards
//===----------------------------------------------------------------------===//

/// RAII thread-shard installation for worker threads. While a scope is
/// active on a thread, every Counter/PhaseTimer recording made from
/// that thread accumulates into a thread-local shard (plain adds, no
/// atomics, no locks); destruction merges the shard into the registry's
/// atomic merge cells. support/ThreadPool.h installs one per worker, so
/// pool tasks need no telemetry awareness. Nesting is allowed (inner
/// scopes are no-ops). The main thread does not need a scope — it owns
/// the counters' direct fields.
class ThreadShardScope {
public:
  ThreadShardScope();
  ~ThreadShardScope();
  ThreadShardScope(const ThreadShardScope &) = delete;
  ThreadShardScope &operator=(const ThreadShardScope &) = delete;

private:
  /// True when this scope installed the shard (outermost on the thread).
  bool Installed;
};

/// Merges the calling thread's live shard into the registry now
/// (leaving the shard installed and empty). No-op without an active
/// ThreadShardScope. Lets long-lived workers publish between tasks.
void flushThreadShard();

//===----------------------------------------------------------------------===//
// File sinks
//===----------------------------------------------------------------------===//

/// On-disk trace formats.
enum class TraceFormat {
  ChromeJson, ///< One JSON array of trace_event objects ("[ {...}, ... ]").
  Jsonl,      ///< One JSON object per line (stream-friendly).
};

/// Buffered file sink serializing events in Chrome trace_event schema
/// (ts/ph/cat/name/pid/tid/args). Both formats load in Perfetto and
/// chrome://tracing; JSONL additionally greps/streams well.
class JsonTraceSink : public TraceSink {
public:
  /// Opens \p Path for writing. Returns nullptr (with a warning to
  /// stderr) when the file cannot be opened.
  static std::unique_ptr<JsonTraceSink> open(const std::string &Path,
                                             TraceFormat Format);

  ~JsonTraceSink() override;
  void event(const TraceEvent &E) override;
  void flush() override;

private:
  JsonTraceSink(std::FILE *File, TraceFormat Format);

  std::FILE *File;
  TraceFormat Format;
  std::string Buffer;
  bool WroteAnyEvent = false;
};

/// Reads MODSCHED_TRACE / MODSCHED_STATS and installs the corresponding
/// sink / stats hook. Called automatically at process start from a
/// static initializer in Telemetry.cpp; safe to call again (idempotent
/// per distinct env state; re-installs the trace sink when called after
/// uninstallSink()).
void initFromEnvironment();

} // namespace telemetry
} // namespace modsched

#endif // MODSCHED_SUPPORT_TELEMETRY_H
