//===- support/Cancellation.h - Cooperative cancellation --------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for long-running solves. A CancellationSource
/// owns a cancel flag; any number of CancellationToken copies observe it.
/// The solver stack polls the token at its natural budget checkpoints
/// (between branch-and-bound nodes, every 64 simplex pivots), so a racing
/// sibling attempt — the speculative parallel II search — can stop a
/// solve that has become irrelevant within one node LP.
///
/// Thread-safety: cancel() may be called from any thread, concurrently
/// with any number of cancelled() polls. Tokens are cheap to copy (one
/// shared_ptr) and a default-constructed token is never cancelled, so
/// single-threaded callers pay one null test per poll.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SUPPORT_CANCELLATION_H
#define MODSCHED_SUPPORT_CANCELLATION_H

#include <atomic>
#include <memory>

namespace modsched {

/// Read side of a cancellation flag. Default-constructed tokens are
/// detached: cancelled() is false forever.
class CancellationToken {
public:
  CancellationToken() = default;

  /// True once the owning source has been cancelled.
  bool cancelled() const {
    return Flag && Flag->load(std::memory_order_acquire);
  }

  /// True when this token observes a real source (a detached token can
  /// never be cancelled).
  bool attached() const { return Flag != nullptr; }

private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> F)
      : Flag(std::move(F)) {}

  std::shared_ptr<const std::atomic<bool>> Flag;
};

/// Write side of a cancellation flag. The source keeps the flag alive;
/// tokens extend its lifetime, so a source may be destroyed while solves
/// holding its tokens are still draining.
class CancellationSource {
public:
  CancellationSource() : Flag(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent; safe from any thread.
  void cancel() { Flag->store(true, std::memory_order_release); }

  /// True once cancel() has been called.
  bool cancelled() const { return Flag->load(std::memory_order_acquire); }

  /// Returns a token observing this source.
  CancellationToken token() const { return CancellationToken(Flag); }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

} // namespace modsched

#endif // MODSCHED_SUPPORT_CANCELLATION_H
