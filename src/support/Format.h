//===- support/Format.h - Table formatting helpers --------------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny fixed-width table printer used by the benchmark harnesses to emit
/// rows in the layout of the paper's Tables 1 and 2 and of Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_SUPPORT_FORMAT_H
#define MODSCHED_SUPPORT_FORMAT_H

#include <string>
#include <vector>

namespace modsched {

/// Accumulates rows of cells and renders them with per-column widths.
class TablePrinter {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row.
  void addRow(std::vector<std::string> Cells);

  /// Appends a full-width section label row (e.g. a scheduler name).
  void addSection(std::string Label);

  /// Renders the table to a string, right-aligning all but the first
  /// column.
  std::string render() const;

private:
  struct Row {
    bool IsSection = false;
    std::vector<std::string> Cells;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

/// Formats a double with \p Precision digits after the point.
std::string formatDouble(double Value, int Precision = 2);

/// Formats a fraction as a percentage string like "73.9%".
std::string formatPercent(double Fraction, int Precision = 1);

} // namespace modsched

#endif // MODSCHED_SUPPORT_FORMAT_H
