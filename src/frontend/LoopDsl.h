//===- frontend/LoopDsl.h - Tiny loop language frontend ---------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature source-level frontend: innermost loops written as
/// assignment statements are compiled into dependence graphs, so users
/// state the computation instead of hand-enumerating edges. Example:
///
///   loop daxpy {
///     y[i] = y[i] + a * x[i];
///   }
///
///   loop firstsum {
///     s = s + y[i];        # s carries across iterations
///     x[i] = s;
///   }
///
/// Semantics (the classic ones for an innermost counted loop):
///  * `name[i+k]` reads/writes array `name` at constant offset k; every
///    distinct (array, offset) read becomes one load per iteration, a
///    write becomes a store fed by the expression value.
///  * A scalar read after an assignment in the same iteration uses that
///    value (distance 0); read before its (re)definition it refers to
///    the previous iteration's value (distance 1), creating a
///    recurrence. A scalar never assigned in the loop is loop-invariant
///    and generates no operation.
///  * Memory dependences between a store to `a[i+s]` and loads of
///    `a[i+l]`: l < s creates a cross-iteration flow (store -> load at
///    distance s-l, latency 1); l >= s creates an anti-dependence
///    (load -> store at distance l-s, latency 0).
///  * Operators +, -, *, / map to the machine's add/sub/mul/div classes;
///    flow latencies come from the producing operation's class.
///
/// Statements are parsed by a hand-written recursive-descent parser with
/// line/column diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_FRONTEND_LOOPDSL_H
#define MODSCHED_FRONTEND_LOOPDSL_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"

#include <optional>
#include <string>

namespace modsched {

/// Compiles \p Source (one `loop name { ... }` definition) into a
/// dependence graph for machine \p M. On failure returns nullopt and
/// fills \p Error with a "line:col: message" diagnostic when provided.
std::optional<DependenceGraph> compileLoopDsl(const std::string &Source,
                                              const MachineModel &M,
                                              std::string *Error = nullptr);

} // namespace modsched

#endif // MODSCHED_FRONTEND_LOOPDSL_H
