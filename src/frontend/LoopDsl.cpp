//===- frontend/LoopDsl.cpp - Tiny loop language frontend -----------------===//

#include "frontend/LoopDsl.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

using namespace modsched;

namespace {

// --- Lexer ----------------------------------------------------------------

enum class TokKind {
  Ident,
  Number,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LParen,
  RParen,
  Plus,
  Minus,
  Star,
  Slash,
  Assign,
  Semi,
  End,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  long Value = 0;
  int Line = 1;
  int Col = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) { advance(); }

  const Token &current() const { return Cur; }

  void advance() {
    skipWhitespaceAndComments();
    Cur.Line = Line;
    Cur.Col = Col;
    if (Pos >= Src.size()) {
      Cur.Kind = TokKind::End;
      Cur.Text = "<end>";
      return;
    }
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        bump();
      Cur.Kind = TokKind::Ident;
      Cur.Text = Src.substr(Start, Pos - Start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      long V = 0;
      size_t Start = Pos;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos]))) {
        V = V * 10 + (Src[Pos] - '0');
        bump();
      }
      Cur.Kind = TokKind::Number;
      Cur.Value = V;
      Cur.Text = Src.substr(Start, Pos - Start);
      return;
    }
    bump();
    switch (C) {
    case '{':
      Cur.Kind = TokKind::LBrace;
      break;
    case '}':
      Cur.Kind = TokKind::RBrace;
      break;
    case '[':
      Cur.Kind = TokKind::LBracket;
      break;
    case ']':
      Cur.Kind = TokKind::RBracket;
      break;
    case '(':
      Cur.Kind = TokKind::LParen;
      break;
    case ')':
      Cur.Kind = TokKind::RParen;
      break;
    case '+':
      Cur.Kind = TokKind::Plus;
      break;
    case '-':
      Cur.Kind = TokKind::Minus;
      break;
    case '*':
      Cur.Kind = TokKind::Star;
      break;
    case '/':
      Cur.Kind = TokKind::Slash;
      break;
    case '=':
      Cur.Kind = TokKind::Assign;
      break;
    case ';':
      Cur.Kind = TokKind::Semi;
      break;
    default:
      Cur.Kind = TokKind::End;
      Cur.Text = std::string(1, C);
      Bad = true;
      return;
    }
    Cur.Text = std::string(1, C);
  }

  bool sawBadCharacter() const { return Bad; }

private:
  void bump() {
    if (Src[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void skipWhitespaceAndComments() {
    for (;;) {
      while (Pos < Src.size() &&
             std::isspace(static_cast<unsigned char>(Src[Pos])))
        bump();
      if (Pos < Src.size() && Src[Pos] == '#') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          bump();
        continue;
      }
      return;
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
  Token Cur;
  bool Bad = false;
};

// --- AST --------------------------------------------------------------------

struct Expr {
  enum Kind { Number, Scalar, ArrayRef, Binary } K = Number;
  long Value = 0;       // Number.
  std::string Name;     // Scalar / ArrayRef.
  int Offset = 0;       // ArrayRef.
  char Op = '+';        // Binary.
  int Lhs = -1, Rhs = -1;
  int Line = 1, Col = 1;
};

struct Stmt {
  bool IsArray = false;
  std::string Name;
  int Offset = 0;
  int Root = -1;
  int Line = 1, Col = 1;
};

// --- Parser + code generation ------------------------------------------------

class Compiler {
public:
  Compiler(const std::string &Source, const MachineModel &M,
           std::string *Error)
      : Lex(Source), M(M), ErrorOut(Error) {}

  std::optional<DependenceGraph> run() {
    if (!parseLoop())
      return std::nullopt;
    if (!generate())
      return std::nullopt;
    if (G.numOperations() == 0)
      return fail(1, 1, "loop has no operations (everything is "
                        "loop-invariant)");
    assert(!G.validate() && "frontend produced an invalid graph");
    return std::move(G);
  }

private:
  // --- Diagnostics ---
  std::nullopt_t fail(int Line, int Col, const std::string &Message) {
    if (ErrorOut) {
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf), "%d:%d: %s", Line, Col,
                    Message.c_str());
      *ErrorOut = Buf;
    }
    Failed = true;
    return std::nullopt;
  }
  bool failParse(const std::string &Message) {
    fail(Lex.current().Line, Lex.current().Col, Message);
    return false;
  }

  bool expect(TokKind Kind, const char *What) {
    if (Lex.current().Kind != Kind)
      return failParse(std::string("expected ") + What + ", got '" +
                       Lex.current().Text + "'");
    Lex.advance();
    return true;
  }

  // --- Parsing ---
  bool parseLoop() {
    if (Lex.current().Kind != TokKind::Ident ||
        Lex.current().Text != "loop")
      return failParse("expected 'loop'");
    Lex.advance();
    if (Lex.current().Kind != TokKind::Ident)
      return failParse("expected loop name");
    G.setName(Lex.current().Text);
    Lex.advance();
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    while (Lex.current().Kind != TokKind::RBrace) {
      if (Lex.current().Kind == TokKind::End)
        return failParse("unexpected end of input inside loop body");
      if (!parseStmt())
        return false;
    }
    Lex.advance(); // '}'
    if (Lex.sawBadCharacter())
      return failParse("invalid character in input");
    return true;
  }

  bool parseStmt() {
    Stmt S;
    S.Line = Lex.current().Line;
    S.Col = Lex.current().Col;
    if (Lex.current().Kind != TokKind::Ident)
      return failParse("expected assignment target");
    S.Name = Lex.current().Text;
    Lex.advance();
    if (Lex.current().Kind == TokKind::LBracket) {
      S.IsArray = true;
      if (!parseIndex(S.Offset))
        return false;
    }
    if (!expect(TokKind::Assign, "'='"))
      return false;
    S.Root = parseExpr();
    if (S.Root < 0)
      return false;
    if (!expect(TokKind::Semi, "';'"))
      return false;
    Stmts.push_back(S);
    return true;
  }

  /// Parses "[ i (+|-) number ]" or "[ i ]"; fills \p Offset.
  bool parseIndex(int &Offset) {
    if (!expect(TokKind::LBracket, "'['"))
      return false;
    if (Lex.current().Kind != TokKind::Ident || Lex.current().Text != "i")
      return failParse("array index must be 'i' (+/- constant)");
    Lex.advance();
    Offset = 0;
    if (Lex.current().Kind == TokKind::Plus ||
        Lex.current().Kind == TokKind::Minus) {
      int Sign = Lex.current().Kind == TokKind::Plus ? 1 : -1;
      Lex.advance();
      if (Lex.current().Kind != TokKind::Number)
        return failParse("expected constant after 'i+'/'i-'");
      Offset = Sign * static_cast<int>(Lex.current().Value);
      Lex.advance();
    }
    return expect(TokKind::RBracket, "']'");
  }

  int newExpr(Expr E) {
    E.Line = Lex.current().Line;
    E.Col = Lex.current().Col;
    Exprs.push_back(E);
    return static_cast<int>(Exprs.size()) - 1;
  }

  /// expr := term (('+'|'-') term)*
  int parseExpr() {
    int Lhs = parseTerm();
    if (Lhs < 0)
      return -1;
    while (Lex.current().Kind == TokKind::Plus ||
           Lex.current().Kind == TokKind::Minus) {
      char Op = Lex.current().Kind == TokKind::Plus ? '+' : '-';
      Lex.advance();
      int Rhs = parseTerm();
      if (Rhs < 0)
        return -1;
      Expr E;
      E.K = Expr::Binary;
      E.Op = Op;
      E.Lhs = Lhs;
      E.Rhs = Rhs;
      Lhs = newExpr(E);
    }
    return Lhs;
  }

  /// term := factor (('*'|'/') factor)*
  int parseTerm() {
    int Lhs = parseFactor();
    if (Lhs < 0)
      return -1;
    while (Lex.current().Kind == TokKind::Star ||
           Lex.current().Kind == TokKind::Slash) {
      char Op = Lex.current().Kind == TokKind::Star ? '*' : '/';
      Lex.advance();
      int Rhs = parseFactor();
      if (Rhs < 0)
        return -1;
      Expr E;
      E.K = Expr::Binary;
      E.Op = Op;
      E.Lhs = Lhs;
      E.Rhs = Rhs;
      Lhs = newExpr(E);
    }
    return Lhs;
  }

  int parseFactor() {
    const Token &T = Lex.current();
    if (T.Kind == TokKind::LParen) {
      Lex.advance();
      int Inner = parseExpr();
      if (Inner < 0)
        return -1;
      if (!expect(TokKind::RParen, "')'"))
        return -1;
      return Inner;
    }
    if (T.Kind == TokKind::Number) {
      Expr E;
      E.K = Expr::Number;
      E.Value = T.Value;
      Lex.advance();
      return newExpr(E);
    }
    if (T.Kind == TokKind::Ident) {
      std::string Name = T.Text;
      Lex.advance();
      if (Lex.current().Kind == TokKind::LBracket) {
        Expr E;
        E.K = Expr::ArrayRef;
        E.Name = Name;
        if (!parseIndex(E.Offset))
          return -1;
        return newExpr(E);
      }
      Expr E;
      E.K = Expr::Scalar;
      E.Name = Name;
      return newExpr(E);
    }
    failParse("expected expression");
    return -1;
  }

  // --- Code generation ---

  /// The result of evaluating an expression: a defining operation, a
  /// carried scalar (previous-iteration value, fixed up at the end), or
  /// a loop-invariant (no operation).
  struct Value {
    int Op = -1;
    std::string Carried;      // Non-empty: previous-iteration scalar.
    std::string CarriedArray; // Non-empty: earlier iteration's stored
                              // array element (load eliminated).
    int CarriedDistance = 0;
    bool isInvariant() const {
      return Op < 0 && Carried.empty() && CarriedArray.empty();
    }
  };

  /// A Value defined by graph operation \p Op.
  static Value valueOf(int Op) {
    Value V;
    V.Op = Op;
    return V;
  }

  int classOf(const char *Name, int Line, int Col) {
    std::optional<int> C = M.findOpClass(Name);
    if (!C) {
      fail(Line, Col, std::string("machine lacks operation class ") + Name);
      return -1;
    }
    return *C;
  }

  int latencyOf(int Op) {
    return M.opClass(G.operation(Op).OpClass).Latency;
  }

  /// Connects \p Operand as an input of \p Consumer.
  void connect(const Value &Operand, int Consumer) {
    if (Operand.Op >= 0) {
      G.addFlowDependence(Operand.Op, Consumer, latencyOf(Operand.Op), 0);
      return;
    }
    if (!Operand.Carried.empty())
      PendingCarried.push_back({Consumer, Operand.Carried});
    if (!Operand.CarriedArray.empty())
      PendingArrayCarried.push_back(
          {Consumer, Operand.CarriedArray, Operand.CarriedDistance});
  }

  std::string offsetSuffix(int Offset) {
    if (Offset == 0)
      return "0";
    return (Offset > 0 ? "p" : "m") + std::to_string(std::abs(Offset));
  }

  Value evaluate(int ExprIdx) {
    const Expr &E = Exprs[ExprIdx];
    switch (E.K) {
    case Expr::Number:
      return {};

    case Expr::Scalar: {
      auto Defined = ScalarDef.find(E.Name);
      if (Defined != ScalarDef.end())
        return valueOf(Defined->second);
      if (AssignedScalars.count(E.Name)) {
        Value V;
        V.Carried = E.Name;
        return V;
      }
      return {}; // Loop-invariant.
    }

    case Expr::ArrayRef: {
      // Store-to-load forwarding within the iteration.
      auto Forward = ArrayDef.find({E.Name, E.Offset});
      if (Forward != ArrayDef.end())
        return Forward->second;
      // Cross-iteration load elimination ("load-back-substitution", one
      // of the optimizations the paper assumes pre-applied): when the
      // loop's unique store to this array writes a HIGHER offset, the
      // loaded element is exactly the value stored s-l iterations ago —
      // consume it through a register instead of reloading. Resolved
      // after codegen because the store may appear later in the body.
      auto StoredAt = UniqueStoreOffset.find(E.Name);
      if (StoredAt != UniqueStoreOffset.end() &&
          StoredAt->second > E.Offset) {
        Value V;
        V.CarriedArray = E.Name;
        V.CarriedDistance = StoredAt->second - E.Offset;
        return V;
      }
      auto Cached = LoadCache.find({E.Name, E.Offset});
      if (Cached != LoadCache.end())
        return valueOf(Cached->second);
      int Class = classOf(opclasses::Load, E.Line, E.Col);
      if (Class < 0)
        return {};
      int Load = G.addOperation(
          "ld_" + E.Name + "_" + offsetSuffix(E.Offset), Class);
      LoadCache[{E.Name, E.Offset}] = Load;
      ArrayLoads.push_back({E.Name, E.Offset, Load});
      return valueOf(Load);
    }

    case Expr::Binary: {
      Value L = evaluate(E.Lhs);
      Value R = evaluate(E.Rhs);
      if (Failed)
        return {};
      const char *ClassName = E.Op == '+'   ? opclasses::Add
                              : E.Op == '-' ? opclasses::Sub
                              : E.Op == '*' ? opclasses::Mul
                                            : opclasses::Div;
      int Class = classOf(ClassName, E.Line, E.Col);
      if (Class < 0)
        return {};
      int Op = G.addOperation(std::string(1, E.Op == '+'   ? 'a'
                                             : E.Op == '-' ? 's'
                                             : E.Op == '*' ? 'm'
                                                           : 'd') +
                                  std::to_string(NextOpId++),
                              Class);
      connect(L, Op);
      connect(R, Op);
      return valueOf(Op);
    }
    }
    return {};
  }

  bool generate() {
    // Which scalars are assigned anywhere (decides carried reads), and
    // which arrays have exactly one store offset (enables cross-
    // iteration load elimination; value tracking with several stores to
    // one array would be ambiguous, so those fall back to loads).
    std::map<std::string, std::set<int>> StoreOffsets;
    for (const Stmt &S : Stmts) {
      if (!S.IsArray)
        AssignedScalars.insert(S.Name);
      else
        StoreOffsets[S.Name].insert(S.Offset);
    }
    for (const auto &[Array, Offsets] : StoreOffsets)
      if (Offsets.size() == 1)
        UniqueStoreOffset[Array] = *Offsets.begin();
    // Arrays whose stored value is actually consumed by an eliminated
    // load (some read sits at a lower offset than the unique store).
    for (const Expr &E : Exprs) {
      if (E.K != Expr::ArrayRef)
        continue;
      auto It = UniqueStoreOffset.find(E.Name);
      if (It != UniqueStoreOffset.end() && E.Offset < It->second)
        ValueConsumed.insert(E.Name);
    }

    for (const Stmt &S : Stmts) {
      Value V = evaluate(S.Root);
      if (Failed)
        return false;
      if (S.IsArray) {
        int Class = classOf(opclasses::Store, S.Line, S.Col);
        if (Class < 0)
          return false;
        // A store whose value other iterations consume through load
        // elimination needs a real producing operation.
        if (V.Op < 0 && ValueConsumed.count(S.Name)) {
          int CopyClass = classOf(opclasses::Copy, S.Line, S.Col);
          if (CopyClass < 0)
            return false;
          int Copy = G.addOperation("cp_" + S.Name, CopyClass);
          connect(V, Copy);
          V = valueOf(Copy);
        }
        int Store = G.addOperation(
            "st_" + S.Name + "_" + offsetSuffix(S.Offset), Class);
        connect(V, Store);
        ArrayStores.push_back({S.Name, S.Offset, Store});
        ArrayDef[{S.Name, S.Offset}] = V; // Forwarding.
        StoreValue[S.Name] = V.Op;
      } else {
        // A scalar defined by an invariant expression still needs a
        // defining operation (a copy) so later reads have a producer.
        if (V.Op < 0) {
          int Class = classOf(opclasses::Copy, S.Line, S.Col);
          if (Class < 0)
            return false;
          int Copy = G.addOperation("cp_" + S.Name, Class);
          connect(V, Copy);
          V = valueOf(Copy);
        }
        ScalarDef[S.Name] = V.Op;
      }
    }

    // Carried scalar reads bind to the LAST definition, one iteration
    // back.
    for (const auto &[Consumer, Name] : PendingCarried) {
      auto Def = ScalarDef.find(Name);
      assert(Def != ScalarDef.end() && "carried scalar without def");
      G.addFlowDependence(Def->second, Consumer, latencyOf(Def->second),
                          1);
    }
    // Eliminated loads bind to the array's stored value, the recorded
    // number of iterations back.
    for (const auto &[Consumer, Array, Distance] : PendingArrayCarried) {
      auto Def = StoreValue.find(Array);
      assert(Def != StoreValue.end() && Def->second >= 0 &&
             "eliminated load without a producing store");
      G.addFlowDependence(Def->second, Consumer, latencyOf(Def->second),
                          Distance);
    }

    // Scalars assigned but never read still hold their value for one
    // cycle.
    for (const auto &[Name, Def] : ScalarDef)
      G.ensureRegister(Def);

    // Memory dependences between stores and loads of the same array.
    for (const auto &[Array, StOff, Store] : ArrayStores) {
      for (const auto &[LArray, LdOff, Load] : ArrayLoads) {
        if (LArray != Array)
          continue;
        if (LdOff < StOff) // Store reaches a later iteration's load.
          G.addSchedEdge(Store, Load, 1, StOff - LdOff);
        else // Anti: the load must beat the (later) store.
          G.addSchedEdge(Load, Store, 0, LdOff - StOff);
      }
      // Output dependences between stores of the same array.
      for (const auto &[OArray, OOff, Other] : ArrayStores) {
        if (OArray != Array || Other == Store)
          continue;
        if (OOff < StOff)
          G.addSchedEdge(Other, Store, 1, StOff - OOff);
        else if (OOff == StOff && Other < Store)
          G.addSchedEdge(Other, Store, 1, 0);
      }
    }
    return true;
  }

  Lexer Lex;
  const MachineModel &M;
  std::string *ErrorOut;
  bool Failed = false;

  std::vector<Expr> Exprs;
  std::vector<Stmt> Stmts;

  DependenceGraph G;
  int NextOpId = 0;
  std::map<std::string, int> ScalarDef;
  std::set<std::string> AssignedScalars;
  std::map<std::pair<std::string, int>, int> LoadCache;
  std::map<std::pair<std::string, int>, Value> ArrayDef;
  std::map<std::string, int> UniqueStoreOffset;
  std::map<std::string, int> StoreValue;
  std::set<std::string> ValueConsumed;
  std::vector<std::tuple<std::string, int, int>> ArrayLoads;
  std::vector<std::tuple<std::string, int, int>> ArrayStores;
  std::vector<std::pair<int, std::string>> PendingCarried;
  std::vector<std::tuple<int, std::string, int>> PendingArrayCarried;
};

} // namespace

std::optional<DependenceGraph>
modsched::compileLoopDsl(const std::string &Source, const MachineModel &M,
                         std::string *Error) {
  Compiler C(Source, M, Error);
  return C.run();
}
