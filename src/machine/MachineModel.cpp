//===- machine/MachineModel.cpp - Resource/reservation model --------------===//

#include "machine/MachineModel.h"

#include "support/Hash.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>

using namespace modsched;

int MachineModel::addResource(std::string Name, int Count) {
  assert(Count > 0 && "resource must have at least one instance");
  Resources.push_back({std::move(Name), Count});
  return static_cast<int>(Resources.size()) - 1;
}

int MachineModel::addOpClass(std::string Name, int Latency,
                             std::vector<ResourceUsage> Usages) {
  for (const ResourceUsage &U : Usages) {
    assert(U.Resource >= 0 && U.Resource < numResources() &&
           "usage references unknown resource");
    assert(U.Cycle >= 0 && "usage cycle must be non-negative");
    (void)U;
  }
  Classes.push_back({std::move(Name), Latency, std::move(Usages)});
  return static_cast<int>(Classes.size()) - 1;
}

std::optional<int> MachineModel::findOpClass(const std::string &Name) const {
  for (int C = 0; C < numOpClasses(); ++C)
    if (Classes[C].Name == Name)
      return C;
  return std::nullopt;
}

uint64_t MachineModel::opClassSignature(int C) const {
  assert(C >= 0 && C < numOpClasses() && "opclass index out of range");
  // Canonical resource ids: rank by first appearance in any class's usage
  // list. Machines are tiny, so recomputing per call is noise.
  std::vector<int> CanonId(Resources.size(), -1);
  int Next = 0;
  for (const OpClass &Cls : Classes)
    for (const ResourceUsage &U : Cls.Usages)
      if (CanonId[U.Resource] < 0)
        CanonId[U.Resource] = Next++;

  const OpClass &Cls = Classes[C];
  std::vector<std::array<int, 3>> Uses;
  Uses.reserve(Cls.Usages.size());
  for (const ResourceUsage &U : Cls.Usages)
    Uses.push_back({CanonId[U.Resource], Resources[U.Resource].Count,
                    U.Cycle});
  std::sort(Uses.begin(), Uses.end());

  uint64_t H = hashMix(0x6f70636cu); // "opcl"
  H = hashCombine(H, static_cast<uint64_t>(static_cast<int64_t>(Cls.Latency)));
  H = hashCombine(H, Uses.size());
  for (const auto &U : Uses)
    for (int Field : U)
      H = hashCombine(H, static_cast<uint64_t>(static_cast<int64_t>(Field)));
  return H;
}

uint64_t MachineModel::digest() const {
  uint64_t H = hashMix(0x6d616368u); // "mach"
  uint64_t Pool = 0;
  for (const ResourceType &R : Resources)
    Pool = hashUnordered(Pool, static_cast<uint64_t>(R.Count));
  H = hashCombine(H, Pool);
  uint64_t Cls = 0;
  for (int C = 0; C < numOpClasses(); ++C)
    Cls = hashUnordered(Cls, opClassSignature(C));
  H = hashCombine(H, Cls);
  return H;
}

std::string MachineModel::toString() const {
  std::string Out = "machine " + MachineName + "\n";
  char Buf[256];
  for (const ResourceType &R : Resources) {
    std::snprintf(Buf, sizeof(Buf), "  resource %s x%d\n", R.Name.c_str(),
                  R.Count);
    Out += Buf;
  }
  for (const OpClass &C : Classes) {
    std::snprintf(Buf, sizeof(Buf), "  class %s latency=%d uses=",
                  C.Name.c_str(), C.Latency);
    Out += Buf;
    for (size_t U = 0; U < C.Usages.size(); ++U) {
      std::snprintf(Buf, sizeof(Buf), "%s%s@%d", U ? "," : "",
                    Resources[C.Usages[U].Resource].Name.c_str(),
                    C.Usages[U].Cycle);
      Out += Buf;
    }
    Out += "\n";
  }
  return Out;
}

MachineModel MachineModel::example3() {
  MachineModel M;
  M.setName("example3");
  int Fu = M.addResource("fu", 3);
  // All classes are fully pipelined and only occupy an issue slot.
  M.addOpClass(opclasses::Load, 1, {{Fu, 0}});
  M.addOpClass(opclasses::Store, 1, {{Fu, 0}});
  M.addOpClass(opclasses::Add, 1, {{Fu, 0}});
  M.addOpClass(opclasses::Sub, 1, {{Fu, 0}});
  M.addOpClass(opclasses::Mul, 4, {{Fu, 0}});
  M.addOpClass(opclasses::Div, 4, {{Fu, 0}});
  M.addOpClass(opclasses::Copy, 1, {{Fu, 0}});
  M.addOpClass(opclasses::Branch, 1, {{Fu, 0}});
  return M;
}

MachineModel MachineModel::cydraLike() {
  // A synthetic stand-in for the Cydra 5's "complex resource
  // requirements": several resource types, operations that hold a
  // resource for multiple cycles, and shared result buses claimed late in
  // an operation's execution (which makes the modulo resource constraints
  // interact across MRT rows).
  MachineModel M;
  M.setName("cydra-like");
  int MemPort = M.addResource("memport", 2);
  int AddrAlu = M.addResource("addralu", 2);
  int FAdd = M.addResource("fadd", 1);
  int FMul = M.addResource("fmul", 1);
  int Alu = M.addResource("alu", 2);
  int Bus = M.addResource("bus", 2);

  // Loads occupy a memory port for two consecutive cycles and deliver
  // their value over a shared result bus.
  M.addOpClass(opclasses::Load, 6,
               {{MemPort, 0}, {MemPort, 1}, {AddrAlu, 0}, {Bus, 6}});
  M.addOpClass(opclasses::Store, 1, {{MemPort, 0}, {AddrAlu, 0}});
  // Floating add: pipelined, result bus at the end.
  M.addOpClass(opclasses::Add, 3, {{FAdd, 0}, {Bus, 3}});
  M.addOpClass(opclasses::Sub, 3, {{FAdd, 0}, {Bus, 3}});
  // Floating multiply: initiates at most every other cycle.
  M.addOpClass(opclasses::Mul, 4, {{FMul, 0}, {FMul, 1}, {Bus, 4}});
  // Divide blocks the multiplier for four cycles.
  M.addOpClass(opclasses::Div, 10,
               {{FMul, 0}, {FMul, 1}, {FMul, 2}, {FMul, 3}, {Bus, 10}});
  M.addOpClass(opclasses::Copy, 1, {{Alu, 0}, {Bus, 1}});
  M.addOpClass(opclasses::Branch, 1, {{Alu, 0}});
  return M;
}

MachineModel MachineModel::vliw2() {
  MachineModel M;
  M.setName("vliw2");
  int Mem = M.addResource("mem", 1);
  int Pipe = M.addResource("pipe", 1);
  M.addOpClass(opclasses::Load, 2, {{Mem, 0}});
  M.addOpClass(opclasses::Store, 1, {{Mem, 0}});
  M.addOpClass(opclasses::Add, 1, {{Pipe, 0}});
  M.addOpClass(opclasses::Sub, 1, {{Pipe, 0}});
  M.addOpClass(opclasses::Mul, 3, {{Pipe, 0}});
  M.addOpClass(opclasses::Div, 8, {{Pipe, 0}, {Pipe, 1}, {Pipe, 2}});
  M.addOpClass(opclasses::Copy, 1, {{Pipe, 0}});
  M.addOpClass(opclasses::Branch, 1, {{Pipe, 0}});
  return M;
}
