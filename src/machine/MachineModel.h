//===- machine/MachineModel.h - Resource/reservation model ------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine description used by the resource constraints (the paper's
/// Inequality (5)): a set of resource types with multiplicities, and per
/// operation-class reservation tables Res_{i,q} listing, for each
/// resource type, the cycles (relative to issue) at which one instance is
/// busy. This is the "reduced machine description" style of [22]
/// (Eichenberger & Davidson, PLDI'96): resources used at most once per
/// operation per cycle, which is the class of machines for which
/// Inequality (5) applies.
///
/// Built-in machines:
///  * example3()  - the 3-wide universal-FU machine of the paper's
///                  Section 2 (used by Example 1 / Figure 1).
///  * cydraLike() - a synthetic stand-in for the Cydra 5: multiple
///                  resource types, multi-cycle usage patterns (shared
///                  result buses, blocking divide), long memory latency.
///  * vliw2()     - a small 2-issue machine with dedicated units.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_MACHINE_MACHINEMODEL_H
#define MODSCHED_MACHINE_MACHINEMODEL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace modsched {

/// A resource type and the number of identical instances available.
struct ResourceType {
  std::string Name;
  int Count = 1;
};

/// One reservation: the operation occupies one instance of \p Resource
/// exactly \p Cycle cycles after issue.
struct ResourceUsage {
  int Resource = 0;
  int Cycle = 0;
};

/// A class of operations sharing latency and resource usage (e.g. "load",
/// "fmul").
struct OpClass {
  std::string Name;
  /// Default flow latency: cycles until a consumer may issue.
  int Latency = 1;
  std::vector<ResourceUsage> Usages;
};

/// A target machine: resource types plus operation classes.
class MachineModel {
public:
  /// Adds a resource type with \p Count identical instances.
  int addResource(std::string Name, int Count);

  /// Adds an operation class; \p Usages refer to resource indices.
  int addOpClass(std::string Name, int Latency,
                 std::vector<ResourceUsage> Usages);

  int numResources() const { return static_cast<int>(Resources.size()); }
  int numOpClasses() const { return static_cast<int>(Classes.size()); }

  const ResourceType &resource(int R) const { return Resources[R]; }
  const OpClass &opClass(int C) const { return Classes[C]; }
  const std::vector<ResourceType> &resources() const { return Resources; }
  const std::vector<OpClass> &opClasses() const { return Classes; }

  /// Looks an operation class up by name.
  std::optional<int> findOpClass(const std::string &Name) const;

  /// Scheduling-relevant signature of operation class \p C: a 64-bit
  /// digest of its latency and its resource usages, where each usage is
  /// identified by the used resource's INSTANCE COUNT and a canonical
  /// resource id (the resource's rank by first appearance in any class's
  /// usage list, a deterministic bijection on the used resources). Names
  /// never enter the digest: renaming a unit or an opclass leaves the
  /// signature unchanged, while changing a latency, a usage cycle, or an
  /// instance count changes it.
  uint64_t opClassSignature(int C) const;

  /// Canonical digest of the whole machine: order-insensitive over the
  /// resource (count) multiset and order-sensitive over nothing that
  /// depends on naming. Two machines that differ only in resource/class
  /// names (or in opclass table order, when paired with per-node
  /// signatures) digest equal. Class signatures are folded in UNORDERED
  /// because graph nodes carry their own opClassSignature — the machine
  /// digest only needs to pin down the resource pool.
  uint64_t digest() const;

  /// Machine name for reports.
  const std::string &name() const { return MachineName; }
  void setName(std::string Name) { MachineName = std::move(Name); }

  /// Renders the machine description.
  std::string toString() const;

  /// The paper's Section 2 example: three fully-pipelined general-purpose
  /// units; load/store/add/sub latency 1, mult latency 4.
  static MachineModel example3();

  /// Synthetic Cydra-5-like machine with complex resource requirements.
  static MachineModel cydraLike();

  /// Small 2-issue VLIW with one memory port and one ALU/FPU pipe.
  static MachineModel vliw2();

private:
  std::string MachineName = "machine";
  std::vector<ResourceType> Resources;
  std::vector<OpClass> Classes;
};

/// Canonical operation-class names shared by every built-in machine, so
/// kernels can be retargeted. Each built-in machine defines all of these.
namespace opclasses {
inline constexpr const char *Load = "load";
inline constexpr const char *Store = "store";
inline constexpr const char *Add = "add";
inline constexpr const char *Sub = "sub";
inline constexpr const char *Mul = "mul";
inline constexpr const char *Div = "div";
inline constexpr const char *Copy = "copy";
inline constexpr const char *Branch = "branch";
} // namespace opclasses

} // namespace modsched

#endif // MODSCHED_MACHINE_MACHINEMODEL_H
