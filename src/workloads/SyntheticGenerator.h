//===- workloads/SyntheticGenerator.h - Random loop DDGs --------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random dependence-graph generator standing in for the paper's
/// 1327 Fortran loops (Perfect Club, SPEC-89, Livermore) compiled by the
/// Cydra 5 compiler. The generator is calibrated to the paper's reported
/// loop-size distribution: many small loops (median N = 9 in Table 1), a
/// long tail of larger ones, a moderate rate of loop-carried recurrences,
/// and dependence distances mostly 1 with occasional larger values.
///
/// Every generated graph is a valid loop body: flow dependences only go
/// from lower-indexed to higher-indexed operations within an iteration
/// (so all same-iteration cycles are impossible), and loop-carried
/// dependences have distance >= 1 (so no zero-distance cycle exists).
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_WORKLOADS_SYNTHETICGENERATOR_H
#define MODSCHED_WORKLOADS_SYNTHETICGENERATOR_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"
#include "support/Rng.h"

#include <vector>

namespace modsched {

/// Size/shape knobs of the generator.
struct SyntheticOptions {
  /// Smallest and largest loop body.
  int MinOps = 3;
  int MaxOps = 24;
  /// Probability that an operation consumes a second same-iteration
  /// operand.
  double SecondOperandProb = 0.5;
  /// Probability that a loop gets at least one loop-carried recurrence.
  double RecurrenceProb = 0.45;
  /// Probability that a use reads the previous iteration's value
  /// (cross-iteration use that does not necessarily close a cycle).
  double CrossIterationUseProb = 0.08;
  /// Largest dependence distance.
  int MaxDistance = 3;
  /// Fraction of operations that are stores (sinks).
  double StoreFraction = 0.18;
  /// Fraction of operations that are loads (pure sources).
  double LoadFraction = 0.3;
};

/// Generates one random loop with the given \p Rng stream.
DependenceGraph generateLoop(const MachineModel &M, Rng &R,
                             const SyntheticOptions &Opts = {});

/// Generates a whole benchmark suite of \p Count loops mixing three size
/// bands (small/medium/large) in proportions mimicking the paper's
/// distribution, deterministically from \p Seed. The hand-written kernel
/// library is prepended when \p IncludeKernels is set.
std::vector<DependenceGraph> generateSuite(const MachineModel &M, int Count,
                                           uint64_t Seed,
                                           bool IncludeKernels = true,
                                           int LargeCap = 40);

} // namespace modsched

#endif // MODSCHED_WORKLOADS_SYNTHETICGENERATOR_H
