//===- workloads/SyntheticGenerator.cpp - Random loop DDGs ----------------===//

#include "workloads/SyntheticGenerator.h"

#include "graph/GraphAlgorithms.h"
#include "workloads/KernelLibrary.h"

#include <cassert>
#include <string>

using namespace modsched;

namespace {

/// Picks an arithmetic operation class, weighted toward cheap ops.
int pickArithClass(const MachineModel &M, Rng &R) {
  double P = R.nextDouble();
  const char *Name;
  if (P < 0.42)
    Name = opclasses::Add;
  else if (P < 0.62)
    Name = opclasses::Sub;
  else if (P < 0.88)
    Name = opclasses::Mul;
  else if (P < 0.94)
    Name = opclasses::Div;
  else
    Name = opclasses::Copy;
  std::optional<int> Class = M.findOpClass(Name);
  assert(Class && "built-in machines define all canonical classes");
  return *Class;
}

} // namespace

DependenceGraph modsched::generateLoop(const MachineModel &M, Rng &R,
                                       const SyntheticOptions &Opts) {
  DependenceGraph G;
  int N = static_cast<int>(R.nextInRange(Opts.MinOps, Opts.MaxOps));

  int LoadClass = *M.findOpClass(opclasses::Load);
  int StoreClass = *M.findOpClass(opclasses::Store);

  // Decide op kinds: a prefix of loads, a body of arithmetic, stores
  // sprinkled at the end region. At least one load when any op consumes.
  std::vector<int> Kind(N); // 0 = load, 1 = arith, 2 = store.
  int NumLoads = std::max(1, static_cast<int>(N * Opts.LoadFraction));
  int NumStores = std::max(N >= 3 ? 1 : 0,
                           static_cast<int>(N * Opts.StoreFraction));
  NumLoads = std::min(NumLoads, N);
  NumStores = std::min(NumStores, N - NumLoads);
  for (int I = 0; I < N; ++I)
    Kind[I] = I < NumLoads ? 0 : 1;
  for (int S = 0; S < NumStores; ++S)
    Kind[N - 1 - S] = 2;

  for (int I = 0; I < N; ++I) {
    int Class = Kind[I] == 0   ? LoadClass
                : Kind[I] == 2 ? StoreClass
                               : pickArithClass(M, R);
    const char *Prefix = Kind[I] == 0 ? "ld" : Kind[I] == 2 ? "st" : "op";
    G.addOperation(Prefix + std::to_string(I), Class);
  }

  auto LatencyOf = [&](int Op) {
    return M.opClass(G.operation(Op).OpClass).Latency;
  };

  // Same-iteration flow dependences: each non-load op consumes one or two
  // earlier values (forward edges only, so no same-iteration cycles).
  for (int I = NumLoads; I < N; ++I) {
    int NumOperands = 1 + (R.nextBool(Opts.SecondOperandProb) ? 1 : 0);
    for (int Operand = 0; Operand < NumOperands; ++Operand) {
      int Def = static_cast<int>(R.nextBelow(I));
      if (Kind[Def] == 2)
        Def = static_cast<int>(R.nextBelow(NumLoads)); // Stores produce
                                                       // no value.
      int Distance =
          R.nextBool(Opts.CrossIterationUseProb)
              ? static_cast<int>(R.nextInRange(1, Opts.MaxDistance))
              : 0;
      G.addFlowDependence(Def, I, LatencyOf(Def), Distance);
    }
  }

  // Loop-carried recurrences: close a cycle from a later arithmetic op
  // back to an earlier arithmetic op with distance >= 1.
  if (R.nextBool(Opts.RecurrenceProb)) {
    int NumRecurrences = 1 + (R.nextBool(0.25) ? 1 : 0);
    for (int Rec = 0; Rec < NumRecurrences; ++Rec) {
      // Choose arithmetic src/dst with src >= dst.
      int FirstArith = NumLoads;
      int LastArith = N - 1 - NumStores;
      if (LastArith < FirstArith)
        break;
      int Src = static_cast<int>(R.nextInRange(FirstArith, LastArith));
      int Dst = static_cast<int>(R.nextInRange(FirstArith, Src));
      int Distance = static_cast<int>(R.nextInRange(1, Opts.MaxDistance));
      G.addFlowDependence(Src, Dst, LatencyOf(Src), Distance);
    }
  }

  // Occasionally add a may-alias memory ordering edge between a store and
  // a later iteration's load.
  if (NumStores > 0 && R.nextBool(0.2)) {
    int Store = N - 1;
    int Load = static_cast<int>(R.nextBelow(NumLoads));
    G.addSchedEdge(Store, Load, 1,
                   static_cast<int>(R.nextInRange(1, Opts.MaxDistance)));
  }

  assert(!G.validate() && "generator produced an invalid graph");
  assert(!hasZeroDistanceCycle(G) &&
         "generator produced a zero-distance cycle");
  return G;
}

std::vector<DependenceGraph>
modsched::generateSuite(const MachineModel &M, int Count, uint64_t Seed,
                        bool IncludeKernels, int LargeCap) {
  std::vector<DependenceGraph> Suite;
  if (IncludeKernels)
    Suite = allKernels(M);

  Rng R(Seed);
  for (int I = 0; I < Count; ++I) {
    SyntheticOptions Opts;
    // Size bands mirroring the paper's skew: mostly small loops
    // (median ~9 ops), some medium, a thin tail of large ones.
    double Band = R.nextDouble();
    if (Band < 0.60) {
      Opts.MinOps = 3;
      Opts.MaxOps = 10;
    } else if (Band < 0.90) {
      Opts.MinOps = 10;
      Opts.MaxOps = 22;
    } else {
      Opts.MinOps = 22;
      Opts.MaxOps = LargeCap;
    }
    DependenceGraph G = generateLoop(M, R, Opts);
    G.setName("synthetic" + std::to_string(I));
    Suite.push_back(std::move(G));
  }
  return Suite;
}
