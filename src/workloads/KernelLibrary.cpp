//===- workloads/KernelLibrary.cpp - Hand-translated kernels --------------===//

#include "workloads/KernelLibrary.h"

#include <cassert>

using namespace modsched;

namespace {

/// Small helper binding a graph to a machine's operation classes.
class KernelBuilder {
public:
  explicit KernelBuilder(const MachineModel &M, std::string Name) : M(M) {
    G.setName(std::move(Name));
  }

  int op(const char *ClassName, std::string OpName) {
    std::optional<int> Class = M.findOpClass(ClassName);
    assert(Class && "machine lacks a required operation class");
    return G.addOperation(std::move(OpName), *Class);
  }

  /// Flow dependence with the producer's class latency.
  void flow(int Def, int Use, int Distance = 0) {
    int Latency = M.opClass(G.operation(Def).OpClass).Latency;
    G.addFlowDependence(Def, Use, Latency, Distance);
  }

  /// Pure ordering edge (e.g. memory).
  void order(int Src, int Dst, int Latency, int Distance) {
    G.addSchedEdge(Src, Dst, Latency, Distance);
  }

  DependenceGraph take() {
    assert(!G.validate() && "kernel construction produced invalid graph");
    return std::move(G);
  }

private:
  const MachineModel &M;
  DependenceGraph G;
};

} // namespace

DependenceGraph modsched::paperExample1(const MachineModel &M) {
  // y[i] = x[i]^2 - x[i] - a. Figure 1a: load -> {mult, add}; mult and
  // add feed sub; sub feeds store. The load's value is vr0, used by both
  // mult (twice, squaring) and add.
  KernelBuilder B(M, "paper-example1");
  int Load = B.op(opclasses::Load, "load_x");
  int Mult = B.op(opclasses::Mul, "mult");
  int Add = B.op(opclasses::Add, "add");
  int Sub = B.op(opclasses::Sub, "sub");
  int Store = B.op(opclasses::Store, "store_y");
  B.flow(Load, Mult);
  B.flow(Load, Add);
  B.flow(Mult, Sub);
  B.flow(Add, Sub);
  B.flow(Sub, Store);
  return B.take();
}

DependenceGraph modsched::livermore1(const MachineModel &M) {
  // x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])
  KernelBuilder B(M, "livermore1-hydro");
  int LoadY = B.op(opclasses::Load, "load_y");
  int LoadZ10 = B.op(opclasses::Load, "load_z10");
  int LoadZ11 = B.op(opclasses::Load, "load_z11");
  int MulR = B.op(opclasses::Mul, "mul_r_z10");
  int MulT = B.op(opclasses::Mul, "mul_t_z11");
  int AddInner = B.op(opclasses::Add, "add_inner");
  int MulY = B.op(opclasses::Mul, "mul_y");
  int AddQ = B.op(opclasses::Add, "add_q");
  int Store = B.op(opclasses::Store, "store_x");
  B.flow(LoadZ10, MulR);
  B.flow(LoadZ11, MulT);
  B.flow(MulR, AddInner);
  B.flow(MulT, AddInner);
  B.flow(LoadY, MulY);
  B.flow(AddInner, MulY);
  B.flow(MulY, AddQ);
  B.flow(AddQ, Store);
  return B.take();
}

DependenceGraph modsched::livermore5(const MachineModel &M) {
  // x[i] = z[i] * (y[i] - x[i-1]): the freshly computed x feeds the next
  // iteration's subtraction (distance 1).
  KernelBuilder B(M, "livermore5-tridiag");
  int LoadZ = B.op(opclasses::Load, "load_z");
  int LoadY = B.op(opclasses::Load, "load_y");
  int Sub = B.op(opclasses::Sub, "sub");
  int Mul = B.op(opclasses::Mul, "mul");
  int Store = B.op(opclasses::Store, "store_x");
  B.flow(LoadZ, Mul);
  B.flow(LoadY, Sub);
  B.flow(Sub, Mul);
  B.flow(Mul, Sub, /*Distance=*/1); // x[i-1] into the next subtract.
  B.flow(Mul, Store);
  return B.take();
}

DependenceGraph modsched::livermore11(const MachineModel &M) {
  // x[k] = x[k-1] + y[k].
  KernelBuilder B(M, "livermore11-firstsum");
  int LoadY = B.op(opclasses::Load, "load_y");
  int Add = B.op(opclasses::Add, "add");
  int Store = B.op(opclasses::Store, "store_x");
  B.flow(LoadY, Add);
  B.flow(Add, Add, /*Distance=*/1); // Running sum.
  B.flow(Add, Store);
  return B.take();
}

DependenceGraph modsched::dotProduct(const MachineModel &M) {
  // s += x[i] * y[i].
  KernelBuilder B(M, "dotproduct");
  int LoadX = B.op(opclasses::Load, "load_x");
  int LoadY = B.op(opclasses::Load, "load_y");
  int Mul = B.op(opclasses::Mul, "mul");
  int Add = B.op(opclasses::Add, "acc");
  B.flow(LoadX, Mul);
  B.flow(LoadY, Mul);
  B.flow(Mul, Add);
  B.flow(Add, Add, /*Distance=*/1); // Accumulator recurrence.
  return B.take();
}

DependenceGraph modsched::daxpy(const MachineModel &M) {
  // y[i] = y[i] + a * x[i].
  KernelBuilder B(M, "daxpy");
  int LoadX = B.op(opclasses::Load, "load_x");
  int LoadY = B.op(opclasses::Load, "load_y");
  int Mul = B.op(opclasses::Mul, "mul_a_x");
  int Add = B.op(opclasses::Add, "add");
  int Store = B.op(opclasses::Store, "store_y");
  B.flow(LoadX, Mul);
  B.flow(LoadY, Add);
  B.flow(Mul, Add);
  B.flow(Add, Store);
  // The store writes the location the load read: ordering edge so the
  // next iteration's (different-address) accesses may still reorder, but
  // this iteration's load precedes its store.
  B.order(LoadY, Store, 1, 0);
  return B.take();
}

DependenceGraph modsched::complexMultiply(const MachineModel &M) {
  // cr = ar*br - ai*bi ; ci = ar*bi + ai*br.
  KernelBuilder B(M, "complex-multiply");
  int Ar = B.op(opclasses::Load, "load_ar");
  int Ai = B.op(opclasses::Load, "load_ai");
  int Br = B.op(opclasses::Load, "load_br");
  int Bi = B.op(opclasses::Load, "load_bi");
  int M1 = B.op(opclasses::Mul, "mul_ar_br");
  int M2 = B.op(opclasses::Mul, "mul_ai_bi");
  int M3 = B.op(opclasses::Mul, "mul_ar_bi");
  int M4 = B.op(opclasses::Mul, "mul_ai_br");
  int Sub = B.op(opclasses::Sub, "sub_cr");
  int Add = B.op(opclasses::Add, "add_ci");
  int StR = B.op(opclasses::Store, "store_cr");
  int StI = B.op(opclasses::Store, "store_ci");
  B.flow(Ar, M1);
  B.flow(Br, M1);
  B.flow(Ai, M2);
  B.flow(Bi, M2);
  B.flow(Ar, M3);
  B.flow(Bi, M3);
  B.flow(Ai, M4);
  B.flow(Br, M4);
  B.flow(M1, Sub);
  B.flow(M2, Sub);
  B.flow(M3, Add);
  B.flow(M4, Add);
  B.flow(Sub, StR);
  B.flow(Add, StI);
  return B.take();
}

DependenceGraph modsched::stencil3(const MachineModel &M) {
  // b[i] = s * (a[i-1] + a[i] + a[i+1]). A rotating-register compiler
  // would reuse loads across iterations; here each iteration reloads, as
  // the Cydra compiler does without load-elimination across iterations.
  KernelBuilder B(M, "stencil3");
  int L0 = B.op(opclasses::Load, "load_am1");
  int L1 = B.op(opclasses::Load, "load_a0");
  int L2 = B.op(opclasses::Load, "load_ap1");
  int A0 = B.op(opclasses::Add, "add01");
  int A1 = B.op(opclasses::Add, "add2");
  int Mu = B.op(opclasses::Mul, "scale");
  int St = B.op(opclasses::Store, "store_b");
  B.flow(L0, A0);
  B.flow(L1, A0);
  B.flow(A0, A1);
  B.flow(L2, A1);
  B.flow(A1, Mu);
  B.flow(Mu, St);
  return B.take();
}

DependenceGraph modsched::secondOrderRecurrence(const MachineModel &M) {
  // x[i] = a*x[i-1] + b*x[i-2] + c.
  KernelBuilder B(M, "second-order-recurrence");
  int MulA = B.op(opclasses::Mul, "mul_a");
  int MulB = B.op(opclasses::Mul, "mul_b");
  int Add1 = B.op(opclasses::Add, "add_ab");
  int Add2 = B.op(opclasses::Add, "add_c");
  int Store = B.op(opclasses::Store, "store_x");
  B.flow(MulA, Add1);
  B.flow(MulB, Add1);
  B.flow(Add1, Add2);
  B.flow(Add2, Store);
  B.flow(Add2, MulA, /*Distance=*/1); // x[i-1].
  B.flow(Add2, MulB, /*Distance=*/2); // x[i-2].
  return B.take();
}

DependenceGraph modsched::ambiguousMemory(const MachineModel &M) {
  // a[i+1] = a[i] * s where the compiler must assume the store may alias
  // the next iteration's load: a store -> load ordering edge at distance
  // 1 joins the true flow recurrence.
  KernelBuilder B(M, "ambiguous-memory");
  int Load = B.op(opclasses::Load, "load_a");
  int Mul = B.op(opclasses::Mul, "mul_s");
  int Store = B.op(opclasses::Store, "store_a");
  B.flow(Load, Mul);
  B.flow(Mul, Store);
  B.order(Store, Load, 1, 1); // May-alias: next load after this store.
  return B.take();
}

DependenceGraph modsched::livermore3Unrolled2(const MachineModel &M) {
  // q += z[k]*x[k], unrolled twice with independent partial sums, the way
  // the Cydra compiler's recurrence back-substitution would emit it.
  KernelBuilder B(M, "livermore3-inner-unroll2");
  int Z0 = B.op(opclasses::Load, "load_z0");
  int X0 = B.op(opclasses::Load, "load_x0");
  int Z1 = B.op(opclasses::Load, "load_z1");
  int X1 = B.op(opclasses::Load, "load_x1");
  int M0 = B.op(opclasses::Mul, "mul0");
  int M1 = B.op(opclasses::Mul, "mul1");
  int A0 = B.op(opclasses::Add, "acc0");
  int A1 = B.op(opclasses::Add, "acc1");
  B.flow(Z0, M0);
  B.flow(X0, M0);
  B.flow(Z1, M1);
  B.flow(X1, M1);
  B.flow(M0, A0);
  B.flow(M1, A1);
  B.flow(A0, A0, /*Distance=*/1);
  B.flow(A1, A1, /*Distance=*/1);
  return B.take();
}

DependenceGraph modsched::livermore7(const MachineModel &M) {
  // x[k] = u[k] + r*(z[k] + r*y[k]) + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
  //        + t*(u[k+6] + q*(u[k+5] + q*u[k+4]))).
  KernelBuilder B(M, "livermore7-eos");
  int U0 = B.op(opclasses::Load, "load_u0");
  int Z = B.op(opclasses::Load, "load_z");
  int Y = B.op(opclasses::Load, "load_y");
  int U1 = B.op(opclasses::Load, "load_u1");
  int U2 = B.op(opclasses::Load, "load_u2");
  int U3 = B.op(opclasses::Load, "load_u3");
  int U4 = B.op(opclasses::Load, "load_u4");
  int U5 = B.op(opclasses::Load, "load_u5");
  int U6 = B.op(opclasses::Load, "load_u6");
  int Ry = B.op(opclasses::Mul, "mul_r_y");
  int Az = B.op(opclasses::Add, "add_z_ry");
  int Rz = B.op(opclasses::Mul, "mul_r_zry");
  int T1 = B.op(opclasses::Add, "add_u0");
  int Ru1 = B.op(opclasses::Mul, "mul_r_u1");
  int Au2 = B.op(opclasses::Add, "add_u2");
  int Ru2 = B.op(opclasses::Mul, "mul_r_u2t");
  int Au3 = B.op(opclasses::Add, "add_u3");
  int Qu4 = B.op(opclasses::Mul, "mul_q_u4");
  int Au5 = B.op(opclasses::Add, "add_u5");
  int Qu5 = B.op(opclasses::Mul, "mul_q_u5t");
  int Au6 = B.op(opclasses::Add, "add_u6");
  int Tt = B.op(opclasses::Mul, "mul_t_inner");
  int At = B.op(opclasses::Add, "add_t");
  int Tm = B.op(opclasses::Mul, "mul_t_outer");
  int Fin = B.op(opclasses::Add, "add_final");
  int St = B.op(opclasses::Store, "store_x");
  B.flow(Y, Ry);
  B.flow(Z, Az);
  B.flow(Ry, Az);
  B.flow(Az, Rz);
  B.flow(U0, T1);
  B.flow(Rz, T1);
  B.flow(U1, Ru1);
  B.flow(U2, Au2);
  B.flow(Ru1, Au2);
  B.flow(Au2, Ru2);
  B.flow(U3, Au3);
  B.flow(Ru2, Au3);
  B.flow(U4, Qu4);
  B.flow(U5, Au5);
  B.flow(Qu4, Au5);
  B.flow(Au5, Qu5);
  B.flow(U6, Au6);
  B.flow(Qu5, Au6);
  B.flow(Au6, Tt);
  B.flow(Au3, At);
  B.flow(Tt, At);
  B.flow(At, Tm);
  B.flow(T1, Fin);
  B.flow(Tm, Fin);
  B.flow(Fin, St);
  return B.take();
}

DependenceGraph modsched::livermore12(const MachineModel &M) {
  // x[k] = y[k+1] - y[k].
  KernelBuilder B(M, "livermore12-firstdiff");
  int Y1 = B.op(opclasses::Load, "load_y1");
  int Y0 = B.op(opclasses::Load, "load_y0");
  int Sub = B.op(opclasses::Sub, "sub");
  int St = B.op(opclasses::Store, "store_x");
  B.flow(Y1, Sub);
  B.flow(Y0, Sub);
  B.flow(Sub, St);
  return B.take();
}

DependenceGraph modsched::fir4(const MachineModel &M) {
  // y[i] = c0*x[i] + c1*x[i+1] + c2*x[i+2] + c3*x[i+3].
  KernelBuilder B(M, "fir4");
  int X0 = B.op(opclasses::Load, "load_x0");
  int X1 = B.op(opclasses::Load, "load_x1");
  int X2 = B.op(opclasses::Load, "load_x2");
  int X3 = B.op(opclasses::Load, "load_x3");
  int M0 = B.op(opclasses::Mul, "mul_c0");
  int M1 = B.op(opclasses::Mul, "mul_c1");
  int M2 = B.op(opclasses::Mul, "mul_c2");
  int M3 = B.op(opclasses::Mul, "mul_c3");
  int A0 = B.op(opclasses::Add, "add01");
  int A1 = B.op(opclasses::Add, "add23");
  int A2 = B.op(opclasses::Add, "add_final");
  int St = B.op(opclasses::Store, "store_y");
  B.flow(X0, M0);
  B.flow(X1, M1);
  B.flow(X2, M2);
  B.flow(X3, M3);
  B.flow(M0, A0);
  B.flow(M1, A0);
  B.flow(M2, A1);
  B.flow(M3, A1);
  B.flow(A0, A2);
  B.flow(A1, A2);
  B.flow(A2, St);
  return B.take();
}

DependenceGraph modsched::horner(const MachineModel &M) {
  // p = p * x + c[i]: the multiply-add recurrence dominates RecMII.
  KernelBuilder B(M, "horner");
  int C = B.op(opclasses::Load, "load_c");
  int Mu = B.op(opclasses::Mul, "mul_p_x");
  int Ad = B.op(opclasses::Add, "add_c");
  B.flow(C, Ad);
  B.flow(Mu, Ad);
  B.flow(Ad, Mu, /*Distance=*/1);
  return B.take();
}

DependenceGraph modsched::backSubstitution(const MachineModel &M) {
  // s = s - l[i]*x[i]; x[j] = s / d[j]: a divide inside the carried
  // computation stresses blocking resource patterns (cydra fdiv).
  KernelBuilder B(M, "back-substitution");
  int L = B.op(opclasses::Load, "load_l");
  int X = B.op(opclasses::Load, "load_x");
  int Mu = B.op(opclasses::Mul, "mul_lx");
  int Su = B.op(opclasses::Sub, "sub_s");
  int Dv = B.op(opclasses::Div, "div_d");
  int St = B.op(opclasses::Store, "store_x");
  B.flow(L, Mu);
  B.flow(X, Mu);
  B.flow(Mu, Su);
  B.flow(Su, Su, /*Distance=*/1); // Running s.
  B.flow(Su, Dv);
  B.flow(Dv, St);
  return B.take();
}

DependenceGraph modsched::hydro2d(const MachineModel &M) {
  // A 20-op fragment with two interleaved expression trees:
  //   za[j] = (zp[j] + zq[j]) * zr[j] + zm[j]
  //   zb[j] = (zz[j] - zr[j]) * zr[j] + zq[j] * zu[j]
  KernelBuilder B(M, "hydro2d-fragment");
  int Zp = B.op(opclasses::Load, "load_zp");
  int Zq = B.op(opclasses::Load, "load_zq");
  int Zr = B.op(opclasses::Load, "load_zr");
  int Zm = B.op(opclasses::Load, "load_zm");
  int Zz = B.op(opclasses::Load, "load_zz");
  int Zu = B.op(opclasses::Load, "load_zu");
  int A1 = B.op(opclasses::Add, "add_pq");
  int M1 = B.op(opclasses::Mul, "mul_pq_r");
  int A2 = B.op(opclasses::Add, "add_m");
  int S1 = B.op(opclasses::Sub, "sub_zz_r");
  int M2 = B.op(opclasses::Mul, "mul_zzr_r");
  int M3 = B.op(opclasses::Mul, "mul_q_u");
  int A3 = B.op(opclasses::Add, "add_b");
  int Cp = B.op(opclasses::Copy, "copy_a");
  int Sa = B.op(opclasses::Store, "store_za");
  int Sb = B.op(opclasses::Store, "store_zb");
  int A4 = B.op(opclasses::Add, "add_diag");
  int M4 = B.op(opclasses::Mul, "mul_diag");
  int S2 = B.op(opclasses::Sub, "sub_diag");
  int Sc = B.op(opclasses::Store, "store_zc");
  B.flow(Zp, A1);
  B.flow(Zq, A1);
  B.flow(A1, M1);
  B.flow(Zr, M1);
  B.flow(M1, A2);
  B.flow(Zm, A2);
  B.flow(A2, Cp);
  B.flow(Cp, Sa);
  B.flow(Zz, S1);
  B.flow(Zr, S1);
  B.flow(S1, M2);
  B.flow(Zr, M2);
  B.flow(Zq, M3);
  B.flow(Zu, M3);
  B.flow(M2, A3);
  B.flow(M3, A3);
  B.flow(A3, Sb);
  B.flow(A2, A4);
  B.flow(A3, A4);
  B.flow(A4, M4);
  B.flow(Zm, S2);
  B.flow(M4, S2);
  B.flow(S2, Sc);
  return B.take();
}

DependenceGraph modsched::prefixAverage(const MachineModel &M) {
  // y[i] = (x[i] + y[i-2]) * h: distance-2 recurrence through add + mul.
  KernelBuilder B(M, "prefix-average");
  int X = B.op(opclasses::Load, "load_x");
  int Ad = B.op(opclasses::Add, "add");
  int Mu = B.op(opclasses::Mul, "mul_h");
  int St = B.op(opclasses::Store, "store_y");
  B.flow(X, Ad);
  B.flow(Mu, Ad, /*Distance=*/2); // y[i-2].
  B.flow(Ad, Mu);
  B.flow(Mu, St);
  return B.take();
}

std::vector<DependenceGraph> modsched::allKernels(const MachineModel &M) {
  std::vector<DependenceGraph> Kernels;
  Kernels.push_back(paperExample1(M));
  Kernels.push_back(livermore1(M));
  Kernels.push_back(livermore5(M));
  Kernels.push_back(livermore11(M));
  Kernels.push_back(dotProduct(M));
  Kernels.push_back(daxpy(M));
  Kernels.push_back(complexMultiply(M));
  Kernels.push_back(stencil3(M));
  Kernels.push_back(secondOrderRecurrence(M));
  Kernels.push_back(ambiguousMemory(M));
  Kernels.push_back(livermore3Unrolled2(M));
  Kernels.push_back(livermore7(M));
  Kernels.push_back(livermore12(M));
  Kernels.push_back(fir4(M));
  Kernels.push_back(horner(M));
  Kernels.push_back(backSubstitution(M));
  Kernels.push_back(hydro2d(M));
  Kernels.push_back(prefixAverage(M));
  return Kernels;
}
