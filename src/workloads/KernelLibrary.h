//===- workloads/KernelLibrary.h - Hand-translated kernels ------*- C++ -*-===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence graphs of classic inner loops, hand-translated from the
/// benchmark families the paper draws on (Livermore Fortran Kernels,
/// linear-algebra/SPEC-style loops) plus the paper's own running example.
/// These substitute for the Cydra 5 compiler output we cannot reproduce;
/// each kernel documents the source computation in a comment.
///
//===----------------------------------------------------------------------===//

#ifndef MODSCHED_WORKLOADS_KERNELLIBRARY_H
#define MODSCHED_WORKLOADS_KERNELLIBRARY_H

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"

#include <vector>

namespace modsched {

/// The paper's Example 1: y[i] = x[i]^2 - x[i] - a (Figure 1). On the
/// example3() machine its minimum II is 2 and its minimum register
/// requirement at II=2 is exactly 7 (Figure 1e).
DependenceGraph paperExample1(const MachineModel &M);

/// Livermore Kernel 1 (hydro fragment):
///   x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])
DependenceGraph livermore1(const MachineModel &M);

/// Livermore Kernel 5 (tri-diagonal elimination, below diagonal):
///   x[i] = z[i] * (y[i] - x[i-1])        (loop-carried, distance 1)
DependenceGraph livermore5(const MachineModel &M);

/// Livermore Kernel 11 (first sum):
///   x[k] = x[k-1] + y[k]                 (loop-carried, distance 1)
DependenceGraph livermore11(const MachineModel &M);

/// Dot product reduction: s += x[i] * y[i].
DependenceGraph dotProduct(const MachineModel &M);

/// DAXPY: y[i] = y[i] + a * x[i].
DependenceGraph daxpy(const MachineModel &M);

/// Complex multiply: (cr,ci) = (ar,ai) * (br,bi), streamed.
DependenceGraph complexMultiply(const MachineModel &M);

/// 3-point stencil: b[i] = s * (a[i-1] + a[i] + a[i+1]).
DependenceGraph stencil3(const MachineModel &M);

/// Second-order recurrence: x[i] = a*x[i-1] + b*x[i-2] + c.
DependenceGraph secondOrderRecurrence(const MachineModel &M);

/// A loop with a store-to-load memory ordering edge (ambiguous aliasing):
///   a[i+1] = a[i] * s  with the compiler unable to disambiguate.
DependenceGraph ambiguousMemory(const MachineModel &M);

/// Livermore Kernel 3 (inner product) with 2x unrolled accumulator:
///   q0 += z[2i]*x[2i]; q1 += z[2i+1]*x[2i+1]   (two latency-1 recurrences)
DependenceGraph livermore3Unrolled2(const MachineModel &M);

/// Livermore Kernel 7 (equation-of-state fragment), a wide expression
/// tree with shared subexpressions:
///   x[k] = u[k] + r*(z[k] + r*y[k])
///          + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
///          + t*(u[k+6] + q*(u[k+5] + q*u[k+4])))
DependenceGraph livermore7(const MachineModel &M);

/// Livermore Kernel 12 (first difference): x[k] = y[k+1] - y[k].
DependenceGraph livermore12(const MachineModel &M);

/// 4-tap FIR filter: y[i] = sum_j c[j] * x[i+j].
DependenceGraph fir4(const MachineModel &M);

/// Horner evaluation step with the running value carried around the
/// loop: p = p * x + c[i].
DependenceGraph horner(const MachineModel &M);

/// Back substitution step (SPEC-style solver inner loop):
///   s = s - l[i]*x[i]; followed by a divide on exit value each round:
///   x[j] = s / d[j]  (div in the recurrence makes RecMII large).
DependenceGraph backSubstitution(const MachineModel &M);

/// A 20-operation 2-D hydrodynamics-style fragment exercising wide
/// parallelism with two interleaved expression trees and two stores.
DependenceGraph hydro2d(const MachineModel &M);

/// Prefix average with distance-2 reuse: y[i] = (x[i] + y[i-2]) * h.
DependenceGraph prefixAverage(const MachineModel &M);

/// All kernels above, each validated; names are set on the graphs.
std::vector<DependenceGraph> allKernels(const MachineModel &M);

} // namespace modsched

#endif // MODSCHED_WORKLOADS_KERNELLIBRARY_H
