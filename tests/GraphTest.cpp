//===- tests/GraphTest.cpp - dependence graph + algorithms tests ----------===//

#include "graph/DependenceGraph.h"
#include "graph/GraphAlgorithms.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace modsched;

namespace {

/// a -> b -> c chain with latencies 1.
DependenceGraph chain3() {
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  int C = G.addOperation("c", 0);
  G.addSchedEdge(A, B, 1, 0);
  G.addSchedEdge(B, C, 1, 0);
  return G;
}

} // namespace

TEST(DependenceGraph, BuildAndAccessors) {
  DependenceGraph G = chain3();
  EXPECT_EQ(G.numOperations(), 3);
  EXPECT_EQ(G.numSchedEdges(), 2);
  EXPECT_EQ(G.numRegisters(), 0);
  EXPECT_FALSE(G.validate().has_value());
}

TEST(DependenceGraph, FlowDependenceCreatesRegister) {
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  int C = G.addOperation("c", 0);
  G.addFlowDependence(A, B, 2, 0);
  G.addFlowDependence(A, C, 2, 1);
  ASSERT_EQ(G.numRegisters(), 1); // Same definer -> same register.
  EXPECT_EQ(G.registers()[0].Def, A);
  ASSERT_EQ(G.registers()[0].Uses.size(), 2u);
  EXPECT_EQ(G.registers()[0].Uses[1].Distance, 1);
  EXPECT_EQ(G.numSchedEdges(), 2);
}

TEST(DependenceGraph, EnsureRegisterIdempotent) {
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  EXPECT_EQ(G.ensureRegister(A), G.ensureRegister(A));
  EXPECT_EQ(G.numRegisters(), 1);
}

TEST(DependenceGraph, ToStringMentionsParts) {
  DependenceGraph G;
  int A = G.addOperation("alpha", 0);
  int B = G.addOperation("beta", 0);
  G.addFlowDependence(A, B, 3, 1);
  std::string S = G.toString();
  EXPECT_NE(S.find("alpha"), std::string::npos);
  EXPECT_NE(S.find("omega=1"), std::string::npos);
  EXPECT_NE(S.find("vreg"), std::string::npos);
}

TEST(Scc, ChainIsThreeComponents) {
  DependenceGraph G = chain3();
  auto Sccs = stronglyConnectedComponents(G);
  EXPECT_EQ(Sccs.size(), 3u);
}

TEST(Scc, CycleIsOneComponent) {
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  int C = G.addOperation("c", 0);
  G.addSchedEdge(A, B, 1, 0);
  G.addSchedEdge(B, A, 1, 1);
  G.addSchedEdge(B, C, 1, 0);
  auto Sccs = stronglyConnectedComponents(G);
  ASSERT_EQ(Sccs.size(), 2u);
  size_t Sizes[2] = {Sccs[0].size(), Sccs[1].size()};
  EXPECT_EQ(std::max(Sizes[0], Sizes[1]), 2u);
}

TEST(Cycles, ZeroDistanceCycleDetected) {
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  G.addSchedEdge(A, B, 1, 0);
  EXPECT_FALSE(hasZeroDistanceCycle(G));
  G.addSchedEdge(B, A, 1, 0);
  EXPECT_TRUE(hasZeroDistanceCycle(G));
}

TEST(Cycles, SelfLoopZeroDistance) {
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  G.addSchedEdge(A, A, 1, 0);
  EXPECT_TRUE(hasZeroDistanceCycle(G));
}

TEST(Cycles, PositiveCycleDependsOnIi) {
  // Cycle latency 5, distance 1: positive iff II < 5.
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  G.addSchedEdge(A, B, 3, 0);
  G.addSchedEdge(B, A, 2, 1);
  EXPECT_TRUE(hasPositiveCycle(G, 4));
  EXPECT_FALSE(hasPositiveCycle(G, 5));
}

TEST(Asap, ChainTimes) {
  DependenceGraph G = chain3();
  auto Asap = asapTimes(G, 1);
  ASSERT_TRUE(Asap.has_value());
  EXPECT_EQ((*Asap)[0], 0);
  EXPECT_EQ((*Asap)[1], 1);
  EXPECT_EQ((*Asap)[2], 2);
}

TEST(Asap, RecurrenceShiftsWithIi) {
  // a -> b (latency 3), b -> a distance 1 (latency 2): cycle needs II>=5.
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  G.addSchedEdge(A, B, 3, 0);
  G.addSchedEdge(B, A, 2, 1);
  EXPECT_FALSE(asapTimes(G, 4).has_value());
  auto Asap = asapTimes(G, 5);
  ASSERT_TRUE(Asap.has_value());
  EXPECT_EQ((*Asap)[0], 0);
  EXPECT_EQ((*Asap)[1], 3);
}

TEST(Alap, WindowsRespectDeadline) {
  DependenceGraph G = chain3();
  auto Alap = alapTimes(G, 2, 10);
  ASSERT_TRUE(Alap.has_value());
  EXPECT_EQ((*Alap)[2], 10);
  EXPECT_EQ((*Alap)[1], 9);
  EXPECT_EQ((*Alap)[0], 8);
}

TEST(Alap, ConsistentWithAsap) {
  DependenceGraph G = chain3();
  auto Asap = asapTimes(G, 2);
  auto Alap = alapTimes(G, 2, 2); // Tightest possible deadline.
  ASSERT_TRUE(Asap && Alap);
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ((*Asap)[I], (*Alap)[I]);
}

TEST(MinScheduleLength, Chain) {
  DependenceGraph G = chain3();
  auto Len = minScheduleLength(G, 1);
  ASSERT_TRUE(Len.has_value());
  EXPECT_EQ(*Len, 3);
}

TEST(Validate, RejectsBadRegisterUse) {
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  G.ensureRegister(A);
  // Manually corrupting is not exposed; validate a healthy graph instead
  // and check the negative-distance rejection path via a direct edge.
  EXPECT_FALSE(G.validate().has_value());
}
