//===- tests/MachineTest.cpp - machine model tests -------------------------===//

#include "machine/MachineModel.h"

#include <gtest/gtest.h>

using namespace modsched;

TEST(MachineModel, Example3Shape) {
  MachineModel M = MachineModel::example3();
  EXPECT_EQ(M.numResources(), 1);
  EXPECT_EQ(M.resource(0).Count, 3);
  auto Mul = M.findOpClass(opclasses::Mul);
  ASSERT_TRUE(Mul.has_value());
  EXPECT_EQ(M.opClass(*Mul).Latency, 4);
  auto Load = M.findOpClass(opclasses::Load);
  ASSERT_TRUE(Load.has_value());
  EXPECT_EQ(M.opClass(*Load).Latency, 1);
}

TEST(MachineModel, AllBuiltinsDefineCanonicalClasses) {
  const char *Names[] = {opclasses::Load, opclasses::Store, opclasses::Add,
                         opclasses::Sub,  opclasses::Mul,   opclasses::Div,
                         opclasses::Copy, opclasses::Branch};
  for (MachineModel M : {MachineModel::example3(), MachineModel::cydraLike(),
                         MachineModel::vliw2()}) {
    for (const char *Name : Names)
      EXPECT_TRUE(M.findOpClass(Name).has_value())
          << M.name() << " lacks " << Name;
  }
}

TEST(MachineModel, CydraLikeHasComplexUsages) {
  MachineModel M = MachineModel::cydraLike();
  EXPECT_GE(M.numResources(), 5);
  auto Div = M.findOpClass(opclasses::Div);
  ASSERT_TRUE(Div.has_value());
  // Blocking divide: multiple usage cycles of the same resource.
  EXPECT_GE(M.opClass(*Div).Usages.size(), 4u);
  auto Load = M.findOpClass(opclasses::Load);
  ASSERT_TRUE(Load.has_value());
  // Load claims a result bus at a late cycle.
  bool LateUsage = false;
  for (const ResourceUsage &U : M.opClass(*Load).Usages)
    LateUsage |= U.Cycle > 1;
  EXPECT_TRUE(LateUsage);
}

TEST(MachineModel, FindOpClassMissing) {
  MachineModel M = MachineModel::example3();
  EXPECT_FALSE(M.findOpClass("teleport").has_value());
}

TEST(MachineModel, ToStringListsEverything) {
  MachineModel M = MachineModel::vliw2();
  std::string S = M.toString();
  EXPECT_NE(S.find("vliw2"), std::string::npos);
  EXPECT_NE(S.find("mem"), std::string::npos);
  EXPECT_NE(S.find("load"), std::string::npos);
}
