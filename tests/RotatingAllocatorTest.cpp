//===- tests/RotatingAllocatorTest.cpp - rotating allocation tests ---------===//

#include "codegen/RotatingAllocator.h"

#include "heuristic/IterativeModuloScheduler.h"
#include "ilpsched/OptimalScheduler.h"
#include "sched/RegisterPressure.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

ModuloSchedule figure1bSchedule() { return ModuloSchedule(2, {0, 1, 2, 5, 6}); }

} // namespace

TEST(RotatingAllocator, PaperExample1AllocatesNearMaxLive) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  auto A = allocateRotating(G, figure1bSchedule());
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->MaxLive, 7);
  EXPECT_GE(A->FileSize, 7); // MaxLive is a hard lower bound.
  EXPECT_LE(A->FileSize, 8); // First-fit is near-optimal here.
  EXPECT_TRUE(verifyRotatingAllocation(G, figure1bSchedule(), *A));
}

TEST(RotatingAllocator, NoRegistersMeansEmptyFile) {
  DependenceGraph G;
  G.addOperation("a", 0);
  ModuloSchedule S(1, {0});
  auto A = allocateRotating(G, S);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->FileSize, 0);
  EXPECT_TRUE(verifyRotatingAllocation(G, S, *A));
}

TEST(RotatingAllocator, SingleLongLifetime) {
  // One value live for 6 cycles at II=2 -> 3 simultaneous instances.
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  G.addFlowDependence(A, B, 1, 2);
  ModuloSchedule S(2, {0, 1});
  auto Alloc = allocateRotating(G, S);
  ASSERT_TRUE(Alloc.has_value());
  EXPECT_EQ(Alloc->MaxLive, 3);
  EXPECT_GE(Alloc->FileSize, 3);
  EXPECT_TRUE(verifyRotatingAllocation(G, S, *Alloc));
}

TEST(RotatingAllocator, VerifierRejectsBadBases) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  auto A = allocateRotating(G, figure1bSchedule());
  ASSERT_TRUE(A.has_value());
  RotatingAllocation Bad = *A;
  // Map every register to the same base: instances of different
  // registers produced in the same iteration collide.
  for (int &B : Bad.BaseOffset)
    B = 0;
  EXPECT_FALSE(verifyRotatingAllocation(G, figure1bSchedule(), Bad));
}

TEST(RotatingAllocator, VerifierRejectsTooSmallFile) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  auto A = allocateRotating(G, figure1bSchedule());
  ASSERT_TRUE(A.has_value());
  RotatingAllocation Shrunk = *A;
  Shrunk.FileSize = A->MaxLive - 1; // Below the lower bound.
  EXPECT_FALSE(verifyRotatingAllocation(G, figure1bSchedule(), Shrunk));
}

TEST(RotatingAllocator, MinRegScheduleNeedsFewerRegisters) {
  // The point of the MinReg scheduler: its schedules need a smaller (or
  // equal) rotating file than heuristic ones for the same loop/II.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = livermore1(M);
  IterativeModuloScheduler Ims(M);
  ImsResult H = Ims.schedule(G);
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Objective::MinReg;
  OptimalModuloScheduler Sched(M, Opts);
  ScheduleResult O = Sched.schedule(G);
  ASSERT_TRUE(H.Found && O.Found);
  if (H.II != O.II)
    GTEST_SKIP() << "different II";
  auto HA = allocateRotating(G, H.Schedule);
  auto OA = allocateRotating(G, O.Schedule);
  ASSERT_TRUE(HA && OA);
  EXPECT_LE(OA->MaxLive, HA->MaxLive);
  EXPECT_LE(OA->FileSize, HA->FileSize + 1); // First-fit noise margin.
}

class RotatingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RotatingPropertyTest, AllocationsAlwaysVerifyAndStayNearMaxLive) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 71 + 11);
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 12;
  DependenceGraph G = generateLoop(M, R, Opts);
  IterativeModuloScheduler Ims(M);
  ImsResult H = Ims.schedule(G);
  if (!H.Found)
    GTEST_SKIP();
  auto A = allocateRotating(G, H.Schedule);
  ASSERT_TRUE(A.has_value()) << G.toString();
  EXPECT_TRUE(verifyRotatingAllocation(G, H.Schedule, *A)) << G.toString();
  EXPECT_GE(A->FileSize, A->MaxLive);
  // Rau et al. observe first-fit lands within a register or two of the
  // MaxLive bound; allow slack but catch pathological blowups.
  EXPECT_LE(A->FileSize, A->MaxLive + 3) << G.toString();
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, RotatingPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));
