//===- tests/SparseSimplexTest.cpp - sparse engine differential -----------===//
//
// Differential tests of the sparse revised simplex engine
// (lp/SparseRevisedSimplex.h) against the dense tableau engine: on
// random bounded LPs, on every Formulation-built scheduling model, and
// end-to-end through the optimal scheduler, both engines must agree on
// feasibility verdicts and on objectives to 1e-6. Also unit-tests the
// sparse linear-algebra substrate (SparseMatrix compilation caching,
// LU factorization, eta updates, hyper-sparse FTRAN/BTRAN) and the
// anti-cycling Bland fallback of both engines on Beale's cycling LP.
//
//===----------------------------------------------------------------------===//

#include "ilpsched/Formulation.h"
#include "ilpsched/OptimalScheduler.h"
#include "lp/LuFactor.h"
#include "lp/Model.h"
#include "lp/Simplex.h"
#include "lp/SolveContext.h"
#include "lp/SparseMatrix.h"
#include "machine/MachineModel.h"
#include "sched/Mii.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

using namespace modsched;
using namespace modsched::lp;

namespace {

SimplexSolver makeSolver(SimplexEngine Engine) {
  SimplexOptions Opts;
  Opts.Engine = Engine;
  return SimplexSolver(Opts);
}

/// Builds a random bounded LP; roughly half the instances are
/// 0-1-structured like the paper's formulations (the same generator
/// shape as tests/SimplexWarmStartTest.cpp).
Model randomModel(Rng &R) {
  Model M;
  int NumVars = static_cast<int>(R.nextInRange(3, 12));
  bool ZeroOne = R.nextBool(0.5);
  bool Anchored = R.nextBool(0.7);
  std::vector<double> Anchor;
  for (int V = 0; V < NumVars; ++V) {
    double Lo, Up;
    if (ZeroOne) {
      Lo = 0.0;
      Up = 1.0;
    } else {
      Lo = static_cast<double>(R.nextInRange(-5, 3));
      Up = Lo + static_cast<double>(R.nextInRange(0, 9));
    }
    double Obj = static_cast<double>(R.nextInRange(-5, 5));
    M.addVariable("x" + std::to_string(V), Lo, Up, Obj);
    Anchor.push_back(static_cast<double>(
        R.nextInRange(static_cast<int64_t>(Lo), static_cast<int64_t>(Up))));
  }
  int NumCons = static_cast<int>(R.nextInRange(2, 10));
  for (int C = 0; C < NumCons; ++C) {
    std::vector<Term> Terms;
    int NumTerms = static_cast<int>(R.nextInRange(1, std::min(NumVars, 6)));
    for (int T = 0; T < NumTerms; ++T) {
      int Var = static_cast<int>(R.nextBelow(NumVars));
      double Coeff = ZeroOne ? (R.nextBool(0.5) ? 1.0 : -1.0)
                             : static_cast<double>(R.nextInRange(-3, 3));
      if (Coeff != 0.0)
        Terms.push_back({Var, Coeff});
    }
    if (Terms.empty())
      continue;
    ConstraintSense Sense =
        C % 3 == 0 ? ConstraintSense::LE
                   : (C % 3 == 1 ? ConstraintSense::GE : ConstraintSense::EQ);
    double Rhs;
    if (Anchored) {
      double Activity = 0.0;
      for (const Term &T : Terms)
        Activity += T.second * Anchor[T.first];
      double Slack = static_cast<double>(R.nextInRange(0, 4));
      Rhs = Sense == ConstraintSense::LE   ? Activity + Slack
            : Sense == ConstraintSense::GE ? Activity - Slack
                                           : Activity;
    } else {
      Rhs = static_cast<double>(Sense == ConstraintSense::EQ
                                    ? R.nextInRange(-2, 2)
                                    : R.nextInRange(-6, 8));
    }
    M.addConstraint(std::move(Terms), Sense, Rhs);
  }
  return M;
}

/// Solves \p M with both engines and asserts they agree on the verdict
/// (and on the objective when optimal). Returns the sparse result.
LpResult expectEnginesAgree(const Model &M, const std::string &What) {
  LpResult Dense = makeSolver(SimplexEngine::Dense).solve(M);
  LpResult Sparse = makeSolver(SimplexEngine::SparseRevised).solve(M);
  EXPECT_EQ(Dense.Status, Sparse.Status)
      << What << ": engine verdicts disagree\n"
      << M.toString();
  if (Dense.Status == LpStatus::Optimal &&
      Sparse.Status == LpStatus::Optimal) {
    EXPECT_NEAR(Dense.Objective, Sparse.Objective, 1e-6)
        << What << ": engine objectives disagree\n"
        << M.toString();
    std::string Why;
    EXPECT_TRUE(M.isFeasible(Sparse.Values, 1e-6, &Why))
        << What << ": sparse solution infeasible: " << Why;
  }
  return Sparse;
}

} // namespace

//===----------------------------------------------------------------------===//
// SparseMatrix: compilation, hygiene, and revision-keyed caching
//===----------------------------------------------------------------------===//

TEST(SparseMatrix, CompileMirrorsCanonicalModel) {
  // Model hygiene: duplicated terms merge and zero coefficients drop on
  // addConstraint, so the compiled CSC/CSR must mirror the canonical
  // constraint data exactly — dense and sparse engines read the same
  // coefficients or every differential test below is meaningless.
  Model M;
  int X = M.addVariable("x", 0, 10);
  int Y = M.addVariable("y", 0, 10);
  int Z = M.addVariable("z", 0, 10);
  M.addConstraint({{X, 1.0}, {X, 2.0}, {Y, 0.5}, {Y, -0.5}, {Z, 4.0}},
                  ConstraintSense::LE, 5.0); // => 3x + 4z <= 5
  M.addConstraint({{Y, -1.0}, {Z, 0.0}}, ConstraintSense::GE, -2.0);
  // => -y >= -2

  SparseMatrix A;
  A.compile(M);
  ASSERT_EQ(A.NumRows, 2);
  ASSERT_EQ(A.NumCols, 3);
  ASSERT_EQ(A.numNonzeros(), 3);

  // CSC: column x holds {row 0: 3}, y holds {row 1: -1}, z {row 0: 4}.
  ASSERT_EQ(A.ColStart[X + 1] - A.ColStart[X], 1);
  EXPECT_EQ(A.RowIndex[A.ColStart[X]], 0);
  EXPECT_DOUBLE_EQ(A.Value[A.ColStart[X]], 3.0);
  ASSERT_EQ(A.ColStart[Y + 1] - A.ColStart[Y], 1);
  EXPECT_EQ(A.RowIndex[A.ColStart[Y]], 1);
  EXPECT_DOUBLE_EQ(A.Value[A.ColStart[Y]], -1.0);
  ASSERT_EQ(A.ColStart[Z + 1] - A.ColStart[Z], 1);
  EXPECT_EQ(A.RowIndex[A.ColStart[Z]], 0);
  EXPECT_DOUBLE_EQ(A.Value[A.ColStart[Z]], 4.0);

  // CSR row 0 must list exactly the canonical terms of constraint 0.
  const Constraint &C0 = M.constraint(0);
  ASSERT_EQ(A.RowStart[1] - A.RowStart[0],
            static_cast<int>(C0.Terms.size()));
  for (int P = A.RowStart[0]; P < A.RowStart[1]; ++P) {
    const Term &T = C0.Terms[P - A.RowStart[0]];
    EXPECT_EQ(A.ColIndex[P], T.first);
    EXPECT_DOUBLE_EQ(A.RValue[P], T.second);
  }
}

TEST(SparseMatrix, CacheKeyedOnModelRevision) {
  Model M;
  int X = M.addVariable("x", 0, 1);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 1.0);
  SparseMatrix A;
  EXPECT_FALSE(A.matches(M));
  A.compile(M);
  EXPECT_TRUE(A.matches(M));
  // Out-of-band bound arrays (the branch-and-bound pattern) do not
  // mutate the model, so the compiled matrix stays valid; a structural
  // mutation bumps the revision and invalidates it.
  M.addConstraint({{X, 1.0}}, ConstraintSense::GE, 0.0);
  EXPECT_FALSE(A.matches(M));
  A.compile(M);
  EXPECT_TRUE(A.matches(M));
}

//===----------------------------------------------------------------------===//
// LuFactor: factorization, solves, eta updates
//===----------------------------------------------------------------------===//

namespace {

/// CSC triplet helper for tiny LU tests.
struct TinyBasis {
  int Dim;
  std::vector<int> ColStart, Rows;
  std::vector<double> Vals;
};

TinyBasis tinyBasis(int Dim,
                    const std::vector<std::vector<std::pair<int, double>>>
                        &Cols) {
  TinyBasis B;
  B.Dim = Dim;
  B.ColStart.push_back(0);
  for (const auto &Col : Cols) {
    for (const auto &[Row, V] : Col) {
      B.Rows.push_back(Row);
      B.Vals.push_back(V);
    }
    B.ColStart.push_back(static_cast<int>(B.Rows.size()));
  }
  return B;
}

} // namespace

TEST(LuFactor, FtranBtranRoundTrip) {
  // B = [[2,1,0],[0,1,0],[1,0,3]] (columns in basis-position order).
  TinyBasis B = tinyBasis(
      3, {{{0, 2.0}, {2, 1.0}}, {{0, 1.0}, {1, 1.0}}, {{2, 3.0}}});
  LuFactor Lu;
  ASSERT_TRUE(Lu.factor(B.Dim, B.ColStart, B.Rows, B.Vals, 1e-10));
  EXPECT_TRUE(Lu.valid());

  // FTRAN: solve B x = e0 + e2; exact solution by hand:
  //   2x0 + x1 = 1; x1 = 0; x0 + 3x2 = 1 => x = (1/2, 0, 1/6).
  ScatteredVector X;
  X.resize(3);
  X.set(0, 1.0);
  X.set(2, 1.0);
  Lu.ftran(X);
  EXPECT_NEAR(X.Val[0], 0.5, 1e-12);
  EXPECT_NEAR(X.Val[1], 0.0, 1e-12);
  EXPECT_NEAR(X.Val[2], 1.0 / 6.0, 1e-12);

  // BTRAN: solve B^T y = e1 (basis position 1):
  //   col 1 of B is (1,1,0) => y0*1 + y1*1 = 1 with y from
  //   B^T y = e1: 2y0 + 0 + y2 = 0; y0 + y1 = 1; 3y2 = 0
  //   => y2 = 0, y0 = 0, y1 = 1.
  ScatteredVector Y;
  Y.resize(3);
  Y.set(1, 1.0);
  Lu.btran(Y);
  EXPECT_NEAR(Y.Val[0], 0.0, 1e-12);
  EXPECT_NEAR(Y.Val[1], 1.0, 1e-12);
  EXPECT_NEAR(Y.Val[2], 0.0, 1e-12);
}

TEST(LuFactor, DetectsSingularBasis) {
  // Two identical columns: structurally nonsingular, numerically rank 1.
  TinyBasis B = tinyBasis(2, {{{0, 1.0}, {1, 2.0}}, {{0, 1.0}, {1, 2.0}}});
  LuFactor Lu;
  EXPECT_FALSE(Lu.factor(B.Dim, B.ColStart, B.Rows, B.Vals, 1e-10));
  EXPECT_FALSE(Lu.valid());
}

TEST(LuFactor, EtaUpdateMatchesRefactorization) {
  // Start from B0 = I (3x3), replace position 1 with column (1, 2, 1):
  // B1 = [[1,1,0],[0,2,0],[0,1,1]]. An FTRAN through the eta file must
  // equal the FTRAN of a fresh factorization of B1.
  TinyBasis I3 = tinyBasis(3, {{{0, 1.0}}, {{1, 1.0}}, {{2, 1.0}}});
  LuFactor Lu;
  ASSERT_TRUE(Lu.factor(I3.Dim, I3.ColStart, I3.Rows, I3.Vals, 1e-10));

  // W = B0^-1 * a = a for B0 = I.
  ScatteredVector W;
  W.resize(3);
  W.set(0, 1.0);
  W.set(1, 2.0);
  W.set(2, 1.0);
  ASSERT_TRUE(Lu.update(1, W, 1e-10));
  EXPECT_EQ(Lu.etaCount(), 1);

  ScatteredVector X;
  X.resize(3);
  X.set(0, 3.0);
  X.set(1, 4.0);
  X.set(2, 5.0);
  Lu.ftran(X);

  TinyBasis B1 = tinyBasis(
      3, {{{0, 1.0}}, {{0, 1.0}, {1, 2.0}, {2, 1.0}}, {{2, 1.0}}});
  LuFactor Fresh;
  ASSERT_TRUE(Fresh.factor(B1.Dim, B1.ColStart, B1.Rows, B1.Vals, 1e-10));
  ScatteredVector X2;
  X2.resize(3);
  X2.set(0, 3.0);
  X2.set(1, 4.0);
  X2.set(2, 5.0);
  Fresh.ftran(X2);

  for (int K = 0; K < 3; ++K)
    EXPECT_NEAR(X.Val[K], X2.Val[K], 1e-12) << "position " << K;

  // And the BTRAN images must agree too.
  ScatteredVector Y, Y2;
  Y.resize(3);
  Y2.resize(3);
  Y.set(1, 1.0);
  Y2.set(1, 1.0);
  Lu.btran(Y);
  Fresh.btran(Y2);
  for (int K = 0; K < 3; ++K)
    EXPECT_NEAR(Y.Val[K], Y2.Val[K], 1e-12) << "row " << K;
}

TEST(LuFactor, RejectsZeroPivotEta) {
  TinyBasis I2 = tinyBasis(2, {{{0, 1.0}}, {{1, 1.0}}});
  LuFactor Lu;
  ASSERT_TRUE(Lu.factor(I2.Dim, I2.ColStart, I2.Rows, I2.Vals, 1e-10));
  ScatteredVector W;
  W.resize(2);
  W.set(0, 1.0); // W[1] == 0: pivot for position 1 unacceptable.
  EXPECT_FALSE(Lu.update(1, W, 1e-10));
  EXPECT_EQ(Lu.etaCount(), 0); // Factorization left unchanged.
}

//===----------------------------------------------------------------------===//
// Engine differential: random LPs
//===----------------------------------------------------------------------===//

TEST(SparseSimplex, DifferentialAgainstDenseOnRandomLps) {
  // ~200 random bounded LPs across two independent streams: both
  // engines must agree on every feasibility verdict and on every
  // optimal objective to 1e-6.
  int Optimal = 0, Infeasible = 0;
  for (uint64_t Seed : {uint64_t(20260806), uint64_t(4242)}) {
    Rng R(Seed);
    for (int I = 0; I < 100; ++I) {
      Model M = randomModel(R);
      LpResult S = expectEnginesAgree(
          M, "seed " + std::to_string(Seed) + " model " +
                 std::to_string(I));
      if (S.Status == LpStatus::Optimal)
        ++Optimal;
      else if (S.Status == LpStatus::Infeasible)
        ++Infeasible;
    }
  }
  // The generator must exercise both verdicts for the differential to
  // mean anything.
  EXPECT_GE(Optimal, 100);
  EXPECT_GE(Infeasible, 10);
}

TEST(SparseSimplex, WarmStartChainsMatchDenseCold) {
  // The branch-and-bound resolve pattern under the sparse engine:
  // parent solve, then chains of bound tightenings warm-started from
  // the parent basis, each checked against a cold dense solve.
  Rng R(777);
  int Children = 0, WarmStarted = 0;
  for (int I = 0; I < 40; ++I) {
    Model M = randomModel(R);
    SolveContext Ctx;
    SimplexSolver Sparse = makeSolver(SimplexEngine::SparseRevised);
    std::vector<double> Lower, Upper;
    M.getBounds(Lower, Upper);
    LpResult Parent = Sparse.solve(M, Lower, Upper, &Ctx);
    if (Parent.Status != LpStatus::Optimal || Parent.FinalBasis.empty())
      continue;
    Basis B = Parent.FinalBasis;
    std::vector<double> X = Parent.Values;
    for (int Level = 0; Level < 3; ++Level) {
      // Tighten one variable branch-style around its LP value.
      int Var = -1;
      for (int V = 0; V < M.numVariables(); ++V) {
        double F = std::floor(X[V]);
        if (F < Upper[V] && F >= Lower[V]) {
          Var = V;
          Upper[V] = F;
          break;
        }
      }
      if (Var < 0)
        break;
      ++Children;
      LpResult WarmChild = Sparse.solve(M, Lower, Upper, &Ctx, &B);
      LpResult ColdChild = makeSolver(SimplexEngine::Dense)
                               .solve(M, Lower, Upper);
      ASSERT_EQ(WarmChild.Status, ColdChild.Status)
          << "sparse-warm vs dense-cold disagree at model " << I
          << " level " << Level << "\n"
          << M.toString();
      if (WarmChild.WarmStarted)
        ++WarmStarted;
      if (WarmChild.Status != LpStatus::Optimal)
        break;
      EXPECT_NEAR(WarmChild.Objective, ColdChild.Objective, 1e-6)
          << M.toString();
      if (WarmChild.FinalBasis.empty())
        break;
      B = WarmChild.FinalBasis;
      X = WarmChild.Values;
    }
  }
  EXPECT_GE(Children, 30) << "generator produced too few children";
  EXPECT_GE(WarmStarted, Children / 2)
      << "sparse warm starts fell back to cold too often";
}

TEST(SparseSimplex, BasisCrossesEngineSeam) {
  // A basis stamped by one engine warm-starts the other: the stamp
  // cannot match the other engine's state, so the refactorization path
  // realizes it (or cleanly falls back), and both must agree with a
  // cold solve on the tightened child.
  Model M;
  int X = M.addVariable("x", 0, 10, -1.0);
  int Y = M.addVariable("y", 0, 10, -2.0);
  M.addConstraint({{X, 1.0}, {Y, 2.0}}, ConstraintSense::LE, 13.0);
  M.addConstraint({{X, 1.0}, {Y, -1.0}}, ConstraintSense::LE, 4.0);
  std::vector<double> Lower, Upper;
  M.getBounds(Lower, Upper);

  for (bool DenseFirst : {true, false}) {
    SimplexEngine First =
        DenseFirst ? SimplexEngine::Dense : SimplexEngine::SparseRevised;
    SimplexEngine Second =
        DenseFirst ? SimplexEngine::SparseRevised : SimplexEngine::Dense;
    SolveContext Ctx;
    LpResult Parent =
        makeSolver(First).solve(M, Lower, Upper, &Ctx);
    ASSERT_EQ(Parent.Status, LpStatus::Optimal);
    ASSERT_FALSE(Parent.FinalBasis.empty());

    std::vector<double> Lo = Lower, Up = Upper;
    Up[Y] = 3.0;
    LpResult Child = makeSolver(Second).solve(M, Lo, Up, &Ctx,
                                              &Parent.FinalBasis);
    LpResult Cold = makeSolver(Second).solve(M, Lo, Up);
    ASSERT_EQ(Child.Status, LpStatus::Optimal)
        << (DenseFirst ? "dense->sparse" : "sparse->dense");
    EXPECT_NEAR(Child.Objective, Cold.Objective, 1e-9);
  }
}

TEST(SparseSimplex, BealeCyclingLpTerminatesUnderBland) {
  // Beale's classic cycling example: Dantzig pricing cycles forever at
  // the degenerate origin vertex without an anti-cycling guard. Force
  // the Bland fallback almost immediately (DegenerateLimit = 1) on BOTH
  // engines and require the true optimum -1/20.
  for (SimplexEngine Engine :
       {SimplexEngine::Dense, SimplexEngine::SparseRevised}) {
    Model M;
    int X = M.addVariable("x", 0, infinity(), -0.75);
    int Y = M.addVariable("y", 0, infinity(), 150.0);
    int Z = M.addVariable("z", 0, infinity(), -0.02);
    int W = M.addVariable("w", 0, infinity(), 6.0);
    M.addConstraint({{X, 0.25}, {Y, -60.0}, {Z, -0.04}, {W, 9.0}},
                    ConstraintSense::LE, 0.0);
    M.addConstraint({{X, 0.5}, {Y, -90.0}, {Z, -0.02}, {W, 3.0}},
                    ConstraintSense::LE, 0.0);
    M.addConstraint({{Z, 1.0}}, ConstraintSense::LE, 1.0);

    SimplexOptions Opts;
    Opts.Engine = Engine;
    Opts.DegenerateLimit = 1; // Switch to Bland's rule at once.
    Opts.MaxIterations = 10000;
    LpResult R = SimplexSolver(Opts).solve(M);
    ASSERT_EQ(R.Status, LpStatus::Optimal) << toString(Engine);
    EXPECT_NEAR(R.Objective, -0.05, 1e-9) << toString(Engine);
  }
}

TEST(SparseSimplex, ContextDeadlineObserved) {
  // The sparse engine must poll the per-attempt context like the dense
  // one: an already-expired deadline reports IterationLimit.
  SimplexOptions Opts;
  Opts.Engine = SimplexEngine::SparseRevised;
  Opts.TimeLimitSeconds = -1.0;
  Model M;
  int X = M.addVariable("x", 0, infinity(), -1.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 4.0);
  EXPECT_EQ(SimplexSolver(Opts).solve(M).Status,
            LpStatus::IterationLimit);
}

TEST(SparseSimplex, ReportsFactorizationTelemetry) {
  // A sparse solve must report at least one LU factorization; a dense
  // solve reports zero eta nonzeros by definition.
  Model M;
  int X = M.addVariable("x", 0, infinity(), -3.0);
  int Y = M.addVariable("y", 0, infinity(), -5.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 4.0);
  M.addConstraint({{Y, 2.0}}, ConstraintSense::LE, 12.0);
  M.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LE, 18.0);
  LpResult Sparse = makeSolver(SimplexEngine::SparseRevised).solve(M);
  ASSERT_EQ(Sparse.Status, LpStatus::Optimal);
  EXPECT_GE(Sparse.Refactorizations, 1);
  LpResult Dense = makeSolver(SimplexEngine::Dense).solve(M);
  EXPECT_EQ(Dense.EtaNonzeros, 0);
}

//===----------------------------------------------------------------------===//
// Engine differential: Formulation-built scheduling models
//===----------------------------------------------------------------------===//

TEST(SparseSimplex, DifferentialOnFormulationModels) {
  // Every kernel's structured and traditional LP relaxation at MII:
  // these are the exact matrices the branch-and-bound nodes solve, and
  // the two engines must price them identically.
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G : allKernels(M)) {
    int Mii = mii(G, M);
    for (DependenceStyle Dep :
         {DependenceStyle::Structured, DependenceStyle::Traditional}) {
      FormulationOptions FOpts;
      FOpts.Obj = Objective::MinReg;
      FOpts.DepStyle = Dep;
      Formulation F(G, M, Mii, FOpts);
      if (!F.valid())
        continue;
      expectEnginesAgree(F.model(),
                         G.name() + (Dep == DependenceStyle::Structured
                                         ? " structured"
                                         : " traditional"));
    }
  }
}

TEST(SparseSimplex, EndToEndSchedulerMatchesDense) {
  // Full scheduler equality: same II and same secondary objective under
  // both engines, across the kernel library. (The search trees may
  // differ node-for-node — LP degeneracy admits multiple optimal bases
  // — but the certified optima may not.)
  MachineModel M = MachineModel::example3();
  int Compared = 0;
  for (const DependenceGraph &G : allKernels(M)) {
    ScheduleResult Results[2];
    int Idx = 0;
    for (SimplexEngine Engine :
         {SimplexEngine::Dense, SimplexEngine::SparseRevised}) {
      SchedulerOptions Opts;
      Opts.Formulation.Obj = Objective::MinReg;
      Opts.TimeLimitSeconds = 30.0;
      Opts.LpEngine = Engine;
      Results[Idx++] = OptimalModuloScheduler(M, Opts).schedule(G);
    }
    const ScheduleResult &Dense = Results[0];
    const ScheduleResult &Sparse = Results[1];
    if (Dense.TimedOut || Sparse.TimedOut || Dense.NodeLimitHit ||
        Sparse.NodeLimitHit) {
      // A censored attempt is not a verdict (the dense engine in
      // particular can blow the per-loop budget); skip, don't fail.
      continue;
    }
    ASSERT_EQ(Dense.Found, Sparse.Found) << G.name();
    if (!Dense.Found)
      continue;
    ++Compared;
    EXPECT_EQ(Dense.II, Sparse.II) << G.name();
    EXPECT_NEAR(Dense.SecondaryObjective, Sparse.SecondaryObjective, 1e-6)
        << G.name();
    // Factorization telemetry must flow end to end for the sparse run.
    EXPECT_GE(Sparse.LpRefactorizations, 1) << G.name();
    EXPECT_EQ(Dense.LpEtaNonzeros, 0) << G.name();
  }
  // The budget is generous enough that most of the library certifies
  // under both engines; the comparison must not silently go vacuous.
  EXPECT_GE(Compared, 10);
}
