//===- tests/MachineFormatTest.cpp - machine text format tests -------------===//

#include "textio/MachineFormat.h"

#include <gtest/gtest.h>

using namespace modsched;

TEST(MachineFormat, ParsesMinimalMachine) {
  std::string Text = R"(# tiny machine
machine tiny
resource alu x2
class add latency=1 uses=alu@0
class nopclass latency=1 uses=
)";
  std::string Error;
  auto M = parseMachine(Text, &Error);
  ASSERT_TRUE(M.has_value()) << Error;
  EXPECT_EQ(M->name(), "tiny");
  EXPECT_EQ(M->numResources(), 1);
  EXPECT_EQ(M->resource(0).Count, 2);
  ASSERT_TRUE(M->findOpClass("add").has_value());
  EXPECT_EQ(M->opClass(*M->findOpClass("add")).Latency, 1);
}

TEST(MachineFormat, ParsesMultiCycleUsages) {
  std::string Text = R"(machine m
resource fmul x1
resource bus x2
class mul latency=4 uses=fmul@0,fmul@1,bus@4
)";
  auto M = parseMachine(Text);
  ASSERT_TRUE(M.has_value());
  const OpClass &C = M->opClass(*M->findOpClass("mul"));
  ASSERT_EQ(C.Usages.size(), 3u);
  EXPECT_EQ(C.Usages[1].Cycle, 1);
  EXPECT_EQ(C.Usages[2].Resource, 1);
  EXPECT_EQ(C.Usages[2].Cycle, 4);
}

TEST(MachineFormat, RejectsUnknownResource) {
  std::string Error;
  EXPECT_FALSE(parseMachine("machine m\nclass a latency=1 uses=ghost@0\n",
                            &Error)
                   .has_value());
  EXPECT_NE(Error.find("unknown resource"), std::string::npos);
}

TEST(MachineFormat, RejectsBadCounts) {
  std::string Error;
  EXPECT_FALSE(parseMachine("resource r x0\nclass a latency=1 uses=\n",
                            &Error)
                   .has_value());
  EXPECT_FALSE(parseMachine("resource r y3\nclass a latency=1 uses=\n",
                            &Error)
                   .has_value());
}

TEST(MachineFormat, RejectsDuplicates) {
  std::string Error;
  EXPECT_FALSE(parseMachine("resource r x1\nresource r x2\n"
                            "class a latency=1 uses=\n",
                            &Error)
                   .has_value());
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
  EXPECT_FALSE(parseMachine("resource r x1\nclass a latency=1 uses=\n"
                            "class a latency=2 uses=\n",
                            &Error)
                   .has_value());
}

TEST(MachineFormat, RejectsEmptyMachine) {
  std::string Error;
  EXPECT_FALSE(parseMachine("machine m\nresource r x1\n", &Error)
                   .has_value());
  EXPECT_NE(Error.find("no operation classes"), std::string::npos);
}

TEST(MachineFormat, RoundTripsBuiltins) {
  for (MachineModel M : {MachineModel::example3(), MachineModel::vliw2(),
                         MachineModel::cydraLike()}) {
    std::string Text = printMachine(M);
    std::string Error;
    auto Parsed = parseMachine(Text, &Error);
    ASSERT_TRUE(Parsed.has_value()) << M.name() << ": " << Error;
    EXPECT_EQ(Parsed->numResources(), M.numResources());
    EXPECT_EQ(Parsed->numOpClasses(), M.numOpClasses());
    EXPECT_EQ(printMachine(*Parsed), Text) << M.name();
  }
}
