//===- tests/WorkloadsTest.cpp - kernel library + generator tests ---------===//

#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include "graph/GraphAlgorithms.h"
#include "sched/Mii.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace modsched;

TEST(KernelLibrary, AllKernelsValidate) {
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Kernels = allKernels(M);
  EXPECT_GE(Kernels.size(), 10u);
  for (const DependenceGraph &G : Kernels) {
    EXPECT_FALSE(G.validate().has_value()) << G.name();
    EXPECT_FALSE(hasZeroDistanceCycle(G)) << G.name();
    EXPECT_FALSE(G.name().empty());
  }
}

TEST(KernelLibrary, RecMiiOfRecurrentKernels) {
  MachineModel M = MachineModel::example3();
  // livermore5 cycle: sub(1) -> mul(4) -> sub, distance 1 => RecMII 5.
  EXPECT_EQ(recMii(livermore5(M)), 5);
  // livermore11/dotProduct: latency-1 accumulator self-loop => RecMII 1.
  EXPECT_EQ(recMii(livermore11(M)), 1);
  EXPECT_EQ(recMii(dotProduct(M)), 1);
  // x[i] = a*x[i-1]+...: mul(4)+add(1)+add(1) over distance 1 => 6.
  EXPECT_EQ(recMii(secondOrderRecurrence(M)), 6);
  EXPECT_EQ(recMii(livermore1(M)), 1); // No recurrence.
}

TEST(KernelLibrary, PaperExample1HasFourRegisters) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  EXPECT_EQ(G.numOperations(), 5);
  EXPECT_EQ(G.numRegisters(), 4); // vr0..vr3 in Figure 1.
}

TEST(Synthetic, DeterministicForSeed) {
  MachineModel M = MachineModel::cydraLike();
  Rng A(42), B(42);
  DependenceGraph G1 = generateLoop(M, A);
  DependenceGraph G2 = generateLoop(M, B);
  EXPECT_EQ(G1.toString(), G2.toString());
}

TEST(Synthetic, AlwaysValidAndSchedulable) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(7);
  for (int I = 0; I < 200; ++I) {
    DependenceGraph G = generateLoop(M, R);
    ASSERT_FALSE(G.validate().has_value());
    ASSERT_FALSE(hasZeroDistanceCycle(G));
    EXPECT_GE(mii(G, M), 1);
  }
}

TEST(Synthetic, RespectsSizeBounds) {
  MachineModel M = MachineModel::example3();
  Rng R(11);
  SyntheticOptions Opts;
  Opts.MinOps = 5;
  Opts.MaxOps = 9;
  for (int I = 0; I < 50; ++I) {
    DependenceGraph G = generateLoop(M, R, Opts);
    EXPECT_GE(G.numOperations(), 5);
    EXPECT_LE(G.numOperations(), 9);
  }
}

TEST(Synthetic, SuiteShapeMatchesCalibration) {
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite =
      generateSuite(M, 300, /*Seed=*/2024, /*IncludeKernels=*/false);
  ASSERT_EQ(Suite.size(), 300u);
  SummaryStats Sizes;
  for (const DependenceGraph &G : Suite)
    Sizes.add(G.numOperations());
  // Paper Table 1: median ~9, average above median, long tail.
  EXPECT_GE(Sizes.median(), 4.0);
  EXPECT_LE(Sizes.median(), 14.0);
  EXPECT_GT(Sizes.average(), Sizes.median() * 0.9);
  EXPECT_GE(Sizes.max(), 25.0);
}

TEST(Synthetic, SuiteIncludesKernelsWhenAsked) {
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite =
      generateSuite(M, 5, 1, /*IncludeKernels=*/true);
  EXPECT_GT(Suite.size(), 5u);
  EXPECT_EQ(Suite.front().name(), "paper-example1");
}

TEST(Synthetic, DistinctSeedsDiffer) {
  MachineModel M = MachineModel::example3();
  Rng A(1), B(2);
  DependenceGraph G1 = generateLoop(M, A);
  DependenceGraph G2 = generateLoop(M, B);
  EXPECT_NE(G1.toString(), G2.toString());
}
