//===- tests/SimulatorTest.cpp - pipeline simulator tests ------------------===//

#include "sched/PipelineSimulator.h"

#include "heuristic/IterativeModuloScheduler.h"
#include "sched/RegisterPressure.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

ModuloSchedule figure1bSchedule() { return ModuloSchedule(2, {0, 1, 2, 5, 6}); }

} // namespace

TEST(Simulator, CleanRunOnPaperExample) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  SimulationReport R = simulateSchedule(G, M, figure1bSchedule(), 20);
  EXPECT_FALSE(R.Violation.has_value()) << *R.Violation;
  EXPECT_EQ(R.Iterations, 20);
  // 20 iterations, II=2, last op at offset 6: total = 19*2 + 7 = 45.
  EXPECT_EQ(R.TotalCycles, 45);
  EXPECT_NEAR(R.CyclesPerIteration, 2.25, 1e-9);
}

TEST(Simulator, SteadyStateLiveEqualsStaticMaxLive) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  SimulationReport R = simulateSchedule(G, M, figure1bSchedule(), 30);
  EXPECT_EQ(R.SteadyStateLiveValues, 7); // Paper Figure 1e.
  EXPECT_GE(R.PeakLiveValues, R.SteadyStateLiveValues);
}

TEST(Simulator, ThroughputApproachesIi) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  SimulationReport Small = simulateSchedule(G, M, figure1bSchedule(), 5);
  SimulationReport Large = simulateSchedule(G, M, figure1bSchedule(), 500);
  EXPECT_GT(Small.CyclesPerIteration, Large.CyclesPerIteration);
  EXPECT_NEAR(Large.CyclesPerIteration, 2.0, 0.05);
}

TEST(Simulator, DetectsResourceViolation) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  // II=1 packs 5 ops onto 3 FUs once enough iterations overlap (7
  // consecutive iterations are in flight in the steady state).
  ModuloSchedule Bad(1, {0, 1, 2, 5, 6});
  SimulationReport R = simulateSchedule(G, M, Bad, 10);
  ASSERT_TRUE(R.Violation.has_value());
  EXPECT_NE(R.Violation->find("oversubscribed"), std::string::npos);
}

TEST(Simulator, DetectsLatencyViolation) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  // mult at t=4 finishes at 8 > sub at t=5.
  ModuloSchedule Bad(4, {0, 4, 2, 5, 9});
  SimulationReport R = simulateSchedule(G, M, Bad, 3);
  ASSERT_TRUE(R.Violation.has_value());
  EXPECT_NE(R.Violation->find("latency"), std::string::npos);
}

TEST(Simulator, SingleIteration) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  SimulationReport R = simulateSchedule(G, M, figure1bSchedule(), 1);
  EXPECT_FALSE(R.Violation.has_value());
  EXPECT_EQ(R.TotalCycles, 7);
}

class SimulatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorPropertyTest, HeuristicSchedulesRunCleanAndMatchMaxLive) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 7 + 3);
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 14;
  DependenceGraph G = generateLoop(M, R, Opts);
  IterativeModuloScheduler Ims(M);
  ImsResult H = Ims.schedule(G);
  if (!H.Found)
    GTEST_SKIP() << "heuristic budget exhausted";
  SimulationReport Report = simulateSchedule(G, M, H.Schedule, 64);
  EXPECT_FALSE(Report.Violation.has_value())
      << *Report.Violation << "\n"
      << G.toString();
  // Dynamic steady-state pressure equals the static fold (Section 2).
  RegisterPressure P = computeRegisterPressure(G, H.Schedule);
  EXPECT_EQ(Report.SteadyStateLiveValues, P.MaxLive) << G.toString();
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, SimulatorPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));
