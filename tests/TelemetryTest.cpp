//===- tests/TelemetryTest.cpp - telemetry layer tests --------------------===//
//
// Covers the three observability contracts of docs/OBSERVABILITY.md:
//  (a) counters / timers / events round-trip through the JSONL sink,
//  (b) the disabled path performs ZERO heap allocations,
//  (c) the branch-and-bound observer fires events in search order on a
//      tiny MIP with a known search tree.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "ilp/BranchAndBound.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <vector>

using namespace modsched;
using namespace modsched::ilp;
using namespace modsched::lp;

//===----------------------------------------------------------------------===//
// Global allocation counter for the zero-allocation test. Counting is
// toggled around the code under test so gtest's own allocations are not
// charged to the telemetry layer.
//===----------------------------------------------------------------------===//

namespace {
bool CountAllocations = false;
size_t AllocationCount = 0;
} // namespace

void *operator new(std::size_t Size) {
  if (CountAllocations)
    ++AllocationCount;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

/// In-memory sink capturing a serializable copy of every event.
struct CapturedEvent {
  telemetry::EventPhase Phase;
  std::string Category, Name;
  double Value;
  std::vector<std::pair<std::string, std::string>> Args;
};

class MemorySink : public telemetry::TraceSink {
public:
  explicit MemorySink(std::vector<CapturedEvent> &Out) : Out(Out) {}
  void event(const telemetry::TraceEvent &E) override {
    CapturedEvent C;
    C.Phase = E.Phase;
    C.Category = E.Category;
    C.Name = E.Name;
    C.Value = E.Value;
    for (size_t I = 0; I < E.NumArgs; ++I) {
      const telemetry::Arg &A = E.Args[I];
      std::string V;
      switch (A.K) {
      case telemetry::Arg::Kind::Int:
        V = std::to_string(A.Int);
        break;
      case telemetry::Arg::Kind::Float:
        V = std::to_string(A.Float);
        break;
      case telemetry::Arg::Kind::CStr:
        V = A.CStr;
        break;
      }
      C.Args.emplace_back(A.Key, std::move(V));
    }
    Out.push_back(std::move(C));
  }

private:
  std::vector<CapturedEvent> &Out;
};

std::string tempPath(const char *Stem) {
  const char *Dir = std::getenv("TMPDIR");
  std::string Path = Dir && *Dir ? Dir : "/tmp";
  Path += "/modsched_telemetry_test_";
  Path += Stem;
  return Path;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

/// RAII guard restoring a pristine telemetry state (tests may run after
/// the MODSCHED_* env hook or a prior test installed a sink).
struct TelemetryQuiesce {
  TelemetryQuiesce() {
    telemetry::uninstallSink();
    telemetry::setStatsEnabled(false);
    telemetry::resetAllStats();
  }
  ~TelemetryQuiesce() {
    telemetry::uninstallSink();
    telemetry::setStatsEnabled(false);
  }
};

//===----------------------------------------------------------------------===//
// (a) Round-trip through the sinks
//===----------------------------------------------------------------------===//

TEST(Telemetry, CounterAndTimerRegistryRoundTrip) {
  TelemetryQuiesce Quiet;
  static telemetry::Counter TestCounter("test", "roundtrip.counter",
                                        "test counter");
  static telemetry::PhaseTimer TestTimer("test", "roundtrip.timer",
                                         "test timer");
  TestCounter.reset();
  TestTimer.reset();

  telemetry::Counter *FoundC =
      telemetry::findCounter("test/roundtrip.counter");
  ASSERT_NE(FoundC, nullptr);
  EXPECT_EQ(FoundC, &TestCounter);
  EXPECT_EQ(FoundC->value(), 0);

  TestCounter += 41;
  ++TestCounter;
  EXPECT_EQ(FoundC->value(), 42);

  telemetry::PhaseTimer *FoundT =
      telemetry::findPhaseTimer("test/roundtrip.timer");
  ASSERT_NE(FoundT, nullptr);
  telemetry::setStatsEnabled(true); // Arm the clock.
  { telemetry::TimerScope Scope(TestTimer); }
  telemetry::setStatsEnabled(false);
  EXPECT_EQ(FoundT->invocations(), 1u);
  EXPECT_GE(FoundT->seconds(), 0.0);

  // reportStats renders both with category/name visible.
  std::string ReportPath = tempPath("report.txt");
  std::FILE *F = std::fopen(ReportPath.c_str(), "w");
  ASSERT_NE(F, nullptr);
  telemetry::reportStats(F);
  std::fclose(F);
  std::string Report = slurp(ReportPath);
  EXPECT_NE(Report.find("test/roundtrip.counter"), std::string::npos);
  EXPECT_NE(Report.find("42"), std::string::npos);
  EXPECT_NE(Report.find("test/roundtrip.timer"), std::string::npos);
  std::remove(ReportPath.c_str());
}

TEST(Telemetry, EventsRoundTripThroughJsonlSink) {
  TelemetryQuiesce Quiet;
  std::string Path = tempPath("trace.jsonl");
  auto Sink = telemetry::JsonTraceSink::open(Path,
                                             telemetry::TraceFormat::Jsonl);
  ASSERT_NE(Sink, nullptr);
  telemetry::installSink(std::move(Sink));
  ASSERT_TRUE(telemetry::tracingEnabled());

  telemetry::instant("test", "jsonl.instant",
                     {{"ii", 7}, {"ratio", 2.5}, {"kind", "smoke"}});
  telemetry::gauge("test", "jsonl.gauge", 3.0);
  {
    telemetry::SpanScope Span("test", "jsonl.span", {{"depth", 1}});
  }
  telemetry::uninstallSink(); // Flushes and closes the file.
  EXPECT_FALSE(telemetry::tracingEnabled());

  std::string Content = slurp(Path);
  // One JSON object per line: instant, counter, begin, end.
  int Lines = 0;
  for (char C : Content)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 4);
  EXPECT_NE(Content.find("\"name\":\"jsonl.instant\""), std::string::npos);
  EXPECT_NE(Content.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(Content.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Content.find("\"ii\":7"), std::string::npos);
  EXPECT_NE(Content.find("\"ratio\":2.5"), std::string::npos);
  EXPECT_NE(Content.find("\"kind\":\"smoke\""), std::string::npos);
  EXPECT_NE(Content.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Content.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(Content.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(Content.find("\"ts\":"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Telemetry, ChromeJsonSinkProducesOneArray) {
  TelemetryQuiesce Quiet;
  std::string Path = tempPath("trace.json");
  auto Sink = telemetry::JsonTraceSink::open(
      Path, telemetry::TraceFormat::ChromeJson);
  ASSERT_NE(Sink, nullptr);
  telemetry::installSink(std::move(Sink));
  telemetry::instant("test", "chrome.instant");
  telemetry::instant("test", "chrome.instant2");
  telemetry::uninstallSink();

  std::string Content = slurp(Path);
  ASSERT_FALSE(Content.empty());
  EXPECT_EQ(Content.front(), '[');
  EXPECT_NE(Content.find(']'), std::string::npos);
  EXPECT_NE(Content.find("chrome.instant2"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Json, WriterEscapesAndNests) {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.key("s").value("a\"b\\c\n");
  W.key("arr").beginArray().value(1).value(2.5).value(true).null();
  W.endArray();
  W.endObject();
  EXPECT_TRUE(W.done());
  EXPECT_EQ(Out, "{\"s\":\"a\\\"b\\\\c\\n\","
                 "\"arr\":[1,2.5,true,null]}");
}

//===----------------------------------------------------------------------===//
// (b) Zero allocations on the disabled path
//===----------------------------------------------------------------------===//

TEST(Telemetry, DisabledPathDoesNotAllocate) {
  TelemetryQuiesce Quiet;
  ASSERT_FALSE(telemetry::enabled());
  static telemetry::Counter NoAllocCounter("test", "noalloc.counter",
                                           "zero-alloc test counter");
  static telemetry::PhaseTimer NoAllocTimer("test", "noalloc.timer",
                                            "zero-alloc test timer");

  AllocationCount = 0;
  CountAllocations = true;
  for (int I = 0; I < 1000; ++I) {
    NoAllocCounter += 3;
    ++NoAllocCounter;
    telemetry::instant("test", "noalloc.instant",
                       {{"i", I}, {"x", 1.5}, {"s", "str"}});
    telemetry::gauge("test", "noalloc.gauge", double(I));
    telemetry::spanBegin("test", "noalloc.span");
    telemetry::spanEnd("test", "noalloc.span");
    {
      telemetry::SpanScope Span("test", "noalloc.scope", {{"i", I}});
    }
    {
      telemetry::TimerScope Scope(NoAllocTimer, {{"i", I}});
    }
  }
  CountAllocations = false;
  EXPECT_EQ(AllocationCount, 0u)
      << "disabled telemetry fast path allocated";
  EXPECT_EQ(NoAllocCounter.value(), 4000);
  EXPECT_EQ(NoAllocTimer.invocations(), 0u)
      << "disabled TimerScope must not sample the clock";
}

//===----------------------------------------------------------------------===//
// (c) Branch-and-bound observer event order
//===----------------------------------------------------------------------===//

TEST(Telemetry, BbObserverFiresInSearchOrder) {
  TelemetryQuiesce Quiet;
  // min -x - y  s.t.  2x + 2y <= 3, x and y binary.
  // LP relaxation: x = y = 0.75, bound -1.5 -> fractional, must branch.
  // Integer optimum: exactly one of x/y set, objective -1.
  Model M;
  int X = M.addBinaryVariable("x", -1.0);
  int Y = M.addBinaryVariable("y", -1.0);
  M.addConstraint({{X, 2.0}, {Y, 2.0}}, ConstraintSense::LE, 3.0);

  std::vector<BbEventInfo> Events;
  MipOptions Opts;
  Opts.Observer = [&Events](const BbEventInfo &Info) {
    Events.push_back(Info);
  };
  MipResult R = MipSolver(Opts).solve(M);

  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, -1.0, 1e-6);

  ASSERT_FALSE(Events.empty());
  // The first event is always the root LP relaxation.
  EXPECT_EQ(Events.front().Kind, BbEvent::RootLpSolved);
  EXPECT_NEAR(Events.front().LpObjective, -1.5, 1e-6);
  EXPECT_EQ(Events.front().Node, 0);
  EXPECT_EQ(Events.front().Depth, 0);

  size_t FirstBranch = Events.size(), FirstIncumbent = Events.size();
  int64_t Branches = 0, Incumbents = 0, Pruned = 0, Visited = 0;
  for (size_t I = 0; I < Events.size(); ++I) {
    switch (Events[I].Kind) {
    case BbEvent::Branched:
      ++Branches;
      FirstBranch = std::min(FirstBranch, I);
      EXPECT_GE(Events[I].BranchVariable, 0);
      break;
    case BbEvent::IncumbentFound:
      ++Incumbents;
      FirstIncumbent = std::min(FirstIncumbent, I);
      break;
    case BbEvent::BoundPruned:
      ++Pruned;
      // Pruning requires an incumbent to prune against.
      EXPECT_LT(Events[I].Incumbent, 1e300);
      EXPECT_GT(I, FirstIncumbent);
      break;
    case BbEvent::NodeVisited:
      ++Visited;
      break;
    default:
      break;
    }
  }
  // Fractional root: the search must branch, then find the incumbent in
  // a child node, then dispose of the remaining subproblems.
  EXPECT_GE(Branches, 1);
  EXPECT_EQ(Incumbents, 1) << "optimum -1 is found once and never beaten";
  EXPECT_GE(Visited, 1);
  EXPECT_GT(FirstIncumbent, FirstBranch);
  EXPECT_GE(Pruned + Visited, R.Nodes) << "every visited node is observed";

  // The observer sees the same search the result reports.
  EXPECT_EQ(R.Incumbents, Incumbents);
  EXPECT_EQ(R.PrunedNodes, Pruned);
  EXPECT_GE(R.MaxDepth, 1);
}

TEST(Telemetry, BbObserverComposesWithTraceSink) {
  TelemetryQuiesce Quiet;
  std::vector<CapturedEvent> Captured;
  telemetry::installSink(std::make_unique<MemorySink>(Captured));

  Model M;
  int X = M.addBinaryVariable("x", -1.0);
  int Y = M.addBinaryVariable("y", -1.0);
  M.addConstraint({{X, 2.0}, {Y, 2.0}}, ConstraintSense::LE, 3.0);
  MipResult R = MipSolver().solve(M);
  telemetry::uninstallSink();
  ASSERT_EQ(R.Status, MipStatus::Optimal);

  // The solve span plus per-event instants and depth/open gauges (the
  // instants are named after the BbEvent kind, in category "ilp").
  bool SawSolveSpan = false, SawRootLp = false, SawIncumbent = false,
       SawGauge = false;
  for (const CapturedEvent &E : Captured) {
    if (E.Name == "bb.solve" && E.Category == "ilp" &&
        E.Phase == telemetry::EventPhase::Begin)
      SawSolveSpan = true;
    if (E.Phase == telemetry::EventPhase::Instant &&
        E.Category == "ilp") {
      if (E.Name == toString(BbEvent::RootLpSolved))
        SawRootLp = true;
      if (E.Name == toString(BbEvent::IncumbentFound))
        SawIncumbent = true;
    }
    if (E.Phase == telemetry::EventPhase::Counter &&
        E.Name == "bb.open_nodes")
      SawGauge = true;
  }
  EXPECT_TRUE(SawSolveSpan);
  EXPECT_TRUE(SawRootLp);
  EXPECT_TRUE(SawIncumbent);
  EXPECT_TRUE(SawGauge);
}

} // namespace
