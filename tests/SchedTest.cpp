//===- tests/SchedTest.cpp - schedule core tests ---------------------------===//

#include "sched/Mii.h"
#include "sched/ModuloSchedule.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

/// The paper's Figure 1b schedule for Example 1 at II=2:
/// load@0, mult@1, add@2, sub@5, store@6.
ModuloSchedule figure1bSchedule() { return ModuloSchedule(2, {0, 1, 2, 5, 6}); }

} // namespace

TEST(ModuloSchedule, RowStageArithmetic) {
  ModuloSchedule S(3, {0, 4, 7});
  EXPECT_EQ(S.row(0), 0);
  EXPECT_EQ(S.stage(0), 0);
  EXPECT_EQ(S.row(1), 1);
  EXPECT_EQ(S.stage(1), 1);
  EXPECT_EQ(S.row(2), 1);
  EXPECT_EQ(S.stage(2), 2);
  EXPECT_EQ(S.scheduleLength(), 8);
  EXPECT_EQ(S.numStages(), 3);
}

TEST(Mrt, PaperExample1Figure1c) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  ModuloSchedule S = figure1bSchedule();
  Mrt Table(G, M, S);
  // Row 0: load(t=0), add(t=2), store(t=6) -> 3 ops.
  // Row 1: mult(t=1), sub(t=5) -> 2 ops.
  EXPECT_EQ(Table.usage(0, 0), 3);
  EXPECT_EQ(Table.usage(1, 0), 2);
  EXPECT_TRUE(Table.fitsMachine(M));
}

TEST(Verifier, AcceptsFigure1b) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  EXPECT_FALSE(verifySchedule(G, M, figure1bSchedule()).has_value());
}

TEST(Verifier, RejectsDependenceViolation) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  // mult at t=0 violates load(latency 1) -> mult.
  ModuloSchedule Bad(2, {0, 0, 2, 5, 6});
  auto Err = verifySchedule(G, M, Bad);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("dependence"), std::string::npos);
}

TEST(Verifier, RejectsResourceOversubscription) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  // II=1: five ops in one row but only 3 FUs (also breaks deps; check
  // resources by removing the dependence problem: use II=1 with legal
  // chain impossible -> expect SOME violation).
  ModuloSchedule Bad(1, {0, 1, 2, 5, 6});
  // Dependences are satisfiable at II=1? load->mult needs 1 cycle: ok.
  // Resource check: rows collapse to 1 row with 5 ops > 3.
  auto Err = verifySchedule(G, M, Bad);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("resource"), std::string::npos);
}

TEST(Verifier, ChecksTimeWindow) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  EXPECT_TRUE(verifySchedule(G, M, figure1bSchedule(), 5).has_value());
  EXPECT_FALSE(verifySchedule(G, M, figure1bSchedule(), 6).has_value());
}

TEST(RegisterPressure, PaperExample1Figure1e) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  RegisterPressure P = computeRegisterPressure(G, figure1bSchedule());
  // Figure 1e: exactly 7 virtual registers live in both rows.
  ASSERT_EQ(P.LivePerRow.size(), 2u);
  EXPECT_EQ(P.LivePerRow[0], 7);
  EXPECT_EQ(P.LivePerRow[1], 7);
  EXPECT_EQ(P.MaxLive, 7);
  // Lifetimes: vr0 [0,2]=3, vr1 [1,5]=5, vr2 [2,5]=4, vr3 [5,6]=2.
  EXPECT_EQ(P.TotalLifetime, 3 + 5 + 4 + 2);
  // Buffers: ceil(3/2)+ceil(5/2)+ceil(4/2)+ceil(2/2) = 2+3+2+1 = 8.
  EXPECT_EQ(P.Buffers, 8);
}

TEST(RegisterPressure, DeadValueLivesOneCycle) {
  DependenceGraph G;
  int A = G.addOperation("a", 2); // add class on example3.
  G.ensureRegister(A);
  ModuloSchedule S(3, {4});
  RegisterPressure P = computeRegisterPressure(G, S);
  EXPECT_EQ(P.MaxLive, 1);
  EXPECT_EQ(P.TotalLifetime, 1);
  EXPECT_EQ(P.Buffers, 1);
  EXPECT_EQ(P.LivePerRow[1], 1); // 4 mod 3 == 1.
}

TEST(RegisterPressure, CrossIterationUse) {
  DependenceGraph G;
  int A = G.addOperation("a", 2);
  int B = G.addOperation("b", 2);
  G.addFlowDependence(A, B, 1, 2); // Used two iterations later.
  ModuloSchedule S(2, {0, 1});
  // Kill time = 1 + 2*2 = 5; lifetime [0,5] = 6 cycles = 3 per row.
  RegisterPressure P = computeRegisterPressure(G, S);
  EXPECT_EQ(registerKillTime(G, S, 0), 5);
  EXPECT_EQ(P.MaxLive, 3);
  EXPECT_EQ(P.TotalLifetime, 6);
  EXPECT_EQ(P.Buffers, 3);
}

TEST(Mii, ResMiiCountsCriticalResource) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  // 5 ops on 3 universal FUs: ceil(5/3) = 2.
  EXPECT_EQ(resMii(G, M), 2);
}

TEST(Mii, RecMiiFromRecurrence) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G;
  int A = G.addOperation("a", *M.findOpClass(opclasses::Mul));
  G.addFlowDependence(A, A, 4, 1); // mul feeding itself next iteration.
  EXPECT_EQ(recMii(G), 4);
  EXPECT_EQ(mii(G, M), 4);
}

TEST(Mii, RecMiiMultiEdgeCycle) {
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  G.addSchedEdge(A, B, 3, 0);
  G.addSchedEdge(B, A, 4, 2); // Cycle: latency 7, distance 2 -> ceil(7/2)=4.
  EXPECT_EQ(recMii(G), 4);
}

TEST(Mii, AcyclicIsOne) {
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  G.addSchedEdge(A, B, 10, 0);
  EXPECT_EQ(recMii(G), 1);
}

TEST(Mii, PaperExample1) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  EXPECT_EQ(mii(G, M), 2); // Resource bound; no recurrence.
}
