//===- tests/SchedulerTest.cpp - optimal scheduler driver tests ------------===//

#include "ilpsched/OptimalScheduler.h"

#include "sched/Mii.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

SchedulerOptions makeOpts(Objective Obj, DependenceStyle Dep) {
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Obj;
  Opts.Formulation.DepStyle = Dep;
  Opts.TimeLimitSeconds = 30.0;
  return Opts;
}

} // namespace

TEST(OptimalScheduler, PaperExample1NoObj) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  OptimalModuloScheduler Sched(
      M, makeOpts(Objective::None, DependenceStyle::Structured));
  ScheduleResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Mii, 2);
  EXPECT_EQ(R.II, 2);
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
  EXPECT_GT(R.Variables, 0);
  EXPECT_GT(R.Constraints, 0);
}

TEST(OptimalScheduler, PaperExample1MinRegIs7) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  for (DependenceStyle Dep :
       {DependenceStyle::Structured, DependenceStyle::Traditional}) {
    OptimalModuloScheduler Sched(M, makeOpts(Objective::MinReg, Dep));
    ScheduleResult R = Sched.schedule(G);
    ASSERT_TRUE(R.Found);
    EXPECT_EQ(R.II, 2);
    EXPECT_NEAR(R.SecondaryObjective, 7.0, 1e-6);
    EXPECT_EQ(computeRegisterPressure(G, R.Schedule).MaxLive, 7);
  }
}

TEST(OptimalScheduler, AllKernelsScheduleOnAllMachines) {
  for (MachineModel M : {MachineModel::example3(), MachineModel::vliw2(),
                         MachineModel::cydraLike()}) {
    for (const DependenceGraph &G : allKernels(M)) {
      OptimalModuloScheduler Sched(
          M, makeOpts(Objective::None, DependenceStyle::Structured));
      ScheduleResult R = Sched.schedule(G);
      if (R.TimedOut || R.NodeLimitHit)
        continue; // Censored under slow builds (TSan, loaded CI) — the
                  // convention is to skip budget-censored solves.
      ASSERT_TRUE(R.Found) << M.name() << "/" << G.name();
      EXPECT_GE(R.II, R.Mii);
      EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value())
          << M.name() << "/" << G.name();
    }
  }
}

TEST(OptimalScheduler, IiSearchSkipsInfeasibleMii) {
  // A loop whose MII is infeasible: two muls feeding each other with a
  // recurrence of latency 8 distance 2 gives RecMII 4, but cydra's fmul
  // initiates only every other cycle (FMul used at cycles 0 and 1), so
  // ResMII = 2 per mul... craft instead: II must rise above MII due to
  // interference. We settle for checking the driver tries multiple IIs
  // and terminates with a verified schedule.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = secondOrderRecurrence(M);
  OptimalModuloScheduler Sched(
      M, makeOpts(Objective::None, DependenceStyle::Structured));
  ScheduleResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_GE(R.II, R.Mii);
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(OptimalScheduler, MinRegNeverWorseThanNoObj) {
  MachineModel M = MachineModel::example3();
  for (const DependenceGraph &G : allKernels(M)) {
    OptimalModuloScheduler NoObj(
        M, makeOpts(Objective::None, DependenceStyle::Structured));
    OptimalModuloScheduler MinReg(
        M, makeOpts(Objective::MinReg, DependenceStyle::Structured));
    ScheduleResult A = NoObj.schedule(G);
    ScheduleResult B = MinReg.schedule(G);
    if (A.TimedOut || B.TimedOut)
      continue; // Large kernels may exceed the test budget.
    ASSERT_TRUE(A.Found && B.Found) << G.name();
    EXPECT_EQ(A.II, B.II) << G.name(); // Same minimum II.
    EXPECT_LE(computeRegisterPressure(G, B.Schedule).MaxLive,
              computeRegisterPressure(G, A.Schedule).MaxLive)
        << G.name();
  }
}

TEST(OptimalScheduler, NodeBudgetCensorsSearch) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = complexMultiply(M);
  SchedulerOptions Opts = makeOpts(Objective::MinReg,
                                   DependenceStyle::Traditional);
  Opts.NodeLimit = 1; // Absurdly small: must censor or finish at root.
  OptimalModuloScheduler Sched(M, Opts);
  ScheduleResult R = Sched.schedule(G);
  // Node censoring is now attributed to its own flag, distinct from the
  // wall-clock timeout.
  EXPECT_TRUE(R.Found || R.NodeLimitHit);
  if (!R.Found)
    EXPECT_FALSE(R.TimedOut); // 30s budget cannot plausibly expire here.
}

TEST(OptimalScheduler, ReportsMiiEvenWhenBudgetExpires) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = complexMultiply(M);
  SchedulerOptions Opts = makeOpts(Objective::MinReg,
                                   DependenceStyle::Structured);
  Opts.TimeLimitSeconds = 0.0; // Expire immediately.
  OptimalModuloScheduler Sched(M, Opts);
  ScheduleResult R = Sched.schedule(G);
  EXPECT_FALSE(R.Found);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_GE(R.Mii, 1);
}
