//===- tests/FormulationTest.cpp - ILP formulation tests -------------------===//

#include "ilpsched/Formulation.h"

#include "graph/GraphAlgorithms.h"
#include "ilp/BranchAndBound.h"
#include "sched/Mii.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

using namespace modsched;
using namespace modsched::ilp;

namespace {

FormulationOptions makeOpts(Objective Obj, DependenceStyle Dep,
                            ObjectiveStyle ObjStyle = ObjectiveStyle::Structured) {
  FormulationOptions Opts;
  Opts.Obj = Obj;
  Opts.DepStyle = Dep;
  Opts.ObjStyle = ObjStyle;
  return Opts;
}

/// Solves the formulation to optimality (no budget) and returns the
/// result; asserts a solution exists.
MipResult solveToOptimal(const Formulation &F) {
  MipOptions Opts;
  MipResult R = MipSolver(Opts).solve(F.model());
  EXPECT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_TRUE(R.HasSolution);
  return R;
}

} // namespace

TEST(Formulation, InvalidBelowRecMii) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G;
  int A = G.addOperation("a", *M.findOpClass(opclasses::Mul));
  G.addFlowDependence(A, A, 4, 1);
  Formulation F(G, M, 3, makeOpts(Objective::None, DependenceStyle::Structured));
  EXPECT_FALSE(F.valid());
  Formulation F4(G, M, 4, makeOpts(Objective::None, DependenceStyle::Structured));
  EXPECT_TRUE(F4.valid());
}

TEST(Formulation, StructuredModelIsZeroOneStructured) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  for (Objective Obj :
       {Objective::None, Objective::MinReg, Objective::MinBuff}) {
    Formulation F(G, M, 2, makeOpts(Obj, DependenceStyle::Structured));
    ASSERT_TRUE(F.valid());
    EXPECT_TRUE(F.model().isZeroOneStructured()) << toString(Obj);
  }
  // MinLife structured: constraints are structured (objective is exempt).
  Formulation FL(G, M, 2, makeOpts(Objective::MinLife,
                                   DependenceStyle::Structured));
  ASSERT_TRUE(FL.valid());
  EXPECT_TRUE(FL.model().isZeroOneStructured());
}

TEST(Formulation, TraditionalModelIsNotZeroOneStructured) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  Formulation F(G, M, 2, makeOpts(Objective::None,
                                  DependenceStyle::Traditional));
  ASSERT_TRUE(F.valid());
  EXPECT_FALSE(F.model().isZeroOneStructured());
}

TEST(Formulation, StructuredHasMoreConstraintsFewerSurprises) {
  // One constraint per edge (traditional) vs II per edge (structured).
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  Formulation T(G, M, 2, makeOpts(Objective::None,
                                  DependenceStyle::Traditional));
  Formulation S(G, M, 2, makeOpts(Objective::None,
                                  DependenceStyle::Structured));
  ASSERT_TRUE(T.valid() && S.valid());
  EXPECT_GT(S.model().numConstraints(), T.model().numConstraints());
  EXPECT_EQ(S.model().numVariables(), T.model().numVariables());
}

TEST(Formulation, PaperExample1FeasibleAtIi2AllStyles) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  for (DependenceStyle Dep :
       {DependenceStyle::Traditional, DependenceStyle::Structured,
        DependenceStyle::StructuredLoose}) {
    Formulation F(G, M, 2, makeOpts(Objective::None, Dep));
    ASSERT_TRUE(F.valid());
    MipResult R = solveToOptimal(F);
    ModuloSchedule S = F.decode(R.Values);
    EXPECT_FALSE(verifySchedule(G, M, S, F.maxTime()).has_value())
        << toString(Dep);
    EXPECT_EQ(S.ii(), 2);
  }
}

TEST(Formulation, PaperExample1InfeasibleAtIi1) {
  // 5 operations on 3 FUs cannot fit one MRT row.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  for (DependenceStyle Dep :
       {DependenceStyle::Traditional, DependenceStyle::Structured}) {
    Formulation F(G, M, 1, makeOpts(Objective::None, Dep));
    ASSERT_TRUE(F.valid());
    MipResult R = MipSolver().solve(F.model());
    EXPECT_EQ(R.Status, MipStatus::Infeasible) << toString(Dep);
  }
}

TEST(Formulation, MinRegPaperExample1Is7) {
  // The headline golden test: minimum register requirement among all
  // II=2 schedules of Example 1 is 7 (paper Figure 1).
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  for (DependenceStyle Dep :
       {DependenceStyle::Traditional, DependenceStyle::Structured}) {
    Formulation F(G, M, 2, makeOpts(Objective::MinReg, Dep));
    ASSERT_TRUE(F.valid());
    MipResult R = solveToOptimal(F);
    EXPECT_NEAR(R.Objective, 7.0, 1e-6) << toString(Dep);
    ModuloSchedule S = F.decode(R.Values);
    EXPECT_FALSE(verifySchedule(G, M, S, F.maxTime()).has_value());
    RegisterPressure P = computeRegisterPressure(G, S);
    EXPECT_EQ(P.MaxLive, 7) << toString(Dep);
  }
}

TEST(Formulation, MinLifeObjectiveMatchesComputedLifetime) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  for (ObjectiveStyle Style :
       {ObjectiveStyle::Structured, ObjectiveStyle::Traditional}) {
    Formulation F(G, M, 2,
                  makeOpts(Objective::MinLife, DependenceStyle::Structured,
                           Style));
    ASSERT_TRUE(F.valid());
    MipResult R = solveToOptimal(F);
    ModuloSchedule S = F.decode(R.Values);
    RegisterPressure P = computeRegisterPressure(G, S);
    EXPECT_NEAR(R.Objective, P.TotalLifetime, 1e-6);
  }
}

TEST(Formulation, MinBuffObjectiveMatchesComputedBuffers) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  for (ObjectiveStyle Style :
       {ObjectiveStyle::Structured, ObjectiveStyle::Traditional}) {
    Formulation F(G, M, 2,
                  makeOpts(Objective::MinBuff, DependenceStyle::Structured,
                           Style));
    ASSERT_TRUE(F.valid());
    MipResult R = solveToOptimal(F);
    ModuloSchedule S = F.decode(R.Values);
    RegisterPressure P = computeRegisterPressure(G, S);
    EXPECT_NEAR(R.Objective, P.Buffers, 1e-6);
  }
}

TEST(Formulation, ObjectiveStylesAgreeOnOptimum) {
  MachineModel M = MachineModel::example3();
  for (DependenceGraph G : {livermore5(M), dotProduct(M), daxpy(M)}) {
    int II = mii(G, M);
    for (Objective Obj : {Objective::MinBuff, Objective::MinLife}) {
      double Results[2];
      int Index = 0;
      for (ObjectiveStyle Style :
           {ObjectiveStyle::Structured, ObjectiveStyle::Traditional}) {
        Formulation F(G, M, II,
                      makeOpts(Obj, DependenceStyle::Structured, Style));
        ASSERT_TRUE(F.valid());
        MipResult R = MipSolver().solve(F.model());
        if (R.Status != MipStatus::Optimal) {
          // II == MII may be infeasible; skip the loop then.
          Results[Index++] = -1;
          continue;
        }
        Results[Index++] = R.Objective;
      }
      EXPECT_NEAR(Results[0], Results[1], 1e-6)
          << G.name() << " " << toString(Obj);
    }
  }
}

TEST(Formulation, DependenceStylesAgreeOnFeasibility) {
  MachineModel M = MachineModel::cydraLike();
  MipOptions Budget;
  Budget.TimeLimitSeconds = 5.0; // The traditional style can be slow by
                                 // design; skip when censored.
  for (DependenceGraph G : allKernels(M)) {
    if (G.numOperations() > 12)
      continue; // Large kernels exceed the test budget traditionally.
    int Mii = mii(G, M);
    for (int II = Mii; II < Mii + 3; ++II) {
      Formulation T(G, M, II, makeOpts(Objective::None,
                                       DependenceStyle::Traditional));
      Formulation S(G, M, II, makeOpts(Objective::None,
                                       DependenceStyle::Structured));
      ASSERT_EQ(T.valid(), S.valid());
      if (!T.valid())
        continue;
      MipResult RT = MipSolver(Budget).solve(T.model());
      MipResult RS = MipSolver(Budget).solve(S.model());
      if (RT.Status == MipStatus::Limit || RS.Status == MipStatus::Limit)
        break; // Censored: no conclusion possible for this kernel.
      EXPECT_EQ(RT.HasSolution, RS.HasSolution)
          << G.name() << " at II=" << II;
      if (RT.HasSolution)
        break; // Both feasible at this II: done with this kernel.
    }
  }
}

TEST(Formulation, DecodeRoundTrip) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  Formulation F(G, M, 2, makeOpts(Objective::None,
                                  DependenceStyle::Structured));
  ASSERT_TRUE(F.valid());
  MipResult R = solveToOptimal(F);
  ModuloSchedule S = F.decode(R.Values);
  // Times must be consistent with the a/k variables they decode from.
  for (int Op = 0; Op < G.numOperations(); ++Op) {
    EXPECT_NEAR(R.Values[F.aVar(S.row(Op), Op)], 1.0, 1e-6);
    EXPECT_NEAR(R.Values[F.kVar(Op)], S.stage(Op), 1e-6);
  }
}

TEST(Formulation, MinSlFindsMinimumScheduleLength) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  for (DependenceStyle Dep :
       {DependenceStyle::Structured, DependenceStyle::Traditional}) {
    Formulation F(G, M, 2, makeOpts(Objective::MinSL, Dep));
    ASSERT_TRUE(F.valid());
    MipResult R = solveToOptimal(F);
    ModuloSchedule S = F.decode(R.Values);
    EXPECT_FALSE(verifySchedule(G, M, S, F.maxTime()).has_value());
    // Objective is the schedule length (1 + latest start time).
    EXPECT_NEAR(R.Objective, S.scheduleLength(), 1e-6);
    // Example 1 critical path: load(1) + mult(4) + sub(1) + store = 7
    // cycles, achievable at II=2 without resource interference.
    EXPECT_NEAR(R.Objective, 7.0, 1e-6) << toString(Dep);
  }
}

TEST(Formulation, MinSlNeverBelowCriticalPathBound) {
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G :
       {livermore1(M), stencil3(M), complexMultiply(M)}) {
    int II = mii(G, M);
    Formulation F(G, M, II, makeOpts(Objective::MinSL,
                                     DependenceStyle::Structured));
    if (!F.valid())
      continue;
    MipOptions Budget;
    Budget.TimeLimitSeconds = 10.0;
    MipResult R = MipSolver(Budget).solve(F.model());
    if (R.Status != MipStatus::Optimal)
      continue; // MII may be infeasible, or the budget expired.
    auto Bound = minScheduleLength(G, II);
    ASSERT_TRUE(Bound.has_value());
    EXPECT_GE(R.Objective, *Bound - 1e-6) << G.name();
  }
}

TEST(Formulation, StageBoundTighteningPreservesOptimum) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = livermore1(M);
  int II = mii(G, M);
  double Objectives[2];
  int Index = 0;
  for (bool Tighten : {true, false}) {
    FormulationOptions Opts =
        makeOpts(Objective::MinReg, DependenceStyle::Structured);
    Opts.TightenStageBounds = Tighten;
    Formulation F(G, M, II, Opts);
    ASSERT_TRUE(F.valid());
    MipResult R = solveToOptimal(F);
    Objectives[Index++] = R.Objective;
  }
  EXPECT_NEAR(Objectives[0], Objectives[1], 1e-6);
}
